package experiments

import (
	"strings"
	"testing"
	"time"

	"cicero/internal/voice"
)

// fastParams keeps scenario experiments small for unit testing.
func fastParams() ScenarioParams {
	return ScenarioParams{
		Seed:          1,
		SampleQueries: 3,
		ExactTimeout:  200 * time.Millisecond,
		MaxQueryLen:   1,
		MaxFactDims:   1,
		MaxFacts:      2,
	}
}

func TestTable1(t *testing.T) {
	res := Table1(1)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	wantDims := map[string]int{"ACS NY": 3, "Stack Overflow": 7, "Flights": 6, "Primaries": 5}
	for _, row := range res.Rows {
		if row.Dims != wantDims[row.Name] {
			t.Errorf("%s dims = %d, want %d", row.Name, row.Dims, wantDims[row.Name])
		}
		if row.SizeMB <= 0 || row.Rows <= 0 {
			t.Errorf("%s has empty size/rows", row.Name)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Table I") || !strings.Contains(sb.String(), "Stack Overflow") {
		t.Errorf("render = %q", sb.String())
	}
}

func TestFigure3SmallRun(t *testing.T) {
	res, err := Figure3(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	// 8 scenarios × 5 algorithms (E, E-P, G-B, G-P, G-O).
	if len(res.Rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(res.Rows))
	}
	// Greedy variants must agree on utility; exact at least as good.
	byScenario := map[string]map[string]Figure3Row{}
	for _, row := range res.Rows {
		if byScenario[row.Scenario] == nil {
			byScenario[row.Scenario] = map[string]Figure3Row{}
		}
		byScenario[row.Scenario][string(row.Algorithm)] = row
	}
	for sc, algs := range byScenario {
		gb, gp, gopt := algs["G-B"], algs["G-P"], algs["G-O"]
		if diff := gb.AvgScaledUtility - gp.AvgScaledUtility; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: G-B %v vs G-P %v", sc, gb.AvgScaledUtility, gp.AvgScaledUtility)
		}
		if diff := gb.AvgScaledUtility - gopt.AvgScaledUtility; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: G-B %v vs G-O %v", sc, gb.AvgScaledUtility, gopt.AvgScaledUtility)
		}
		e, ep := algs["E"], algs["E-P"]
		if e.AvgScaledUtility < gb.AvgScaledUtility-1e-9 {
			t.Errorf("%s: exact %v below greedy %v", sc, e.AvgScaledUtility, gb.AvgScaledUtility)
		}
		if ep.AvgScaledUtility < gb.AvgScaledUtility-1e-9 {
			t.Errorf("%s: parallel exact %v below greedy %v", sc, ep.AvgScaledUtility, gb.AvgScaledUtility)
		}
		// With no timeouts both exact solvers are optimal and must agree.
		if e.TimedOut == 0 && ep.TimedOut == 0 {
			if diff := e.AvgScaledUtility - ep.AvgScaledUtility; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: E %v vs E-P %v", sc, e.AvgScaledUtility, ep.AvgScaledUtility)
			}
		}
		// Utility within [0, 1].
		for alg, row := range algs {
			if row.AvgScaledUtility < 0 || row.AvgScaledUtility > 1+1e-9 {
				t.Errorf("%s/%s scaled utility %v out of range", sc, alg, row.AvgScaledUtility)
			}
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "F-C") || !strings.Contains(sb.String(), "S-S") {
		t.Errorf("render missing scenarios: %q", sb.String())
	}
}

func TestFigure4SmallRun(t *testing.T) {
	p := fastParams()
	p.SampleQueries = 2
	res, err := Figure4(p)
	if err != nil {
		t.Fatal(err)
	}
	// 3 scenarios × 2 algorithms × (3 lengths + 3 dims) = 36 rows.
	if len(res.Rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(res.Rows))
	}
	var sb strings.Builder
	res.Render(&sb)
	for _, want := range []string{"A-H", "F-C", "S-O", "length", "dims"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	res, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestUtility <= res.WorstUtility {
		t.Errorf("best utility %v not above worst %v", res.BestUtility, res.WorstUtility)
	}
	if res.WorstText == "" || res.BestText == "" {
		t.Error("speech texts empty")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Table II") {
		t.Error("render header missing")
	}
}

func TestFigure5(t *testing.T) {
	res, err := Figure5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("results = %d", len(res.Results))
	}
	if !res.Ordered {
		t.Error("ratings should preserve the model's quality order")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Worst") || !strings.Contains(sb.String(), "Best") {
		t.Error("render incomplete")
	}
}

func TestFigure6(t *testing.T) {
	res, err := Figure6(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Worst) != 15 || len(res.Best) != 15 {
		t.Fatalf("points = %d/%d, want 15", len(res.Worst), len(res.Best))
	}
	if res.BestErr >= res.WorstErr {
		t.Errorf("best-speech error %v not below worst %v", res.BestErr, res.WorstErr)
	}
}

func TestFigure7(t *testing.T) {
	res, err := Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ACS) != 4 || len(res.Flights) != 4 {
		t.Fatalf("models = %d/%d", len(res.ACS), len(res.Flights))
	}
	// Closest yields the lowest error on both data sets.
	for _, series := range [][]int{} {
		_ = series
	}
	check := func(name string, errs []float64, models []string) {
		closestIdx := -1
		for i, m := range models {
			if m == "Closest" {
				closestIdx = i
			}
		}
		for i := range errs {
			if i != closestIdx && errs[i] < errs[closestIdx] {
				t.Errorf("%s: model %s error %v below Closest %v",
					name, models[i], errs[i], errs[closestIdx])
			}
		}
	}
	var acsErrs, flErrs []float64
	var models []string
	for i := range res.ACS {
		acsErrs = append(acsErrs, res.ACS[i].MedianError)
		flErrs = append(flErrs, res.Flights[i].MedianError)
		models = append(models, res.ACS[i].Model.String())
	}
	check("ACS", acsErrs, models)
	check("Flights", flErrs, models)
}

func TestFigure8(t *testing.T) {
	res := Figure8(1)
	if len(res.Participants) != 10 {
		t.Fatalf("participants = %d", len(res.Participants))
	}
	if res.FasterByVoice < 6 {
		t.Errorf("faster by voice = %d, want majority", res.FasterByVoice)
	}
}

func TestTable3(t *testing.T) {
	res := Table3(1)
	if len(res.Counts) != 3 {
		t.Fatalf("deployments = %d", len(res.Counts))
	}
	for _, name := range res.Deployments {
		total := 0
		for _, c := range res.Counts[name] {
			total += c
		}
		if total != 50 {
			t.Errorf("%s classified %d requests, want 50", name, total)
		}
		// The dominant classes of the paper appear: many S-Queries for
		// every deployment.
		if res.Counts[name][voice.SQuery] == 0 {
			t.Errorf("%s has no supported queries", name)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "S-Query") {
		t.Error("render incomplete")
	}
}

func TestFigure9(t *testing.T) {
	res := Figure9(1)
	totalPreds := res.ByPredicates[0] + res.ByPredicates[1] + res.ByPredicates[2]
	if totalPreds == 0 {
		t.Fatal("no classified retrieval queries")
	}
	// Figure 9a shape: one-predicate queries dominate.
	if res.ByPredicates[1] <= res.ByPredicates[2] {
		t.Errorf("one-predicate queries (%d) should outnumber two-predicate (%d)",
			res.ByPredicates[1], res.ByPredicates[2])
	}
	// Figure 9b shape: retrieval dominates comparisons and extrema.
	if res.ByKind[0] <= res.ByKind[1] || res.ByKind[0] <= res.ByKind[2] {
		t.Errorf("retrieval should dominate: %v", res.ByKind)
	}
}

func TestFigure10(t *testing.T) {
	res, err := Figure10(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Queries == 0 {
			t.Errorf("%s: no supported queries measured", row.Dataset)
			continue
		}
		// The headline result: lookup latency is far below the
		// baseline's total processing time.
		if row.OursLatency*10 > row.BaselineTotal {
			t.Errorf("%s: ours latency %v not ≪ baseline total %v",
				row.Dataset, row.OursLatency, row.BaselineTotal)
		}
		// Baseline latency is below its total (speech overlap).
		if row.BaselineLatency > row.BaselineTotal {
			t.Errorf("%s: baseline latency %v above total %v",
				row.Dataset, row.BaselineLatency, row.BaselineTotal)
		}
	}
}

func TestFigure11(t *testing.T) {
	res, err := Figure11(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results = %d", len(res.Results))
	}
	// Ours wins on Precise and Informative (the paper's explanation:
	// precise values beat ranges on those adjectives).
	var base, ours *struct {
		ratings map[string]float64
	}
	_ = base
	_ = ours
	var baseR, oursR map[string]float64
	for _, r := range res.Results {
		if r.Name == "Baseline" {
			baseR = r.AvgRating
		} else {
			oursR = r.AvgRating
		}
	}
	for _, adj := range []string{"Precise", "Informative"} {
		if oursR[adj] <= baseR[adj] {
			t.Errorf("%s: ours %.2f not above baseline %.2f", adj, oursR[adj], baseR[adj])
		}
	}
}

func TestMLExperiment(t *testing.T) {
	res, err := MLExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainPairs == 0 || res.TestPairs == 0 {
		t.Fatalf("train/test = %d/%d", res.TrainPairs, res.TestPairs)
	}
	// The paper's finding: ML speeches rank below the optimizer's.
	if res.AvgUtilityML > res.AvgUtilityOurs+1e-9 {
		t.Errorf("ML utility %.3f above ours %.3f", res.AvgUtilityML, res.AvgUtilityOurs)
	}
	var mlGood, oursGood float64
	for _, r := range res.Ratings {
		if r.Name == "ML" {
			mlGood = r.AvgRating["Good"]
		} else {
			oursGood = r.AvgRating["Good"]
		}
	}
	if mlGood > oursGood {
		t.Errorf("ML rating %.2f above ours %.2f", mlGood, oursGood)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "ML experiment") {
		t.Error("render incomplete")
	}
}

func TestSubsample(t *testing.T) {
	problems := make([]int, 10)
	_ = problems
	// subsample works on engine.Problem slices; emulate via Figure3 path
	// already covered. Here test the bounds logic indirectly through
	// bestWorstMedian.
	w, m, b := bestWorstMedian([]float64{3, 1, 2})
	if w != 1 || b != 0 || m != 2 {
		t.Errorf("bestWorstMedian = %d,%d,%d", w, m, b)
	}
}
