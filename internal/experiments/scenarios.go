// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section VIII) on the synthetic data substrate. Each
// experiment function returns a result struct with a Render method that
// prints the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/pipeline"
	"cicero/internal/relation"
	"cicero/internal/summarize"
)

// Scenario identifies one evaluated (data set, target) pair with the
// code used on the Figure 3 x-axis.
type Scenario struct {
	Code    string
	Dataset string
	Target  string
}

// Figure3Scenarios lists the eight scenarios of Figure 3 in plot order.
func Figure3Scenarios() []Scenario {
	return []Scenario{
		{Code: "F-C", Dataset: "flights", Target: "cancelled"},
		{Code: "F-D", Dataset: "flights", Target: "delay"},
		{Code: "A-H", Dataset: "acs", Target: "hearing"},
		{Code: "A-V", Dataset: "acs", Target: "visual"},
		{Code: "A-C", Dataset: "acs", Target: "cognitive"},
		{Code: "S-C", Dataset: "stackoverflow", Target: "competence"},
		{Code: "S-O", Dataset: "stackoverflow", Target: "optimism"},
		{Code: "S-S", Dataset: "stackoverflow", Target: "job_satisfaction"},
	}
}

// ScenarioParams controls the cost of a scenario run. The paper
// pre-processes every query (8,500–11,300 speeches per scenario) with a
// 48-hour timeout; the defaults here subsample queries and tighten the
// exact-algorithm timeout so a full sweep stays in the minutes range.
// Raise SampleQueries/ExactTimeout to approach the paper's full setting.
type ScenarioParams struct {
	// Seed drives data generation.
	Seed int64
	// SampleQueries bounds the number of summarization problems solved
	// per scenario (0 = all problems).
	SampleQueries int
	// ExactTimeout bounds the exact algorithm per problem (0 = none).
	ExactTimeout time.Duration
	// MaxQueryLen, MaxFactDims, MaxFacts mirror the configuration file.
	MaxQueryLen, MaxFactDims, MaxFacts int
	// Workers bounds concurrent problem solving in the pre-processing
	// pipeline (0 or 1 = sequential).
	Workers int
	// KernelWorkers bounds the subtree-level parallelism of the E-P
	// algorithm's exact kernel (0 = divide the cores across the
	// pipeline's problem solvers; <0 = all cores per problem).
	KernelWorkers int
	// WarmStart enables incumbent seeding for E-P: the greedy speech
	// seeds the exact search's pruning bound. Never changes results,
	// only shrinks the search.
	WarmStart bool
}

// DefaultScenarioParams returns the scaled-down default setting.
func DefaultScenarioParams() ScenarioParams {
	return ScenarioParams{
		Seed:          1,
		SampleQueries: 24,
		ExactTimeout:  2 * time.Second,
		MaxQueryLen:   2,
		MaxFactDims:   2,
		MaxFacts:      3,
		WarmStart:     true,
	}
}

// relCache avoids regenerating data sets across scenarios of one run.
type relCache map[string]*relation.Relation

func (c relCache) get(name string, seed int64) *relation.Relation {
	key := fmt.Sprintf("%s/%d", name, seed)
	if r, ok := c[key]; ok {
		return r
	}
	r := dataset.ByName(name, seed)
	c[key] = r
	return r
}

// subsample picks at most n problems evenly spread over the list,
// deterministically, so both trivial (few-row) and large subsets appear.
func subsample(problems []engine.Problem, n int) []engine.Problem {
	if n <= 0 || n >= len(problems) {
		return problems
	}
	out := make([]engine.Problem, 0, n)
	step := float64(len(problems)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, problems[int(float64(i)*step)])
	}
	return out
}

// scenarioProblems generates (and subsamples) the problems of a scenario.
func scenarioProblems(rel *relation.Relation, sc Scenario, p ScenarioParams) ([]engine.Problem, error) {
	cfg := engine.Config{
		Dataset:     sc.Dataset,
		Targets:     []string{sc.Target},
		MaxQueryLen: p.MaxQueryLen,
		MaxFactDims: p.MaxFactDims,
		MaxFacts:    p.MaxFacts,
		Prior:       engine.PriorGlobalMean,
	}
	problems, err := engine.Problems(rel, cfg)
	if err != nil {
		return nil, err
	}
	return subsample(problems, p.SampleQueries), nil
}

// Figure3Row is one (scenario, algorithm) measurement.
type Figure3Row struct {
	Scenario  string
	Algorithm engine.Algorithm
	// TotalTime is accumulated pre-processing time over the sampled
	// problems.
	TotalTime time.Duration
	// AvgScaledUtility is utility scaled to [0,1] per problem, averaged.
	AvgScaledUtility float64
	// Problems and TimedOut count solved and timeout-hit problems.
	Problems, TimedOut int
}

// Figure3Result holds the full Figure 3 data: computation time and
// scaled utility per scenario and algorithm.
type Figure3Result struct {
	Rows   []Figure3Row
	Params ScenarioParams
}

// Figure3 runs the pre-processing comparison of Figure 3: the exact
// algorithms E and E-P (the parallel kernel, warm-started per
// params.WarmStart) against the greedy variants G-B, G-P and G-O on
// eight scenario/target combinations.
func Figure3(params ScenarioParams) (*Figure3Result, error) {
	cache := relCache{}
	res := &Figure3Result{Params: params}
	for _, sc := range Figure3Scenarios() {
		rel := cache.get(sc.Dataset, params.Seed)
		problems, err := scenarioProblems(rel, sc, params)
		if err != nil {
			return nil, err
		}
		for _, alg := range engine.Algorithms() {
			cfg := engine.Config{
				Dataset: sc.Dataset, Targets: []string{sc.Target},
				MaxQueryLen: params.MaxQueryLen, MaxFactDims: params.MaxFactDims,
				MaxFacts: params.MaxFacts, Prior: engine.PriorGlobalMean,
			}
			_, stats, err := pipeline.RunProblems(context.Background(), rel, cfg, problems, pipeline.Options{
				Solver:  string(alg),
				Workers: params.Workers,
				Solve: summarize.Options{
					Timeout:   params.ExactTimeout,
					Workers:   params.KernelWorkers,
					WarmStart: params.WarmStart,
				},
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Figure3Row{
				Scenario:         sc.Code,
				Algorithm:        alg,
				TotalTime:        stats.Elapsed,
				AvgScaledUtility: stats.AvgScaledUtility(),
				Problems:         stats.Problems,
				TimedOut:         stats.TimedOut,
			})
		}
	}
	return res, nil
}

// Render prints the Figure 3 series: one block per scenario with time
// and scaled utility per algorithm.
func (r *Figure3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: pre-processing methods (sampled %d queries/scenario, exact timeout %v)\n",
		r.Params.SampleQueries, r.Params.ExactTimeout)
	fmt.Fprintf(w, "%-9s %-5s %14s %10s %9s\n", "Scenario", "Alg", "Time", "Utility", "Timeouts")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9s %-5s %14v %10.3f %6d/%d\n",
			row.Scenario, row.Algorithm, row.TotalTime.Round(time.Millisecond),
			row.AvgScaledUtility, row.TimedOut, row.Problems)
	}
}

// Figure4Row is one scaling measurement.
type Figure4Row struct {
	Scenario  string
	Algorithm engine.Algorithm
	// Param is "length" (speech length sweep) or "dims" (fact width).
	Param string
	Value int
	Time  time.Duration
}

// Figure4Result holds the Figure 4 scaling series.
type Figure4Result struct {
	Rows   []Figure4Row
	Params ScenarioParams
}

// figure4Scenarios are the three scenarios of Figure 4.
func figure4Scenarios() []Scenario {
	return []Scenario{
		{Code: "A-H", Dataset: "acs", Target: "hearing"},
		{Code: "F-C", Dataset: "flights", Target: "cancelled"},
		{Code: "S-O", Dataset: "stackoverflow", Target: "optimism"},
	}
}

// Figure4 reproduces the scaling study: G-O and G-P pre-processing time
// as speech length grows from 2 to 4 facts, and as the number of
// dimensions per fact grows from 1 to 3.
func Figure4(params ScenarioParams) (*Figure4Result, error) {
	cache := relCache{}
	res := &Figure4Result{Params: params}
	algs := []engine.Algorithm{engine.AlgGreedyOpt, engine.AlgGreedyPrune}
	run := func(sc Scenario, alg engine.Algorithm, p ScenarioParams, param string, value int) error {
		rel := cache.get(sc.Dataset, p.Seed)
		problems, err := scenarioProblems(rel, sc, p)
		if err != nil {
			return err
		}
		cfg := engine.Config{
			Dataset: sc.Dataset, Targets: []string{sc.Target},
			MaxQueryLen: p.MaxQueryLen, MaxFactDims: p.MaxFactDims,
			MaxFacts: p.MaxFacts, Prior: engine.PriorGlobalMean,
		}
		_, stats, err := pipeline.RunProblems(context.Background(), rel, cfg, problems, pipeline.Options{
			Solver: string(alg), Workers: p.Workers,
		})
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Figure4Row{
			Scenario: sc.Code, Algorithm: alg, Param: param, Value: value, Time: stats.Elapsed,
		})
		return nil
	}
	for _, sc := range figure4Scenarios() {
		for _, alg := range algs {
			for length := 2; length <= 4; length++ {
				p := params
				p.MaxFacts = length
				if err := run(sc, alg, p, "length", length); err != nil {
					return nil, err
				}
			}
			for dims := 1; dims <= 3; dims++ {
				p := params
				p.MaxFactDims = dims
				if err := run(sc, alg, p, "dims", dims); err != nil {
					return nil, err
				}
			}
		}
	}
	return res, nil
}

// Render prints the Figure 4 series grouped by scenario and parameter.
func (r *Figure4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: scaling speech length and fact dimensions (G-O vs G-P)")
	fmt.Fprintf(w, "%-9s %-7s %-7s %6s %14s\n", "Scenario", "Param", "Alg", "Value", "Time")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9s %-7s %-7s %6d %14v\n",
			row.Scenario, row.Param, row.Algorithm, row.Value, row.Time.Round(time.Millisecond))
	}
}
