package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"cicero/internal/baseline"
	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/pipeline"
	"cicero/internal/voice"
)

// Deployments builds the three public-deployment simulations of Section
// VIII-D: primaries, flights and developers (Stack Overflow), each with a
// trained extractor.
func Deployments(seed int64) []*voice.Deployment {
	pr := dataset.Primaries(dataset.DefaultRows["primaries"], seed)
	fl := dataset.Flights(dataset.DefaultRows["flights"], seed)
	so := dataset.StackOverflow(dataset.DefaultRows["stackoverflow"], seed)
	return []*voice.Deployment{
		{
			Name: "Primaries", Rel: pr,
			Extractor: voice.NewExtractor(pr, []voice.Sample{
				{Phrase: "polling", Target: "pct"},
				{Phrase: "poll numbers", Target: "pct"},
				{Phrase: "support", Target: "pct"},
			}, 2),
			TargetPhrases: map[string][]string{"pct": {"polling", "support", "poll numbers"}},
		},
		{
			Name: "Flights", Rel: fl,
			Extractor: voice.NewExtractor(fl, []voice.Sample{
				{Phrase: "cancellations", Target: "cancelled"},
				{Phrase: "cancellation probability", Target: "cancelled"},
				{Phrase: "delays", Target: "delay"},
				{Phrase: "flight delays", Target: "delay"},
			}, 2),
			TargetPhrases: map[string][]string{
				"cancelled": {"cancellations", "cancellation probability"},
				"delay":     {"delays", "flight delays"},
			},
		},
		{
			Name: "Developers", Rel: so,
			Extractor: voice.NewExtractor(so, []voice.Sample{
				{Phrase: "job satisfaction", Target: "job_satisfaction"},
				{Phrase: "optimism", Target: "optimism"},
				{Phrase: "competence", Target: "competence"},
				{Phrase: "salary", Target: "salary_k"},
			}, 2),
			TargetPhrases: map[string][]string{
				"job_satisfaction": {"job satisfaction"},
				"optimism":         {"optimism"},
				"competence":       {"competence"},
			},
		},
	}
}

// Table3Result holds the classified request distribution per deployment.
type Table3Result struct {
	// Counts maps deployment name → request type → classified count.
	Counts map[string]map[voice.RequestType]int
	// Deployments preserves Table III column order.
	Deployments []string
}

// Table3 regenerates the request classification: each deployment's
// simulated log of 50 requests (drawn with the paper's Table III intent
// distribution) is classified by the live classifier; the table reports
// the classified counts.
func Table3(seed int64) *Table3Result {
	res := &Table3Result{
		Counts:      map[string]map[voice.RequestType]int{},
		Deployments: []string{"Primaries", "Flights", "Developers"},
	}
	paper := voice.Table3Counts()
	for i, dep := range Deployments(seed) {
		log := dep.SimulateLog(paper[dep.Name], seed+int64(i))
		counts := map[voice.RequestType]int{}
		for _, entry := range log {
			counts[voice.Classify(entry.Text, dep.Extractor).Type]++
		}
		res.Counts[dep.Name] = counts
	}
	return res
}

// Render prints Table III.
func (r *Table3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table III: classification of last 50 voice requests per deployment")
	fmt.Fprintf(w, "%-14s", "Request Type")
	for _, d := range r.Deployments {
		fmt.Fprintf(w, " %11s", d)
	}
	fmt.Fprintln(w)
	for _, rt := range voice.RequestTypes() {
		fmt.Fprintf(w, "%-14s", rt.String())
		for _, d := range r.Deployments {
			fmt.Fprintf(w, " %11d", r.Counts[d][rt])
		}
		fmt.Fprintln(w)
	}
}

// Figure9Result holds the query-complexity and query-type distributions.
type Figure9Result struct {
	// ByPredicates counts data-access queries restricting 0, 1 and 2
	// dimension columns (Figure 9a).
	ByPredicates [3]int
	// ByKind counts retrieval, comparison and extremum queries
	// (Figure 9b).
	ByKind [3]int
}

// Figure9 classifies the data-access queries from all three simulated
// deployment logs by size and type.
func Figure9(seed int64) *Figure9Result {
	res := &Figure9Result{}
	paper := voice.Table3Counts()
	for i, dep := range Deployments(seed) {
		log := dep.SimulateLog(paper[dep.Name], seed+int64(i))
		for _, entry := range log {
			c := voice.Classify(entry.Text, dep.Extractor)
			if c.Type != voice.SQuery && c.Type != voice.UQuery {
				continue
			}
			if c.Kind == voice.Retrieval {
				if c.Predicates >= 0 && c.Predicates <= 2 {
					res.ByPredicates[c.Predicates]++
				}
			}
			res.ByKind[int(c.Kind)]++
		}
	}
	return res
}

// Render prints the two pie-chart series of Figure 9.
func (r *Figure9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 9(a): data-access queries by complexity (#predicates)")
	for i, c := range r.ByPredicates {
		fmt.Fprintf(w, "  %d predicates: %d\n", i, c)
	}
	fmt.Fprintln(w, "Figure 9(b): queries by type")
	kinds := []voice.QueryKind{voice.Retrieval, voice.Comparison, voice.Extremum}
	for i, k := range kinds {
		fmt.Fprintf(w, "  %s: %d\n", k.String(), r.ByKind[i])
	}
}

// Figure10Row is one deployment's latency/processing measurement.
type Figure10Row struct {
	Dataset string
	// OursLatency is the run-time lookup latency of the pre-processing
	// approach; OursPreprocess is the per-query share of pre-processing.
	OursLatency, OursPreprocess time.Duration
	// BaselineLatency is time-to-first-sentence of the sampling
	// baseline; BaselineTotal its full processing time.
	BaselineLatency, BaselineTotal time.Duration
	// Queries is the number of supported queries measured.
	Queries int
}

// Figure10Result compares run-time characteristics against the baseline.
type Figure10Result struct {
	Rows []Figure10Row
}

// Figure10 reproduces the latency comparison: for each deployment, the
// supported queries of the simulated logs are answered (a) by lookup in a
// pre-processed speech store and (b) by the run-time sampling baseline.
// The pre-processing approach answers in microseconds; the baseline pays
// sampling time on every query but starts speaking after the first
// sentence is selected.
func Figure10(seed int64) (*Figure10Result, error) {
	res := &Figure10Result{}
	paper := voice.Table3Counts()
	for i, dep := range Deployments(seed) {
		// Pre-process a one-predicate speech store for the deployment's
		// primary target to measure per-query pre-processing cost.
		primaryTarget := dep.Rel.Schema().Targets[0]
		cfg := engine.Config{
			Dataset: dep.Rel.Name(), Targets: []string{primaryTarget},
			MaxQueryLen: 1, MaxFactDims: 2, MaxFacts: 3,
			Prior: engine.PriorGlobalMean,
		}
		store, stats, err := pipeline.Run(context.Background(), dep.Rel, cfg, pipeline.Options{
			Solver: string(engine.AlgGreedyOpt),
		})
		if err != nil {
			return nil, err
		}

		log := dep.SimulateLog(paper[dep.Name], seed+int64(i))
		var row Figure10Row
		row.Dataset = dep.Name
		row.OursPreprocess = stats.PerQuery
		var latSum, bLatSum, bTotSum time.Duration
		for _, entry := range log {
			c := voice.Classify(entry.Text, dep.Extractor)
			if c.Type != voice.SQuery {
				continue
			}
			q := c.Query
			q.Target = primaryTarget // the store covers the primary target
			_, lat, _ := engine.Answer(store, q)
			latSum += lat

			ti, preds, err := q.Resolve(dep.Rel)
			if err != nil {
				continue
			}
			view := dep.Rel.FullView().Select(preds)
			if view.NumRows() == 0 {
				view = dep.Rel.FullView()
			}
			b := baseline.SamplingAnswer(view, ti, nil, baseline.SamplingOptions{
				MaxFacts: 3, Seed: seed,
			})
			bLatSum += b.Latency
			bTotSum += b.Total
			row.Queries++
		}
		if row.Queries > 0 {
			row.OursLatency = latSum / time.Duration(row.Queries)
			row.BaselineLatency = bLatSum / time.Duration(row.Queries)
			row.BaselineTotal = bTotSum / time.Duration(row.Queries)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Figure 10 comparison.
func (r *Figure10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: average latency and per-query processing time")
	fmt.Fprintf(w, "%-11s %8s %14s %14s %14s %14s\n",
		"Deployment", "Queries", "Ours-latency", "Ours-preproc", "Base-latency", "Base-total")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11s %8d %14v %14v %14v %14v\n",
			row.Dataset, row.Queries, row.OursLatency, row.OursPreprocess.Round(time.Microsecond),
			row.BaselineLatency.Round(time.Microsecond), row.BaselineTotal.Round(time.Microsecond))
	}
}
