package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"
	"time"

	"cicero/internal/fact"
	"cicero/internal/relation"
	"cicero/internal/summarize"
)

// KernelBenchResult is one summarization-kernel micro-benchmark
// measurement, serialized into BENCH_summarize.json so kernel
// performance can be tracked across commits.
type KernelBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// KernelBenchReport is the file-level shape of BENCH_summarize.json.
type KernelBenchReport struct {
	Seed    int64               `json:"seed"`
	Results []KernelBenchResult `json:"results"`
}

// Render implements the experiment renderer shape for console output.
func (r *KernelBenchReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Summarization kernel micro-benchmarks (seed %d)\n", r.Seed)
	fmt.Fprintf(w, "%-24s %12s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-24s %12.0f %12d %12d\n", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
}

// kernelBenchInstance builds the deterministic problem instance the
// kernel benchmarks run on: rows over three dimension columns with the
// full candidate fact set up to maxDims dimensions.
func kernelBenchInstance(seed int64, rows, maxDims int) (*relation.View, []fact.Fact, fact.Prior) {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("kernelbench", relation.Schema{
		Dimensions: []string{"a", "b", "c"},
		Targets:    []string{"v"},
	})
	av := []string{"a0", "a1", "a2", "a3"}
	bv := []string{"b0", "b1", "b2"}
	cv := []string{"c0", "c1"}
	for i := 0; i < rows; i++ {
		b.MustAddRow(
			[]string{av[rng.Intn(len(av))], bv[rng.Intn(len(bv))], cv[rng.Intn(len(cv))]},
			[]float64{rng.NormFloat64()*10 + float64(rng.Intn(3))*15},
		)
	}
	rel := b.Freeze()
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: maxDims})
	return view, facts, fact.MeanPrior(view, 0)
}

// KernelBench measures the summarization kernel's per-problem cost —
// pooled evaluator build, greedy solves, and the exact search — with
// testing.Benchmark, mirroring the BenchmarkEvaluatorBuild /
// BenchmarkGreedySolve / BenchmarkExactSolve suite in
// internal/summarize.
func KernelBench(seed int64) *KernelBenchReport {
	report := &KernelBenchReport{Seed: seed}
	record := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		report.Results = append(report.Results, KernelBenchResult{
			Name:        name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}

	view, facts, prior := kernelBenchInstance(seed, 2000, 2)
	record("EvaluatorBuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := summarize.AcquireEvaluator(view, 0, facts, prior)
			summarize.ReleaseEvaluator(e)
		}
	})
	for _, mode := range []summarize.PruningMode{summarize.PruneNone, summarize.PruneOptimized} {
		record("GreedySolve/"+mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := summarize.AcquireEvaluator(view, 0, facts, prior)
				summarize.Greedy(e, summarize.Options{MaxFacts: 3, Pruning: mode})
				summarize.ReleaseEvaluator(e)
			}
		})
	}
	xview, xfacts, xprior := kernelBenchInstance(seed, 600, 3)
	record("ExactSolve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := summarize.AcquireEvaluator(xview, 0, xfacts, xprior)
			g := summarize.Greedy(e, summarize.Options{MaxFacts: 3})
			summarize.Exact(e, summarize.Options{MaxFacts: 3, LowerBound: g.Utility})
			summarize.ReleaseEvaluator(e)
		}
	})
	for _, workers := range []int{1, 4} {
		record(fmt.Sprintf("ExactParallelSolve/w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := summarize.AcquireEvaluator(xview, 0, xfacts, xprior)
				g := summarize.Greedy(e, summarize.Options{MaxFacts: 3})
				summarize.ExactParallel(e, summarize.Options{MaxFacts: 3, LowerBound: g.Utility, Workers: workers})
				summarize.ReleaseEvaluator(e)
			}
		})
	}
	return report
}

// ExactKernelProbe measures the exact-search kernel on one deterministic
// problem instance: the sequential kernel with a cold and a greedy-warm
// incumbent, and the parallel kernel at a pinned worker count. The node
// counts come from the sequential runs, which are scheduling-independent
// — CI diffs them exactly against the committed baseline, while the
// timing fields are only ratio-compared (they move with the runner).
type ExactKernelProbe struct {
	// Workers is the parallel kernel's pinned worker count (constant in
	// the committed baseline regardless of the builder's core count).
	Workers int `json:"workers"`
	// Rows and MaxFacts identify the probe instance.
	Rows     int `json:"rows"`
	MaxFacts int `json:"max_facts"`
	// SequentialColdNS / SequentialWarmNS / ParallelWarmNS are the solve
	// times (best of three) for the sequential cold-incumbent,
	// sequential greedy-warm, and parallel greedy-warm runs.
	SequentialColdNS int64 `json:"sequential_cold_ns"`
	SequentialWarmNS int64 `json:"sequential_warm_ns"`
	ParallelWarmNS   int64 `json:"parallel_warm_ns"`
	// ParallelSpeedup is SequentialWarmNS / ParallelWarmNS.
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// ColdNodesExpanded / WarmNodesExpanded are the sequential search's
	// node counts without and with the greedy seed (deterministic; warm
	// must be strictly below cold on any non-trivial instance).
	ColdNodesExpanded int64 `json:"cold_nodes_expanded"`
	WarmNodesExpanded int64 `json:"warm_nodes_expanded"`
	// DominatedSkipped counts the sequential warm run's dominance-pruned
	// extensions (deterministic).
	DominatedSkipped int64 `json:"dominated_skipped"`
}

// probeInstance builds the exact-kernel probe's problem: the
// micro-benchmark dimensions over a pure-noise target. With no modal
// structure for low-order facts to explain away, hundreds of candidate
// facts stay near-tied and the canonical enumeration genuinely
// branches — tens of thousands of nodes instead of the handful the
// structured micro-benchmark instance closes after.
func probeInstance(seed int64, rows, maxDims int) (*relation.View, []fact.Fact, fact.Prior) {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("kernelprobe", relation.Schema{
		Dimensions: []string{"a", "b", "c"},
		Targets:    []string{"v"},
	})
	av := []string{"a0", "a1", "a2", "a3"}
	bv := []string{"b0", "b1", "b2"}
	cv := []string{"c0", "c1"}
	for i := 0; i < rows; i++ {
		b.MustAddRow(
			[]string{av[rng.Intn(len(av))], bv[rng.Intn(len(bv))], cv[rng.Intn(len(cv))]},
			[]float64{rng.NormFloat64() * 10},
		)
	}
	rel := b.Freeze()
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: maxDims})
	return view, facts, fact.MeanPrior(view, 0)
}

// RunExactKernelProbe runs the probe on the standard instance: the
// noise-target relation at 6000 rows with six-fact speeches, which
// drives the exact enumeration through ~22k nodes (~100ms
// sequentially) — long enough that the parallel kernel's speedup is
// measurable above its fork/join overhead, short enough for a CI smoke
// step.
func RunExactKernelProbe(seed int64, workers int) ExactKernelProbe {
	const (
		rows     = 6000
		maxDims  = 3
		maxFacts = 6
	)
	view, facts, prior := probeInstance(seed, rows, maxDims)
	probe := ExactKernelProbe{Workers: workers, Rows: rows, MaxFacts: maxFacts}

	timeBest := func(runs int, fn func() summarize.Summary) (int64, summarize.Summary) {
		best := int64(0)
		var sum summarize.Summary
		for r := 0; r < runs; r++ {
			start := time.Now()
			s := fn()
			ns := time.Since(start).Nanoseconds()
			if best == 0 || ns < best {
				best = ns
			}
			sum = s
		}
		return best, sum
	}

	seedU := func() float64 {
		e := summarize.AcquireEvaluator(view, 0, facts, prior)
		defer summarize.ReleaseEvaluator(e)
		return summarize.Greedy(e, summarize.Options{MaxFacts: maxFacts}).Utility
	}()

	ns, cold := timeBest(3, func() summarize.Summary {
		e := summarize.AcquireEvaluator(view, 0, facts, prior)
		defer summarize.ReleaseEvaluator(e)
		return summarize.Exact(e, summarize.Options{MaxFacts: maxFacts})
	})
	probe.SequentialColdNS = ns
	probe.ColdNodesExpanded = cold.Stats.NodesExpanded

	ns, warm := timeBest(3, func() summarize.Summary {
		e := summarize.AcquireEvaluator(view, 0, facts, prior)
		defer summarize.ReleaseEvaluator(e)
		return summarize.Exact(e, summarize.Options{MaxFacts: maxFacts, LowerBound: seedU})
	})
	probe.SequentialWarmNS = ns
	probe.WarmNodesExpanded = warm.Stats.NodesExpanded
	probe.DominatedSkipped = warm.Stats.DominatedSkipped

	ns, _ = timeBest(3, func() summarize.Summary {
		e := summarize.AcquireEvaluator(view, 0, facts, prior)
		defer summarize.ReleaseEvaluator(e)
		return summarize.ExactParallel(e, summarize.Options{MaxFacts: maxFacts, LowerBound: seedU, Workers: workers})
	})
	probe.ParallelWarmNS = ns
	if ns > 0 {
		probe.ParallelSpeedup = float64(probe.SequentialWarmNS) / float64(ns)
	}
	return probe
}

// WriteKernelBench runs KernelBench and writes the JSON report to path
// (conventionally BENCH_summarize.json).
func WriteKernelBench(path string, seed int64) (*KernelBenchReport, error) {
	report := KernelBench(seed)
	data, err := json.MarshalIndent(report, "", "\t")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return report, nil
}
