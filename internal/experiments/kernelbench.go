package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"cicero/internal/fact"
	"cicero/internal/relation"
	"cicero/internal/summarize"
)

// KernelBenchResult is one summarization-kernel micro-benchmark
// measurement, serialized into BENCH_summarize.json so kernel
// performance can be tracked across commits.
type KernelBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// KernelBenchReport is the file-level shape of BENCH_summarize.json.
type KernelBenchReport struct {
	Seed    int64               `json:"seed"`
	Results []KernelBenchResult `json:"results"`
}

// Render implements the experiment renderer shape for console output.
func (r *KernelBenchReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Summarization kernel micro-benchmarks (seed %d)\n", r.Seed)
	fmt.Fprintf(w, "%-24s %12s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-24s %12.0f %12d %12d\n", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
}

// kernelBenchInstance builds the deterministic problem instance the
// kernel benchmarks run on: rows over three dimension columns with the
// full candidate fact set up to maxDims dimensions.
func kernelBenchInstance(seed int64, rows, maxDims int) (*relation.View, []fact.Fact, fact.Prior) {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("kernelbench", relation.Schema{
		Dimensions: []string{"a", "b", "c"},
		Targets:    []string{"v"},
	})
	av := []string{"a0", "a1", "a2", "a3"}
	bv := []string{"b0", "b1", "b2"}
	cv := []string{"c0", "c1"}
	for i := 0; i < rows; i++ {
		b.MustAddRow(
			[]string{av[rng.Intn(len(av))], bv[rng.Intn(len(bv))], cv[rng.Intn(len(cv))]},
			[]float64{rng.NormFloat64()*10 + float64(rng.Intn(3))*15},
		)
	}
	rel := b.Freeze()
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: maxDims})
	return view, facts, fact.MeanPrior(view, 0)
}

// KernelBench measures the summarization kernel's per-problem cost —
// pooled evaluator build, greedy solves, and the exact search — with
// testing.Benchmark, mirroring the BenchmarkEvaluatorBuild /
// BenchmarkGreedySolve / BenchmarkExactSolve suite in
// internal/summarize.
func KernelBench(seed int64) *KernelBenchReport {
	report := &KernelBenchReport{Seed: seed}
	record := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		report.Results = append(report.Results, KernelBenchResult{
			Name:        name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}

	view, facts, prior := kernelBenchInstance(seed, 2000, 2)
	record("EvaluatorBuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := summarize.AcquireEvaluator(view, 0, facts, prior)
			summarize.ReleaseEvaluator(e)
		}
	})
	for _, mode := range []summarize.PruningMode{summarize.PruneNone, summarize.PruneOptimized} {
		record("GreedySolve/"+mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := summarize.AcquireEvaluator(view, 0, facts, prior)
				summarize.Greedy(e, summarize.Options{MaxFacts: 3, Pruning: mode})
				summarize.ReleaseEvaluator(e)
			}
		})
	}
	xview, xfacts, xprior := kernelBenchInstance(seed, 600, 3)
	record("ExactSolve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := summarize.AcquireEvaluator(xview, 0, xfacts, xprior)
			g := summarize.Greedy(e, summarize.Options{MaxFacts: 3})
			summarize.Exact(e, summarize.Options{MaxFacts: 3, LowerBound: g.Utility})
			summarize.ReleaseEvaluator(e)
		}
	})
	return report
}

// WriteKernelBench runs KernelBench and writes the JSON report to path
// (conventionally BENCH_summarize.json).
func WriteKernelBench(path string, seed int64) (*KernelBenchReport, error) {
	report := KernelBench(seed)
	data, err := json.MarshalIndent(report, "", "\t")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return report, nil
}
