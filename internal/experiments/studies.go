package experiments

import (
	"fmt"
	"io"
	"math"

	"cicero/internal/baseline"
	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/fact"
	"cicero/internal/relation"
	"cicero/internal/summarize"
	"cicero/internal/userstudy"
)

// speechProfile derives the rating-study feature vector of a point-fact
// speech: accuracy is scaled utility, precision is 1 (exact values),
// diversity counts distinct restricted dimensions, brevity from length.
func speechProfile(name string, view *relation.View, target int, speech []fact.Fact, prior fact.Prior) userstudy.SpeechProfile {
	priorErr := fact.Deviation(view, nil, prior, target)
	acc := 0.0
	if priorErr > 0 {
		acc = fact.Utility(view, speech, prior, target) / priorErr
	}
	return userstudy.SpeechProfile{
		Name:      name,
		Accuracy:  clamp01(acc),
		Precision: 1,
		Diversity: 1 - baseline.RedundancyScore(speech),
		Brevity:   clamp01(1 - 0.15*float64(len(speech)-3)),
	}
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }

// Figure5Result holds the preference study of Figure 5: ratings and win
// counts for the worst-, median- and best-ranked random speeches.
type Figure5Result struct {
	Results []userstudy.RatingResult
	// Correlation is the Spearman-style agreement between model rank
	// (0,1,2) and average "Good" rating.
	Ordered bool
}

// Figure5 runs the speech-quality validation: 100 random speeches for
// the ACS visual scenario are ranked by the model; worst/median/best are
// rated by 50 simulated workers on four adjectives, with pairwise wins.
func Figure5(seed int64) (*Figure5Result, error) {
	rel := dataset.ACS(dataset.DefaultRows["acs"], seed)
	view := rel.FullView()
	target := rel.Schema().TargetIndex("visual")
	prior := fact.MeanPrior(view, target)
	candidates := fact.Generate(view, target, fact.GenerateOptions{MaxDims: 2})
	speeches, utilities := randomSpeeches(view, target, candidates, prior, 100, 3, seed)
	worst, median, best := bestWorstMedian(utilities)

	profiles := []userstudy.SpeechProfile{
		speechProfile("Worst", view, target, speeches[worst], prior),
		speechProfile("Medium", view, target, speeches[median], prior),
		speechProfile("Best", view, target, speeches[best], prior),
	}
	results := userstudy.PreferenceStudy(profiles, userstudy.Adjectives4, userstudy.Panel(50, seed))
	ordered := true
	for _, adj := range userstudy.Adjectives4 {
		if !(results[0].AvgRating[adj] <= results[2].AvgRating[adj]) {
			ordered = false
		}
	}
	return &Figure5Result{Results: results, Ordered: ordered}, nil
}

// Render prints the Figure 5 ratings and wins.
func (r *Figure5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: AMT preferences vs speech quality model (50 workers)")
	fmt.Fprintf(w, "%-8s", "Speech")
	for _, adj := range userstudy.Adjectives4 {
		fmt.Fprintf(w, " %12s", adj)
	}
	fmt.Fprintln(w)
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-8s", res.Name)
		for _, adj := range userstudy.Adjectives4 {
			fmt.Fprintf(w, "  %4.2f/%4dW", res.AvgRating[adj], res.Wins[adj])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "model-order preserved in ratings: %v\n", r.Ordered)
}

// Figure6Result holds the estimation study: median worker estimates vs
// correct values per (borough, age group), for worst and best speech.
type Figure6Result struct {
	Worst, Best []userstudy.EstimatePoint
	// WorstErr and BestErr are summed |median − correct| per speech.
	WorstErr, BestErr float64
}

// Figure6 reproduces the visual-impairment estimation study: workers
// estimate 15 data points (5 boroughs × 3 age groups) after hearing the
// worst- or best-ranked speech; estimates after the best speech track the
// correct values much more closely.
func Figure6(seed int64) (*Figure6Result, error) {
	rel := dataset.ACS(dataset.DefaultRows["acs"], seed)
	view := rel.FullView()
	target := rel.Schema().TargetIndex("visual")
	prior := fact.MeanPrior(view, target)
	candidates := fact.Generate(view, target, fact.GenerateOptions{MaxDims: 2})
	speeches, utilities := randomSpeeches(view, target, candidates, prior, 100, 3, seed)
	worst, _, best := bestWorstMedian(utilities)

	boroughDim := rel.Schema().DimIndex("borough")
	ageDim := rel.Schema().DimIndex("age_group")
	var points []fact.Scope
	for bc := int32(0); bc < int32(rel.Dim(boroughDim).Cardinality()); bc++ {
		for ac := int32(0); ac < int32(rel.Dim(ageDim).Cardinality()); ac++ {
			points = append(points, fact.NewScope([]int{boroughDim, ageDim}, []int32{bc, ac}))
		}
	}
	workers := userstudy.Panel(20, seed)
	res := &Figure6Result{
		Worst: userstudy.EstimationStudy(rel, speeches[worst], points, target, float64(prior), workers, 20),
		Best:  userstudy.EstimationStudy(rel, speeches[best], points, target, float64(prior), workers, 20),
	}
	for _, p := range res.Worst {
		res.WorstErr += math.Abs(p.Median - p.Correct)
	}
	for _, p := range res.Best {
		res.BestErr += math.Abs(p.Median - p.Correct)
	}
	return res, nil
}

// Render prints the per-point medians for both speeches.
func (r *Figure6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: worker estimates for visual impairment (median of 20 HITs/point)")
	fmt.Fprintf(w, "%-30s %9s %12s %12s\n", "Point", "Correct", "Worst-med", "Best-med")
	for i := range r.Worst {
		label := fmt.Sprintf("%v", r.Worst[i].Labels)
		fmt.Fprintf(w, "%-30s %9.1f %12.1f %12.1f\n",
			label, r.Worst[i].Correct, r.Worst[i].Median, r.Best[i].Median)
	}
	fmt.Fprintf(w, "summed |median-correct|: worst=%.1f best=%.1f\n", r.WorstErr, r.BestErr)
}

// Figure7Result holds the conflict-resolution model comparison for both
// data sets.
type Figure7Result struct {
	ACS     []userstudy.ModelError
	Flights []userstudy.ModelError
}

// figure7Cases builds the four conflicting-fact questions for a relation:
// facts on two values of each of two dimensions; the questions are the
// four value combinations.
func figure7Cases(rel *relation.Relation, target int, dimA, dimB int, valsA, valsB []string) []userstudy.ConflictCase {
	view := rel.FullView()
	prior := view.Stats(target).Mean()
	factValue := func(dim int, val string) float64 {
		code, _ := rel.Dim(dim).Code(val)
		scope := fact.NewScope([]int{dim}, []int32{code})
		return view.Select(scope.Predicates()).Stats(target).Mean()
	}
	var all []float64
	for _, v := range valsA {
		all = append(all, factValue(dimA, v))
	}
	for _, v := range valsB {
		all = append(all, factValue(dimB, v))
	}
	var cases []userstudy.ConflictCase
	for i, va := range valsA {
		for j, vb := range valsB {
			ca, _ := rel.Dim(dimA).Code(va)
			cb, _ := rel.Dim(dimB).Code(vb)
			scope := fact.NewScope([]int{dimA, dimB}, []int32{ca, cb})
			sub := view.Select(scope.Predicates())
			if sub.NumRows() == 0 {
				continue
			}
			cases = append(cases, userstudy.ConflictCase{
				InScope:   []float64{all[i], all[len(valsA)+j]},
				AllValues: all,
				Truth:     sub.Stats(target).Mean(),
				Prior:     prior,
			})
		}
	}
	return cases
}

// Figure7 reproduces the conflicting-information study on ACS (borough ×
// age group) and flights (season × time of day): four user-behaviour
// models predict worker estimates; the Closest model yields the best
// approximation, validating the optimization model.
func Figure7(seed int64) (*Figure7Result, error) {
	workers := userstudy.Panel(20, seed)

	acs := dataset.ACS(dataset.DefaultRows["acs"], seed)
	acsCases := figure7Cases(acs, acs.Schema().TargetIndex("visual"),
		acs.Schema().DimIndex("borough"), acs.Schema().DimIndex("age_group"),
		[]string{"Staten Island", "Bronx"}, []string{"Teenagers", "Elders"})

	fl := dataset.Flights(dataset.DefaultRows["flights"], seed)
	flCases := figure7Cases(fl, fl.Schema().TargetIndex("delay"),
		fl.Schema().DimIndex("season"), fl.Schema().DimIndex("time_of_day"),
		[]string{"Winter", "Summer"}, []string{"Morning", "Evening"})

	return &Figure7Result{
		ACS:     userstudy.ConflictStudy(acsCases, workers, 20),
		Flights: userstudy.ConflictStudy(flCases, workers, 20),
	}, nil
}

// Render prints the per-model median errors for both data sets.
func (r *Figure7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: error predicting how workers process conflicting facts")
	fmt.Fprintf(w, "%-12s %10s %10s\n", "Model", "ACS", "Flights")
	for i := range r.ACS {
		fmt.Fprintf(w, "%-12s %10.2f %10.2f\n",
			r.ACS[i].Model.String(), r.ACS[i].MedianError, r.Flights[i].MedianError)
	}
}

// Figure8Result holds the interface-comparison study.
type Figure8Result struct {
	Participants []userstudy.ParticipantResult
	// FasterByVoice counts participants with lower voice answer times.
	FasterByVoice int
}

// Figure8 reproduces the voice-vs-visual user study with 10 simulated
// participants.
func Figure8(seed int64) *Figure8Result {
	res := &Figure8Result{Participants: userstudy.InterfaceStudy(10, seed)}
	for _, p := range res.Participants {
		if p.VocalTime < p.VisualTime {
			res.FasterByVoice++
		}
	}
	return res
}

// Render prints the scatter data of Figure 8.
func (r *Figure8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: voice vs visual interface (10 participants)")
	fmt.Fprintf(w, "%-4s %12s %12s %11s %11s\n", "#", "VocalTime", "VisualTime", "VocalEval", "VisualEval")
	for i, p := range r.Participants {
		fmt.Fprintf(w, "%-4d %11.1fs %11.1fs %11.1f %11.1f\n",
			i+1, p.VocalTime, p.VisualTime, p.VocalEval, p.VisualEval)
	}
	fmt.Fprintf(w, "faster by voice: %d/10\n", r.FasterByVoice)
}

// Figure11Result holds the baseline-vs-ours preference study.
type Figure11Result struct {
	Results []userstudy.RatingResult
}

// Figure11 compares speeches from the sampling baseline (value ranges)
// against our pre-processed point-fact speeches on the three flight
// queries of the prior publication, rated on six adjectives by simulated
// workers (900 HITs in the paper's setup: 50 workers × 3 queries × 6
// adjectives).
func Figure11(seed int64) (*Figure11Result, error) {
	rel := dataset.Flights(dataset.DefaultRows["flights"], seed)
	// Delay is the target with enough value spread for rating studies;
	// the paper's deployment exposes cancellation probability, but the
	// adjectives differentiate on how well listeners can reproduce the
	// data, which the continuous target measures more sharply.
	target := rel.Schema().TargetIndex("delay")
	full := rel.FullView()

	// The three queries: flights in general, in the Northeast, and in
	// the Northeast in Winter.
	ne, err := rel.PredicateByName("origin_region", "Northeast")
	if err != nil {
		return nil, err
	}
	wi, err := rel.PredicateByName("season", "Winter")
	if err != nil {
		return nil, err
	}
	queries := [][]relation.Predicate{nil, {ne}, {ne, wi}}

	var oursAcc, baseAcc, baseWidth float64
	prior := fact.MeanPrior(full, target)
	for qi, preds := range queries {
		view := full.Select(preds)
		facts := fact.Generate(view, target, fact.GenerateOptions{MaxDims: 2})
		e := summarize.NewEvaluator(view, target, facts, prior)
		ours := summarize.Greedy(e, summarize.Options{MaxFacts: 3})
		oursAcc += ours.ScaledUtility()

		// The baseline works under run-time constraints: a modest sampling
		// budget keeps latency low at the price of wide ranges.
		res := baseline.SamplingAnswer(view, target, nil, baseline.SamplingOptions{
			MaxFacts: 3, SampleSize: 32, Rounds: 4, Seed: seed + int64(qi),
		})
		// Listeners interpret ranges by midpoint; accuracy is the scaled
		// utility of the midpoint facts, imprecision the range width
		// relative to the reported value ("between 5 and 10%").
		mid := make([]fact.Fact, len(res.Facts))
		for i, rf := range res.Facts {
			mid[i] = fact.Fact{Scope: rf.Scope, Value: rf.Mid()}
			if m := math.Abs(rf.Mid()); m > 1e-9 {
				baseWidth += rf.Width() / m
			}
		}
		priorErr := fact.Deviation(view, nil, prior, target)
		if priorErr > 0 {
			baseAcc += fact.Utility(view, mid, prior, target) / priorErr
		}
	}
	n := float64(len(queries))
	oursAcc /= n
	baseAcc /= n
	baseWidth /= n * 3

	profiles := []userstudy.SpeechProfile{
		{
			Name:      "Baseline",
			Accuracy:  clamp01(baseAcc),
			Precision: clamp01(1 - 2*baseWidth), // ranges read as imprecise
			Diversity: 0.8,
			Brevity:   0.7, // range phrasing is longer
		},
		{
			Name:      "This",
			Accuracy:  clamp01(oursAcc),
			Precision: 1,
			Diversity: 0.9,
			Brevity:   0.9,
		},
	}
	results := userstudy.PreferenceStudy(profiles, userstudy.Adjectives6, userstudy.Panel(150, seed))
	return &Figure11Result{Results: results}, nil
}

// Render prints the Figure 11 ratings and wins.
func (r *Figure11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: AMT preferences, sampling baseline vs this approach")
	fmt.Fprintf(w, "%-9s", "Method")
	for _, adj := range userstudy.Adjectives6 {
		fmt.Fprintf(w, " %12s", adj)
	}
	fmt.Fprintln(w)
	for _, res := range r.Results {
		fmt.Fprintf(w, "%-9s", res.Name)
		for _, adj := range userstudy.Adjectives6 {
			fmt.Fprintf(w, "  %4.2f/%4dW", res.AvgRating[adj], res.Wins[adj])
		}
		fmt.Fprintln(w)
	}
}

// MLResult holds the Section VIII-E machine-learning experiment.
type MLResult struct {
	TrainPairs, TestPairs int
	// AvgUtilityOurs and AvgUtilityML are scaled utilities on test
	// queries.
	AvgUtilityOurs, AvgUtilityML float64
	// Redundancy scores per method (ML speeches tend to repeat
	// dimensions).
	RedundancyOurs, RedundancyML float64
	// Ratings from the simulated AMT comparison.
	Ratings []userstudy.RatingResult
}

// MLExperiment reproduces the seq2seq study: train the ML summarizer on
// pairs from the dimension with the most distinct values (origin region,
// as in the paper), predict speeches for held-out queries, and compare
// both utility and simulated AMT ratings. The paper reports ML ratings
// below 5.92 vs ours above 7.28 on every adjective.
func MLExperiment(seed int64) (*MLResult, error) {
	rel := dataset.Flights(dataset.DefaultRows["flights"], seed)
	cfg := engine.Config{
		Dataset: rel.Name(), Targets: []string{"delay"},
		Dimensions: []string{"origin_region"}, MaxQueryLen: 1,
		MaxFactDims: 2, MaxFacts: 3, Prior: engine.PriorGlobalMean,
	}
	problems, err := engine.Problems(rel, cfg)
	if err != nil {
		return nil, err
	}
	// Keep only one-predicate queries (one per region value).
	var regionProblems []engine.Problem
	for _, p := range problems {
		if len(p.Query.Predicates) == 1 {
			regionProblems = append(regionProblems, p)
		}
	}
	if len(regionProblems) < 5 {
		return nil, fmt.Errorf("ml experiment: only %d region queries", len(regionProblems))
	}
	nTest := 3
	if len(regionProblems) <= nTest {
		nTest = 1
	}
	train, test := regionProblems[:len(regionProblems)-nTest], regionProblems[len(regionProblems)-nTest:]

	solveOurs := func(p *engine.Problem) summarize.Summary {
		facts := p.GenerateFacts(cfg.MaxFactDims)
		e := summarize.AcquireEvaluator(p.View, p.Target, facts, p.Prior)
		defer summarize.ReleaseEvaluator(e)
		return summarize.Greedy(e, summarize.Options{MaxFacts: cfg.MaxFacts})
	}

	ml := baseline.NewMLSummarizer(rel)
	var pairs []baseline.MLPair
	for i := range train {
		sum := solveOurs(&train[i])
		pairs = append(pairs, baseline.MLPair{Query: train[i].Query, Facts: sum.Facts})
	}
	ml.Train(pairs)

	res := &MLResult{TrainPairs: len(pairs), TestPairs: len(test)}
	for i := range test {
		p := &test[i]
		ours := solveOurs(p)
		mlFacts := ml.Predict(p.Query, p.View, p.Target)
		priorErr := fact.Deviation(p.View, nil, p.Prior, p.Target)
		if priorErr > 0 {
			res.AvgUtilityOurs += ours.Utility / priorErr
			res.AvgUtilityML += fact.Utility(p.View, mlFacts, p.Prior, p.Target) / priorErr
		}
		res.RedundancyOurs += baseline.RedundancyScore(ours.Facts)
		res.RedundancyML += baseline.RedundancyScore(mlFacts)
	}
	n := float64(len(test))
	res.AvgUtilityOurs /= n
	res.AvgUtilityML /= n
	res.RedundancyOurs /= n
	res.RedundancyML /= n

	profiles := []userstudy.SpeechProfile{
		{Name: "ML", Accuracy: clamp01(res.AvgUtilityML), Precision: 0.9,
			Diversity: clamp01(1 - res.RedundancyML), Brevity: 0.8},
		{Name: "This", Accuracy: clamp01(res.AvgUtilityOurs), Precision: 1,
			Diversity: clamp01(1 - res.RedundancyOurs), Brevity: 0.9},
	}
	res.Ratings = userstudy.PreferenceStudy(profiles, userstudy.Adjectives6, userstudy.Panel(150, seed))
	return res, nil
}

// Render prints the ML-experiment outcome.
func (r *MLResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Section VIII-E ML experiment: seq2seq substitute vs this approach")
	fmt.Fprintf(w, "training pairs: %d, test queries: %d\n", r.TrainPairs, r.TestPairs)
	fmt.Fprintf(w, "scaled utility: ours=%.3f ml=%.3f\n", r.AvgUtilityOurs, r.AvgUtilityML)
	fmt.Fprintf(w, "redundancy:     ours=%.3f ml=%.3f\n", r.RedundancyOurs, r.RedundancyML)
	for _, res := range r.Ratings {
		fmt.Fprintf(w, "%-5s", res.Name)
		for _, adj := range userstudy.Adjectives6 {
			fmt.Fprintf(w, "  %s=%.2f", adj, res.AvgRating[adj])
		}
		fmt.Fprintln(w)
	}
}
