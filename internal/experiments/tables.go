package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Table1Row describes one data set (Table I of the paper).
type Table1Row struct {
	Name    string
	SizeMB  float64
	Rows    int
	Dims    int
	Targets int
}

// Table1Result is the data-set overview.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 regenerates the data-set overview with the synthetic substrate.
// Sizes are in-memory footprints of the scaled-down relations; dimension
// and target counts match the paper (flights carries both evaluation
// targets, cancellation and delay, in one relation).
func Table1(seed int64) *Table1Result {
	res := &Table1Result{}
	order := []string{"acs", "stackoverflow", "flights", "primaries"}
	display := map[string]string{
		"acs": "ACS NY", "stackoverflow": "Stack Overflow",
		"flights": "Flights", "primaries": "Primaries",
	}
	for _, name := range order {
		rel := dataset.ByName(name, seed)
		res.Rows = append(res.Rows, Table1Row{
			Name:    display[name],
			SizeMB:  float64(rel.SizeBytes()) / (1 << 20),
			Rows:    rel.NumRows(),
			Dims:    rel.NumDims(),
			Targets: rel.NumTargets(),
		})
	}
	return res
}

// Render prints Table I.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table I: overview of data sets used for experiments")
	fmt.Fprintf(w, "%-15s %9s %8s %6s %8s\n", "Data Set", "Size", "Rows", "#Dims", "#Targets")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-15s %7.2fMB %8d %6d %8d\n", row.Name, row.SizeMB, row.Rows, row.Dims, row.Targets)
	}
}

// randomSpeeches draws n random speeches of the given length from the
// candidate facts and scores each with the utility model — the speech
// pool construction of the Figure 5 and Table II studies.
func randomSpeeches(view *relation.View, target int, candidates []fact.Fact, prior fact.Prior, n, length int, seed int64) ([][]fact.Fact, []float64) {
	rng := rand.New(rand.NewSource(seed))
	speeches := make([][]fact.Fact, n)
	utilities := make([]float64, n)
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		var speech []fact.Fact
		for len(speech) < length && len(seen) < len(candidates) {
			j := rng.Intn(len(candidates))
			if seen[j] {
				continue
			}
			seen[j] = true
			speech = append(speech, candidates[j])
		}
		speeches[i] = speech
		utilities[i] = fact.Utility(view, speech, prior, target)
	}
	return speeches, utilities
}

// bestWorstMedian returns the indices of the minimum-, median- and
// maximum-utility entries.
func bestWorstMedian(utilities []float64) (worst, median, best int) {
	idx := make([]int, len(utilities))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return utilities[idx[a]] < utilities[idx[b]] })
	return idx[0], idx[len(idx)/2], idx[len(idx)-1]
}

// Table2Result holds the worst- and best-ranked speeches of the ACS
// visual-impairment scenario (Table II of the paper).
type Table2Result struct {
	WorstText, BestText       string
	WorstUtility, BestUtility float64
}

// Table2 regenerates the two alternative speech descriptions: 100 random
// three-fact speeches for the visual-impairment query are ranked by the
// utility model; the worst and best are rendered. The paper's best speech
// spans the age dimension ("About 80 out of 1000 elder persons...") while
// the worst wastes facts on near-identical borough values.
func Table2(seed int64) (*Table2Result, error) {
	rel := dataset.ACS(dataset.DefaultRows["acs"], seed)
	view := rel.FullView()
	target := rel.Schema().TargetIndex("visual")
	prior := fact.MeanPrior(view, target)
	candidates := fact.Generate(view, target, fact.GenerateOptions{MaxDims: 2})

	speeches, utilities := randomSpeeches(view, target, candidates, prior, 100, 3, seed)
	worst, _, best := bestWorstMedian(utilities)

	tpl := engine.Template{TargetPhrase: "rate of visual impairment per 1000 persons"}
	q := engine.Query{Target: "visual"}
	priorErr := fact.Deviation(view, nil, prior, target)
	return &Table2Result{
		WorstText:    tpl.Render(rel, q, speeches[worst]),
		BestText:     tpl.Render(rel, q, speeches[best]),
		WorstUtility: utilities[worst] / priorErr,
		BestUtility:  utilities[best] / priorErr,
	}, nil
}

// Render prints Table II.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table II: comparing two alternative speech descriptions")
	fmt.Fprintf(w, "Worst speech (scaled utility %.3f):\n  %s\n", r.WorstUtility, r.WorstText)
	fmt.Fprintf(w, "Best speech (scaled utility %.3f):\n  %s\n", r.BestUtility, r.BestText)
}
