package voice

import (
	"fmt"
	"testing"
)

// Metamorphic paraphrase suite: for every query kind, a canonical
// phrasing plus ≥10 synonym / word-order rewrites that MUST classify
// identically — same request type, same kind, same canonical query, and
// the same extended slots. The golden corpus pins exact answers for
// exact texts; this suite pins the equivalence classes between texts,
// which is where classifier regressions hide.

// slotKey flattens everything classification-relevant into a
// comparable string.
func slotKey(c Classification) string {
	k := fmt.Sprintf("type=%v kind=%v query=%s dim=%s k=%d", c.Type, c.Kind, c.Query.Key(), c.Dim, c.K)
	if c.HasDirection {
		k += fmt.Sprintf(" dir=%d", int(c.Direction))
	}
	if c.Window != nil {
		k += fmt.Sprintf(" win=%d..%d", c.Window.From, c.Window.To)
	}
	if c.Constraint != nil {
		k += fmt.Sprintf(" cons=%s|%d|%g", c.Constraint.Target, int(c.Constraint.Op), c.Constraint.Value)
	}
	return k
}

type paraphraseFamily struct {
	name      string
	canonical string
	rewrites  []string
}

func checkFamilies(t *testing.T, ex *Extractor, families []paraphraseFamily) {
	t.Helper()
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			if len(fam.rewrites) < 10 {
				t.Fatalf("family %s has only %d rewrites, need >= 10", fam.name, len(fam.rewrites))
			}
			want := slotKey(Classify(fam.canonical, ex))
			for _, rw := range fam.rewrites {
				if got := slotKey(Classify(rw, ex)); got != want {
					t.Errorf("paraphrase diverged:\n  canonical %q -> %s\n  rewrite   %q -> %s",
						fam.canonical, want, rw, got)
				}
			}
		})
	}
}

func TestMetamorphicFlights(t *testing.T) {
	_, ex := flightsExtractor(t)
	checkFamilies(t, ex, []paraphraseFamily{
		{
			name:      "retrieval",
			canonical: "cancellations in Winter",
			rewrites: []string{
				"Cancellations in winter",
				"cancellations in Winter?",
				"winter cancellations",
				"the cancellations in winter",
				"what are the cancellations in winter",
				"tell me the cancellations in winter",
				"in winter, cancellations",
				"give me winter cancellations please",
				"cancellations during winter",
				"i want the cancellations for winter",
				"WINTER CANCELLATIONS",
			},
		},
		{
			name:      "extremum",
			canonical: "which airline has the highest cancellations",
			rewrites: []string{
				"which airline has the most cancellations",
				"the airline with the highest cancellations",
				"what airline has the maximum cancellations",
				"airline with the largest cancellations",
				"which airline shows the greatest cancellations",
				"tell me the airline with the highest cancellations",
				"highest cancellations by airline",
				"the airline with the worst cancellations",
				"which airline gets the highest cancellations",
				"for which airline are cancellations highest",
				"airline with top cancellations",
			},
		},
		{
			name:      "extremum-min",
			canonical: "which airline has the lowest cancellations",
			rewrites: []string{
				"which airline has the fewest cancellations",
				"the airline with the minimum cancellations",
				"airline with the smallest cancellations",
				"which airline has the least cancellations",
				"what airline has the lowest cancellations",
				"tell me the airline with the fewest cancellations",
				"lowest cancellations by airline",
				"which airline shows the smallest cancellations",
				"the airline with min cancellations",
				"for which airline are cancellations lowest",
				"airline with the least cancellations please",
			},
		},
		{
			name:      "comparison",
			canonical: "compare delays between Winter and Summer",
			rewrites: []string{
				"compare the delays between winter and summer",
				"delays winter versus summer",
				"delays in winter vs summer",
				"what is the difference between winter and summer delays",
				"compare winter delays to summer delays",
				"compare summer and winter delays",
				"a comparison of delays between winter and summer",
				"how do winter delays compare to summer",
				"winter compared to summer delays",
				"please compare delays for winter versus summer",
				"delay comparison winter versus summer",
			},
		},
		{
			name:      "topk",
			canonical: "the top three airlines with the highest cancellations",
			rewrites: []string{
				"top 3 airlines with the highest cancellations",
				"the 3 airlines with the highest cancellations",
				"three airlines with the highest cancellations",
				"the top three airlines by highest cancellations",
				"top three airlines for the highest cancellations",
				"what are the top 3 airlines with the highest cancellations",
				"give me the top three airlines with the highest cancellations",
				"the top 3 airlines ranked by highest cancellations",
				"which are the top three airlines with the highest cancellations",
				"highest cancellations the top three airlines",
				"tell me the top 3 airlines with the highest cancellations",
			},
		},
		{
			name:      "trend",
			canonical: "how did delays change since February",
			rewrites: []string{
				"how have delays changed since february",
				"delays since february",
				"the change in delays since february",
				"what is the delay trend since february",
				"how are delays changing since february",
				"show the delays since february",
				"since february, how did delays change",
				"delay history since february",
				"the trend of delays since february",
				"delays evolution since february",
				"how did the delays evolve since february",
			},
		},
		{
			name:      "constrained",
			canonical: "airlines with cancellations over 10 percent",
			rewrites: []string{
				"airlines with cancellations above 10 percent",
				"airlines whose cancellations are over 10 percent",
				"the airlines with cancellations over 10 percent",
				"airlines having cancellations over 10 percent",
				"which airlines have cancellations over 10 percent",
				"airlines where cancellations are above 10 percent",
				"airlines with cancellations exceeding 10 percent",
				"show airlines with cancellations over 10 percent",
				"airlines with the cancellations over 10 percent",
				"list the airlines with cancellations above 10 percent",
				"airlines with cancellations greater than 10 percent",
			},
		},
		{
			name:      "help",
			canonical: "help",
			rewrites: []string{
				"help me",
				"please help",
				"what can you do",
				"what can you tell me",
				"what can i ask",
				"how does this work",
				"what do you know",
				"instructions",
				"instructions please",
				"can you help me",
				"i need help",
			},
		},
		{
			name:      "repeat",
			canonical: "repeat",
			rewrites: []string{
				"repeat that",
				"repeat please",
				"please repeat that",
				"say that again",
				"say that again please",
				"come again",
				"once more",
				"once more please",
				"pardon",
				"pardon me",
				"can you repeat that",
			},
		},
	})
}

func TestMetamorphicHousing(t *testing.T) {
	ex := housingExtractor(t)
	checkFamilies(t, ex, []paraphraseFamily{
		{
			name:      "multi-constraint",
			canonical: "rent for Two bedroom apartments in cities with population over 500 thousand",
			rewrites: []string{
				"rent for two bedroom apartments in cities with population over 500k",
				"two bedroom rent in cities with population over 500 thousand",
				"rent for two bedroom homes in cities with a population over 500 thousand",
				"the rent for two bedroom apartments in cities with population above 500 thousand",
				"in cities with population over 500 thousand, rent for two bedroom apartments",
				"rent for two bedroom apartments where population is over 500 thousand in cities",
				"two bedroom apartment rent for cities with population over 500k people",
				"rent of two bedroom places in cities having population over 500 thousand",
				"show rent for two bedroom apartments in cities with population greater than 500 thousand",
				"rent for two bedroom apartments in cities whose population is over 500 thousand",
				"cities with population exceeding 500 thousand rent for two bedroom apartments",
			},
		},
		{
			name:      "topk",
			canonical: "the three cities with the highest rent",
			rewrites: []string{
				"the 3 cities with the highest rent",
				"top three cities with the highest rent",
				"top 3 cities by highest rent",
				"three cities with the highest rent",
				"what are the three cities with the highest rent",
				"give me the three cities with the highest rent",
				"the three cities with the highest rents",
				"which are the three cities with the highest rent",
				"tell me the three cities with the highest rent",
				"the three cities with the highest monthly rent",
				"highest rent the top three cities",
			},
		},
		{
			name:      "trend-window",
			canonical: "how did rent change since January 2024",
			rewrites: []string{
				"how has rent changed since january 2024",
				"rent since january 2024",
				"the rent trend since january 2024",
				"what is the trend of rent since january 2024",
				"since january 2024 how did rent change",
				"show me rents since january 2024",
				"rent history since january 2024",
				"how is rent changing since january 2024",
				"the change in rent since january 2024",
				"how did rents evolve since january 2024",
				"rental prices since january 2024",
			},
		},
		{
			name:      "followup-value",
			canonical: "what about Texas",
			rewrites: []string{
				"What about texas?",
				"how about Texas",
				"and Texas",
				"what about texas then",
				"how about texas instead",
				"and for Texas",
				"what about in Texas",
				"how about for texas",
				"and in texas",
				"what about texas please",
				"and texas now",
			},
		},
		{
			name:      "followup-kind",
			canonical: "what about the lowest",
			rewrites: []string{
				"how about the lowest",
				"and the lowest",
				"what about the minimum",
				"and the smallest",
				"how about the least",
				"what about the fewest",
				"and the min",
				"what about the lowest one",
				"how about the minimum instead",
				"and the lowest then",
				"what about the smallest",
			},
		},
	})
}
