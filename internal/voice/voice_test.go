package voice

import (
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/relation"
)

func flightsExtractor(t testing.TB) (*relation.Relation, *Extractor) {
	t.Helper()
	rel := dataset.Flights(1000, 1)
	ex := NewExtractor(rel, []Sample{
		{Phrase: "cancellations", Target: "cancelled"},
		{Phrase: "cancellation probability", Target: "cancelled"},
		{Phrase: "delays", Target: "delay"},
	}, 2)
	return rel, ex
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Cancellations in Winter?":  "cancellations in winter",
		"  What's the   DELAY!! ":   "what s the delay",
		"flight UA-123 to NYC":      "flight ua 123 to nyc",
		"":                          "",
		"!!!":                       "",
		"United  States of America": "united states of america",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestContainsPhrase(t *testing.T) {
	cases := []struct {
		text, phrase string
		want         bool
	}{
		{"cancellations in winter", "winter", true},
		{"cancellations in winter", "win", false}, // word boundary
		{"early winter storms", "winter", true},
		{"winter", "winter", true},
		{"winterize everything", "winter", false},
		{"x", "", false},
		{"the united states wins", "united states", true},
	}
	for _, c := range cases {
		if got := containsPhrase(c.text, c.phrase); got != c.want {
			t.Errorf("containsPhrase(%q, %q) = %v, want %v", c.text, c.phrase, got, c.want)
		}
	}
}

func TestExtractBasic(t *testing.T) {
	_, ex := flightsExtractor(t)
	q, ok := ex.Extract("cancellations in Winter?")
	if !ok {
		t.Fatal("target not recognized")
	}
	if q.Target != "cancelled" {
		t.Errorf("target = %q", q.Target)
	}
	if len(q.Predicates) != 1 || q.Predicates[0].Column != "season" || q.Predicates[0].Value != "Winter" {
		t.Errorf("predicates = %v", q.Predicates)
	}
}

func TestExtractTwoPredicates(t *testing.T) {
	_, ex := flightsExtractor(t)
	q, ok := ex.Extract("what is the delay for AA in February")
	if !ok {
		t.Fatal("target not recognized")
	}
	if len(q.Predicates) != 2 {
		t.Fatalf("predicates = %v", q.Predicates)
	}
	cols := map[string]string{}
	for _, p := range q.Predicates {
		cols[p.Column] = p.Value
	}
	if cols["airline"] != "AA" || cols["month"] != "February" {
		t.Errorf("predicates = %v", q.Predicates)
	}
}

func TestExtractNoTarget(t *testing.T) {
	_, ex := flightsExtractor(t)
	if _, ok := ex.Extract("tell me a joke"); ok {
		t.Error("joke request should have no target")
	}
}

func TestExtractPrefersLongestTarget(t *testing.T) {
	rel := dataset.StackOverflow(500, 1)
	ex := NewExtractor(rel, []Sample{
		{Phrase: "satisfaction", Target: "career_satisfaction"},
		{Phrase: "job satisfaction", Target: "job_satisfaction"},
	}, 2)
	q, ok := ex.Extract("what is the job satisfaction in Germany")
	if !ok || q.Target != "job_satisfaction" {
		t.Errorf("longest-phrase target = %+v ok=%v", q, ok)
	}
}

func TestExtractIgnoresUnknownTargetSample(t *testing.T) {
	rel := dataset.Flights(200, 1)
	ex := NewExtractor(rel, []Sample{{Phrase: "unicorns", Target: "not_a_column"}}, 2)
	if _, ok := ex.Extract("unicorns in Winter"); ok {
		t.Error("sample with unknown target must be ignored")
	}
}

func TestClassifyHelp(t *testing.T) {
	_, ex := flightsExtractor(t)
	for _, text := range []string{"help", "What can you do?", "how does this work"} {
		if c := Classify(text, ex); c.Type != Help {
			t.Errorf("Classify(%q) = %v, want Help", text, c.Type)
		}
	}
}

func TestClassifyRepeat(t *testing.T) {
	_, ex := flightsExtractor(t)
	for _, text := range []string{"repeat that", "say that again please"} {
		if c := Classify(text, ex); c.Type != Repeat {
			t.Errorf("Classify(%q) = %v, want Repeat", text, c.Type)
		}
	}
}

func TestClassifySupportedQuery(t *testing.T) {
	_, ex := flightsExtractor(t)
	c := Classify("cancellations in Winter", ex)
	if c.Type != SQuery || c.Kind != Retrieval || c.Predicates != 1 {
		t.Errorf("classification = %+v", c)
	}
	c0 := Classify("what is the average delay", ex)
	if c0.Type != SQuery || c0.Predicates != 0 {
		t.Errorf("zero-predicate query = %+v", c0)
	}
}

func TestClassifyUnsupportedComparison(t *testing.T) {
	_, ex := flightsExtractor(t)
	c := Classify("make a comparison of delays between Winter and Summer", ex)
	if c.Type != UQuery || c.Kind != Comparison {
		t.Errorf("comparison = %+v", c)
	}
}

func TestClassifyUnsupportedExtremum(t *testing.T) {
	_, ex := flightsExtractor(t)
	c := Classify("which airline has the highest cancellations", ex)
	if c.Type != UQuery || c.Kind != Extremum {
		t.Errorf("extremum = %+v", c)
	}
}

func TestClassifyTooManyPredicates(t *testing.T) {
	rel := dataset.Flights(1000, 1)
	ex := NewExtractor(rel, []Sample{{Phrase: "delays", Target: "delay"}}, 1)
	c := Classify("delays for AA in February on Mon", ex)
	if c.Type != UQuery {
		t.Errorf("over-length query = %+v, want U-Query", c)
	}
}

func TestClassifyOther(t *testing.T) {
	_, ex := flightsExtractor(t)
	for _, text := range []string{"play some music", "thank you", "good morning"} {
		if c := Classify(text, ex); c.Type != Other {
			t.Errorf("Classify(%q) = %v, want Other", text, c.Type)
		}
	}
}

func TestSimulateLogRoundTrip(t *testing.T) {
	rel, ex := flightsExtractor(t)
	dep := &Deployment{
		Name: "Flights", Rel: rel, Extractor: ex,
		TargetPhrases: map[string][]string{
			"cancelled": {"cancellations"},
			"delay":     {"delays"},
		},
	}
	counts := Table3Counts()["Flights"]
	log := dep.SimulateLog(counts, 7)
	total := 0
	for _, c := range counts {
		total += c
	}
	if len(log) != total {
		t.Fatalf("log length = %d, want %d", len(log), total)
	}
	// Classifying the log recovers the intended distribution with high
	// accuracy (small slack for genuinely ambiguous utterances).
	got := map[RequestType]int{}
	misses := 0
	for _, entry := range log {
		c := Classify(entry.Text, ex)
		got[c.Type]++
		if c.Type != entry.Intent {
			misses++
		}
	}
	if misses > total/10 {
		t.Errorf("classifier missed %d/%d intents", misses, total)
		for _, entry := range log {
			if c := Classify(entry.Text, ex); c.Type != entry.Intent {
				t.Logf("  %q: want %v got %v", entry.Text, entry.Intent, c.Type)
			}
		}
	}
}

func TestSimulateLogDeterministic(t *testing.T) {
	rel, ex := flightsExtractor(t)
	dep := &Deployment{Name: "Flights", Rel: rel, Extractor: ex,
		TargetPhrases: map[string][]string{"delay": {"delays"}}}
	counts := map[RequestType]int{SQuery: 10, Help: 2}
	a := dep.SimulateLog(counts, 3)
	b := dep.SimulateLog(counts, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("log generation not deterministic")
		}
	}
}

func TestTable3Counts(t *testing.T) {
	counts := Table3Counts()
	if len(counts) != 3 {
		t.Fatalf("deployments = %d", len(counts))
	}
	for name, m := range counts {
		total := 0
		for _, c := range m {
			total += c
		}
		if total != 50 {
			t.Errorf("%s total = %d, want 50 (last 50 requests)", name, total)
		}
	}
}

func TestRequestTypeStrings(t *testing.T) {
	want := []string{"Help", "Repeat", "S-Query", "U-Query", "Other", "Follow-up"}
	for i, rt := range RequestTypes() {
		if rt.String() != want[i] {
			t.Errorf("type %d = %q, want %q", i, rt.String(), want[i])
		}
	}
	kinds := []QueryKind{Retrieval, Comparison, Extremum, TopK, Trend}
	names := []string{"retrieval", "comparison", "extremum", "topk", "trend"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("kind %d = %q", i, k.String())
		}
	}
}

func TestExtractDimension(t *testing.T) {
	_, ex := flightsExtractor(t)
	dim, ok := ex.ExtractDimension("which airline has the highest cancellations")
	if !ok || dim != "airline" {
		t.Errorf("dimension = %q ok=%v, want airline", dim, ok)
	}
	// Underscored column names match their spoken form.
	dim, ok = ex.ExtractDimension("cancellations by time of day")
	if !ok || dim != "time_of_day" {
		t.Errorf("dimension = %q ok=%v, want time_of_day", dim, ok)
	}
	if _, ok := ex.ExtractDimension("tell me a joke"); ok {
		t.Error("no dimension should match")
	}
}

func TestExtractValuesSameDimension(t *testing.T) {
	_, ex := flightsExtractor(t)
	vals := ex.ExtractValues("compare delays between Winter and Summer")
	if len(vals) != 2 {
		t.Fatalf("values = %v, want 2", vals)
	}
	seasons := map[string]bool{}
	for _, v := range vals {
		if v.Column != "season" {
			t.Errorf("column = %q, want season", v.Column)
		}
		seasons[v.Value] = true
	}
	if !seasons["Winter"] || !seasons["Summer"] {
		t.Errorf("values = %v", vals)
	}
}

func TestExtractValuesMixedDimensions(t *testing.T) {
	_, ex := flightsExtractor(t)
	vals := ex.ExtractValues("AA in February")
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
}
