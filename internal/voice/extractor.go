// Package voice simulates the voice front-end of the system (Figure 2):
// mapping recognized text to queries (target column plus equality
// predicates), classifying incoming requests the way Section VIII-D
// analyzes the public deployment logs, and synthesizing deployment logs
// for the Table III / Figure 9 experiments.
//
// In the generate → evaluate → solve → serve flow it is the serve
// stage's first step: Classify and the Extractor turn raw utterances
// into the structured queries the speech store was pre-processed to
// answer; Normalize defines the canonical text identity the HTTP
// tier's answer cache keys on.
//
// The paper trains an extractor "with a few samples" on the Google
// Assistant platform; this package substitutes a deterministic
// keyword/synonym extractor trained from the same kind of samples.
package voice

import (
	"sort"
	"strings"

	"cicero/internal/engine"
	"cicero/internal/relation"
)

// Sample teaches the extractor that a phrase refers to a target column,
// mirroring the few-shot intent samples of the Assistant platform.
type Sample struct {
	Phrase string
	Target string
}

// Extractor maps voice-query text to structured queries.
type Extractor struct {
	rel *relation.Relation
	// targetPhrases maps normalized phrases to target column names,
	// longest-first at match time.
	targetPhrases map[string]string
	// values indexes normalized dimension values, longest first so
	// multi-word values ("Staten Island") win over substrings.
	values []valueEntry
	// maxQueryLen bounds supported queries; longer ones are classified
	// as unsupported.
	maxQueryLen int
	// dimPhrases indexes dimension column mentions, singular and
	// plural ("city", "cities"), longest-first at match time.
	dimPhrases []dimPhrase
	// Time-dimension metadata filled by detectTimeDim: timeDim is the
	// column index (-1 when the relation has no time dimension),
	// periods its values in chronological order, periodIdx the lookup
	// from normalized period phrase to chronological index.
	timeDim   int
	timeName  string
	periods   []string
	periodIdx map[string]int
}

type valueEntry struct {
	phrase string
	dim    int
	value  string
}

type dimPhrase struct {
	phrase string
	dim    string
}

// NewExtractor builds an extractor for a relation. The samples provide
// target synonyms beyond the column names themselves; the dimension value
// vocabulary comes from the relation's dictionaries. maxQueryLen is the
// maximal number of predicates of supported queries.
func NewExtractor(rel *relation.Relation, samples []Sample, maxQueryLen int) *Extractor {
	e := &Extractor{
		rel:           rel,
		targetPhrases: make(map[string]string),
		maxQueryLen:   maxQueryLen,
	}
	for _, t := range rel.Schema().Targets {
		e.targetPhrases[Normalize(strings.ReplaceAll(t, "_", " "))] = t
	}
	for _, s := range samples {
		if rel.Schema().TargetIndex(s.Target) >= 0 {
			e.targetPhrases[Normalize(s.Phrase)] = s.Target
		}
	}
	for d := 0; d < rel.NumDims(); d++ {
		for _, v := range rel.Dim(d).Values() {
			e.values = append(e.values, valueEntry{
				phrase: Normalize(v),
				dim:    d,
				value:  v,
			})
		}
	}
	sort.SliceStable(e.values, func(i, j int) bool {
		if len(e.values[i].phrase) != len(e.values[j].phrase) {
			return len(e.values[i].phrase) > len(e.values[j].phrase)
		}
		return e.values[i].phrase < e.values[j].phrase
	})
	e.buildDimPhrases()
	e.detectTimeDim()
	return e
}

// buildDimPhrases indexes the spoken forms of dimension column names,
// including naive singular/plural variants so "cities" finds the "city"
// column and "airline" finds "airlines"-style columns.
func (e *Extractor) buildDimPhrases() {
	seen := map[string]bool{}
	add := func(phrase, dim string) {
		if phrase == "" || seen[phrase] {
			return
		}
		seen[phrase] = true
		e.dimPhrases = append(e.dimPhrases, dimPhrase{phrase: phrase, dim: dim})
	}
	for _, d := range e.rel.Schema().Dimensions {
		base := Normalize(strings.ReplaceAll(d, "_", " "))
		add(base, d)
		words := strings.Fields(base)
		if len(words) == 0 {
			continue
		}
		last := words[len(words)-1]
		variant := ""
		switch {
		case strings.HasSuffix(last, "ies"):
			variant = last[:len(last)-3] + "y"
		case strings.HasSuffix(last, "s"):
			variant = last[:len(last)-1]
		case strings.HasSuffix(last, "y"):
			variant = last[:len(last)-1] + "ies"
		default:
			variant = last + "s"
		}
		if variant != "" && variant != last {
			words[len(words)-1] = variant
			add(strings.Join(words, " "), d)
		}
	}
	sort.SliceStable(e.dimPhrases, func(i, j int) bool {
		if len(e.dimPhrases[i].phrase) != len(e.dimPhrases[j].phrase) {
			return len(e.dimPhrases[i].phrase) > len(e.dimPhrases[j].phrase)
		}
		return e.dimPhrases[i].phrase < e.dimPhrases[j].phrase
	})
}

// TimeDim returns the detected time dimension's column name, if any.
func (e *Extractor) TimeDim() (string, bool) {
	return e.timeName, e.timeDim >= 0
}

// TimePeriods returns the time dimension's values in chronological
// order (Window indexes point into this slice). It returns nil when the
// relation has no time dimension.
func (e *Extractor) TimePeriods() []string {
	return e.periods
}

// Normalize lowercases text and collapses everything that is not a letter
// or digit into single spaces, the canonical form for matching.
func Normalize(s string) string {
	var b strings.Builder
	lastSpace := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastSpace = false
		default:
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// containsPhrase reports whether phrase occurs in text on word
// boundaries. Both inputs must be normalized.
func containsPhrase(text, phrase string) bool {
	if phrase == "" {
		return false
	}
	idx := 0
	for {
		i := strings.Index(text[idx:], phrase)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(phrase)
		okLeft := start == 0 || text[start-1] == ' '
		okRight := end == len(text) || text[end] == ' '
		if okLeft && okRight {
			return true
		}
		idx = start + 1
	}
}

// Extract parses voice-query text into a query. The boolean reports
// whether a target column was recognized; without a target there is no
// data-access query. Dimension predicates are extracted greedily, longest
// value phrase first, at most one per dimension column.
func (e *Extractor) Extract(text string) (engine.Query, bool) {
	norm := Normalize(text)
	target := ""
	bestLen := 0
	for phrase, t := range e.targetPhrases {
		if len(phrase) > bestLen && containsPhrase(norm, phrase) {
			target, bestLen = t, len(phrase)
		}
	}
	if target == "" {
		return engine.Query{}, false
	}
	q := engine.Query{Target: target}
	usedDim := map[int]bool{}
	consumed := norm
	for _, ve := range e.values {
		if usedDim[ve.dim] || !containsPhrase(consumed, ve.phrase) {
			continue
		}
		usedDim[ve.dim] = true
		q.Predicates = append(q.Predicates, engine.NamedPredicate{
			Column: e.rel.Schema().Dimensions[ve.dim],
			Value:  ve.value,
		})
		consumed = strings.Replace(consumed, ve.phrase, " ", 1)
	}
	return q.Canonical(), true
}

// MaxQueryLen returns the supported query length bound.
func (e *Extractor) MaxQueryLen() int { return e.maxQueryLen }

// ExtractDimension finds a dimension *column* mentioned by name in the
// text ("which airline has the most cancellations" → "airline"),
// matching singular and plural spoken forms ("cities" → "city"). Used
// by the extremum / top-k answering paths.
func (e *Extractor) ExtractDimension(text string) (string, bool) {
	norm := Normalize(text)
	for _, dp := range e.dimPhrases {
		if containsPhrase(norm, dp.phrase) {
			return dp.dim, true
		}
	}
	return "", false
}

// ExtractValues returns every dimension value mentioned in the text, in
// match order, without the one-predicate-per-dimension restriction of
// Extract. Comparisons mention two values of the same dimension
// ("between men and women"), which Extract by design collapses.
func (e *Extractor) ExtractValues(text string) []engine.NamedPredicate {
	consumed := Normalize(text)
	var out []engine.NamedPredicate
	for _, ve := range e.values {
		if !containsPhrase(consumed, ve.phrase) {
			continue
		}
		out = append(out, engine.NamedPredicate{
			Column: e.rel.Schema().Dimensions[ve.dim],
			Value:  ve.value,
		})
		consumed = strings.Replace(consumed, ve.phrase, " ", 1)
	}
	return out
}
