package voice

// DefaultSamples returns the target-phrase training samples for one of
// the built-in data sets (dataset.ByName names) — the "few samples" the
// paper trains its Assistant extractor with. Unknown names return nil:
// the extractor then knows the column names only.
func DefaultSamples(dataset string) []Sample {
	switch dataset {
	case "flights":
		return []Sample{
			{Phrase: "cancellations", Target: "cancelled"},
			{Phrase: "cancellation probability", Target: "cancelled"},
			{Phrase: "delays", Target: "delay"},
			{Phrase: "flight delays", Target: "delay"},
		}
	case "acs":
		return []Sample{
			{Phrase: "hearing loss", Target: "hearing"},
			{Phrase: "visual impairment", Target: "visual"},
			{Phrase: "visually impaired", Target: "visual"},
			{Phrase: "cognitive impairment", Target: "cognitive"},
		}
	case "stackoverflow":
		return []Sample{
			{Phrase: "job satisfaction", Target: "job_satisfaction"},
			{Phrase: "optimism", Target: "optimism"},
			{Phrase: "competence", Target: "competence"},
			{Phrase: "salary", Target: "salary_k"},
		}
	case "primaries":
		return []Sample{
			{Phrase: "polling", Target: "pct"},
			{Phrase: "support", Target: "pct"},
			{Phrase: "poll numbers", Target: "pct"},
		}
	case "housing":
		return []Sample{
			{Phrase: "rents", Target: "rent"},
			{Phrase: "rental prices", Target: "rent"},
			{Phrase: "monthly rent", Target: "rent"},
			{Phrase: "residents", Target: "population"},
		}
	default:
		return nil
	}
}

// SpokenTargetPhrases groups sample phrases by target column — the
// spoken vocabulary workload generators draw from when synthesizing
// utterances about a data set.
func SpokenTargetPhrases(samples []Sample) map[string][]string {
	out := make(map[string][]string, len(samples))
	for _, s := range samples {
		out[s.Target] = append(out[s.Target], s.Phrase)
	}
	return out
}
