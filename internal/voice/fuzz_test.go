package voice

import (
	"strings"
	"testing"

	"cicero/internal/dataset"
)

// Native fuzz targets for the voice path: every request passes through
// Classify/Extract before any backend runs, so these prove the
// front-end neither panics nor produces out-of-contract results on
// arbitrary byte sequences (including invalid UTF-8).

// fuzzSeeds is the shared corpus of adversarial phrasings.
var fuzzSeeds = []string{
	"",
	" ",
	"help",
	"repeat that",
	"cancellations in Winter",
	"what is the delay for UA on Mon in the Evening",
	"which airline has the fewest cancellations",
	"compare cancellations between Winter and Summer",
	"help help help repeat repeat",
	"cancellations cancellations cancellations",
	"¿cancelaciones? ✈️ 取消 冬 🎤",
	"Wínter délay façade",
	"\x00\x01\x02cancellations\xff\xfe",
	string([]byte{0xc3, 0x28}),          // invalid UTF-8 sequence
	strings.Repeat("winter ", 200),      // long repeated value
	strings.Repeat("a", 4096),           // long single token
	"min max top least most best worst", // marker pile-up
	"smallest largest greatest fewest",  // extremum synonyms
	"delay UA DL WN B6 AS NK F9",        // many same-dimension values
	"cancellations Winter Spring Summer Fall Morning Night Mon Tue",
	// Extended grammar: top-k counts, constraints, windows, follow-ups.
	"the top 3 airlines with the highest cancellations",
	"top three months by delays",
	"bottom 2 airlines by cancellation probability",
	"the three airlines with the fewest cancellations",
	"airlines with cancellations over 10 percent",
	"months with delay of at least 20 minutes",
	"airlines with cancellations above 500 thousand",
	"with over without numbers",
	"how did delays change since January",
	"delay trend over the last three months",
	"delays between February and June",
	"delays from January to March",
	"delays over the last 2 quarters",
	"what about Winter",
	"what about delays",
	"how about the top five airlines",
	"and the lowest",
	"and delays in Winter",
	"what about",
	"top 99999 airlines",
	"top 0 airlines",
	"since since since",
	"last last months percent",
	"5 airlines 6 months 7 seasons",
	"2 million delays in February",
}

func fuzzExtractor(f *testing.F) *Extractor {
	f.Helper()
	rel := dataset.Flights(400, 1)
	return NewExtractor(rel, []Sample{
		{Phrase: "cancellations", Target: "cancelled"},
		{Phrase: "cancellation probability", Target: "cancelled"},
		{Phrase: "delays", Target: "delay"},
	}, 2)
}

func FuzzClassify(f *testing.F) {
	ex := fuzzExtractor(f)
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c := Classify(text, ex)
		switch c.Type {
		case Help, Repeat, SQuery, UQuery, Other, FollowUp:
		default:
			t.Fatalf("Classify(%q) invalid type %d", text, int(c.Type))
		}
		switch c.Kind {
		case Retrieval, Comparison, Extremum, TopK, Trend:
		default:
			t.Fatalf("Classify(%q) invalid kind %d", text, int(c.Kind))
		}
		switch c.Type {
		case SQuery:
			if c.Query.Target == "" {
				t.Fatalf("Classify(%q) SQuery without target", text)
			}
			if c.Kind != Retrieval {
				t.Fatalf("Classify(%q) SQuery with kind %v", text, c.Kind)
			}
			if c.Constraint != nil || c.Window != nil {
				t.Fatalf("Classify(%q) SQuery carries constraint/window", text)
			}
			if len(c.Query.Predicates) > ex.MaxQueryLen() {
				t.Fatalf("Classify(%q) SQuery with %d predicates over bound %d",
					text, len(c.Query.Predicates), ex.MaxQueryLen())
			}
		case Help, Repeat, Other:
			if c.Query.Target != "" || len(c.Query.Predicates) > 0 {
				t.Fatalf("Classify(%q) conversational type carries query %v", text, c.Query)
			}
		}
		if c.Type == SQuery || c.Type == UQuery {
			if c.Predicates != len(c.Query.Predicates) {
				t.Fatalf("Classify(%q) Predicates=%d but query has %d",
					text, c.Predicates, len(c.Query.Predicates))
			}
		}
		if c.K < 0 || c.K > 100 {
			t.Fatalf("Classify(%q) K=%d out of range", text, c.K)
		}
		if c.Kind == TopK && c.Type != Other && c.K < 2 {
			t.Fatalf("Classify(%q) TopK with K=%d", text, c.K)
		}
		if w := c.Window; w != nil {
			n := len(ex.TimePeriods())
			if w.From < 0 || w.To >= n || w.From > w.To {
				t.Fatalf("Classify(%q) window %+v out of 0..%d", text, w, n-1)
			}
		}
		if c.Constraint != nil && c.Constraint.Target == "" {
			t.Fatalf("Classify(%q) constraint without target", text)
		}
		if c.Dim != "" {
			found := false
			for _, d := range ex.rel.Schema().Dimensions {
				found = found || d == c.Dim
			}
			if !found {
				t.Fatalf("Classify(%q) unknown dim %q", text, c.Dim)
			}
		}
		for _, p := range c.Values {
			if _, err := ex.rel.PredicateByName(p.Column, p.Value); err != nil {
				t.Fatalf("Classify(%q) unresolvable value %v: %v", text, p, err)
			}
		}
	})
}

func FuzzExtract(f *testing.F) {
	ex := fuzzExtractor(f)
	rel := ex.rel
	dims := rel.Schema().Dimensions
	isTarget := map[string]bool{}
	for _, t := range rel.Schema().Targets {
		isTarget[t] = true
	}
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		norm := Normalize(text)
		if again := Normalize(norm); again != norm {
			t.Fatalf("Normalize not idempotent on %q: %q vs %q", text, norm, again)
		}

		q, ok := ex.Extract(text)
		if !ok {
			if q.Target != "" || len(q.Predicates) > 0 {
				t.Fatalf("Extract(%q) not-ok but non-empty query %v", text, q)
			}
		} else {
			if !isTarget[q.Target] {
				t.Fatalf("Extract(%q) unknown target %q", text, q.Target)
			}
			if len(q.Predicates) > len(dims) {
				t.Fatalf("Extract(%q) %d predicates over %d dimensions", text, len(q.Predicates), len(dims))
			}
			seen := map[string]bool{}
			for _, p := range q.Predicates {
				if seen[p.Column] {
					t.Fatalf("Extract(%q) duplicate predicate column %q", text, p.Column)
				}
				seen[p.Column] = true
				if _, err := rel.PredicateByName(p.Column, p.Value); err != nil {
					t.Fatalf("Extract(%q) unresolvable predicate %v: %v", text, p, err)
				}
			}
		}

		if dim, ok := ex.ExtractDimension(text); ok {
			found := false
			for _, d := range dims {
				found = found || d == dim
			}
			if !found {
				t.Fatalf("ExtractDimension(%q) unknown dimension %q", text, dim)
			}
		}
		for _, p := range ex.ExtractValues(text) {
			if _, err := rel.PredicateByName(p.Column, p.Value); err != nil {
				t.Fatalf("ExtractValues(%q) unresolvable predicate %v: %v", text, p, err)
			}
		}
	})
}
