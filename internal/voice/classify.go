package voice

import (
	"cicero/internal/engine"
)

// RequestType classifies incoming voice requests the way Section VIII-D
// analyzes the deployment logs (Table III).
type RequestType int

const (
	// Help requests ask what the system can do.
	Help RequestType = iota
	// Repeat requests ask for the last output again.
	Repeat
	// SQuery is a supported data-access query (retrieval with at most
	// the configured number of equality predicates).
	SQuery
	// UQuery is an unsupported data-access query: comparisons, extrema,
	// too many predicates, or references to unavailable data.
	UQuery
	// Other covers everything else (chit-chat, accidental triggers).
	Other
)

// String names the request type as in Table III.
func (t RequestType) String() string {
	switch t {
	case Help:
		return "Help"
	case Repeat:
		return "Repeat"
	case SQuery:
		return "S-Query"
	case UQuery:
		return "U-Query"
	default:
		return "Other"
	}
}

// RequestTypes lists all request types in Table III row order.
func RequestTypes() []RequestType {
	return []RequestType{Help, Repeat, SQuery, UQuery, Other}
}

// QueryKind classifies data-access queries by intent (Figure 9b).
type QueryKind int

const (
	// Retrieval asks for values in a data subset (supported).
	Retrieval QueryKind = iota
	// Comparison asks for a relative comparison of two subsets.
	Comparison
	// Extremum asks for maxima/minima.
	Extremum
)

// String names the query kind as in Figure 9(b).
func (k QueryKind) String() string {
	switch k {
	case Retrieval:
		return "retrieval"
	case Comparison:
		return "comparison"
	default:
		return "extremum"
	}
}

// Classification is the analysis result for one voice request.
type Classification struct {
	Type RequestType
	// Kind is meaningful only for data-access queries (S/U-Query).
	Kind QueryKind
	// Query is the extracted query for data-access requests.
	Query engine.Query
	// Predicates is the number of extracted equality predicates.
	Predicates int
}

var (
	helpMarkers = []string{
		"help", "what can you", "what can i ask", "how does this work",
		"what do you know", "instructions",
	}
	repeatMarkers = []string{
		"repeat", "say that again", "come again", "once more", "pardon",
	}
	comparisonMarkers = []string{
		"compare", "comparison", "versus", " vs ", "difference between",
		"compared to", "more than", "less than", "between men and women",
	}
	extremumMarkers = []string{
		"highest", "lowest", "most", "least", "best", "worst",
		"maximum", "minimum", "max", "min", "top",
		"fewest", "smallest", "largest", "greatest",
	}
)

// containsAny reports whether any marker occurs in the normalized text on
// word boundaries, so "stop" does not match the marker "top".
func containsAny(text string, markers []string) bool {
	for _, m := range markers {
		if containsPhrase(text, Normalize(m)) {
			return true
		}
	}
	return false
}

// Classify analyzes one voice request: first the conversational types
// (help, repeat), then data-access queries via the extractor, split into
// supported and unsupported per the query model of Section III.
func Classify(text string, ex *Extractor) Classification {
	norm := Normalize(text)
	if containsAny(norm, helpMarkers) {
		return Classification{Type: Help}
	}
	if containsAny(norm, repeatMarkers) {
		return Classification{Type: Repeat}
	}
	q, hasTarget := ex.Extract(text)
	kind := Retrieval
	if containsAny(norm, comparisonMarkers) {
		kind = Comparison
	} else if containsAny(norm, extremumMarkers) {
		kind = Extremum
	}
	if !hasTarget {
		// Comparison or extremum requests about unrecognized data are
		// unsupported queries; everything else is Other.
		if kind != Retrieval {
			return Classification{Type: UQuery, Kind: kind}
		}
		return Classification{Type: Other}
	}
	c := Classification{Kind: kind, Query: q, Predicates: len(q.Predicates)}
	if kind != Retrieval || len(q.Predicates) > ex.MaxQueryLen() {
		c.Type = UQuery
		return c
	}
	c.Type = SQuery
	return c
}
