package voice

import (
	"cicero/internal/engine"
)

// RequestType classifies incoming voice requests the way Section VIII-D
// analyzes the deployment logs (Table III).
type RequestType int

const (
	// Help requests ask what the system can do.
	Help RequestType = iota
	// Repeat requests ask for the last output again.
	Repeat
	// SQuery is a supported data-access query (retrieval with at most
	// the configured number of equality predicates).
	SQuery
	// UQuery is an unsupported data-access query: comparisons, extrema,
	// too many predicates, or references to unavailable data.
	UQuery
	// Other covers everything else (chit-chat, accidental triggers).
	Other
	// FollowUp is an elliptical dialogue continuation ("what about
	// Texas") that only makes sense merged with the previous query's
	// context. Appended after Other so Table III numbering is stable.
	FollowUp
)

// String names the request type as in Table III.
func (t RequestType) String() string {
	switch t {
	case Help:
		return "Help"
	case Repeat:
		return "Repeat"
	case SQuery:
		return "S-Query"
	case UQuery:
		return "U-Query"
	case FollowUp:
		return "Follow-up"
	default:
		return "Other"
	}
}

// RequestTypes lists all request types in Table III row order, with the
// dialogue extension appended.
func RequestTypes() []RequestType {
	return []RequestType{Help, Repeat, SQuery, UQuery, Other, FollowUp}
}

// QueryKind classifies data-access queries by intent (Figure 9b), plus
// the extended shapes of ROADMAP item 5.
type QueryKind int

const (
	// Retrieval asks for values in a data subset (supported).
	Retrieval QueryKind = iota
	// Comparison asks for a relative comparison of two subsets.
	Comparison
	// Extremum asks for maxima/minima.
	Extremum
	// TopK asks for a ranked list of the k extremal dimension values
	// ("the three cities with the highest rent").
	TopK
	// Trend asks how a target moved across a time window ("how did
	// rent change since January 2023").
	Trend
)

// String names the query kind as in Figure 9(b).
func (k QueryKind) String() string {
	switch k {
	case Retrieval:
		return "retrieval"
	case Comparison:
		return "comparison"
	case TopK:
		return "topk"
	case Trend:
		return "trend"
	default:
		return "extremum"
	}
}

// Classification is the analysis result for one voice request.
type Classification struct {
	Type RequestType
	// Kind is meaningful only for data-access queries (S/U-Query and
	// FollowUp).
	Kind QueryKind
	// Query is the extracted query for data-access requests.
	Query engine.Query
	// Predicates is the number of extracted equality predicates.
	Predicates int

	// Extended slots for the richer query surface. Dim is the spoken
	// group-by dimension ("cities" → city) for extremum / top-k /
	// constrained shapes; K the requested list length (0 when
	// unspecified); Direction the extremal direction when HasDirection
	// reports an explicit marker ("lowest"); Window the resolved time
	// window for trend questions; Constraint the numeric entity filter
	// ("population over 500 thousand"); Values every dimension-value
	// mention in order, without Extract's one-per-dimension collapse
	// (comparisons and follow-up merging need the full list).
	Dim          string
	K            int
	Direction    engine.ExtremumKind
	HasDirection bool
	Window       *Window
	Constraint   *engine.Constraint
	Values       []engine.NamedPredicate
}

var (
	helpMarkers = []string{
		"help", "what can you", "what can i ask", "how does this work",
		"what do you know", "instructions",
	}
	repeatMarkers = []string{
		"repeat", "say that again", "come again", "once more", "pardon",
	}
	comparisonMarkers = []string{
		"compare", "comparison", "versus", " vs ", "difference between",
		"compared to", "more than", "less than", "between men and women",
	}
	extremumMarkers = []string{
		"highest", "lowest", "most", "least", "best", "worst",
		"maximum", "minimum", "max", "min", "top",
		"fewest", "smallest", "largest", "greatest",
	}
	// extremumMinWords flips the extremal direction to minima.
	extremumMinWords = []string{
		"lowest", "least", "minimum", "min", "fewest", "smallest",
	}
	trendMarkers = []string{
		"trend", "trends", "over time", "change", "changed", "changing",
		"evolve", "evolved", "evolution", "history", "trajectory",
	}
)

// containsAny reports whether any marker occurs in the normalized text on
// word boundaries, so "stop" does not match the marker "top".
func containsAny(text string, markers []string) bool {
	for _, m := range markers {
		if containsPhrase(text, Normalize(m)) {
			return true
		}
	}
	return false
}

// Classify analyzes one voice request: first the conversational types
// (help, repeat), then data-access queries via the extractor's slot
// grammar, split into supported and unsupported per the query model of
// Section III. An utterance with a follow-up prefix that is elliptical
// — missing the target, or naming one without any other slot — is a
// FollowUp and carries only the slots it mentions; the serving layer
// merges them into the previous query's context.
func Classify(text string, ex *Extractor) Classification {
	norm := Normalize(text)
	if containsAny(norm, helpMarkers) {
		return Classification{Type: Help}
	}
	if containsAny(norm, repeatMarkers) {
		return Classification{Type: Repeat}
	}
	body, hasPrefix := followUpBody(norm)
	var c Classification
	if hasPrefix {
		c = ex.extractSlots(body)
		elliptical := c.Query.Target == "" ||
			(len(c.Query.Predicates) == 0 && c.Constraint == nil && c.Window == nil &&
				c.Kind == Retrieval && c.Dim == "")
		if elliptical {
			c.Type = FollowUp
			return c
		}
		// A complete query after the prefix ("what about delays in
		// Winter") classifies as a standalone request.
	} else {
		c = ex.extractSlots(norm)
	}
	if c.Query.Target == "" && c.Constraint != nil {
		// "which cities have population over 500 thousand": the
		// constraint target doubles as the reported aggregate.
		c.Query.Target = c.Constraint.Target
	}
	if c.Query.Target == "" {
		// Comparison or extremum requests about unrecognized data are
		// unsupported queries; everything else is Other.
		if c.Kind != Retrieval {
			return Classification{Type: UQuery, Kind: c.Kind, Dim: c.Dim, K: c.K,
				Direction: c.Direction, HasDirection: c.HasDirection, Window: c.Window}
		}
		return Classification{Type: Other}
	}
	if c.Kind != Retrieval || c.Constraint != nil ||
		len(c.Query.Predicates) > ex.MaxQueryLen() {
		c.Type = UQuery
		return c
	}
	c.Type = SQuery
	return c
}
