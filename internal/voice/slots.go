package voice

import (
	"sort"
	"strconv"
	"strings"

	"cicero/internal/engine"
)

// This file implements the slot grammar behind the extended query
// shapes (ROADMAP item 5): spoken numbers ("500 thousand", "10
// percent"), numeric entity constraints ("cities with population over
// 500k"), top-k counts ("the three cities"), calendar periods and time
// windows ("since January 2023", "over the last six months"), and the
// elliptical follow-up prefixes dialogue sessions resolve ("what about
// Texas"). Everything operates on Normalize()d text, which collapses
// punctuation — so all numerals are spoken forms, never decimals.

// Window is a resolved time window: inclusive indexes into the
// extractor's chronologically ordered TimePeriods().
type Window struct {
	From, To int
}

// ---- spoken numbers ----

var numberWords = map[string]float64{
	"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
	"six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
	"eleven": 11, "twelve": 12, "thirteen": 13, "fourteen": 14,
	"fifteen": 15, "sixteen": 16, "seventeen": 17, "eighteen": 18,
	"nineteen": 19, "twenty": 20,
}

var numberMults = map[string]float64{
	"hundred": 100, "thousand": 1e3, "million": 1e6, "billion": 1e9,
}

// parseNumToken parses one normalized token as a numeral, including
// digit strings with spoken suffixes ("500k", "2m").
func parseNumToken(tok string) (float64, bool) {
	if v, ok := numberWords[tok]; ok {
		return v, true
	}
	mult := 1.0
	if len(tok) > 1 {
		switch tok[len(tok)-1] {
		case 'k':
			mult, tok = 1e3, tok[:len(tok)-1]
		case 'm':
			mult, tok = 1e6, tok[:len(tok)-1]
		}
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}

// parseSpokenNumber parses a spoken number starting at toks[i]: a base
// numeral followed by chained multipliers ("five hundred thousand") and
// an optional "percent" scaling. It returns the value and the number of
// tokens consumed (0 when toks[i] does not start a number).
func parseSpokenNumber(toks []string, i int) (float64, int) {
	if i >= len(toks) {
		return 0, 0
	}
	var v float64
	n := 0
	if toks[i] == "a" || toks[i] == "an" {
		// "over a million"
		if i+1 < len(toks) {
			if _, ok := numberMults[toks[i+1]]; ok {
				v, n = 1, 1
			}
		}
		if n == 0 {
			return 0, 0
		}
	} else {
		base, ok := parseNumToken(toks[i])
		if !ok {
			return 0, 0
		}
		v, n = base, 1
	}
	for i+n < len(toks) {
		if m, ok := numberMults[toks[i+n]]; ok {
			v *= m
			n++
			continue
		}
		break
	}
	if i+n < len(toks) && toks[i+n] == "percent" {
		v /= 100
		n++
	}
	return v, n
}

// ---- calendar periods ----

var monthIndex = map[string]int{
	"january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
	"june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
	"november": 11, "december": 12,
}

// parsePeriodKey parses a normalized dimension value as a calendar
// period and returns a chronologically sortable key: bare month names
// ("february"), month-plus-year ("january 2023"), and numeric
// year-month forms ("2023 04", the normalization of "2023-04").
func parsePeriodKey(norm string) (int, bool) {
	toks := strings.Fields(norm)
	switch len(toks) {
	case 1:
		if m, ok := monthIndex[toks[0]]; ok {
			return m, true
		}
	case 2:
		if m, ok := monthIndex[toks[0]]; ok {
			if y, err := strconv.Atoi(toks[1]); err == nil && y >= 1000 && y <= 9999 {
				return y*12 + m, true
			}
		}
		if y, err := strconv.Atoi(toks[0]); err == nil && y >= 1000 && y <= 9999 {
			if m, err := strconv.Atoi(toks[1]); err == nil && m >= 1 && m <= 12 {
				return y*12 + m, true
			}
		}
	}
	return 0, false
}

// detectTimeDim finds the relation's time dimension, if any: a column
// with at least 3 values, every one of which parses as a calendar
// period. Columns whose names hint at time win ties; otherwise the
// first qualifying column does. It fills timeDim, timeName, periods
// (chronological) and periodIdx on the extractor.
func (e *Extractor) detectTimeDim() {
	e.timeDim = -1
	type cand struct {
		dim    int
		hinted bool
	}
	var best *cand
	for d := 0; d < e.rel.NumDims(); d++ {
		vals := e.rel.Dim(d).Values()
		if len(vals) < 3 {
			continue
		}
		ok := true
		for _, v := range vals {
			if _, good := parsePeriodKey(Normalize(v)); !good {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		name := strings.ToLower(e.rel.Schema().Dimensions[d])
		hinted := strings.Contains(name, "month") || strings.Contains(name, "date") ||
			strings.Contains(name, "period") || strings.Contains(name, "quarter") ||
			strings.Contains(name, "year") || strings.Contains(name, "time")
		c := cand{dim: d, hinted: hinted}
		if best == nil || (hinted && !best.hinted) {
			best = &c
		}
	}
	if best == nil {
		return
	}
	e.timeDim = best.dim
	e.timeName = e.rel.Schema().Dimensions[best.dim]
	vals := e.rel.Dim(best.dim).Values()
	type pv struct {
		key int
		val string
	}
	pvs := make([]pv, 0, len(vals))
	for _, v := range vals {
		k, _ := parsePeriodKey(Normalize(v))
		pvs = append(pvs, pv{key: k, val: v})
	}
	sort.SliceStable(pvs, func(i, j int) bool { return pvs[i].key < pvs[j].key })
	e.periods = make([]string, len(pvs))
	e.periodIdx = make(map[string]int, len(pvs))
	for i, p := range pvs {
		e.periods[i] = p.val
		e.periodIdx[Normalize(p.val)] = i
	}
}

// matchPeriodAt matches a period phrase at token position i, longest
// form first ("january 2024" before "january").
func (e *Extractor) matchPeriodAt(toks []string, i int) (idx, n int) {
	for n := 2; n >= 1; n-- {
		if i+n <= len(toks) {
			if idx, ok := e.periodIdx[strings.Join(toks[i:i+n], " ")]; ok {
				return idx, n
			}
		}
	}
	return 0, 0
}

// joinExcept rejoins toks with the half-open range [from, to) removed.
func joinExcept(toks []string, from, to int) string {
	out := make([]string, 0, len(toks))
	out = append(out, toks[:from]...)
	out = append(out, toks[to:]...)
	return strings.Join(out, " ")
}

// ---- constraint clauses ----

var constraintIntros = map[string]bool{
	"with": true, "where": true, "whose": true, "having": true,
	"have": true, "has": true,
}

var constraintOps = []struct {
	words []string
	op    engine.ConstraintOp
}{
	{[]string{"at", "least"}, engine.AtLeast},
	{[]string{"at", "most"}, engine.AtMost},
	{[]string{"more", "than"}, engine.Over},
	{[]string{"greater", "than"}, engine.Over},
	{[]string{"less", "than"}, engine.Under},
	{[]string{"fewer", "than"}, engine.Under},
	{[]string{"over"}, engine.Over},
	{[]string{"above"}, engine.Over},
	{[]string{"exceeding"}, engine.Over},
	{[]string{"under"}, engine.Under},
	{[]string{"below"}, engine.Under},
}

// constraintUnits are spoken units that may trail the threshold and are
// consumed with the clause ("over 2000 dollars").
var constraintUnits = map[string]bool{
	"dollars": true, "dollar": true, "people": true, "residents": true,
	"minutes": true, "points": true,
}

// matchTargetAt matches a target phrase at token position i, longest
// phrase first, returning the target column and tokens consumed.
func (e *Extractor) matchTargetAt(toks []string, i int) (string, int) {
	best, bestN := "", 0
	for phrase, t := range e.targetPhrases {
		p := strings.Fields(phrase)
		if len(p) <= bestN || i+len(p) > len(toks) {
			continue
		}
		match := true
		for k, w := range p {
			if toks[i+k] != w {
				match = false
				break
			}
		}
		if match {
			best, bestN = t, len(p)
		}
	}
	return best, bestN
}

// extractConstraint consumes the first numeric constraint clause —
// "(with|where|whose|having) [the|a|an] <target> [of] <op> <number>
// [unit]" — and returns it together with the remaining text.
func (e *Extractor) extractConstraint(norm string) (*engine.Constraint, string) {
	toks := strings.Fields(norm)
	for i, tok := range toks {
		if !constraintIntros[tok] {
			continue
		}
		j := i + 1
		if j < len(toks) && (toks[j] == "the" || toks[j] == "a" || toks[j] == "an") {
			j++
		}
		tgt, tn := e.matchTargetAt(toks, j)
		if tn == 0 {
			continue
		}
		j += tn
		// Optional linking word: "population of at least", "whose
		// cancellations are over".
		if j < len(toks) {
			switch toks[j] {
			case "of", "is", "are", "was", "were":
				j++
			}
		}
		var op engine.ConstraintOp
		on := 0
		for _, c := range constraintOps {
			if j+len(c.words) > len(toks) {
				continue
			}
			match := true
			for k, w := range c.words {
				if toks[j+k] != w {
					match = false
					break
				}
			}
			if match {
				op, on = c.op, len(c.words)
				break
			}
		}
		if on == 0 {
			continue
		}
		j += on
		v, vn := parseSpokenNumber(toks, j)
		if vn == 0 {
			continue
		}
		j += vn
		if j < len(toks) && constraintUnits[toks[j]] {
			j++
		}
		return &engine.Constraint{Target: tgt, Op: op, Value: v}, joinExcept(toks, i, j)
	}
	return nil, norm
}

// ---- time windows ----

// windowUnits maps spoken window units to a period multiplier, assuming
// month-granular time dimensions (the only kind detectTimeDim accepts).
var windowUnits = map[string]int{
	"month": 1, "months": 1, "period": 1, "periods": 1,
	"quarter": 3, "quarters": 3, "year": 12, "years": 12,
}

// extractWindow consumes the first time-window phrase — "since
// <period>", "between <period> and <period>", "from <period> to
// <period>", or "[the] last <n> <unit>" — and returns the resolved
// window with the remaining text. Without a time dimension it is a
// no-op.
func (e *Extractor) extractWindow(norm string) (*Window, string) {
	if e.timeDim < 0 {
		return nil, norm
	}
	toks := strings.Fields(norm)
	n := len(e.periods)
	for i, tok := range toks {
		switch tok {
		case "since":
			if idx, pn := e.matchPeriodAt(toks, i+1); pn > 0 {
				return &Window{From: idx, To: n - 1}, joinExcept(toks, i, i+1+pn)
			}
		case "between", "from":
			sep := "and"
			if tok == "from" {
				sep = "to"
			}
			a, an := e.matchPeriodAt(toks, i+1)
			if an == 0 {
				continue
			}
			j := i + 1 + an
			if j >= len(toks) || toks[j] != sep {
				continue
			}
			b, bn := e.matchPeriodAt(toks, j+1)
			if bn == 0 {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			return &Window{From: lo, To: hi}, joinExcept(toks, i, j+1+bn)
		case "last", "past":
			j := i + 1
			count := 1.0
			if v, vn := parseSpokenNumber(toks, j); vn > 0 {
				count = v
				j += vn
			}
			if j >= len(toks) {
				continue
			}
			mult, ok := windowUnits[toks[j]]
			if !ok {
				continue
			}
			span := int(count) * mult
			if span < 1 {
				span = 1
			}
			from := n - span
			if from < 0 {
				from = 0
			}
			start := i
			if start > 0 && toks[start-1] == "the" {
				start--
			}
			return &Window{From: from, To: n - 1}, joinExcept(toks, start, j+1)
		}
	}
	return nil, norm
}

// ---- top-k counts and dimension mentions ----

// matchDimAt matches a dimension phrase (singular or plural) at token
// position i, returning the column name and tokens consumed.
func (e *Extractor) matchDimAt(toks []string, i int) (string, int) {
	best, bestN := "", 0
	for _, dp := range e.dimPhrases {
		p := strings.Fields(dp.phrase)
		if len(p) <= bestN || i+len(p) > len(toks) {
			continue
		}
		match := true
		for k, w := range p {
			if toks[i+k] != w {
				match = false
				break
			}
		}
		if match {
			best, bestN = dp.dim, len(p)
		}
	}
	return best, bestN
}

// extractCount consumes a top-k count — "top <n> [dim]", "bottom <n>
// [dim]", or "<n> <dim>" ("the three cities") — returning the count,
// the named dimension if adjacent, the remaining text, and whether the
// "bottom" form asked for minima. Run it only after dimension values
// are consumed, so "two bedroom apartments" cannot leak a count.
func (e *Extractor) extractCount(norm string) (k int, dim string, rest string, bottom bool) {
	toks := strings.Fields(norm)
	for i, tok := range toks {
		if tok == "top" || tok == "bottom" {
			v, vn := parseSpokenNumber(toks, i+1)
			if vn == 0 || v != float64(int(v)) || v < 1 || v > 100 {
				continue
			}
			j := i + 1 + vn
			d, dn := e.matchDimAt(toks, j)
			return int(v), d, joinExcept(toks, i, j+dn), tok == "bottom"
		}
		v, vn := parseSpokenNumber(toks, i)
		if vn == 0 || v != float64(int(v)) || v < 1 || v > 100 {
			continue
		}
		d, dn := e.matchDimAt(toks, i+vn)
		if dn == 0 {
			continue
		}
		return int(v), d, joinExcept(toks, i, i+vn+dn), false
	}
	return 0, "", norm, false
}

// ---- follow-up prefixes ----

var followUpPrefixes = []string{"what about", "how about", "and"}

// followUpBody strips a follow-up prefix from normalized text. The
// boolean reports whether a prefix was present; whether the utterance
// really is elliptical is decided by the classifier from the slots of
// the remaining body.
func followUpBody(norm string) (string, bool) {
	for _, p := range followUpPrefixes {
		if norm == p {
			return "", true
		}
		if strings.HasPrefix(norm, p+" ") {
			return strings.TrimSpace(norm[len(p)+1:]), true
		}
	}
	return norm, false
}

// extractSlots runs the full slot grammar over normalized text and
// returns a Classification with everything but the request type filled
// in. Extraction order matters: the constraint clause goes first so its
// target ("population") cannot hijack the main target slot, the window
// goes second so its periods cannot become equality predicates, values
// are consumed before counts so "two bedroom apartments" cannot leak a
// top-k count, and counts before dimension mentions so "three cities"
// binds both at once.
func (e *Extractor) extractSlots(norm string) Classification {
	var c Classification
	var rest string
	c.Constraint, rest = e.extractConstraint(norm)
	var win *Window
	win, rest = e.extractWindow(rest)

	target, bestLen := "", 0
	for phrase, t := range e.targetPhrases {
		if len(phrase) > bestLen && containsPhrase(rest, phrase) {
			target, bestLen = t, len(phrase)
		}
	}
	c.Query.Target = target

	consumed := rest
	usedDim := map[int]bool{}
	for _, ve := range e.values {
		if !containsPhrase(consumed, ve.phrase) {
			continue
		}
		np := engine.NamedPredicate{
			Column: e.rel.Schema().Dimensions[ve.dim],
			Value:  ve.value,
		}
		c.Values = append(c.Values, np)
		if !usedDim[ve.dim] {
			usedDim[ve.dim] = true
			c.Query.Predicates = append(c.Query.Predicates, np)
		}
		consumed = strings.Replace(consumed, ve.phrase, " ", 1)
	}

	var bottom bool
	var afterCount string
	c.K, c.Dim, afterCount, bottom = e.extractCount(consumed)
	if c.Dim == "" {
		if d, ok := e.ExtractDimension(afterCount); ok {
			c.Dim = d
		}
	}

	comparison := containsAny(rest, comparisonMarkers)
	extremum := containsAny(rest, extremumMarkers) || bottom || c.K > 0
	trend := containsAny(rest, trendMarkers) || win != nil
	switch {
	case comparison:
		c.Kind = Comparison
	case extremum:
		if c.K > 1 {
			c.Kind = TopK
		} else {
			c.Kind = Extremum
		}
		c.HasDirection = containsAny(rest, extremumMarkers) || bottom
		if bottom || containsAny(rest, extremumMinWords) {
			c.Direction = engine.Min
		} else {
			c.Direction = engine.Max
		}
	case trend:
		c.Kind = Trend
		c.Window = win
	default:
		c.Kind = Retrieval
	}

	c.Query = c.Query.Canonical()
	c.Predicates = len(c.Query.Predicates)
	return c
}
