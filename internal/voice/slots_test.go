package voice

import (
	"reflect"
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
)

func housingExtractor(t testing.TB) *Extractor {
	t.Helper()
	rel := dataset.Housing(4000, 1)
	return NewExtractor(rel, DefaultSamples("housing"), 2)
}

func TestParseSpokenNumber(t *testing.T) {
	cases := []struct {
		text string
		want float64
		n    int
	}{
		{"500", 500, 1},
		{"500k", 500_000, 1},
		{"2m", 2e6, 1},
		{"five", 5, 1},
		{"500 thousand", 500_000, 2},
		{"2 million", 2e6, 2},
		{"five hundred thousand", 500_000, 3},
		{"a million", 1e6, 2},
		{"10 percent", 0.1, 2},
		{"twenty", 20, 1},
		{"winter", 0, 0},
		{"", 0, 0},
	}
	for _, c := range cases {
		toks := strings.Fields(c.text)
		got, n := parseSpokenNumber(toks, 0)
		if got != c.want || n != c.n {
			t.Errorf("parseSpokenNumber(%q) = %g/%d, want %g/%d", c.text, got, n, c.want, c.n)
		}
	}
}

func TestParsePeriodKey(t *testing.T) {
	if k, ok := parsePeriodKey("february"); !ok || k != 2 {
		t.Errorf("february = %d/%v", k, ok)
	}
	if k, ok := parsePeriodKey("january 2024"); !ok || k != 2024*12+1 {
		t.Errorf("january 2024 = %d/%v", k, ok)
	}
	if k, ok := parsePeriodKey("2023 04"); !ok || k != 2023*12+4 {
		t.Errorf("2023 04 = %d/%v", k, ok)
	}
	for _, bad := range []string{"winter", "13 2023", "2023 13", "one two three", ""} {
		if _, ok := parsePeriodKey(bad); ok {
			t.Errorf("parsePeriodKey(%q) should fail", bad)
		}
	}
}

func TestDetectTimeDimHousing(t *testing.T) {
	ex := housingExtractor(t)
	name, ok := ex.TimeDim()
	if !ok || name != "month" {
		t.Fatalf("time dim = %q/%v, want month", name, ok)
	}
	periods := ex.TimePeriods()
	if len(periods) != 18 {
		t.Fatalf("periods = %d, want 18", len(periods))
	}
	if periods[0] != "January 2023" || periods[17] != "June 2024" {
		t.Errorf("period order wrong: first %q last %q", periods[0], periods[17])
	}
}

func TestDetectTimeDimFlights(t *testing.T) {
	_, ex := flightsExtractor(t)
	name, ok := ex.TimeDim()
	if !ok || name != "month" {
		t.Fatalf("time dim = %q/%v, want month", name, ok)
	}
	periods := ex.TimePeriods()
	if len(periods) != 12 || periods[0] != "January" || periods[11] != "December" {
		t.Errorf("periods = %v", periods)
	}
}

func TestNoTimeDim(t *testing.T) {
	rel := dataset.ACS(400, 1)
	ex := NewExtractor(rel, DefaultSamples("acs"), 2)
	if name, ok := ex.TimeDim(); ok {
		t.Errorf("ACS should have no time dim, got %q", name)
	}
	if w, rest := ex.extractWindow("visual since january"); w != nil || rest != "visual since january" {
		t.Errorf("window without time dim = %+v, %q", w, rest)
	}
}

func TestExtractConstraint(t *testing.T) {
	ex := housingExtractor(t)
	cons, rest := ex.extractConstraint("rent in cities with population over 500 thousand")
	if cons == nil {
		t.Fatal("constraint not extracted")
	}
	if cons.Target != "population" || cons.Op != engine.Over || cons.Value != 500_000 {
		t.Errorf("constraint = %+v", cons)
	}
	if rest != "rent in cities" {
		t.Errorf("rest = %q", rest)
	}

	cons, _ = ex.extractConstraint("cities whose rent is nothing with the population of at least 2 million people")
	if cons == nil || cons.Op != engine.AtLeast || cons.Value != 2e6 {
		t.Errorf("at-least constraint = %+v", cons)
	}

	cons, _ = ex.extractConstraint("cities with rent under 1500 dollars")
	if cons == nil || cons.Target != "rent" || cons.Op != engine.Under || cons.Value != 1500 {
		t.Errorf("under constraint = %+v", cons)
	}

	for _, noCons := range []string{
		"rent in austin",
		"with population",
		"with population over",
		"with over 500",
		"population over 500 thousand", // no intro word
	} {
		if cons, _ := ex.extractConstraint(noCons); cons != nil {
			t.Errorf("extractConstraint(%q) = %+v, want nil", noCons, cons)
		}
	}
}

func TestExtractWindow(t *testing.T) {
	ex := housingExtractor(t)
	cases := []struct {
		text     string
		from, to int
		rest     string
	}{
		{"rent since january 2024", 12, 17, "rent"},
		{"rent between february 2023 and april 2023", 1, 3, "rent"},
		{"rent from june 2024 to january 2024", 12, 17, "rent"}, // reversed bounds swap
		{"rent over the last three months", 15, 17, "rent over"},
		{"rent in the last year", 6, 17, "rent in"},
		{"rent for the past 2 quarters", 12, 17, "rent for"},
		{"rent over the last 99 months", 0, 17, "rent over"}, // clamped
	}
	for _, c := range cases {
		w, rest := ex.extractWindow(c.text)
		if w == nil {
			t.Errorf("extractWindow(%q) = nil", c.text)
			continue
		}
		if w.From != c.from || w.To != c.to {
			t.Errorf("extractWindow(%q) = %+v, want %d..%d", c.text, w, c.from, c.to)
		}
		if rest != c.rest {
			t.Errorf("extractWindow(%q) rest = %q, want %q", c.text, rest, c.rest)
		}
	}
	for _, noWin := range []string{"rent in austin", "rent since tuesday", "rent between austin and dallas"} {
		if w, _ := ex.extractWindow(noWin); w != nil {
			t.Errorf("extractWindow(%q) = %+v, want nil", noWin, w)
		}
	}
}

func TestExtractCount(t *testing.T) {
	ex := housingExtractor(t)
	cases := []struct {
		text   string
		k      int
		dim    string
		bottom bool
	}{
		{"the top 3 cities by rent", 3, "city", false},
		{"top three cities", 3, "city", false},
		{"bottom 2 states", 2, "state", true},
		{"the three cities", 3, "city", false},
		{"five states", 5, "state", false},
		{"top ten", 10, "", false},
		{"no count here", 0, "", false},
		{"500 thousand", 0, "", false}, // number without dim is not a count
	}
	for _, c := range cases {
		k, dim, _, bottom := ex.extractCount(c.text)
		if k != c.k || dim != c.dim || bottom != c.bottom {
			t.Errorf("extractCount(%q) = %d/%q/%v, want %d/%q/%v",
				c.text, k, dim, bottom, c.k, c.dim, c.bottom)
		}
	}
}

func TestExtractDimensionPlural(t *testing.T) {
	ex := housingExtractor(t)
	for text, want := range map[string]string{
		"the cities with the highest rent": "city",
		"which city is cheapest":           "city",
		"rank the states by rent":          "state",
		"rent by bedrooms":                 "bedrooms",
	} {
		if dim, ok := ex.ExtractDimension(text); !ok || dim != want {
			t.Errorf("ExtractDimension(%q) = %q/%v, want %q", text, dim, ok, want)
		}
	}
}

func TestClassifyConstrained(t *testing.T) {
	ex := housingExtractor(t)
	c := Classify("rent for two bedroom apartments in cities with population over 500 thousand", ex)
	if c.Type != UQuery || c.Kind != Retrieval {
		t.Fatalf("classification = %+v", c)
	}
	if c.Constraint == nil || c.Constraint.Target != "population" || c.Constraint.Value != 500_000 {
		t.Fatalf("constraint = %+v", c.Constraint)
	}
	if c.Query.Target != "rent" {
		t.Errorf("target = %q", c.Query.Target)
	}
	if len(c.Query.Predicates) != 1 || c.Query.Predicates[0].Value != "Two bedroom" {
		t.Errorf("predicates = %v", c.Query.Predicates)
	}
	if c.Dim != "city" {
		t.Errorf("dim = %q, want city", c.Dim)
	}
	// No main target: the constraint target doubles as the aggregate.
	c2 := Classify("which cities have a population of at least 2 million", ex)
	if c2.Type != UQuery || c2.Query.Target != "population" || c2.Constraint == nil {
		t.Errorf("constraint-only query = %+v", c2)
	}
}

func TestClassifyTopK(t *testing.T) {
	ex := housingExtractor(t)
	c := Classify("the three cities with the highest rent", ex)
	if c.Type != UQuery || c.Kind != TopK {
		t.Fatalf("classification = %+v", c)
	}
	if c.K != 3 || c.Dim != "city" {
		t.Errorf("K=%d dim=%q", c.K, c.Dim)
	}
	if !c.HasDirection || c.Direction != engine.Max {
		t.Errorf("direction = %v/%v", c.Direction, c.HasDirection)
	}
	low := Classify("bottom two states by rent", ex)
	if low.Kind != TopK || low.Direction != engine.Min || low.Dim != "state" {
		t.Errorf("bottom classification = %+v", low)
	}
	// K of 1 stays an extremum.
	one := Classify("the top 1 city by rent", ex)
	if one.Kind != Extremum {
		t.Errorf("top-1 kind = %v, want extremum", one.Kind)
	}
}

func TestClassifyTrend(t *testing.T) {
	ex := housingExtractor(t)
	c := Classify("how did rent change since january 2024", ex)
	if c.Type != UQuery || c.Kind != Trend {
		t.Fatalf("classification = %+v", c)
	}
	if c.Window == nil || c.Window.From != 12 || c.Window.To != 17 {
		t.Errorf("window = %+v", c.Window)
	}
	// A window alone implies a trend question.
	w := Classify("rent in austin over the last six months", ex)
	if w.Kind != Trend || w.Window == nil {
		t.Errorf("window-only classification = %+v", w)
	}
	if len(w.Query.Predicates) != 1 || w.Query.Predicates[0].Value != "Austin" {
		t.Errorf("predicates = %v", w.Query.Predicates)
	}
	// A trend marker without a window leaves Window nil (full range).
	m := Classify("what is the trend of rent in dallas", ex)
	if m.Kind != Trend || m.Window != nil {
		t.Errorf("marker-only classification = %+v", m)
	}
}

func TestClassifyFollowUp(t *testing.T) {
	ex := housingExtractor(t)
	// Value-only follow-up.
	c := Classify("what about Texas", ex)
	if c.Type != FollowUp {
		t.Fatalf("classification = %+v", c)
	}
	if len(c.Values) != 1 || c.Values[0].Column != "state" || c.Values[0].Value != "Texas" {
		t.Errorf("values = %v", c.Values)
	}
	// Target-only follow-up.
	tg := Classify("what about population", ex)
	if tg.Type != FollowUp || tg.Query.Target != "population" {
		t.Errorf("target follow-up = %+v", tg)
	}
	// Kind-switching follow-ups.
	low := Classify("and the lowest", ex)
	if low.Type != FollowUp || low.Kind != Extremum || low.Direction != engine.Min || !low.HasDirection {
		t.Errorf("lowest follow-up = %+v", low)
	}
	top := Classify("how about the top five", ex)
	if top.Type != FollowUp || top.Kind != TopK || top.K != 5 {
		t.Errorf("top-five follow-up = %+v", top)
	}
	// A complete query behind the prefix is NOT a follow-up.
	full := Classify("what about rent in Houston", ex)
	if full.Type != SQuery || len(full.Query.Predicates) != 1 {
		t.Errorf("full query after prefix = %+v", full)
	}
	// Bare prefix carries nothing but stays a follow-up.
	bare := Classify("what about", ex)
	if bare.Type != FollowUp {
		t.Errorf("bare prefix = %+v", bare)
	}
}

func TestClassifyValuesPopulated(t *testing.T) {
	_, ex := flightsExtractor(t)
	c := Classify("compare cancellations between Winter and Summer", ex)
	if c.Kind != Comparison {
		t.Fatalf("kind = %v", c.Kind)
	}
	if len(c.Values) != 2 {
		t.Fatalf("values = %v", c.Values)
	}
	want := map[string]bool{"Winter": true, "Summer": true}
	for _, v := range c.Values {
		if !want[v.Value] {
			t.Errorf("unexpected value %v", v)
		}
	}
}

func TestClassifyOldShapesUnchanged(t *testing.T) {
	// The seed shapes must classify exactly as before the grammar grew.
	_, ex := flightsExtractor(t)
	cases := []struct {
		text string
		typ  RequestType
		kind QueryKind
	}{
		{"cancellations in Winter", SQuery, Retrieval},
		{"what is the average delay", SQuery, Retrieval},
		{"which airline has the highest cancellations", UQuery, Extremum},
		{"compare delays between Winter and Summer", UQuery, Comparison},
		{"what about delays in Winter", SQuery, Retrieval},
		{"play some music", Other, Retrieval},
		{"help", Help, Retrieval},
		{"say that again", Repeat, Retrieval},
	}
	for _, c := range cases {
		got := Classify(c.text, ex)
		if got.Type != c.typ || (got.Type == SQuery || got.Type == UQuery) && got.Kind != c.kind {
			t.Errorf("Classify(%q) = %v/%v, want %v/%v", c.text, got.Type, got.Kind, c.typ, c.kind)
		}
	}
}

func TestFollowUpBody(t *testing.T) {
	cases := []struct {
		in   string
		body string
		ok   bool
	}{
		{"what about texas", "texas", true},
		{"how about the top five", "the top five", true},
		{"and the lowest", "the lowest", true},
		{"what about", "", true},
		{"rent in texas", "rent in texas", false},
		{"sandwich about", "sandwich about", false},
	}
	for _, c := range cases {
		body, ok := followUpBody(c.in)
		if body != c.body || ok != c.ok {
			t.Errorf("followUpBody(%q) = %q/%v, want %q/%v", c.in, body, ok, c.body, c.ok)
		}
	}
}

func TestSlotValuesOnePerDim(t *testing.T) {
	_, ex := flightsExtractor(t)
	c := Classify("delays for AA DL in February", ex)
	// Predicates collapse to one per dimension; Values keep both airlines.
	if len(c.Query.Predicates) != 2 {
		t.Errorf("predicates = %v", c.Query.Predicates)
	}
	if len(c.Values) != 3 {
		t.Errorf("values = %v", c.Values)
	}
	if !reflect.DeepEqual(c.Query, c.Query.Canonical()) {
		t.Error("query not canonical")
	}
}
