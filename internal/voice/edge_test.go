package voice

import (
	"strings"
	"testing"
)

// This file hardens the voice path against phrasing edge cases: empty
// and whitespace-only input, unicode, repeated keywords, and the
// extremum synonym vocabulary the deployment logs use.

func TestClassifyEdgeCases(t *testing.T) {
	_, ex := flightsExtractor(t)
	cases := []struct {
		name string
		text string
		typ  RequestType
		kind QueryKind
	}{
		{"empty", "", Other, Retrieval},
		{"whitespace only", "   \t\n  ", Other, Retrieval},
		{"punctuation only", "?!?...", Other, Retrieval},
		{"repeated help keyword", "help help help", Help, Retrieval},
		{"help inside sentence", "could you help me out here", Help, Retrieval},
		{"repeat politely", "please repeat that once more", Repeat, Retrieval},
		{"repeated query keywords", "cancellations cancellations cancellations", SQuery, Retrieval},
		{"unicode around target", "¿cancellations en invierno? ✈️", SQuery, Retrieval},
		{"cjk noise", "取消 cancellations 冬", SQuery, Retrieval},
		{"combining accents", "cancellations in Wínter", SQuery, Retrieval},
		{"extremum fewest", "which airline has the fewest cancellations", UQuery, Extremum},
		{"extremum smallest", "smallest delay by airline", UQuery, Extremum},
		{"extremum largest", "largest delay of all airlines", UQuery, Extremum},
		{"extremum greatest", "greatest cancellations", UQuery, Extremum},
		{"extremum classic", "which airline has the highest delay", UQuery, Extremum},
		{"extremum no target", "what is the highest mountain", UQuery, Extremum},
		{"comparison no target", "compare apples and oranges", UQuery, Comparison},
		{"top boundary", "stop the music", Other, Retrieval},
		{"min boundary", "mint tea please", Other, Retrieval},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Classify(c.text, ex)
			if got.Type != c.typ {
				t.Fatalf("Classify(%q).Type = %v, want %v", c.text, got.Type, c.typ)
			}
			if got.Type == UQuery && got.Kind != c.kind {
				t.Errorf("Classify(%q).Kind = %v, want %v", c.text, got.Kind, c.kind)
			}
		})
	}
}

func TestExtractEdgeCases(t *testing.T) {
	rel, ex := flightsExtractor(t)
	t.Run("empty", func(t *testing.T) {
		if _, ok := ex.Extract(""); ok {
			t.Error("Extract(\"\") recognized a target")
		}
	})
	t.Run("unicode only", func(t *testing.T) {
		if _, ok := ex.Extract("日本語のテキスト🎤"); ok {
			t.Error("Extract(unicode noise) recognized a target")
		}
	})
	t.Run("repeated value keeps one predicate per dimension", func(t *testing.T) {
		q, ok := ex.Extract("cancellations in Winter Winter Winter")
		if !ok {
			t.Fatal("no target")
		}
		if len(q.Predicates) != 1 {
			t.Fatalf("predicates = %v, want exactly one", q.Predicates)
		}
	})
	t.Run("canonical order", func(t *testing.T) {
		q, ok := ex.Extract("cancellations in Winter on UA")
		if !ok {
			t.Fatal("no target")
		}
		canon := q.Canonical()
		if len(q.Predicates) != len(canon.Predicates) {
			t.Fatalf("Extract result not canonical: %v vs %v", q, canon)
		}
		for i := range q.Predicates {
			if q.Predicates[i] != canon.Predicates[i] {
				t.Fatalf("Extract result not canonical: %v vs %v", q, canon)
			}
		}
	})
	t.Run("every predicate column is a schema dimension", func(t *testing.T) {
		q, _ := ex.Extract("cancellations in Winter on UA in the Morning")
		for _, p := range q.Predicates {
			found := false
			for _, d := range rel.Schema().Dimensions {
				if d == p.Column {
					found = true
				}
			}
			if !found {
				t.Errorf("predicate column %q not in schema", p.Column)
			}
		}
	})
}

func TestNormalizeIdempotentOnSamples(t *testing.T) {
	samples := []string{
		"", "Hello, World!", "  mixed   CASE  ", "ü ö ä ß", "émigré café",
		"👍🏽 emoji", "tab\tand\nnewline", strings.Repeat("a b ", 100),
		"\x00null\x00bytes", string([]byte{0xff, 0xfe, 'o', 'k'}),
	}
	for _, s := range samples {
		once := Normalize(s)
		if twice := Normalize(once); twice != once {
			t.Errorf("Normalize not idempotent on %q: %q vs %q", s, once, twice)
		}
	}
}
