package voice

import (
	"fmt"
	"math/rand"
	"strings"

	"cicero/internal/relation"
)

// Deployment bundles everything needed to simulate one of the paper's
// public Google Assistant deployments (Stack Overflow survey, flight
// statistics, democratic primaries).
type Deployment struct {
	// Name identifies the deployment in Table III column order.
	Name string
	// Rel is the underlying relation.
	Rel *relation.Relation
	// Extractor is the trained text-to-query extractor.
	Extractor *Extractor
	// TargetPhrases lists spoken names for target columns used when
	// synthesizing utterances (e.g. "cancellations" for "cancelled").
	TargetPhrases map[string][]string
}

// LogEntry is one simulated voice request with the intent it was
// generated from. Classification of the text should recover the intent;
// the Table III experiment reports the classified distribution.
type LogEntry struct {
	Text   string
	Intent RequestType
}

var (
	helpUtterances = []string{
		"help", "what can you do", "what can I ask you",
		"how does this work", "give me instructions", "what do you know about",
	}
	repeatUtterances = []string{
		"repeat that", "say that again please", "come again", "once more",
	}
	otherUtterances = []string{
		"play some music", "tell me a joke", "thank you", "good morning",
		"stop", "never mind", "what is the weather like", "open the calendar",
	}
)

// targetPhrase picks a spoken phrase for a random target column.
func (d *Deployment) targetPhrase(rng *rand.Rand) string {
	targets := d.Rel.Schema().Targets
	t := targets[rng.Intn(len(targets))]
	if phrases := d.TargetPhrases[t]; len(phrases) > 0 {
		return phrases[rng.Intn(len(phrases))]
	}
	return strings.ReplaceAll(t, "_", " ")
}

// randomValue picks a random dictionary value of a random dimension,
// avoiding dimensions already used.
func (d *Deployment) randomValue(rng *rand.Rand, used map[int]bool) (int, string) {
	for tries := 0; tries < 32; tries++ {
		dim := rng.Intn(d.Rel.NumDims())
		if used[dim] {
			continue
		}
		vals := d.Rel.Dim(dim).Values()
		if len(vals) == 0 {
			continue
		}
		return dim, vals[rng.Intn(len(vals))]
	}
	return -1, ""
}

// retrievalUtterance synthesizes a supported query with the given number
// of predicates (0, 1 or 2).
func (d *Deployment) retrievalUtterance(rng *rand.Rand, preds int) string {
	target := d.targetPhrase(rng)
	used := map[int]bool{}
	var vals []string
	for len(vals) < preds {
		dim, v := d.randomValue(rng, used)
		if dim < 0 {
			break
		}
		used[dim] = true
		vals = append(vals, v)
	}
	switch len(vals) {
	case 0:
		forms := []string{
			"what is the average %s",
			"tell me about %s",
			"%s overall",
		}
		return fmt.Sprintf(forms[rng.Intn(len(forms))], target)
	case 1:
		forms := []string{
			"%s in %s",
			"what is the %s for %s",
			"tell me the %s for %s",
		}
		f := forms[rng.Intn(len(forms))]
		if strings.Count(f, "%s") == 2 {
			return fmt.Sprintf(f, target, vals[0])
		}
		return fmt.Sprintf(f, target, vals[0])
	default:
		forms := []string{
			"%s for %s and %s",
			"what is the %s in %s for %s",
		}
		return fmt.Sprintf(forms[rng.Intn(len(forms))], target, vals[0], vals[1])
	}
}

// unsupportedUtterance synthesizes an unsupported query: a comparison or
// an extremum request, the dominant unsupported categories in the logs.
func (d *Deployment) unsupportedUtterance(rng *rand.Rand) string {
	target := d.targetPhrase(rng)
	if rng.Intn(2) == 0 {
		u1 := map[int]bool{}
		dim, v1 := d.randomValue(rng, u1)
		_, v2 := d.randomValue(rng, u1)
		if dim < 0 {
			v1, v2 = "a", "b"
		}
		return fmt.Sprintf("make a comparison of %s between %s and %s", target, v1, v2)
	}
	dimName := d.Rel.Schema().Dimensions[rng.Intn(d.Rel.NumDims())]
	return fmt.Sprintf("which %s has the highest %s", strings.ReplaceAll(dimName, "_", " "), target)
}

// SQueryPredicateWeights is the distribution of predicate counts used for
// simulated supported queries, shaped after Figure 9(a): most queries use
// one predicate, many none, two-predicate queries are rare.
var SQueryPredicateWeights = [3]int{15, 47, 1}

// SimulateLog generates a deterministic request log with exactly the
// given number of requests per intent, in shuffled order. Supported-query
// predicate counts follow SQueryPredicateWeights.
func (d *Deployment) SimulateLog(counts map[RequestType]int, seed int64) []LogEntry {
	rng := rand.New(rand.NewSource(seed))
	var log []LogEntry
	add := func(intent RequestType, text string) {
		log = append(log, LogEntry{Text: text, Intent: intent})
	}
	for i := 0; i < counts[Help]; i++ {
		add(Help, helpUtterances[rng.Intn(len(helpUtterances))])
	}
	for i := 0; i < counts[Repeat]; i++ {
		add(Repeat, repeatUtterances[rng.Intn(len(repeatUtterances))])
	}
	// Deterministic proportional allocation of predicate counts, with at
	// least one two-predicate query in reasonably sized logs (the paper
	// observed a single two-predicate voice query across its studies).
	nq := counts[SQuery]
	totalW := SQueryPredicateWeights[0] + SQueryPredicateWeights[1] + SQueryPredicateWeights[2]
	n0 := nq * SQueryPredicateWeights[0] / totalW
	n2 := nq * SQueryPredicateWeights[2] / totalW
	if n2 == 0 && nq >= 12 {
		n2 = 1
	}
	for i := 0; i < nq; i++ {
		preds := 1
		if i < n0 {
			preds = 0
		} else if i >= nq-n2 {
			preds = 2
		}
		add(SQuery, d.retrievalUtterance(rng, preds))
	}
	for i := 0; i < counts[UQuery]; i++ {
		add(UQuery, d.unsupportedUtterance(rng))
	}
	for i := 0; i < counts[Other]; i++ {
		add(Other, otherUtterances[rng.Intn(len(otherUtterances))])
	}
	rng.Shuffle(len(log), func(i, j int) { log[i], log[j] = log[j], log[i] })
	return log
}

// Table3Counts returns the request-type distribution observed in the
// paper's Table III for each deployment (the last 50 requests each).
func Table3Counts() map[string]map[RequestType]int {
	return map[string]map[RequestType]int{
		"Primaries":  {Help: 17, Repeat: 3, SQuery: 16, UQuery: 1, Other: 13},
		"Flights":    {Help: 9, Repeat: 0, SQuery: 12, UQuery: 5, Other: 24},
		"Developers": {Help: 4, Repeat: 0, SQuery: 13, UQuery: 16, Other: 17},
	}
}
