package httpserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// newACSAnswerer builds a small ACS answerer whose speeches answer
// "hearing impairment" queries.
func newACSAnswerer(t testing.TB) *serve.Answerer {
	t.Helper()
	rel := dataset.ACS(400, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"hearing"}
	cfg.MaxQueryLen = 1
	s := &engine.Summarizer{Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: "hearing impairment rate"}}
	store, _, err := s.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	ex := voice.NewExtractor(rel, []voice.Sample{
		{Phrase: "hearing impairment", Target: "hearing"},
	}, cfg.MaxQueryLen)
	return serve.New(rel, store, ex, serve.Options{})
}

func newFlightsAnswerer(t testing.TB, phrase string) (*serve.Answerer, *relation.Relation) {
	t.Helper()
	rel := flightsRel()
	store := buildFlightsStore(t, rel, 1, phrase)
	return serve.New(rel, store, flightsExtractor(rel), serve.Options{}), rel
}

// newMultiServer mounts acs (eager) and flights (eager) behind one
// registry server with flights as the default.
func newMultiServer(t testing.TB, opts Options) (*Server, *serve.Registry) {
	t.Helper()
	reg := serve.NewRegistry()
	fl, _ := newFlightsAnswerer(t, "cancellation probability")
	if err := reg.Add("flights", fl); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("acs", newACSAnswerer(t)); err != nil {
		t.Fatal(err)
	}
	return NewMulti(reg, "flights", opts), reg
}

func postTo(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getFrom(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMultiDatasetAnswerRoutes(t *testing.T) {
	s, _ := newMultiServer(t, Options{})
	h := s.Handler()

	// Each dataset answers its own domain through its own route.
	rec := postTo(t, h, "/v1/flights/answer", `{"text": "cancellations in Winter"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("flights answer status = %d, body %s", rec.Code, rec.Body)
	}
	fl := decodeAnswer(t, rec)
	if fl.Kind != "summary" || !fl.Answered || !strings.Contains(fl.Text, "cancellation probability") {
		t.Fatalf("flights answer = %+v", fl)
	}

	rec = postTo(t, h, "/v1/acs/answer", `{"text": "hearing impairment for Elders"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("acs answer status = %d, body %s", rec.Code, rec.Body)
	}
	acs := decodeAnswer(t, rec)
	if acs.Kind != "summary" || !acs.Answered || !strings.Contains(acs.Text, "hearing impairment rate") {
		t.Fatalf("acs answer = %+v", acs)
	}

	// The legacy route serves the default dataset (flights).
	rec = postTo(t, h, "/v1/answer", `{"text": "cancellations in Winter"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy answer status = %d", rec.Code)
	}
	if got := decodeAnswer(t, rec); got.Text != fl.Text {
		t.Fatalf("legacy route served %q, want default dataset's %q", got.Text, fl.Text)
	}

	// Unknown datasets 404 on every per-dataset route.
	for _, path := range []string{"/v1/nope/answer", "/v1/nope/stats", "/v1/nope/healthz"} {
		var rec *httptest.ResponseRecorder
		if strings.HasSuffix(path, "answer") {
			rec = postTo(t, h, path, `{"text": "hi"}`)
		} else {
			rec = getFrom(t, h, path)
		}
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, rec.Code)
		}
	}

	// Batch requests hit the addressed dataset.
	rec = postTo(t, h, "/v1/acs/answer", `{"texts": ["hearing impairment for Adults", "help"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("acs batch status = %d", rec.Code)
	}
	var batch BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Answers) != 2 || !strings.Contains(batch.Answers[0].Text, "hearing") {
		t.Fatalf("acs batch = %+v", batch.Answers)
	}
}

func TestMultiNoDefaultDataset(t *testing.T) {
	reg := serve.NewRegistry()
	fl, _ := newFlightsAnswerer(t, "cancellation probability")
	if err := reg.Add("flights", fl); err != nil {
		t.Fatal(err)
	}
	s := NewMulti(reg, "", Options{})
	rec := postTo(t, s.Handler(), "/v1/answer", `{"text": "cancellations in Winter"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("legacy route without default: status = %d, want 404", rec.Code)
	}
	if rec := postTo(t, s.Handler(), "/v1/flights/answer", `{"text": "cancellations in Winter"}`); rec.Code != http.StatusOK {
		t.Fatalf("explicit route status = %d", rec.Code)
	}
}

func TestMultiDatasetsListing(t *testing.T) {
	s, reg := newMultiServer(t, Options{})
	h := s.Handler()

	rec := getFrom(t, h, "/v1/datasets")
	if rec.Code != http.StatusOK {
		t.Fatalf("datasets status = %d", rec.Code)
	}
	var listing DatasetsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Datasets) != 2 {
		t.Fatalf("listing = %+v, want 2 datasets", listing.Datasets)
	}
	byName := map[string]DatasetInfo{}
	for _, d := range listing.Datasets {
		byName[d.Name] = d
	}
	if !byName["acs"].Loaded || !byName["flights"].Loaded {
		t.Fatalf("listing residency wrong: %+v", byName)
	}
	if !byName["flights"].Default || byName["acs"].Default {
		t.Fatalf("default flag wrong: %+v", byName)
	}
	if byName["acs"].Speeches == 0 || byName["flights"].Speeches == 0 {
		t.Fatalf("loaded datasets report zero speeches: %+v", byName)
	}

	// Evicting a dataset shows up in the listing without unloading the
	// other; the evicted one reloads transparently on the next answer.
	reg.Evict("acs")
	rec = getFrom(t, h, "/v1/datasets")
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	for _, d := range listing.Datasets {
		if d.Name == "acs" && d.Loaded {
			t.Fatal("acs still loaded after Evict")
		}
		if d.Name == "flights" && !d.Loaded {
			t.Fatal("flights evicted collaterally")
		}
	}
	if rec := postTo(t, h, "/v1/acs/answer", `{"text": "hearing impairment for Elders"}`); rec.Code != http.StatusOK {
		t.Fatalf("evicted dataset did not reload: %d", rec.Code)
	}
}

func TestMultiLazyLoad(t *testing.T) {
	reg := serve.NewRegistry()
	var loads atomic.Int32
	if err := reg.Register("acs", func(context.Context) (*serve.Answerer, error) {
		loads.Add(1)
		return newACSAnswerer(t), nil
	}); err != nil {
		t.Fatal(err)
	}
	s := NewMulti(reg, "acs", Options{})
	h := s.Handler()

	// Listings and stats must not trigger the load.
	getFrom(t, h, "/v1/datasets")
	getFrom(t, h, "/v1/acs/stats")
	getFrom(t, h, "/v1/acs/healthz")
	getFrom(t, h, "/v1/healthz")
	if loads.Load() != 0 {
		t.Fatalf("read-only routes loaded the dataset %d times", loads.Load())
	}

	rec := postTo(t, h, "/v1/acs/answer", `{"text": "hearing impairment for Elders"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("answer status = %d", rec.Code)
	}
	if loads.Load() != 1 {
		t.Fatalf("first answer ran the loader %d times, want 1", loads.Load())
	}

	var snap DatasetSnapshot
	rec = getFrom(t, h, "/v1/acs/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Loaded || snap.Speeches == 0 || snap.Answers.Requests == 0 {
		t.Fatalf("post-load stats = %+v", snap)
	}
}

// TestMultiCacheIsolation sends the same utterance to two datasets:
// answers must differ, cache entries must not collide, and each
// dataset's repeat must hit its own entry.
func TestMultiCacheIsolation(t *testing.T) {
	s, _ := newMultiServer(t, Options{})
	ctx := context.Background()

	// "help" is answerable by every dataset but with dataset-specific
	// content (the help text lists the relation's columns).
	flFirst, err := s.AnswerDataset(ctx, "flights", "help")
	if err != nil {
		t.Fatal(err)
	}
	acsFirst, err := s.AnswerDataset(ctx, "acs", "help")
	if err != nil {
		t.Fatal(err)
	}
	if flFirst.Cached || acsFirst.Cached {
		t.Fatal("first answers claim cached")
	}
	if flFirst.Text == acsFirst.Text {
		t.Fatalf("help text identical across datasets: %q", flFirst.Text)
	}

	flHit, err := s.AnswerDataset(ctx, "flights", "help")
	if err != nil {
		t.Fatal(err)
	}
	acsHit, err := s.AnswerDataset(ctx, "acs", "help")
	if err != nil {
		t.Fatal(err)
	}
	if !flHit.Cached || !acsHit.Cached {
		t.Fatalf("repeats not cached: flights=%v acs=%v", flHit.Cached, acsHit.Cached)
	}
	if flHit.Text != flFirst.Text || acsHit.Text != acsFirst.Text {
		t.Fatal("cache served cross-dataset content")
	}
}

// TestMultiSwapPurgesOnlyOneDataset hot-swaps one dataset's store and
// verifies the other dataset's cache survives while the swapped one
// serves fresh content immediately.
func TestMultiSwapPurgesOnlyOneDataset(t *testing.T) {
	s, _ := newMultiServer(t, Options{})
	ctx := context.Background()
	q := "cancellations in Winter"

	before, err := s.AnswerDataset(ctx, "flights", q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AnswerDataset(ctx, "acs", "help"); err != nil {
		t.Fatal(err)
	}
	// Both cached now.
	if hit, err := s.AnswerDataset(ctx, "flights", q); err != nil || !hit.Cached {
		t.Fatalf("flights not cached before swap: %+v, %v", hit, err)
	}

	gen2 := buildFlightsStore(t, flightsRel(), 1, "chance of cancellation")
	if _, err := s.SwapStoreFor(ctx, "flights", gen2); err != nil {
		t.Fatal(err)
	}

	after, err := s.AnswerDataset(ctx, "flights", q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("flights answer still cached after its swap")
	}
	if after.Text == before.Text || !strings.Contains(after.Text, "chance of cancellation") {
		t.Fatalf("post-swap answer %q does not reflect the new store", after.Text)
	}
	// The untouched dataset kept its warm cache.
	if hit, err := s.AnswerDataset(ctx, "acs", "help"); err != nil || !hit.Cached {
		t.Fatalf("acs cache purged collaterally: %+v, %v", hit, err)
	}

	stats, err := s.DatasetStats("flights")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swaps != 1 {
		t.Fatalf("flights swaps = %d, want 1", stats.Swaps)
	}
	if other, _ := s.DatasetStats("acs"); other.Swaps != 0 {
		t.Fatalf("acs swaps = %d, want 0", other.Swaps)
	}
	if _, err := s.DatasetStats("nope"); !errors.Is(err, serve.ErrUnknownDataset) {
		t.Fatalf("DatasetStats(nope) err = %v", err)
	}
}

// TestMultiRegistrySwapBehindServer swaps directly on the registry —
// behind the server's back — and verifies store-identity tagging still
// prevents stale answers.
func TestMultiRegistrySwapBehindServer(t *testing.T) {
	s, reg := newMultiServer(t, Options{})
	ctx := context.Background()
	q := "cancellations in Winter"

	if _, err := s.AnswerDataset(ctx, "flights", q); err != nil {
		t.Fatal(err)
	}
	if hit, err := s.AnswerDataset(ctx, "flights", q); err != nil || !hit.Cached {
		t.Fatalf("not cached: %+v, %v", hit, err)
	}

	gen2 := buildFlightsStore(t, flightsRel(), 1, "chance of cancellation")
	if _, err := reg.SwapStore(ctx, "flights", gen2); err != nil {
		t.Fatal(err)
	}
	after, err := s.AnswerDataset(ctx, "flights", q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached || !strings.Contains(after.Text, "chance of cancellation") {
		t.Fatalf("stale answer after behind-the-back swap: %+v", after)
	}
	// The registry's swap count surfaces in the dataset stats.
	if stats, _ := s.DatasetStats("flights"); stats.Swaps != 1 {
		t.Fatalf("swaps = %d, want 1 from registry view", stats.Swaps)
	}
}

// TestMultiRebuildFor exercises the per-dataset rebuild path, including
// the error case keeping the old store and cache.
func TestMultiRebuildFor(t *testing.T) {
	s, _ := newMultiServer(t, Options{})
	ctx := context.Background()
	q := "cancellations in Winter"

	if _, err := s.AnswerDataset(ctx, "flights", q); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RebuildFor(ctx, "flights", func(context.Context) (engine.StoreView, error) {
		return nil, fmt.Errorf("build exploded")
	}); err == nil {
		t.Fatal("failed rebuild reported success")
	}
	if hit, err := s.AnswerDataset(ctx, "flights", q); err != nil || !hit.Cached {
		t.Fatalf("failed rebuild purged the cache: %+v, %v", hit, err)
	}

	gen2 := buildFlightsStore(t, flightsRel(), 1, "chance of cancellation")
	if _, err := s.RebuildFor(ctx, "flights", func(context.Context) (engine.StoreView, error) {
		return gen2, nil
	}); err != nil {
		t.Fatal(err)
	}
	after, err := s.AnswerDataset(ctx, "flights", q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.Text, "chance of cancellation") {
		t.Fatalf("rebuild did not take: %q", after.Text)
	}
}

// TestMultiHealthzAggregates checks the global healthz sums loaded
// stores and the per-dataset healthz reports one store.
func TestMultiHealthzAggregates(t *testing.T) {
	s, reg := newMultiServer(t, Options{})
	h := s.Handler()

	var health HealthResponse
	rec := getFrom(t, h, "/v1/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Datasets != 2 || health.Loaded != 2 || health.Speeches == 0 {
		t.Fatalf("healthz = %+v", health)
	}

	acsStore, _ := reg.Peek("acs")
	var one HealthResponse
	rec = getFrom(t, h, "/v1/acs/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if one.Speeches != acsStore.Store().Len() {
		t.Fatalf("per-dataset healthz speeches = %d, want %d", one.Speeches, acsStore.Store().Len())
	}

	// Global stats carry the per-dataset map.
	snap := s.Stats()
	if len(snap.Datasets) != 2 || snap.Store.Datasets != 2 {
		t.Fatalf("stats datasets = %+v", snap.Datasets)
	}
}
