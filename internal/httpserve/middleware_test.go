package httpserve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cicero/internal/engine"
	"cicero/internal/serve"
)

// panicBackend blows up on every answer — the regression fixture for
// the recovery middleware.
type panicBackend struct{}

func (panicBackend) Answer(text string) serve.Answer { panic("kaboom: " + text) }
func (panicBackend) Store() engine.StoreView         { return engine.NewStore() }

func TestRecoverMiddlewareContainsHandlerPanic(t *testing.T) {
	s := NewWithBackend(panicBackend{}, Options{CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/answer", "application/json",
			strings.NewReader(`{"text":"trigger"}`))
		if err != nil {
			t.Fatalf("request %d: the panic escaped the middleware: %v", i, err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := s.Panics(); got != 3 {
		t.Fatalf("panics counter = %d, want 3", got)
	}
	if got := s.Stats().Panics; got != 3 {
		t.Fatalf("stats panics_total = %d, want 3", got)
	}

	// The server still serves non-panicking routes afterwards.
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after panics: status %d", resp.StatusCode)
	}
}

func TestRecoverMiddlewareReraisesAbortHandler(t *testing.T) {
	s := NewWithBackend(panicBackend{}, Options{})
	h := s.recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed instead of re-raised")
		}
		if got := s.Panics(); got != 0 {
			t.Fatalf("ErrAbortHandler counted as a panic: %d", got)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

func TestWithRequestTimeoutAppliesDeadline(t *testing.T) {
	seen := make(chan error, 1)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			seen <- nil
			return
		}
		<-r.Context().Done()
		seen <- r.Context().Err()
	})
	h := WithRequestTimeout(inner, 10*time.Millisecond)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	select {
	case err := <-seen:
		if err != context.DeadlineExceeded {
			t.Fatalf("handler saw %v, want DeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never observed the deadline")
	}

	// Non-positive timeout must leave requests deadline-free.
	h = WithRequestTimeout(inner, 0)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if err := <-seen; err != nil {
		t.Fatalf("zero timeout still imposed a deadline: %v", err)
	}
}
