package httpserve

// Regression tests for the cache-fill / swap-generation race: a fill
// racing two swaps must never tag an answer with a store generation it
// was not computed against. The deterministic test reproduces the exact
// ABA interleaving; the loop test publishes deltas in a tight loop (the
// incremental-ingestion pattern: SwapDataFor alternating between two
// store generations, re-installing the same view objects) and asserts
// no stale post-swap answers.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cicero/internal/engine"
	"cicero/internal/serve"
)

// abaBackend is a Backend with an explicit swap generation whose Answer
// can be parked at the exact racy point: after the server captured the
// (store, generation) pair but before the kernel loads the live store.
type abaBackend struct {
	mu    sync.Mutex
	store engine.StoreView
	gen   uint64
	text  map[engine.StoreView]string

	// gate, while non-nil, parks the next Answer call at entry; entered
	// signals that the call is parked.
	gate    chan struct{}
	entered chan struct{}
}

func (b *abaBackend) Answer(string) serve.Answer {
	b.mu.Lock()
	gate, entered := b.gate, b.entered
	b.gate, b.entered = nil, nil
	b.mu.Unlock()
	if gate != nil {
		close(entered)
		<-gate
	}
	b.mu.Lock()
	text := b.text[b.store]
	b.mu.Unlock()
	return serve.Answer{Kind: serve.Summary, Text: text, Answered: true}
}

func (b *abaBackend) Store() engine.StoreView {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.store
}

func (b *abaBackend) StoreGen() (engine.StoreView, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.store, b.gen
}

func (b *abaBackend) swap(s engine.StoreView) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store = s
	b.gen++
}

// TestCacheFillRacingSwapsNotTaggedWrongGeneration pins the ordering the
// delta publish path depends on. Interleaving: a fill captures store A
// (generation 1) and parks before the kernel; the store is swapped to B
// (generation 2); the kernel resumes and computes against B; the store
// is swapped back to the same view object A (generation 3, a rollback).
// The fill must not insert the B-computed answer under A's identity —
// with A live again, such an entry would serve B's answer as current.
func TestCacheFillRacingSwapsNotTaggedWrongGeneration(t *testing.T) {
	storeA, storeB := engine.NewStore(), engine.NewStore()
	b := &abaBackend{
		store: storeA,
		text:  map[engine.StoreView]string{storeA: "computed on A", storeB: "computed on B"},
		gate:  make(chan struct{}),
	}
	entered := make(chan struct{})
	b.entered = entered
	gate := b.gate
	s := NewWithBackend(b, Options{MaxInFlight: 4})

	done := make(chan Result, 1)
	go func() {
		res, err := s.Answer(context.Background(), "the racy question")
		if err != nil {
			t.Errorf("racing answer failed: %v", err)
		}
		done <- res
	}()

	<-entered          // fill captured (A, gen 1), kernel parked
	b.swap(storeB)     // delta publish #1
	close(gate)        // kernel resumes, computes against B
	first := <-done
	if first.Text != "computed on B" {
		t.Fatalf("racing answer = %q, want the B-computed text", first.Text)
	}
	b.swap(storeA) // delta publish #2: rollback re-installs the same view

	// A is live again. The racy fill must not have left a cache entry
	// under A's identity carrying B's answer.
	res, err := s.Answer(context.Background(), "the racy question")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatalf("post-rollback answer served from cache (%q): the racing fill was tagged with a generation it was not computed against", res.Text)
	}
	if res.Text != "computed on A" {
		t.Fatalf("post-rollback answer = %q, want %q", res.Text, "computed on A")
	}
}

// TestTightDeltaPublishLoopNoStaleAnswers publishes store generations in
// a tight loop through the delta seam (SwapDataFor, alternating between
// two store objects so every second publish re-installs a previous
// view) while reader goroutines hammer the cached path. After each
// publish the publisher itself queries the dataset: the answer must
// carry the phrase of the generation just published — a different
// phrase is a stale post-swap answer.
func TestTightDeltaPublishLoopNoStaleAnswers(t *testing.T) {
	rel := flightsRel()
	phrases := []string{"cancellation odds (even)", "cancellation odds (odd)"}
	stores := []*engine.Store{
		buildFlightsStore(t, rel, 1, phrases[0]),
		buildFlightsStore(t, rel, 1, phrases[1]),
	}
	a := serve.New(rel, stores[0], flightsExtractor(rel), serve.Options{})
	reg := serve.NewRegistry()
	if err := reg.Add("flights", a); err != nil {
		t.Fatal(err)
	}
	s := NewMulti(reg, "flights", Options{MaxInFlight: 64, CacheEntries: 256})
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hammered atomic.Int64
	texts := []string{"cancellations in Winter", "cancellations in Summer", "cancellations on UA"}
	const readers = 4
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.AnswerDataset(ctx, "flights", texts[(r+i)%len(texts)]); err != nil {
					t.Errorf("hammer answer failed: %v", err)
					return
				}
				hammered.Add(1)
			}
		}(r)
	}

	// Ensure the reader traffic genuinely overlaps the publish loop
	// before starting it.
	for hammered.Load() == 0 {
	}

	const publishes = 60
	for i := 1; i <= publishes; i++ {
		cur := i % 2
		if _, err := s.SwapDataFor(ctx, "flights", rel, stores[cur]); err != nil {
			t.Fatal(err)
		}
		// The publisher is the only swapper, so the store it just
		// installed is still live for its own sequential query; any
		// other phrase can only come from a mis-tagged cache entry.
		res, err := s.AnswerDataset(ctx, "flights", texts[i%len(texts)])
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Text, phrases[cur]) {
			t.Fatalf("publish %d: stale post-swap answer %q, want phrase %q (cached=%v)",
				i, res.Text, phrases[cur], res.Cached)
		}
	}
	close(stop)
	wg.Wait()

	if got := s.Stats().Store.Swaps; got != publishes {
		t.Errorf("swaps = %d, want %d", got, publishes)
	}
	if fmt.Sprint(s.Stats().Cache.Hits) == "0" {
		t.Log("note: publish loop saw no cache hits (purge kept pace with fills)")
	}
}
