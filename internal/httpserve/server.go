// Package httpserve is the networked serving tier: it exposes the
// in-process serving layer (serve.Answerer) over HTTP for the
// many-clients deployment the ROADMAP targets, and adds the two layers
// a network front end needs beyond the per-query kernel:
//
//   - a sharded LRU answer cache keyed by canonicalized request text.
//     Answers are deterministic per (store, text), so repeats are served
//     without touching the kernel; entries are tagged with the store
//     generation they were computed against and therefore invalidate
//     themselves the moment a hot swap (SwapStore/Rebuild) replaces the
//     store — no stale answer can survive a swap;
//   - singleflight deduplication, so a burst of identical cache-missing
//     requests executes the kernel exactly once per store generation;
//
// plus admission control (a bounded in-flight limit with a queue
// timeout, shedding load with 503 instead of collapsing) and per-route
// latency/hit-rate metrics served on /v1/stats.
//
// Routes:
//
//	POST /v1/answer   {"text": "..."} or {"texts": ["...", ...]}
//	GET  /v1/healthz  liveness + store size
//	GET  /v1/stats    metrics snapshot
package httpserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"cicero/internal/engine"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// Backend is the in-process serving surface the HTTP tier fronts.
// *serve.Answerer is the production implementation; tests substitute
// counting or blocking fakes.
type Backend interface {
	// Answer serves one raw voice request.
	Answer(text string) serve.Answer
	// Store returns the live speech store; its identity defines the
	// cache and singleflight generation.
	Store() *engine.Store
}

// Options tunes the HTTP serving tier. The zero value gives production
// defaults.
type Options struct {
	// CacheEntries bounds the answer cache size across all shards
	// (default 4096). Negative disables caching.
	CacheEntries int
	// CacheShards is the number of independently locked cache segments
	// (default 16).
	CacheShards int
	// MaxInFlight bounds concurrent kernel executions (default 256).
	MaxInFlight int
	// QueueTimeout is how long an admitted request waits for an
	// in-flight slot before being shed with 503 (default 100ms).
	QueueTimeout time.Duration
	// MaxBatch bounds the texts accepted by one batch request
	// (default 256).
	MaxBatch int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// LatencyWindow is the per-route latency sample window
	// (default stats.DefaultLatencyWindow).
	LatencyWindow int
	// BatchWorkers bounds concurrent items within one batch request
	// (default 8).
	BatchWorkers int
}

func (o Options) withDefaults() Options {
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 100 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.BatchWorkers <= 0 {
		o.BatchWorkers = 8
	}
	return o
}

// ErrOverloaded is returned (and mapped to 503) when admission control
// sheds a request: every in-flight slot stayed busy for the whole queue
// timeout.
var ErrOverloaded = errors.New("httpserve: server overloaded")

// Result is one served answer plus serving-tier metadata.
type Result struct {
	serve.Answer
	// Cached reports an answer served from the cache without touching
	// the kernel.
	Cached bool
	// Shared reports an answer obtained by joining another request's
	// in-flight computation.
	Shared bool
}

// Server is the HTTP serving tier over one Backend. Create with New
// (production) or NewWithBackend (tests); it is safe for concurrent
// use.
type Server struct {
	backend  Backend
	answerer *serve.Answerer // non-nil iff backend is a *serve.Answerer
	opts     Options
	cache    *answerCache // nil when caching is disabled
	flights  *flightGroup
	sem      chan struct{}
	started  time.Time
	swaps    atomic.Uint64
	rejected atomic.Uint64
	mux      *http.ServeMux

	mAnswer  *routeMetrics
	mHealthz *routeMetrics
	mStats   *routeMetrics
}

// New builds the HTTP tier over a production Answerer; the Server's
// SwapStore/Rebuild delegate to it and purge the cache eagerly.
func New(a *serve.Answerer, opts Options) *Server {
	s := NewWithBackend(a, opts)
	s.answerer = a
	return s
}

// NewWithBackend builds the HTTP tier over any Backend. SwapStore and
// Rebuild are unavailable (they need a *serve.Answerer), but cache
// invalidation still tracks Store identity automatically.
func NewWithBackend(b Backend, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		backend: b,
		opts:    opts,
		flights: newFlightGroup(),
		sem:     make(chan struct{}, opts.MaxInFlight),
		started: time.Now(),

		mAnswer:  newRouteMetrics(opts.LatencyWindow),
		mHealthz: newRouteMetrics(opts.LatencyWindow),
		mStats:   newRouteMetrics(opts.LatencyWindow),
	}
	if opts.CacheEntries > 0 {
		s.cache = newAnswerCache(opts.CacheEntries, opts.CacheShards)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/answer", s.handleAnswer)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Handler returns the route multiplexer, ready for http.Server or
// httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheKey canonicalizes request text into its cache/singleflight
// identity: two phrasings normalize equal exactly when classification
// treats them identically.
func CacheKey(text string) string { return voice.Normalize(text) }

// Answer serves one request through the full tier — cache, then
// singleflight, then admission-controlled kernel execution. It is the
// in-process entry point the HTTP handler wraps; Latency is always the
// true serving time of this call, not a cached value.
func (s *Server) Answer(ctx context.Context, text string) (Result, error) {
	start := time.Now()
	key := CacheKey(text)
	store := s.backend.Store()
	if s.cache != nil {
		if ans, ok := s.cache.get(key, store); ok {
			ans.Latency = time.Since(start)
			return Result{Answer: ans, Cached: true}, nil
		}
	}
	// The leader's admission wait is detached from its client's context:
	// joiners share the flight's result, so a leader whose client
	// disconnects must not poison them with a cancellation error. The
	// wait stays bounded by the queue timeout, and the only shareable
	// error is ErrOverloaded — a genuine system-wide condition. Joiners
	// honor their own ctx inside do.
	ans, shared, err := s.flights.do(ctx, flightKey{store: store, key: key}, func() (serve.Answer, error) {
		if err := s.acquire(); err != nil {
			return serve.Answer{}, err
		}
		defer func() { <-s.sem }()
		ans := s.backend.Answer(text)
		if s.cache != nil {
			s.cache.put(key, store, ans)
		}
		return ans, nil
	})
	if err != nil {
		return Result{}, err
	}
	ans.Latency = time.Since(start)
	return Result{Answer: ans, Shared: shared}, nil
}

// acquire takes an in-flight slot, waiting at most the queue timeout;
// Admission.Rejected counts exactly the requests shed here.
func (s *Server) acquire() error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(s.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-timer.C:
		s.rejected.Add(1)
		return ErrOverloaded
	}
}

// SwapStore swaps the live store on the underlying Answerer and purges
// the cache eagerly (entries would self-invalidate by store identity
// anyway; purging frees their memory now). Panics when the Server was
// built over a custom Backend.
func (s *Server) SwapStore(next *engine.Store) *engine.Store {
	if s.answerer == nil {
		panic("httpserve: SwapStore requires a *serve.Answerer backend")
	}
	old := s.answerer.SwapStore(next)
	s.afterSwap()
	return old
}

// Rebuild re-runs pre-processing through build and hot-swaps the result
// in with zero downtime, purging the cache on success.
func (s *Server) Rebuild(ctx context.Context, build func(context.Context) (*engine.Store, error)) (*engine.Store, error) {
	if s.answerer == nil {
		panic("httpserve: Rebuild requires a *serve.Answerer backend")
	}
	old, err := s.answerer.Rebuild(ctx, build)
	if err != nil {
		return nil, err
	}
	s.afterSwap()
	return old, nil
}

func (s *Server) afterSwap() {
	s.swaps.Add(1)
	if s.cache != nil {
		s.cache.purge()
	}
}

// Stats snapshots the serving metrics (the GET /v1/stats payload).
func (s *Server) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		UptimeNS: time.Since(s.started),
		Routes: map[string]RouteSnapshot{
			"answer":  s.mAnswer.snapshot(),
			"healthz": s.mHealthz.snapshot(),
			"stats":   s.mStats.snapshot(),
		},
		Deduped: s.flights.shared.Load(),
		Admission: AdmissionSnapshot{
			MaxInFlight: s.opts.MaxInFlight,
			InFlight:    len(s.sem),
			Rejected:    s.rejected.Load(),
		},
		Store: StoreSnapshot{
			Speeches: s.backend.Store().Len(),
			Swaps:    s.swaps.Load(),
		},
	}
	if s.cache != nil {
		hits, misses := s.cache.hits.Load(), s.cache.misses.Load()
		snap.Cache = CacheSnapshot{Hits: hits, Misses: misses, Entries: s.cache.len()}
		if total := hits + misses; total > 0 {
			snap.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	return snap
}

// Wire types of POST /v1/answer.

// AnswerRequest is the request body: exactly one of Text or Texts.
type AnswerRequest struct {
	Text  string   `json:"text,omitempty"`
	Texts []string `json:"texts,omitempty"`
}

// AnswerResponse is one served answer on the wire.
type AnswerResponse struct {
	Kind      string        `json:"kind"`
	Request   string        `json:"request"`
	Text      string        `json:"text"`
	Answered  bool          `json:"answered"`
	Cached    bool          `json:"cached"`
	Shared    bool          `json:"shared,omitempty"`
	Exact     bool          `json:"exact,omitempty"`
	LatencyNS time.Duration `json:"latency_ns"`
	Query     *engine.Query `json:"query,omitempty"`
}

// BatchResponse answers a Texts request, in input order.
type BatchResponse struct {
	Answers []AnswerResponse `json:"answers"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func toResponse(r Result) AnswerResponse {
	resp := AnswerResponse{
		Kind:      r.Kind.String(),
		Request:   r.Request.String(),
		Text:      r.Text,
		Answered:  r.Answered,
		Cached:    r.Cached,
		Shared:    r.Shared,
		Exact:     r.Exact,
		LatencyNS: r.Latency,
	}
	if r.Query.Target != "" {
		q := r.Query
		resp.Query = &q
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: msg})
}

// statusFor maps serving errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or ran out of patience mid-queue.
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mAnswer.observe(time.Since(start), failed) }()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AnswerRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Sprintf("bad request body: %v", err))
		return
	}
	switch {
	case req.Text != "" && len(req.Texts) > 0:
		writeError(w, http.StatusBadRequest, `"text" and "texts" are mutually exclusive`)
		return
	case req.Text == "" && len(req.Texts) == 0:
		writeError(w, http.StatusBadRequest, `one of "text" or "texts" is required`)
		return
	case len(req.Texts) > s.opts.MaxBatch:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Texts), s.opts.MaxBatch))
		return
	}

	if req.Text != "" {
		res, err := s.Answer(r.Context(), req.Text)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		failed = false
		writeJSON(w, http.StatusOK, toResponse(res))
		return
	}

	resp, err := s.answerBatch(r.Context(), req.Texts)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, resp)
}

// answerBatch serves a batch with bounded intra-request concurrency.
// The first serving error fails the whole batch: partial results would
// force clients to re-send anyway, and admission pressure applies to
// every item equally.
func (s *Server) answerBatch(ctx context.Context, texts []string) (BatchResponse, error) {
	resp := BatchResponse{Answers: make([]AnswerResponse, len(texts))}
	workers := s.opts.BatchWorkers
	if workers > len(texts) {
		workers = len(texts)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				res, err := s.Answer(ctx, texts[i])
				if err != nil {
					errs <- err
					cancel()
					return
				}
				resp.Answers[i] = toResponse(res)
			}
			errs <- nil
		}()
	}
feed:
	for i := range texts {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return BatchResponse{}, firstErr
	}
	return resp, nil
}

// HealthResponse is the GET /v1/healthz payload.
type HealthResponse struct {
	Status   string        `json:"status"`
	Speeches int           `json:"speeches"`
	Swaps    uint64        `json:"swaps"`
	UptimeNS time.Duration `json:"uptime_ns"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mHealthz.observe(time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Speeches: s.backend.Store().Len(),
		Swaps:    s.swaps.Load(),
		UptimeNS: time.Since(s.started),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mStats.observe(time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, s.Stats())
}
