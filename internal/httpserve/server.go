// Package httpserve is the networked serving tier — the outer serve
// layer of the paper's generate → evaluate → solve → serve flow: it
// exposes the in-process serving layer (serve.Answerer, or a
// serve.Registry hosting many named datasets) over HTTP for the
// many-clients deployment the ROADMAP targets, and adds the layers a
// network front end needs beyond the per-query kernel:
//
//   - a sharded LRU answer cache keyed by (dataset, canonicalized
//     request text). Answers are deterministic per (store, text), so
//     repeats are served without touching the kernel; entries are
//     tagged with the store generation they were computed against and
//     therefore invalidate themselves the moment a hot swap
//     (SwapStore/Rebuild) replaces the store — no stale answer can
//     survive a swap, and a swap on one dataset never disturbs another
//     dataset's entries;
//   - singleflight deduplication, so a burst of identical
//     cache-missing requests executes the kernel exactly once per
//     (dataset, store generation);
//
// plus admission control (a bounded in-flight limit with a queue
// timeout, shedding load with 503 instead of collapsing) and per-route
// and per-dataset latency/hit-rate metrics served on /v1/stats.
//
// Routes:
//
//	POST /v1/answer             {"text": "..."} or {"texts": [...]} (default dataset)
//	GET  /v1/healthz            liveness + aggregate store size
//	GET  /v1/stats              metrics snapshot (incl. per-dataset)
//	GET  /v1/datasets           mounted datasets with residency + size
//	POST /v1/{dataset}/answer   answer against one named dataset
//	GET  /v1/{dataset}/stats    one dataset's serving metrics
//	GET  /v1/{dataset}/healthz  one dataset's liveness + store size
package httpserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cicero/internal/engine"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// Backend is the in-process serving surface the HTTP tier fronts.
// *serve.Answerer is the production implementation; tests substitute
// counting or blocking fakes.
type Backend interface {
	// Answer serves one raw voice request.
	Answer(text string) serve.Answer
	// Store returns the live speech store; its identity defines the
	// cache and singleflight generation.
	Store() engine.StoreView
}

// generationBackend is the optional Backend extension a swap-generation
// counter rides in on (*serve.Answerer implements it). Store identity
// alone cannot order swaps: when a view is re-installed — a rollback,
// or a delta publish that reuses the base store — the pointer repeats,
// and a cache fill racing two swaps could tag an answer computed
// against the intermediate store with the re-installed one (an ABA).
// The generation is unique per publish, so "unchanged across the
// kernel call" proves the answer was computed against the tagged store.
type generationBackend interface {
	StoreGen() (engine.StoreView, uint64)
}

// storeGen loads the backend's live store, with its swap generation
// when the backend exposes one (tracked == true).
func storeGen(b Backend) (store engine.StoreView, gen uint64, tracked bool) {
	if gb, ok := b.(generationBackend); ok {
		store, gen = gb.StoreGen()
		return store, gen, true
	}
	return b.Store(), 0, false
}

// DefaultDataset is the dataset name a single-tenant server mounts its
// backend under; the legacy /v1/answer route always resolves to the
// server's default dataset.
const DefaultDataset = "default"

// tenantSet abstracts how the server resolves dataset names to
// backends: a fixed single backend, or a serve.Registry with lazy
// loading and eviction.
type tenantSet interface {
	// names lists the mounted dataset names, sorted.
	names() []string
	// has reports whether the dataset is mounted, without loading it.
	has(name string) bool
	// get resolves a dataset to its backend, loading it if necessary;
	// unknown names fail with serve.ErrUnknownDataset.
	get(ctx context.Context, name string) (Backend, error)
	// peek returns the backend only if it is currently resident.
	peek(name string) (Backend, bool)
}

// singleSet mounts one fixed backend under one name.
type singleSet struct {
	name string
	b    Backend
}

func (s singleSet) names() []string { return []string{s.name} }

func (s singleSet) has(name string) bool { return name == s.name }

func (s singleSet) get(_ context.Context, name string) (Backend, error) {
	if name != s.name {
		return nil, fmt.Errorf("%w: %q", serve.ErrUnknownDataset, name)
	}
	return s.b, nil
}

func (s singleSet) peek(name string) (Backend, bool) {
	if name != s.name {
		return nil, false
	}
	return s.b, true
}

// registrySet mounts every dataset of a serve.Registry.
type registrySet struct{ reg *serve.Registry }

func (r registrySet) names() []string { return r.reg.Names() }

func (r registrySet) has(name string) bool { return r.reg.Has(name) }

func (r registrySet) get(ctx context.Context, name string) (Backend, error) {
	a, err := r.reg.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	return a, nil
}

func (r registrySet) peek(name string) (Backend, bool) {
	a, ok := r.reg.Peek(name)
	if !ok {
		return nil, false
	}
	return a, true
}

// Options tunes the HTTP serving tier. The zero value gives production
// defaults.
type Options struct {
	// CacheEntries bounds the answer cache size across all shards
	// (default 4096). Negative disables caching.
	CacheEntries int
	// CacheShards is the number of independently locked cache segments
	// (default 16).
	CacheShards int
	// MaxInFlight bounds concurrent kernel executions (default 256).
	MaxInFlight int
	// QueueTimeout is how long an admitted request waits for an
	// in-flight slot before being shed with 503 (default 100ms).
	QueueTimeout time.Duration
	// MaxBatch bounds the texts accepted by one batch request
	// (default 256).
	MaxBatch int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// LatencyWindow is the per-route latency sample window
	// (default stats.DefaultLatencyWindow).
	LatencyWindow int
	// BatchWorkers bounds concurrent items within one batch request
	// (default 8).
	BatchWorkers int
	// SessionEntries bounds the number of live dialogue sessions across
	// all datasets (default 4096, LRU-evicted). Negative disables
	// dialogue sessions; session requests are then served statelessly.
	SessionEntries int
}

func (o Options) withDefaults() Options {
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 100 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.BatchWorkers <= 0 {
		o.BatchWorkers = 8
	}
	if o.SessionEntries == 0 {
		o.SessionEntries = 4096
	}
	return o
}

// ErrOverloaded is returned (and mapped to 503) when admission control
// sheds a request: every in-flight slot stayed busy for the whole queue
// timeout.
var ErrOverloaded = errors.New("httpserve: server overloaded")

// Result is one served answer plus serving-tier metadata.
type Result struct {
	serve.Answer
	// Cached reports an answer served from the cache without touching
	// the kernel.
	Cached bool
	// Shared reports an answer obtained by joining another request's
	// in-flight computation.
	Shared bool
}

// Server is the HTTP serving tier over one Backend or a multi-dataset
// registry. Create with New (production, single dataset), NewMulti
// (production, serve.Registry) or NewWithBackend (tests); it is safe
// for concurrent use.
type Server struct {
	tenants  tenantSet
	defName  string          // dataset the legacy /v1/* routes resolve to ("" = none)
	answerer *serve.Answerer // non-nil iff single-tenant over a *serve.Answerer
	registry *serve.Registry // non-nil iff built with NewMulti
	opts     Options
	cache    *answerCache  // nil when caching is disabled
	sessions *sessionTable // nil when dialogue sessions are disabled
	flights  *flightGroup
	sem      chan struct{}
	started  time.Time
	swaps    atomic.Uint64
	rejected atomic.Uint64
	panics   atomic.Uint64
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in panic recovery

	mAnswer  *routeMetrics
	mHealthz *routeMetrics
	mStats   *routeMetrics

	// Per-dataset answer metrics and swap counters, lazily created.
	dsMu sync.RWMutex
	ds   map[string]*datasetMetrics
}

// New builds the HTTP tier over a production Answerer mounted as the
// default dataset; the Server's SwapStore/Rebuild delegate to it and
// purge its cache entries eagerly.
func New(a *serve.Answerer, opts Options) *Server {
	s := NewWithBackend(a, opts)
	s.answerer = a
	return s
}

// NewMulti builds the HTTP tier over a dataset registry: every
// registered dataset is served under /v1/{dataset}/answer, with lazy
// loading and per-dataset hot swap. defaultDataset names the tenant
// the legacy /v1/answer route resolves to; empty means the legacy
// route answers 404 and clients must address datasets explicitly.
func NewMulti(reg *serve.Registry, defaultDataset string, opts Options) *Server {
	s := newServer(registrySet{reg: reg}, defaultDataset, opts)
	s.registry = reg
	return s
}

// NewWithBackend builds the HTTP tier over any Backend, mounted as the
// default dataset. SwapStore and Rebuild are unavailable (they need a
// *serve.Answerer), but cache invalidation still tracks Store identity
// automatically.
func NewWithBackend(b Backend, opts Options) *Server {
	return newServer(singleSet{name: DefaultDataset, b: b}, DefaultDataset, opts)
}

func newServer(tenants tenantSet, defName string, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		tenants: tenants,
		defName: defName,
		opts:    opts,
		flights: newFlightGroup(),
		sem:     make(chan struct{}, opts.MaxInFlight),
		started: time.Now(),

		mAnswer:  newRouteMetrics(opts.LatencyWindow),
		mHealthz: newRouteMetrics(opts.LatencyWindow),
		mStats:   newRouteMetrics(opts.LatencyWindow),
		ds:       make(map[string]*datasetMetrics),
	}
	if opts.CacheEntries > 0 {
		s.cache = newAnswerCache(opts.CacheEntries, opts.CacheShards)
	}
	if opts.SessionEntries > 0 {
		s.sessions = newSessionTable(opts.SessionEntries)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/answer", s.handleAnswer)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("/v1/{dataset}/answer", s.handleAnswer)
	s.mux.HandleFunc("/v1/{dataset}/stats", s.handleDatasetStats)
	s.mux.HandleFunc("/v1/{dataset}/healthz", s.handleDatasetHealthz)
	s.handler = s.recoverMiddleware(s.mux)
	return s
}

// dataset returns (creating if needed) the per-dataset metrics slot.
func (s *Server) dataset(name string) *datasetMetrics {
	s.dsMu.RLock()
	m := s.ds[name]
	s.dsMu.RUnlock()
	if m != nil {
		return m
	}
	s.dsMu.Lock()
	defer s.dsMu.Unlock()
	if m = s.ds[name]; m == nil {
		m = &datasetMetrics{answers: newRouteMetrics(s.opts.LatencyWindow)}
		s.ds[name] = m
	}
	return m
}

// Handler returns the route multiplexer wrapped in panic recovery,
// ready for http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// CacheKey canonicalizes request text into its cache/singleflight
// identity: two phrasings normalize equal exactly when classification
// treats them identically. The full key additionally carries the
// dataset name, so identical texts against different datasets never
// collide.
func CacheKey(text string) string { return voice.Normalize(text) }

// tenantKey scopes a canonicalized text to one dataset. Dataset names
// arrive from the URL path and so can never contain the NUL separator.
func tenantKey(dataset, text string) string {
	return dataset + "\x00" + CacheKey(text)
}

// Answer serves one request against the default dataset; see
// AnswerDataset.
func (s *Server) Answer(ctx context.Context, text string) (Result, error) {
	return s.AnswerDataset(ctx, s.defName, text)
}

// AnswerDataset serves one request against one named dataset through
// the full tier — tenant resolution (lazily loading the dataset if
// needed), cache, singleflight, then admission-controlled kernel
// execution. It is the in-process entry point the HTTP handler wraps;
// Latency is always the true serving time of this call, not a cached
// value. Unknown datasets fail with serve.ErrUnknownDataset.
func (s *Server) AnswerDataset(ctx context.Context, dataset, text string) (Result, error) {
	start := time.Now()
	b, err := s.tenants.get(ctx, dataset)
	if err != nil {
		return Result{}, err
	}
	key := tenantKey(dataset, text)
	store, gen, tracked := storeGen(b)
	if s.cache != nil {
		if ans, ok := s.cache.get(key, store); ok {
			ans.Latency = time.Since(start)
			return Result{Answer: ans, Cached: true}, nil
		}
	}
	// The leader's admission wait is detached from its client's context:
	// joiners share the flight's result, so a leader whose client
	// disconnects must not poison them with a cancellation error. The
	// wait stays bounded by the queue timeout, and the only shareable
	// error is ErrOverloaded — a genuine system-wide condition. Joiners
	// honor their own ctx inside do.
	ans, shared, err := s.flights.do(ctx, flightKey{store: store, key: key}, func() (serve.Answer, error) {
		if err := s.acquire(); err != nil {
			return serve.Answer{}, err
		}
		defer func() { <-s.sem }()
		ans := b.Answer(text)
		if s.cache != nil {
			// Fill only when no swap landed during the kernel call. The
			// backend loads its store inside Answer, after our capture: a
			// swap in between means ans may have been computed against a
			// store other than the one captured above, and tagging it with
			// the captured identity would let a later re-install of that
			// view (same pointer, new generation) serve the mismatched
			// answer as current. Store identity cannot detect this — the
			// generation can: it is unique per publish, so an unchanged
			// generation proves the live store never moved. Backends
			// without a generation (test fakes) keep the old best-effort
			// fill; their stores are never re-installed.
			if !tracked {
				s.cache.put(key, dataset, store, ans)
			} else if _, now, _ := storeGen(b); now == gen {
				s.cache.put(key, dataset, store, ans)
			}
		}
		return ans, nil
	})
	if err != nil {
		return Result{}, err
	}
	ans.Latency = time.Since(start)
	return Result{Answer: ans, Shared: shared}, nil
}

// acquire takes an in-flight slot, waiting at most the queue timeout;
// Admission.Rejected counts exactly the requests shed here.
func (s *Server) acquire() error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(s.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-timer.C:
		s.rejected.Add(1)
		return ErrOverloaded
	}
}

// SwapStore swaps the live store of the default dataset's Answerer and
// purges that dataset's cache entries eagerly (entries would
// self-invalidate by store identity anyway; purging frees their memory
// now). Panics when the Server was built over a custom Backend; for a
// multi-dataset server use SwapStoreFor.
func (s *Server) SwapStore(next engine.StoreView) engine.StoreView {
	if s.answerer == nil {
		if s.registry != nil && s.defName != "" {
			old, err := s.SwapStoreFor(context.Background(), s.defName, next)
			if err != nil {
				panic("httpserve: SwapStore on default dataset: " + err.Error())
			}
			return old
		}
		panic("httpserve: SwapStore requires a *serve.Answerer backend")
	}
	old := s.answerer.SwapStore(next)
	s.afterSwap(s.defName)
	return old
}

// SwapStoreFor hot-swaps the live store of one named dataset, loading
// it first if necessary, and purges exactly that dataset's cache
// entries — other datasets keep their cache. Requires a registry
// server (NewMulti).
func (s *Server) SwapStoreFor(ctx context.Context, dataset string, next engine.StoreView) (engine.StoreView, error) {
	if s.registry == nil {
		panic("httpserve: SwapStoreFor requires a registry server (NewMulti)")
	}
	old, err := s.registry.SwapStore(ctx, dataset, next)
	if err != nil {
		return nil, err
	}
	s.afterSwap(dataset)
	return old, nil
}

// SwapDataFor publishes a post-delta generation — the patched store
// plus the relation the rows now look like — for one named dataset,
// purging exactly that dataset's cache entries. This is the HTTP-tier
// seam the incremental ingestion path (internal/delta) publishes
// through; it has the same zero-downtime semantics as SwapStoreFor.
// Requires a registry server (NewMulti).
func (s *Server) SwapDataFor(ctx context.Context, dataset string, rel *relation.Relation, next engine.StoreView) (engine.StoreView, error) {
	if s.registry == nil {
		panic("httpserve: SwapDataFor requires a registry server (NewMulti)")
	}
	old, err := s.registry.SwapData(ctx, dataset, rel, next)
	if err != nil {
		return nil, err
	}
	s.afterSwap(dataset)
	return old, nil
}

// Rebuild re-runs pre-processing through build and hot-swaps the
// result into the default dataset with zero downtime, purging its
// cache entries on success.
func (s *Server) Rebuild(ctx context.Context, build func(context.Context) (engine.StoreView, error)) (engine.StoreView, error) {
	if s.answerer == nil {
		if s.registry != nil && s.defName != "" {
			return s.RebuildFor(ctx, s.defName, build)
		}
		panic("httpserve: Rebuild requires a *serve.Answerer backend")
	}
	old, err := s.answerer.Rebuild(ctx, build)
	if err != nil {
		return nil, err
	}
	s.afterSwap(s.defName)
	return old, nil
}

// RebuildFor re-runs pre-processing for one named dataset and
// hot-swaps the result in with zero downtime; on error the dataset's
// old store keeps serving and its cache survives. Requires a registry
// server (NewMulti).
func (s *Server) RebuildFor(ctx context.Context, dataset string, build func(context.Context) (engine.StoreView, error)) (engine.StoreView, error) {
	if s.registry == nil {
		panic("httpserve: RebuildFor requires a registry server (NewMulti)")
	}
	old, err := s.registry.Rebuild(ctx, dataset, build)
	if err != nil {
		return nil, err
	}
	s.afterSwap(dataset)
	return old, nil
}

// afterSwap accounts one store swap on a dataset and frees exactly
// that dataset's cache entries.
func (s *Server) afterSwap(dataset string) {
	s.swaps.Add(1)
	s.dataset(dataset).swaps.Add(1)
	if s.cache != nil {
		s.cache.purgeDataset(dataset)
	}
}

// DatasetAnswerer returns the production Answerer of a loaded dataset,
// for callers needing direct store access — e.g. the daemon
// snapshotting a freshly rebuilt store. It never triggers a load.
func (s *Server) DatasetAnswerer(name string) (*serve.Answerer, bool) {
	if s.registry != nil {
		return s.registry.Peek(name)
	}
	if name == s.defName && s.answerer != nil {
		return s.answerer, true
	}
	return nil, false
}

// Datasets lists the mounted datasets with residency and live store
// size (the GET /v1/datasets payload).
func (s *Server) Datasets() []DatasetInfo {
	names := s.tenants.names()
	out := make([]DatasetInfo, 0, len(names))
	for _, name := range names {
		info := DatasetInfo{Name: name, Default: name == s.defName}
		if b, ok := s.tenants.peek(name); ok {
			info.Loaded = true
			info.Speeches = b.Store().Len()
		}
		out = append(out, info)
	}
	return out
}

// DatasetStats snapshots one dataset's serving metrics (the
// GET /v1/{dataset}/stats payload). Unknown datasets fail with
// serve.ErrUnknownDataset.
func (s *Server) DatasetStats(dataset string) (DatasetSnapshot, error) {
	if !s.tenants.has(dataset) {
		return DatasetSnapshot{}, fmt.Errorf("%w: %q", serve.ErrUnknownDataset, dataset)
	}
	m := s.dataset(dataset)
	snap := DatasetSnapshot{
		Name:    dataset,
		Default: dataset == s.defName,
		Answers: m.answers.snapshot(),
		Swaps:   m.swaps.Load(),
	}
	if s.registry != nil {
		// Swaps performed directly on the registry (behind the server's
		// back) still count; take the larger of the two views.
		if rs := s.registry.Swaps(dataset); rs > snap.Swaps {
			snap.Swaps = rs
		}
	}
	if b, ok := s.tenants.peek(dataset); ok {
		snap.Loaded = true
		snap.Speeches = b.Store().Len()
	}
	return snap, nil
}

// loadedSpeeches sums the store sizes of the currently resident
// datasets; lazy tenants are never loaded just to be counted.
func (s *Server) loadedSpeeches() (speeches, loaded int) {
	for _, name := range s.tenants.names() {
		if b, ok := s.tenants.peek(name); ok {
			speeches += b.Store().Len()
			loaded++
		}
	}
	return speeches, loaded
}

// Stats snapshots the serving metrics (the GET /v1/stats payload).
func (s *Server) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		UptimeNS: time.Since(s.started),
		Panics:   s.panics.Load(),
		Routes: map[string]RouteSnapshot{
			"answer":  s.mAnswer.snapshot(),
			"healthz": s.mHealthz.snapshot(),
			"stats":   s.mStats.snapshot(),
		},
		Deduped: s.flights.shared.Load(),
		Admission: AdmissionSnapshot{
			MaxInFlight: s.opts.MaxInFlight,
			InFlight:    len(s.sem),
			Rejected:    s.rejected.Load(),
		},
	}
	snap.Store.Speeches, snap.Store.Loaded = s.loadedSpeeches()
	snap.Store.Datasets = len(s.tenants.names())
	snap.Store.Swaps = s.swaps.Load()
	snap.Datasets = make(map[string]DatasetSnapshot)
	for _, name := range s.tenants.names() {
		if ds, err := s.DatasetStats(name); err == nil {
			snap.Datasets[name] = ds
		}
	}
	if s.cache != nil {
		hits, misses := s.cache.hits.Load(), s.cache.misses.Load()
		snap.Cache = CacheSnapshot{Hits: hits, Misses: misses, Entries: s.cache.len()}
		if total := hits + misses; total > 0 {
			snap.Cache.HitRate = float64(hits) / float64(total)
		}
	}
	return snap
}

// Wire types of POST /v1/answer.

// AnswerRequest is the request body: exactly one of Text or Texts.
// Session optionally names a dialogue: requests sharing a session id
// resolve follow-ups against each other's context (single text only).
type AnswerRequest struct {
	Text    string   `json:"text,omitempty"`
	Texts   []string `json:"texts,omitempty"`
	Session string   `json:"session,omitempty"`
}

// AnswerResponse is one served answer on the wire.
type AnswerResponse struct {
	Kind      string        `json:"kind"`
	Request   string        `json:"request"`
	Text      string        `json:"text"`
	Answered  bool          `json:"answered"`
	Cached    bool          `json:"cached"`
	Shared    bool          `json:"shared,omitempty"`
	Exact     bool          `json:"exact,omitempty"`
	LatencyNS time.Duration `json:"latency_ns"`
	Query     *engine.Query `json:"query,omitempty"`
}

// BatchResponse answers a Texts request, in input order.
type BatchResponse struct {
	Answers []AnswerResponse `json:"answers"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func toResponse(r Result) AnswerResponse {
	resp := AnswerResponse{
		Kind:      r.Kind.String(),
		Request:   r.Request.String(),
		Text:      r.Text,
		Answered:  r.Answered,
		Cached:    r.Cached,
		Shared:    r.Shared,
		Exact:     r.Exact,
		LatencyNS: r.Latency,
	}
	if r.Query.Target != "" {
		q := r.Query
		resp.Query = &q
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: msg})
}

// statusFor maps serving errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, serve.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or ran out of patience mid-queue.
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	// The route-level metric observes every request, including the 404s
	// below; the per-dataset metric is attached only once the name is
	// known to be mounted, so URL scanning cannot grow the metrics map.
	var dsMetrics *routeMetrics
	defer func() {
		s.mAnswer.observe(time.Since(start), failed)
		if dsMetrics != nil {
			dsMetrics.observe(time.Since(start), failed)
		}
	}()

	dataset := r.PathValue("dataset")
	if dataset == "" {
		if dataset = s.defName; dataset == "" {
			writeError(w, http.StatusNotFound,
				"no default dataset mounted; address one explicitly via /v1/{dataset}/answer")
			return
		}
	}
	if !s.tenants.has(dataset) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", dataset))
		return
	}
	dsMetrics = s.dataset(dataset).answers

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AnswerRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Sprintf("bad request body: %v", err))
		return
	}
	switch {
	case req.Text != "" && len(req.Texts) > 0:
		writeError(w, http.StatusBadRequest, `"text" and "texts" are mutually exclusive`)
		return
	case req.Text == "" && len(req.Texts) == 0:
		writeError(w, http.StatusBadRequest, `one of "text" or "texts" is required`)
		return
	case len(req.Texts) > s.opts.MaxBatch:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Texts), s.opts.MaxBatch))
		return
	case req.Session != "" && len(req.Texts) > 0:
		writeError(w, http.StatusBadRequest,
			`"session" requires a single "text": a dialogue is inherently ordered`)
		return
	}

	if req.Text != "" {
		var res Result
		var err error
		if req.Session != "" {
			res, err = s.AnswerSession(r.Context(), dataset, req.Session, req.Text)
		} else {
			res, err = s.AnswerDataset(r.Context(), dataset, req.Text)
		}
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		failed = false
		writeJSON(w, http.StatusOK, toResponse(res))
		return
	}

	resp, err := s.answerBatch(r.Context(), dataset, req.Texts)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, resp)
}

// answerBatch serves a batch against one dataset with bounded
// intra-request concurrency. The first serving error fails the whole
// batch: partial results would force clients to re-send anyway, and
// admission pressure applies to every item equally.
func (s *Server) answerBatch(ctx context.Context, dataset string, texts []string) (BatchResponse, error) {
	resp := BatchResponse{Answers: make([]AnswerResponse, len(texts))}
	workers := s.opts.BatchWorkers
	if workers > len(texts) {
		workers = len(texts)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				res, err := s.AnswerDataset(ctx, dataset, texts[i])
				if err != nil {
					errs <- err
					cancel()
					return
				}
				resp.Answers[i] = toResponse(res)
			}
			errs <- nil
		}()
	}
feed:
	for i := range texts {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	var firstErr error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return BatchResponse{}, firstErr
	}
	return resp, nil
}

// HealthResponse is the GET /v1/healthz payload. Speeches aggregates
// the stores of the currently loaded datasets.
type HealthResponse struct {
	Status   string        `json:"status"`
	Speeches int           `json:"speeches"`
	Datasets int           `json:"datasets,omitempty"`
	Loaded   int           `json:"loaded,omitempty"`
	Swaps    uint64        `json:"swaps"`
	UptimeNS time.Duration `json:"uptime_ns"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mHealthz.observe(time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	speeches, loaded := s.loadedSpeeches()
	failed = false
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Speeches: speeches,
		Datasets: len(s.tenants.names()),
		Loaded:   loaded,
		Swaps:    s.swaps.Load(),
		UptimeNS: time.Since(s.started),
	})
}

// handleDatasetHealthz reports one dataset's liveness: 200 with its
// store size when mounted (loading is not triggered), 404 otherwise.
func (s *Server) handleDatasetHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mHealthz.observe(time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap, err := s.DatasetStats(r.PathValue("dataset"))
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	resp := HealthResponse{
		Status:   "ok",
		Speeches: snap.Speeches,
		Swaps:    snap.Swaps, // same reconciled view as /v1/{dataset}/stats
		UptimeNS: time.Since(s.started),
	}
	if snap.Loaded {
		resp.Loaded = 1
	}
	failed = false
	writeJSON(w, http.StatusOK, resp)
}

// DatasetsResponse is the GET /v1/datasets payload.
type DatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mStats.observe(time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, DatasetsResponse{Datasets: s.Datasets()})
}

func (s *Server) handleDatasetStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mStats.observe(time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap, err := s.DatasetStats(r.PathValue("dataset"))
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	failed := true
	defer func() { s.mStats.observe(time.Since(start), failed) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, s.Stats())
}
