package httpserve

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/serve"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/routing_golden.json from current behavior")

// goldenTexts is the pinned query-log sample: every request type and
// phrasing family the voice path distinguishes, including the edge
// cases the hardening pass added.
var goldenTexts = []string{
	// Help phrasings.
	"help",
	"what can you do",
	"what can I ask you",
	"how does this work",
	// Repeat phrasings (the stateless server apologizes).
	"repeat that",
	"say that again please",
	"come again",
	// Supported summaries: overall, one predicate per dimension family.
	"cancellations",
	"what is the average cancellations",
	"cancellations in Winter",
	"cancellations in Spring",
	"cancellations in Summer",
	"cancellations in Fall",
	"cancellations on UA",
	"cancellations on DL",
	"cancellations on NK",
	"cancellation probability for AA flights",
	"Cancellations... in WINTER!?",
	"tell me about cancellations in winter",
	// Two predicates with a one-predicate store: most-specific match.
	"cancellations in Winter on UA",
	"cancellations on B6 in Summer",
	// Extrema, across the synonym vocabulary.
	"which airline has the highest cancellations",
	"which airline has the most cancellations",
	"which airline has the fewest cancellations",
	"which season has the lowest cancellations",
	"which season has the largest cancellations",
	"airline with the smallest cancellations",
	"what is the worst season for cancellations",
	// Comparisons.
	"compare cancellations between Winter and Summer",
	"cancellations UA versus DL",
	"what is the difference between Winter and Fall cancellations",
	"are cancellations in Winter more than in Summer",
	// Unknown target.
	"what about delays in Winter",
	"average delay on UA",
	// Unsupported / not understood.
	"play some music",
	"tell me a joke",
	"what is the weather like",
	"good morning",
	"",
	"???",
	"winter",
	"UA",
	"which mountain is the highest",
	// Top-k rankings, spoken and digit counts, both directions.
	"the top three airlines with the highest cancellations",
	"top 3 airlines with the highest cancellations",
	"the two seasons with the highest cancellations",
	"bottom two airlines by cancellations",
	"the three airlines with the fewest cancellations",
	"top five airlines by cancellation probability",
	"what are the top 2 seasons for cancellations",
	"give me the top four airlines with the lowest cancellations",
	// Numeric entity constraints across the operator vocabulary.
	"airlines with cancellations over 10 percent",
	"airlines with cancellations above 15 percent",
	"which airlines have cancellations of at least 5 percent",
	"airlines whose cancellations are under 50 percent",
	"seasons with cancellations over 10 percent",
	"airlines with cancellations greater than 90 percent",
	"airlines having cancellations below 99 percent",
	// Constrained extremum: ranking restricted to qualifying entities.
	"the airline with the highest cancellations among airlines with cancellations over 5 percent",
	// Trends and time windows over the month dimension.
	"how did cancellations change over time",
	"cancellation trend",
	"cancellations since July",
	"how did cancellations change since February",
	"cancellations between February and June",
	"cancellations from January to March",
	"cancellation trend over the last three months",
	"how did cancellations evolve over the last 2 quarters",
	"cancellations in Winter since March",
	// Elliptical follow-ups: the stateless endpoint apologizes, pinning
	// that they are recognized as follow-ups rather than noise.
	"what about Winter",
	"what about UA",
	"and the lowest",
	"how about the top five airlines",
	"what about",
	"and",
	// Adversarial shapes the grammar must not crash or misroute on.
	"top 99999 airlines",
	"top 0 airlines by cancellations",
	"since since since",
	"cancellations over 10",
	"the top three mountains with the highest snowfall",
	"airlines with altitude over 10 thousand",
}

// goldenEntry pins one routing outcome.
type goldenEntry struct {
	Text   string `json:"text"`
	Kind   string `json:"kind"`
	Answer string `json:"answer"`
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "routing_golden.json")
}

// TestRoutingGolden pins ~40 query phrasings to their answer kind and
// rendered text, and proves the cached and uncached serving paths
// return byte-identical answers to the direct in-process path.
func TestRoutingGolden(t *testing.T) {
	rel := flightsRel()
	store := buildFlightsStore(t, rel, 1, "cancellation probability")
	a := serve.New(rel, store, flightsExtractor(rel), serve.Options{})
	sUncached := New(a, Options{CacheEntries: -1})
	sCached := New(a, Options{})
	ctx := context.Background()

	got := make([]goldenEntry, len(goldenTexts))
	for i, text := range goldenTexts {
		direct := a.Answer(text)

		uncached, err := sUncached.Answer(ctx, text)
		if err != nil {
			t.Fatalf("uncached answer for %q: %v", text, err)
		}
		if uncached.Cached {
			t.Fatalf("cache-disabled serving of %q claims cached", text)
		}
		if _, err := sCached.Answer(ctx, text); err != nil { // prime
			t.Fatalf("priming answer for %q: %v", text, err)
		}
		cached, err := sCached.Answer(ctx, text)
		if err != nil {
			t.Fatalf("cached answer for %q: %v", text, err)
		}
		if !cached.Cached {
			t.Fatalf("second serving of %q not cached", text)
		}

		for path, ans := range map[string]serve.Answer{"uncached": uncached.Answer, "cached": cached.Answer} {
			if ans.Kind != direct.Kind || ans.Text != direct.Text {
				t.Errorf("%s path diverges from direct for %q:\n  direct: %v %q\n  %s: %v %q",
					path, text, direct.Kind, direct.Text, path, ans.Kind, ans.Text)
			}
		}
		got[i] = goldenEntry{Text: text, Kind: direct.Kind.String(), Answer: direct.Text}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath(t), len(got))
		return
	}

	data, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d entries, test produced %d (regenerate with -update)", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("routing drift for %q:\n  want kind=%s answer=%q\n  got  kind=%s answer=%q",
				want[i].Text, want[i].Kind, want[i].Answer, got[i].Kind, got[i].Answer)
		}
	}
}
