package httpserve

import (
	"sync/atomic"
	"time"

	"cicero/internal/stats"
)

// Per-route serving metrics, exposed as JSON on GET /v1/stats. Counters
// are lock-free atomics; latency percentiles come from the bounded
// recorder in internal/stats, so a long-running server's stats cost
// constant memory.

// routeMetrics aggregates one route's traffic.
type routeMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	lat      *stats.LatencyRecorder
}

func newRouteMetrics(window int) *routeMetrics {
	return &routeMetrics{lat: stats.NewLatencyRecorder(window)}
}

// observe records one served request on the route.
func (m *routeMetrics) observe(d time.Duration, failed bool) {
	m.requests.Add(1)
	if failed {
		m.errors.Add(1)
	}
	m.lat.Record(d)
}

// RouteSnapshot is one route's metrics at a point in time.
type RouteSnapshot struct {
	Requests uint64                `json:"requests"`
	Errors   uint64                `json:"errors"`
	Latency  stats.LatencySnapshot `json:"latency"`
}

func (m *routeMetrics) snapshot() RouteSnapshot {
	return RouteSnapshot{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
		Latency:  m.lat.Snapshot(),
	}
}

// CacheSnapshot reports answer-cache effectiveness.
type CacheSnapshot struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Entries int     `json:"entries"`
}

// AdmissionSnapshot reports load-shedding state.
type AdmissionSnapshot struct {
	MaxInFlight int    `json:"max_in_flight"`
	InFlight    int    `json:"in_flight"`
	Rejected    uint64 `json:"rejected"`
}

// StoreSnapshot reports the live speech stores in aggregate: Speeches
// sums the stores of the Loaded (resident) datasets out of Datasets
// mounted; Swaps counts hot-swaps across all datasets.
type StoreSnapshot struct {
	Speeches int    `json:"speeches"`
	Datasets int    `json:"datasets,omitempty"`
	Loaded   int    `json:"loaded,omitempty"`
	Swaps    uint64 `json:"swaps"`
}

// datasetMetrics aggregates one dataset's serving traffic.
type datasetMetrics struct {
	answers *routeMetrics
	swaps   atomic.Uint64
}

// DatasetInfo is one row of the GET /v1/datasets listing.
type DatasetInfo struct {
	Name string `json:"name"`
	// Default marks the dataset the legacy /v1/answer route serves.
	Default bool `json:"default,omitempty"`
	// Loaded reports residency; a lazy dataset loads on first answer.
	Loaded bool `json:"loaded"`
	// Speeches is the live store size (0 when not loaded).
	Speeches int `json:"speeches"`
}

// DatasetSnapshot is one dataset's metrics at a point in time (the
// GET /v1/{dataset}/stats payload).
type DatasetSnapshot struct {
	Name     string        `json:"name"`
	Default  bool          `json:"default,omitempty"`
	Loaded   bool          `json:"loaded"`
	Speeches int           `json:"speeches"`
	Swaps    uint64        `json:"swaps"`
	Answers  RouteSnapshot `json:"answers"`
}

// StatsSnapshot is the full GET /v1/stats payload.
type StatsSnapshot struct {
	UptimeNS  time.Duration              `json:"uptime_ns"`
	Panics    uint64                     `json:"panics_total"`
	Routes    map[string]RouteSnapshot   `json:"routes"`
	Cache     CacheSnapshot              `json:"cache"`
	Deduped   uint64                     `json:"singleflight_shared"`
	Admission AdmissionSnapshot          `json:"admission"`
	Store     StoreSnapshot              `json:"store"`
	Datasets  map[string]DatasetSnapshot `json:"datasets,omitempty"`
}
