package httpserve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"cicero/internal/serve"
)

// Dialogue sessions over HTTP: a request carrying a "session" field is
// answered against that session's conversational context, so elliptical
// follow-ups ("what about Texas") resolve across stateless HTTP calls.
//
// Session requests bypass the answer cache and singleflight on purpose:
// the answer depends on the session's previous query, so two sessions
// asking the same text legitimately get different answers, and a cached
// one would leak context across users. Admission control still applies
// — dialogue traffic competes for the same kernel slots as everything
// else.

// contextBackend is the optional Backend extension dialogue routing
// rides on (*serve.Answerer implements it). Backends without it serve
// session requests statelessly — follow-ups then get the apology.
type contextBackend interface {
	AnswerContext(text string, prev *serve.QueryContext) (serve.Answer, *serve.QueryContext)
}

// sessionSlot holds one dialogue's context behind an atomic pointer:
// concurrent requests on the same session each observe one coherent
// snapshot (serve.QueryContext is immutable), and the last writer wins
// — the same semantics as serve.Session.
type sessionSlot struct {
	ctx atomic.Pointer[serve.QueryContext]
	// touched is the wall-clock of the last request, for observability.
	touched atomic.Int64
}

// sessionTable is a bounded LRU of dialogue slots keyed by
// (dataset, session id). Session ids arrive from untrusted request
// bodies, so the table must not grow with the id space: the least
// recently used dialogue is dropped at capacity, and its next
// follow-up simply fails to resolve.
type sessionTable struct {
	mu    sync.Mutex
	max   int
	slots map[string]*list.Element
	order *list.List // front = most recently used
}

type sessionEntry struct {
	key  string
	slot *sessionSlot
}

func newSessionTable(max int) *sessionTable {
	return &sessionTable{
		max:   max,
		slots: make(map[string]*list.Element),
		order: list.New(),
	}
}

// slot returns the dialogue slot for key, creating it (and evicting the
// least recently used dialogue at capacity) if needed.
func (t *sessionTable) slot(key string) *sessionSlot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.slots[key]; ok {
		t.order.MoveToFront(el)
		return el.Value.(*sessionEntry).slot
	}
	for t.order.Len() >= t.max {
		last := t.order.Back()
		t.order.Remove(last)
		delete(t.slots, last.Value.(*sessionEntry).key)
	}
	entry := &sessionEntry{key: key, slot: &sessionSlot{}}
	t.slots[key] = t.order.PushFront(entry)
	return entry.slot
}

// len returns the number of live dialogues.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}

// purgeDataset drops every dialogue of one dataset (used when a tenant
// is torn down; a store swap deliberately keeps dialogues alive — the
// context owns its strings and outlives store generations).
func (t *sessionTable) purgeDataset(dataset string) {
	prefix := dataset + "\x00"
	t.mu.Lock()
	defer t.mu.Unlock()
	var next *list.Element
	for el := t.order.Front(); el != nil; el = next {
		next = el.Next()
		entry := el.Value.(*sessionEntry)
		if len(entry.key) > len(prefix) && entry.key[:len(prefix)] == prefix {
			t.order.Remove(el)
			delete(t.slots, entry.key)
		}
	}
}

// AnswerSession serves one request within a dialogue session: the text
// is classified against the session's previous query context, so
// follow-ups resolve, and the context advances when the answer is
// followable. The cache and singleflight are bypassed (answers are
// context-dependent); admission control is not.
func (s *Server) AnswerSession(ctx context.Context, dataset, session, text string) (Result, error) {
	start := time.Now()
	b, err := s.tenants.get(ctx, dataset)
	if err != nil {
		return Result{}, err
	}
	cb, ok := b.(contextBackend)
	if !ok || s.sessions == nil {
		// No dialogue support on this backend (or sessions disabled):
		// serve statelessly under admission control.
		if err := s.acquire(); err != nil {
			return Result{}, err
		}
		ans := b.Answer(text)
		<-s.sem
		ans.Latency = time.Since(start)
		return Result{Answer: ans}, nil
	}
	slot := s.sessions.slot(tenantKey(dataset, session))
	if err := s.acquire(); err != nil {
		return Result{}, err
	}
	defer func() { <-s.sem }()
	prev := slot.ctx.Load()
	ans, next := cb.AnswerContext(text, prev)
	if next != prev {
		// Whole-pointer publish: a concurrent request on this session
		// observes either the old or the new context, never a mix.
		slot.ctx.Store(next)
	}
	slot.touched.Store(time.Now().UnixNano())
	ans.Latency = time.Since(start)
	return Result{Answer: ans}, nil
}

// Sessions reports the number of live dialogue sessions.
func (s *Server) Sessions() int {
	if s.sessions == nil {
		return 0
	}
	return s.sessions.len()
}
