package httpserve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cicero/internal/engine"
	"cicero/internal/serve"
)

// gateBackend blocks in Answer until released, counting entries; used
// to prove exactly-once execution per singleflight group.
type gateBackend struct {
	store   *engine.Store
	calls   atomic.Int64
	release chan struct{}
}

func (b *gateBackend) Answer(text string) serve.Answer {
	b.calls.Add(1)
	<-b.release
	return serve.Answer{Kind: serve.Summary, Text: "answer for " + text, Answered: true}
}

func (b *gateBackend) Store() engine.StoreView { return b.store }

// TestSingleflightExactlyOnce releases a burst of identical requests
// that all miss the cache at once: exactly one must reach the backend;
// every caller gets the leader's answer.
func TestSingleflightExactlyOnce(t *testing.T) {
	b := &gateBackend{store: engine.NewStore(), release: make(chan struct{})}
	s := NewWithBackend(b, Options{MaxInFlight: 64})

	const n = 32
	var started, finished sync.WaitGroup
	results := make([]Result, n)
	errs := make([]error, n)
	started.Add(n)
	finished.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer finished.Done()
			started.Done()
			started.Wait() // barrier: everyone dispatches together
			results[i], errs[i] = s.Answer(context.Background(), "the same question")
		}(i)
	}
	started.Wait()
	// Let every goroutine reach the cache miss and the flight join, then
	// release the single leader.
	for deadline := time.Now().Add(2 * time.Second); b.calls.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("no leader entered the backend")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give joiners time to pile onto the flight
	close(b.release)
	finished.Wait()

	if got := b.calls.Load(); got != 1 {
		t.Errorf("backend executed %d times for one singleflight group, want 1", got)
	}
	shared := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i].Text != "answer for the same question" {
			t.Errorf("request %d got %q", i, results[i].Text)
		}
		if results[i].Shared {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no request reported joining the flight")
	}
	if got := s.Stats().Deduped; got == 0 {
		t.Error("singleflight_shared metric did not move")
	}
}

// genBackend answers with the index of the store generation it loaded,
// so a served answer names the exact generation it was computed from.
type genBackend struct {
	store atomic.Pointer[engine.Store]
	gen   map[engine.StoreView]int
}

func (b *genBackend) Answer(text string) serve.Answer {
	g := b.gen[b.store.Load()]
	return serve.Answer{
		Kind: serve.Summary, Answered: true,
		Text: fmt.Sprintf("%s#gen%d", CacheKey(text), g),
	}
}

func (b *genBackend) Store() engine.StoreView { return b.store.Load() }

func (b *genBackend) index(s engine.StoreView) int { return b.gen[s] }

// TestStressCacheDuringSwaps hammers the cached answer path from many
// goroutines with a mix of identical and distinct queries while the
// live store is swapped through fresh generations. Run under -race (CI
// does). Invariant: an answer observed by a request must come from a
// generation that was live at some point during that request — never
// from before it started (a stale post-swap answer).
func TestStressCacheDuringSwaps(t *testing.T) {
	const generations = 24
	stores := make([]*engine.Store, generations)
	gen := make(map[engine.StoreView]int, generations)
	for i := range stores {
		stores[i] = engine.NewStore()
		gen[stores[i]] = i
	}
	b := &genBackend{gen: gen}
	b.store.Store(stores[0])
	s := NewWithBackend(b, Options{MaxInFlight: 64, CacheEntries: 1024})

	queries := []string{
		"the hot query", "the hot query", "the hot query", // identical traffic
		"warm query one", "warm query two", "warm query three",
		"cold %d", // distinct per iteration
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64
	const readers = 8
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(r+i)%len(queries)]
				if strings.Contains(q, "%d") {
					q = fmt.Sprintf(q, i)
				}
				before := b.index(b.Store())
				res, err := s.Answer(ctx, q)
				if err != nil {
					t.Errorf("answer failed: %v", err)
					return
				}
				after := b.index(b.Store())
				var got int
				if _, err := fmt.Sscanf(res.Text[strings.LastIndex(res.Text, "#gen"):], "#gen%d", &got); err != nil {
					t.Errorf("unparseable answer %q", res.Text)
					return
				}
				// The answer's generation must overlap the request
				// window: [before, after] (generations only grow).
				if got < before || got > after {
					violations.Add(1)
					t.Errorf("stale answer: computed on gen%d, request window [gen%d, gen%d] (%q)",
						got, before, after, res.Text)
				}
			}
		}(r)
	}

	// Swap through every generation while the readers run.
	for i := 1; i < generations; i++ {
		time.Sleep(2 * time.Millisecond)
		b.store.Store(stores[i])
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	if violations.Load() > 0 {
		t.Fatalf("%d stale post-swap answers", violations.Load())
	}
	snap := s.Stats()
	if snap.Cache.Hits == 0 {
		t.Error("stress run never hit the cache")
	}
	if snap.Cache.Misses == 0 {
		t.Error("stress run never missed the cache")
	}
}

// TestStressRealAnswererSwap drives the production stack — Answerer +
// HTTP tier — with concurrent identical and distinct queries while
// Server.SwapStore advances through real store generations whose speech
// templates carry a unique generation marker. Every answer must carry
// the marker of a generation that was live at some point during the
// request — never one from before it started.
func TestStressRealAnswererSwap(t *testing.T) {
	const generations = 6
	rel := flightsRel()
	stores := make([]*engine.Store, generations)
	genOf := make(map[engine.StoreView]int, generations)
	for i := range stores {
		stores[i] = buildFlightsStore(t, rel, 1,
			fmt.Sprintf("cancellation probability (gen%03d)", i))
		genOf[stores[i]] = i
	}
	a := serve.New(rel, stores[0], flightsExtractor(rel), serve.Options{})
	s := New(a, Options{MaxInFlight: 64})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	const readers = 6
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			texts := []string{"cancellations in Winter", "cancellations in Summer", "cancellations on UA"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				before := genOf[a.Store()]
				res, err := s.Answer(ctx, texts[(r+i)%len(texts)])
				if err != nil {
					t.Errorf("answer failed: %v", err)
					return
				}
				after := genOf[a.Store()]
				live := false
				for g := before; g <= after; g++ {
					live = live || strings.Contains(res.Text, fmt.Sprintf("(gen%03d)", g))
				}
				if !live {
					t.Errorf("stale answer %q: request window [gen%03d, gen%03d]",
						res.Text, before, after)
				}
			}
		}(r)
	}

	for i := 1; i < generations; i++ {
		time.Sleep(3 * time.Millisecond)
		s.SwapStore(stores[i])
	}
	time.Sleep(3 * time.Millisecond)
	close(stop)
	wg.Wait()

	if got := s.Stats().Store.Swaps; got != generations-1 {
		t.Errorf("swaps = %d, want %d", got, generations-1)
	}
	if hits := s.Stats().Cache.Hits; hits == 0 {
		t.Error("stress run never hit the cache")
	}
}
