package httpserve

import (
	"context"
	"sync"
	"sync/atomic"

	"cicero/internal/engine"
	"cicero/internal/serve"
)

// Singleflight deduplication: when a burst of identical requests
// misses the cache simultaneously, only the first one (the leader)
// executes the kernel; the rest join the in-flight computation and
// share its result. Flights are keyed by (store identity, canonical
// text) so a request admitted after a hot swap can never join a flight
// still computing against the previous store generation.

// flightKey identifies one deduplicated computation.
type flightKey struct {
	store engine.StoreView
	key   string
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{}
	ans  serve.Answer
	err  error
}

// flightGroup tracks in-flight computations by key.
type flightGroup struct {
	mu     sync.Mutex
	m      map[flightKey]*flightCall
	shared atomic.Uint64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[flightKey]*flightCall)}
}

// do executes fn exactly once per key among concurrent callers. The
// returned shared flag reports whether this caller joined an existing
// flight rather than leading one. Joiners stop waiting when their ctx
// expires; the leader always runs fn to completion so the result can
// still serve other joiners and the cache.
func (g *flightGroup) do(ctx context.Context, k flightKey, fn func() (serve.Answer, error)) (ans serve.Answer, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[k]; ok {
		g.mu.Unlock()
		g.shared.Add(1)
		select {
		case <-c.done:
			return c.ans, true, c.err
		case <-ctx.Done():
			return serve.Answer{}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[k] = c
	g.mu.Unlock()

	// The flight is dismantled in a defer so a panicking fn (a backend
	// bug) cannot leak the entry and brick the key: joiners are released
	// and the panic propagates to the leader's caller.
	defer func() {
		g.mu.Lock()
		delete(g.m, k)
		g.mu.Unlock()
		close(c.done)
	}()
	c.ans, c.err = fn()
	return c.ans, false, c.err
}
