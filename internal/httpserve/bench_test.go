package httpserve

import (
	"context"
	"fmt"
	"testing"

	"cicero/internal/serve"
)

// BenchmarkServeAnswer measures the serving tier's two paths through
// Server.Answer: "miss" pays classification + store lookup on every
// request (cache disabled), "hit" is the sharded-LRU fast path the
// cache buys repeated queries. The acceptance bar is hit ≥ 10x faster
// than miss.
func BenchmarkServeAnswer(b *testing.B) {
	rel := flightsRel()
	store := buildFlightsStore(b, rel, 1, "cancellation probability")
	a := serve.New(rel, store, flightsExtractor(rel), serve.Options{})
	ctx := context.Background()
	const text = "cancellations in Winter"

	b.Run("miss", func(b *testing.B) {
		s := New(a, Options{CacheEntries: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Answer(ctx, text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		s := New(a, Options{})
		if _, err := s.Answer(ctx, text); err != nil { // prime
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := s.Answer(ctx, text)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cached {
				b.Fatal("hit benchmark missed the cache")
			}
		}
	})
}

// BenchmarkServeAnswerParallel drives the cached path from all procs —
// the shape heavy production traffic takes.
func BenchmarkServeAnswerParallel(b *testing.B) {
	rel := flightsRel()
	store := buildFlightsStore(b, rel, 1, "cancellation probability")
	a := serve.New(rel, store, flightsExtractor(rel), serve.Options{})
	s := New(a, Options{})
	ctx := context.Background()
	texts := make([]string, 8)
	for i := range texts {
		texts[i] = fmt.Sprintf("cancellations in Winter %d", i)
	}
	for _, t := range texts { // prime
		if _, err := s.Answer(ctx, t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Answer(ctx, texts[i%len(texts)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
