package httpserve

// HTTP middleware for the serving tier: panic containment (a bug in
// one handler must cost one 500, not the process) and per-request
// deadlines (a wedged handler must not pin a worker forever).

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"time"
)

// recoverMiddleware converts a handler panic into a JSON 500 and
// counts it, so a poisoned request cannot crash the daemon and the
// operator sees the rate in /v1/stats. http.ErrAbortHandler is the
// net/http idiom for "abort this response" and is re-raised untouched.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Add(1)
			fmt.Fprintf(os.Stderr, "panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// Headers may already be out; in that case the connection is
			// poisoned anyway and this write is a no-op on a hijacked or
			// started response.
			writeError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// Panics reports the number of handler panics contained so far.
func (s *Server) Panics() uint64 { return s.panics.Load() }

// WithRequestTimeout bounds every request's handler work with a
// context deadline. Unlike http.TimeoutHandler it does not buffer the
// response; handlers observe ctx.Done() and map the cancellation to
// their own error shape (the answer path returns JSON with the
// request's partial status rather than a bare text body).
func WithRequestTimeout(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
