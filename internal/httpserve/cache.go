package httpserve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cicero/internal/engine"
	"cicero/internal/serve"
)

// The answer cache sits in front of the Answerer: every answer is a
// deterministic function of (live store, canonicalized request text),
// so one bounded LRU per shard can serve repeated requests without
// touching the kernel. Entries are tagged with the identity of the
// store they were computed against; a hot swap (SwapStore/Rebuild)
// makes every old tag mismatch the live store, so stale answers can
// never be served after a swap — even when the swap happens behind the
// server's back, directly on the Answerer.

// cacheEntry is one cached answer tagged with its store generation.
type cacheEntry struct {
	key   string
	store *engine.Store
	ans   serve.Answer
}

// cacheShard is an independently locked LRU segment.
type cacheShard struct {
	mu  sync.Mutex
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	cap int
}

// answerCache is a sharded LRU keyed by canonicalized request text.
type answerCache struct {
	shards []cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// newAnswerCache builds a cache holding roughly total entries across
// the given number of shards (both floored to sane minimums).
func newAnswerCache(total, shards int) *answerCache {
	if shards < 1 {
		shards = 1
	}
	perShard := (total + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	c := &answerCache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			ll:  list.New(),
			m:   make(map[string]*list.Element, perShard),
			cap: perShard,
		}
	}
	return c
}

// fnv32a hashes the key for shard selection.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (c *answerCache) shard(key string) *cacheShard {
	return &c.shards[fnv32a(key)%uint32(len(c.shards))]
}

// get returns the cached answer for key if one exists and was computed
// against the given live store. An entry from an older store generation
// is evicted on sight and reported as a miss.
func (c *answerCache) get(key string, store *engine.Store) (serve.Answer, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		c.misses.Add(1)
		return serve.Answer{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.store != store {
		s.ll.Remove(el)
		delete(s.m, key)
		c.misses.Add(1)
		return serve.Answer{}, false
	}
	s.ll.MoveToFront(el)
	c.hits.Add(1)
	return ent.ans, true
}

// put stores an answer computed against the given store, evicting the
// least recently used entry when the shard is full.
func (c *answerCache) put(key string, store *engine.Store, ans serve.Answer) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.store, ent.ans = store, ans
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.m, oldest.Value.(*cacheEntry).key)
		}
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, store: store, ans: ans})
}

// purge drops every entry, freeing memory promptly after a store swap.
func (c *answerCache) purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		clear(s.m)
		s.mu.Unlock()
	}
}

// len counts live entries across shards.
func (c *answerCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
