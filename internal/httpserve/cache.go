package httpserve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cicero/internal/engine"
	"cicero/internal/serve"
)

// The answer cache sits in front of the Answerer: every answer is a
// deterministic function of (live store, canonicalized request text),
// so one bounded LRU per shard can serve repeated requests without
// touching the kernel. Keys carry the dataset name, so identical
// texts against different datasets occupy distinct entries. Entries
// are tagged with the identity of the store they were computed
// against; a hot swap (SwapStore/Rebuild) makes every old tag
// mismatch the live store, so stale answers can never be served after
// a swap — even when the swap happens behind the server's back,
// directly on the Answerer or the registry. The server's own swap
// paths additionally purge the swapped dataset's entries eagerly
// (purgeDataset), freeing their memory without disturbing the cache
// of any other dataset.

// cacheEntry is one cached answer tagged with its dataset and store
// generation.
type cacheEntry struct {
	key     string
	dataset string
	store   engine.StoreView
	ans     serve.Answer
}

// cacheShard is an independently locked LRU segment.
type cacheShard struct {
	mu  sync.Mutex
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	cap int
}

// answerCache is a sharded LRU keyed by canonicalized request text.
type answerCache struct {
	shards []cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// newAnswerCache builds a cache holding roughly total entries across
// the given number of shards (both floored to sane minimums).
func newAnswerCache(total, shards int) *answerCache {
	if shards < 1 {
		shards = 1
	}
	perShard := (total + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	c := &answerCache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			ll:  list.New(),
			m:   make(map[string]*list.Element, perShard),
			cap: perShard,
		}
	}
	return c
}

// fnv32a hashes the key for shard selection.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (c *answerCache) shard(key string) *cacheShard {
	return &c.shards[fnv32a(key)%uint32(len(c.shards))]
}

// get returns the cached answer for key if one exists and was computed
// against the given live store. An entry from an older store generation
// is evicted on sight and reported as a miss.
func (c *answerCache) get(key string, store engine.StoreView) (serve.Answer, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		c.misses.Add(1)
		return serve.Answer{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.store != store {
		s.ll.Remove(el)
		delete(s.m, key)
		c.misses.Add(1)
		return serve.Answer{}, false
	}
	s.ll.MoveToFront(el)
	c.hits.Add(1)
	return ent.ans, true
}

// put stores an answer computed against the given dataset and store,
// evicting the least recently used entry when the shard is full.
func (c *answerCache) put(key, dataset string, store engine.StoreView, ans serve.Answer) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.dataset, ent.store, ent.ans = dataset, store, ans
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.m, oldest.Value.(*cacheEntry).key)
		}
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, dataset: dataset, store: store, ans: ans})
}

// purge drops every entry across all datasets.
func (c *answerCache) purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		clear(s.m)
		s.mu.Unlock()
	}
}

// purgeDataset drops exactly one dataset's entries, freeing their
// memory promptly after that dataset's store swap while every other
// dataset keeps its warm cache.
func (c *answerCache) purgeDataset(dataset string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			if ent := el.Value.(*cacheEntry); ent.dataset == dataset {
				s.ll.Remove(el)
				delete(s.m, ent.key)
			}
			el = next
		}
		s.mu.Unlock()
	}
}

// len counts live entries across shards.
func (c *answerCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
