package httpserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// newHousingAnswerer builds the housing tenant: a time-series dataset
// with rents and populations by city, state, bedrooms, and month.
func newHousingAnswerer(t testing.TB) *serve.Answerer {
	t.Helper()
	rel := dataset.Housing(6000, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"rent"}
	cfg.MaxQueryLen = 1
	s := &engine.Summarizer{Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: "monthly rent", Unit: "dollars"}}
	store, _, err := s.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	ex := voice.NewExtractor(rel, voice.DefaultSamples("housing"), cfg.MaxQueryLen)
	return serve.New(rel, store, ex, serve.Options{})
}

// newDialogueServer mounts flights (default) and housing behind one
// registry server, the two-tenant shape the dialogue smoke run uses.
func newDialogueServer(t testing.TB, opts Options) *Server {
	t.Helper()
	reg := serve.NewRegistry()
	fl, _ := newFlightsAnswerer(t, "cancellation probability")
	if err := reg.Add("flights", fl); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("housing", newHousingAnswerer(t)); err != nil {
		t.Fatal(err)
	}
	return NewMulti(reg, "flights", opts)
}

// TestHousingShapesOverHTTP drives all four new query shapes end to end
// through the HTTP tier against the housing tenant.
func TestHousingShapesOverHTTP(t *testing.T) {
	s := newDialogueServer(t, Options{})
	h := s.Handler()

	cases := []struct {
		name, text, kind, contains string
	}{
		{"multi-constraint",
			"rent for Two bedroom apartments in cities with population over 500 thousand",
			"constrained", "over 500 thousand"},
		{"topk", "the three cities with the highest rent", "topk", "New York"},
		{"trend", "how did rent change since January 2024", "trend", "January 2024"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := postTo(t, h, "/v1/housing/answer", fmt.Sprintf(`{"text":%q}`, c.text))
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			var resp AnswerResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Kind != c.kind || !resp.Answered {
				t.Fatalf("kind %q answered %v (text %q); want answered %q",
					resp.Kind, resp.Answered, resp.Text, c.kind)
			}
			if !strings.Contains(resp.Text, c.contains) {
				t.Errorf("answer %q, want mention of %q", resp.Text, c.contains)
			}
		})
	}
}

// TestDialogueSessionOverHTTP is the fourth shape: follow-up resolution
// through the session field, across stateless HTTP requests.
func TestDialogueSessionOverHTTP(t *testing.T) {
	s := newDialogueServer(t, Options{})
	h := s.Handler()

	ask := func(session, text string) AnswerResponse {
		t.Helper()
		body := fmt.Sprintf(`{"text":%q,"session":%q}`, text, session)
		rec := postTo(t, h, "/v1/housing/answer", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("ask(%q, %q): status %d: %s", session, text, rec.Code, rec.Body.String())
		}
		var resp AnswerResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	seed := ask("alice", "which city has the highest rent")
	if seed.Kind != "extremum" || !seed.Answered || !strings.Contains(seed.Text, "New York") {
		t.Fatalf("seed = %+v", seed)
	}
	fu := ask("alice", "what about Texas")
	if fu.Request != "Follow-up" || fu.Kind != "extremum" || !fu.Answered {
		t.Fatalf("follow-up = %+v, want resolved extremum", fu)
	}
	if !strings.Contains(fu.Text, "Austin") {
		t.Errorf("follow-up text %q, want the Texas extremum (Austin)", fu.Text)
	}

	// A different session shares no context.
	stranger := ask("bob", "what about Texas")
	if stranger.Kind != "followup" || stranger.Answered {
		t.Errorf("cross-session follow-up = %+v, want the apology", stranger)
	}
	// Sessions are scoped per dataset: the same id on another tenant
	// has its own (empty) dialogue.
	rec := postTo(t, h, "/v1/flights/answer", `{"text":"what about Winter","session":"alice"}`)
	var cross AnswerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cross); err != nil {
		t.Fatal(err)
	}
	if cross.Kind != "followup" || cross.Answered {
		t.Errorf("cross-tenant follow-up = %+v, want the apology", cross)
	}
	// And the same request without a session is stateless.
	rec = postTo(t, h, "/v1/housing/answer", `{"text":"what about Texas"}`)
	var stateless AnswerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stateless); err != nil {
		t.Fatal(err)
	}
	if stateless.Kind != "followup" || stateless.Answered {
		t.Errorf("sessionless follow-up = %+v, want the apology", stateless)
	}

	// Repeat replays within the session.
	rep := ask("alice", "repeat that")
	if rep.Kind != "repeat" || !rep.Answered || rep.Text != fu.Text {
		t.Errorf("repeat = %+v, want replay of %q", rep, fu.Text)
	}

	if n := s.Sessions(); n != 3 {
		t.Errorf("live sessions = %d, want 3 (alice on two tenants, bob)", n)
	}
}

func TestSessionBatchRejected(t *testing.T) {
	s := newDialogueServer(t, Options{})
	rec := postTo(t, s.Handler(), "/v1/housing/answer",
		`{"texts":["rent in Boston","what about Miami"],"session":"alice"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("batch+session status = %d, want 400", rec.Code)
	}
}

// TestSessionStatelessFallback: a backend without AnswerContext (or a
// server with sessions disabled) serves session requests statelessly
// rather than failing them.
func TestSessionStatelessFallback(t *testing.T) {
	b := &blockingBackend{store: engine.NewStore(),
		entered: make(chan string, 1), release: make(chan struct{}, 1)}
	b.release <- struct{}{}
	s := NewWithBackend(b, Options{CacheEntries: -1})
	res, err := s.AnswerSession(t.Context(), DefaultDataset, "alice", "hello")
	if err != nil {
		t.Fatal(err)
	}
	<-b.entered
	if res.Text != "done: hello" {
		t.Errorf("fallback answer = %q", res.Text)
	}
	if s.Sessions() != 0 {
		t.Errorf("stateless fallback created a session")
	}

	disabled := newDialogueServer(t, Options{SessionEntries: -1})
	res, err = disabled.AnswerSession(t.Context(), "housing", "alice", "what about Texas")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != serve.FollowUp || res.Answered {
		t.Errorf("sessions-disabled follow-up = %+v, want the stateless apology", res)
	}
}

func TestSessionTableLRU(t *testing.T) {
	tbl := newSessionTable(2)
	a := tbl.slot("ds\x00a")
	tbl.slot("ds\x00b")
	if got := tbl.slot("ds\x00a"); got != a {
		t.Fatalf("slot identity not stable across touches")
	}
	// Capacity 2: adding c evicts b (least recently used), not a.
	tbl.slot("ds\x00c")
	if tbl.len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.len())
	}
	if got := tbl.slot("ds\x00a"); got != a {
		t.Errorf("recently used slot was evicted")
	}
	// b was evicted: asking again creates a fresh slot (c now evicted).
	tbl.purgeDataset("ds")
	if tbl.len() != 0 {
		t.Errorf("purge left %d sessions", tbl.len())
	}
}
