package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// flightsRel is the shared deterministic test relation.
func flightsRel() *relation.Relation { return dataset.Flights(2000, 1) }

// buildFlightsStore pre-processes a one-target flights store; the
// template phrase distinguishes store generations in swap tests.
func buildFlightsStore(t testing.TB, rel *relation.Relation, maxLen int, phrase string) *engine.Store {
	t.Helper()
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"cancelled"}
	cfg.Dimensions = []string{"season", "airline"}
	cfg.MaxQueryLen = maxLen
	s := &engine.Summarizer{
		Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: phrase, Percent: true},
	}
	store, _, err := s.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func flightsExtractor(rel *relation.Relation) *voice.Extractor {
	return voice.NewExtractor(rel, []voice.Sample{
		{Phrase: "cancellations", Target: "cancelled"},
		{Phrase: "cancellation probability", Target: "cancelled"},
	}, 2)
}

// newTestServer builds the full stack — relation, store, answerer,
// HTTP tier — with the given serving options.
func newTestServer(t testing.TB, opts Options) (*Server, *serve.Answerer, *relation.Relation) {
	t.Helper()
	rel := flightsRel()
	store := buildFlightsStore(t, rel, 1, "cancellation probability")
	a := serve.New(rel, store, flightsExtractor(rel), serve.Options{})
	return New(a, opts), a, rel
}

// postAnswer round-trips one POST /v1/answer body through the handler.
func postAnswer(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/answer", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("non-JSON response %q: %v", rec.Body.String(), err)
	}
	return rec, m
}

func decodeAnswer(t *testing.T, rec *httptest.ResponseRecorder) AnswerResponse {
	t.Helper()
	var resp AnswerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad answer body %q: %v", rec.Body.String(), err)
	}
	return resp
}

func TestAnswerSingleHTTP(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()

	rec, _ := postAnswer(t, h, `{"text": "cancellations in Winter"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	first := decodeAnswer(t, rec)
	if first.Kind != "summary" || !first.Answered {
		t.Fatalf("first answer = %+v, want answered summary", first)
	}
	if first.Cached {
		t.Error("first answer claims cached")
	}
	if first.Query == nil || first.Query.Target != "cancelled" {
		t.Errorf("first answer query = %v, want target cancelled", first.Query)
	}

	// The same request again — and a differently phrased variant that
	// canonicalizes to the same text — must be served from the cache
	// with identical content.
	for _, text := range []string{"cancellations in Winter", "Cancellations... in WINTER!?"} {
		rec, _ := postAnswer(t, h, fmt.Sprintf(`{"text": %q}`, text))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d for %q", rec.Code, text)
		}
		got := decodeAnswer(t, rec)
		if !got.Cached {
			t.Errorf("answer for %q not cached", text)
		}
		if got.Text != first.Text || got.Kind != first.Kind {
			t.Errorf("cached answer diverges: %q vs %q", got.Text, first.Text)
		}
	}
}

func TestAnswerBatchHTTP(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	texts := []string{
		"cancellations in Winter",
		"help",
		"which airline has the fewest cancellations",
		"play some music",
	}
	body, _ := json.Marshal(AnswerRequest{Texts: texts})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/answer", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(texts) {
		t.Fatalf("answers = %d, want %d", len(resp.Answers), len(texts))
	}
	wantKinds := []string{"summary", "help", "extremum", "unknown"}
	for i, want := range wantKinds {
		if resp.Answers[i].Kind != want {
			t.Errorf("answers[%d].Kind = %q (%q), want %q", i, resp.Answers[i].Kind, texts[i], want)
		}
	}
}

func TestAnswerValidation(t *testing.T) {
	s, _, _ := newTestServer(t, Options{MaxBatch: 2, MaxBodyBytes: 512})
	h := s.Handler()

	t.Run("method not allowed", func(t *testing.T) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/answer", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", rec.Code)
		}
	})
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{"text": `, http.StatusBadRequest},
		{"unknown field", `{"texty": "hi"}`, http.StatusBadRequest},
		{"neither", `{}`, http.StatusBadRequest},
		{"both", `{"text": "a", "texts": ["b"]}`, http.StatusBadRequest},
		{"batch too large", `{"texts": ["a", "b", "c"]}`, http.StatusBadRequest},
		{"body too large", `{"text": "` + strings.Repeat("x", 2048) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec, m := postAnswer(t, h, c.body)
			if rec.Code != c.status {
				t.Errorf("status = %d, want %d (body %s)", rec.Code, c.status, rec.Body)
			}
			if _, ok := m["error"]; !ok {
				t.Errorf("error body missing: %s", rec.Body)
			}
		})
	}
}

func TestHealthz(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Speeches == 0 {
		t.Errorf("health = %+v, want ok with speeches", health)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST healthz status = %d, want 405", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, Options{})
	h := s.Handler()
	// Two identical requests: one miss, one hit.
	postAnswer(t, h, `{"text": "cancellations in Winter"}`)
	postAnswer(t, h, `{"text": "cancellations in Winter"}`)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ans := snap.Routes["answer"]
	if ans.Requests != 2 || ans.Errors != 0 {
		t.Errorf("answer route = %+v, want 2 requests 0 errors", ans)
	}
	if ans.Latency.Count != 2 || ans.Latency.P99 <= 0 {
		t.Errorf("answer latency = %+v, want 2 samples with positive p99", ans.Latency)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.Entries != 1 {
		t.Errorf("cache = %+v, want 1 hit / 1 miss / 1 entry", snap.Cache)
	}
	if snap.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", snap.Cache.HitRate)
	}
	if snap.Store.Speeches == 0 {
		t.Errorf("store snapshot = %+v, want speeches", snap.Store)
	}
}

// blockingBackend blocks every Answer call until released; distinct
// texts defeat singleflight so admission control is what limits them.
type blockingBackend struct {
	store   *engine.Store
	entered chan string
	release chan struct{}
}

func (b *blockingBackend) Answer(text string) serve.Answer {
	b.entered <- text
	<-b.release
	return serve.Answer{Kind: serve.Help, Text: "done: " + text, Answered: true}
}

func (b *blockingBackend) Store() engine.StoreView { return b.store }

func TestAdmissionControl(t *testing.T) {
	b := &blockingBackend{
		store:   engine.NewStore(),
		entered: make(chan string, 8),
		release: make(chan struct{}),
	}
	s := NewWithBackend(b, Options{
		CacheEntries: -1, // every request must reach the backend
		MaxInFlight:  1,
		QueueTimeout: 20 * time.Millisecond,
	})

	// Fill the only slot.
	firstErr := make(chan error, 1)
	go func() {
		_, err := s.Answer(context.Background(), "occupy the slot")
		firstErr <- err
	}()
	<-b.entered

	// A second, distinct request cannot be admitted within the queue
	// timeout and must be shed as overloaded.
	if _, err := s.Answer(context.Background(), "shed me"); err != ErrOverloaded {
		t.Fatalf("second answer error = %v, want ErrOverloaded", err)
	}

	// Over HTTP the same condition is a 503 with Retry-After.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/answer",
		strings.NewReader(`{"text": "shed me too"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("HTTP status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// A queued flight *leader* is shed with ErrOverloaded even when its
	// own context is short: its admission wait is detached from the
	// client so a disconnecting leader cannot poison joiners.
	shortCtx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := s.Answer(shortCtx, "impatient"); err != ErrOverloaded {
		t.Errorf("ctx-expired leader error = %v, want ErrOverloaded", err)
	}

	// A *joiner* whose context expires while waiting on the flight is
	// released with its own ctx error; the flight keeps running.
	joinCtx, cancelJoin := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancelJoin()
	if _, err := s.Answer(joinCtx, "occupy the slot"); err != context.DeadlineExceeded {
		t.Errorf("ctx-expired joiner error = %v, want deadline exceeded", err)
	}

	close(b.release)
	if err := <-firstErr; err != nil {
		t.Fatalf("first answer error = %v", err)
	}
	if got := s.Stats().Admission.Rejected; got < 2 {
		t.Errorf("rejected = %d, want >= 2", got)
	}
}

func TestSwapInvalidatesCache(t *testing.T) {
	rel := flightsRel()
	gen1 := buildFlightsStore(t, rel, 1, "cancellation probability")
	gen2 := buildFlightsStore(t, rel, 1, "chance of cancellation")
	a := serve.New(rel, gen1, flightsExtractor(rel), serve.Options{})
	s := New(a, Options{})
	ctx := context.Background()
	const q = "cancellations in Winter"

	before, err := s.Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hit, err := s.Answer(ctx, q); err != nil || !hit.Cached {
		t.Fatalf("warm answer not cached (err %v)", err)
	}
	if !strings.Contains(before.Text, "cancellation probability") {
		t.Fatalf("gen1 answer %q misses gen1 phrase", before.Text)
	}

	// Swap through the server: the cache is purged eagerly.
	s.SwapStore(gen2)
	after, err := s.Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Error("post-swap answer served from cache")
	}
	if !strings.Contains(after.Text, "chance of cancellation") {
		t.Errorf("post-swap answer %q misses gen2 phrase", after.Text)
	}
	if got := s.Stats().Store.Swaps; got != 1 {
		t.Errorf("swaps = %d, want 1", got)
	}

	// Swap behind the server's back, directly on the Answerer: entries
	// self-invalidate by store identity, no purge needed.
	if hit, err := s.Answer(ctx, q); err != nil || !hit.Cached {
		t.Fatalf("warm gen2 answer not cached (err %v)", err)
	}
	a.SwapStore(gen1)
	sneaky, err := s.Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if sneaky.Cached {
		t.Error("answer after behind-the-back swap served from stale cache")
	}
	if !strings.Contains(sneaky.Text, "cancellation probability") {
		t.Errorf("behind-the-back swap answer %q misses gen1 phrase", sneaky.Text)
	}
}

func TestServerRebuild(t *testing.T) {
	rel := flightsRel()
	gen2 := buildFlightsStore(t, rel, 1, "chance of cancellation")
	s, _, _ := newTestServer(t, Options{})
	ctx := context.Background()

	if _, err := s.Answer(ctx, "cancellations in Winter"); err != nil {
		t.Fatal(err)
	}
	old, err := s.Rebuild(ctx, func(context.Context) (engine.StoreView, error) {
		return gen2, nil
	})
	if err != nil || old == nil {
		t.Fatalf("rebuild: old=%v err=%v", old, err)
	}
	res, err := s.Answer(ctx, "cancellations in Winter")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || !strings.Contains(res.Text, "chance of cancellation") {
		t.Errorf("post-rebuild answer = %+v, want fresh gen2 answer", res)
	}

	// A failing rebuild leaves the live store untouched.
	if _, err := s.Rebuild(ctx, func(context.Context) (engine.StoreView, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("failing rebuild reported success")
	}
	if res, err := s.Answer(ctx, "cancellations in Winter"); err != nil ||
		!strings.Contains(res.Text, "chance of cancellation") {
		t.Errorf("store changed after failed rebuild: %+v err=%v", res, err)
	}
}

// TestUncachedServerServes exercises the cache-disabled configuration.
func TestUncachedServerServes(t *testing.T) {
	s, _, _ := newTestServer(t, Options{CacheEntries: -1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := s.Answer(ctx, "cancellations in Winter")
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("cache-disabled server served from cache")
		}
		if res.Kind != serve.Summary {
			t.Fatalf("kind = %v, want summary", res.Kind)
		}
	}
	if c := s.Stats().Cache; c.Hits != 0 || c.Misses != 0 {
		t.Errorf("cache counters moved while disabled: %+v", c)
	}
}
