// Package relalg is a miniature relational-algebra executor. The paper
// implements its algorithms "by issuing a series of SQL queries (thereby
// removing the need for transferring data out of the database system)",
// expressing them with grouping/aggregation (Γ), selection (σ),
// projection (Π), joins (⋊⋉) and Cartesian products (×).
//
// This package provides those operators over in-memory tables and
// expresses Algorithms 1 and 2 as operator plans (see plans.go),
// cross-validated against the direct implementations in
// internal/summarize. It is the faithful-to-the-paper execution path
// for the evaluate and solve stages of the generate → evaluate →
// solve → serve flow; the summarize package is the optimized kernel
// production pre-processing actually runs.
package relalg

import (
	"fmt"
	"math"
	"sort"
)

// ColType is a column's value type.
type ColType int

const (
	// Int columns hold int64 values (dimension codes, identifiers).
	Int ColType = iota
	// Float columns hold float64 values (targets, utilities).
	Float
)

// Column is a named, typed, nullable column.
type Column struct {
	Name   string
	Type   ColType
	Ints   []int64
	Floats []float64
	Nulls  []bool
}

// Table is a bag of rows over named columns.
type Table struct {
	cols   []*Column
	byName map[string]int
	rows   int
}

// NewTable creates an empty table with the given column declarations.
func NewTable(cols ...*Column) *Table {
	t := &Table{byName: map[string]int{}}
	for _, c := range cols {
		t.addColumn(c)
	}
	return t
}

func (t *Table) addColumn(c *Column) {
	if _, dup := t.byName[c.Name]; dup {
		panic(fmt.Sprintf("relalg: duplicate column %q", c.Name))
	}
	t.byName[c.Name] = len(t.cols)
	t.cols = append(t.cols, c)
}

// IntCol declares an int column.
func IntCol(name string) *Column { return &Column{Name: name, Type: Int} }

// FloatCol declares a float column.
func FloatCol(name string) *Column { return &Column{Name: name, Type: Float} }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

// col returns the named column or panics — plans reference columns
// statically, so a miss is a programming error.
func (t *Table) col(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("relalg: no column %q", name))
	}
	return t.cols[i]
}

// AppendRow appends one row given per-column values. Use NullInt64 for
// NULL in int columns.
func (t *Table) AppendRow(values ...any) {
	if len(values) != len(t.cols) {
		panic(fmt.Sprintf("relalg: row has %d values, table has %d columns", len(values), len(t.cols)))
	}
	for i, v := range values {
		c := t.cols[i]
		switch c.Type {
		case Int:
			switch x := v.(type) {
			case int64:
				c.Ints = append(c.Ints, x)
				c.Nulls = append(c.Nulls, false)
			case int:
				c.Ints = append(c.Ints, int64(x))
				c.Nulls = append(c.Nulls, false)
			case int32:
				c.Ints = append(c.Ints, int64(x))
				c.Nulls = append(c.Nulls, false)
			case nil:
				c.Ints = append(c.Ints, 0)
				c.Nulls = append(c.Nulls, true)
			default:
				panic(fmt.Sprintf("relalg: column %q: bad int value %T", c.Name, v))
			}
		case Float:
			switch x := v.(type) {
			case float64:
				c.Floats = append(c.Floats, x)
				c.Nulls = append(c.Nulls, false)
			case nil:
				c.Floats = append(c.Floats, 0)
				c.Nulls = append(c.Nulls, true)
			default:
				panic(fmt.Sprintf("relalg: column %q: bad float value %T", c.Name, v))
			}
		}
	}
	t.rows++
}

// Row is a cursor over one table row.
type Row struct {
	t *Table
	i int
}

// Int returns the named int column value; ok is false for NULL.
func (r Row) Int(name string) (int64, bool) {
	c := r.t.col(name)
	if c.Nulls[r.i] {
		return 0, false
	}
	return c.Ints[r.i], true
}

// Float returns the named float column value (NULL reads as 0, false).
func (r Row) Float(name string) (float64, bool) {
	c := r.t.col(name)
	if c.Nulls[r.i] {
		return 0, false
	}
	return c.Floats[r.i], true
}

// MustFloat returns a non-null float value or panics.
func (r Row) MustFloat(name string) float64 {
	v, ok := r.Float(name)
	if !ok {
		panic(fmt.Sprintf("relalg: NULL in %q", name))
	}
	return v
}

// MustInt returns a non-null int value or panics.
func (r Row) MustInt(name string) int64 {
	v, ok := r.Int(name)
	if !ok {
		panic(fmt.Sprintf("relalg: NULL in %q", name))
	}
	return v
}

// cloneSchema builds an empty table with the same columns.
func (t *Table) cloneSchema() *Table {
	out := &Table{byName: map[string]int{}}
	for _, c := range t.cols {
		out.addColumn(&Column{Name: c.Name, Type: c.Type})
	}
	return out
}

// copyRow appends row i of src to dst (same schema).
func copyRow(dst, src *Table, i int) {
	for ci, c := range src.cols {
		d := dst.cols[ci]
		switch c.Type {
		case Int:
			d.Ints = append(d.Ints, c.Ints[i])
		case Float:
			d.Floats = append(d.Floats, c.Floats[i])
		}
		d.Nulls = append(d.Nulls, c.Nulls[i])
	}
	dst.rows++
}

// Select is the σ operator: rows satisfying pred.
func (t *Table) Select(pred func(Row) bool) *Table {
	out := t.cloneSchema()
	for i := 0; i < t.rows; i++ {
		if pred(Row{t, i}) {
			copyRow(out, t, i)
		}
	}
	return out
}

// Project is the Π operator restricted to column selection.
func (t *Table) Project(names ...string) *Table {
	out := &Table{byName: map[string]int{}}
	for _, n := range names {
		src := t.col(n)
		c := &Column{Name: n, Type: src.Type}
		c.Ints = append(c.Ints, src.Ints...)
		c.Floats = append(c.Floats, src.Floats...)
		c.Nulls = append(c.Nulls, src.Nulls...)
		out.addColumn(c)
	}
	out.rows = t.rows
	return out
}

// Extend is the generalized projection: adds a computed float column.
func (t *Table) Extend(name string, f func(Row) float64) *Table {
	out := t.Project(t.Columns()...)
	c := &Column{Name: name, Type: Float}
	for i := 0; i < t.rows; i++ {
		c.Floats = append(c.Floats, f(Row{t, i}))
		c.Nulls = append(c.Nulls, false)
	}
	out.addColumn(c)
	return out
}

// Join is the ⋊⋉ operator with an arbitrary condition (nested loops, as
// the paper's complexity analysis assumes). The condition sees rows of
// the original input tables (right columns under their original names);
// in the output, columns of other are renamed with the given prefix to
// avoid collisions.
func (t *Table) Join(other *Table, prefix string, on func(left, right Row) bool) *Table {
	out := &Table{byName: map[string]int{}}
	for _, c := range t.cols {
		out.addColumn(&Column{Name: c.Name, Type: c.Type})
	}
	for _, c := range other.cols {
		out.addColumn(&Column{Name: prefix + c.Name, Type: c.Type})
	}
	for i := 0; i < t.rows; i++ {
		for j := 0; j < other.rows; j++ {
			if !on(Row{t, i}, Row{other, j}) {
				continue
			}
			appendJoined(out, t, i, other, j)
			out.rows++
		}
	}
	return out
}

// appendJoined appends the concatenation of t[i] and other[j] to out.
func appendJoined(out, t *Table, i int, other *Table, j int) {
	for ci, c := range t.cols {
		d := out.cols[ci]
		switch c.Type {
		case Int:
			d.Ints = append(d.Ints, c.Ints[i])
		case Float:
			d.Floats = append(d.Floats, c.Floats[i])
		}
		d.Nulls = append(d.Nulls, c.Nulls[i])
	}
	off := len(t.cols)
	for ci, c := range other.cols {
		d := out.cols[off+ci]
		switch c.Type {
		case Int:
			d.Ints = append(d.Ints, c.Ints[j])
		case Float:
			d.Floats = append(d.Floats, c.Floats[j])
		}
		d.Nulls = append(d.Nulls, c.Nulls[j])
	}
}

// AggFn is an aggregation function.
type AggFn int

const (
	// Sum aggregates float sums.
	Sum AggFn = iota
	// MinAgg aggregates float minima.
	MinAgg
	// CountAgg counts rows.
	CountAgg
)

// Agg declares one aggregation of a group-by.
type Agg struct {
	Fn  AggFn
	Col string // input column (ignored for CountAgg)
	As  string // output column name
}

// GroupBy is the Γ operator: grouping on the given int key columns
// (NULLs group together) with float aggregations. Output has the key
// columns plus one float column per aggregate, in deterministic order.
func (t *Table) GroupBy(keys []string, aggs []Agg) *Table {
	type groupState struct {
		keyVals  []int64
		keyNulls []bool
		sums     []float64
		inited   []bool
	}
	m := map[string]*groupState{}
	var order []string
	for i := 0; i < t.rows; i++ {
		key := ""
		kv := make([]int64, len(keys))
		kn := make([]bool, len(keys))
		for ki, k := range keys {
			v, ok := Row{t, i}.Int(k)
			kv[ki] = v
			kn[ki] = !ok
			if ok {
				key += fmt.Sprintf("%d|", v)
			} else {
				key += "N|"
			}
		}
		g := m[key]
		if g == nil {
			g = &groupState{
				keyVals: kv, keyNulls: kn,
				sums:   make([]float64, len(aggs)),
				inited: make([]bool, len(aggs)),
			}
			m[key] = g
			order = append(order, key)
		}
		for ai, a := range aggs {
			switch a.Fn {
			case Sum:
				if v, ok := (Row{t, i}).Float(a.Col); ok {
					g.sums[ai] += v
				}
			case MinAgg:
				if v, ok := (Row{t, i}).Float(a.Col); ok {
					if !g.inited[ai] || v < g.sums[ai] {
						g.sums[ai] = v
						g.inited[ai] = true
					}
				}
			case CountAgg:
				g.sums[ai]++
			}
		}
	}
	sort.Strings(order)
	var cols []*Column
	for _, k := range keys {
		cols = append(cols, IntCol(k))
	}
	for _, a := range aggs {
		cols = append(cols, FloatCol(a.As))
	}
	out := NewTable(cols...)
	for _, key := range order {
		g := m[key]
		vals := make([]any, 0, len(keys)+len(aggs))
		for ki := range keys {
			if g.keyNulls[ki] {
				vals = append(vals, nil)
			} else {
				vals = append(vals, g.keyVals[ki])
			}
		}
		for ai := range aggs {
			vals = append(vals, g.sums[ai])
		}
		out.AppendRow(vals...)
	}
	return out
}

// ArgMaxFloat returns the row index with the maximal value in the named
// float column (-1 for an empty table). Ties resolve to the first row.
func (t *Table) ArgMaxFloat(name string) int {
	best, bestV := -1, math.Inf(-1)
	c := t.col(name)
	for i := 0; i < t.rows; i++ {
		if !c.Nulls[i] && c.Floats[i] > bestV {
			best, bestV = i, c.Floats[i]
		}
	}
	return best
}
