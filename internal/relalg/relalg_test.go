package relalg

import (
	"math"
	"math/rand"
	"testing"

	"cicero/internal/fact"
	"cicero/internal/relation"
	"cicero/internal/summarize"
)

func TestTableBasics(t *testing.T) {
	tbl := NewTable(IntCol("a"), FloatCol("b"))
	tbl.AppendRow(int64(1), 2.5)
	tbl.AppendRow(nil, 3.5)
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	r := Row{tbl, 0}
	if v, ok := r.Int("a"); !ok || v != 1 {
		t.Errorf("Int = %v %v", v, ok)
	}
	if v := r.MustFloat("b"); v != 2.5 {
		t.Errorf("Float = %v", v)
	}
	if _, ok := (Row{tbl, 1}).Int("a"); ok {
		t.Error("NULL should read as not-ok")
	}
	cols := tbl.Columns()
	if len(cols) != 2 || cols[0] != "a" {
		t.Errorf("columns = %v", cols)
	}
}

func TestTablePanics(t *testing.T) {
	tbl := NewTable(IntCol("a"))
	for _, f := range []func(){
		func() { tbl.AppendRow(int64(1), 2.0) },       // arity
		func() { tbl.AppendRow("str") },               // type
		func() { tbl.col("missing") },                 // unknown column
		func() { NewTable(IntCol("x"), IntCol("x")) }, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSelectProjectExtend(t *testing.T) {
	tbl := NewTable(IntCol("k"), FloatCol("v"))
	for i := 0; i < 10; i++ {
		tbl.AppendRow(int64(i%2), float64(i))
	}
	even := tbl.Select(func(r Row) bool { v, _ := r.Int("k"); return v == 0 })
	if even.NumRows() != 5 {
		t.Fatalf("selected = %d", even.NumRows())
	}
	proj := even.Project("v")
	if len(proj.Columns()) != 1 || proj.NumRows() != 5 {
		t.Errorf("projection wrong: %v rows=%d", proj.Columns(), proj.NumRows())
	}
	ext := even.Extend("double", func(r Row) float64 { return 2 * r.MustFloat("v") })
	if got := (Row{ext, 1}).MustFloat("double"); got != 4 {
		t.Errorf("extend = %v, want 4", got)
	}
}

func TestJoinAndGroupBy(t *testing.T) {
	left := NewTable(IntCol("k"), FloatCol("x"))
	left.AppendRow(int64(1), 10.0)
	left.AppendRow(int64(2), 20.0)
	right := NewTable(IntCol("k"), FloatCol("y"))
	right.AppendRow(int64(1), 1.0)
	right.AppendRow(int64(1), 2.0)
	right.AppendRow(int64(3), 3.0)

	joined := left.Join(right, "r.", func(l, r Row) bool {
		lk, _ := l.Int("k")
		rk, _ := r.Int("k") // condition sees original right-table names
		return lk == rk
	})
	if joined.NumRows() != 2 {
		t.Fatalf("join rows = %d, want 2", joined.NumRows())
	}

	sum := joined.GroupBy([]string{"k"}, []Agg{
		{Fn: Sum, Col: "r.y", As: "sy"},
		{Fn: CountAgg, As: "n"},
		{Fn: MinAgg, Col: "r.y", As: "my"},
	})
	if sum.NumRows() != 1 {
		t.Fatalf("groups = %d", sum.NumRows())
	}
	r := Row{sum, 0}
	if r.MustFloat("sy") != 3 || r.MustFloat("n") != 2 || r.MustFloat("my") != 1 {
		t.Errorf("aggregates wrong: sy=%v n=%v my=%v",
			r.MustFloat("sy"), r.MustFloat("n"), r.MustFloat("my"))
	}
}

func TestGroupByNullKeys(t *testing.T) {
	tbl := NewTable(IntCol("k"), FloatCol("v"))
	tbl.AppendRow(nil, 1.0)
	tbl.AppendRow(nil, 2.0)
	tbl.AppendRow(int64(5), 4.0)
	groups := tbl.GroupBy([]string{"k"}, []Agg{{Fn: Sum, Col: "v", As: "s"}})
	if groups.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2 (NULLs group together)", groups.NumRows())
	}
}

func TestArgMaxFloat(t *testing.T) {
	tbl := NewTable(FloatCol("v"))
	if tbl.ArgMaxFloat("v") != -1 {
		t.Error("empty table should return -1")
	}
	tbl.AppendRow(1.0)
	tbl.AppendRow(5.0)
	tbl.AppendRow(3.0)
	if got := tbl.ArgMaxFloat("v"); got != 1 {
		t.Errorf("argmax = %d", got)
	}
}

// buildFlights reproduces the paper's running example.
func buildFlights(t testing.TB) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("flights", relation.Schema{
		Dimensions: []string{"region", "season"},
		Targets:    []string{"delay"},
	})
	delay := map[[2]string]float64{
		{"South", "Spring"}: 20, {"South", "Summer"}: 20,
		{"West", "Spring"}: 20, {"West", "Summer"}: 20,
		{"East", "Winter"}: 10, {"South", "Winter"}: 10,
		{"West", "Winter"}: 10, {"North", "Winter"}: 10,
	}
	for _, r := range []string{"East", "South", "West", "North"} {
		for _, s := range []string{"Spring", "Summer", "Fall", "Winter"} {
			b.MustAddRow([]string{r, s}, []float64{delay[[2]string{r, s}]})
		}
	}
	return b.Freeze()
}

func randomRelation(rng *rand.Rand, rows int) *relation.Relation {
	b := relation.NewBuilder("rand", relation.Schema{
		Dimensions: []string{"a", "b"},
		Targets:    []string{"v"},
	})
	av := []string{"a0", "a1", "a2"}
	bv := []string{"b0", "b1"}
	for i := 0; i < rows; i++ {
		b.MustAddRow(
			[]string{av[rng.Intn(len(av))], bv[rng.Intn(len(bv))]},
			[]float64{rng.NormFloat64()*10 + float64(rng.Intn(3))*15},
		)
	}
	return b.Freeze()
}

// TestGreedyPlanMatchesDirect cross-validates the relational-plan
// execution of Algorithm 2 against the direct implementation.
func TestGreedyPlanMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		rel := randomRelation(rng, 20+rng.Intn(40))
		view := rel.FullView()
		facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
		prior := fact.MeanPrior(view, 0)
		m := 1 + rng.Intn(3)

		planFacts, planU := GreedyPlan(view, 0, facts, prior, m)
		e := summarize.NewEvaluator(view, 0, facts, prior)
		direct := summarize.Greedy(e, summarize.Options{MaxFacts: m})

		if math.Abs(planU-direct.Utility) > 1e-9 {
			t.Fatalf("trial %d: plan utility %v != direct %v", trial, planU, direct.Utility)
		}
		if len(planFacts) != len(direct.FactIdx) {
			t.Fatalf("trial %d: plan selected %d facts, direct %d", trial, len(planFacts), len(direct.FactIdx))
		}
		for i := range planFacts {
			if int32(planFacts[i]) != direct.FactIdx[i] {
				t.Fatalf("trial %d: fact %d differs: %d vs %d",
					trial, i, planFacts[i], direct.FactIdx[i])
			}
		}
	}
}

// TestExactPlanMatchesDirect cross-validates the relational-plan
// execution of Algorithm 1 against the direct implementation.
func TestExactPlanMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		rel := randomRelation(rng, 15+rng.Intn(20))
		view := rel.FullView()
		facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 1})
		prior := fact.MeanPrior(view, 0)
		m := 1 + rng.Intn(2)

		e := summarize.NewEvaluator(view, 0, facts, prior)
		greedy := summarize.Greedy(e, summarize.Options{MaxFacts: m})
		direct := summarize.Exact(e, summarize.Options{MaxFacts: m, LowerBound: greedy.Utility})

		_, planU := ExactPlan(view, 0, facts, prior, m, greedy.Utility)
		if math.Abs(planU-direct.Utility) > 1e-9 {
			t.Fatalf("trial %d: plan optimum %v != direct %v (m=%d facts=%d)",
				trial, planU, direct.Utility, m, len(facts))
		}
	}
}

// TestExactPlanRunningExample reproduces the Figure 1 optimum through
// the relational plan path.
func TestExactPlanRunningExample(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	prior := fact.ConstantPrior(0)

	planFacts, planU := GreedyPlan(view, 0, facts, prior, 2)
	if len(planFacts) != 2 {
		t.Fatalf("greedy plan selected %d facts", len(planFacts))
	}
	_, exactU := ExactPlan(view, 0, facts, prior, 2, planU)
	if exactU < planU-1e-9 {
		t.Fatalf("exact plan %v below greedy plan %v", exactU, planU)
	}
	// The direct exact result agrees.
	e := summarize.NewEvaluator(view, 0, facts, prior)
	direct := summarize.Exact(e, summarize.Options{MaxFacts: 2, LowerBound: planU})
	if math.Abs(exactU-direct.Utility) > 1e-9 {
		t.Fatalf("plan %v != direct %v", exactU, direct.Utility)
	}
}

func TestFactsAndDataTables(t *testing.T) {
	rel := buildFlights(t)
	facts := fact.Generate(rel.FullView(), 0, fact.GenerateOptions{MaxDims: 2})
	ft := FactsTable(rel, facts)
	if ft.NumRows() != len(facts) {
		t.Fatalf("facts table rows = %d, want %d", ft.NumRows(), len(facts))
	}
	// The overall fact has NULLs in every dimension column.
	r := Row{ft, 0}
	if _, ok := r.Int("d0"); ok {
		t.Error("overall fact should have NULL d0")
	}
	dt := DataTable(rel.FullView(), 0, fact.ConstantPrior(0))
	if dt.NumRows() != rel.NumRows() {
		t.Fatalf("data table rows = %d", dt.NumRows())
	}
	if got := (Row{dt, 0}).MustFloat("E"); got != 0 {
		t.Errorf("prior column = %v", got)
	}
}
