package relalg

import (
	"fmt"
	"math"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// This file expresses the paper's algorithms as relational operator
// plans over Table, mirroring the pseudo-code line by line:
//
//	Algorithm 2 (greedy):  U ← Γ_{ΣU,F}(R ⋊⋉M F);  f* ← argmax;  R ← Π_{E,R}(R ⋊⋉M f*)
//	Algorithm 1 (exact):   S ← Γ_{ΣU,F}(R ⋊⋉M F);  S ← σ_P(Π(S × F)) …;  Γ_{ΣU,S}(R ⋊⋉M S)
//
// The direct implementations in internal/summarize compute the same
// results with specialized data structures; tests cross-validate both.

// dimCol names the fact-table column holding dimension d's code.
func dimCol(d int) string { return fmt.Sprintf("d%d", d) }

// FactsTable materializes candidate facts as a relation: one nullable
// int column per dimension (NULL = unrestricted), the typical value, and
// a fact identifier.
func FactsTable(rel *relation.Relation, facts []fact.Fact) *Table {
	cols := []*Column{IntCol("fid")}
	for d := 0; d < rel.NumDims(); d++ {
		cols = append(cols, IntCol(dimCol(d)))
	}
	cols = append(cols, FloatCol("value"))
	t := NewTable(cols...)
	for fi, f := range facts {
		vals := make([]any, 0, rel.NumDims()+2)
		vals = append(vals, int64(fi))
		restricted := map[int]int32{}
		for i, d := range f.Scope.Dims {
			restricted[d] = f.Scope.Codes[i]
		}
		for d := 0; d < rel.NumDims(); d++ {
			if code, ok := restricted[d]; ok {
				vals = append(vals, int64(code))
			} else {
				vals = append(vals, nil)
			}
		}
		vals = append(vals, f.Value)
		t.AppendRow(vals...)
	}
	return t
}

// DataTable materializes the data subset as a relation with the
// dimension codes, the true target value, and the expectation column E
// initialized with the prior (Algorithm 2 stores user expectations "as a
// column of the updated relation R").
func DataTable(view *relation.View, target int, prior fact.Prior) *Table {
	cols := []*Column{IntCol("rid")}
	for d := 0; d < view.Rel.NumDims(); d++ {
		cols = append(cols, IntCol(dimCol(d)))
	}
	cols = append(cols, FloatCol("truth"), FloatCol("E"))
	t := NewTable(cols...)
	n := view.NumRows()
	for i := 0; i < n; i++ {
		row := view.Row(i)
		vals := make([]any, 0, view.Rel.NumDims()+3)
		vals = append(vals, int64(i))
		for d := 0; d < view.Rel.NumDims(); d++ {
			vals = append(vals, int64(view.Rel.Dim(d).CodeAt(int(row))))
		}
		vals = append(vals,
			view.Rel.Target(target).At(int(row)),
			prior.At(row))
		t.AppendRow(vals...)
	}
	return t
}

// scopeMatch is the join condition M: for every dimension, the fact
// value is NULL or equals the row value.
func scopeMatch(numDims int) func(data, f Row) bool {
	return func(data, f Row) bool {
		for d := 0; d < numDims; d++ {
			fv, ok := f.Int("f." + dimCol(d))
			if !ok {
				continue
			}
			dv, _ := data.Int(dimCol(d))
			if dv != fv {
				return false
			}
		}
		return true
	}
}

// utilityGains computes Γ_{ΣU,F}(R ⋊⋉M F): per-fact summed utility gain
// against the current expectation column. This is Line 7 of Algorithm 2
// and (with E = prior) Line 6 of Algorithm 1.
func utilityGains(data, facts *Table, numDims int) *Table {
	joined := data.Join(prefixed(facts, "f."), "", scopeMatch(numDims))
	withGain := joined.Extend("U", func(r Row) float64 {
		truth := r.MustFloat("truth")
		e := r.MustFloat("E")
		v := r.MustFloat("f.value")
		gain := math.Abs(e-truth) - math.Abs(v-truth)
		if gain < 0 {
			return 0
		}
		return gain
	})
	return withGain.GroupBy([]string{"f.fid"}, []Agg{{Fn: Sum, Col: "U", As: "U"}})
}

// prefixed returns a view of t with all columns renamed with prefix.
// Join already prefixes its right input, but utilityGains joins data on
// the left; renaming the fact side keeps column names unambiguous.
func prefixed(t *Table, prefix string) *Table {
	out := &Table{byName: map[string]int{}}
	for _, c := range t.cols {
		out.addColumn(&Column{
			Name: prefix + c.Name, Type: c.Type,
			Ints: c.Ints, Floats: c.Floats, Nulls: c.Nulls,
		})
	}
	out.rows = t.rows
	return out
}

// GreedyPlan executes Algorithm 2 as a relational plan and returns the
// selected fact indices and the achieved utility.
func GreedyPlan(view *relation.View, target int, facts []fact.Fact, prior fact.Prior, maxFacts int) ([]int, float64) {
	numDims := view.Rel.NumDims()
	data := DataTable(view, target, prior)
	factsT := FactsTable(view.Rel, facts)

	priorError := 0.0
	for i := 0; i < data.NumRows(); i++ {
		r := Row{data, i}
		priorError += math.Abs(r.MustFloat("E") - r.MustFloat("truth"))
	}

	var chosen []int
	chosenSet := map[int]bool{}
	for iter := 0; iter < maxFacts; iter++ {
		gains := utilityGains(data, factsT, numDims)
		// argmax over facts not yet selected, smallest fid on ties (the
		// same tie-break as the direct implementation).
		best, bestGain := -1, 0.0
		for i := 0; i < gains.NumRows(); i++ {
			r := Row{gains, i}
			fid := int(r.MustInt("f.fid"))
			if chosenSet[fid] {
				continue
			}
			u := r.MustFloat("U")
			if u > bestGain || (u == bestGain && u > 0 && (best < 0 || fid < best)) {
				best, bestGain = fid, u
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		// R ← Π_{E,R}(R ⋊⋉M f*): recompute the expectation column under
		// the Closest model for rows within the new fact's scope.
		f := facts[best]
		data = data.Extend("E2", func(r Row) float64 {
			e := r.MustFloat("E")
			truth := r.MustFloat("truth")
			inScope := true
			for i, d := range f.Scope.Dims {
				dv, _ := r.Int(dimCol(d))
				if dv != int64(f.Scope.Codes[i]) {
					inScope = false
					break
				}
			}
			if inScope && math.Abs(f.Value-truth) < math.Abs(e-truth) {
				return f.Value
			}
			return e
		})
		cols := []string{"rid"}
		for d := 0; d < numDims; d++ {
			cols = append(cols, dimCol(d))
		}
		cols = append(cols, "truth", "E2")
		data = rename(data.Project(cols...), "E2", "E")
		chosen = append(chosen, best)
		chosenSet[best] = true
	}

	residual := 0.0
	for i := 0; i < data.NumRows(); i++ {
		r := Row{data, i}
		residual += math.Abs(r.MustFloat("E") - r.MustFloat("truth"))
	}
	return chosen, priorError - residual
}

// rename returns the table with one column renamed.
func rename(t *Table, from, to string) *Table {
	out := &Table{byName: map[string]int{}}
	for _, c := range t.cols {
		name := c.Name
		if name == from {
			name = to
		}
		out.addColumn(&Column{Name: name, Type: c.Type, Ints: c.Ints, Floats: c.Floats, Nulls: c.Nulls})
	}
	out.rows = t.rows
	return out
}

// ExactPlan executes Algorithm 1 as a relational plan: single-fact
// utilities, iterative speech expansion via Cartesian product with the
// two pruning conditions σ_P, and a final utility computation joining
// data with surviving speeches. Returns selected fact indices and the
// optimal utility. b is the lower utility bound (Algorithm 1's input).
func ExactPlan(view *relation.View, target int, facts []fact.Fact, prior fact.Prior, maxFacts int, b float64) ([]int, float64) {
	numDims := view.Rel.NumDims()
	data := DataTable(view, target, prior)
	factsT := FactsTable(view.Rel, facts)

	// Line 6: S ← Γ_{ΣU,F}(R ⋊⋉M F) — single-fact utilities.
	singles := utilityGains(data, factsT, numDims)
	utils := make([]float64, len(facts))
	for i := 0; i < singles.NumRows(); i++ {
		r := Row{singles, i}
		utils[int(r.MustInt("f.fid"))] = r.MustFloat("U")
	}

	// Speeches table: fact ids f1..fm (NULL beyond current length), the
	// upper utility bound S.U (sum of single-fact utilities, Lemma 2)
	// and the last-added fact's utility S.UP (permutation pruning).
	// Column structs hold data, so every table needs fresh ones.
	newSpeechTable := func() *Table {
		cols := []*Column{}
		for i := 0; i < maxFacts; i++ {
			cols = append(cols, IntCol(fmt.Sprintf("f%d", i+1)))
		}
		cols = append(cols, FloatCol("SU"), FloatCol("SUP"))
		return NewTable(cols...)
	}
	speeches := newSpeechTable()
	for fi := range facts {
		vals := make([]any, 0, maxFacts+2)
		vals = append(vals, int64(fi))
		for i := 1; i < maxFacts; i++ {
			vals = append(vals, nil)
		}
		vals = append(vals, utils[fi], utils[fi])
		speeches.AppendRow(vals...)
	}

	// Lines 8-11: expand speeches, pruning with σ_P. The cross product
	// S × F pairs every partial speech with every candidate fact.
	for i := 2; i <= maxFacts; i++ {
		remaining := float64(maxFacts - i + 1)
		crossed := speeches.Join(factsT, "f.", func(Row, Row) bool { return true })
		expanded := newSpeechTable()
		for ri := 0; ri < crossed.NumRows(); ri++ {
			r := Row{crossed, ri}
			fu := utils[int(r.MustInt("f.fid"))]
			// Pruning condition 1: facts in decreasing single-fact
			// utility order (ties broken by id to avoid duplicates).
			sup := r.MustFloat("SUP")
			lastID := r.MustInt(fmt.Sprintf("f%d", i-1))
			newID := r.MustInt("f.fid")
			if fu > sup || (fu == sup && newID <= lastID) {
				continue
			}
			// Pruning condition 2: (b − S.U)/r ≤ F.U must hold.
			su := r.MustFloat("SU")
			if su+remaining*fu < b-1e-9 {
				continue
			}
			vals := make([]any, 0, maxFacts+2)
			for j := 1; j <= maxFacts; j++ {
				if j == i {
					vals = append(vals, newID)
					continue
				}
				if v, ok := r.Int(fmt.Sprintf("f%d", j)); ok {
					vals = append(vals, v)
				} else {
					vals = append(vals, nil)
				}
			}
			vals = append(vals, su+fu, fu)
			expanded.AppendRow(vals...)
		}
		// "Up to m facts": shorter speeches stay candidates alongside
		// their expansions.
		for ri := 0; ri < speeches.NumRows(); ri++ {
			copyRow(expanded, speeches, ri)
		}
		speeches = expanded
	}

	// Lines 13-15: exact utility of surviving speeches via the final
	// join (M: row within scope of at least one speech fact), then
	// argmax. Computed speech-by-speech over the data table.
	bestIdx, bestU := -1, -1.0
	for si := 0; si < speeches.NumRows(); si++ {
		r := Row{speeches, si}
		var members []int
		for j := 1; j <= maxFacts; j++ {
			if v, ok := r.Int(fmt.Sprintf("f%d", j)); ok {
				members = append(members, int(v))
			}
		}
		u := 0.0
		for di := 0; di < data.NumRows(); di++ {
			dr := Row{data, di}
			truth := dr.MustFloat("truth")
			dev := math.Abs(dr.MustFloat("E") - truth)
			best := dev
			for _, fi := range members {
				f := facts[fi]
				match := true
				for k, d := range f.Scope.Dims {
					dv, _ := dr.Int(dimCol(d))
					if dv != int64(f.Scope.Codes[k]) {
						match = false
						break
					}
				}
				if match {
					if d := math.Abs(f.Value - truth); d < best {
						best = d
					}
				}
			}
			u += dev - best
		}
		if u > bestU {
			bestU = u
			bestIdx = si
		}
	}
	if bestIdx < 0 {
		return nil, 0
	}
	r := Row{speeches, bestIdx}
	var chosen []int
	for j := 1; j <= maxFacts; j++ {
		if v, ok := r.Int(fmt.Sprintf("f%d", j)); ok {
			chosen = append(chosen, int(v))
		}
	}
	return chosen, bestU
}
