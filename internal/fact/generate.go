package fact

import (
	"cicero/internal/relation"
)

// GenerateOptions controls candidate-fact enumeration for a data subset.
type GenerateOptions struct {
	// MaxDims bounds the number of dimension columns a fact may restrict
	// beyond the query predicates (the paper's default is two).
	MaxDims int
	// FreeDims lists the dimension column indices facts may restrict. If
	// nil, all dimensions of the relation are free. Query predicates fix
	// some dimensions; those are excluded by the problem generator.
	FreeDims []int
	// MinRows drops facts whose scope matches fewer rows of the view,
	// avoiding facts about near-empty subsets. Zero keeps every fact with
	// at least one row (a typical value is undefined on zero rows).
	MinRows int
}

// DimSubsets enumerates all subsets of dims with size in [0, maxSize], in
// deterministic order (by size, then lexicographic). This is the fact
// group lattice of Section VI-B: each subset identifies one fact group.
func DimSubsets(dims []int, maxSize int) [][]int {
	if maxSize > len(dims) {
		maxSize = len(dims)
	}
	var out [][]int
	for size := 0; size <= maxSize; size++ {
		out = append(out, combinations(dims, size)...)
	}
	return out
}

// combinations returns all size-k subsets of dims in lexicographic order.
func combinations(dims []int, k int) [][]int {
	if k == 0 {
		return [][]int{{}}
	}
	if k > len(dims) {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		combo := make([]int, k)
		for i, j := range idx {
			combo[i] = dims[j]
		}
		out = append(out, combo)
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == len(dims)-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Generate enumerates the candidate facts for summarizing the view: one
// fact per fact group (subset of free dimensions, up to MaxDims) and per
// value combination appearing in the view, with the typical value set to
// the average target value within scope (Section III). The empty scope
// yields the single "overall" fact. Facts are returned grouped in
// deterministic order.
func Generate(v *relation.View, target int, opts GenerateOptions) []Fact {
	free := opts.FreeDims
	if free == nil {
		free = make([]int, v.Rel.NumDims())
		for i := range free {
			free[i] = i
		}
	}
	var out []Fact
	for _, dims := range DimSubsets(free, opts.MaxDims) {
		for _, g := range v.GroupBy(dims, target) {
			if g.Count < opts.MinRows || g.Count == 0 {
				continue
			}
			out = append(out, Fact{
				Scope: NewScope(dims, g.Key.Codes),
				Value: g.Mean(),
			})
		}
	}
	return out
}

// CountFacts returns the number of facts Generate would produce without
// materializing them, used by the planner's statistics.
func CountFacts(v *relation.View, opts GenerateOptions) int {
	free := opts.FreeDims
	if free == nil {
		free = make([]int, v.Rel.NumDims())
		for i := range free {
			free[i] = i
		}
	}
	total := 0
	for _, dims := range DimSubsets(free, opts.MaxDims) {
		total += len(v.DistinctCombinations(dims))
	}
	return total
}
