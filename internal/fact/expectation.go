package fact

import (
	"math"

	"cicero/internal/relation"
)

// ExpectationModel selects how a listener combines (possibly conflicting)
// facts into an expected value for a row. The paper's optimization model
// uses Closest (Definition 4); the remaining models are the alternatives
// compared in the Figure 7 user study.
type ExpectationModel int

const (
	// Closest assumes users have prior knowledge that lets them pick the
	// most relevant fact: expectation is the in-scope value (or prior)
	// closest to the true target value. This is the paper's model and the
	// empirical winner of the Figure 7 study.
	Closest ExpectationModel = iota
	// Farthest is the adversarial variant: users latch onto the in-scope
	// value farthest from the truth.
	Farthest
	// AvgScope averages the values of all in-scope facts.
	AvgScope
	// AvgAll averages the values of every fact in the speech, relevant or
	// not.
	AvgAll
)

// String returns the model name as used in the paper's Figure 7 legend.
func (m ExpectationModel) String() string {
	switch m {
	case Closest:
		return "Closest"
	case Farthest:
		return "Farthest"
	case AvgScope:
		return "Avg. Scope"
	case AvgAll:
		return "Avg. All"
	default:
		return "Unknown"
	}
}

// Models lists all expectation models in Figure 7 order.
func Models() []ExpectationModel {
	return []ExpectationModel{Farthest, AvgScope, Closest, AvgAll}
}

// Prior supplies the user's default expectation for a row before
// listening to any facts (the P(r) function of Definition 4).
type Prior interface {
	// At returns the prior expected target value for the relation row.
	At(row int32) float64
}

// ConstantPrior is a row-independent prior. The paper's experiments use
// the average of the target column as a constant prior.
type ConstantPrior float64

// At implements Prior.
func (p ConstantPrior) At(int32) float64 { return float64(p) }

// MeanPrior returns the constant prior set to the mean of the target
// column over the given view, matching the experimental setup of the
// paper ("we use the average value in the target column as a prior").
func MeanPrior(v *relation.View, target int) ConstantPrior {
	return ConstantPrior(v.Stats(target).Mean())
}

// PerRowPrior stores an explicit prior per relation row, used when the
// greedy algorithm folds already-selected facts into the expectation
// column, and in user-study simulations with heterogeneous subjects.
type PerRowPrior []float64

// At implements Prior.
func (p PerRowPrior) At(row int32) float64 { return p[row] }

// Expectation computes E(F, r): the value the user expects in the target
// column of row r after hearing speech facts, under the given model. The
// prior value is part of the candidate set for Closest and Farthest, per
// Definition 4; the averaging models fall back to the prior when no fact
// applies.
func Expectation(rel *relation.Relation, facts []Fact, row int32, prior float64, truth float64, model ExpectationModel) float64 {
	switch model {
	case Closest:
		// Definition 4: the prior value is part of the candidate set.
		best := prior
		bestDist := math.Abs(prior - truth)
		for _, f := range facts {
			if !f.Scope.Matches(rel, row) {
				continue
			}
			if d := math.Abs(f.Value - truth); d < bestDist {
				best, bestDist = f.Value, d
			}
		}
		return best
	case Farthest:
		// Figure 7 model: the value *proposed by a relevant fact* that is
		// farthest from the truth; the prior applies only when no fact is
		// in scope.
		best, bestDist := prior, -1.0
		for _, f := range facts {
			if !f.Scope.Matches(rel, row) {
				continue
			}
			if d := math.Abs(f.Value - truth); d > bestDist {
				best, bestDist = f.Value, d
			}
		}
		return best
	case AvgScope:
		sum, n := 0.0, 0
		for _, f := range facts {
			if f.Scope.Matches(rel, row) {
				sum += f.Value
				n++
			}
		}
		if n == 0 {
			return prior
		}
		return sum / float64(n)
	case AvgAll:
		if len(facts) == 0 {
			return prior
		}
		sum := 0.0
		for _, f := range facts {
			sum += f.Value
		}
		return sum / float64(len(facts))
	default:
		return prior
	}
}

// RowDeviation computes D(F, r) = |E(F, r) − vr| for a single row
// (Definition 5) under the Closest model.
func RowDeviation(rel *relation.Relation, facts []Fact, row int32, prior Prior, target int) float64 {
	truth := rel.Target(target).At(int(row))
	e := Expectation(rel, facts, row, prior.At(row), truth, Closest)
	return math.Abs(e - truth)
}

// Deviation computes the accumulated deviation ("error") D(F) over all
// rows of the view (Definition 5).
func Deviation(v *relation.View, facts []Fact, prior Prior, target int) float64 {
	total := 0.0
	n := v.NumRows()
	for i := 0; i < n; i++ {
		total += RowDeviation(v.Rel, facts, v.Row(i), prior, target)
	}
	return total
}

// Utility computes U(F) = D(∅) − D(F), the reduction in accumulated
// deviation achieved by the speech (Definition 6).
func Utility(v *relation.View, facts []Fact, prior Prior, target int) float64 {
	return Deviation(v, nil, prior, target) - Deviation(v, facts, prior, target)
}
