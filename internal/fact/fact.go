package fact

import (
	"fmt"
	"sort"

	"cicero/internal/relation"
)

// Fact pairs a scope with a typical value: the average of the target
// column over all rows within scope (Definition 2).
type Fact struct {
	Scope Scope
	Value float64
}

// String renders the fact for debugging; speech templates in the engine
// package produce the user-facing text.
func (f Fact) String() string {
	return fmt.Sprintf("Fact{%s: %.4g}", f.Scope.Key(), f.Value)
}

// Describe renders the fact with resolved column and value names.
func (f Fact) Describe(rel *relation.Relation, target string) string {
	return fmt.Sprintf("avg %s for %s is %.4g", target, f.Scope.Describe(rel), f.Value)
}

// Speech is a set of facts (Definition 3). Its cardinality is the speech
// length. Order carries no semantics for utility; it is kept for
// deterministic rendering.
type Speech struct {
	Facts []Fact
}

// Len returns the speech length (number of facts).
func (s Speech) Len() int { return len(s.Facts) }

// Canonical returns a copy with facts sorted by scope key then value, so
// speeches that contain the same fact set compare equal.
func (s Speech) Canonical() Speech {
	out := Speech{Facts: append([]Fact(nil), s.Facts...)}
	sort.Slice(out.Facts, func(i, j int) bool {
		ki, kj := out.Facts[i].Scope.Key(), out.Facts[j].Scope.Key()
		if ki != kj {
			return ki < kj
		}
		return out.Facts[i].Value < out.Facts[j].Value
	})
	return out
}

// Equal reports whether two speeches contain the same fact multiset.
func (s Speech) Equal(other Speech) bool {
	if len(s.Facts) != len(other.Facts) {
		return false
	}
	a, b := s.Canonical(), other.Canonical()
	for i := range a.Facts {
		if !a.Facts[i].Scope.Equal(b.Facts[i].Scope) || a.Facts[i].Value != b.Facts[i].Value {
			return false
		}
	}
	return true
}
