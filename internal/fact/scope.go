// Package fact implements the problem model of Section II of the paper:
// facts with scopes and typical values, speeches (fact sets), user
// expectation models, priors, and the deviation/utility criterion that
// speech summarization optimizes.
//
// In the system's generate → evaluate → solve → serve flow this package
// is the shared vocabulary: the generate stage enumerates candidate
// Facts (Generate), the evaluate and solve stages score Speeches by the
// utility criterion defined here, and the stored speeches the serve
// stage answers from carry these Facts as their provenance.
package fact

import (
	"fmt"
	"sort"
	"strings"

	"cicero/internal/relation"
)

// Scope assigns values to a subset of dimension columns (Definition 2).
// Dims holds dimension column indices in strictly ascending order and
// Codes the corresponding dictionary codes. A row is within scope when it
// agrees with every (dim, code) pair.
type Scope struct {
	Dims  []int
	Codes []int32
}

// NewScope builds a scope from parallel dim/code slices, normalizing to
// ascending dimension order. It panics if the slices differ in length or a
// dimension repeats, since that indicates a programming error.
func NewScope(dims []int, codes []int32) Scope {
	if len(dims) != len(codes) {
		panic(fmt.Sprintf("fact: scope with %d dims but %d codes", len(dims), len(codes)))
	}
	s := Scope{
		Dims:  append([]int(nil), dims...),
		Codes: append([]int32(nil), codes...),
	}
	sort.Sort(scopeSorter{&s})
	for i := 1; i < len(s.Dims); i++ {
		if s.Dims[i] == s.Dims[i-1] {
			panic(fmt.Sprintf("fact: scope restricts dimension %d twice", s.Dims[i]))
		}
	}
	return s
}

type scopeSorter struct{ s *Scope }

func (x scopeSorter) Len() int           { return len(x.s.Dims) }
func (x scopeSorter) Less(i, j int) bool { return x.s.Dims[i] < x.s.Dims[j] }
func (x scopeSorter) Swap(i, j int) {
	x.s.Dims[i], x.s.Dims[j] = x.s.Dims[j], x.s.Dims[i]
	x.s.Codes[i], x.s.Codes[j] = x.s.Codes[j], x.s.Codes[i]
}

// Len returns the number of restricted dimensions.
func (s Scope) Len() int { return len(s.Dims) }

// Matches reports whether relation row r is within scope (D ⊆ Dr).
func (s Scope) Matches(rel *relation.Relation, row int32) bool {
	for i, d := range s.Dims {
		if rel.Dim(d).CodeAt(int(row)) != s.Codes[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s restricts a subset of other's dimensions with
// consistent values, i.e. every row within other's scope is within s's.
func (s Scope) SubsetOf(other Scope) bool {
	j := 0
	for i, d := range s.Dims {
		for j < len(other.Dims) && other.Dims[j] < d {
			j++
		}
		if j >= len(other.Dims) || other.Dims[j] != d || other.Codes[j] != s.Codes[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key identifying the scope, used for
// deduplication and map indexing.
func (s Scope) Key() string {
	var b strings.Builder
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d=%d", d, s.Codes[i])
	}
	return b.String()
}

// Equal reports whether two scopes restrict the same dimensions to the
// same values.
func (s Scope) Equal(other Scope) bool {
	if len(s.Dims) != len(other.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i] != other.Dims[i] || s.Codes[i] != other.Codes[i] {
			return false
		}
	}
	return true
}

// Describe renders the scope as human-readable column=value pairs.
func (s Scope) Describe(rel *relation.Relation) string {
	if len(s.Dims) == 0 {
		return "overall"
	}
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = fmt.Sprintf("%s=%s", rel.Schema().Dimensions[d], rel.Dim(d).Value(s.Codes[i]))
	}
	return strings.Join(parts, ", ")
}

// Predicates converts the scope into relation predicates.
func (s Scope) Predicates() []relation.Predicate {
	out := make([]relation.Predicate, len(s.Dims))
	for i := range s.Dims {
		out[i] = relation.Predicate{Dim: s.Dims[i], Code: s.Codes[i]}
	}
	return out
}
