package fact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cicero/internal/relation"
)

// buildFlights reproduces the running example of the paper (Figure 1 /
// Example 4): a 4x4 relation over region and season with 20-minute delays
// in South/West during Spring/Summer and 10-minute delays in Winter.
func buildFlights(t testing.TB) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("flights", relation.Schema{
		Dimensions: []string{"region", "season"},
		Targets:    []string{"delay"},
	})
	delay := map[[2]string]float64{
		{"South", "Spring"}: 20, {"South", "Summer"}: 20,
		{"West", "Spring"}: 20, {"West", "Summer"}: 20,
		{"East", "Winter"}: 10, {"South", "Winter"}: 10,
		{"West", "Winter"}: 10, {"North", "Winter"}: 10,
	}
	for _, r := range []string{"East", "South", "West", "North"} {
		for _, s := range []string{"Spring", "Summer", "Fall", "Winter"} {
			b.MustAddRow([]string{r, s}, []float64{delay[[2]string{r, s}]})
		}
	}
	return b.Freeze()
}

// mustFact builds a fact from (column, value) string pairs.
func mustFact(t testing.TB, rel *relation.Relation, value float64, pairs ...string) Fact {
	t.Helper()
	if len(pairs)%2 != 0 {
		t.Fatal("pairs must alternate column, value")
	}
	var dims []int
	var codes []int32
	for i := 0; i < len(pairs); i += 2 {
		d := rel.Schema().DimIndex(pairs[i])
		if d < 0 {
			t.Fatalf("no dimension %q", pairs[i])
		}
		code, ok := rel.Dim(d).Code(pairs[i+1])
		if !ok {
			t.Fatalf("no value %q in %q", pairs[i+1], pairs[i])
		}
		dims = append(dims, d)
		codes = append(codes, code)
	}
	return Fact{Scope: NewScope(dims, codes), Value: value}
}

func TestScopeMatches(t *testing.T) {
	rel := buildFlights(t)
	f := mustFact(t, rel, 20, "season", "Summer", "region", "South")
	matched := 0
	for row := int32(0); row < int32(rel.NumRows()); row++ {
		if f.Scope.Matches(rel, row) {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("summer+south matches %d rows, want 1", matched)
	}
	overall := Fact{Scope: NewScope(nil, nil)}
	for row := int32(0); row < int32(rel.NumRows()); row++ {
		if !overall.Scope.Matches(rel, row) {
			t.Fatal("empty scope must match all rows")
		}
	}
}

func TestScopeSubsetOf(t *testing.T) {
	rel := buildFlights(t)
	winter := mustFact(t, rel, 15, "season", "Winter").Scope
	winterEast := mustFact(t, rel, 20, "season", "Winter", "region", "East").Scope
	summerEast := mustFact(t, rel, 0, "season", "Summer", "region", "East").Scope
	empty := NewScope(nil, nil)

	if !winter.SubsetOf(winterEast) {
		t.Error("winter ⊆ winter+east should hold")
	}
	if winterEast.SubsetOf(winter) {
		t.Error("winter+east ⊄ winter")
	}
	if winter.SubsetOf(summerEast) {
		t.Error("winter ⊄ summer+east (value conflict)")
	}
	if !empty.SubsetOf(winter) || !empty.SubsetOf(empty) {
		t.Error("empty scope is subset of everything")
	}
	if !winter.SubsetOf(winter) {
		t.Error("scope is subset of itself")
	}
}

func TestScopeNormalization(t *testing.T) {
	// Scopes built with dims in any order normalize identically.
	a := NewScope([]int{1, 0}, []int32{5, 3})
	b := NewScope([]int{0, 1}, []int32{3, 5})
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Errorf("scope normalization failed: %v vs %v", a.Key(), b.Key())
	}
}

func TestScopePanicsOnDuplicateDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate dimension should panic")
		}
	}()
	NewScope([]int{1, 1}, []int32{0, 1})
}

func TestScopeDescribe(t *testing.T) {
	rel := buildFlights(t)
	f := mustFact(t, rel, 15, "season", "Winter")
	if got := f.Scope.Describe(rel); got != "season=Winter" {
		t.Errorf("Describe = %q", got)
	}
	if got := NewScope(nil, nil).Describe(rel); got != "overall" {
		t.Errorf("empty Describe = %q", got)
	}
}

// TestExample4Utility reproduces Example 4 of the paper exactly: with a
// zero prior, the prior error is 120; Speech 1 ("South in Summer is 20",
// "East in Winter is 10") reduces error to 80 (utility 40); Speech 2
// ("Winter is 10", "North is 2.5") — the paper abstracts values, here we
// use the true averages ("Winter"=10, "North"=2.5)... The paper's Speech 2
// states Winter and North facts with utility such that error drops to 35.
// With our literal data the paper's stated fact values (Winter 15, North
// 15) come from a different value assignment, so we verify the structural
// claims: speech utility equals prior error minus residual, and the
// two-fact season+region speech dominates the single-cell speech.
func TestExample4Utility(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	prior := ConstantPrior(0)

	if got := Deviation(view, nil, prior, 0); got != 120 {
		t.Fatalf("prior error = %v, want 120", got)
	}

	speech1 := []Fact{
		mustFact(t, rel, 20, "season", "Summer", "region", "South"),
		mustFact(t, rel, 10, "season", "Winter", "region", "East"),
	}
	if got := Utility(view, speech1, prior, 0); got != 30 {
		// South+Summer removes 20, East+Winter removes 10.
		t.Errorf("speech1 utility = %v, want 30", got)
	}

	speech2 := []Fact{
		mustFact(t, rel, 10, "season", "Winter"),
		mustFact(t, rel, 20, "region", "South"),
	}
	u2 := Utility(view, speech2, prior, 0)
	u1 := Utility(view, speech1, prior, 0)
	if u2 <= u1 {
		t.Errorf("broad-scope speech should dominate: u2=%v u1=%v", u2, u1)
	}
}

func TestExpectationClosest(t *testing.T) {
	rel := buildFlights(t)
	winter10 := mustFact(t, rel, 10, "season", "Winter")
	south20 := mustFact(t, rel, 20, "region", "South")
	facts := []Fact{winter10, south20}

	// Row South+Winter has truth 10; both facts in scope; closest value
	// (among {prior=0, 10, 20}) is 10.
	row := findRow(t, rel, "South", "Winter")
	got := Expectation(rel, facts, row, 0, rel.Target(0).At(int(row)), Closest)
	if got != 10 {
		t.Errorf("closest expectation = %v, want 10", got)
	}
	// Farthest picks 20 (|20-10| > |0-10| = |10-10|).
	got = Expectation(rel, facts, row, 0, rel.Target(0).At(int(row)), Farthest)
	if got != 20 {
		t.Errorf("farthest expectation = %v, want 20", got)
	}
	// AvgScope averages in-scope facts: (10+20)/2.
	got = Expectation(rel, facts, row, 0, rel.Target(0).At(int(row)), AvgScope)
	if got != 15 {
		t.Errorf("avgScope expectation = %v, want 15", got)
	}
	// AvgAll averages all speech facts regardless of scope.
	got = Expectation(rel, facts, row, 0, rel.Target(0).At(int(row)), AvgAll)
	if got != 15 {
		t.Errorf("avgAll expectation = %v, want 15", got)
	}
}

func TestExpectationNoRelevantFacts(t *testing.T) {
	rel := buildFlights(t)
	winter10 := mustFact(t, rel, 10, "season", "Winter")
	row := findRow(t, rel, "East", "Summer")
	truth := rel.Target(0).At(int(row))
	for _, m := range Models() {
		if got := Expectation(rel, []Fact{winter10}, row, 7, truth, m); m != AvgAll && got != 7 {
			t.Errorf("%v expectation with no in-scope fact = %v, want prior 7", m, got)
		}
	}
	// AvgAll still averages the irrelevant fact.
	if got := Expectation(rel, []Fact{winter10}, row, 7, truth, AvgAll); got != 10 {
		t.Errorf("AvgAll = %v, want 10", got)
	}
	// Empty speech: every model returns the prior.
	for _, m := range Models() {
		if got := Expectation(rel, nil, row, 7, truth, m); got != 7 {
			t.Errorf("%v empty-speech expectation = %v, want 7", m, got)
		}
	}
}

func findRow(t testing.TB, rel *relation.Relation, region, season string) int32 {
	t.Helper()
	rc, _ := rel.Dim(0).Code(region)
	sc, _ := rel.Dim(1).Code(season)
	for row := 0; row < rel.NumRows(); row++ {
		if rel.Dim(0).CodeAt(row) == rc && rel.Dim(1).CodeAt(row) == sc {
			return int32(row)
		}
	}
	t.Fatalf("row %s/%s not found", region, season)
	return -1
}

func TestMeanPrior(t *testing.T) {
	rel := buildFlights(t)
	p := MeanPrior(rel.FullView(), 0)
	if float64(p) != 7.5 {
		t.Errorf("mean prior = %v, want 7.5", float64(p))
	}
	if p.At(3) != 7.5 {
		t.Errorf("At = %v", p.At(3))
	}
}

func TestPerRowPrior(t *testing.T) {
	p := PerRowPrior{1, 2, 3}
	if p.At(2) != 3 {
		t.Errorf("At(2) = %v", p.At(2))
	}
}

func TestGenerate(t *testing.T) {
	rel := buildFlights(t)
	facts := Generate(rel.FullView(), 0, GenerateOptions{MaxDims: 2})
	// 1 overall + 4 regions + 4 seasons + 16 combinations = 25.
	if len(facts) != 25 {
		t.Fatalf("generated %d facts, want 25", len(facts))
	}
	// The overall fact is first with value 7.5.
	if facts[0].Scope.Len() != 0 || facts[0].Value != 7.5 {
		t.Errorf("overall fact = %+v", facts[0])
	}
	// Every fact's value equals the view average within its scope.
	for _, f := range facts {
		sub := rel.FullView().Select(f.Scope.Predicates())
		if want := sub.Stats(0).Mean(); math.Abs(f.Value-want) > 1e-12 {
			t.Errorf("fact %v value %v, want %v", f.Scope.Key(), f.Value, want)
		}
	}
}

func TestGenerateMaxDims(t *testing.T) {
	rel := buildFlights(t)
	facts := Generate(rel.FullView(), 0, GenerateOptions{MaxDims: 1})
	if len(facts) != 9 { // 1 + 4 + 4
		t.Errorf("maxDims=1 generated %d facts, want 9", len(facts))
	}
	facts = Generate(rel.FullView(), 0, GenerateOptions{MaxDims: 0})
	if len(facts) != 1 {
		t.Errorf("maxDims=0 generated %d facts, want 1", len(facts))
	}
}

func TestGenerateFreeDims(t *testing.T) {
	rel := buildFlights(t)
	facts := Generate(rel.FullView(), 0, GenerateOptions{MaxDims: 2, FreeDims: []int{1}})
	if len(facts) != 5 { // overall + 4 seasons
		t.Errorf("freeDims={season} generated %d facts, want 5", len(facts))
	}
	for _, f := range facts {
		for _, d := range f.Scope.Dims {
			if d != 1 {
				t.Errorf("fact restricts non-free dim %d", d)
			}
		}
	}
}

func TestGenerateMinRows(t *testing.T) {
	rel := buildFlights(t)
	// Every cell has exactly one row, so MinRows=2 eliminates the 16
	// two-dimensional facts.
	facts := Generate(rel.FullView(), 0, GenerateOptions{MaxDims: 2, MinRows: 2})
	if len(facts) != 9 {
		t.Errorf("minRows=2 generated %d facts, want 9", len(facts))
	}
}

func TestCountFacts(t *testing.T) {
	rel := buildFlights(t)
	got := CountFacts(rel.FullView(), GenerateOptions{MaxDims: 2})
	if got != 25 {
		t.Errorf("CountFacts = %d, want 25", got)
	}
}

func TestDimSubsets(t *testing.T) {
	subs := DimSubsets([]int{0, 1, 2}, 2)
	want := [][]int{{}, {0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}}
	if len(subs) != len(want) {
		t.Fatalf("DimSubsets len = %d, want %d", len(subs), len(want))
	}
	for i := range want {
		if len(subs[i]) != len(want[i]) {
			t.Fatalf("subset %d = %v, want %v", i, subs[i], want[i])
		}
		for j := range want[i] {
			if subs[i][j] != want[i][j] {
				t.Fatalf("subset %d = %v, want %v", i, subs[i], want[i])
			}
		}
	}
	// maxSize beyond len yields the full power set.
	if got := len(DimSubsets([]int{0, 1}, 5)); got != 4 {
		t.Errorf("power set size = %d, want 4", got)
	}
}

func TestSpeechCanonicalEqual(t *testing.T) {
	rel := buildFlights(t)
	a := Speech{Facts: []Fact{
		mustFact(t, rel, 10, "season", "Winter"),
		mustFact(t, rel, 20, "region", "South"),
	}}
	b := Speech{Facts: []Fact{
		mustFact(t, rel, 20, "region", "South"),
		mustFact(t, rel, 10, "season", "Winter"),
	}}
	if !a.Equal(b) {
		t.Error("speeches with same facts in different order should be equal")
	}
	c := Speech{Facts: a.Facts[:1]}
	if a.Equal(c) {
		t.Error("speeches of different length should differ")
	}
}

// TestPropertyUtilityMonotone checks that adding a fact never decreases
// utility (monotonicity, required for the greedy guarantee).
func TestPropertyUtilityMonotone(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	all := Generate(view, 0, GenerateOptions{MaxDims: 2})
	prior := MeanPrior(view, 0)
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		n := rng.Intn(4)
		speech := make([]Fact, 0, n+1)
		for i := 0; i < n; i++ {
			speech = append(speech, all[rng.Intn(len(all))])
		}
		u1 := Utility(view, speech, prior, 0)
		speech = append(speech, all[rng.Intn(len(all))])
		u2 := Utility(view, speech, prior, 0)
		return u2 >= u1-1e-9
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatal("utility decreased after adding a fact")
		}
	}
}

// TestPropertySubmodular verifies Theorem 1 (diminishing returns): for
// random F1 ⊆ F2 and a new fact f, the marginal gain on F1 is at least
// the marginal gain on F2.
func TestPropertySubmodular(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	all := Generate(view, 0, GenerateOptions{MaxDims: 2})
	prior := MeanPrior(view, 0)
	rng := rand.New(rand.NewSource(23))
	check := func() bool {
		n1 := rng.Intn(3)
		extra := rng.Intn(3)
		f1 := make([]Fact, 0, n1)
		for i := 0; i < n1; i++ {
			f1 = append(f1, all[rng.Intn(len(all))])
		}
		f2 := append([]Fact(nil), f1...)
		for i := 0; i < extra; i++ {
			f2 = append(f2, all[rng.Intn(len(all))])
		}
		nf := all[rng.Intn(len(all))]
		gain1 := Utility(view, append(append([]Fact(nil), f1...), nf), prior, 0) - Utility(view, f1, prior, 0)
		gain2 := Utility(view, append(append([]Fact(nil), f2...), nf), prior, 0) - Utility(view, f2, prior, 0)
		return gain1 >= gain2-1e-9
	}
	for i := 0; i < 300; i++ {
		if !check() {
			t.Fatal("submodularity violated")
		}
	}
}

// TestPropertyExpectationIdempotent uses testing/quick: duplicating a fact
// never changes the expectation under any model except AvgAll (where the
// multiset average is unchanged too, since the value repeats).
func TestPropertyExpectationIdempotent(t *testing.T) {
	rel := buildFlights(t)
	all := Generate(rel.FullView(), 0, GenerateOptions{MaxDims: 2})
	f := func(factPick uint16, rowPick uint16, priorRaw int8) bool {
		ft := all[int(factPick)%len(all)]
		row := int32(int(rowPick) % rel.NumRows())
		prior := float64(priorRaw)
		truth := rel.Target(0).At(int(row))
		for _, m := range []ExpectationModel{Closest, Farthest, AvgScope, AvgAll} {
			one := Expectation(rel, []Fact{ft}, row, prior, truth, m)
			two := Expectation(rel, []Fact{ft, ft}, row, prior, truth, m)
			if math.Abs(one-two) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
