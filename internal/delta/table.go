package delta

import (
	"fmt"

	"cicero/internal/relation"
)

// Table is the mutable row-form of a relation: the staging area deltas
// apply to. Relations themselves are immutable by design (the serving
// layer depends on it), so incremental ingestion keeps the current rows
// here, applies each batch, and freezes a fresh Relation per published
// generation.
type Table struct {
	name    string
	schema  relation.Schema
	dims    [][]string  // per row, one value per dimension column
	targets [][]float64 // per row, one value per target column
}

// RowImage is one changed row as the planner sees it: the dimension
// values locating the row in the query space, and which targets the
// change affects. An update that moves a row between subsets produces
// two images (the row where it was, and where it is now); an update
// that only rewrites target values produces one image restricted to the
// targets whose values actually changed — the refinement that keeps the
// dirty set small for the common append/correct workloads.
type RowImage struct {
	// Dims holds the row's dimension values, in schema order.
	Dims []string
	// Targets lists the affected target column indices; nil means all.
	Targets []int
}

// FromRelation decodes a relation back into mutable row form.
func FromRelation(rel *relation.Relation) *Table {
	t := &Table{
		name:    rel.Name(),
		schema:  rel.Schema().Clone(),
		dims:    make([][]string, rel.NumRows()),
		targets: make([][]float64, rel.NumRows()),
	}
	for row := 0; row < rel.NumRows(); row++ {
		dims := make([]string, rel.NumDims())
		for d := 0; d < rel.NumDims(); d++ {
			col := rel.Dim(d)
			dims[d] = col.Value(col.CodeAt(row))
		}
		targets := make([]float64, rel.NumTargets())
		for ti := 0; ti < rel.NumTargets(); ti++ {
			targets[ti] = rel.Target(ti).At(row)
		}
		t.dims[row] = dims
		t.targets[row] = targets
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the table schema.
func (t *Table) Schema() relation.Schema { return t.schema.Clone() }

// NumRows returns the current number of rows.
func (t *Table) NumRows() int { return len(t.dims) }

// Row returns copies of the dimension and target values of a row.
func (t *Table) Row(i int) ([]string, []float64) {
	return append([]string(nil), t.dims[i]...), append([]float64(nil), t.targets[i]...)
}

// Apply mutates the table by the batch's ops, in order, and returns the
// row images of every change for dirty-set planning. An op that fails
// validation aborts the whole batch with the table unchanged — a
// half-applied journal could never be re-derived from its tag.
func (t *Table) Apply(b Batch) ([]RowImage, error) {
	if b.Dataset != "" && b.Dataset != t.name {
		return nil, fmt.Errorf("delta: batch targets dataset %q, table is %q", b.Dataset, t.name)
	}
	// Validate against a dry-run row count before touching the rows.
	n := len(t.dims)
	for i, op := range b.Ops {
		switch op.Kind {
		case Insert:
			if len(op.Dims) != len(t.schema.Dimensions) {
				return nil, fmt.Errorf("delta: op %d: insert has %d dimension values, schema has %d", i, len(op.Dims), len(t.schema.Dimensions))
			}
			if len(op.Targets) != len(t.schema.Targets) {
				return nil, fmt.Errorf("delta: op %d: insert has %d target values, schema has %d", i, len(op.Targets), len(t.schema.Targets))
			}
			n++
		case Update:
			if op.Row < 0 || op.Row >= n {
				return nil, fmt.Errorf("delta: op %d: update row %d out of range [0,%d)", i, op.Row, n)
			}
			if op.Dims != nil && len(op.Dims) != len(t.schema.Dimensions) {
				return nil, fmt.Errorf("delta: op %d: update has %d dimension values, schema has %d", i, len(op.Dims), len(t.schema.Dimensions))
			}
			if op.Targets != nil && len(op.Targets) != len(t.schema.Targets) {
				return nil, fmt.Errorf("delta: op %d: update has %d target values, schema has %d", i, len(op.Targets), len(t.schema.Targets))
			}
		case Delete:
			if op.Row < 0 || op.Row >= n {
				return nil, fmt.Errorf("delta: op %d: delete row %d out of range [0,%d)", i, op.Row, n)
			}
			n--
		default:
			return nil, fmt.Errorf("delta: op %d: unknown kind %q", i, op.Kind)
		}
	}

	var images []RowImage
	for _, op := range b.Ops {
		switch op.Kind {
		case Insert:
			t.dims = append(t.dims, append([]string(nil), op.Dims...))
			t.targets = append(t.targets, append([]float64(nil), op.Targets...))
			images = append(images, RowImage{Dims: t.dims[len(t.dims)-1]})
		case Update:
			oldDims, oldTargets := t.dims[op.Row], t.targets[op.Row]
			newDims, newTargets := oldDims, oldTargets
			if op.Dims != nil {
				newDims = append([]string(nil), op.Dims...)
			}
			if op.Targets != nil {
				newTargets = append([]float64(nil), op.Targets...)
			}
			dimsChanged := false
			for d := range oldDims {
				if oldDims[d] != newDims[d] {
					dimsChanged = true
					break
				}
			}
			if dimsChanged {
				// The row leaves one query subset and enters another;
				// every target's problems over either subset see a
				// different row multiset.
				images = append(images,
					RowImage{Dims: oldDims},
					RowImage{Dims: newDims},
				)
			} else {
				var changed []int
				for ti := range oldTargets {
					if oldTargets[ti] != newTargets[ti] {
						changed = append(changed, ti)
					}
				}
				if len(changed) > 0 {
					images = append(images, RowImage{Dims: oldDims, Targets: changed})
				}
				// A no-op update dirties nothing.
			}
			t.dims[op.Row] = newDims
			t.targets[op.Row] = newTargets
		case Delete:
			images = append(images, RowImage{Dims: t.dims[op.Row]})
			t.dims = append(t.dims[:op.Row], t.dims[op.Row+1:]...)
			t.targets = append(t.targets[:op.Row], t.targets[op.Row+1:]...)
		}
	}
	return images, nil
}

// Rel freezes the current rows into an immutable relation. Rows are
// added in table order, so dictionary codes are assigned by first
// appearance — for append-style deltas this keeps the base relation's
// dictionaries as a prefix of the new ones, the property the planner's
// drift check verifies before trusting retained speeches.
func (t *Table) Rel() *relation.Relation {
	b := relation.NewBuilder(t.name, t.schema)
	for i := range t.dims {
		b.MustAddRow(t.dims[i], t.targets[i])
	}
	return b.Freeze()
}
