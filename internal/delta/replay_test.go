package delta

import (
	"context"
	"path/filepath"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/pipeline"
	"cicero/internal/snapshot"
)

// TestReplayReconstructsPatchedStore is the cold-start contract: write
// the patch artifact, read it back, replay it over the base — the
// result must be bit-identical to both the original incremental apply
// and the full-rebuild oracle, without solving a single problem.
func TestReplayReconstructsPatchedStore(t *testing.T) {
	ctx := context.Background()
	rel := dataset.ACS(500, 11)
	cfg := acsConfig(rel, engine.PriorZero)
	base, _, err := pipeline.Run(ctx, rel, cfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}

	b := Synthesize(rel, 5, 13)
	tab := FromRelation(rel)
	images, err := tab.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	next := tab.Rel()
	res, err := Apply(ctx, base, rel, next, cfg, testOpts, images)
	if err != nil {
		t.Fatal(err)
	}

	baseFP := pipeline.Fingerprint(1, cfg, "G-O")
	fp := pipeline.FingerprintDelta(1, cfg, "G-O", b.Tag())
	path := filepath.Join(t.TempDir(), "acs.patch")
	if err := snapshot.WritePatchFile(path, NewPatch(baseFP, fp, b, res)); err != nil {
		t.Fatal(err)
	}

	p, err := snapshot.ReadPatchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.BaseFingerprint != baseFP || p.Fingerprint != fp || p.DeltaTag != b.Tag() {
		t.Fatalf("patch provenance did not round-trip: %+v", p)
	}
	if BatchOfPatch(p).Tag() != b.Tag() {
		t.Fatal("journal round trip changed the batch tag")
	}

	replayed, replayedRel, err := Replay(base, rel, p)
	if err != nil {
		t.Fatal(err)
	}
	if replayedRel.NumRows() != next.NumRows() {
		t.Fatalf("replayed relation has %d rows, want %d", replayedRel.NumRows(), next.NumRows())
	}
	storesIdentical(t, replayed, res.Store)

	oracle, _, err := pipeline.Run(ctx, next, cfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	storesIdentical(t, replayed, oracle)
}

// TestReplayRefusesWrongDataset pins the journal/table identity check.
func TestReplayRefusesWrongDataset(t *testing.T) {
	rel := dataset.ACS(50, 1)
	store := engine.NewStore()
	store.Freeze()
	_, _, err := Replay(store, rel, &snapshot.Patch{Dataset: "flights"})
	if err == nil {
		t.Fatal("replaying a flights patch onto acs must fail")
	}
}
