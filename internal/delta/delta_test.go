package delta

import (
	"context"
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/pipeline"
	"cicero/internal/relation"
)

func acsConfig(rel *relation.Relation, prior engine.PriorMode) engine.Config {
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"hearing", "visual"}
	cfg.Prior = prior
	return cfg
}

var testOpts = pipeline.Options{
	Solver:   "G-O",
	Template: engine.Template{TargetPhrase: "prevalence"},
}

// storesIdentical asserts bit-identity between two stores: same keys,
// same facts (scopes and values), same utilities, same texts.
func storesIdentical(t *testing.T, got, want engine.StoreView) {
	t.Helper()
	g, w := got.Speeches(), want.Speeches()
	if len(g) != len(w) {
		t.Fatalf("store sizes differ: got %d, want %d", len(g), len(w))
	}
	for i := range g {
		gk, wk := g[i].Query.Key(), w[i].Query.Key()
		if gk != wk {
			t.Fatalf("speech %d: key %q, want %q", i, gk, wk)
		}
		if g[i].Utility != w[i].Utility || g[i].PriorError != w[i].PriorError {
			t.Fatalf("%s: utility/prior %v/%v, want %v/%v",
				gk, g[i].Utility, g[i].PriorError, w[i].Utility, w[i].PriorError)
		}
		if g[i].Text != w[i].Text {
			t.Fatalf("%s: text %q, want %q", gk, g[i].Text, w[i].Text)
		}
		if len(g[i].Facts) != len(w[i].Facts) {
			t.Fatalf("%s: %d facts, want %d", gk, len(g[i].Facts), len(w[i].Facts))
		}
		for j := range g[i].Facts {
			gf, wf := g[i].Facts[j], w[i].Facts[j]
			if gf.Value != wf.Value || len(gf.Scope.Dims) != len(wf.Scope.Dims) {
				t.Fatalf("%s: fact %d differs: %+v vs %+v", gk, j, gf, wf)
			}
			for k := range gf.Scope.Dims {
				if gf.Scope.Dims[k] != wf.Scope.Dims[k] || gf.Scope.Codes[k] != wf.Scope.Codes[k] {
					t.Fatalf("%s: fact %d scope differs: %+v vs %+v", gk, j, gf.Scope, wf.Scope)
				}
			}
		}
	}
}

// applyAndCompare runs the incremental path against the full-rebuild
// oracle for a batch and returns the incremental result.
func applyAndCompare(t *testing.T, rel *relation.Relation, cfg engine.Config, b Batch) *Result {
	t.Helper()
	ctx := context.Background()
	base, _, err := pipeline.Run(ctx, rel, cfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	tab := FromRelation(rel)
	images, err := tab.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	next := tab.Rel()

	res, err := Apply(ctx, base, rel, next, cfg, testOpts, images)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _, err := pipeline.Run(ctx, next, cfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	storesIdentical(t, res.Store, oracle)
	return res
}

// TestApplyParityTargetUpdates is the core tentpole property: a small
// clustered target-value delta yields a patched store bit-identical to
// a from-scratch rebuild, while re-solving only a fraction of the
// problem space.
func TestApplyParityTargetUpdates(t *testing.T) {
	rel := dataset.ACS(600, 1)
	cfg := acsConfig(rel, engine.PriorZero)
	b := Synthesize(rel, 6, 7)
	if len(b.Ops) != 6 {
		t.Fatalf("synthesized %d ops, want 6", len(b.Ops))
	}

	res := applyAndCompare(t, rel, cfg, b)
	if res.FullDirty {
		t.Fatal("target-only updates must not degrade to a full rebuild")
	}
	if len(res.FullDirtyTargets) != 0 {
		t.Fatalf("zero prior must not dirty whole targets, got %v", res.FullDirtyTargets)
	}
	if res.Retained == 0 {
		t.Fatal("no speeches retained: the delta path re-solved everything")
	}
	if res.Solved >= res.TotalProblems/2 {
		t.Fatalf("clustered delta solved %d of %d problems; locality lost", res.Solved, res.TotalProblems)
	}
	// Synthesize only touches target 0 of the schema ("hearing"): no
	// "visual" problem may re-solve.
	for _, up := range res.Upserts {
		if up.Query.Target != "hearing" {
			t.Fatalf("re-solved a problem of untouched target %q", up.Query.Target)
		}
	}
}

// TestApplyParityGlobalMeanPrior pins the honest degradation: moving a
// target value moves that target's full-table mean, which is an input
// to every problem of the target under the global-mean prior, so the
// whole target re-solves — and the result still matches the oracle.
func TestApplyParityGlobalMeanPrior(t *testing.T) {
	rel := dataset.ACS(400, 2)
	cfg := acsConfig(rel, engine.PriorGlobalMean)
	res := applyAndCompare(t, rel, cfg, Synthesize(rel, 4, 3))
	if res.FullDirty {
		t.Fatal("prior movement must degrade per-target, not to a full rebuild")
	}
	found := false
	for _, tgt := range res.FullDirtyTargets {
		if tgt == "hearing" {
			found = true
		}
		if tgt == "visual" {
			t.Fatal("untouched target's mean cannot have moved")
		}
	}
	if !found {
		t.Fatalf("expected hearing in FullDirtyTargets, got %v", res.FullDirtyTargets)
	}
	if res.Retained == 0 {
		t.Fatal("visual speeches should have been retained")
	}
}

// TestApplyParityStructuralOps exercises inserts (including a brand-new
// dimension value), a dimension-moving update, and the journal halves
// (upserts + removals) against the oracle.
func TestApplyParityStructuralOps(t *testing.T) {
	rel := dataset.ACS(400, 4)
	b := Batch{Dataset: "acs", Ops: []Op{
		// New rows, one introducing a new borough value (appended to the
		// dictionary, so codes stay a prefix — no full rebuild).
		{Kind: Insert, Dims: []string{"Bronx", "elder", "Female"}, Targets: []float64{70, 90, 50, 160, 55, 120}},
		{Kind: Insert, Dims: []string{"Yonkers", "adult", "Male"}, Targets: []float64{12, 17, 30, 35, 10, 25}},
		// Move a row between subsets.
		{Kind: Update, Row: 10, Dims: []string{"Queens", "teen", "Male"}},
	}}
	res := applyAndCompare(t, rel, acsConfig(rel, engine.PriorZero), b)
	if res.FullDirty {
		t.Fatal("append-style structural delta must not degrade to full rebuild")
	}
	if res.Retained == 0 || res.Solved == 0 {
		t.Fatalf("expected a mix of retained and solved, got retained=%d solved=%d", res.Retained, res.Solved)
	}
}

// TestApplyDictionaryDriftFallsBackToFull pins the drift guard: deleting
// the first-appearance row of a dictionary value reorders codes in the
// rebuilt relation, which invalidates every retained fact scope — the
// planner must fall back to a full re-solve, and parity must still hold.
func TestApplyDictionaryDriftFallsBackToFull(t *testing.T) {
	rel := dataset.ACS(300, 5)
	res := applyAndCompare(t, rel, acsConfig(rel, engine.PriorZero),
		Batch{Ops: []Op{{Kind: Delete, Row: 0}}})
	if !res.FullDirty {
		t.Skip("row 0 deletion did not drift the dictionaries for this seed")
	}
	if res.Retained != 0 {
		t.Fatalf("full-dirty plan retained %d speeches", res.Retained)
	}
}

// TestPlanPerTargetRefinement checks the planner's dirty-set shape
// directly on a tiny relation.
func TestPlanPerTargetRefinement(t *testing.T) {
	b := relation.NewBuilder("tiny", relation.Schema{
		Dimensions: []string{"d"},
		Targets:    []string{"x", "y"},
	})
	b.MustAddRow([]string{"a"}, []float64{1, 10})
	b.MustAddRow([]string{"b"}, []float64{2, 20})
	rel := b.Freeze()
	cfg := engine.DefaultConfig(rel)
	cfg.Prior = engine.PriorZero
	if err := cfg.Validate(rel); err != nil {
		t.Fatal(err)
	}

	tab := FromRelation(rel)
	images, err := tab.Apply(Batch{Ops: []Op{{Kind: Update, Row: 0, Targets: []float64{5, 10}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 1 || len(images[0].Targets) != 1 || images[0].Targets[0] != 0 {
		t.Fatalf("image = %+v, want one image affecting target 0 only", images)
	}
	plan := PlanDirty(rel, tab.Rel(), cfg, images)
	for _, tc := range []struct {
		target, key string
		dirty       bool
	}{
		{"x", engine.Query{Target: "x"}.Key(), true},
		{"x", engine.Query{Target: "x", Predicates: []engine.NamedPredicate{{Column: "d", Value: "a"}}}.Key(), true},
		{"x", engine.Query{Target: "x", Predicates: []engine.NamedPredicate{{Column: "d", Value: "b"}}}.Key(), false},
		{"y", engine.Query{Target: "y"}.Key(), false},
		{"y", engine.Query{Target: "y", Predicates: []engine.NamedPredicate{{Column: "d", Value: "a"}}}.Key(), false},
	} {
		if got := plan.IsDirty(tc.target, tc.key); got != tc.dirty {
			t.Errorf("IsDirty(%s, %s) = %v, want %v", tc.target, tc.key, got, tc.dirty)
		}
	}
}

// TestTableApplyValidationAborts pins all-or-nothing batch semantics.
func TestTableApplyValidationAborts(t *testing.T) {
	rel := dataset.ACS(50, 1)
	tab := FromRelation(rel)
	_, err := tab.Apply(Batch{Ops: []Op{
		{Kind: Delete, Row: 0},
		{Kind: Delete, Row: 49}, // out of range after the first delete
	}})
	if err == nil {
		t.Fatal("expected out-of-range error")
	}
	if tab.NumRows() != 50 {
		t.Fatalf("failed batch mutated the table: %d rows", tab.NumRows())
	}
	if _, err := tab.Apply(Batch{Dataset: "flights", Ops: []Op{{Kind: Delete, Row: 0}}}); err == nil ||
		!strings.Contains(err.Error(), "dataset") {
		t.Fatalf("dataset mismatch not refused: %v", err)
	}
}

// TestTableRoundTrip: decoding a relation and freezing it unchanged
// reproduces identical dictionaries and rows.
func TestTableRoundTrip(t *testing.T) {
	rel := dataset.ACS(200, 9)
	got := FromRelation(rel).Rel()
	if got.NumRows() != rel.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), rel.NumRows())
	}
	for d := 0; d < rel.NumDims(); d++ {
		gv, wv := got.Dim(d).Values(), rel.Dim(d).Values()
		if len(gv) != len(wv) {
			t.Fatalf("dim %d: %d values, want %d", d, len(gv), len(wv))
		}
		for i := range gv {
			if gv[i] != wv[i] {
				t.Fatalf("dim %d: dictionary drifted at %d: %q vs %q", d, i, gv[i], wv[i])
			}
		}
	}
	for ti := 0; ti < rel.NumTargets(); ti++ {
		for row := 0; row < rel.NumRows(); row++ {
			if got.Target(ti).At(row) != rel.Target(ti).At(row) {
				t.Fatalf("target %d row %d differs", ti, row)
			}
		}
	}
}

// TestBatchTagAndJSON: the provenance tag is deterministic, sensitive to
// content, and batches survive a JSON round trip in both encodings.
func TestBatchTagAndJSON(t *testing.T) {
	b := Batch{Dataset: "acs", Ops: []Op{
		{Kind: Update, Row: 3, Targets: []float64{1, 2, 3, 4, 5, 6}},
		{Kind: Delete, Row: 7},
	}}
	if b.Tag() == "" || b.Tag() != b.Tag() {
		t.Fatalf("tag unstable: %q", b.Tag())
	}
	if (Batch{}).Tag() != "" {
		t.Fatal("empty batch must have an empty tag")
	}
	b2 := b
	b2.Ops = append([]Op(nil), b.Ops...)
	b2.Ops[1].Row = 8
	if b.Tag() == b2.Tag() {
		t.Fatal("different batches share a tag")
	}

	path := t.TempDir() + "/ops.json"
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBatchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag() != b.Tag() || got.Dataset != "acs" {
		t.Fatalf("round trip changed the batch: %+v", got)
	}
	bare, err := LoadBatch(strings.NewReader(`[{"op":"delete","row":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Ops) != 1 || bare.Ops[0].Kind != Delete {
		t.Fatalf("bare array decode = %+v", bare)
	}
}
