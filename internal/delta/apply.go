package delta

import (
	"context"
	"strings"

	"cicero/internal/engine"
	"cicero/internal/fact"
	"cicero/internal/pipeline"
	"cicero/internal/relation"
)

// Result is the outcome of an incremental apply: the patched store
// (bit-identical to a from-scratch rebuild over the same rows) plus the
// bookkeeping the caller needs to publish, benchmark, and journal it.
type Result struct {
	// Store is the patched, frozen speech store.
	Store *engine.Store

	// TotalProblems counts the problems of the new configuration space.
	TotalProblems int
	// DirtyProblems counts problems the plan marked dirty.
	DirtyProblems int
	// Solved counts problems actually re-solved (dirty plus any clean
	// problem absent from the base store, e.g. a subset newly above the
	// MinSubsetRows threshold).
	Solved int
	// Retained counts speeches carried over from the base store.
	Retained int
	// Removed counts base speeches with no problem in the new space.
	Removed int
	// FullDirty reports a dictionary-drift degradation to full rebuild.
	FullDirty bool
	// FullDirtyTargets lists targets degraded wholesale (prior moved).
	FullDirtyTargets []string

	// Upserts are the newly solved speeches in persistence form — with
	// RemovedKeys, the journal half of a snapshot patch artifact: base
	// speeches minus RemovedKeys plus Upserts reconstructs Store.
	Upserts []engine.PersistedSpeech
	// RemovedKeys are canonical keys of base speeches not carried over.
	RemovedKeys []string
}

// cloneSpeech deep-copies a retained speech out of the base store. The
// base may be a zero-copy mmap-backed snapshot view whose strings and
// slices alias the mapping; a patched store outlives any particular
// base (the mapping may be closed after the swap), so retention must
// copy, never alias.
func cloneSpeech(sp *engine.StoredSpeech) *engine.StoredSpeech {
	preds := make([]engine.NamedPredicate, len(sp.Query.Predicates))
	for i, p := range sp.Query.Predicates {
		preds[i] = engine.NamedPredicate{
			Column: strings.Clone(p.Column),
			Value:  strings.Clone(p.Value),
		}
	}
	facts := make([]fact.Fact, len(sp.Facts))
	for i, f := range sp.Facts {
		facts[i] = fact.Fact{
			// NewScope copies both slices (and re-sorts, a no-op for
			// already-canonical scopes).
			Scope: fact.NewScope(f.Scope.Dims, f.Scope.Codes),
			Value: f.Value,
		}
	}
	return &engine.StoredSpeech{
		Query:      engine.Query{Target: strings.Clone(sp.Query.Target), Predicates: preds},
		Facts:      facts,
		Utility:    sp.Utility,
		PriorError: sp.PriorError,
		Text:       strings.Clone(sp.Text),
	}
}

// Apply re-summarizes a relation incrementally: it plans the dirty set
// from the changed row images, re-solves only the dirty problems (on
// the pooled evaluators, with the same per-problem seeds and solver
// options the full pipeline uses), deep-copies every clean speech from
// the base store, and freezes the patched store. base must have been
// built from baseRel under the same cfg and opts a full pipeline.Run
// over nextRel would use; the patched store is then bit-identical —
// same speeches, utilities, and texts — to that full rebuild.
//
// The dirty problems are solved sequentially in enumeration order.
// Parallelism would buy little (a healthy delta dirties a few problems)
// and sequential solving keeps evaluator-pool pressure flat while the
// old generation keeps serving.
func Apply(ctx context.Context, base engine.StoreView, baseRel, nextRel *relation.Relation, cfg engine.Config, opts pipeline.Options, images []RowImage) (*Result, error) {
	// Validate resolves empty target/dimension lists in place; the plan
	// and the enumeration below must see the same resolved lists.
	if err := cfg.Validate(nextRel); err != nil {
		return nil, err
	}
	plan := PlanDirty(baseRel, nextRel, cfg, images)

	ps, err := pipeline.NewProblemSolver(nextRel, cfg, opts)
	if err != nil {
		return nil, err
	}

	baseByKey := make(map[string]*engine.StoredSpeech, base.Len())
	for _, sp := range base.Speeches() {
		baseByKey[sp.Query.Key()] = sp
	}

	res := &Result{
		Store:            engine.NewStore(),
		FullDirty:        plan.Full(),
		FullDirtyTargets: plan.FullTargets(),
	}
	// Lazy enumeration: clean problems are retained by query key alone,
	// so only the dirty sliver pays the per-problem selection scan —
	// this is what keeps a small delta's publish cost proportional to
	// the dirty set, not to the problem space.
	carried := make(map[string]bool, len(baseByKey))
	err = engine.EachProblemLazy(nextRel, cfg, func(lp engine.LazyProblem) error {
		res.TotalProblems++
		key := lp.Query.Key()
		dirty := plan.IsDirty(lp.Query.Target, key)
		if dirty {
			res.DirtyProblems++
		}
		if !dirty {
			if sp, ok := baseByKey[key]; ok {
				res.Store.Add(cloneSpeech(sp))
				carried[key] = true
				res.Retained++
				return nil
			}
			// Clean but absent from the base (e.g. the subset only now
			// cleared MinSubsetRows): solve it as a fallback.
		}
		sp, serr := ps.Solve(ctx, lp.Materialize())
		if serr != nil {
			return serr
		}
		res.Store.Add(sp)
		// An upsert replaces any base speech under the same key, so the
		// key is accounted for — RemovedKeys lists only base speeches
		// with no problem left in the new space.
		carried[key] = true
		res.Solved++
		res.Upserts = append(res.Upserts, sp.Persist(nextRel))
		return nil
	})
	if err != nil {
		return nil, err
	}

	for key := range baseByKey {
		if !carried[key] {
			res.RemovedKeys = append(res.RemovedKeys, key)
			res.Removed++
		}
	}
	res.Store.Freeze()
	return res, nil
}
