package delta

import (
	"cicero/internal/engine"
	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Plan is the dirty set of a delta: which problems must be re-solved
// against the new rows and which retained speeches stay valid. It may
// degrade to coarser granularities when the incremental-correctness
// preconditions do not hold — per-target full re-solve when a prior
// moved, whole-store full re-solve when dictionary codes drifted.
type Plan struct {
	// dirty keys problems (canonical query keys) that must re-solve.
	dirty map[string]bool
	// fullTargets marks targets all of whose problems are dirty.
	fullTargets map[string]bool
	// full marks the whole store dirty (dictionary drift).
	full bool

	// Changed counts the row images the plan was derived from.
	Changed int
}

// Full reports whether the plan dirties every problem.
func (p *Plan) Full() bool { return p.full }

// FullTargets returns the targets dirtied wholesale (prior movement),
// in no particular order.
func (p *Plan) FullTargets() []string {
	out := make([]string, 0, len(p.fullTargets))
	for t := range p.fullTargets {
		out = append(out, t)
	}
	return out
}

// DirtyKeys returns the number of individually dirtied problem keys.
func (p *Plan) DirtyKeys() int { return len(p.dirty) }

// IsDirty reports whether the problem identified by its target and
// canonical query key must be re-solved.
func (p *Plan) IsDirty(target, key string) bool {
	if p.full {
		return true
	}
	if p.fullTargets[target] {
		return true
	}
	return p.dirty[key]
}

// dictsArePrefix reports whether every dimension dictionary of base is
// a prefix of the corresponding dictionary of next. When it holds, all
// dictionary codes of the base relation mean the same values in the
// next relation, so retained speeches — whose fact scopes carry base
// codes — stay valid verbatim. Deletion of a value's last row, or an
// op reordering first appearances, breaks it.
func dictsArePrefix(base, next *relation.Relation) bool {
	if base.NumDims() != next.NumDims() {
		return false
	}
	for d := 0; d < base.NumDims(); d++ {
		bv, nv := base.Dim(d).Values(), next.Dim(d).Values()
		if len(bv) > len(nv) {
			return false
		}
		for i := range bv {
			if bv[i] != nv[i] {
				return false
			}
		}
	}
	return true
}

// PlanDirty derives the dirty set for a delta from the changed row
// images. cfg must already be validated against next (dimension and
// target lists resolved).
//
// The projection mirrors the problem generator exactly: a changed row
// dirties, for each affected target, every query over every subset of
// the configured query dimensions whose predicate values match the
// row image — those are precisely the problems whose data subset
// gained, lost, or re-valued the row. Everything outside that set sees
// an identical row multiset in identical order and is provably clean
// (given the prefix-dictionary and stable-prior preconditions this
// function also checks).
func PlanDirty(base, next *relation.Relation, cfg engine.Config, images []RowImage) *Plan {
	p := &Plan{
		dirty:       map[string]bool{},
		fullTargets: map[string]bool{},
		Changed:     len(images),
	}
	if !dictsArePrefix(base, next) {
		p.full = true
		return p
	}

	// Under the global-mean prior, the full-table mean is an input to
	// every problem of a target: if it moved at all (exact float
	// compare — bit-identity is the bar), that whole target re-solves.
	if cfg.Prior == engine.PriorGlobalMean {
		baseFull, nextFull := base.FullView(), next.FullView()
		for _, target := range cfg.Targets {
			bi, ni := base.Schema().TargetIndex(target), next.Schema().TargetIndex(target)
			if bi < 0 || baseFull.Stats(bi).Mean() != nextFull.Stats(ni).Mean() {
				p.fullTargets[target] = true
			}
		}
	}

	dimIdx := make([]int, len(cfg.Dimensions))
	for i, d := range cfg.Dimensions {
		dimIdx[i] = next.Schema().DimIndex(d)
	}
	querySets := fact.DimSubsets(dimIdx, cfg.MaxQueryLen)

	targets := cfg.Targets
	for _, img := range images {
		affected := targets
		if img.Targets != nil {
			affected = affected[:0:0]
			for _, ti := range img.Targets {
				// Image targets index the schema; restrict to the
				// configured ones.
				name := next.Schema().Targets[ti]
				for _, t := range targets {
					if t == name {
						affected = append(affected, t)
						break
					}
				}
			}
		}
		for _, querySet := range querySets {
			named := make([]engine.NamedPredicate, len(querySet))
			for i, d := range querySet {
				named[i] = engine.NamedPredicate{
					Column: next.Schema().Dimensions[d],
					Value:  img.Dims[d],
				}
			}
			for _, target := range affected {
				if p.fullTargets[target] {
					continue
				}
				q := engine.Query{Target: target, Predicates: named}
				p.dirty[q.Key()] = true
			}
		}
	}
	return p
}
