package delta

import (
	"math/rand"

	"cicero/internal/relation"
)

// Synthesize builds a deterministic synthetic delta batch against a
// relation: n update ops that nudge the first target column of rows
// clustered around a seeded anchor row. Clustering matters — real
// correction workloads touch one region of the dimension space (one
// borough, one airline), so the dirty set stays a small fraction of the
// problem space; n rows sampled uniformly would dirty nearly every
// query subset and make the delta path look uselessly pessimistic.
//
// The ops change only target values, never dimension values, and never
// insert or delete, so dictionaries cannot drift and the per-target
// dirty refinement applies: the resulting dirty set is the queries
// matching the anchor's leading dimension values, for target 0 only.
func Synthesize(rel *relation.Relation, n int, seed int64) Batch {
	if rel.NumRows() == 0 || rel.NumTargets() == 0 || n <= 0 {
		return Batch{Dataset: rel.Name()}
	}
	rng := rand.New(rand.NewSource(seed))
	anchor := rng.Intn(rel.NumRows())

	// Cluster: rows sharing the anchor's values on the leading
	// dimensions (all but the last), relaxing one dimension at a time
	// from the right if the cluster is too small to carry n ops.
	var cluster []int
	for fixed := rel.NumDims() - 1; fixed >= 0; fixed-- {
		cluster = cluster[:0]
		for row := 0; row < rel.NumRows(); row++ {
			match := true
			for d := 0; d < fixed; d++ {
				if rel.Dim(d).CodeAt(row) != rel.Dim(d).CodeAt(anchor) {
					match = false
					break
				}
			}
			if match {
				cluster = append(cluster, row)
			}
		}
		if len(cluster) >= n || fixed == 0 {
			break
		}
	}

	b := Batch{Dataset: rel.Name(), Ops: make([]Op, 0, n)}
	for i := 0; i < n; i++ {
		row := cluster[rng.Intn(len(cluster))]
		targets := make([]float64, rel.NumTargets())
		for ti := range targets {
			targets[ti] = rel.Target(ti).At(row)
		}
		targets[0] += 0.1 + 0.05*rng.Float64()
		b.Ops = append(b.Ops, Op{Kind: Update, Row: row, Targets: targets})
	}
	return b
}
