package delta

import (
	"fmt"

	"cicero/internal/engine"
	"cicero/internal/relation"
	"cicero/internal/snapshot"
)

// NewPatch assembles the durable patch artifact for an applied delta:
// the row-op journal of the batch plus the speech journal of the
// result, keyed to the base snapshot's fingerprint. Written with
// snapshot.WritePatchFile, it lets a cold-starting node reconstruct
// the patched generation from base + patch without solving anything.
func NewPatch(baseFingerprint, fingerprint string, b Batch, res *Result) *snapshot.Patch {
	ops := make([]snapshot.PatchOp, len(b.Ops))
	for i, op := range b.Ops {
		ops[i] = snapshot.PatchOp{
			Kind:    string(op.Kind),
			Row:     op.Row,
			Dims:    op.Dims,
			Targets: op.Targets,
		}
	}
	return &snapshot.Patch{
		Dataset:         b.Dataset,
		BaseFingerprint: baseFingerprint,
		Fingerprint:     fingerprint,
		DeltaTag:        b.Tag(),
		Ops:             ops,
		RemovedKeys:     res.RemovedKeys,
		Upserts:         res.Upserts,
	}
}

// BatchOfPatch converts a patch's journal back into an applicable
// batch. Its tag reproduces the original batch's tag, since the op
// fields round-trip exactly.
func BatchOfPatch(p *snapshot.Patch) Batch {
	ops := make([]Op, len(p.Ops))
	for i, op := range p.Ops {
		ops[i] = Op{
			Kind:    OpKind(op.Kind),
			Row:     op.Row,
			Dims:    op.Dims,
			Targets: op.Targets,
		}
	}
	return Batch{Dataset: p.Dataset, Ops: ops}
}

// Replay reconstructs the patched generation from a base store and its
// relation: it re-applies the patch's row journal to get the post-delta
// relation, then assembles the patched store from retained base
// speeches minus RemovedKeys plus Upserts — no solving, so replay cost
// is proportional to the store, not the problem space. The result is
// the same store Apply produced when the patch was written (speech
// persistence is name-resolved, so it survives dictionary
// re-assignment the same way snapshots do).
//
// The caller is responsible for checking p.BaseFingerprint against the
// provenance of base before replaying; Replay itself verifies only the
// dataset identity carried in the journal.
func Replay(base engine.StoreView, baseRel *relation.Relation, p *snapshot.Patch) (*engine.Store, *relation.Relation, error) {
	if p.Dataset != "" && p.Dataset != baseRel.Name() {
		return nil, nil, fmt.Errorf("delta: patch is for dataset %q, base relation is %q", p.Dataset, baseRel.Name())
	}
	tab := FromRelation(baseRel)
	if _, err := tab.Apply(BatchOfPatch(p)); err != nil {
		return nil, nil, fmt.Errorf("delta: replay journal: %w", err)
	}
	next := tab.Rel()

	removed := make(map[string]bool, len(p.RemovedKeys))
	for _, k := range p.RemovedKeys {
		removed[k] = true
	}
	upserted := make(map[string]bool, len(p.Upserts))
	for _, up := range p.Upserts {
		upserted[up.Query.Key()] = true
	}

	store := engine.NewStore()
	for _, sp := range base.Speeches() {
		key := sp.Query.Key()
		if removed[key] || upserted[key] {
			continue
		}
		store.Add(cloneSpeech(sp))
	}
	for i := range p.Upserts {
		store.Add(p.Upserts[i].Restore(next))
	}
	store.Freeze()
	return store, next, nil
}
