// Package delta makes freshness cost proportional to the change, not
// the dataset: it ingests row-level deltas (insert / update / delete
// against a named dataset), maps the changed row images through the
// query/fact-scope structure to the set of dirty problems, re-solves
// only those on the pooled evaluators via the pipeline's one-problem
// solver, and assembles a patched store that is bit-identical to a
// from-scratch rebuild over the same post-delta rows — ready to publish
// through the serving layer's zero-downtime swap (Registry.SwapData /
// httpserve.SwapDataFor).
//
// The correctness argument rests on two invariants. First, a problem is
// clean exactly when no changed row image (the row as it was before the
// op, and as it is after) matches its query predicates on any affected
// target — such a problem's data subset is the same row multiset in the
// same order, so the deterministic solve (per-problem seed keyed on the
// canonical query, order-stable fact enumeration, order-stable kernel
// sums) reproduces the retained speech bit for bit. Second, the planner
// verifies the preconditions that argument needs and degrades honestly
// to a full re-solve when they fail: a dictionary whose code assignment
// drifted (an old value's code changed under the rebuilt rows) dirties
// everything, and under the global-mean prior a target whose full-table
// mean moved dirties every problem of that target, because the prior is
// an input to every one of them.
//
// A published delta can be made durable as a snapshot patch artifact
// (internal/snapshot.Patch): the base snapshot's fingerprint plus the
// op journal and the solved speech upserts, so a cold-starting node
// replays base + patch in milliseconds instead of re-ingesting.
package delta

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
)

// OpKind names a row-level change.
type OpKind string

const (
	// Insert appends a row.
	Insert OpKind = "insert"
	// Update replaces a row's dimension values and/or targets.
	Update OpKind = "update"
	// Delete removes a row.
	Delete OpKind = "delete"
)

// Op is one row-level change. Ops of a batch apply in order, each
// against the table state the previous op left behind; Row indexes into
// that state (deletes shift later rows down by one, inserts append).
type Op struct {
	// Kind is the change type.
	Kind OpKind `json:"op"`
	// Row addresses the target row for update/delete.
	Row int `json:"row,omitempty"`
	// Dims carries the row's dimension values: required for insert,
	// optional for update (nil keeps the current values).
	Dims []string `json:"dims,omitempty"`
	// Targets carries the row's target values: required for insert,
	// optional for update (nil keeps the current values).
	Targets []float64 `json:"targets,omitempty"`
}

// Batch is an ordered set of row ops against one dataset.
type Batch struct {
	// Dataset optionally names the dataset the batch is for; Apply
	// refuses a mismatch so a journal cannot be replayed onto the wrong
	// table. Empty matches any dataset.
	Dataset string `json:"dataset,omitempty"`
	// Ops apply in order.
	Ops []Op `json:"ops"`
}

// Tag renders the batch's provenance tag: a short, deterministic
// content hash that identifies which delta a store, checkpoint, or
// snapshot was built against. It feeds pipeline.FingerprintDelta and
// CheckpointMeta.Delta, so mixing artifacts across different delta
// states is refused rather than silently merged.
func (b Batch) Tag() string {
	if len(b.Ops) == 0 {
		return ""
	}
	h := fnv.New64a()
	for _, op := range b.Ops {
		h.Write([]byte(op.Kind))
		h.Write([]byte(strconv.Itoa(op.Row)))
		for _, d := range op.Dims {
			h.Write([]byte{0})
			h.Write([]byte(d))
		}
		for _, t := range op.Targets {
			h.Write([]byte{1})
			h.Write([]byte(strconv.FormatFloat(t, 'b', -1, 64)))
		}
		h.Write([]byte{2})
	}
	return fmt.Sprintf("ops=%d,hash=%016x", len(b.Ops), h.Sum64())
}

// LoadBatch decodes a JSON batch: either a full Batch object or a bare
// array of ops.
func LoadBatch(r io.Reader) (Batch, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Batch{}, err
	}
	var b Batch
	if err := json.Unmarshal(data, &b); err != nil {
		var ops []Op
		if aerr := json.Unmarshal(data, &ops); aerr != nil {
			return Batch{}, fmt.Errorf("delta: parse batch: %w", err)
		}
		b = Batch{Ops: ops}
	}
	return b, nil
}

// LoadBatchFile reads a JSON batch from path.
func LoadBatchFile(path string) (Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return Batch{}, err
	}
	defer f.Close()
	b, err := LoadBatch(f)
	if err != nil {
		return Batch{}, fmt.Errorf("delta: %s: %w", path, err)
	}
	return b, nil
}

// Save writes the batch as indented JSON to path.
func (b Batch) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
