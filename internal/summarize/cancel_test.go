package summarize

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"cicero/internal/fact"
)

// bigEval builds a problem instance large enough that neither algorithm
// finishes instantly, so cancellation has something to interrupt.
func bigEval(t testing.TB, rows, maxDims int) *Evaluator {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rel := randomRelation(rng, rows)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: maxDims})
	prior := fact.MeanPrior(view, 0)
	return NewEvaluator(view, 0, facts, prior)
}

func TestExactCtxCancelledBeforeStart(t *testing.T) {
	e := bigEval(t, 200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	got := ExactCtx(ctx, e, Options{MaxFacts: 4})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled exact took %v", elapsed)
	}
	if !got.Stats.Cancelled {
		t.Error("pre-cancelled ctx must set Stats.Cancelled")
	}
	if got.Utility < 0 {
		t.Error("cancelled run must return a non-negative utility")
	}
}

func TestExactCtxDeadlineActsAsTimeout(t *testing.T) {
	e := bigEval(t, 300, 3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	got := ExactCtx(ctx, e, Options{MaxFacts: 4})
	if !got.Stats.TimedOut && !got.Stats.Cancelled {
		t.Skip("machine too fast for deadline test; exact finished")
	}
	// A ctx deadline is the documented replacement for opts.Timeout: it
	// must surface as a timeout (best-so-far kept, TimedOut counted),
	// not as a cancellation.
	if got.Stats.Cancelled {
		t.Error("expired ctx deadline must set TimedOut, not Cancelled")
	}
	if got.Utility < 0 {
		t.Error("deadline-bounded run must return a non-negative utility")
	}
}

func TestExactCtxPromptReturn(t *testing.T) {
	// A large instance with m=5 explores an enormous search tree; a
	// mid-flight cancel must return within the ctx-poll granularity, not
	// after the full enumeration.
	e := bigEval(t, 400, 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Summary, 1)
	go func() { done <- ExactCtx(ctx, e, Options{MaxFacts: 5}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case got := <-done:
		if !got.Stats.Cancelled && !got.Stats.TimedOut {
			// The search may legitimately finish before the cancel lands.
			t.Log("exact finished before cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExactCtx did not return promptly after cancel")
	}
}

func TestGreedyCtxCancelledBeforeStart(t *testing.T) {
	e := bigEval(t, 200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := GreedyCtx(ctx, e, Options{MaxFacts: 3})
	if !got.Stats.Cancelled {
		t.Error("pre-cancelled ctx must set Stats.Cancelled")
	}
	if len(got.Facts) != 0 {
		t.Errorf("pre-cancelled greedy committed %d facts", len(got.Facts))
	}
	if got.Utility != 0 {
		t.Errorf("pre-cancelled greedy reports utility %v", got.Utility)
	}
}

func TestGreedyCtxMatchesGreedyWhenUncancelled(t *testing.T) {
	e := bigEval(t, 120, 2)
	plain := Greedy(e, Options{MaxFacts: 3})
	withCtx := GreedyCtx(context.Background(), e, Options{MaxFacts: 3})
	if plain.Utility != withCtx.Utility {
		t.Fatalf("utility differs: %v vs %v", plain.Utility, withCtx.Utility)
	}
	if len(plain.FactIdx) != len(withCtx.FactIdx) {
		t.Fatalf("fact counts differ: %d vs %d", len(plain.FactIdx), len(withCtx.FactIdx))
	}
	for i := range plain.FactIdx {
		if plain.FactIdx[i] != withCtx.FactIdx[i] {
			t.Fatalf("fact %d differs: %d vs %d", i, plain.FactIdx[i], withCtx.FactIdx[i])
		}
	}
}
