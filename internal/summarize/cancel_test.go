package summarize

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"cicero/internal/fact"
)

// bigEval builds a problem instance large enough that neither algorithm
// finishes instantly, so cancellation has something to interrupt.
func bigEval(t testing.TB, rows, maxDims int) *Evaluator {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rel := randomRelation(rng, rows)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: maxDims})
	prior := fact.MeanPrior(view, 0)
	return NewEvaluator(view, 0, facts, prior)
}

func TestExactCtxCancelledBeforeStart(t *testing.T) {
	e := bigEval(t, 200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	got := ExactCtx(ctx, e, Options{MaxFacts: 4})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled exact took %v", elapsed)
	}
	if !got.Stats.Cancelled {
		t.Error("pre-cancelled ctx must set Stats.Cancelled")
	}
	if got.Utility < 0 {
		t.Error("cancelled run must return a non-negative utility")
	}
}

func TestExactCtxDeadlineActsAsTimeout(t *testing.T) {
	e := bigEval(t, 300, 3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	got := ExactCtx(ctx, e, Options{MaxFacts: 4})
	if !got.Stats.TimedOut && !got.Stats.Cancelled {
		t.Skip("machine too fast for deadline test; exact finished")
	}
	// A ctx deadline is the documented replacement for opts.Timeout: it
	// must surface as a timeout (best-so-far kept, TimedOut counted),
	// not as a cancellation.
	if got.Stats.Cancelled {
		t.Error("expired ctx deadline must set TimedOut, not Cancelled")
	}
	if got.Utility < 0 {
		t.Error("deadline-bounded run must return a non-negative utility")
	}
}

func TestExactCtxPromptReturn(t *testing.T) {
	// A large instance with m=5 explores an enormous search tree; a
	// mid-flight cancel must return within the ctx-poll granularity, not
	// after the full enumeration.
	e := bigEval(t, 400, 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Summary, 1)
	go func() { done <- ExactCtx(ctx, e, Options{MaxFacts: 5}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case got := <-done:
		if !got.Stats.Cancelled && !got.Stats.TimedOut {
			// The search may legitimately finish before the cancel lands.
			t.Log("exact finished before cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExactCtx did not return promptly after cancel")
	}
}

func TestExactParallelCtxCancelledBeforeStart(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := bigEval(t, 200, 3)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		got := ExactParallelCtx(ctx, e, Options{MaxFacts: 4, Workers: workers})
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancelled parallel exact took %v", workers, elapsed)
		}
		if !got.Stats.Cancelled {
			t.Errorf("workers=%d: pre-cancelled ctx must set Stats.Cancelled", workers)
		}
		if got.Stats.TimedOut {
			t.Errorf("workers=%d: cancellation must not be reported as a timeout", workers)
		}
		if got.Utility < 0 {
			t.Errorf("workers=%d: cancelled run must return a non-negative utility", workers)
		}
	}
}

func TestExactParallelCtxDeadlineActsAsTimeout(t *testing.T) {
	e := bigEval(t, 300, 3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	got := ExactParallelCtx(ctx, e, Options{MaxFacts: 4, Workers: 4})
	if !got.Stats.TimedOut && !got.Stats.Cancelled {
		t.Skip("machine too fast for deadline test; exact finished")
	}
	// Like ExactCtx: an expired ctx deadline must surface as a timeout
	// (best-so-far kept, TimedOut counted), not as a cancellation, no
	// matter which worker observes it first.
	if got.Stats.Cancelled {
		t.Error("expired ctx deadline must set TimedOut, not Cancelled")
	}
	if got.Utility < 0 {
		t.Error("deadline-bounded run must return a non-negative utility")
	}
}

func TestExactParallelCtxPromptReturn(t *testing.T) {
	// Every worker polls the shared abort state within ctxCheckEvery
	// nodes, so a mid-flight cancel must end the whole pool promptly even
	// while all workers sit deep in their subtrees.
	e := bigEval(t, 400, 3)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Summary, 1)
	go func() { done <- ExactParallelCtx(ctx, e, Options{MaxFacts: 5, Workers: 4}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case got := <-done:
		if !got.Stats.Cancelled && !got.Stats.TimedOut {
			// The search may legitimately finish before the cancel lands.
			t.Log("parallel exact finished before cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExactParallelCtx did not return promptly after cancel")
	}
}

func TestExactParallelCtxTimeoutOption(t *testing.T) {
	// opts.Timeout must bound the run exactly like a ctx deadline and
	// still return a merged best-so-far speech.
	e := bigEval(t, 400, 3)
	start := time.Now()
	got := ExactParallelCtx(context.Background(), e, Options{MaxFacts: 5, Workers: 4, Timeout: 20 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout-bounded parallel exact took %v", elapsed)
	}
	if !got.Stats.TimedOut {
		t.Skip("machine too fast for timeout test; exact finished")
	}
	if got.Utility < 0 {
		t.Error("timed-out run must return a non-negative utility")
	}
}

func TestGreedyCtxCancelledBeforeStart(t *testing.T) {
	e := bigEval(t, 200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := GreedyCtx(ctx, e, Options{MaxFacts: 3})
	if !got.Stats.Cancelled {
		t.Error("pre-cancelled ctx must set Stats.Cancelled")
	}
	if len(got.Facts) != 0 {
		t.Errorf("pre-cancelled greedy committed %d facts", len(got.Facts))
	}
	if got.Utility != 0 {
		t.Errorf("pre-cancelled greedy reports utility %v", got.Utility)
	}
}

func TestGreedyCtxMatchesGreedyWhenUncancelled(t *testing.T) {
	e := bigEval(t, 120, 2)
	plain := Greedy(e, Options{MaxFacts: 3})
	withCtx := GreedyCtx(context.Background(), e, Options{MaxFacts: 3})
	if plain.Utility != withCtx.Utility {
		t.Fatalf("utility differs: %v vs %v", plain.Utility, withCtx.Utility)
	}
	if len(plain.FactIdx) != len(withCtx.FactIdx) {
		t.Fatalf("fact counts differ: %d vs %d", len(plain.FactIdx), len(withCtx.FactIdx))
	}
	for i := range plain.FactIdx {
		if plain.FactIdx[i] != withCtx.FactIdx[i] {
			t.Fatalf("fact %d differs: %d vs %d", i, plain.FactIdx[i], withCtx.FactIdx[i])
		}
	}
}
