package summarize

import (
	"sync"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// evalPool recycles evaluators across problems. An evaluator retains
// every internal buffer (CSR postings, group slots, epoch scratch, undo
// log) between solves, so the generate→solve loop of the pre-processing
// pipeline allocates almost nothing per problem after warm-up.
var evalPool = sync.Pool{New: func() any { return new(Evaluator) }}

// AcquireEvaluator returns a pooled evaluator rebuilt for the given
// problem instance. It is the drop-in replacement for NewEvaluator in
// solve loops; pair every acquire with a ReleaseEvaluator once the
// returned Summary has been read (summaries do not reference evaluator
// internals — fact indices and facts are copied out).
func AcquireEvaluator(view *relation.View, target int, facts []fact.Fact, prior fact.Prior) *Evaluator {
	e := evalPool.Get().(*Evaluator)
	e.Reset(view, target, facts, prior)
	return e
}

// ReleaseEvaluator returns an evaluator to the pool. The evaluator drops
// its references to the problem's view, facts, and prior (so pooling
// never pins a relation in memory) but keeps its scratch buffers for the
// next AcquireEvaluator. The evaluator must not be used after release.
func ReleaseEvaluator(e *Evaluator) {
	if e == nil {
		return
	}
	e.detach()
	evalPool.Put(e)
}
