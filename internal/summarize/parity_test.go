package summarize

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/fact"
)

// This file pins the kernel's observable semantics: seeded scenario
// sweeps across fact counts, dimensionalities and pruning modes are
// compared against golden records captured from the reference
// implementation (the pre-optimization kernel). Any change to selected
// facts, utilities, or pruning counters is a regression, not a tuning
// artifact: the allocation-free kernel must be a pure performance
// transformation.
//
// Regenerate the goldens with:
//
//	PARITY_UPDATE=1 go test ./internal/summarize/ -run TestKernelParity

const parityGoldenPath = "testdata/parity_golden.json"

// parityScenario is one problem shape of the sweep.
type parityScenario struct {
	Name      string
	Rows      int
	MaxDims   int
	MaxFacts  int
	Seed      int64
	ZeroPrior bool
}

func parityScenarios() []parityScenario {
	return []parityScenario{
		{Name: "tiny-1d", Rows: 40, MaxDims: 1, MaxFacts: 2, Seed: 101},
		{Name: "small-2d", Rows: 90, MaxDims: 2, MaxFacts: 3, Seed: 202},
		{Name: "small-2d-zero-prior", Rows: 90, MaxDims: 2, MaxFacts: 3, Seed: 202, ZeroPrior: true},
		{Name: "mid-2d", Rows: 220, MaxDims: 2, MaxFacts: 3, Seed: 303},
		{Name: "mid-3d", Rows: 160, MaxDims: 3, MaxFacts: 3, Seed: 404},
		{Name: "wide-3d-m2", Rows: 260, MaxDims: 3, MaxFacts: 2, Seed: 505},
		{Name: "deep-3d-m4", Rows: 120, MaxDims: 3, MaxFacts: 4, Seed: 606},
	}
}

// parityCounters is the subset of RunStats that must match exactly.
type parityCounters struct {
	FactsEvaluated    int
	GroupsPruned      int
	BoundsComputed    int
	NodesExpanded     int64
	SpeechesEvaluated int64
	JoinedRows        int64
}

func countersOf(s RunStats) parityCounters {
	return parityCounters{
		FactsEvaluated:    s.FactsEvaluated,
		GroupsPruned:      s.GroupsPruned,
		BoundsComputed:    s.BoundsComputed,
		NodesExpanded:     s.NodesExpanded,
		SpeechesEvaluated: s.SpeechesEvaluated,
		JoinedRows:        s.JoinedRows,
	}
}

// parityRun is one (scenario, algorithm) golden record.
type parityRun struct {
	Scenario   string
	Alg        string
	FactIdx    []int32
	Utility    float64
	PriorError float64
	Counters   parityCounters
}

// parityBuild pins the evaluator build itself: the join output sizes and
// group structure.
type parityBuild struct {
	Scenario     string
	NumFacts     int
	NumGroups    int
	GroupFacts   []int
	PostingSizes []int
	JoinedRows   int64
	PriorError   float64
}

type parityGolden struct {
	Builds []parityBuild
	Runs   []parityRun
}

func parityEval(sc parityScenario) *Evaluator {
	rng := rand.New(rand.NewSource(sc.Seed))
	rel := randomRelation(rng, sc.Rows)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: sc.MaxDims})
	var prior fact.Prior = fact.MeanPrior(view, 0)
	if sc.ZeroPrior {
		prior = fact.ConstantPrior(0)
	}
	return NewEvaluator(view, 0, facts, prior)
}

// computeParity runs the full sweep with the current kernel.
func computeParity() parityGolden {
	var g parityGolden
	for _, sc := range parityScenarios() {
		e := parityEval(sc)
		build := parityBuild{
			Scenario:   sc.Name,
			NumFacts:   e.NumFacts(),
			NumGroups:  len(e.Groups()),
			JoinedRows: e.JoinedRows,
			PriorError: e.PriorError(),
		}
		for gi := range e.Groups() {
			build.GroupFacts = append(build.GroupFacts, len(e.Groups()[gi].Facts))
		}
		for fi := 0; fi < e.NumFacts(); fi++ {
			build.PostingSizes = append(build.PostingSizes, e.PostingLen(fi))
		}
		g.Builds = append(g.Builds, build)

		for _, mode := range []PruningMode{PruneNone, PruneNaive, PruneOptimized} {
			e := parityEval(sc)
			joined0 := e.JoinedRows
			sum := Greedy(e, Options{MaxFacts: sc.MaxFacts, Pruning: mode})
			_ = joined0
			g.Runs = append(g.Runs, parityRun{
				Scenario: sc.Name, Alg: mode.String(),
				FactIdx:    append([]int32{}, sum.FactIdx...),
				Utility:    sum.Utility,
				PriorError: sum.PriorError,
				Counters:   countersOf(sum.Stats),
			})
		}
		// E runs greedy for the lower bound, then the exact enumeration,
		// on one shared evaluator — the engine.Solve shape.
		e = parityEval(sc)
		seed := Greedy(e, Options{MaxFacts: sc.MaxFacts})
		sum := Exact(e, Options{MaxFacts: sc.MaxFacts, LowerBound: seed.Utility})
		g.Runs = append(g.Runs, parityRun{
			Scenario: sc.Name, Alg: "E",
			FactIdx:    append([]int32{}, sum.FactIdx...),
			Utility:    sum.Utility,
			PriorError: sum.PriorError,
			Counters:   countersOf(sum.Stats),
		})
	}
	return g
}

// TestKernelParity compares the current kernel against the golden
// records. Utilities are compared with a 1e-9 tolerance (summation order
// inside a utility computation is not pinned); selected facts and every
// work counter must match exactly.
func TestKernelParity(t *testing.T) {
	got := computeParity()
	if os.Getenv("PARITY_UPDATE") == "1" {
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(parityGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(parityGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d builds, %d runs", parityGoldenPath, len(got.Builds), len(got.Runs))
		return
	}
	data, err := os.ReadFile(parityGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with PARITY_UPDATE=1): %v", err)
	}
	var want parityGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	if len(got.Builds) != len(want.Builds) {
		t.Fatalf("builds: got %d, want %d", len(got.Builds), len(want.Builds))
	}
	for i, wb := range want.Builds {
		gb := got.Builds[i]
		if gb.Scenario != wb.Scenario || gb.NumFacts != wb.NumFacts || gb.NumGroups != wb.NumGroups {
			t.Errorf("build %s: shape got %+v want %+v", wb.Scenario, gb, wb)
			continue
		}
		if gb.JoinedRows != wb.JoinedRows {
			t.Errorf("build %s: JoinedRows got %d want %d", wb.Scenario, gb.JoinedRows, wb.JoinedRows)
		}
		if math.Abs(gb.PriorError-wb.PriorError) > 1e-9 {
			t.Errorf("build %s: PriorError got %v want %v", wb.Scenario, gb.PriorError, wb.PriorError)
		}
		for j := range wb.GroupFacts {
			if gb.GroupFacts[j] != wb.GroupFacts[j] {
				t.Errorf("build %s: group %d facts got %d want %d", wb.Scenario, j, gb.GroupFacts[j], wb.GroupFacts[j])
			}
		}
		for j := range wb.PostingSizes {
			if gb.PostingSizes[j] != wb.PostingSizes[j] {
				t.Errorf("build %s: posting %d size got %d want %d", wb.Scenario, j, gb.PostingSizes[j], wb.PostingSizes[j])
			}
		}
	}

	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("runs: got %d, want %d", len(got.Runs), len(want.Runs))
	}
	for i, wr := range want.Runs {
		gr := got.Runs[i]
		name := wr.Scenario + "/" + wr.Alg
		if gr.Scenario != wr.Scenario || gr.Alg != wr.Alg {
			t.Fatalf("run %d: got %s/%s want %s", i, gr.Scenario, gr.Alg, name)
		}
		if len(gr.FactIdx) != len(wr.FactIdx) {
			t.Errorf("%s: FactIdx got %v want %v", name, gr.FactIdx, wr.FactIdx)
		} else {
			for j := range wr.FactIdx {
				if gr.FactIdx[j] != wr.FactIdx[j] {
					t.Errorf("%s: FactIdx got %v want %v", name, gr.FactIdx, wr.FactIdx)
					break
				}
			}
		}
		if math.Abs(gr.Utility-wr.Utility) > 1e-9 {
			t.Errorf("%s: Utility got %v want %v", name, gr.Utility, wr.Utility)
		}
		if math.Abs(gr.PriorError-wr.PriorError) > 1e-9 {
			t.Errorf("%s: PriorError got %v want %v", name, gr.PriorError, wr.PriorError)
		}
		if gr.Counters != wr.Counters {
			t.Errorf("%s: counters got %+v want %+v", name, gr.Counters, wr.Counters)
		}
	}
}

// TestParityDeterminism guards the golden harness itself: two sweeps in
// one process must agree exactly on facts and counters, otherwise the
// goldens would be unstable by construction.
func TestParityDeterminism(t *testing.T) {
	a, b := computeParity(), computeParity()
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if ra.Counters != rb.Counters {
			t.Errorf("%s/%s: counters not deterministic: %+v vs %+v", ra.Scenario, ra.Alg, ra.Counters, rb.Counters)
		}
		if len(ra.FactIdx) != len(rb.FactIdx) {
			t.Errorf("%s/%s: fact counts differ", ra.Scenario, ra.Alg)
			continue
		}
		for j := range ra.FactIdx {
			if ra.FactIdx[j] != rb.FactIdx[j] {
				t.Errorf("%s/%s: FactIdx not deterministic", ra.Scenario, ra.Alg)
				break
			}
		}
	}
}
