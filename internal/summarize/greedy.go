package summarize

import (
	"context"
	"time"

	"cicero/internal/fact"
)

// PruningMode selects the fact-pruning strategy used by the greedy
// algorithm, matching the variants compared in Figure 3 of the paper.
type PruningMode int

const (
	// PruneNone is the base greedy algorithm G-B (Algorithm 2).
	PruneNone PruningMode = iota
	// PruneNaive is G-P: Algorithm 3 with the simple strategy that uses
	// all fact groups for pruning in Algorithm 4's consideration order.
	PruneNaive
	// PruneOptimized is G-O: Algorithm 3 with the pruning plan chosen by
	// the cost model of Section VI-C over Algorithm 4's candidates.
	PruneOptimized
)

// String names the pruning mode as in the paper's plots.
func (m PruningMode) String() string {
	switch m {
	case PruneNone:
		return "G-B"
	case PruneNaive:
		return "G-P"
	case PruneOptimized:
		return "G-O"
	default:
		return "?"
	}
}

// Options configures a summarization run.
type Options struct {
	// MaxFacts is m, the maximal number of facts per speech. The paper's
	// experiments use three ("user retention decreases sharply after
	// three facts").
	MaxFacts int
	// Pruning selects the greedy fact-pruning strategy.
	Pruning PruningMode
	// Sigma is the per-fact utility standard deviation assumed by the
	// cost model (Section VI-C). Zero selects a reasonable default.
	Sigma float64
	// JoinCost and GroupCost are the per-row cost-model weights for
	// utility (join) and bound (group-by) computations. Zeros select
	// defaults of 2 and 1: a join touches both inputs where a group-by
	// scans one.
	JoinCost, GroupCost float64
	// Timeout aborts the exact algorithm, returning the best speech
	// found so far with TimedOut=true in the result. Zero means no limit.
	Timeout time.Duration
	// LowerBound seeds the exact algorithm's pruning bound b. The caller
	// usually passes the greedy utility; zero seeds automatically.
	LowerBound float64
	// Workers bounds the subtree-level parallelism of ExactParallelCtx:
	// root subtrees of the canonical enumeration are distributed over
	// this many goroutines with a shared incumbent bound. Values below 1
	// select runtime.GOMAXPROCS(0). Sequential algorithms ignore it.
	Workers int
	// WarmStart enables incumbent seeding for the parallel exact solver
	// (engine.AlgExactParallel): the greedy speech — and, when a trained
	// ML summarizer is attached at the pipeline level, the ML-predicted
	// fact set, whichever utility is better — seeds LowerBound before
	// enumeration, so pruning rule 2 opens near-optimal instead of at
	// zero. Seeding never changes the returned speech (the bound stays
	// a true lower bound on the optimum); it only shrinks the search.
	WarmStart bool
}

// WithDefaults returns a copy of o with unset fields replaced by the
// package defaults (the paper's parameters). Callers that need to
// reason about the effective configuration — e.g. the pipeline's
// warm-start seeding, which must respect the effective MaxFacts —
// apply it explicitly; the algorithms apply it internally.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.MaxFacts <= 0 {
		o.MaxFacts = 3
	}
	if o.Sigma <= 0 {
		o.Sigma = 0.25
	}
	if o.JoinCost <= 0 {
		o.JoinCost = 2
	}
	if o.GroupCost <= 0 {
		o.GroupCost = 1
	}
	return o
}

// RunStats records work counters for the experiment harness.
type RunStats struct {
	// FactsEvaluated counts exact utility-gain computations.
	FactsEvaluated int
	// GroupsPruned counts fact groups eliminated by bounds.
	GroupsPruned int
	// BoundsComputed counts group-bound (group-by) computations.
	BoundsComputed int
	// NodesExpanded counts partial speeches expanded (exact algorithm).
	NodesExpanded int64
	// SpeechesEvaluated counts full speeches whose exact utility was
	// computed (exact algorithm).
	SpeechesEvaluated int64
	// DominatedSkipped counts exact-search extensions skipped because an
	// equal-signature (same posting list and value) fact was already on
	// the search path, making the extension's marginal gain exactly zero.
	DominatedSkipped int64
	// Workers is the number of search goroutines the parallel exact
	// solver ran with (0 for the sequential algorithms).
	Workers int
	// JoinedRows counts row-fact pairs processed.
	JoinedRows int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// TimedOut reports whether the exact algorithm hit its timeout.
	TimedOut bool
	// Cancelled reports whether the run was aborted by context
	// cancellation; the returned speech reflects only the completed part
	// of the search and carries no optimality guarantee.
	Cancelled bool
}

// Summary is the result of a summarization run: the selected facts, their
// utility, and run statistics.
type Summary struct {
	Facts         []fact.Fact
	FactIdx       []int32
	Utility       float64
	PriorError    float64
	ResidualError float64
	Stats         RunStats
}

// ScaledUtility returns utility normalized by the prior error, the
// "utility (scaled)" metric of Figure 3: 1 means the speech removes all
// deviation, 0 means it is useless.
func (s Summary) ScaledUtility() float64 {
	if s.PriorError == 0 {
		return 1
	}
	return s.Utility / s.PriorError
}

// Speech returns the selected facts as a fact.Speech.
func (s Summary) Speech() fact.Speech {
	return fact.Speech{Facts: append([]fact.Fact(nil), s.Facts...)}
}

// Greedy runs Algorithm 2 without cancellation support; see GreedyCtx.
func Greedy(e *Evaluator, opts Options) Summary {
	return GreedyCtx(context.Background(), e, opts)
}

// GreedyCtx runs Algorithm 2 (with the pruning strategy selected in opts)
// on a prepared evaluator and returns the near-optimal speech. The greedy
// choice of the maximal-gain fact per iteration guarantees utility within
// (1−1/e) of the optimum (Theorem 3).
//
// Cancelling ctx (or letting its deadline expire) aborts the run within
// ctxCheckEvery fact evaluations: the facts committed by completed
// iterations are returned with Stats.Cancelled set, and the iteration
// whose scan was interrupted is discarded so a partially scanned
// candidate set can never produce a non-greedy choice.
func GreedyCtx(ctx context.Context, e *Evaluator, opts Options) Summary {
	opts = opts.withDefaults()
	start := time.Now()
	e.ResetGreedy()
	joined0 := e.JoinedRows

	var stats RunStats
	// The pruning plan depends only on the group structure and cost-model
	// parameters, which are invariant across greedy iterations, so it is
	// planned once per run (the paper's OPT_PRUNE inputs — optimizer
	// statistics and fact counts — are equally iteration-invariant).
	var plan *Plan
	switch opts.Pruning {
	case PruneNaive:
		p := NaivePlan(e, opts)
		plan = &p
	case PruneOptimized:
		p := OptPrune(e, opts)
		plan = &p
	}
	chosen := make([]int32, 0, opts.MaxFacts)
	chosenSet := e.chosenMarkScratch()
	for iter := 0; iter < opts.MaxFacts; iter++ {
		if ctx.Err() != nil {
			stats.Cancelled = true
			break
		}
		bestFact, bestGain := selectBestFact(ctx, e, opts, plan, chosenSet, &stats)
		if stats.Cancelled {
			break
		}
		if bestFact < 0 || bestGain <= 0 {
			break
		}
		e.CommitFact(int(bestFact))
		chosen = append(chosen, bestFact)
		chosenSet[bestFact] = true
	}

	residual := e.CurrentError()
	facts := make([]fact.Fact, len(chosen))
	for i, fi := range chosen {
		facts[i] = e.Facts()[fi]
	}
	stats.Elapsed = time.Since(start)
	stats.JoinedRows = e.JoinedRows - joined0
	return Summary{
		Facts:         facts,
		FactIdx:       chosen,
		Utility:       e.PriorError() - residual,
		PriorError:    e.PriorError(),
		ResidualError: residual,
		Stats:         stats,
	}
}

// selectBestFact returns the fact with maximal utility gain for the
// current greedy state, using the configured pruning strategy. Ties are
// broken toward the smallest fact index so that all pruning modes select
// identical speeches (pruning only changes scan order, never the
// argmax). A cancelled ctx aborts the scan (polled every ctxCheckEvery
// fact evaluations) and sets stats.Cancelled; the partial argmax must
// then be discarded by the caller. chosenSet is the evaluator's dense
// already-chosen mark, indexed by fact id.
func selectBestFact(ctx context.Context, e *Evaluator, opts Options, plan *Plan, chosenSet []bool, stats *RunStats) (int32, float64) {
	best := int32(-1)
	bestGain := 0.0
	watchCtx := ctx.Done() != nil
	evals := int64(0)
	// eval scores one candidate and reports whether to keep scanning.
	eval := func(fi int32) bool {
		if watchCtx {
			if evals++; evals%ctxCheckEvery == 0 && ctx.Err() != nil {
				stats.Cancelled = true
				return false
			}
		}
		if chosenSet[fi] {
			return true
		}
		gain := e.GreedyGain(int(fi))
		stats.FactsEvaluated++
		if gain <= 0 {
			return true
		}
		if gain > bestGain || (gain == bestGain && (best < 0 || fi < best)) {
			bestGain, best = gain, fi
		}
		return true
	}
	scan := func(facts []int32) bool {
		for _, fi := range facts {
			if !eval(fi) {
				return false
			}
		}
		return true
	}

	if opts.Pruning == PruneNone || plan == nil {
		for fi := int32(0); fi < int32(e.NumFacts()); fi++ {
			if !eval(fi) {
				break
			}
		}
		return best, bestGain
	}

	// Algorithm 3: source groups first, then bound-based target pruning,
	// then whatever survives.
	groups := e.Groups()
	alive := e.aliveMarkScratch()
	for _, gi := range plan.Source {
		if !scan(groups[gi].Facts) {
			return best, bestGain
		}
		alive[gi] = false // scanned; exclude from the final pass
	}
	// Deviation bounds are non-negative, so with no positive source gain
	// the test m > u can never succeed — skip the bound phase entirely
	// (identical outcome, no wasted group-by passes).
	if bestGain > 0 {
		for _, ti := range plan.Targets {
			if !alive[ti] {
				continue
			}
			if watchCtx && ctx.Err() != nil {
				stats.Cancelled = true
				return best, bestGain
			}
			bound := e.GroupBound(&groups[ti])
			stats.BoundsComputed++
			if bestGain > bound {
				for gi := range groups {
					if alive[gi] && dimsSubset(groups[ti].Dims, groups[gi].Dims) {
						alive[gi] = false
						stats.GroupsPruned++
					}
				}
			}
		}
	}
	for gi := range groups {
		if !alive[gi] {
			continue
		}
		if !scan(groups[gi].Facts) {
			return best, bestGain
		}
	}
	return best, bestGain
}
