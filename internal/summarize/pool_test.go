package summarize

import (
	"sync"
	"testing"
)

// solveAll runs every algorithm family on one evaluator and returns the
// summaries in a fixed order: G-B, G-P, G-O, then greedy-seeded E.
func solveAll(e *Evaluator, maxFacts int) []Summary {
	var out []Summary
	for _, mode := range []PruningMode{PruneNone, PruneNaive, PruneOptimized} {
		out = append(out, Greedy(e, Options{MaxFacts: maxFacts, Pruning: mode}))
	}
	seed := Greedy(e, Options{MaxFacts: maxFacts})
	out = append(out, Exact(e, Options{MaxFacts: maxFacts, LowerBound: seed.Utility}))
	return out
}

func sameSummary(t *testing.T, name string, got, want Summary) {
	t.Helper()
	if got.Utility != want.Utility {
		t.Errorf("%s: utility %v != %v", name, got.Utility, want.Utility)
	}
	if got.PriorError != want.PriorError {
		t.Errorf("%s: prior error %v != %v", name, got.PriorError, want.PriorError)
	}
	if len(got.FactIdx) != len(want.FactIdx) {
		t.Fatalf("%s: facts %v != %v", name, got.FactIdx, want.FactIdx)
	}
	for i := range want.FactIdx {
		if got.FactIdx[i] != want.FactIdx[i] {
			t.Fatalf("%s: facts %v != %v", name, got.FactIdx, want.FactIdx)
		}
	}
	if countersOf(got.Stats) != countersOf(want.Stats) {
		t.Errorf("%s: counters %+v != %+v", name, countersOf(got.Stats), countersOf(want.Stats))
	}
}

// TestResetMatchesFresh drives one evaluator through the whole parity
// sweep via Reset — problems grow and shrink in rows, facts, and groups
// — and requires bit-identical outputs to a freshly built evaluator at
// every step. This is the contract that makes pooling safe.
func TestResetMatchesFresh(t *testing.T) {
	var reused Evaluator
	scenarios := parityScenarios()
	// Run the sweep twice, the second pass in reverse order, so every
	// grow/shrink transition between neighboring problem shapes occurs.
	for pass := 0; pass < 2; pass++ {
		for i := range scenarios {
			sc := scenarios[i]
			if pass == 1 {
				sc = scenarios[len(scenarios)-1-i]
			}
			fresh := parityEval(sc)
			reused.Reset(fresh.View(), fresh.Target(), fresh.Facts(), fresh.Prior())
			if reused.JoinedRows != fresh.JoinedRows {
				t.Errorf("%s: build JoinedRows %d != %d", sc.Name, reused.JoinedRows, fresh.JoinedRows)
			}
			gotAll := solveAll(&reused, sc.MaxFacts)
			wantAll := solveAll(fresh, sc.MaxFacts)
			names := []string{"G-B", "G-P", "G-O", "E"}
			for j := range wantAll {
				sameSummary(t, sc.Name+"/"+names[j], gotAll[j], wantAll[j])
			}
		}
	}
}

// TestAcquireReleaseMatchesFresh exercises the pool API itself,
// including concurrent acquire/solve/release cycles from many
// goroutines (the pipeline's worker shape).
func TestAcquireReleaseMatchesFresh(t *testing.T) {
	scenarios := parityScenarios()
	want := make([][]Summary, len(scenarios))
	for i, sc := range scenarios {
		want[i] = solveAll(parityEval(sc), sc.MaxFacts)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i, sc := range scenarios {
					fresh := parityEval(sc)
					e := AcquireEvaluator(fresh.View(), fresh.Target(), fresh.Facts(), fresh.Prior())
					got := solveAll(e, sc.MaxFacts)
					ReleaseEvaluator(e)
					for j := range want[i] {
						if got[j].Utility != want[i][j].Utility || len(got[j].FactIdx) != len(want[i][j].FactIdx) {
							t.Errorf("%s: pooled result diverged", sc.Name)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
