package summarize

import (
	"math/rand"
	"sync"
	"testing"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// parityWorkerCounts are the worker counts the parallel oracle sweeps:
// degenerate (must equal the sequential kernel counter-for-counter),
// minimal contention, and oversubscribed relative to the test machine.
var parityWorkerCounts = []int{1, 2, 8}

// requireSameSpeech asserts the parallel summary is bit-identical to the
// sequential one in everything the solver contract pins: selected facts,
// utility, and the error decomposition.
func requireSameSpeech(t *testing.T, name string, seq, par Summary) {
	t.Helper()
	if par.Utility != seq.Utility {
		t.Errorf("%s: Utility %v != sequential %v", name, par.Utility, seq.Utility)
	}
	if par.PriorError != seq.PriorError || par.ResidualError != seq.ResidualError {
		t.Errorf("%s: error decomposition (%v,%v) != sequential (%v,%v)",
			name, par.PriorError, par.ResidualError, seq.PriorError, seq.ResidualError)
	}
	if len(par.FactIdx) != len(seq.FactIdx) {
		t.Errorf("%s: FactIdx %v != sequential %v", name, par.FactIdx, seq.FactIdx)
		return
	}
	for i := range seq.FactIdx {
		if par.FactIdx[i] != seq.FactIdx[i] {
			t.Errorf("%s: FactIdx %v != sequential %v", name, par.FactIdx, seq.FactIdx)
			return
		}
	}
}

// exactParallelOracle runs the sequential and parallel exact kernels on
// identical fresh evaluators and checks the parity contract: output
// bit-identical at every worker count, and with one worker the full
// pruning-relevant statistics identical too (same enumeration, same
// bound timeline, same dominance skips).
func exactParallelOracle(t *testing.T, name string, build func() *Evaluator, opts Options) {
	t.Helper()
	seq := ExactCtx(t.Context(), build(), opts)
	for _, workers := range parityWorkerCounts {
		o := opts
		o.Workers = workers
		par := ExactParallelCtx(t.Context(), build(), o)
		tag := name
		requireSameSpeech(t, tag, seq, par)
		if par.Stats.Workers != workers {
			t.Errorf("%s: Stats.Workers = %d, want %d", tag, par.Stats.Workers, workers)
		}
		if par.Stats.FactsEvaluated != seq.Stats.FactsEvaluated {
			t.Errorf("%s: FactsEvaluated %d != sequential %d", tag, par.Stats.FactsEvaluated, seq.Stats.FactsEvaluated)
		}
		if workers == 1 {
			if par.Stats.NodesExpanded != seq.Stats.NodesExpanded ||
				par.Stats.SpeechesEvaluated != seq.Stats.SpeechesEvaluated ||
				par.Stats.DominatedSkipped != seq.Stats.DominatedSkipped ||
				par.Stats.JoinedRows != seq.Stats.JoinedRows {
				t.Errorf("%s: 1-worker counters diverge from sequential:\n  par %+v\n  seq %+v",
					tag, par.Stats, seq.Stats)
			}
		}
	}
}

// TestExactParallelParityCorpus sweeps the golden parity corpus: for
// every scenario, cold (LowerBound 0) and warm (greedy-seeded) runs must
// be bit-identical to ExactCtx at 1, 2 and 8 workers.
func TestExactParallelParityCorpus(t *testing.T) {
	for _, sc := range parityScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			seedU := Greedy(parityEval(sc), Options{MaxFacts: sc.MaxFacts}).Utility
			exactParallelOracle(t, sc.Name+"/cold",
				func() *Evaluator { return parityEval(sc) },
				Options{MaxFacts: sc.MaxFacts})
			exactParallelOracle(t, sc.Name+"/warm",
				func() *Evaluator { return parityEval(sc) },
				Options{MaxFacts: sc.MaxFacts, LowerBound: seedU})
		})
	}
}

// TestExactParallelParityRandom widens the oracle beyond the pinned
// corpus: randomized relations across sizes, dimensionalities and speech
// lengths, cold and greedy-warm.
func TestExactParallelParityRandom(t *testing.T) {
	shapes := []struct {
		rows, maxDims, maxFacts int
	}{
		{30, 1, 2},
		{75, 2, 3},
		{140, 2, 4},
		{110, 3, 3},
	}
	for seed := int64(1); seed <= 6; seed++ {
		for _, sh := range shapes {
			build := func() *Evaluator {
				rng := rand.New(rand.NewSource(seed * 1000))
				rel := randomRelation(rng, sh.rows)
				view := rel.FullView()
				facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: sh.maxDims})
				return NewEvaluator(view, 0, facts, fact.MeanPrior(view, 0))
			}
			name := "seed"
			seedU := Greedy(build(), Options{MaxFacts: sh.maxFacts}).Utility
			exactParallelOracle(t, name+"/cold", build, Options{MaxFacts: sh.maxFacts})
			exactParallelOracle(t, name+"/warm", build, Options{MaxFacts: sh.maxFacts, LowerBound: seedU})
		}
	}
}

// TestExactParallelDeterministicOutput pins run-to-run determinism at a
// contended worker count: discovery order varies with scheduling, but
// the merged speech may not.
func TestExactParallelDeterministicOutput(t *testing.T) {
	e0 := bigEval(t, 250, 3)
	ref := ExactParallelCtx(t.Context(), bigEval(t, 250, 3), Options{MaxFacts: 3, Workers: 8})
	_ = e0
	for run := 0; run < 10; run++ {
		got := ExactParallelCtx(t.Context(), bigEval(t, 250, 3), Options{MaxFacts: 3, Workers: 8})
		requireSameSpeech(t, "rerun", ref, got)
	}
}

// TestExactParallelStatsAggregation checks the exact-aggregation
// contract for the concurrent counters: the merged JoinedRows must equal
// the evaluator's own join accounting for the run (per-worker locals
// summed at join — a racy shared increment would drop updates and
// break this equality), and the work counters must be coherent.
func TestExactParallelStatsAggregation(t *testing.T) {
	for _, workers := range []int{2, 8} {
		e := bigEval(t, 200, 3)
		joined0 := e.JoinedRows
		got := ExactParallelCtx(t.Context(), e, Options{MaxFacts: 3, Workers: workers})
		if got.Stats.JoinedRows != e.JoinedRows-joined0 {
			t.Errorf("workers=%d: Stats.JoinedRows %d != evaluator delta %d",
				workers, got.Stats.JoinedRows, e.JoinedRows-joined0)
		}
		if got.Stats.NodesExpanded <= 0 || got.Stats.SpeechesEvaluated <= 0 {
			t.Errorf("workers=%d: implausible counters %+v", workers, got.Stats)
		}
		if got.Stats.NodesExpanded < got.Stats.SpeechesEvaluated {
			// Every evaluated speech is a chain of expanded nodes, so the
			// node count bounds the speech count from above.
			t.Errorf("workers=%d: NodesExpanded %d < SpeechesEvaluated %d",
				workers, got.Stats.NodesExpanded, got.Stats.SpeechesEvaluated)
		}
	}
}

// dupFactEval builds an evaluator over a relation whose second
// dimension mirrors the first: every single-dimension fact then has a
// twin with an identical posting list and value under a different scope
// (a=x vs b=x' vs a=x∧b=x'), the exact shape dominance pruning exists
// to skip. (Literal duplicate facts cannot survive the evaluator's
// slot resolution — the last clone absorbs the rows — so correlated
// scopes are the real-world source of dominated facts.)
func dupFactEval(t testing.TB) *Evaluator {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	b := relation.NewBuilder("corr", relation.Schema{
		Dimensions: []string{"a", "b"},
		Targets:    []string{"v"},
	})
	av := []string{"a0", "a1", "a2", "a3"}
	mv := []string{"m0", "m1", "m2", "m3"}
	for i := 0; i < 120; i++ {
		k := rng.Intn(len(av))
		b.MustAddRow([]string{av[k], mv[k]}, []float64{rng.NormFloat64()*10 + float64(k)*8})
	}
	rel := b.Freeze()
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	return NewEvaluator(view, 0, facts, fact.MeanPrior(view, 0))
}

// TestExactParallelDominancePruning feeds both kernels a correlated
// relation full of equal-signature facts: the dominance skip must fire
// (so the duplicated search space is never re-explored) and
// sequential/parallel must still agree bit-for-bit.
func TestExactParallelDominancePruning(t *testing.T) {
	seq := ExactCtx(t.Context(), dupFactEval(t), Options{MaxFacts: 3})
	if seq.Stats.DominatedSkipped == 0 {
		t.Error("duplicate facts present but DominatedSkipped == 0 in sequential run")
	}
	exactParallelOracle(t, "dup-facts",
		func() *Evaluator { return dupFactEval(t) },
		Options{MaxFacts: 3})
}

// TestExactParallelEmptyProblem covers the m==0 degenerate path: an
// evaluator with no candidate facts must return the empty speech with
// the same single empty-speech evaluation the sequential kernel counts.
func TestExactParallelEmptyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := randomRelation(rng, 20)
	view := rel.FullView()
	e := NewEvaluator(view, 0, nil, fact.MeanPrior(view, 0))
	seq := ExactCtx(t.Context(), e, Options{MaxFacts: 3})
	par := ExactParallelCtx(t.Context(), e, Options{MaxFacts: 3, Workers: 4})
	requireSameSpeech(t, "empty", seq, par)
	if par.Stats.SpeechesEvaluated != seq.Stats.SpeechesEvaluated {
		t.Errorf("empty problem: SpeechesEvaluated %d != sequential %d",
			par.Stats.SpeechesEvaluated, seq.Stats.SpeechesEvaluated)
	}
	if len(par.FactIdx) != 0 {
		t.Errorf("empty problem returned facts %v", par.FactIdx)
	}
}

// TestExactParallelConcurrentCalls runs many ExactParallelCtx solves at
// once, the pipeline's problem-level × subtree-level shape. The calls
// recycle workers through the shared exactWorkerPool, so a result that
// still aliased a pooled worker's best slice after release would be
// overwritten by a concurrent call's search (use-after-release) — each
// result must match its problem's sequential reference bit-for-bit.
func TestExactParallelConcurrentCalls(t *testing.T) {
	builds := []func() *Evaluator{
		func() *Evaluator { return bigEval(t, 200, 3) },
		func() *Evaluator { return dupFactEval(t) },
	}
	refs := make([]Summary, len(builds))
	for i, build := range builds {
		refs[i] = ExactCtx(t.Context(), build(), Options{MaxFacts: 3})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				i := (g + iter) % len(builds)
				got := ExactParallelCtx(t.Context(), builds[i](), Options{MaxFacts: 3, Workers: 2})
				requireSameSpeech(t, "concurrent", refs[i], got)
			}
		}()
	}
	wg.Wait()
}

// TestExactParallelWarmStartPrunesMore pins the warm-start payoff on the
// sequential node counts (deterministic): a greedy-seeded incumbent must
// expand strictly fewer nodes than a cold start whenever the search is
// non-trivial. The same holds for the parallel kernel statistically, but
// only the sequential counters are scheduling-independent.
func TestExactParallelWarmStartPrunesMore(t *testing.T) {
	e := bigEval(t, 220, 3)
	seedU := Greedy(e, Options{MaxFacts: 3}).Utility
	if seedU <= 0 {
		t.Skip("greedy found nothing to seed with")
	}
	cold := ExactCtx(t.Context(), bigEval(t, 220, 3), Options{MaxFacts: 3})
	warm := ExactCtx(t.Context(), bigEval(t, 220, 3), Options{MaxFacts: 3, LowerBound: seedU})
	if warm.Stats.NodesExpanded >= cold.Stats.NodesExpanded {
		t.Errorf("warm start expanded %d nodes, cold %d — expected strictly fewer",
			warm.Stats.NodesExpanded, cold.Stats.NodesExpanded)
	}
	requireSameSpeech(t, "warm-vs-cold", cold, warm)
}
