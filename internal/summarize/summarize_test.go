package summarize

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// buildFlights reproduces the paper's running example (Figure 1).
func buildFlights(t testing.TB) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("flights", relation.Schema{
		Dimensions: []string{"region", "season"},
		Targets:    []string{"delay"},
	})
	delay := map[[2]string]float64{
		{"South", "Spring"}: 20, {"South", "Summer"}: 20,
		{"West", "Spring"}: 20, {"West", "Summer"}: 20,
		{"East", "Winter"}: 10, {"South", "Winter"}: 10,
		{"West", "Winter"}: 10, {"North", "Winter"}: 10,
	}
	for _, r := range []string{"East", "South", "West", "North"} {
		for _, s := range []string{"Spring", "Summer", "Fall", "Winter"} {
			b.MustAddRow([]string{r, s}, []float64{delay[[2]string{r, s}]})
		}
	}
	return b.Freeze()
}

// randomRelation builds a random relation for property tests.
func randomRelation(rng *rand.Rand, rows int) *relation.Relation {
	b := relation.NewBuilder("rand", relation.Schema{
		Dimensions: []string{"a", "b", "c"},
		Targets:    []string{"v"},
	})
	av := []string{"a0", "a1", "a2", "a3"}
	bv := []string{"b0", "b1", "b2"}
	cv := []string{"c0", "c1"}
	for i := 0; i < rows; i++ {
		b.MustAddRow(
			[]string{av[rng.Intn(len(av))], bv[rng.Intn(len(bv))], cv[rng.Intn(len(cv))]},
			[]float64{rng.NormFloat64()*10 + float64(rng.Intn(3))*15},
		)
	}
	return b.Freeze()
}

func newEval(t testing.TB, rel *relation.Relation, maxDims int) *Evaluator {
	t.Helper()
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: maxDims})
	prior := fact.MeanPrior(view, 0)
	return NewEvaluator(view, 0, facts, prior)
}

func TestEvaluatorPostings(t *testing.T) {
	rel := buildFlights(t)
	e := newEval(t, rel, 2)
	if e.NumFacts() != 25 {
		t.Fatalf("facts = %d, want 25", e.NumFacts())
	}
	if e.NumRows() != 16 {
		t.Fatalf("rows = %d", e.NumRows())
	}
	// Postings per group partition the rows: overall fact covers 16,
	// each single-dim fact 4, each two-dim fact 1.
	for fi, f := range e.Facts() {
		want := 16
		switch f.Scope.Len() {
		case 1:
			want = 4
		case 2:
			want = 1
		}
		if got := e.PostingLen(fi); got != want {
			t.Errorf("fact %v posting size %d, want %d", f.Scope.Key(), got, want)
		}
	}
	// Groups: 1 empty + 2 single + 1 pair = 4.
	if len(e.Groups()) != 4 {
		t.Errorf("groups = %d, want 4", len(e.Groups()))
	}
}

func TestSingleFactUtilityMatchesDefinition(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	prior := fact.MeanPrior(view, 0)
	e := NewEvaluator(view, 0, facts, prior)
	for fi := range facts {
		got := e.SingleFactUtility(fi)
		want := fact.Utility(view, facts[fi:fi+1], prior, 0)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("fact %v utility %v, want %v", facts[fi].Scope.Key(), got, want)
		}
	}
}

func TestSpeechUtilityMatchesDefinition(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	prior := fact.MeanPrior(view, 0)
	e := NewEvaluator(view, 0, facts, prior)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3)
		idx := make([]int32, 0, n)
		sel := make([]fact.Fact, 0, n)
		for i := 0; i < n; i++ {
			fi := int32(rng.Intn(len(facts)))
			idx = append(idx, fi)
			sel = append(sel, facts[fi])
		}
		got := e.SpeechUtility(idx)
		want := fact.Utility(view, sel, prior, 0)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: speech utility %v, want %v", trial, got, want)
		}
	}
}

// TestGreedyRunningExample reproduces Example 7: with a zero prior, the
// greedy algorithm first selects the Winter or season-spanning fact with
// utility 40, then complements it.
func TestGreedyRunningExample(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	e := NewEvaluator(view, 0, facts, fact.ConstantPrior(0))

	got := Greedy(e, Options{MaxFacts: 2})
	if len(got.Facts) != 2 {
		t.Fatalf("selected %d facts, want 2", len(got.Facts))
	}
	// Example 7: first fact has utility 40 (Winter=10 removes 4*10, or a
	// region fact removing the 20s partially). Verify the greedy picks a
	// maximal single fact: no single fact has higher utility than the
	// first selected one.
	first := got.FactIdx[0]
	e2 := NewEvaluator(view, 0, facts, fact.ConstantPrior(0))
	bestSingle := 0.0
	for fi := range facts {
		if u := e2.SingleFactUtility(fi); u > bestSingle {
			bestSingle = u
		}
	}
	e3 := NewEvaluator(view, 0, facts, fact.ConstantPrior(0))
	if u := e3.SingleFactUtility(int(first)); math.Abs(u-bestSingle) > 1e-9 {
		t.Errorf("greedy first fact utility %v, want max %v", u, bestSingle)
	}
}

func TestGreedyStopsWhenNoGain(t *testing.T) {
	// A constant target column: the overall fact explains everything, so
	// greedy should stop after one fact (or zero with a perfect prior).
	b := relation.NewBuilder("const", relation.Schema{
		Dimensions: []string{"d"}, Targets: []string{"v"},
	})
	for i := 0; i < 10; i++ {
		b.MustAddRow([]string{string(rune('a' + i%3))}, []float64{5})
	}
	rel := b.Freeze()
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 1})
	e := NewEvaluator(view, 0, facts, fact.ConstantPrior(0))
	got := Greedy(e, Options{MaxFacts: 3})
	if len(got.Facts) != 1 {
		t.Errorf("greedy selected %d facts, want 1 (no residual gain)", len(got.Facts))
	}
	if got.ResidualError > 1e-9 {
		t.Errorf("residual = %v, want 0", got.ResidualError)
	}
	// Perfect prior: zero facts help.
	e2 := NewEvaluator(view, 0, facts, fact.ConstantPrior(5))
	got2 := Greedy(e2, Options{MaxFacts: 3})
	if len(got2.Facts) != 0 {
		t.Errorf("perfect prior selected %d facts, want 0", len(got2.Facts))
	}
	if got2.ScaledUtility() != 1 {
		t.Errorf("scaled utility with zero prior error = %v, want 1", got2.ScaledUtility())
	}
}

func TestExactOptimalOnRunningExample(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	prior := fact.ConstantPrior(0)
	e := NewEvaluator(view, 0, facts, prior)

	greedy := Greedy(e, Options{MaxFacts: 2})
	exact := Exact(e, Options{MaxFacts: 2, LowerBound: greedy.Utility})
	if exact.Utility < greedy.Utility-1e-9 {
		t.Fatalf("exact %v worse than greedy %v", exact.Utility, greedy.Utility)
	}
	// Verify exact result against brute force without any pruning.
	brute := bruteForceBest(view, facts, prior, 2)
	if math.Abs(exact.Utility-brute) > 1e-9 {
		t.Errorf("exact = %v, brute force = %v", exact.Utility, brute)
	}
}

// bruteForceBest enumerates every fact pair/triple without pruning.
func bruteForceBest(view *relation.View, facts []fact.Fact, prior fact.Prior, m int) float64 {
	best := 0.0
	var rec func(start int, sel []fact.Fact)
	rec = func(start int, sel []fact.Fact) {
		if u := fact.Utility(view, sel, prior, 0); u > best {
			best = u
		}
		if len(sel) == m {
			return
		}
		for i := start; i < len(facts); i++ {
			rec(i+1, append(sel, facts[i]))
		}
	}
	rec(0, nil)
	return best
}

// TestExactVsBruteForceRandom cross-checks Algorithm 1 against unpruned
// enumeration on random relations — the central optimality property.
func TestExactVsBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		rel := randomRelation(rng, 40)
		view := rel.FullView()
		facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 1})
		prior := fact.MeanPrior(view, 0)
		e := NewEvaluator(view, 0, facts, prior)
		greedy := Greedy(e, Options{MaxFacts: 2})
		exact := Exact(e, Options{MaxFacts: 2, LowerBound: greedy.Utility})
		brute := bruteForceBest(view, facts, prior, 2)
		if math.Abs(exact.Utility-brute) > 1e-6 {
			t.Fatalf("trial %d: exact %v != brute %v", trial, exact.Utility, brute)
		}
		if greedy.Utility > exact.Utility+1e-9 {
			t.Fatalf("trial %d: greedy %v exceeds optimum %v", trial, greedy.Utility, exact.Utility)
		}
	}
}

// TestGreedyApproximationGuarantee verifies Theorem 3 empirically: greedy
// utility is within (1−1/e) of the optimum on random instances.
func TestGreedyApproximationGuarantee(t *testing.T) {
	bound := 1 - 1/math.E
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		rel := randomRelation(rng, 60)
		view := rel.FullView()
		facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
		prior := fact.MeanPrior(view, 0)
		e := NewEvaluator(view, 0, facts, prior)
		greedy := Greedy(e, Options{MaxFacts: 3})
		exact := Exact(e, Options{MaxFacts: 3, LowerBound: greedy.Utility})
		if exact.Utility == 0 {
			continue
		}
		if ratio := greedy.Utility / exact.Utility; ratio < bound-1e-9 {
			t.Fatalf("trial %d: greedy/optimal = %v < %v", trial, ratio, bound)
		}
	}
}

// TestPruningModesAgree verifies that G-B, G-P and G-O return identical
// speeches — pruning must never change the greedy argmax (Section VI-A:
// the guarantees only hold if the true maximum-gain fact is selected).
func TestPruningModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		rel := randomRelation(rng, 80)
		view := rel.FullView()
		facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
		prior := fact.MeanPrior(view, 0)

		base := Greedy(NewEvaluator(view, 0, facts, prior), Options{MaxFacts: 3, Pruning: PruneNone})
		naive := Greedy(NewEvaluator(view, 0, facts, prior), Options{MaxFacts: 3, Pruning: PruneNaive})
		opt := Greedy(NewEvaluator(view, 0, facts, prior), Options{MaxFacts: 3, Pruning: PruneOptimized})

		if math.Abs(base.Utility-naive.Utility) > 1e-9 || math.Abs(base.Utility-opt.Utility) > 1e-9 {
			t.Fatalf("trial %d: utilities differ: G-B=%v G-P=%v G-O=%v",
				trial, base.Utility, naive.Utility, opt.Utility)
		}
		for i := range base.FactIdx {
			if base.FactIdx[i] != naive.FactIdx[i] || base.FactIdx[i] != opt.FactIdx[i] {
				t.Fatalf("trial %d: selected facts differ at %d", trial, i)
			}
		}
	}
}

// TestPruningReducesEvaluations checks that optimized pruning evaluates
// no more facts than base greedy scans on a skewed instance where one
// coarse fact dominates.
func TestPruningReducesEvaluations(t *testing.T) {
	// Construct a relation where a single-dimension fact explains nearly
	// all deviation, so bounds prune the fine-grained groups.
	b := relation.NewBuilder("skew", relation.Schema{
		Dimensions: []string{"big", "noise1", "noise2"},
		Targets:    []string{"v"},
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		big := "low"
		v := 0.0
		if i%2 == 0 {
			big, v = "high", 100
		}
		b.MustAddRow(
			[]string{big, string(rune('a' + rng.Intn(10))), string(rune('a' + rng.Intn(10)))},
			[]float64{v + rng.Float64()},
		)
	}
	rel := b.Freeze()
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	prior := fact.MeanPrior(view, 0)

	base := Greedy(NewEvaluator(view, 0, facts, prior), Options{MaxFacts: 1, Pruning: PruneNone})
	opt := Greedy(NewEvaluator(view, 0, facts, prior), Options{MaxFacts: 1, Pruning: PruneOptimized})
	if math.Abs(base.Utility-opt.Utility) > 1e-9 {
		t.Fatalf("utilities differ: %v vs %v", base.Utility, opt.Utility)
	}
	if opt.Stats.GroupsPruned == 0 {
		t.Log("warning: no groups pruned on skewed instance (plan chose full scan)")
	}
	if opt.Stats.FactsEvaluated > base.Stats.FactsEvaluated {
		t.Errorf("optimized pruning evaluated more facts (%d) than base (%d)",
			opt.Stats.FactsEvaluated, base.Stats.FactsEvaluated)
	}
}

func TestExactTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rel := randomRelation(rng, 200)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 3})
	prior := fact.MeanPrior(view, 0)
	e := NewEvaluator(view, 0, facts, prior)
	got := Exact(e, Options{MaxFacts: 4, Timeout: time.Microsecond})
	if !got.Stats.TimedOut {
		t.Skip("machine too fast for timeout test; exact finished")
	}
	if got.Utility < 0 {
		t.Error("timed-out run must return a non-negative utility")
	}
}

func TestGroupBound(t *testing.T) {
	rel := buildFlights(t)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	e := NewEvaluator(view, 0, facts, fact.ConstantPrior(0))
	e.ResetGreedy()
	// Bound for every group must dominate the max gain of its facts.
	for gi := range e.Groups() {
		g := &e.Groups()[gi]
		bound := e.GroupBound(g)
		for _, fi := range g.Facts {
			if gain := e.GreedyGain(int(fi)); gain > bound+1e-9 {
				t.Errorf("group %v: fact gain %v exceeds bound %v", g.Dims, gain, bound)
			}
		}
	}
	// Bound of the empty-scope group equals total current error.
	for gi := range e.Groups() {
		g := &e.Groups()[gi]
		if len(g.Dims) == 0 {
			if got := e.GroupBound(g); math.Abs(got-e.CurrentError()) > 1e-9 {
				t.Errorf("empty group bound %v != current error %v", got, e.CurrentError())
			}
		}
	}
}

// TestGroupBoundDominatesSpecializations: the bound of a group applies to
// facts of all specializing groups (needed for transitive pruning).
func TestGroupBoundDominatesSpecializations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := randomRelation(rng, 100)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 3})
	e := NewEvaluator(view, 0, facts, fact.MeanPrior(view, 0))
	e.ResetGreedy()
	groups := e.Groups()
	for ti := range groups {
		bound := e.GroupBound(&groups[ti])
		for gi := range groups {
			if !dimsSubset(groups[ti].Dims, groups[gi].Dims) {
				continue
			}
			for _, fi := range groups[gi].Facts {
				if gain := e.GreedyGain(int(fi)); gain > bound+1e-9 {
					t.Fatalf("specialization %v fact gain %v exceeds generalizer %v bound %v",
						groups[gi].Dims, gain, groups[ti].Dims, bound)
				}
			}
		}
	}
}

func TestPlannerProducesValidPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rel := randomRelation(rng, 50)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	e := NewEvaluator(view, 0, facts, fact.MeanPrior(view, 0))
	opts := Options{}.withDefaults()

	ctx := newPlanContext(e, opts)
	plans := candidatePlans(ctx)
	if len(plans) == 0 {
		t.Fatal("no candidate plans")
	}
	nGroups := len(e.Groups())
	for _, p := range plans {
		seen := map[int]bool{}
		for _, s := range p.Source {
			if s < 0 || s >= nGroups || seen[s] {
				t.Fatalf("bad source %d in plan %+v", s, p)
			}
			seen[s] = true
		}
		for _, tg := range p.Targets {
			if tg < 0 || tg >= nGroups || seen[tg] {
				t.Fatalf("target %d overlaps source or invalid in %+v", tg, p)
			}
		}
		if c := ctx.planCost(p); c <= 0 {
			t.Fatalf("plan cost %v must be positive", c)
		}
	}
	// The full-scan plan must be among the candidates (sources = all).
	foundFull := false
	for _, p := range plans {
		if len(p.Source) == nGroups {
			foundFull = true
			if len(p.Targets) != 0 {
				t.Error("full-source plan should have no targets")
			}
		}
	}
	if !foundFull {
		t.Error("full-scan fallback plan missing")
	}
}

func TestOptPruneDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rel := randomRelation(rng, 50)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
	opts := Options{}.withDefaults()
	e := NewEvaluator(view, 0, facts, fact.MeanPrior(view, 0))
	first := OptPrune(e, opts)
	for i := 0; i < 5; i++ {
		again := OptPrune(e, opts)
		if len(again.Source) != len(first.Source) || len(again.Targets) != len(first.Targets) {
			t.Fatal("OptPrune not deterministic")
		}
		for j := range first.Source {
			if first.Source[j] != again.Source[j] {
				t.Fatal("OptPrune source order changed")
			}
		}
		for j := range first.Targets {
			if first.Targets[j] != again.Targets[j] {
				t.Fatal("OptPrune target order changed")
			}
		}
	}
}

func TestOrderedFactsByUtility(t *testing.T) {
	var e Evaluator
	utils := []float64{1, 5, 3, 5, 2}
	order := e.orderedFactsByUtility(utils)
	wantOrder := []int32{1, 3, 2, 4, 0}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v", order, wantOrder)
		}
	}
}

func TestDimsSubset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, nil, true},
		{nil, []int{1}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1}, false},
		{[]int{3}, []int{1, 2}, false},
		{[]int{1, 3}, []int{1, 2, 3}, true},
	}
	for _, c := range cases {
		if got := dimsSubset(c.a, c.b); got != c.want {
			t.Errorf("dimsSubset(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestPropertyExactAtLeastGreedy: on random instances the exact optimum
// never falls below greedy (sanity of both implementations).
func TestPropertyExactAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		rel := randomRelation(rng, 30+rng.Intn(60))
		view := rel.FullView()
		facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: 2})
		prior := fact.MeanPrior(view, 0)
		e := NewEvaluator(view, 0, facts, prior)
		m := 1 + rng.Intn(3)
		greedy := Greedy(e, Options{MaxFacts: m})
		exact := Exact(e, Options{MaxFacts: m, LowerBound: greedy.Utility})
		if exact.Utility < greedy.Utility-1e-9 {
			t.Fatalf("trial %d: exact %v < greedy %v (m=%d)", trial, exact.Utility, greedy.Utility, m)
		}
		// Utility reported must match recomputation from facts.
		recomputed := fact.Utility(view, greedy.Facts, prior, 0)
		if math.Abs(recomputed-greedy.Utility) > 1e-9 {
			t.Fatalf("trial %d: greedy reported %v, recomputed %v", trial, greedy.Utility, recomputed)
		}
	}
}
