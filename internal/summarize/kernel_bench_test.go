package summarize

import (
	"fmt"
	"math/rand"
	"testing"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// benchProblem builds a deterministic mid-sized problem instance shaped
// like one pipeline solve: a few thousand rows, three dimension columns,
// and the full candidate fact set up to maxDims dimensions.
func benchProblem(b *testing.B, rows, maxDims int) (*relation.View, []fact.Fact, fact.Prior) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	rel := randomRelation(rng, rows)
	view := rel.FullView()
	facts := fact.Generate(view, 0, fact.GenerateOptions{MaxDims: maxDims})
	prior := fact.MeanPrior(view, 0)
	return view, facts, prior
}

// BenchmarkEvaluatorBuild measures the per-problem evaluator construction
// (the R ⋊⋉M F join): the work the pipeline pays before every solve. The
// pooled path is what the pipeline runs; the fresh variant is the cost
// without buffer reuse.
func BenchmarkEvaluatorBuild(b *testing.B) {
	view, facts, prior := benchProblem(b, 2000, 2)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := AcquireEvaluator(view, 0, facts, prior)
			if e.NumFacts() == 0 {
				b.Fatal("no facts")
			}
			ReleaseEvaluator(e)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := NewEvaluator(view, 0, facts, prior); e.NumFacts() == 0 {
				b.Fatal("no facts")
			}
		}
	})
}

// BenchmarkGreedySolve measures one full per-problem greedy solve —
// evaluator build plus Algorithm 2 — the unit of work the pre-processing
// pipeline repeats for thousands of problems.
func BenchmarkGreedySolve(b *testing.B) {
	view, facts, prior := benchProblem(b, 2000, 2)
	for _, mode := range []PruningMode{PruneNone, PruneOptimized} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := AcquireEvaluator(view, 0, facts, prior)
				sum := Greedy(e, Options{MaxFacts: 3, Pruning: mode})
				ReleaseEvaluator(e)
				if sum.Utility < 0 {
					b.Fatal("negative utility")
				}
			}
		})
	}
}

// BenchmarkExactSolve measures one full per-problem exact solve:
// evaluator build, greedy seed, then Algorithm 1's pruned enumeration.
func BenchmarkExactSolve(b *testing.B) {
	view, facts, prior := benchProblem(b, 600, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := AcquireEvaluator(view, 0, facts, prior)
		g := Greedy(e, Options{MaxFacts: 3})
		sum := Exact(e, Options{MaxFacts: 3, LowerBound: g.Utility})
		ReleaseEvaluator(e)
		if sum.Utility < g.Utility-1e-9 {
			b.Fatal("exact below greedy seed")
		}
	}
}

// BenchmarkExactParallelSolve measures the same per-problem exact solve
// through the parallel kernel at fixed worker counts, for side-by-side
// comparison with BenchmarkExactSolve (w1 isolates the task-queue
// overhead; w4 shows the subtree-parallel speedup on multi-core
// runners).
func BenchmarkExactParallelSolve(b *testing.B) {
	view, facts, prior := benchProblem(b, 600, 3)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := AcquireEvaluator(view, 0, facts, prior)
				g := Greedy(e, Options{MaxFacts: 3})
				sum := ExactParallel(e, Options{MaxFacts: 3, LowerBound: g.Utility, Workers: workers})
				ReleaseEvaluator(e)
				if sum.Utility < g.Utility-1e-9 {
					b.Fatal("exact below greedy seed")
				}
			}
		})
	}
}
