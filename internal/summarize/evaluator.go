// Package summarize implements the speech summarization algorithms of the
// paper: the exact algorithm with permutation and bound pruning
// (Algorithm 1, Section IV), the greedy algorithm with (1−1/e) guarantee
// (Algorithm 2, Section V), fact-group pruning (Algorithm 3, Section VI-B)
// and the cost-based pruning optimizer (Algorithm 4, Sections VI-C/D).
//
// It is the evaluate and solve heart of the generate → evaluate →
// solve → serve flow: the Evaluator pre-computes the per-problem state
// every algorithm shares (the materialized fact-scope join as CSR
// postings, the fact-group lattice, per-row priors), and Exact/Greedy
// consume it to pick the optimal fact set — the allocation-free hot
// loop the pre-processing batch spends nearly all of its time in.
package summarize

import (
	"math"
	"sort"
	"strconv"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Evaluator pre-computes the data structures shared by all summarization
// algorithms for one problem instance ⟨R, F, m⟩: per-row truth values and
// prior deviations, per-fact posting lists (the materialized fact-scope
// join R ⋊⋉M F), and the fact-group lattice.
//
// The paper executes these steps as SQL joins and aggregations inside the
// DBMS; the Evaluator is the in-memory equivalent with identical
// semantics, laid out as a flat allocation-free kernel:
//
//   - posting lists live in one CSR backing array (postRows + postStart),
//     so a problem's entire join output is a single allocation;
//   - per-group combo keys are resolved once at build into dense per-row
//     slot ids, so GroupBound is a pure array scan with zero hashing;
//   - speech evaluation uses an epoch-stamped dense scratch instead of a
//     per-call map, and the exact algorithm's DFS maintains per-row
//     deviations incrementally with an undo log;
//   - every scratch buffer is retained across Reset calls, so a pooled
//     evaluator solves problem after problem without reallocating.
//
// An Evaluator is not safe for concurrent use; the pipeline gives each
// worker its own pooled instance.
type Evaluator struct {
	view   *relation.View
	target int
	facts  []fact.Fact
	prior  fact.Prior

	truth    []float64 // target value per view row
	priorDev []float64 // |prior − truth| per view row
	priorSum float64   // D(∅), the error of the empty speech
	groups   []FactGroup

	// CSR posting layout: fact fi's in-scope view rows are
	// postRows[postStart[fi]:postStart[fi+1]]. Offsets are ints: the
	// total join output across all facts can exceed 2³¹ rows even when
	// every individual posting list fits in int32.
	postRows  []int32
	postStart []int
	postFill  []int

	// curDev is the greedy algorithm's per-row expectation state: the
	// deviation |E(F,r) − vr| under the facts selected so far.
	curDev []float64

	// Per-row dense slot ids per bound group (n entries per group with a
	// non-empty dim set, at the group's slotsOff), plus the shared
	// accumulator sized to the widest group.
	rowSlots  []int32
	boundSums []float64

	// Epoch-stamped scratch for SpeechUtility: a row's deviation in
	// speechDev is valid iff its stamp equals the current epoch, so
	// "clearing" between calls is one counter increment.
	speechDev []float64
	stamp     []uint64
	epoch     uint64
	touched   []int32

	// Incremental exact-DFS state: deviations along the current search
	// path with an undo log, the running utility, and the join-size
	// accounting of the path (see ExactCtx). The state is factored into
	// its own struct so the parallel exact search can give every worker
	// a private clone over the evaluator's shared read-only layout.
	path pathState

	// Dominance signatures for the exact search (see dominanceReps):
	// domRep[fi] is the canonical representative of fi's duplicate class.
	domRep   []int32
	domCnt   []int32
	domHash  map[uint64]int32
	domBuilt bool

	// Reusable build + solve scratch.
	byMask     map[uint64]int32 // dim-set mask → group (NumDims ≤ 64)
	byKeyStr   map[string]int32 // fallback group key (NumDims > 64)
	keyBuf     []byte
	byCombo    map[int64]int32 // combo key → slot, reused per group
	slotFact   []int32         // slot → fact (or −1), flattened per group
	radixBuf   []int64
	gfStart    []int32 // CSR offsets of groupFacts
	groupFacts []int32 // per-group fact lists, one backing array
	factGroup  []int32 // fact → group
	fillCursor []int32
	utilsBuf   []float64
	orderBuf   []int32
	sorter     utilOrderSorter
	chosenMark []bool
	aliveMark  []bool

	// JoinedRows counts row-fact pairs processed, mirroring the paper's
	// processing-cost metric (number of rows processed by joins). The
	// counter keeps the SQL-join accounting semantics of the paper even
	// where the kernel does less physical work: the exact algorithm's
	// incremental DFS charges each evaluated speech the full join size
	// the paper's final Γ_{ΣU} join would scan, so E vs G-B/G-P/G-O
	// comparisons stay on the metric of Figures 3/4.
	JoinedRows int64
}

// FactGroup is a set of facts restricting the same dimension columns
// (Section VI-B). Facts in one group partition the rows of the view.
type FactGroup struct {
	Dims  []int   // restricted dimension columns, ascending
	Facts []int32 // indices into the evaluator's fact slice

	// Bound precompute: view row i's value combination over Dims is the
	// dense slot rowSlots[slotsOff+i] (slots cover every combination
	// appearing in the view, not only those backed by a fact).
	slotsOff int
	numSlots int
	slotBase int // offset of this group's slot→fact entries in slotFact
}

// dimsMask packs an ascending dim-index set into a bitmask key. The
// second result is false when an index does not fit in 64 bits.
func dimsMask(dims []int) (uint64, bool) {
	var m uint64
	for _, d := range dims {
		if d >= 64 {
			return 0, false
		}
		m |= 1 << uint(d)
	}
	return m, true
}

// appendDimsKey renders the fallback group key for relations with more
// than 64 dimension columns, reusing the caller's buffer.
func appendDimsKey(buf []byte, dims []int) []byte {
	for _, d := range dims {
		buf = strconv.AppendInt(buf, int64(d), 10)
		buf = append(buf, ',')
	}
	return buf
}

// dimsSubset reports whether a ⊆ b for ascending dim slices.
func dimsSubset(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// growI32 returns a length-n slice, reusing s's backing array when it is
// large enough. Contents are unspecified.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growF64 is growI32 for float64 slices.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInt is growI32 for int slices.
func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// NewEvaluator builds the evaluator for a problem instance. The posting
// lists are built with one pass over the view per fact group, exploiting
// the fact that facts in a group partition the rows.
//
// For solve loops over many problems, prefer AcquireEvaluator /
// ReleaseEvaluator (or an explicit Reset on a retained instance), which
// reuse all internal buffers across problems.
func NewEvaluator(view *relation.View, target int, facts []fact.Fact, prior fact.Prior) *Evaluator {
	e := &Evaluator{}
	e.Reset(view, target, facts, prior)
	return e
}

// Reset rebuilds the evaluator for a new problem instance, reusing every
// internal buffer of the previous one. After Reset the evaluator is
// indistinguishable from a freshly built one: all per-problem state
// (postings, groups, greedy expectation state, counters) is recomputed.
func (e *Evaluator) Reset(view *relation.View, target int, facts []fact.Fact, prior fact.Prior) {
	n := view.NumRows()
	e.view = view
	e.target = target
	e.facts = facts
	e.prior = prior
	e.truth = growF64(e.truth, n)
	e.priorDev = growF64(e.priorDev, n)
	e.curDev = growF64(e.curDev, n)
	e.speechDev = growF64(e.speechDev, n)
	if cap(e.stamp) < n {
		e.stamp = make([]uint64, n)
		e.epoch = 0
	} else {
		e.stamp = e.stamp[:n]
	}
	e.touched = growI32(e.touched, n)[:0]
	e.priorSum = 0
	e.JoinedRows = 0
	e.domBuilt = false
	col := view.Rel.Target(target)
	for i := 0; i < n; i++ {
		row := view.Row(i)
		e.truth[i] = col.At(int(row))
		e.priorDev[i] = math.Abs(prior.At(row) - e.truth[i])
		e.priorSum += e.priorDev[i]
		e.curDev[i] = e.priorDev[i]
	}
	e.buildGroupsAndPostings()
}

// detach drops the problem references so a pooled evaluator never pins a
// relation, fact slice, or prior beyond its solve.
func (e *Evaluator) detach() {
	e.view = nil
	e.facts = nil
	e.prior = nil
	groups := e.groups[:cap(e.groups)]
	for i := range groups {
		groups[i] = FactGroup{}
	}
	e.groups = e.groups[:0]
}

// comboRadixInto fills mixed-radix multipliers that map a value-code
// combination over the given dimensions to a unique int64 key, reusing
// the evaluator's radix buffer.
func (e *Evaluator) comboRadixInto(dims []int) []int64 {
	if cap(e.radixBuf) < len(dims) {
		e.radixBuf = make([]int64, len(dims))
	}
	radix := e.radixBuf[:len(dims)]
	stride := int64(1)
	for i, d := range dims {
		radix[i] = stride
		stride *= int64(e.view.Rel.Dim(d).Cardinality()) + 1
	}
	return radix
}

// comboKey maps a code combination to its int64 key under radix.
func comboKey(codes []int32, radix []int64) int64 {
	key := int64(0)
	for i, c := range codes {
		key += int64(c) * radix[i]
	}
	return key
}

// rowComboKey computes the combo key of a relation row for dims.
func (e *Evaluator) rowComboKey(row int32, dims []int, radix []int64) int64 {
	key := int64(0)
	for j, d := range dims {
		key += int64(e.view.Rel.Dim(d).CodeAt(int(row))) * radix[j]
	}
	return key
}

// buildGroupsAndPostings groups facts by restricted dimension set and
// assigns each view row to the matching fact of every group in a single
// pass per group. Facts in one group partition the rows, so the join
// R ⋊⋉M F costs one relation pass per fact group instead of one per fact.
//
// The same per-group row pass resolves each row's value combination to a
// dense slot id, stored for the lifetime of the problem: GroupBound
// re-reads those slots on every greedy iteration instead of recomputing
// radix keys, and the postings land in one shared CSR backing array.
func (e *Evaluator) buildGroupsAndPostings() {
	n := e.view.NumRows()
	nf := len(e.facts)

	// 1) Assign facts to groups, keyed by the packed dim-set mask (or the
	// string fallback for >64 dimension columns).
	e.factGroup = growI32(e.factGroup, nf)
	e.groups = e.groups[:0]
	if e.view.Rel.NumDims() <= 64 {
		if e.byMask == nil {
			e.byMask = make(map[uint64]int32)
		} else {
			clear(e.byMask)
		}
		for fi := range e.facts {
			dims := e.facts[fi].Scope.Dims
			m, _ := dimsMask(dims)
			gi, ok := e.byMask[m]
			if !ok {
				gi = int32(len(e.groups))
				e.byMask[m] = gi
				e.groups = append(e.groups, FactGroup{Dims: dims})
			}
			e.factGroup[fi] = gi
		}
	} else {
		if e.byKeyStr == nil {
			e.byKeyStr = make(map[string]int32)
		} else {
			clear(e.byKeyStr)
		}
		for fi := range e.facts {
			dims := e.facts[fi].Scope.Dims
			e.keyBuf = appendDimsKey(e.keyBuf[:0], dims)
			gi, ok := e.byKeyStr[string(e.keyBuf)]
			if !ok {
				gi = int32(len(e.groups))
				e.byKeyStr[string(e.keyBuf)] = gi
				e.groups = append(e.groups, FactGroup{Dims: dims})
			}
			e.factGroup[fi] = gi
		}
	}
	ng := len(e.groups)

	// 2) Per-group fact lists in CSR form over one backing array.
	e.gfStart = growI32(e.gfStart, ng+1)
	gf := e.gfStart
	for i := range gf {
		gf[i] = 0
	}
	for fi := 0; fi < nf; fi++ {
		gf[e.factGroup[fi]+1]++
	}
	for g := 0; g < ng; g++ {
		gf[g+1] += gf[g]
	}
	e.groupFacts = growI32(e.groupFacts, nf)
	e.fillCursor = growI32(e.fillCursor, ng)
	copy(e.fillCursor, gf[:ng])
	for fi := 0; fi < nf; fi++ {
		g := e.factGroup[fi]
		e.groupFacts[e.fillCursor[g]] = int32(fi)
		e.fillCursor[g]++
	}
	for g := 0; g < ng; g++ {
		e.groups[g].Facts = e.groupFacts[gf[g]:gf[g+1]]
	}

	// 3) One keyed pass per group resolves rows to slots, counting each
	// fact's posting size along the way.
	e.postStart = growInt(e.postStart, nf+1)
	ps := e.postStart
	for i := range ps {
		ps[i] = 0
	}
	boundGroups := 0
	for g := range e.groups {
		if len(e.groups[g].Dims) > 0 {
			boundGroups++
		}
	}
	e.rowSlots = growI32(e.rowSlots, boundGroups*n)
	if e.byCombo == nil {
		e.byCombo = make(map[int64]int32)
	}
	e.slotFact = e.slotFact[:0]
	maxSlots := 0
	off := 0
	for g := range e.groups {
		grp := &e.groups[g]
		if len(grp.Dims) == 0 {
			// Every row is within scope of each scope-free fact.
			for _, fi := range grp.Facts {
				ps[fi+1] = n
			}
			grp.slotsOff, grp.numSlots, grp.slotBase = -1, 0, -1
			continue
		}
		radix := e.comboRadixInto(grp.Dims)
		clear(e.byCombo)
		grp.slotBase = len(e.slotFact)
		for _, fi := range grp.Facts {
			e.byCombo[comboKey(e.facts[fi].Scope.Codes, radix)] = int32(len(e.slotFact) - grp.slotBase)
			e.slotFact = append(e.slotFact, fi)
		}
		rs := e.rowSlots[off : off+n]
		for i := 0; i < n; i++ {
			key := e.rowComboKey(e.view.Row(i), grp.Dims, radix)
			slot, ok := e.byCombo[key]
			if !ok {
				slot = int32(len(e.slotFact) - grp.slotBase)
				e.byCombo[key] = slot
				e.slotFact = append(e.slotFact, -1)
			}
			rs[i] = slot
			if fi := e.slotFact[grp.slotBase+int(slot)]; fi >= 0 {
				ps[fi+1]++
			}
		}
		grp.slotsOff = off
		grp.numSlots = len(e.slotFact) - grp.slotBase
		if grp.numSlots > maxSlots {
			maxSlots = grp.numSlots
		}
		off += n
	}
	e.boundSums = growF64(e.boundSums, maxSlots)

	// 4) Prefix offsets, then one slot-driven fill pass per group writes
	// the join output into the single CSR backing array.
	for fi := 0; fi < nf; fi++ {
		ps[fi+1] += ps[fi]
	}
	e.postRows = growI32(e.postRows, ps[nf])
	e.postFill = growInt(e.postFill, nf)
	copy(e.postFill, ps[:nf])
	for g := range e.groups {
		grp := &e.groups[g]
		if len(grp.Dims) == 0 {
			for _, fi := range grp.Facts {
				out := e.postRows[e.postFill[fi]:ps[fi+1]]
				for i := range out {
					out[i] = int32(i)
				}
				e.postFill[fi] = ps[fi+1]
			}
			continue
		}
		rs := e.rowSlots[grp.slotsOff : grp.slotsOff+n]
		for i := 0; i < n; i++ {
			if fi := e.slotFact[grp.slotBase+int(rs[i])]; fi >= 0 {
				e.postRows[e.postFill[fi]] = int32(i)
				e.postFill[fi]++
			}
		}
	}
	e.JoinedRows += int64(ps[nf])
}

// posting returns fact fi's slice of the CSR join output.
func (e *Evaluator) posting(fi int) []int32 {
	return e.postRows[e.postStart[fi]:e.postStart[fi+1]]
}

// PostingLen returns the number of view rows within scope of fact fi —
// the size of that fact's slice of the materialized join R ⋊⋉M F.
func (e *Evaluator) PostingLen(fi int) int {
	return e.postStart[fi+1] - e.postStart[fi]
}

// NumRows returns the number of rows in the problem's view.
func (e *Evaluator) NumRows() int { return e.view.NumRows() }

// View returns the data subset the problem summarizes. Solvers that do
// not run over the candidate-fact join (e.g. the sampling and ML
// baselines behind the pipeline's solver registry) read the raw rows
// through it.
func (e *Evaluator) View() *relation.View { return e.view }

// Target returns the target column index of the problem instance.
func (e *Evaluator) Target() int { return e.target }

// Prior returns the prior expectation model of the problem instance.
func (e *Evaluator) Prior() fact.Prior { return e.prior }

// NumFacts returns the number of candidate facts.
func (e *Evaluator) NumFacts() int { return len(e.facts) }

// Facts returns the candidate facts (not a copy; callers must not modify).
func (e *Evaluator) Facts() []fact.Fact { return e.facts }

// Groups returns the fact groups (not a copy; callers must not modify).
func (e *Evaluator) Groups() []FactGroup { return e.groups }

// PriorError returns D(∅), the accumulated deviation of the empty speech.
func (e *Evaluator) PriorError() float64 { return e.priorSum }

// SingleFactUtility computes the utility of a singleton speech {f}:
// Σ_rows max(0, priorDev − |v_f − truth|) over rows in scope. This is the
// Γ_{ΣU,F}(R ⋊⋉M F) step of both Algorithm 1 and 2.
func (e *Evaluator) SingleFactUtility(fi int) float64 {
	v := e.facts[fi].Value
	u := 0.0
	post := e.posting(fi)
	for _, i := range post {
		if gain := e.priorDev[i] - math.Abs(v-e.truth[i]); gain > 0 {
			u += gain
		}
	}
	e.JoinedRows += int64(len(post))
	return u
}

// SingleFactUtilities computes single-fact utilities for all facts.
func (e *Evaluator) SingleFactUtilities() []float64 {
	out := make([]float64, len(e.facts))
	for i := range e.facts {
		out[i] = e.SingleFactUtility(i)
	}
	return out
}

// singleFactUtilities is SingleFactUtilities into a reused buffer; the
// result is valid until the next call.
func (e *Evaluator) singleFactUtilities() []float64 {
	e.utilsBuf = growF64(e.utilsBuf, len(e.facts))
	for i := range e.facts {
		e.utilsBuf[i] = e.SingleFactUtility(i)
	}
	return e.utilsBuf
}

// SpeechUtility computes the exact utility U(F*) of a fact-index set under
// the Closest expectation model, touching only rows within scope of at
// least one chosen fact (the final join of Algorithm 1). The per-row
// deviations live in an epoch-stamped dense scratch: bumping the epoch
// invalidates the previous call's state without clearing or allocating.
func (e *Evaluator) SpeechUtility(factIdx []int32) float64 {
	e.epoch++
	ep := e.epoch
	touched := e.touched[:0]
	for _, fi := range factIdx {
		v := e.facts[fi].Value
		post := e.posting(int(fi))
		for _, i := range post {
			d := math.Abs(v - e.truth[i])
			if e.stamp[i] != ep {
				e.stamp[i] = ep
				e.speechDev[i] = math.Min(d, e.priorDev[i])
				touched = append(touched, i)
			} else if d < e.speechDev[i] {
				e.speechDev[i] = d
			}
		}
		e.JoinedRows += int64(len(post))
	}
	u := 0.0
	for _, i := range touched {
		u += e.priorDev[i] - e.speechDev[i]
	}
	e.touched = touched[:0]
	return u
}

// pathState is the incremental speech-evaluation state of one exact-DFS
// walker: per-row deviations along the current search path with an undo
// log, the running utility, and the join-size accounting of the path.
// It only reads the evaluator's immutable per-problem layout (postings,
// truth, priors, fact values), so any number of pathStates may walk the
// same evaluator concurrently — the parallel exact search gives each
// worker its own.
type pathState struct {
	dev     []float64
	undoRow []int32
	undoVal []float64
	u       float64
	post    int64
}

// begin initializes the path state for e: deviations start at the prior
// and the running utility at zero.
func (p *pathState) begin(e *Evaluator) {
	n := e.view.NumRows()
	p.dev = growF64(p.dev, n)
	copy(p.dev, e.priorDev[:n])
	p.undoRow = p.undoRow[:0]
	p.undoVal = p.undoVal[:0]
	p.u = 0
	p.post = 0
}

// push folds fact fi into the path state — O(|scope of fi|) — and
// returns the undo-log mark for the matching pop. Only rows whose
// deviation improves are logged, so evaluating a leaf after the push is
// free: p.u already is the speech utility.
func (p *pathState) push(e *Evaluator, fi int32) int {
	mark := len(p.undoRow)
	v := e.facts[fi].Value
	post := e.posting(int(fi))
	for _, i := range post {
		if d := math.Abs(v - e.truth[i]); d < p.dev[i] {
			p.undoRow = append(p.undoRow, i)
			p.undoVal = append(p.undoVal, p.dev[i])
			p.u += p.dev[i] - d
			p.dev[i] = d
		}
	}
	p.post += int64(len(post))
	return mark
}

// pop rewinds the path state to mark. The caller passes back the
// utility and join-size accounting saved before the matching push, so
// the restored values are exact — no floating-point drift accumulates
// across sibling subtrees.
func (p *pathState) pop(mark int, savedU float64, savedPost int64) {
	for k := len(p.undoRow) - 1; k >= mark; k-- {
		p.dev[p.undoRow[k]] = p.undoVal[k]
	}
	p.undoRow = p.undoRow[:mark]
	p.undoVal = p.undoVal[:mark]
	p.u = savedU
	p.post = savedPost
}

// dominanceReps computes the duplicate-class representative of every
// fact: two facts share a class when their scope signatures (the exact
// posting-list content of the materialized join) and values are
// bitwise identical. Such facts are interchangeable for speech utility
// — folding one in makes the other's marginal gain exactly zero — so
// the exact search skips a fact whenever its representative class is
// already on the search path (dominance pruning). The classes are
// built lazily once per problem and reused by sequential and parallel
// search alike; hash collisions degrade to self-representation, which
// only forfeits pruning, never correctness.
func (e *Evaluator) dominanceReps() []int32 {
	if e.domBuilt {
		return e.domRep
	}
	nf := len(e.facts)
	e.domRep = growI32(e.domRep, nf)
	if e.domHash == nil {
		e.domHash = make(map[uint64]int32)
	} else {
		clear(e.domHash)
	}
	for fi := 0; fi < nf; fi++ {
		h := uint64(14695981039346656037) // FNV-1a offset basis
		mix := func(x uint64) {
			for s := 0; s < 64; s += 8 {
				h ^= (x >> uint(s)) & 0xff
				h *= 1099511628211
			}
		}
		mix(math.Float64bits(e.facts[fi].Value))
		for _, r := range e.posting(fi) {
			mix(uint64(uint32(r)))
		}
		rep, ok := e.domHash[h]
		if ok && e.sameSignature(int(rep), fi) {
			e.domRep[fi] = rep
			continue
		}
		if !ok {
			e.domHash[h] = int32(fi)
		}
		e.domRep[fi] = int32(fi)
	}
	e.domBuilt = true
	return e.domRep
}

// sameSignature reports whether facts a and b have bitwise-identical
// values and posting lists.
func (e *Evaluator) sameSignature(a, b int) bool {
	if math.Float64bits(e.facts[a].Value) != math.Float64bits(e.facts[b].Value) {
		return false
	}
	pa, pb := e.posting(a), e.posting(b)
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// domCntScratch returns the cleared per-class on-path counter used by
// the sequential exact search's dominance pruning.
func (e *Evaluator) domCntScratch() []int32 {
	if cap(e.domCnt) < len(e.facts) {
		e.domCnt = make([]int32, len(e.facts))
	} else {
		e.domCnt = e.domCnt[:len(e.facts)]
		for i := range e.domCnt {
			e.domCnt[i] = 0
		}
	}
	return e.domCnt
}

// GreedyGain computes the marginal utility of adding fact fi to the
// current greedy speech (whose per-row deviations are tracked in curDev).
func (e *Evaluator) GreedyGain(fi int) float64 {
	v := e.facts[fi].Value
	gain := 0.0
	post := e.posting(fi)
	for _, i := range post {
		if g := e.curDev[i] - math.Abs(v-e.truth[i]); g > 0 {
			gain += g
		}
	}
	e.JoinedRows += int64(len(post))
	return gain
}

// CommitFact folds fact fi into the greedy expectation state, the
// Π_{E,R}(R ⋊⋉M f*) recomputation of Algorithm 2 Line 11.
func (e *Evaluator) CommitFact(fi int) {
	v := e.facts[fi].Value
	post := e.posting(fi)
	for _, i := range post {
		if d := math.Abs(v - e.truth[i]); d < e.curDev[i] {
			e.curDev[i] = d
		}
	}
	e.JoinedRows += int64(len(post))
}

// ResetGreedy restores the expectation state to the prior, so the same
// evaluator can run multiple algorithms.
func (e *Evaluator) ResetGreedy() {
	copy(e.curDev, e.priorDev)
}

// CurrentError returns the accumulated deviation of the current greedy
// state.
func (e *Evaluator) CurrentError() float64 {
	sum := 0.0
	for _, d := range e.curDev {
		sum += d
	}
	return sum
}

// GroupBound computes the upper utility-gain bound for every fact of a
// group: Σ curDev grouped by the group's dimensions, maximized over value
// combinations (Algorithm 3 Line 15). Adding a fact can at most reduce
// the error within its scope to zero, so the summed current deviation
// bounds the gain of any fact in the group and of all specializations.
//
// The group's per-row slots were resolved at build time (they are
// invariant across greedy iterations), so each bound is one array scan
// over the view into the shared dense accumulator — no radix rebuild, no
// hashing, no allocation.
func (e *Evaluator) GroupBound(g *FactGroup) float64 {
	if len(g.Dims) == 0 {
		return e.CurrentError()
	}
	n := e.view.NumRows()
	sums := e.boundSums[:g.numSlots]
	for i := range sums {
		sums[i] = 0
	}
	rs := e.rowSlots[g.slotsOff : g.slotsOff+n]
	for i := 0; i < n; i++ {
		sums[rs[i]] += e.curDev[i]
	}
	best := 0.0
	for _, s := range sums {
		if s > best {
			best = s
		}
	}
	e.JoinedRows += int64(n)
	return best
}

// chosenMarkScratch returns the cleared fact-chosen mark, reused across
// greedy runs (profiling showed the old map[int32]bool dominating the
// gain scan's skip check).
func (e *Evaluator) chosenMarkScratch() []bool {
	if cap(e.chosenMark) < len(e.facts) {
		e.chosenMark = make([]bool, len(e.facts))
	} else {
		e.chosenMark = e.chosenMark[:len(e.facts)]
		for i := range e.chosenMark {
			e.chosenMark[i] = false
		}
	}
	return e.chosenMark
}

// aliveMarkScratch returns the group-alive mark set to true, reused
// across greedy iterations.
func (e *Evaluator) aliveMarkScratch() []bool {
	if cap(e.aliveMark) < len(e.groups) {
		e.aliveMark = make([]bool, len(e.groups))
	} else {
		e.aliveMark = e.aliveMark[:len(e.groups)]
	}
	for i := range e.aliveMark {
		e.aliveMark[i] = true
	}
	return e.aliveMark
}

// utilOrderSorter orders fact indices by decreasing single-fact utility
// with index tiebreak; a reusable sort.Interface so the exact algorithm's
// canonical ordering allocates nothing.
type utilOrderSorter struct {
	idx   []int32
	utils []float64
}

func (s *utilOrderSorter) Len() int { return len(s.idx) }
func (s *utilOrderSorter) Less(a, b int) bool {
	ua, ub := s.utils[s.idx[a]], s.utils[s.idx[b]]
	if ua != ub {
		return ua > ub
	}
	return s.idx[a] < s.idx[b]
}
func (s *utilOrderSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// orderedFactsByUtility fills the evaluator's reusable order buffer with
// fact indices in canonical decreasing-utility order, the order used by
// the exact algorithm's permutation pruning.
func (e *Evaluator) orderedFactsByUtility(utils []float64) []int32 {
	e.orderBuf = growI32(e.orderBuf, len(utils))
	for i := range e.orderBuf {
		e.orderBuf[i] = int32(i)
	}
	e.sorter.idx, e.sorter.utils = e.orderBuf, utils
	sort.Sort(&e.sorter)
	e.sorter.idx, e.sorter.utils = nil, nil
	return e.orderBuf
}
