// Package summarize implements the speech summarization algorithms of the
// paper: the exact algorithm with permutation and bound pruning
// (Algorithm 1, Section IV), the greedy algorithm with (1−1/e) guarantee
// (Algorithm 2, Section V), fact-group pruning (Algorithm 3, Section VI-B)
// and the cost-based pruning optimizer (Algorithm 4, Sections VI-C/D).
package summarize

import (
	"fmt"
	"math"
	"sort"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Evaluator pre-computes the data structures shared by all summarization
// algorithms for one problem instance ⟨R, F, m⟩: per-row truth values and
// prior deviations, per-fact posting lists (the materialized fact-scope
// join R ⋊⋉M F), and the fact-group lattice.
//
// The paper executes these steps as SQL joins and aggregations inside the
// DBMS; the Evaluator is the in-memory equivalent with identical
// semantics.
type Evaluator struct {
	view   *relation.View
	target int
	facts  []fact.Fact
	prior  fact.Prior

	truth    []float64 // target value per view row
	priorDev []float64 // |prior − truth| per view row
	priorSum float64   // D(∅), the error of the empty speech
	postings [][]int32 // per fact: view-row positions within scope
	groups   []FactGroup

	// curDev is the greedy algorithm's per-row expectation state: the
	// deviation |E(F,r) − vr| under the facts selected so far. It doubles
	// as scratch space for exact speech evaluation.
	curDev []float64

	// JoinedRows counts row-fact pairs processed, mirroring the paper's
	// processing-cost metric (number of rows processed by joins).
	JoinedRows int64
}

// FactGroup is a set of facts restricting the same dimension columns
// (Section VI-B). Facts in one group partition the rows of the view.
type FactGroup struct {
	Dims  []int   // restricted dimension columns, ascending
	Facts []int32 // indices into the evaluator's fact slice
}

// key returns a canonical identity for the group's dimension set.
func groupKey(dims []int) string {
	return fmt.Sprint(dims)
}

// dimsSubset reports whether a ⊆ b for ascending dim slices.
func dimsSubset(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// NewEvaluator builds the evaluator for a problem instance. The posting
// lists are built with one pass over the view per fact group, exploiting
// the fact that facts in a group partition rows.
func NewEvaluator(view *relation.View, target int, facts []fact.Fact, prior fact.Prior) *Evaluator {
	n := view.NumRows()
	e := &Evaluator{
		view:     view,
		target:   target,
		facts:    facts,
		prior:    prior,
		truth:    make([]float64, n),
		priorDev: make([]float64, n),
		postings: make([][]int32, len(facts)),
		curDev:   make([]float64, n),
	}
	col := view.Rel.Target(target)
	for i := 0; i < n; i++ {
		row := view.Row(i)
		e.truth[i] = col.At(int(row))
		e.priorDev[i] = math.Abs(prior.At(row) - e.truth[i])
		e.priorSum += e.priorDev[i]
		e.curDev[i] = e.priorDev[i]
	}
	e.buildGroupsAndPostings()
	return e
}

// comboRadix returns mixed-radix multipliers that map a value-code
// combination over the given dimensions to a unique int64 key, avoiding
// per-row string allocation in the hot join and bound loops.
func (e *Evaluator) comboRadix(dims []int) []int64 {
	radix := make([]int64, len(dims))
	stride := int64(1)
	for i, d := range dims {
		radix[i] = stride
		stride *= int64(e.view.Rel.Dim(d).Cardinality()) + 1
	}
	return radix
}

// comboKey maps a code combination to its int64 key under radix.
func comboKey(codes []int32, radix []int64) int64 {
	key := int64(0)
	for i, c := range codes {
		key += int64(c) * radix[i]
	}
	return key
}

// rowComboKey computes the combo key of a relation row for dims.
func (e *Evaluator) rowComboKey(row int32, dims []int, radix []int64) int64 {
	key := int64(0)
	for j, d := range dims {
		key += int64(e.view.Rel.Dim(d).CodeAt(int(row))) * radix[j]
	}
	return key
}

// buildGroupsAndPostings groups facts by restricted dimension set and
// assigns each view row to the matching fact of every group in a single
// pass per group. Facts in one group partition the rows, so the join
// R ⋊⋉M F costs one relation pass per fact group instead of one per fact.
func (e *Evaluator) buildGroupsAndPostings() {
	byKey := map[string]int{}
	for fi, f := range e.facts {
		k := groupKey(f.Scope.Dims)
		gi, ok := byKey[k]
		if !ok {
			gi = len(e.groups)
			byKey[k] = gi
			e.groups = append(e.groups, FactGroup{Dims: append([]int(nil), f.Scope.Dims...)})
		}
		e.groups[gi].Facts = append(e.groups[gi].Facts, int32(fi))
	}
	n := e.view.NumRows()
	for gi := range e.groups {
		g := &e.groups[gi]
		if len(g.Dims) == 0 {
			// Every row is within scope of the single scope-free fact.
			for _, fi := range g.Facts {
				post := make([]int32, n)
				for i := range post {
					post[i] = int32(i)
				}
				e.postings[fi] = post
			}
			continue
		}
		// Map value-code combination → fact index for this group.
		radix := e.comboRadix(g.Dims)
		byCombo := make(map[int64]int32, len(g.Facts))
		for _, fi := range g.Facts {
			byCombo[comboKey(e.facts[fi].Scope.Codes, radix)] = fi
		}
		for i := 0; i < n; i++ {
			key := e.rowComboKey(e.view.Row(i), g.Dims, radix)
			if fi, ok := byCombo[key]; ok {
				e.postings[fi] = append(e.postings[fi], int32(i))
			}
		}
	}
	for i := range e.postings {
		e.JoinedRows += int64(len(e.postings[i]))
	}
}

// NumRows returns the number of rows in the problem's view.
func (e *Evaluator) NumRows() int { return e.view.NumRows() }

// View returns the data subset the problem summarizes. Solvers that do
// not run over the candidate-fact join (e.g. the sampling and ML
// baselines behind the pipeline's solver registry) read the raw rows
// through it.
func (e *Evaluator) View() *relation.View { return e.view }

// Target returns the target column index of the problem instance.
func (e *Evaluator) Target() int { return e.target }

// Prior returns the prior expectation model of the problem instance.
func (e *Evaluator) Prior() fact.Prior { return e.prior }

// NumFacts returns the number of candidate facts.
func (e *Evaluator) NumFacts() int { return len(e.facts) }

// Facts returns the candidate facts (not a copy; callers must not modify).
func (e *Evaluator) Facts() []fact.Fact { return e.facts }

// Groups returns the fact groups (not a copy; callers must not modify).
func (e *Evaluator) Groups() []FactGroup { return e.groups }

// PriorError returns D(∅), the accumulated deviation of the empty speech.
func (e *Evaluator) PriorError() float64 { return e.priorSum }

// SingleFactUtility computes the utility of a singleton speech {f}:
// Σ_rows max(0, priorDev − |v_f − truth|) over rows in scope. This is the
// Γ_{ΣU,F}(R ⋊⋉M F) step of both Algorithm 1 and 2.
func (e *Evaluator) SingleFactUtility(fi int) float64 {
	v := e.facts[fi].Value
	u := 0.0
	for _, i := range e.postings[fi] {
		if gain := e.priorDev[i] - math.Abs(v-e.truth[i]); gain > 0 {
			u += gain
		}
	}
	e.JoinedRows += int64(len(e.postings[fi]))
	return u
}

// SingleFactUtilities computes single-fact utilities for all facts.
func (e *Evaluator) SingleFactUtilities() []float64 {
	out := make([]float64, len(e.facts))
	for i := range e.facts {
		out[i] = e.SingleFactUtility(i)
	}
	return out
}

// SpeechUtility computes the exact utility U(F*) of a fact-index set under
// the Closest expectation model, touching only rows within scope of at
// least one chosen fact (the final join of Algorithm 1).
func (e *Evaluator) SpeechUtility(factIdx []int32) float64 {
	seen := map[int32]float64{}
	for _, fi := range factIdx {
		v := e.facts[fi].Value
		for _, i := range e.postings[fi] {
			d := math.Abs(v - e.truth[i])
			if cur, ok := seen[i]; !ok {
				seen[i] = math.Min(d, e.priorDev[i])
			} else if d < cur {
				seen[i] = d
			}
		}
		e.JoinedRows += int64(len(e.postings[fi]))
	}
	u := 0.0
	for i, dev := range seen {
		u += e.priorDev[i] - dev
	}
	return u
}

// GreedyGain computes the marginal utility of adding fact fi to the
// current greedy speech (whose per-row deviations are tracked in curDev).
func (e *Evaluator) GreedyGain(fi int) float64 {
	v := e.facts[fi].Value
	gain := 0.0
	for _, i := range e.postings[fi] {
		if g := e.curDev[i] - math.Abs(v-e.truth[i]); g > 0 {
			gain += g
		}
	}
	e.JoinedRows += int64(len(e.postings[fi]))
	return gain
}

// CommitFact folds fact fi into the greedy expectation state, the
// Π_{E,R}(R ⋊⋉M f*) recomputation of Algorithm 2 Line 11.
func (e *Evaluator) CommitFact(fi int) {
	v := e.facts[fi].Value
	for _, i := range e.postings[fi] {
		if d := math.Abs(v - e.truth[i]); d < e.curDev[i] {
			e.curDev[i] = d
		}
	}
	e.JoinedRows += int64(len(e.postings[fi]))
}

// ResetGreedy restores the expectation state to the prior, so the same
// evaluator can run multiple algorithms.
func (e *Evaluator) ResetGreedy() {
	copy(e.curDev, e.priorDev)
}

// CurrentError returns the accumulated deviation of the current greedy
// state.
func (e *Evaluator) CurrentError() float64 {
	sum := 0.0
	for _, d := range e.curDev {
		sum += d
	}
	return sum
}

// GroupBound computes the upper utility-gain bound for every fact of a
// group: Σ curDev grouped by the group's dimensions, maximized over value
// combinations (Algorithm 3 Line 15). Adding a fact can at most reduce
// the error within its scope to zero, so the summed current deviation
// bounds the gain of any fact in the group and of all specializations.
func (e *Evaluator) GroupBound(g *FactGroup) float64 {
	if len(g.Dims) == 0 {
		return e.CurrentError()
	}
	radix := e.comboRadix(g.Dims)
	n := e.view.NumRows()
	stride := radix[len(radix)-1] * (int64(e.view.Rel.Dim(g.Dims[len(g.Dims)-1]).Cardinality()) + 1)
	best := 0.0
	if stride <= 1<<16 {
		// Dense accumulation: a flat array is much cheaper than a map
		// and keeps bound computation well below a utility scan's cost.
		sums := make([]float64, stride)
		for i := 0; i < n; i++ {
			sums[e.rowComboKey(e.view.Row(i), g.Dims, radix)] += e.curDev[i]
		}
		for _, s := range sums {
			if s > best {
				best = s
			}
		}
	} else {
		sums := map[int64]float64{}
		for i := 0; i < n; i++ {
			sums[e.rowComboKey(e.view.Row(i), g.Dims, radix)] += e.curDev[i]
		}
		for _, s := range sums {
			if s > best {
				best = s
			}
		}
	}
	e.JoinedRows += int64(n)
	return best
}

// sortFactsByUtility returns fact indices ordered by decreasing
// single-fact utility with index tiebreak, the canonical order used by
// the exact algorithm's permutation pruning.
func sortFactsByUtility(utils []float64) []int32 {
	idx := make([]int32, len(utils))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ua, ub := utils[idx[a]], utils[idx[b]]
		if ua != ub {
			return ua > ub
		}
		return idx[a] < idx[b]
	})
	return idx
}
