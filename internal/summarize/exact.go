package summarize

import (
	"time"
)

// pruneEps is the slack applied to utility-bound comparisons so that
// floating-point rounding between differently-ordered summations can
// never prune a true optimum.
const pruneEps = 1e-9

// Exact runs Algorithm 1: exhaustive speech enumeration with two pruning
// rules, returning a guaranteed optimal speech of up to opts.MaxFacts
// facts (Corollary 1).
//
// Pruning rule 1 eliminates redundant fact permutations by only expanding
// speeches with facts in decreasing single-fact-utility order. Pruning
// rule 2 discards a partial speech when even the optimistic bound
// S.U + r·F.U (Lemma 1: the sum of already-selected single-fact utilities
// plus the new fact's utility paid for every remaining slot) cannot reach
// the lower bound b on optimal utility.
//
// The lower bound is seeded from opts.LowerBound (callers pass the greedy
// utility, as the paper does) and tightened with every exact utility
// computed, which only strengthens pruning and never sacrifices
// optimality. If opts.Timeout is positive and expires, the best speech
// found so far is returned with Stats.TimedOut set.
func Exact(e *Evaluator, opts Options) Summary {
	opts = opts.withDefaults()
	start := time.Now()
	joined0 := e.JoinedRows
	var stats RunStats

	utils := e.SingleFactUtilities()
	stats.FactsEvaluated = len(utils)
	order := sortFactsByUtility(utils)

	m := opts.MaxFacts
	if m > len(order) {
		m = len(order)
	}

	b := opts.LowerBound
	var best []int32
	bestU := -1.0
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	checkEvery := int64(1024)

	evaluate := func(chosen []int32) {
		u := e.SpeechUtility(chosen)
		stats.SpeechesEvaluated++
		if u > bestU {
			bestU = u
			best = append(best[:0], chosen...)
		}
		if u > b {
			b = u
		}
	}

	// Depth-first enumeration over combinations in the canonical
	// decreasing-utility order. pos indexes into order; sumU carries the
	// upper bound S.U (sum of single-fact utilities of selected facts,
	// Lemma 2).
	var chosen []int32
	var dfs func(pos int, sumU float64)
	timedOut := false
	dfs = func(pos int, sumU float64) {
		if timedOut {
			return
		}
		if !deadline.IsZero() && stats.NodesExpanded%checkEvery == 0 && time.Now().After(deadline) {
			timedOut = true
			return
		}
		if len(chosen) == m {
			evaluate(chosen)
			return
		}
		extended := false
		remaining := m - len(chosen) // slots left including the next fact
		for i := pos; i < len(order); i++ {
			fi := order[i]
			u := utils[fi]
			// Pruning rule 2: facts are in decreasing utility order, so
			// if even this fact cannot lift the bound to b, no later fact
			// can either — cut the whole subtree. The epsilon absorbs
			// floating-point drift between the bound (computed as a sum
			// of per-row gains) and b (computed as an error difference),
			// which could otherwise prune the optimum itself.
			if sumU+float64(remaining)*u < b-pruneEps {
				break
			}
			stats.NodesExpanded++
			extended = true
			chosen = append(chosen, fi)
			dfs(i+1, sumU+u)
			chosen = chosen[:len(chosen)-1]
			if timedOut {
				return
			}
		}
		if !extended && len(chosen) > 0 {
			// No admissible extension: the partial speech is itself a
			// candidate ("up to m facts").
			evaluate(chosen)
		}
	}
	dfs(0, 0)

	// The empty speech is valid (utility 0) when nothing helps.
	if bestU < 0 {
		bestU = 0
		best = nil
	}

	residual := e.PriorError() - bestU
	out := Summary{
		FactIdx:       append([]int32(nil), best...),
		Utility:       bestU,
		PriorError:    e.PriorError(),
		ResidualError: residual,
	}
	for _, fi := range best {
		out.Facts = append(out.Facts, e.Facts()[fi])
	}
	stats.TimedOut = timedOut
	stats.Elapsed = time.Since(start)
	stats.JoinedRows = e.JoinedRows - joined0
	out.Stats = stats
	return out
}
