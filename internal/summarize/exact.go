package summarize

import (
	"context"
	"time"
)

// pruneEps is the slack applied to utility-bound comparisons so that
// floating-point rounding between differently-ordered summations can
// never prune a true optimum.
const pruneEps = 1e-9

// ctxCheckEvery is how many enumeration steps pass between context
// polls in the algorithms' inner loops: rare enough to stay off the hot
// path, frequent enough that cancellation returns within microseconds.
const ctxCheckEvery = int64(1024)

// Exact runs Algorithm 1 without cancellation support; see ExactCtx.
func Exact(e *Evaluator, opts Options) Summary {
	return ExactCtx(context.Background(), e, opts)
}

// ExactCtx runs Algorithm 1: exhaustive speech enumeration with two
// pruning rules, returning a guaranteed optimal speech of up to
// opts.MaxFacts facts (Corollary 1).
//
// Pruning rule 1 eliminates redundant fact permutations by only expanding
// speeches with facts in decreasing single-fact-utility order. Pruning
// rule 2 discards a partial speech when even the optimistic bound
// S.U + r·F.U (Lemma 1: the sum of already-selected single-fact utilities
// plus the new fact's utility paid for every remaining slot) cannot reach
// the lower bound b on optimal utility.
//
// The lower bound is seeded from opts.LowerBound (callers pass the greedy
// utility, as the paper does) and tightened with every exact utility
// computed, which only strengthens pruning and never sacrifices
// optimality.
//
// Speech utilities are evaluated incrementally along the search path:
// expanding a node folds one fact into the per-row deviation state
// (O(|scope of that fact|) with an undo log), so a completed speech's
// utility is already on hand instead of re-unioning the whole speech at
// every leaf. The JoinedRows counter still charges each evaluated speech
// the full join size of the paper's SQL formulation (see Evaluator).
//
// The run is bounded two ways: opts.Timeout and the context's deadline
// both become the enumeration deadline (whichever is earlier), returning
// the best speech found so far with Stats.TimedOut set; cancelling ctx
// aborts the enumeration within ctxCheckEvery nodes and returns the best
// speech so far with Stats.Cancelled set.
func ExactCtx(ctx context.Context, e *Evaluator, opts Options) Summary {
	opts = opts.withDefaults()
	start := time.Now()
	joined0 := e.JoinedRows
	var stats RunStats

	utils := e.singleFactUtilities()
	stats.FactsEvaluated = len(utils)
	order := e.orderedFactsByUtility(utils)

	m := opts.MaxFacts
	if m > len(order) {
		m = len(order)
	}

	b := opts.LowerBound
	var best []int32
	bestU := -1.0
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	watchCtx := ctx.Done() != nil

	// Dominance pruning: skip a fact whose scope+value signature class
	// is already represented on the search path — its marginal gain is
	// exactly zero, so no speech through it can strictly improve on its
	// dominance-free counterpart.
	dom := e.dominanceReps()
	domCnt := e.domCntScratch()

	e.path.begin(e)
	chosen := make([]int32, 0, m)
	evaluate := func() {
		// The incremental path state already holds the utility of the
		// chosen speech; charge the counter the speech's join size.
		u := e.path.u
		e.JoinedRows += e.path.post
		stats.SpeechesEvaluated++
		if u > bestU {
			bestU = u
			best = append(best[:0], chosen...)
		}
		if u > b {
			b = u
		}
	}

	// Depth-first enumeration over combinations in the canonical
	// decreasing-utility order. pos indexes into order; sumU carries the
	// upper bound S.U (sum of single-fact utilities of selected facts,
	// Lemma 2).
	var dfs func(pos int, sumU float64)
	timedOut := false
	cancelled := false
	dfs = func(pos int, sumU float64) {
		if timedOut || cancelled {
			return
		}
		if stats.NodesExpanded%ctxCheckEvery == 0 {
			// Deadline before cancellation: an expired ctx deadline makes
			// ctx.Err() non-nil at the same instant, and it must count as
			// a timeout (best-so-far kept), not a cancellation.
			if !deadline.IsZero() && time.Now().After(deadline) {
				timedOut = true
				return
			}
			if watchCtx {
				switch ctx.Err() {
				case nil:
				case context.DeadlineExceeded:
					timedOut = true
					return
				default:
					cancelled = true
					return
				}
			}
		}
		if len(chosen) == m {
			evaluate()
			return
		}
		extended := false
		remaining := m - len(chosen) // slots left including the next fact
		for i := pos; i < len(order); i++ {
			fi := order[i]
			u := utils[fi]
			// Pruning rule 2: facts are in decreasing utility order, so
			// if even this fact cannot lift the bound to b, no later fact
			// can either — cut the whole subtree. The epsilon absorbs
			// floating-point drift between the bound (computed as a sum
			// of per-row gains) and b (computed as an error difference),
			// which could otherwise prune the optimum itself.
			if sumU+float64(remaining)*u < b-pruneEps {
				break
			}
			if domCnt[dom[fi]] > 0 {
				// An equal-signature fact is already on the path: fi's
				// marginal gain is exactly zero. Skip it (but keep
				// scanning later facts — this is a skip, not a bound cut).
				stats.DominatedSkipped++
				continue
			}
			stats.NodesExpanded++
			extended = true
			chosen = append(chosen, fi)
			domCnt[dom[fi]]++
			savedU, savedPost := e.path.u, e.path.post
			mark := e.path.push(e, fi)
			dfs(i+1, sumU+u)
			e.path.pop(mark, savedU, savedPost)
			domCnt[dom[fi]]--
			chosen = chosen[:len(chosen)-1]
			if timedOut || cancelled {
				return
			}
		}
		if !extended && len(chosen) > 0 {
			// No admissible extension: the partial speech is itself a
			// candidate ("up to m facts").
			evaluate()
		}
	}
	dfs(0, 0)

	// The empty speech is valid (utility 0) when nothing helps.
	if bestU < 0 {
		bestU = 0
		best = nil
	}

	residual := e.PriorError() - bestU
	out := Summary{
		FactIdx:       append([]int32(nil), best...),
		Utility:       bestU,
		PriorError:    e.PriorError(),
		ResidualError: residual,
	}
	for _, fi := range best {
		out.Facts = append(out.Facts, e.Facts()[fi])
	}
	stats.TimedOut = timedOut
	stats.Cancelled = cancelled
	stats.Elapsed = time.Since(start)
	stats.JoinedRows = e.JoinedRows - joined0
	out.Stats = stats
	return out
}
