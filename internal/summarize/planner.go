package summarize

import (
	"sort"

	"cicero/internal/stats"
)

// Plan is a pruning strategy: utility is computed for all facts of the
// Source groups first, then the Targets (in order) are tested against the
// best source gain via deviation bounds; surviving groups are scanned
// exactly (Algorithm 3).
type Plan struct {
	Source  []int // group indices whose facts are scanned first
	Targets []int // group indices to try pruning, in order
}

// planContext caches the per-group statistics the cost model needs:
// M(g), the number of facts per group (the paper estimates it from query
// optimizer statistics; our engine knows it exactly, which only makes
// the estimate of the same quantity sharper).
type planContext struct {
	e     *Evaluator
	opts  Options
	m     []int   // M(g) per group
	byM   []int   // group indices sorted by ascending M(g)
	nRows float64 // rows in the view
}

func newPlanContext(e *Evaluator, opts Options) *planContext {
	groups := e.Groups()
	ctx := &planContext{e: e, opts: opts, nRows: float64(e.NumRows())}
	ctx.m = make([]int, len(groups))
	for i := range groups {
		ctx.m[i] = len(groups[i].Facts)
	}
	ctx.byM = make([]int, len(groups))
	for i := range ctx.byM {
		ctx.byM[i] = i
	}
	sort.SliceStable(ctx.byM, func(a, b int) bool {
		return ctx.m[ctx.byM[a]] < ctx.m[ctx.byM[b]]
	})
	return ctx
}

// costUtility is CU(g): the estimated cost of computing utility for every
// fact of group g, a join pairing rows with in-scope facts.
func (ctx *planContext) costUtility(gi int) float64 {
	return ctx.opts.JoinCost * (ctx.nRows + float64(ctx.m[gi]))
}

// costBound is CD(g): the estimated cost of the deviation group-by that
// produces the group's pruning bound.
func (ctx *planContext) costBound(gi int) float64 {
	return ctx.opts.GroupCost * (ctx.nRows + float64(ctx.m[gi]))
}

// probSourceBeatsTarget is Pr(P_{s→t}): the probability that the maximal
// source gain exceeds the target bound. Per-fact utility is modeled as a
// sum of i.i.d. per-row contributions; with rows spread uniformly over
// value combinations, the per-fact mean is inversely proportional to the
// group's fact count, and both sides share variance σ² (Section VI-C).
func (ctx *planContext) probSourceBeatsTarget(si, ti int) float64 {
	muS := 1 / float64(max(1, ctx.m[si]))
	muT := 1 / float64(max(1, ctx.m[ti]))
	return stats.ProbGreater(muS, muT, ctx.opts.Sigma)
}

// probPruned is Pr(P_t) for a target given the source set: one minus the
// probability that no source dominates it (independence assumption).
func (ctx *planContext) probPruned(source []int, ti int) float64 {
	notPruned := 1.0
	for _, si := range source {
		notPruned *= 1 - ctx.probSourceBeatsTarget(si, ti)
	}
	return 1 - notPruned
}

// probSurvives is Pr(¬P_g): the probability that group g survives all
// pruning attempts, i.e. no chosen target that generalizes g is pruned.
func (ctx *planContext) probSurvives(plan Plan, gi int) float64 {
	groups := ctx.e.Groups()
	p := 1.0
	for _, ti := range plan.Targets {
		if !dimsSubset(groups[ti].Dims, groups[gi].Dims) {
			continue
		}
		for _, si := range plan.Source {
			p *= 1 - ctx.probSourceBeatsTarget(si, ti)
		}
	}
	return p
}

// planCost estimates the total data-processing cost of a pruning plan
// per the Section VI-C model: source utility scans, target bound
// computations, and the expected cost of scanning unpruned groups.
func (ctx *planContext) planCost(plan Plan) float64 {
	inSource := make(map[int]bool, len(plan.Source))
	cost := 0.0
	for _, si := range plan.Source {
		cost += ctx.costUtility(si)
		inSource[si] = true
	}
	for _, ti := range plan.Targets {
		cost += ctx.costBound(ti)
	}
	for gi := range ctx.e.Groups() {
		if inSource[gi] {
			continue
		}
		cost += ctx.probSurvives(plan, gi) * ctx.costUtility(gi)
	}
	return cost
}

// heuristicValue is H(t, S, L): the expected number of fact groups
// removed by pruning target t — its pruning probability times the number
// of groups in L it generalizes (Section VI-D).
func (ctx *planContext) heuristicValue(ti int, source []int, left map[int]bool) float64 {
	groups := ctx.e.Groups()
	covered := 0
	for gi := range left {
		if dimsSubset(groups[ti].Dims, groups[gi].Dims) {
			covered++
		}
	}
	return ctx.probPruned(source, ti) * float64(covered)
}

// candidatePlans implements Algorithm 4. Pruning sources are prefixes of
// the groups sorted by ascending fact count (groups with few facts have
// the highest expected per-fact utility); for each source, targets are
// added greedily by the H heuristic, with every intermediate target set
// emitted as a candidate. The full-scan plan (all groups as source, no
// targets) is always a candidate, so the optimizer can fall back to base
// greedy when pruning cannot pay off.
func candidatePlans(ctx *planContext) []Plan {
	groups := ctx.e.Groups()
	var plans []Plan
	for prefix := 1; prefix <= len(ctx.byM); prefix++ {
		source := append([]int(nil), ctx.byM[:prefix]...)
		if prefix == len(ctx.byM) {
			plans = append(plans, Plan{Source: source})
			break
		}
		left := make(map[int]bool)
		for _, gi := range ctx.byM[prefix:] {
			left[gi] = true
		}
		var targets []int
		for len(left) > 0 {
			bestT, bestH := -1, -1.0
			for gi := range left {
				if h := ctx.heuristicValue(gi, source, left); h > bestH || (h == bestH && (bestT < 0 || gi < bestT)) {
					bestH, bestT = h, gi
				}
			}
			targets = append(targets, bestT)
			plans = append(plans, Plan{
				Source:  source,
				Targets: append([]int(nil), targets...),
			})
			for gi := range left {
				if dimsSubset(groups[bestT].Dims, groups[gi].Dims) {
					delete(left, gi)
				}
			}
		}
	}
	return plans
}

// OptPrune selects the minimum-cost pruning plan among Algorithm 4's
// candidates (the OPT_PRUNE function of Algorithm 3). This is the G-O
// strategy of the paper's experiments.
func OptPrune(e *Evaluator, opts Options) Plan {
	ctx := newPlanContext(e, opts)
	plans := candidatePlans(ctx)
	best := plans[0]
	bestCost := ctx.planCost(best)
	for _, p := range plans[1:] {
		if c := ctx.planCost(p); c < bestCost {
			best, bestCost = p, c
		}
	}
	return best
}

// NaivePlan is the G-P strategy: the smallest group (by fact count) is
// the only pruning source and every remaining group is a pruning target,
// in the order Algorithm 4 considers them. No cost-based selection
// happens, which the paper shows can even increase overheads.
func NaivePlan(e *Evaluator, opts Options) Plan {
	ctx := newPlanContext(e, opts)
	if len(ctx.byM) == 0 {
		return Plan{}
	}
	source := []int{ctx.byM[0]}
	left := make(map[int]bool)
	for _, gi := range ctx.byM[1:] {
		left[gi] = true
	}
	var targets []int
	groups := e.Groups()
	for len(left) > 0 {
		bestT, bestH := -1, -1.0
		for gi := range left {
			if h := ctx.heuristicValue(gi, source, left); h > bestH || (h == bestH && (bestT < 0 || gi < bestT)) {
				bestH, bestT = h, gi
			}
		}
		targets = append(targets, bestT)
		for gi := range left {
			if dimsSubset(groups[bestT].Dims, groups[gi].Dims) {
				delete(left, gi)
			}
		}
	}
	return Plan{Source: source, Targets: targets}
}
