package summarize

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ExactParallel runs ExactParallelCtx without cancellation support.
func ExactParallel(e *Evaluator, opts Options) Summary {
	return ExactParallelCtx(context.Background(), e, opts)
}

// ExactParallelCtx is the parallel form of ExactCtx: Algorithm 1's
// exhaustive enumeration with both pruning rules, with the canonical
// decreasing-utility DFS split into root subtrees that are distributed
// over opts.Workers goroutines (default runtime.GOMAXPROCS(0)).
//
// The subtrees sit in a shared deque; when the deque starves — fewer
// queued subtrees than workers, the signature of a skewed search tree —
// a worker splits the node it is expanding and re-queues the sibling
// subtrees, so one heavy subtree never serializes the search. The
// incumbent bound b is shared through an atomic (utility bits behind an
// epsilon-guarded CAS): any worker's improvement immediately tightens
// every other worker's pruning rule 2. Each worker walks the
// evaluator's immutable problem layout with a private pooled pathState,
// so workers never contend on per-row scratch.
//
// The result is bit-identical to ExactCtx regardless of worker count or
// discovery order: a speech's utility is computed along its canonical
// path (same float operations in the same order as the sequential DFS),
// every potential optimum survives pruning under any bound timeline
// (the epsilon guard keeps equal-utility speeches admissible), and the
// merge breaks utility ties toward the speech that the sequential DFS
// would have evaluated first (lexicographically smallest canonical
// position sequence). Run statistics aggregate exactly — per-worker
// local counters merged at join — but NodesExpanded, SpeechesEvaluated
// and JoinedRows legitimately vary with worker scheduling for more than
// one worker, because the shared bound tightens at different moments;
// with Workers=1 they equal ExactCtx's counters exactly.
//
// Timeouts and cancellation follow ExactCtx: the first worker to
// observe the deadline (or a cancelled ctx) aborts all workers within
// ctxCheckEvery nodes each, and the merged best-so-far speech is
// returned with Stats.TimedOut or Stats.Cancelled set.
func ExactParallelCtx(ctx context.Context, e *Evaluator, opts Options) Summary {
	opts = opts.withDefaults()
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	joined0 := e.JoinedRows
	var stats RunStats
	stats.Workers = workers

	utils := e.singleFactUtilities()
	stats.FactsEvaluated = len(utils)
	order := e.orderedFactsByUtility(utils)

	m := opts.MaxFacts
	if m > len(order) {
		m = len(order)
	}

	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	bestU := -1.0
	var best []int32

	if m == 0 {
		// No candidate facts: the empty speech is the only (and optimal)
		// speech, exactly as the sequential DFS evaluates it at its root.
		stats.SpeechesEvaluated = 1
		bestU = 0
	} else {
		s := &parShared{
			e:          e,
			utils:      utils,
			order:      order,
			dom:        e.dominanceReps(),
			m:          m,
			workers:    workers,
			lowerBound: opts.LowerBound,
			queue:      newTaskQueue(),
			deadline:   deadline,
			ctx:        ctx,
			watchCtx:   ctx.Done() != nil,
		}
		// Split the first two levels at most: with the root level already
		// task-per-subtree, that is granularity enough for any worker
		// count without flooding the deque near the leaves.
		s.splitMaxDepth = m - 1
		if s.splitMaxDepth > 2 {
			s.splitMaxDepth = 2
		}
		s.bound.Store(math.Float64bits(math.Max(opts.LowerBound, 0)))
		for p := range order {
			s.queue.push(subtreeTask{prefix: []int32{int32(p)}, sumU: 0})
		}

		ws := make([]*exactWorker, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			w := acquireExactWorker(e, opts.LowerBound)
			ws[i] = w
			wg.Add(1)
			go func() {
				defer wg.Done()
				w.run(s)
			}()
		}
		wg.Wait()

		// Merge: per-worker counters sum exactly; the best speech is the
		// maximum utility with the sequential DFS's tie-break (earliest
		// canonical position sequence). Worker order cannot matter — the
		// merge rule is a total order over candidates.
		var bestPos []int32
		for _, w := range ws {
			stats.NodesExpanded += w.stats.NodesExpanded
			stats.SpeechesEvaluated += w.stats.SpeechesEvaluated
			stats.DominatedSkipped += w.stats.DominatedSkipped
			e.JoinedRows += w.joined
			if w.bestU >= 0 && (w.bestU > bestU || (w.bestU == bestU && lexLess(w.bestPos, bestPos))) {
				bestU = w.bestU
				best = w.best
				bestPos = w.bestPos
			}
		}
		switch s.abort.Load() {
		case abortTimeout:
			stats.TimedOut = true
		case abortCancel:
			stats.Cancelled = true
		}
		// best still aliases the winning worker's pooled w.best backing
		// array; copy it out before any worker returns to the pool, or a
		// concurrent ExactParallelCtx acquiring the same worker would
		// overwrite it in place.
		best = append([]int32(nil), best...)
		for _, w := range ws {
			releaseExactWorker(w)
		}
	}

	if bestU < 0 {
		bestU = 0
		best = nil
	}

	residual := e.PriorError() - bestU
	out := Summary{
		FactIdx:       best,
		Utility:       bestU,
		PriorError:    e.PriorError(),
		ResidualError: residual,
	}
	for _, fi := range best {
		out.Facts = append(out.Facts, e.Facts()[fi])
	}
	stats.Elapsed = time.Since(start)
	stats.JoinedRows = e.JoinedRows - joined0
	out.Stats = stats
	return out
}

const (
	abortNone    = 0
	abortTimeout = 1
	abortCancel  = 2
)

// parShared is the per-run state every search worker shares: the
// evaluator's immutable problem layout, the canonical order, the task
// deque, and the atomic incumbent bound.
type parShared struct {
	e             *Evaluator
	utils         []float64
	order         []int32
	dom           []int32
	m             int
	workers       int
	splitMaxDepth int
	lowerBound    float64
	bound         atomic.Uint64 // Float64bits of the shared incumbent b (≥ 0)
	abort         atomic.Int32  // abortNone / abortTimeout / abortCancel
	queue         *taskQueue
	deadline      time.Time
	ctx           context.Context
	watchCtx      bool
}

// publishBound lifts the shared incumbent to u. The CAS is
// epsilon-guarded: improvements within pruneEps of the current bound
// are not published — they could not change any pruning decision (rule
// 2 compares against b−ε) but would stampede the cache line under
// many near-tied evaluations.
func (s *parShared) publishBound(u float64) {
	for {
		cur := s.bound.Load()
		if u <= math.Float64frombits(cur)+pruneEps {
			return
		}
		if s.bound.CompareAndSwap(cur, math.Float64bits(u)) {
			return
		}
	}
}

// subtreeTask is one unit of search work: expand order[prefix[last]]
// under the path prefix[:last] and enumerate its whole subtree. sumU is
// the sum of single-fact utilities of the interior prefix (Lemma 2's
// S.U at the task's parent node).
type subtreeTask struct {
	prefix []int32
	sumU   float64
}

// taskQueue is the shared subtree deque: FIFO pop keeps the canonical
// enumeration order when one worker runs alone (bit-and-counter parity
// with ExactCtx), pending tracks queued plus in-flight tasks so workers
// know when the search is exhausted, and qlen lets the starvation probe
// run without taking the lock on the search hot path.
type taskQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	items   []subtreeTask
	head    int
	pending int
	qlen    atomic.Int64
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *taskQueue) push(t subtreeTask) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.pending++
	q.qlen.Add(1)
	q.cond.Signal()
	q.mu.Unlock()
}

// pop blocks until a task is available or the search is exhausted
// (nothing queued and nothing in flight that could queue more).
func (q *taskQueue) pop() (subtreeTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && q.pending > 0 {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return subtreeTask{}, false
	}
	t := q.items[q.head]
	q.items[q.head] = subtreeTask{}
	q.head++
	q.qlen.Add(-1)
	return t, true
}

// done retires one popped task; the last retirement wakes all waiters.
func (q *taskQueue) done() {
	q.mu.Lock()
	q.pending--
	if q.pending == 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

func (q *taskQueue) starving(workers int) bool {
	return q.qlen.Load() < int64(workers)
}

// exactWorker is one search goroutine's private state: a pathState over
// the shared evaluator, the current path (fact indices and canonical
// positions), the dominance on-path counters, a worker-local exact
// incumbent (the shared atomic may lag by the epsilon guard), and local
// statistics merged at join.
type exactWorker struct {
	path    pathState
	chosen  []int32
	posSeq  []int32
	domCnt  []int32
	localB  float64
	bestU   float64
	best    []int32
	bestPos []int32
	stats   RunStats
	joined  int64
	stop    bool
}

var exactWorkerPool = sync.Pool{New: func() any { return new(exactWorker) }}

// acquireExactWorker returns a pooled worker reset for a fresh search
// over e with the given seed bound.
func acquireExactWorker(e *Evaluator, lowerBound float64) *exactWorker {
	w := exactWorkerPool.Get().(*exactWorker)
	w.chosen = w.chosen[:0]
	w.posSeq = w.posSeq[:0]
	if cap(w.domCnt) < e.NumFacts() {
		w.domCnt = make([]int32, e.NumFacts())
	} else {
		w.domCnt = w.domCnt[:e.NumFacts()]
		for i := range w.domCnt {
			w.domCnt[i] = 0
		}
	}
	w.localB = lowerBound
	w.bestU = -1
	w.best = w.best[:0]
	w.bestPos = w.bestPos[:0]
	w.stats = RunStats{}
	w.joined = 0
	w.stop = false
	return w
}

// releaseExactWorker returns a worker's scratch to the pool. The next
// acquire re-slices w.best/w.bestPos to length zero and appends into
// the same backing arrays, so the caller must finish copying any result
// it read out of the worker before releasing it.
func releaseExactWorker(w *exactWorker) {
	w.path.undoRow = w.path.undoRow[:0]
	w.path.undoVal = w.path.undoVal[:0]
	exactWorkerPool.Put(w)
}

// bound is the worker's effective pruning bound: its own exact local
// incumbent or the shared atomic, whichever is tighter.
func (w *exactWorker) bound(s *parShared) float64 {
	if g := math.Float64frombits(s.bound.Load()); g > w.localB {
		return g
	}
	return w.localB
}

// run drains the task deque until the search is exhausted or aborted.
func (w *exactWorker) run(s *parShared) {
	for {
		t, ok := s.queue.pop()
		if !ok {
			return
		}
		// Poll at every task boundary as well as inside dfs: a task whose
		// subtree is smaller than ctxCheckEvery nodes would otherwise
		// never observe a pre-cancelled context.
		if !w.checkAbort(s) {
			w.runTask(s, t)
		}
		s.queue.done()
	}
}

// runTask expands a task's root exactly like a sequential sibling:
// bound-checked against the current incumbent, dominance-checked
// against the prefix. Both checks run before the path state is
// rebuilt — begin() copies the O(rows) prior-deviation array, and
// under tight warm-start bounds most tasks die right here — so only
// surviving tasks pay for reconstructing the interior prefix (pure
// state rebuild; those expansions were already counted by the
// splitter).
func (w *exactWorker) runTask(s *parShared, t subtreeTask) {
	n := len(t.prefix)
	last := t.prefix[n-1]
	fi := s.order[last]
	u := s.utils[fi]
	remaining := s.m - (n - 1)
	if t.sumU+float64(remaining)*u < w.bound(s)-pruneEps {
		// The whole subtree is bound-pruned (the deque equivalent of the
		// sequential sibling-loop break).
		return
	}
	for _, pos := range t.prefix[:n-1] {
		if s.dom[s.order[pos]] == s.dom[fi] {
			w.stats.DominatedSkipped++
			return
		}
	}
	w.path.begin(s.e)
	w.chosen = w.chosen[:0]
	w.posSeq = w.posSeq[:0]
	for _, pos := range t.prefix[:n-1] {
		pfi := s.order[pos]
		w.chosen = append(w.chosen, pfi)
		w.posSeq = append(w.posSeq, pos)
		w.domCnt[s.dom[pfi]]++
		w.path.push(s.e, pfi)
	}
	w.stats.NodesExpanded++
	w.chosen = append(w.chosen, fi)
	w.posSeq = append(w.posSeq, last)
	w.domCnt[s.dom[fi]]++
	savedU, savedPost := w.path.u, w.path.post
	mark := w.path.push(s.e, fi)
	w.dfs(s, int(last)+1, t.sumU+u)
	w.path.pop(mark, savedU, savedPost)
	w.domCnt[s.dom[fi]]--
	w.chosen = w.chosen[:len(w.chosen)-1]
	w.posSeq = w.posSeq[:len(w.posSeq)-1]
	for i := n - 2; i >= 0; i-- {
		w.domCnt[s.dom[s.order[t.prefix[i]]]]--
	}
}

// evaluate scores the worker's current path as a completed speech: the
// incremental path state already holds its utility. Ties against the
// worker's best break toward the earlier canonical position sequence,
// which is exactly the sequential DFS's first-found-wins rule.
func (w *exactWorker) evaluate(s *parShared) {
	u := w.path.u
	w.joined += w.path.post
	w.stats.SpeechesEvaluated++
	if u > w.bestU || (u == w.bestU && lexLess(w.posSeq, w.bestPos)) {
		w.bestU = u
		w.best = append(w.best[:0], w.chosen...)
		w.bestPos = append(w.bestPos[:0], w.posSeq...)
	}
	if u > w.localB {
		w.localB = u
		s.publishBound(u)
	}
}

// checkAbort polls the deadline, the context, and the shared abort
// state; it mirrors ExactCtx's poll (deadline before cancellation) so a
// lone worker counts timeouts identically to the sequential search.
func (w *exactWorker) checkAbort(s *parShared) bool {
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.abort.CompareAndSwap(abortNone, abortTimeout)
		w.stop = true
		return true
	}
	if s.watchCtx {
		switch s.ctx.Err() {
		case nil:
		case context.DeadlineExceeded:
			s.abort.CompareAndSwap(abortNone, abortTimeout)
			w.stop = true
			return true
		default:
			s.abort.CompareAndSwap(abortNone, abortCancel)
			w.stop = true
			return true
		}
	}
	if s.abort.Load() != abortNone {
		w.stop = true
		return true
	}
	return false
}

// dfs is the sequential DFS of ExactCtx run on the worker's private
// path state, plus the starvation-triggered split: when the deque runs
// low near the top of the tree, the siblings of the node just expanded
// are re-queued as subtree tasks instead of being walked inline.
func (w *exactWorker) dfs(s *parShared, pos int, sumU float64) {
	if w.stop {
		return
	}
	if w.stats.NodesExpanded%ctxCheckEvery == 0 && w.checkAbort(s) {
		return
	}
	if len(w.chosen) == s.m {
		w.evaluate(s)
		return
	}
	extended := false
	remaining := s.m - len(w.chosen)
	for i := pos; i < len(s.order); i++ {
		fi := s.order[i]
		u := s.utils[fi]
		if sumU+float64(remaining)*u < w.bound(s)-pruneEps {
			break
		}
		if w.domCnt[s.dom[fi]] > 0 {
			w.stats.DominatedSkipped++
			continue
		}
		w.stats.NodesExpanded++
		extended = true
		w.chosen = append(w.chosen, fi)
		w.posSeq = append(w.posSeq, int32(i))
		w.domCnt[s.dom[fi]]++
		savedU, savedPost := w.path.u, w.path.post
		mark := w.path.push(s.e, fi)
		w.dfs(s, i+1, sumU+u)
		w.path.pop(mark, savedU, savedPost)
		w.domCnt[s.dom[fi]]--
		w.chosen = w.chosen[:len(w.chosen)-1]
		w.posSeq = w.posSeq[:len(w.posSeq)-1]
		if w.stop {
			return
		}
		if s.workers > 1 && len(w.chosen) < s.splitMaxDepth && s.queue.starving(s.workers) {
			// Offload the remaining siblings as subtree tasks. Each is
			// bound-checked now for flood control and re-checked (with a
			// possibly tighter incumbent) when popped.
			for j := i + 1; j < len(s.order); j++ {
				if sumU+float64(remaining)*s.utils[s.order[j]] < w.bound(s)-pruneEps {
					break
				}
				prefix := make([]int32, len(w.posSeq)+1)
				copy(prefix, w.posSeq)
				prefix[len(w.posSeq)] = int32(j)
				s.queue.push(subtreeTask{prefix: prefix, sumU: sumU})
			}
			return
		}
	}
	if !extended && len(w.chosen) > 0 {
		w.evaluate(s)
	}
}

// lexLess reports whether a precedes b in the canonical enumeration
// order (lexicographic over position sequences; a nil/empty b means "no
// candidate yet" and never precedes a real one via the bestU sentinel).
func lexLess(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
