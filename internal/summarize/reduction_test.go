package summarize

import (
	"fmt"
	"math/rand"
	"testing"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// This file turns the paper's NP-hardness reduction (Theorem 4) into an
// executable test: a set cover instance maps to a speech summarization
// problem such that U can be covered with m sets iff the optimal
// m-fact speech has deviation zero. Running the exact algorithm on the
// reduction must therefore decide set cover.

// setCoverInstance is a universe {0..n-1} and subsets of it.
type setCoverInstance struct {
	n       int
	subsets [][]int
}

// reduce builds the relation and candidate facts of the reduction: one
// row per universe element with target value 1 and prior 0; one column
// Cs per subset s marking membership with a unique value; one fact per
// subset with value 1 scoped to its membership marker.
func (sc setCoverInstance) reduce(t *testing.T) (*relation.Relation, []fact.Fact) {
	t.Helper()
	dims := make([]string, len(sc.subsets))
	for i := range sc.subsets {
		dims[i] = fmt.Sprintf("C%d", i)
	}
	b := relation.NewBuilder("setcover", relation.Schema{
		Dimensions: dims, Targets: []string{"v"},
	})
	member := make([]map[int]bool, len(sc.subsets))
	for si, s := range sc.subsets {
		member[si] = map[int]bool{}
		for _, e := range s {
			member[si][e] = true
		}
	}
	rowVals := make([]string, len(sc.subsets))
	for e := 0; e < sc.n; e++ {
		for si := range sc.subsets {
			if member[si][e] {
				rowVals[si] = "in"
			} else {
				rowVals[si] = "out"
			}
		}
		b.MustAddRow(rowVals, []float64{1})
	}
	rel := b.Freeze()

	var facts []fact.Fact
	for si := range sc.subsets {
		code, ok := rel.Dim(si).Code("in")
		if !ok {
			// Subset is empty in this instance; no fact.
			continue
		}
		facts = append(facts, fact.Fact{
			Scope: fact.NewScope([]int{si}, []int32{code}),
			Value: 1,
		})
	}
	return rel, facts
}

// coverableBruteForce decides set cover exactly by enumeration.
func (sc setCoverInstance) coverableBruteForce(m int) bool {
	var rec func(start int, covered map[int]bool, left int) bool
	rec = func(start int, covered map[int]bool, left int) bool {
		if len(covered) == sc.n {
			return true
		}
		if left == 0 || start >= len(sc.subsets) {
			return false
		}
		for i := start; i < len(sc.subsets); i++ {
			added := []int{}
			for _, e := range sc.subsets[i] {
				if !covered[e] {
					covered[e] = true
					added = append(added, e)
				}
			}
			if rec(i+1, covered, left-1) {
				return true
			}
			for _, e := range added {
				delete(covered, e)
			}
		}
		return false
	}
	return rec(0, map[int]bool{}, m)
}

// solveByReduction decides set cover by running the exact summarizer on
// the reduced instance: coverable iff optimal utility equals n (zero
// residual deviation against the zero prior).
func solveByReduction(t *testing.T, sc setCoverInstance, m int) bool {
	rel, facts := sc.reduce(t)
	e := NewEvaluator(rel.FullView(), 0, facts, fact.ConstantPrior(0))
	greedy := Greedy(e, Options{MaxFacts: m})
	exact := Exact(e, Options{MaxFacts: m, LowerBound: greedy.Utility})
	return exact.Utility >= float64(sc.n)-1e-9
}

func TestTheorem4ReductionPositive(t *testing.T) {
	// {0,1,2} ∪ {3,4} covers the universe with 2 sets.
	sc := setCoverInstance{
		n: 5,
		subsets: [][]int{
			{0, 1, 2}, {2, 3}, {3, 4}, {0, 4},
		},
	}
	if !sc.coverableBruteForce(2) {
		t.Fatal("instance should be 2-coverable")
	}
	if !solveByReduction(t, sc, 2) {
		t.Error("reduction: exact summarizer failed to find the cover")
	}
}

func TestTheorem4ReductionNegative(t *testing.T) {
	// Three disjoint pairs cannot be covered by two sets.
	sc := setCoverInstance{
		n: 6,
		subsets: [][]int{
			{0, 1}, {2, 3}, {4, 5},
		},
	}
	if sc.coverableBruteForce(2) {
		t.Fatal("instance should not be 2-coverable")
	}
	if solveByReduction(t, sc, 2) {
		t.Error("reduction: summarizer claims a nonexistent cover")
	}
}

// TestTheorem4ReductionRandom cross-checks the reduction against brute
// force on random instances — the executable form of Theorem 4.
func TestTheorem4ReductionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		k := 3 + rng.Intn(4)
		sc := setCoverInstance{n: n}
		for i := 0; i < k; i++ {
			var s []int
			for e := 0; e < n; e++ {
				if rng.Intn(3) == 0 {
					s = append(s, e)
				}
			}
			if len(s) == 0 {
				s = []int{rng.Intn(n)}
			}
			sc.subsets = append(sc.subsets, s)
		}
		m := 1 + rng.Intn(3)
		want := sc.coverableBruteForce(m)
		got := solveByReduction(t, sc, m)
		if want != got {
			t.Fatalf("trial %d (n=%d k=%d m=%d): brute=%v reduction=%v",
				trial, n, k, m, want, got)
		}
	}
}
