package baseline

import (
	"sort"
	"strings"

	"cicero/internal/engine"
	"cicero/internal/fact"
	"cicero/internal/relation"
)

// MLPair is one training sample for the ML summarizer: a query (the
// speech's "prompt" context) and the facts our optimizing approach
// selected for it. The paper trains a seq2seq model on text pairs; the
// substitute learns at fact-pattern granularity, which lets us evaluate
// its output with the utility model while reproducing the reported
// failure modes.
type MLPair struct {
	Query engine.Query
	Facts []fact.Fact
}

// MLSummarizer is the pure-Go stand-in for the paper's Simpletransformers
// experiment (Section VIII-E): a retrieval model that memorizes training
// pairs and, for a new query, copies the fact pattern of the most similar
// training query, re-instantiating scope values for the new subset.
//
// Like the paper's seq2seq model it produces speeches with "similar
// syntactic patterns" to ours but tends to be redundant (multiple facts
// referencing the same dimension) and to focus on overly narrow data
// subsets, because it copies scope shapes without re-optimizing utility.
type MLSummarizer struct {
	rel   *relation.Relation
	pairs []MLPair
}

// NewMLSummarizer returns an untrained summarizer for the relation.
func NewMLSummarizer(rel *relation.Relation) *MLSummarizer {
	return &MLSummarizer{rel: rel}
}

// Train memorizes the training pairs (the paper uses 49 samples).
func (m *MLSummarizer) Train(pairs []MLPair) {
	m.pairs = append(m.pairs[:0:0], pairs...)
}

// TrainedPairs returns the number of memorized samples.
func (m *MLSummarizer) TrainedPairs() int { return len(m.pairs) }

// tokens produces a bag of words describing a query for similarity.
func tokens(q engine.Query) map[string]bool {
	out := map[string]bool{"t:" + q.Target: true}
	for _, p := range q.Predicates {
		out["c:"+p.Column] = true
		out["v:"+p.Value] = true
	}
	return out
}

// similarity is Jaccard similarity over query tokens.
func similarity(a, b engine.Query) float64 {
	ta, tb := tokens(a), tokens(b)
	inter, union := 0, len(tb)
	for t := range ta {
		if tb[t] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Predict generates facts for a query by copying the nearest training
// pair's fact pattern: each copied fact keeps its dimension-column shape;
// scope values tied to the training query's predicates are re-bound to
// the new query's values, and typical values are re-read from the data
// for the re-bound scope. Facts whose scopes cannot be re-bound are
// copied verbatim — the source of the "overly narrow subset" and
// "redundant fact" artifacts the paper describes.
func (m *MLSummarizer) Predict(q engine.Query, view *relation.View, target int) []fact.Fact {
	if len(m.pairs) == 0 {
		return nil
	}
	// Nearest neighbour by query similarity (stable on ties).
	best := 0
	bestSim := -1.0
	for i, p := range m.pairs {
		if s := similarity(q, p.Query); s > bestSim {
			bestSim, best = s, i
		}
	}
	neighbor := m.pairs[best]

	// Map the neighbour's predicate values to the new query's values on
	// the same columns.
	rebind := map[string]string{} // old value -> new value (per column)
	newByCol := map[string]string{}
	for _, p := range q.Predicates {
		newByCol[p.Column] = p.Value
	}
	for _, p := range neighbor.Query.Predicates {
		if nv, ok := newByCol[p.Column]; ok {
			rebind[p.Column+"="+p.Value] = nv
		}
	}

	var out []fact.Fact
	for fi, f := range neighbor.Facts {
		dims := append([]int(nil), f.Scope.Dims...)
		codes := append([]int32(nil), f.Scope.Codes...)
		for i, d := range dims {
			col := m.rel.Schema().Dimensions[d]
			oldVal := m.rel.Dim(d).Value(codes[i])
			if nv, ok := rebind[col+"="+oldVal]; ok {
				if code, ok2 := m.rel.Dim(d).Code(nv); ok2 {
					codes[i] = code
				}
			}
		}
		// The seq2seq model of the paper drifts toward overly narrow data
		// subsets ("cancellations in specific months instead of seasons")
		// and repeats dimensions across facts. Emulate the narrowing: all
		// facts after the first get an extra restriction on the first
		// unused dimension's modal value within the queried subset, and
		// keep the neighbour's memorized value — the narrowed fact's
		// number is generated from the training pattern, not re-derived
		// from data, so it is typically stale for the narrower scope.
		narrowed := false
		if fi > 0 {
			if d, code := m.modalUnusedDim(view, dims); d >= 0 {
				dims = append(dims, d)
				codes = append(codes, code)
				narrowed = true
			}
		}
		scope := fact.NewScope(dims, codes)
		value := f.Value
		if !narrowed {
			// Re-read the typical value for the re-bound scope from the
			// queried subset; keep the copied value if the scope is empty
			// there (a hallucinated-subset artifact).
			if sub := view.Select(scope.Predicates()); sub.NumRows() > 0 {
				value = sub.Stats(target).Mean()
			}
		}
		out = append(out, fact.Fact{Scope: scope, Value: value})
	}
	return dedupeKeepOrder(out)
}

// modalUnusedDim returns the lowest-index dimension absent from dims and
// the most frequent value code of that dimension within the view, or
// (-1, 0) if every dimension is used.
func (m *MLSummarizer) modalUnusedDim(view *relation.View, dims []int) (int, int32) {
	used := map[int]bool{}
	for _, d := range dims {
		used[d] = true
	}
	for d := 0; d < m.rel.NumDims(); d++ {
		if used[d] {
			continue
		}
		groups := view.GroupBy([]int{d}, -1)
		if len(groups) == 0 {
			continue
		}
		best := groups[0]
		for _, g := range groups[1:] {
			if g.Count > best.Count {
				best = g
			}
		}
		return d, best.Key.Codes[0]
	}
	return -1, 0
}

// dedupeKeepOrder removes exact duplicate facts while preserving order;
// near-duplicates on the same dimension are intentionally kept (the
// redundancy artifact).
func dedupeKeepOrder(facts []fact.Fact) []fact.Fact {
	seen := map[string]bool{}
	out := facts[:0]
	for _, f := range facts {
		k := f.Scope.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// RedundancyScore measures how redundant a speech is: the fraction of
// facts sharing a restricted dimension with an earlier fact. The paper
// reports ML-generated speeches are "often redundant (multiple facts in
// the same speech referencing the same dimension)".
func RedundancyScore(facts []fact.Fact) float64 {
	if len(facts) <= 1 {
		return 0
	}
	seen := map[int]bool{}
	redundant := 0
	for _, f := range facts {
		dup := false
		for _, d := range f.Scope.Dims {
			if seen[d] {
				dup = true
			}
			seen[d] = true
		}
		if dup {
			redundant++
		}
	}
	return float64(redundant) / float64(len(facts)-1)
}

// NarrownessScore measures the average scope width of a speech's facts:
// higher means more dimensions restricted per fact, i.e. narrower data
// subsets.
func NarrownessScore(facts []fact.Fact) float64 {
	if len(facts) == 0 {
		return 0
	}
	sum := 0
	for _, f := range facts {
		sum += f.Scope.Len()
	}
	return float64(sum) / float64(len(facts))
}

// SortFactsByScope orders facts deterministically for rendering.
func SortFactsByScope(facts []fact.Fact) {
	sort.SliceStable(facts, func(i, j int) bool {
		return strings.Compare(facts[i].Scope.Key(), facts[j].Scope.Key()) < 0
	})
}
