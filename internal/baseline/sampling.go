// Package baseline implements the two comparison methods of the paper's
// evaluation: the sampling-based data vocalization approach of prior work
// (CiceroDB, compared in Section VIII-E, Figures 10 and 11) and a
// machine-learning summarizer standing in for the paper's
// Simpletransformers seq2seq experiment.
package baseline

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// RangeFact is a fact whose typical value is reported as a range rather
// than a point estimate, accounting for sampling imprecision — the output
// form of the sampling baseline ("the cancellation probability is between
// 5 and 10%" as opposed to "is 6%").
type RangeFact struct {
	Scope fact.Scope
	Lo    float64
	Hi    float64
}

// Mid returns the range midpoint, used when simulated listeners turn the
// range into a point expectation.
func (r RangeFact) Mid() float64 { return (r.Lo + r.Hi) / 2 }

// Width returns the range width, the imprecision penalty in user studies.
func (r RangeFact) Width() float64 { return r.Hi - r.Lo }

// SamplingOptions configures the sampling vocalizer.
type SamplingOptions struct {
	// MaxFacts is the number of sentences to produce.
	MaxFacts int
	// SampleSize is the number of rows drawn per sampling round.
	SampleSize int
	// Rounds is the number of sampling rounds per candidate evaluation.
	Rounds int
	// MaxDims bounds the dimensions per fact scope.
	MaxDims int
	// Seed drives the sampling RNG.
	Seed int64
}

func (o SamplingOptions) withDefaults() SamplingOptions {
	if o.MaxFacts <= 0 {
		o.MaxFacts = 3
	}
	if o.SampleSize <= 0 {
		o.SampleSize = 64
	}
	if o.Rounds <= 0 {
		o.Rounds = 12
	}
	if o.MaxDims <= 0 {
		o.MaxDims = 1
	}
	return o
}

// SamplingResult is the baseline's answer to one query.
type SamplingResult struct {
	Facts []RangeFact
	// Latency is the time until the first sentence is ready (the system
	// starts speaking); the remaining sampling overlaps with speech
	// output, so latency ≪ total processing time.
	Latency time.Duration
	// Total is the full processing time across all sentences.
	Total time.Duration
	// SampledRows counts rows processed, the work metric.
	SampledRows int
}

// SamplingAnswer runs the sampling vocalizer without cancellation
// support; see SamplingAnswerCtx.
func SamplingAnswer(view *relation.View, target int, freeDims []int, opts SamplingOptions) SamplingResult {
	return SamplingAnswerCtx(context.Background(), view, target, freeDims, opts)
}

// SamplingAnswerCtx emulates the run-time behaviour of the prior
// data-vocalization work: for each of MaxFacts sentence slots it
// estimates, via repeated sampling, which candidate scope reduces the
// listener's error most, and emits the estimated average as a confidence
// range. All estimation happens at query time — there is no
// pre-processing — which is exactly the latency trade-off Figure 10
// measures. Cancelling ctx stops the estimation between candidate
// evaluations, returning the sentences selected so far.
func SamplingAnswerCtx(ctx context.Context, view *relation.View, target int, freeDims []int, opts SamplingOptions) SamplingResult {
	opts = opts.withDefaults()
	watchCtx := ctx.Done() != nil
	rng := rand.New(rand.NewSource(opts.Seed))
	start := time.Now()
	var res SamplingResult

	n := view.NumRows()
	if n == 0 {
		return res
	}
	if freeDims == nil {
		freeDims = make([]int, view.Rel.NumDims())
		for i := range freeDims {
			freeDims[i] = i
		}
	}

	// Candidate scopes: the overall scope plus every value of every free
	// dimension (the prior work vocalizes one aggregate per sentence).
	type candidate struct {
		scope fact.Scope
	}
	var candidates []candidate
	candidates = append(candidates, candidate{scope: fact.NewScope(nil, nil)})
	for _, d := range freeDims {
		col := view.Rel.Dim(d)
		for code := int32(0); code < int32(col.Cardinality()); code++ {
			candidates = append(candidates, candidate{
				scope: fact.NewScope([]int{d}, []int32{code}),
			})
		}
	}

	chosen := map[string]bool{}
	for slot := 0; slot < opts.MaxFacts; slot++ {
		bestIdx := -1
		var bestRange RangeFact
		bestScore := -1.0
		for ci, c := range candidates {
			if watchCtx && ctx.Err() != nil {
				res.Total = time.Since(start)
				if res.Latency == 0 {
					res.Latency = res.Total
				}
				return res
			}
			if chosen[c.scope.Key()] {
				continue
			}
			mean, half, matched := sampleEstimate(view, target, c.scope, opts, rng, &res.SampledRows)
			if matched == 0 {
				continue
			}
			// Score: coverage-weighted spread from the global estimate —
			// the "interesting aggregate" heuristic of the prior work.
			score := float64(matched) * (math.Abs(mean) + half)
			if score > bestScore {
				bestScore = score
				bestIdx = ci
				bestRange = RangeFact{Scope: c.scope, Lo: mean - half, Hi: mean + half}
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen[candidates[bestIdx].scope.Key()] = true
		res.Facts = append(res.Facts, bestRange)
		if slot == 0 {
			res.Latency = time.Since(start)
		}
	}
	res.Total = time.Since(start)
	if res.Latency == 0 {
		res.Latency = res.Total
	}
	return res
}

// sampleEstimate estimates the mean target value within a scope via
// repeated random samples, returning the mean, the half-width of a
// 2-sigma confidence range, and the number of matching sampled rows.
func sampleEstimate(view *relation.View, target int, scope fact.Scope, opts SamplingOptions, rng *rand.Rand, rowCounter *int) (mean, half float64, matched int) {
	n := view.NumRows()
	col := view.Rel.Target(target)
	var sum, sumSq float64
	for round := 0; round < opts.Rounds; round++ {
		for s := 0; s < opts.SampleSize; s++ {
			i := rng.Intn(n)
			row := view.Row(i)
			*rowCounter++
			if !scope.Matches(view.Rel, row) {
				continue
			}
			v := col.At(int(row))
			sum += v
			sumSq += v * v
			matched++
		}
	}
	if matched == 0 {
		return 0, 0, 0
	}
	mean = sum / float64(matched)
	variance := sumSq/float64(matched) - mean*mean
	if variance < 0 {
		variance = 0
	}
	half = 2 * math.Sqrt(variance/float64(matched))
	return mean, half, matched
}

// RenderRanges produces the baseline's speech text with range values.
func RenderRanges(rel *relation.Relation, target string, facts []RangeFact) string {
	if len(facts) == 0 {
		return fmt.Sprintf("No data available on %s.", target)
	}
	var b strings.Builder
	for i, f := range facts {
		scope := "overall"
		if f.Scope.Len() > 0 {
			parts := make([]string, f.Scope.Len())
			for j, d := range f.Scope.Dims {
				parts[j] = fmt.Sprintf("%s %s",
					strings.ReplaceAll(rel.Schema().Dimensions[d], "_", " "),
					rel.Dim(d).Value(f.Scope.Codes[j]))
			}
			scope = "for " + strings.Join(parts, " and ")
		}
		if i == 0 {
			fmt.Fprintf(&b, "The %s is between %.3g and %.3g %s.", target, f.Lo, f.Hi, scope)
		} else {
			fmt.Fprintf(&b, " It is between %.3g and %.3g %s.", f.Lo, f.Hi, scope)
		}
	}
	return b.String()
}
