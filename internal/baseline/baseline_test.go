package baseline

import (
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/fact"
	"cicero/internal/relation"
	"cicero/internal/summarize"
)

func TestSamplingAnswerBasics(t *testing.T) {
	rel := dataset.Flights(4000, 1)
	view := rel.FullView()
	target := rel.Schema().TargetIndex("delay")
	res := SamplingAnswer(view, target, nil, SamplingOptions{MaxFacts: 3, Seed: 7})
	if len(res.Facts) != 3 {
		t.Fatalf("facts = %d, want 3", len(res.Facts))
	}
	if res.Latency <= 0 || res.Total < res.Latency {
		t.Errorf("latency %v total %v", res.Latency, res.Total)
	}
	if res.SampledRows == 0 {
		t.Error("sampling must process rows")
	}
	for _, f := range res.Facts {
		if f.Lo > f.Hi {
			t.Errorf("inverted range %v", f)
		}
		if f.Width() < 0 {
			t.Errorf("negative width")
		}
	}
}

func TestSamplingRangeContainsTruth(t *testing.T) {
	// With heavy sampling, the range for the overall scope should contain
	// the true mean.
	rel := dataset.Flights(3000, 2)
	view := rel.FullView()
	target := rel.Schema().TargetIndex("delay")
	res := SamplingAnswer(view, target, nil, SamplingOptions{
		MaxFacts: 1, SampleSize: 512, Rounds: 30, Seed: 3,
	})
	if len(res.Facts) == 0 {
		t.Fatal("no facts")
	}
	f := res.Facts[0]
	truth := view.Select(f.Scope.Predicates()).Stats(target).Mean()
	// Allow slack: 2-sigma ranges miss occasionally, widen by 50%.
	slack := f.Width()*0.25 + 1e-9
	if truth < f.Lo-slack || truth > f.Hi+slack {
		t.Errorf("true mean %v outside range [%v, %v]", truth, f.Lo, f.Hi)
	}
}

func TestSamplingEmptyView(t *testing.T) {
	rel := dataset.Flights(200, 1)
	empty := rel.FullView().Select([]relation.Predicate{{Dim: 0, Code: 999}})
	res := SamplingAnswer(empty, 0, nil, SamplingOptions{Seed: 1})
	if len(res.Facts) != 0 {
		t.Errorf("empty view produced %d facts", len(res.Facts))
	}
}

func TestSamplingDeterministic(t *testing.T) {
	rel := dataset.Flights(1000, 1)
	view := rel.FullView()
	a := SamplingAnswer(view, 1, nil, SamplingOptions{Seed: 5})
	b := SamplingAnswer(view, 1, nil, SamplingOptions{Seed: 5})
	if len(a.Facts) != len(b.Facts) {
		t.Fatal("fact counts differ")
	}
	for i := range a.Facts {
		if !a.Facts[i].Scope.Equal(b.Facts[i].Scope) ||
			a.Facts[i].Lo != b.Facts[i].Lo || a.Facts[i].Hi != b.Facts[i].Hi {
			t.Fatal("sampling not deterministic for fixed seed")
		}
	}
}

func TestRenderRanges(t *testing.T) {
	rel := dataset.Flights(500, 1)
	d := rel.Schema().DimIndex("season")
	code, _ := rel.Dim(d).Code("Winter")
	facts := []RangeFact{
		{Scope: fact.NewScope(nil, nil), Lo: 0.05, Hi: 0.10},
		{Scope: fact.NewScope([]int{d}, []int32{code}), Lo: 0.08, Hi: 0.15},
	}
	got := RenderRanges(rel, "cancellation probability", facts)
	for _, want := range []string{"between 0.05 and 0.1", "overall", "season Winter"} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q: %q", want, got)
		}
	}
	if empty := RenderRanges(rel, "x", nil); !strings.Contains(empty, "No data") {
		t.Errorf("empty render = %q", empty)
	}
}

// trainPairs builds ML training pairs by running the real optimizer on
// region queries, mirroring the paper's setup (49 training queries on the
// dimension with the most distinct values).
func trainPairs(t testing.TB, rel *relation.Relation, n int) []MLPair {
	t.Helper()
	cfg := engine.Config{
		Dataset:     rel.Name(),
		Targets:     []string{"delay"},
		Dimensions:  []string{"origin_region"},
		MaxQueryLen: 1,
		MaxFactDims: 2,
		MaxFacts:    3,
	}
	problems, err := engine.Problems(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pairs []MLPair
	for i := range problems {
		if len(problems[i].Query.Predicates) == 0 {
			continue
		}
		p := &problems[i]
		facts := p.GenerateFacts(cfg.MaxFactDims)
		e := summarize.NewEvaluator(p.View, p.Target, facts, p.Prior)
		sum := summarize.Greedy(e, summarize.Options{MaxFacts: 3})
		pairs = append(pairs, MLPair{Query: p.Query, Facts: sum.Facts})
		if len(pairs) == n {
			break
		}
	}
	return pairs
}

func TestMLPredictRebindsValues(t *testing.T) {
	rel := dataset.Flights(6000, 1)
	pairs := trainPairs(t, rel, 6)
	if len(pairs) < 3 {
		t.Fatalf("too few training pairs: %d", len(pairs))
	}
	ml := NewMLSummarizer(rel)
	ml.Train(pairs[:len(pairs)-1])
	if ml.TrainedPairs() != len(pairs)-1 {
		t.Errorf("trained pairs = %d", ml.TrainedPairs())
	}

	// Predict for the held-out query.
	held := pairs[len(pairs)-1]
	ti, preds, err := held.Query.Resolve(rel)
	if err != nil {
		t.Fatal(err)
	}
	view := rel.FullView().Select(preds)
	got := ml.Predict(held.Query, view, ti)
	if len(got) == 0 {
		t.Fatal("prediction empty")
	}
	// The prediction mimics the neighbour's syntactic shape: same number
	// of facts or fewer (dedupe), each with a valid scope.
	if len(got) > 3 {
		t.Errorf("predicted %d facts, want <= 3", len(got))
	}
	for _, f := range got {
		for _, d := range f.Scope.Dims {
			if d < 0 || d >= rel.NumDims() {
				t.Errorf("invalid scope dim %d", d)
			}
		}
	}
}

func TestMLPredictUntrained(t *testing.T) {
	rel := dataset.Flights(500, 1)
	ml := NewMLSummarizer(rel)
	if got := ml.Predict(engine.Query{Target: "delay"}, rel.FullView(), 1); got != nil {
		t.Errorf("untrained prediction = %v, want nil", got)
	}
}

// TestMLWorseThanOptimized reproduces the core Section VIII-E finding:
// ML-generated speeches achieve lower utility than optimizer output on
// held-out queries.
func TestMLWorseThanOptimized(t *testing.T) {
	rel := dataset.Flights(8000, 4)
	pairs := trainPairs(t, rel, 9)
	if len(pairs) < 5 {
		t.Fatalf("too few pairs: %d", len(pairs))
	}
	train, test := pairs[:len(pairs)-3], pairs[len(pairs)-3:]
	ml := NewMLSummarizer(rel)
	ml.Train(train)

	mlBetter := 0
	for _, held := range test {
		ti, preds, err := held.Query.Resolve(rel)
		if err != nil {
			t.Fatal(err)
		}
		view := rel.FullView().Select(preds)
		prior := fact.MeanPrior(rel.FullView(), ti)
		mlFacts := ml.Predict(held.Query, view, ti)
		uML := fact.Utility(view, mlFacts, prior, ti)
		uOpt := fact.Utility(view, held.Facts, prior, ti)
		if uML > uOpt+1e-9 {
			mlBetter++
		}
	}
	if mlBetter == len(test) {
		t.Error("ML should not dominate the optimizer on held-out queries")
	}
}

func TestSimilarity(t *testing.T) {
	a := engine.Query{Target: "delay", Predicates: []engine.NamedPredicate{{Column: "region", Value: "West"}}}
	b := engine.Query{Target: "delay", Predicates: []engine.NamedPredicate{{Column: "region", Value: "East"}}}
	c := engine.Query{Target: "cancelled"}
	if similarity(a, a) != 1 {
		t.Error("self similarity should be 1")
	}
	if similarity(a, b) <= similarity(a, c) {
		t.Error("same-column query should be more similar than different target")
	}
}

func TestRedundancyScore(t *testing.T) {
	s1 := fact.NewScope([]int{0}, []int32{0})
	s2 := fact.NewScope([]int{0}, []int32{1})
	s3 := fact.NewScope([]int{1}, []int32{0})
	if got := RedundancyScore([]fact.Fact{{Scope: s1}, {Scope: s2}}); got != 1 {
		t.Errorf("full redundancy = %v, want 1", got)
	}
	if got := RedundancyScore([]fact.Fact{{Scope: s1}, {Scope: s3}}); got != 0 {
		t.Errorf("no redundancy = %v, want 0", got)
	}
	if got := RedundancyScore(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestNarrownessScore(t *testing.T) {
	wide := fact.NewScope(nil, nil)
	narrow := fact.NewScope([]int{0, 1}, []int32{0, 0})
	if got := NarrownessScore([]fact.Fact{{Scope: wide}, {Scope: narrow}}); got != 1 {
		t.Errorf("narrowness = %v, want 1", got)
	}
	if NarrownessScore(nil) != 0 {
		t.Error("empty should be 0")
	}
}

func TestDedupeKeepOrder(t *testing.T) {
	s1 := fact.NewScope([]int{0}, []int32{0})
	s2 := fact.NewScope([]int{1}, []int32{0})
	in := []fact.Fact{{Scope: s1, Value: 1}, {Scope: s2, Value: 2}, {Scope: s1, Value: 3}}
	out := dedupeKeepOrder(in)
	if len(out) != 2 || out[0].Value != 1 || out[1].Value != 2 {
		t.Errorf("dedupe = %v", out)
	}
}
