package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// FromCSV reads a relation from CSV data with a header row. Columns listed
// in schema.Dimensions are read as strings, columns in schema.Targets are
// parsed as floats; other columns are ignored. Rows with unparsable target
// values are skipped and counted in the returned skip count.
func FromCSV(name string, r io.Reader, schema Schema) (*Relation, int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("read CSV header: %w", err)
	}
	colIdx := make(map[string]int, len(header))
	for i, h := range header {
		colIdx[h] = i
	}
	dimIdx := make([]int, len(schema.Dimensions))
	for i, d := range schema.Dimensions {
		j, ok := colIdx[d]
		if !ok {
			return nil, 0, fmt.Errorf("CSV is missing dimension column %q", d)
		}
		dimIdx[i] = j
	}
	tgtIdx := make([]int, len(schema.Targets))
	for i, t := range schema.Targets {
		j, ok := colIdx[t]
		if !ok {
			return nil, 0, fmt.Errorf("CSV is missing target column %q", t)
		}
		tgtIdx[i] = j
	}

	b := NewBuilder(name, schema)
	dims := make([]string, len(dimIdx))
	targets := make([]float64, len(tgtIdx))
	skipped := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("read CSV row: %w", err)
		}
		ok := true
		for i, j := range tgtIdx {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				ok = false
				break
			}
			targets[i] = v
		}
		if !ok {
			skipped++
			continue
		}
		for i, j := range dimIdx {
			dims[i] = rec[j]
		}
		if err := b.AddRow(dims, targets); err != nil {
			return nil, 0, err
		}
	}
	return b.Freeze(), skipped, nil
}

// FromCSVFile reads a relation from a CSV file on disk.
func FromCSVFile(name, path string, schema Schema) (*Relation, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return FromCSV(name, f, schema)
}

// ToCSV writes the relation as CSV with a header row (dimensions first,
// then targets), so generated data sets can be inspected or re-used.
func (r *Relation) ToCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, r.schema.Dimensions...), r.schema.Targets...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for row := 0; row < r.rows; row++ {
		for i, d := range r.dims {
			rec[i] = d.Value(d.data[row])
		}
		for i, t := range r.targets {
			rec[len(r.dims)+i] = strconv.FormatFloat(t.data[row], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
