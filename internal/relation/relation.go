// Package relation implements the in-memory columnar relational engine
// that serves as the storage and query substrate for speech summarization.
//
// The paper executes its algorithms as a series of SQL queries against
// Postgres. This package provides the equivalent logical operators over an
// in-memory, dictionary-encoded columnar representation: equality-predicate
// selection (σ), grouping and aggregation (Γ), projection (Π), and the
// fact-scope join (⋊⋉ with condition M: fact value is NULL or equals the
// row value in every dimension column).
//
// A Relation is immutable after Freeze; concurrent reads are safe.
//
// Every stage of the generate → evaluate → solve → serve flow stands
// on this substrate: the generate stage enumerates queries over its
// dimension dictionaries, evaluate and solve aggregate its views, and
// the serve stage's run-time extrema and comparisons select from it
// directly.
package relation

import (
	"fmt"
	"sort"
)

// NoValue marks an unrestricted dimension inside scopes and predicates.
// Dictionary codes are always non-negative, so -1 is never a valid value.
const NoValue = int32(-1)

// Schema describes the columns of a relation: dimension columns carry
// categorical values used in predicates and fact scopes, target columns
// carry the numerical values being summarized.
type Schema struct {
	Dimensions []string
	Targets    []string
}

// DimIndex returns the index of the named dimension column, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dimensions {
		if d == name {
			return i
		}
	}
	return -1
}

// TargetIndex returns the index of the named target column, or -1.
func (s *Schema) TargetIndex(name string) int {
	for i, t := range s.Targets {
		if t == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() Schema {
	return Schema{
		Dimensions: append([]string(nil), s.Dimensions...),
		Targets:    append([]string(nil), s.Targets...),
	}
}

// DimColumn is a dictionary-encoded categorical column. Row values are
// stored as int32 codes into the dictionary, keeping fact-scope matching a
// tight integer comparison loop.
type DimColumn struct {
	Name string
	dict []string
	code map[string]int32
	data []int32
}

// Cardinality returns the number of distinct values in the column.
func (c *DimColumn) Cardinality() int { return len(c.dict) }

// Value returns the string value for a dictionary code.
func (c *DimColumn) Value(code int32) string {
	if code < 0 || int(code) >= len(c.dict) {
		return ""
	}
	return c.dict[code]
}

// Code returns the dictionary code for a string value and whether the
// value appears in the column.
func (c *DimColumn) Code(value string) (int32, bool) {
	code, ok := c.code[value]
	return code, ok
}

// Values returns the dictionary in code order. The returned slice is a
// copy and may be modified by the caller.
func (c *DimColumn) Values() []string {
	return append([]string(nil), c.dict...)
}

// CodeAt returns the dictionary code of the given row.
func (c *DimColumn) CodeAt(row int) int32 { return c.data[row] }

// TargetColumn is a numerical column holding the values to summarize.
type TargetColumn struct {
	Name string
	data []float64
}

// At returns the value of the given row.
func (c *TargetColumn) At(row int) float64 { return c.data[row] }

// Data returns the underlying value slice. Callers must not modify it.
func (c *TargetColumn) Data() []float64 { return c.data }

// Relation is a set of rows with dimension and target columns
// (Definition 1 of the paper). It is immutable once built.
type Relation struct {
	name    string
	schema  Schema
	dims    []*DimColumn
	targets []*TargetColumn
	rows    int
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return &r.schema }

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return r.rows }

// Dim returns the dimension column at index i.
func (r *Relation) Dim(i int) *DimColumn { return r.dims[i] }

// DimByName returns the named dimension column, or nil.
func (r *Relation) DimByName(name string) *DimColumn {
	if i := r.schema.DimIndex(name); i >= 0 {
		return r.dims[i]
	}
	return nil
}

// NumDims returns the number of dimension columns.
func (r *Relation) NumDims() int { return len(r.dims) }

// Target returns the target column at index i.
func (r *Relation) Target(i int) *TargetColumn { return r.targets[i] }

// TargetByName returns the named target column, or nil.
func (r *Relation) TargetByName(name string) *TargetColumn {
	if i := r.schema.TargetIndex(name); i >= 0 {
		return r.targets[i]
	}
	return nil
}

// NumTargets returns the number of target columns.
func (r *Relation) NumTargets() int { return len(r.targets) }

// SizeBytes estimates the in-memory footprint of the relation, mirroring
// the data-set size column of Table I.
func (r *Relation) SizeBytes() int {
	size := 0
	for _, d := range r.dims {
		size += 4 * len(d.data)
		for _, v := range d.dict {
			size += len(v)
		}
	}
	for _, t := range r.targets {
		size += 8 * len(t.data)
	}
	return size
}

// Builder accumulates rows and produces an immutable Relation.
type Builder struct {
	name    string
	schema  Schema
	dims    []*DimColumn
	targets []*TargetColumn
	rows    int
}

// NewBuilder creates a builder for a relation with the given schema.
func NewBuilder(name string, schema Schema) *Builder {
	b := &Builder{name: name, schema: schema.Clone()}
	for _, d := range schema.Dimensions {
		b.dims = append(b.dims, &DimColumn{Name: d, code: make(map[string]int32)})
	}
	for _, t := range schema.Targets {
		b.targets = append(b.targets, &TargetColumn{Name: t})
	}
	return b
}

// AddRow appends a row. dims must have one string per dimension column and
// targets one float per target column, in schema order.
func (b *Builder) AddRow(dims []string, targets []float64) error {
	if len(dims) != len(b.dims) {
		return fmt.Errorf("relation %s: row has %d dimension values, schema has %d", b.name, len(dims), len(b.dims))
	}
	if len(targets) != len(b.targets) {
		return fmt.Errorf("relation %s: row has %d target values, schema has %d", b.name, len(targets), len(b.targets))
	}
	for i, v := range dims {
		col := b.dims[i]
		code, ok := col.code[v]
		if !ok {
			code = int32(len(col.dict))
			col.dict = append(col.dict, v)
			col.code[v] = code
		}
		col.data = append(col.data, code)
	}
	for i, v := range targets {
		b.targets[i].data = append(b.targets[i].data, v)
	}
	b.rows++
	return nil
}

// MustAddRow is AddRow that panics on schema mismatch; convenient for
// generators whose row shape is statically correct.
func (b *Builder) MustAddRow(dims []string, targets []float64) {
	if err := b.AddRow(dims, targets); err != nil {
		panic(err)
	}
}

// Freeze finishes building and returns the immutable relation. The builder
// must not be used afterwards.
func (b *Builder) Freeze() *Relation {
	r := &Relation{
		name:    b.name,
		schema:  b.schema,
		dims:    b.dims,
		targets: b.targets,
		rows:    b.rows,
	}
	b.dims, b.targets = nil, nil
	return r
}

// Predicate is an equality predicate on a dimension column, identified by
// column index and dictionary code.
type Predicate struct {
	Dim  int
	Code int32
}

// PredicateByName resolves a (column name, value) pair against the
// relation's dictionaries. It reports an error for unknown columns; an
// unknown value yields a predicate matching no rows (code NoValue-2 is
// never assigned, so we use a sentinel that never matches).
func (r *Relation) PredicateByName(column, value string) (Predicate, error) {
	di := r.schema.DimIndex(column)
	if di < 0 {
		return Predicate{}, fmt.Errorf("relation %s: no dimension column %q", r.name, column)
	}
	code, ok := r.dims[di].Code(value)
	if !ok {
		// A predicate on a value absent from the data selects no rows.
		return Predicate{Dim: di, Code: int32(len(r.dims[di].dict))}, nil
	}
	return Predicate{Dim: di, Code: code}, nil
}

// View is a subset of relation rows (the data subset a query refers to).
// A nil rows slice denotes the full relation.
type View struct {
	Rel  *Relation
	rows []int32
	full bool
}

// FullView returns a view over all rows of the relation.
func (r *Relation) FullView() *View {
	return &View{Rel: r, full: true}
}

// NumRows returns the number of rows in the view.
func (v *View) NumRows() int {
	if v.full {
		return v.Rel.rows
	}
	return len(v.rows)
}

// Row returns the relation row index of the i-th view row.
func (v *View) Row(i int) int32 {
	if v.full {
		return int32(i)
	}
	return v.rows[i]
}

// Rows returns the relation row indices of the view. For a full view the
// slice is materialized on first call.
func (v *View) Rows() []int32 {
	if v.full && v.rows == nil {
		v.rows = make([]int32, v.Rel.rows)
		for i := range v.rows {
			v.rows[i] = int32(i)
		}
	}
	return v.rows
}

// Select returns the sub-view of rows satisfying the conjunction of
// equality predicates (the relational σ operator).
func (v *View) Select(preds []Predicate) *View {
	if len(preds) == 0 {
		return v
	}
	out := &View{Rel: v.Rel}
	n := v.NumRows()
	for i := 0; i < n; i++ {
		row := v.Row(i)
		match := true
		for _, p := range preds {
			if v.Rel.dims[p.Dim].data[row] != p.Code {
				match = false
				break
			}
		}
		if match {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// TargetStats summarizes a target column over the view.
type TargetStats struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns the average, or 0 for an empty view.
func (s TargetStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Stats computes summary statistics for a target column over the view.
func (v *View) Stats(target int) TargetStats {
	data := v.Rel.targets[target].data
	n := v.NumRows()
	if n == 0 {
		return TargetStats{}
	}
	st := TargetStats{Count: n, Min: data[v.Row(0)], Max: data[v.Row(0)]}
	for i := 0; i < n; i++ {
		val := data[v.Row(i)]
		st.Sum += val
		if val < st.Min {
			st.Min = val
		}
		if val > st.Max {
			st.Max = val
		}
	}
	return st
}

// GroupKey identifies a group in a group-by over dimension columns: the
// dictionary codes of the grouped columns, in the order they were given.
type GroupKey struct {
	Codes []int32
}

// Group is one result group of a group-by aggregation.
type Group struct {
	Key   GroupKey
	Count int
	Sum   float64
}

// Mean returns the group average, or 0 for an empty group.
func (g Group) Mean() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.Sum / float64(g.Count)
}

// GroupBy aggregates a target column grouped by the given dimension
// columns (the relational Γ operator with SUM/COUNT, from which AVG is
// derived). A negative target index counts rows without aggregating a sum.
// Groups are returned in deterministic order (sorted by codes).
func (v *View) GroupBy(dims []int, target int) []Group {
	type agg struct {
		count int
		sum   float64
	}
	// Mixed-radix key: combine codes using column cardinalities.
	radix := make([]int64, len(dims))
	stride := int64(1)
	for i, d := range dims {
		radix[i] = stride
		stride *= int64(v.Rel.dims[d].Cardinality()) + 1
	}
	m := make(map[int64]*agg)
	var data []float64
	if target >= 0 {
		data = v.Rel.targets[target].data
	}
	n := v.NumRows()
	for i := 0; i < n; i++ {
		row := v.Row(i)
		key := int64(0)
		for j, d := range dims {
			key += int64(v.Rel.dims[d].data[row]) * radix[j]
		}
		a := m[key]
		if a == nil {
			a = &agg{}
			m[key] = a
		}
		a.count++
		if data != nil {
			a.sum += data[row]
		}
	}
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Group, 0, len(keys))
	for _, k := range keys {
		codes := make([]int32, len(dims))
		rem := k
		for j := len(dims) - 1; j >= 0; j-- {
			codes[j] = int32(rem / radix[j])
			rem %= radix[j]
		}
		a := m[k]
		out = append(out, Group{Key: GroupKey{Codes: codes}, Count: a.count, Sum: a.sum})
	}
	return out
}

// DistinctCombinations returns the distinct value-code combinations of the
// given dimension columns that appear in the view, in deterministic order.
// This drives fact enumeration: the paper considers equality predicates
// "for all value combinations that appear in the data set".
func (v *View) DistinctCombinations(dims []int) [][]int32 {
	groups := v.GroupBy(dims, -1)
	out := make([][]int32, len(groups))
	for i, g := range groups {
		out[i] = g.Key.Codes
	}
	return out
}
