package relation

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// flightsSchema mirrors the running example of the paper: region and
// season dimensions, delay target.
func flightsSchema() Schema {
	return Schema{Dimensions: []string{"region", "season"}, Targets: []string{"delay"}}
}

// buildFlights builds the 4x4 running-example relation of Figure 1 with
// one row per (region, season) combination: 20-minute delays in the South
// and West during Spring/Summer, 10-minute delays elsewhere... The exact
// values follow Example 4: total error 4*20+4*10 = 120 against a zero
// prior, meaning four cells at 20 and four at 10 and eight at 0.
func buildFlights(t testing.TB) *Relation {
	t.Helper()
	b := NewBuilder("flights", flightsSchema())
	regions := []string{"East", "South", "West", "North"}
	seasons := []string{"Spring", "Summer", "Fall", "Winter"}
	delay := map[[2]string]float64{
		{"South", "Spring"}: 20, {"South", "Summer"}: 20,
		{"West", "Spring"}: 20, {"West", "Summer"}: 20,
		{"East", "Winter"}: 10, {"South", "Winter"}: 10,
		{"West", "Winter"}: 10, {"North", "Winter"}: 10,
	}
	for _, r := range regions {
		for _, s := range seasons {
			b.MustAddRow([]string{r, s}, []float64{delay[[2]string{r, s}]})
		}
	}
	return b.Freeze()
}

func TestBuilderBasics(t *testing.T) {
	r := buildFlights(t)
	if r.NumRows() != 16 {
		t.Fatalf("NumRows = %d, want 16", r.NumRows())
	}
	if r.NumDims() != 2 || r.NumTargets() != 1 {
		t.Fatalf("dims/targets = %d/%d, want 2/1", r.NumDims(), r.NumTargets())
	}
	if got := r.Dim(0).Cardinality(); got != 4 {
		t.Errorf("region cardinality = %d, want 4", got)
	}
	if r.Name() != "flights" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestBuilderRejectsBadRows(t *testing.T) {
	b := NewBuilder("x", flightsSchema())
	if err := b.AddRow([]string{"East"}, []float64{1}); err == nil {
		t.Error("AddRow with missing dimension should fail")
	}
	if err := b.AddRow([]string{"East", "Winter"}, nil); err == nil {
		t.Error("AddRow with missing target should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow should panic on bad row")
		}
	}()
	b.MustAddRow([]string{"East"}, []float64{1})
}

func TestDictionaryRoundTrip(t *testing.T) {
	r := buildFlights(t)
	col := r.DimByName("season")
	if col == nil {
		t.Fatal("season column not found")
	}
	for _, v := range col.Values() {
		code, ok := col.Code(v)
		if !ok {
			t.Fatalf("Code(%q) not found", v)
		}
		if got := col.Value(code); got != v {
			t.Errorf("Value(Code(%q)) = %q", v, got)
		}
	}
	if _, ok := col.Code("Monsoon"); ok {
		t.Error("Code for absent value should report false")
	}
	if got := col.Value(NoValue); got != "" {
		t.Errorf("Value(NoValue) = %q, want empty", got)
	}
}

func TestSchemaLookups(t *testing.T) {
	s := flightsSchema()
	if s.DimIndex("season") != 1 || s.DimIndex("nope") != -1 {
		t.Error("DimIndex wrong")
	}
	if s.TargetIndex("delay") != 0 || s.TargetIndex("nope") != -1 {
		t.Error("TargetIndex wrong")
	}
	c := s.Clone()
	c.Dimensions[0] = "mutated"
	if s.Dimensions[0] == "mutated" {
		t.Error("Clone must deep-copy")
	}
}

func TestSelect(t *testing.T) {
	r := buildFlights(t)
	winter, err := r.PredicateByName("season", "Winter")
	if err != nil {
		t.Fatal(err)
	}
	v := r.FullView().Select([]Predicate{winter})
	if v.NumRows() != 4 {
		t.Fatalf("winter rows = %d, want 4", v.NumRows())
	}
	st := v.Stats(0)
	if st.Mean() != 10 {
		t.Errorf("winter mean delay = %v, want 10", st.Mean())
	}
	south, _ := r.PredicateByName("region", "South")
	v2 := v.Select([]Predicate{south})
	if v2.NumRows() != 1 {
		t.Fatalf("winter+south rows = %d, want 1", v2.NumRows())
	}
	// Empty predicate list returns the same view.
	if got := v.Select(nil); got != v {
		t.Error("Select(nil) should return receiver")
	}
}

func TestPredicateByNameUnknowns(t *testing.T) {
	r := buildFlights(t)
	if _, err := r.PredicateByName("bogus", "x"); err == nil {
		t.Error("unknown column should error")
	}
	p, err := r.PredicateByName("season", "Monsoon")
	if err != nil {
		t.Fatalf("unknown value should not error: %v", err)
	}
	if got := r.FullView().Select([]Predicate{p}).NumRows(); got != 0 {
		t.Errorf("predicate on absent value selected %d rows, want 0", got)
	}
}

func TestStats(t *testing.T) {
	r := buildFlights(t)
	st := r.FullView().Stats(0)
	if st.Count != 16 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Sum != 120 {
		t.Errorf("sum = %v, want 120 (Example 4 total error)", st.Sum)
	}
	if st.Min != 0 || st.Max != 20 {
		t.Errorf("min/max = %v/%v, want 0/20", st.Min, st.Max)
	}
	if got := st.Mean(); got != 7.5 {
		t.Errorf("mean = %v, want 7.5", got)
	}
	empty := r.FullView().Select([]Predicate{{Dim: 0, Code: 99}})
	if es := empty.Stats(0); es.Count != 0 || es.Mean() != 0 {
		t.Errorf("empty stats = %+v", es)
	}
}

func TestGroupBy(t *testing.T) {
	r := buildFlights(t)
	groups := r.FullView().GroupBy([]int{1}, 0) // by season
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	bySeason := map[string]float64{}
	col := r.Dim(1)
	for _, g := range groups {
		if g.Count != 4 {
			t.Errorf("group count = %d, want 4", g.Count)
		}
		bySeason[col.Value(g.Key.Codes[0])] = g.Mean()
	}
	if bySeason["Winter"] != 10 {
		t.Errorf("winter mean = %v, want 10", bySeason["Winter"])
	}
	if bySeason["Fall"] != 0 {
		t.Errorf("fall mean = %v, want 0", bySeason["Fall"])
	}
	// Two-column grouping yields all 16 combinations.
	g2 := r.FullView().GroupBy([]int{0, 1}, 0)
	if len(g2) != 16 {
		t.Errorf("two-dim groups = %d, want 16", len(g2))
	}
	// Zero-dimension grouping yields a single global group.
	g0 := r.FullView().GroupBy(nil, 0)
	if len(g0) != 1 || g0[0].Sum != 120 {
		t.Errorf("global group = %+v", g0)
	}
}

func TestGroupByDeterministicOrder(t *testing.T) {
	r := buildFlights(t)
	first := r.FullView().GroupBy([]int{0, 1}, 0)
	for i := 0; i < 10; i++ {
		again := r.FullView().GroupBy([]int{0, 1}, 0)
		if !reflect.DeepEqual(first, again) {
			t.Fatal("GroupBy order is not deterministic")
		}
	}
}

func TestDistinctCombinations(t *testing.T) {
	r := buildFlights(t)
	combos := r.FullView().DistinctCombinations([]int{0})
	if len(combos) != 4 {
		t.Fatalf("distinct regions = %d, want 4", len(combos))
	}
	combos2 := r.FullView().DistinctCombinations([]int{0, 1})
	if len(combos2) != 16 {
		t.Fatalf("distinct pairs = %d, want 16", len(combos2))
	}
}

func TestViewRows(t *testing.T) {
	r := buildFlights(t)
	v := r.FullView()
	rows := v.Rows()
	if len(rows) != 16 || rows[0] != 0 || rows[15] != 15 {
		t.Errorf("full view rows wrong: %v", rows)
	}
	winter, _ := r.PredicateByName("season", "Winter")
	sub := r.FullView().Select([]Predicate{winter})
	for i, row := range sub.Rows() {
		if sub.Row(i) != row {
			t.Errorf("Row(%d) mismatch", i)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	r := buildFlights(t)
	if r.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	// 2 dim cols * 16 rows * 4 bytes + 1 target * 16 * 8 = 256 plus dictionary strings.
	if r.SizeBytes() < 256 {
		t.Errorf("SizeBytes = %d, want >= 256", r.SizeBytes())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := buildFlights(t)
	var buf bytes.Buffer
	if err := r.ToCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r2, skipped, err := FromCSV("flights", &buf, flightsSchema())
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if r2.NumRows() != r.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", r2.NumRows(), r.NumRows())
	}
	for i := 0; i < r.NumRows(); i++ {
		if r.Target(0).At(i) != r2.Target(0).At(i) {
			t.Fatalf("row %d target mismatch", i)
		}
		for d := 0; d < r.NumDims(); d++ {
			if r.Dim(d).Value(r.Dim(d).CodeAt(i)) != r2.Dim(d).Value(r2.Dim(d).CodeAt(i)) {
				t.Fatalf("row %d dim %d mismatch", i, d)
			}
		}
	}
}

func TestFromCSVErrors(t *testing.T) {
	schema := flightsSchema()
	if _, _, err := FromCSV("x", strings.NewReader(""), schema); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := FromCSV("x", strings.NewReader("a,b\n1,2\n"), schema); err == nil {
		t.Error("missing columns should fail")
	}
	// Unparsable target rows are skipped, not fatal.
	csvData := "region,season,delay\nEast,Winter,10\nWest,Winter,n/a\n"
	r, skipped, err := FromCSV("x", strings.NewReader(csvData), schema)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 1 || skipped != 1 {
		t.Errorf("rows/skipped = %d/%d, want 1/1", r.NumRows(), skipped)
	}
}

// TestPropertySelectPartition checks that for any dimension, the sizes of
// the per-value selections partition the relation.
func TestPropertySelectPartition(t *testing.T) {
	r := buildFlights(t)
	f := func(dimPick uint8) bool {
		d := int(dimPick) % r.NumDims()
		total := 0
		for code := int32(0); code < int32(r.Dim(d).Cardinality()); code++ {
			total += r.FullView().Select([]Predicate{{Dim: d, Code: code}}).NumRows()
		}
		return total == r.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyGroupBySumsMatch checks on random relations that group sums
// add up to the global sum and group counts to the row count.
func TestPropertyGroupBySumsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder("rand", Schema{
			Dimensions: []string{"a", "b", "c"},
			Targets:    []string{"v"},
		})
		n := 1 + rng.Intn(200)
		vals := []string{"x", "y", "z", "w"}
		for i := 0; i < n; i++ {
			b.MustAddRow(
				[]string{vals[rng.Intn(4)], vals[rng.Intn(3)], vals[rng.Intn(2)]},
				[]float64{rng.NormFloat64() * 10},
			)
		}
		r := b.Freeze()
		want := r.FullView().Stats(0)
		for _, dims := range [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}} {
			var sum float64
			count := 0
			for _, g := range r.FullView().GroupBy(dims, 0) {
				sum += g.Sum
				count += g.Count
			}
			if count != want.Count {
				t.Fatalf("trial %d dims %v: count %d want %d", trial, dims, count, want.Count)
			}
			if diff := sum - want.Sum; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d dims %v: sum %v want %v", trial, dims, sum, want.Sum)
			}
		}
	}
}

func TestEdgeCaseSingleRow(t *testing.T) {
	b := NewBuilder("one", Schema{Dimensions: []string{"d"}, Targets: []string{"v"}})
	b.MustAddRow([]string{"only"}, []float64{42})
	r := b.Freeze()
	if r.NumRows() != 1 {
		t.Fatal("one row expected")
	}
	st := r.FullView().Stats(0)
	if st.Mean() != 42 || st.Min != 42 || st.Max != 42 {
		t.Errorf("stats = %+v", st)
	}
	groups := r.FullView().GroupBy([]int{0}, 0)
	if len(groups) != 1 || groups[0].Mean() != 42 {
		t.Errorf("groups = %+v", groups)
	}
}

func TestEdgeCaseEmptyRelation(t *testing.T) {
	b := NewBuilder("empty", Schema{Dimensions: []string{"d"}, Targets: []string{"v"}})
	r := b.Freeze()
	if r.NumRows() != 0 {
		t.Fatal("empty expected")
	}
	if got := r.FullView().Stats(0); got.Count != 0 {
		t.Errorf("stats = %+v", got)
	}
	if groups := r.FullView().GroupBy([]int{0}, 0); len(groups) != 0 {
		t.Errorf("groups on empty relation = %v", groups)
	}
	if combos := r.FullView().DistinctCombinations([]int{0}); len(combos) != 0 {
		t.Errorf("combos = %v", combos)
	}
}

func TestEdgeCaseNonFiniteTargets(t *testing.T) {
	// NaN and Inf targets flow through without panics; aggregation
	// propagates them per IEEE semantics (documented behaviour).
	b := NewBuilder("naninf", Schema{Dimensions: []string{"d"}, Targets: []string{"v"}})
	b.MustAddRow([]string{"a"}, []float64{math.NaN()})
	b.MustAddRow([]string{"b"}, []float64{math.Inf(1)})
	b.MustAddRow([]string{"c"}, []float64{1})
	r := b.Freeze()
	st := r.FullView().Stats(0)
	if !math.IsNaN(st.Sum) {
		t.Errorf("sum with NaN = %v, want NaN", st.Sum)
	}
	p, _ := r.PredicateByName("d", "b")
	if got := r.FullView().Select([]Predicate{p}).Stats(0).Mean(); !math.IsInf(got, 1) {
		t.Errorf("inf subset mean = %v", got)
	}
}

func TestEdgeCaseHighCardinalityDictionary(t *testing.T) {
	b := NewBuilder("wide", Schema{Dimensions: []string{"id"}, Targets: []string{"v"}})
	for i := 0; i < 5000; i++ {
		b.MustAddRow([]string{strconv.Itoa(i)}, []float64{float64(i)})
	}
	r := b.Freeze()
	if r.Dim(0).Cardinality() != 5000 {
		t.Fatalf("cardinality = %d", r.Dim(0).Cardinality())
	}
	p, err := r.PredicateByName("id", "4999")
	if err != nil {
		t.Fatal(err)
	}
	v := r.FullView().Select([]Predicate{p})
	if v.NumRows() != 1 || v.Stats(0).Mean() != 4999 {
		t.Errorf("high-cardinality lookup failed: %+v", v.Stats(0))
	}
}
