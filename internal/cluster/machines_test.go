package cluster

// State-machine tests for the retry/backoff/breaker layer. Everything
// here runs on the FakeClock: no real sleeps, deterministic under
// -race.

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestFakeClockSleepAndAdvance(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	done := make(chan error, 1)
	go func() {
		done <- fc.Sleep(context.Background(), 100*time.Millisecond)
	}()
	// Synchronize with the sleeper's arrival, then advance past its
	// deadline.
	for fc.Sleepers() == 0 {
		runtime.Gosched()
	}
	fc.Advance(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("sleep woke before its deadline")
	default:
	}
	fc.Advance(50 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("sleep: %v", err)
	}
	if got := fc.Now(); got != time.Unix(0, 0).Add(100*time.Millisecond) {
		t.Fatalf("clock at %v", got)
	}
}

func TestFakeClockAutoAdvance(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	fc.SetAutoAdvance(true)
	if err := fc.Sleep(context.Background(), time.Hour); err != nil {
		t.Fatalf("auto-advance sleep: %v", err)
	}
	if got := fc.Now(); got != time.Unix(0, 0).Add(time.Hour) {
		t.Fatalf("clock at %v, want +1h", got)
	}
}

func TestFakeClockSleepHonorsContext(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fc.Sleep(ctx, time.Hour) }()
	for fc.Sleepers() == 0 {
		runtime.Gosched()
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestBackoffBoundsAndCap(t *testing.T) {
	p := BackoffPolicy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.25}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 12; attempt++ {
		d := p.Delay(attempt, rng)
		lo := time.Duration(float64(p.Base) * 0.75)
		hi := time.Duration(float64(p.Max) * 1.25)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
	// Without jitter the schedule is the exact capped exponential.
	noJitter := BackoffPolicy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		// Jitter 0 is replaced by the default (0 is the zero value), so
		// pass a nil rng to disable jitter explicitly.
		if got := noJitter.Delay(i, nil); got != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	p := BackoffPolicy{}
	a, b := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		if da, db := p.Delay(i, a), p.Delay(i, b); da != db {
			t.Fatalf("attempt %d: %v != %v under the same seed", i, da, db)
		}
	}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerPolicy{FailureThreshold: 3, Cooldown: time.Second}, fc)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after 2 failures, want closed", b.State())
	}
	// A success resets the consecutive count.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after 3 consecutive failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Second}, fc)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
	fc.Advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerPolicy{FailureThreshold: 1, Cooldown: time.Second}, fc)
	b.Failure()
	fc.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected the probe")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after probe failure, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a request before the fresh cooldown")
	}
	// The re-open starts a fresh cooldown from the probe failure.
	fc.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not half-open after the second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed", b.State())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	fc := NewFakeClock(time.Unix(0, 0))
	b := NewBreaker(BreakerPolicy{FailureThreshold: 5, Cooldown: time.Second}, fc)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if (i+j)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if j%50 == 0 {
					fc.Advance(100 * time.Millisecond)
				}
				_ = b.State()
			}
		}(i)
	}
	wg.Wait()
}
