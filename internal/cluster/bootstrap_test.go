package cluster

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/snapshot"
	"cicero/internal/voice"
)

// buildFlightsSnapshot preprocesses a small flights store and writes
// its tagged snapshot artifact, returning everything a replica needs
// to bootstrap from it.
func buildFlightsSnapshot(t testing.TB, fingerprint string) (string, *relation.Relation, *voice.Extractor) {
	t.Helper()
	rel := dataset.Flights(800, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"cancelled"}
	cfg.Dimensions = []string{"season", "airline"}
	cfg.MaxQueryLen = 1
	sum := &engine.Summarizer{
		Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: "cancellation probability", Percent: true},
	}
	store, _, err := sum.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flights.snap")
	if err := snapshot.WriteFileTagged(path, store, rel, fingerprint); err != nil {
		t.Fatal(err)
	}
	ex := voice.NewExtractor(rel, voice.DefaultSamples("flights"), cfg.MaxQueryLen)
	return path, rel, ex
}

func TestSnapshotLoaderBootstrapsReplica(t *testing.T) {
	for _, useMmap := range []bool{false, true} {
		path, rel, ex := buildFlightsSnapshot(t, "fp-1")
		reg := serve.NewRegistry()
		if err := reg.Register("flights", SnapshotLoader(path, rel, ex, useMmap, "fp-1")); err != nil {
			t.Fatal(err)
		}
		a, err := reg.Get(context.Background(), "flights")
		if err != nil {
			t.Fatalf("mmap=%v: %v", useMmap, err)
		}
		ans := a.Answer("what is the cancellation probability for winter")
		if ans.Text == "" {
			t.Fatalf("mmap=%v: empty answer from bootstrapped replica", useMmap)
		}
	}
}

func TestSnapshotLoaderRejectsFingerprintMismatch(t *testing.T) {
	path, rel, ex := buildFlightsSnapshot(t, "fp-old")
	reg := serve.NewRegistry()
	if err := reg.Register("flights", SnapshotLoader(path, rel, ex, false, "fp-new")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(context.Background(), "flights"); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	} else if !strings.Contains(err.Error(), "different parameters") {
		t.Fatalf("unexpected error: %v", err)
	}
	// An empty expected fingerprint skips the gate.
	reg2 := serve.NewRegistry()
	if err := reg2.Register("flights", SnapshotLoader(path, rel, ex, false, "")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.Get(context.Background(), "flights"); err != nil {
		t.Fatalf("ungated load failed: %v", err)
	}
}
