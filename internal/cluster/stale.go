package cluster

import (
	"container/list"
	"sync"
	"time"
)

// staleEntry is one remembered good answer: the raw response body of
// the last successful forward for a (dataset, canonical text) key,
// tagged with the dataset it belongs to, the node that answered, and
// the generation (store swap count) its store was at. The router
// serves it — explicitly marked stale — when every replica of the
// dataset is down, trading freshness for availability instead of
// failing. The dataset and generation tags exist so the entry can be
// invalidated when the world moves on without the key being written
// again: dataset removal purges by dataset, and a generation that no
// longer matches the replica's current store (a delta published after
// capture, or a node rebooted onto a fresh base) rejects the entry at
// read time.
type staleEntry struct {
	key        string
	dataset    string
	body       []byte
	node       string
	generation uint64
	storedAt   time.Time
}

// staleCache is a bounded LRU of last-good answers. A plain mutex is
// fine here: the cache sits behind a network hop, and lookups happen
// only on the (rare) total-outage path plus one put per successful
// single-text answer.
type staleCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	byKey map[string]*list.Element
}

func newStaleCache(max int) *staleCache {
	if max <= 0 {
		max = 4096
	}
	return &staleCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *staleCache) put(e staleEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[e.key] = c.ll.PushFront(e)
	if c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(staleEntry).key)
	}
}

func (c *staleCache) get(key string) (staleEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return staleEntry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(staleEntry), true
}

// remove drops one entry; used when a read finds the entry invalid
// (generation mismatch), so the dead answer does not linger at the
// front of the LRU.
func (c *staleCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
}

// purgeDataset drops every entry captured for the dataset. Without
// this, removing a dataset from the router and later re-adding the
// name would resurrect answers from the old data.
func (c *staleCache) purgeDataset(dataset string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	purged := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(staleEntry)
		if e.dataset == dataset {
			c.ll.Remove(el)
			delete(c.byKey, e.key)
			purged++
		}
	}
	return purged
}

func (c *staleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
