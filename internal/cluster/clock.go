package cluster

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts wall time for the cluster layer's state machines
// (backoff sleeps, breaker cooldowns, health staleness), so retry and
// breaker behavior is unit-testable with a FakeClock and zero real
// sleeps. The production implementation is RealClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the production Clock over the time package.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a manually advanced Clock for tests: time moves only
// through Advance (or instantly, with auto-advance), so state-machine
// tests never really sleep and stay deterministic under -race.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	auto    bool
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	done     chan struct{}
}

// NewFakeClock starts a fake clock at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// SetAutoAdvance makes Sleep return immediately after advancing the
// clock by the requested duration — the mode retry-loop tests use, so a
// backoff schedule runs in zero wall time while still moving Now().
func (c *FakeClock) SetAutoAdvance(on bool) {
	c.mu.Lock()
	c.auto = on
	c.mu.Unlock()
}

// Sleep implements Clock. Without auto-advance it blocks until Advance
// moves the clock past the deadline (or ctx is done).
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	c.mu.Lock()
	if c.auto {
		c.now = c.now.Add(d)
		c.mu.Unlock()
		return ctx.Err()
	}
	w := &fakeWaiter{deadline: c.now.Add(d), done: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Advance moves the clock forward, waking every sleeper whose deadline
// has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.deadline.After(c.now) {
			close(w.done)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
}

// Sleepers reports how many Sleep calls are currently blocked, so tests
// can synchronize an Advance with a sleeper's arrival.
func (c *FakeClock) Sleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
