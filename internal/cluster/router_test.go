package cluster

// End-to-end fault-injection suite for the router: every failure mode
// the tentpole promises — timeout, 5xx, connection error, corrupt
// body, all-replicas-down staleness, breaker trips, load shedding —
// reproduced deterministically through the FaultInjector transport
// hook against fake nodes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cicero/internal/httpserve"
)

// fakeNode is a stand-in cmd/serve backend: answers every dataset,
// reports healthy, counts requests, and can hold answers on a gate.
type fakeNode struct {
	id     string
	srv    *httptest.Server
	hits   atomic.Int64
	swaps  atomic.Uint64
	gate   chan struct{} // nil = answer immediately
	gated  atomic.Bool
	status atomic.Int64 // 0 = 200
}

func newFakeNode(t *testing.T, id string) *fakeNode {
	t.Helper()
	n := &fakeNode{id: id, gate: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{dataset}/answer", func(w http.ResponseWriter, r *http.Request) {
		n.hits.Add(1)
		if n.gated.Load() {
			select {
			case <-n.gate:
			case <-r.Context().Done():
				return
			}
		}
		if st := n.status.Load(); st != 0 {
			w.WriteHeader(int(st))
			fmt.Fprintf(w, `{"error":"synthetic %d"}`, st)
			return
		}
		var req httpserve.AnswerRequest
		json.NewDecoder(r.Body).Decode(&req)
		writeJSON(w, http.StatusOK, httpserve.AnswerResponse{
			Kind:     "summary",
			Request:  req.Text,
			Text:     "answer from " + n.id + " to " + req.Text,
			Answered: true,
		})
	})
	mux.HandleFunc("GET /v1/{dataset}/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, httpserve.HealthResponse{Status: "ok", Speeches: 1, Swaps: n.swaps.Load()})
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *fakeNode) host() string { u, _ := url.Parse(n.srv.URL); return u.Host }

// newTestRouter wires fake nodes, a FaultInjector, and an auto-advance
// FakeClock into a router. Mutate opts before calling for special
// cases; Transport/Clock/Seed are always overridden.
func newTestRouter(t *testing.T, nodes []*fakeNode, datasets []string, opts Options) (*Router, *FaultInjector, *FakeClock) {
	t.Helper()
	fc := NewFakeClock(time.Unix(1_700_000_000, 0))
	fc.SetAutoAdvance(true)
	inj := NewFaultInjector(nil, 7)
	inj.SetClock(fc)
	opts.Transport = inj
	opts.Clock = fc
	opts.Seed = 7
	rnodes := make([]Node, len(nodes))
	for i, n := range nodes {
		rnodes[i] = Node{ID: n.id, URL: n.srv.URL}
	}
	r, err := New(rnodes, datasets, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.CheckHealth(context.Background())
	return r, inj, fc
}

func postAnswer(t *testing.T, h http.Handler, dataset, text string) *httptest.ResponseRecorder {
	t.Helper()
	body := fmt.Sprintf(`{"text":%q}`, text)
	req := httptest.NewRequest(http.MethodPost, "/v1/"+dataset+"/answer", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestRouterForwardsAndAttributes(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	r, _, _ := newTestRouter(t, nodes, []string{"flights"}, Options{})
	w := postAnswer(t, r.Handler(), "flights", "how many flights were cancelled")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	node := w.Header().Get("X-Cicero-Node")
	if node != "a" && node != "b" {
		t.Fatalf("X-Cicero-Node = %q", node)
	}
	if got := w.Header().Get("X-Cicero-Attempts"); got != "1" {
		t.Fatalf("X-Cicero-Attempts = %q, want 1", got)
	}
	var resp httpserve.AnswerResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad answer body: %v", err)
	}
	if !strings.HasPrefix(resp.Text, "answer from "+node) {
		t.Fatalf("body attributed to %q, header to %q", resp.Text, node)
	}
}

// failoverCase proves one failure mode on one node triggers failover
// to the surviving replica.
func failoverCase(t *testing.T, inject func(inj *FaultInjector, victim *fakeNode), opts Options) {
	t.Helper()
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	r, inj, _ := newTestRouter(t, nodes, []string{"flights"}, opts)
	victim, survivor := nodes[0], nodes[1]
	inject(inj, victim)
	for i := 0; i < 4; i++ {
		w := postAnswer(t, r.Handler(), "flights", fmt.Sprintf("query %d", i))
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body.String())
		}
		if got := w.Header().Get("X-Cicero-Node"); got != survivor.id {
			t.Fatalf("request %d answered by %q, want survivor %q", i, got, survivor.id)
		}
	}
	st := r.Stats()
	if st.Failovers == 0 && st.Nodes[victim.id].Failure == 0 {
		// Round-robin may start every pass on the survivor; force the
		// victim first by checking at least one failure was recorded
		// somewhere across the run.
		t.Fatalf("no failover or failure recorded: %+v", st)
	}
}

func TestRouterFailoverOn5xx(t *testing.T) {
	failoverCase(t, func(inj *FaultInjector, v *fakeNode) {
		inj.Set(v.host(), FaultRule{FailProb: 1})
	}, Options{})
}

func TestRouterFailoverOnConnectionError(t *testing.T) {
	failoverCase(t, func(inj *FaultInjector, v *fakeNode) {
		inj.Set(v.host(), FaultRule{DropProb: 1})
	}, Options{})
}

func TestRouterFailoverOnCorruptResponse(t *testing.T) {
	failoverCase(t, func(inj *FaultInjector, v *fakeNode) {
		inj.Set(v.host(), FaultRule{CorruptProb: 1})
	}, Options{})
}

func TestRouterFailoverOnTimeout(t *testing.T) {
	// The blackhole holds the connection open until the per-attempt
	// deadline; keep it short so the test doesn't crawl. This is the one
	// case that burns real wall time (the attempt context is real).
	failoverCase(t, func(inj *FaultInjector, v *fakeNode) {
		inj.Set(v.host(), FaultRule{Blackhole: true})
	}, Options{RequestTimeout: 50 * time.Millisecond})
}

func TestRouterServesStaleWhenAllReplicasDown(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	nodes[0].swaps.Store(3)
	nodes[1].swaps.Store(3)
	r, inj, fc := newTestRouter(t, nodes, []string{"flights"}, Options{})

	const text = "cancellation probability please"
	if w := postAnswer(t, r.Handler(), "flights", text); w.Code != http.StatusOK {
		t.Fatalf("warm-up failed: %d", w.Code)
	}

	// Take the whole dataset down.
	inj.Set(nodes[0].host(), FaultRule{DropProb: 1})
	inj.Set(nodes[1].host(), FaultRule{DropProb: 1})

	w := postAnswer(t, r.Handler(), "flights", text)
	if w.Code != http.StatusOK {
		t.Fatalf("stale fallback: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cicero-Stale"); got != "true" {
		t.Fatalf("X-Cicero-Stale = %q, want true", got)
	}
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("stale body not JSON: %v", err)
	}
	if m["stale"] != true {
		t.Fatalf("stale marker missing: %v", m)
	}
	if _, ok := m["stale_age_ns"]; !ok {
		t.Fatalf("stale_age_ns missing: %v", m)
	}
	if gen, ok := m["generation"].(float64); !ok || uint64(gen) != 3 {
		t.Fatalf("generation = %v, want 3 (the probed swap count)", m["generation"])
	}
	if got := r.Stats().StaleServed; got != 1 {
		t.Fatalf("stale_served = %d, want 1", got)
	}

	// A text never answered has nothing stale to fall back on: an
	// explicit 503 with Retry-After, not a silent empty answer.
	w = postAnswer(t, r.Handler(), "flights", "never seen before")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("unseen text: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Recovery: clear the faults and the dataset serves fresh again.
	inj.Clear(nodes[0].host())
	inj.Clear(nodes[1].host())
	fc.Advance(r.opts.Breaker.Cooldown)
	w = postAnswer(t, r.Handler(), "flights", text)
	if w.Code != http.StatusOK || w.Header().Get("X-Cicero-Stale") != "" {
		t.Fatalf("post-recovery: status %d stale=%q", w.Code, w.Header().Get("X-Cicero-Stale"))
	}
}

func TestRouterBreakerOpensThenRecovers(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	r, inj, fc := newTestRouter(t, nodes, []string{"flights"}, Options{
		Breaker: BreakerPolicy{FailureThreshold: 2, Cooldown: time.Hour},
	})
	inj.Set(nodes[0].host(), FaultRule{DropProb: 1})
	inj.Set(nodes[1].host(), FaultRule{DropProb: 1})

	// Each request attempts both replicas; after enough failures every
	// breaker opens.
	for i := 0; i < 3; i++ {
		postAnswer(t, r.Handler(), "flights", fmt.Sprintf("q%d", i))
	}
	st := r.Stats()
	if st.Nodes["a"].Breaker != "open" || st.Nodes["b"].Breaker != "open" {
		t.Fatalf("breakers %q/%q, want open/open", st.Nodes["a"].Breaker, st.Nodes["b"].Breaker)
	}

	// Open breakers fast-fail: no node sees traffic.
	before := nodes[0].hits.Load() + nodes[1].hits.Load()
	w := postAnswer(t, r.Handler(), "flights", "while open")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker request: status %d, want 503", w.Code)
	}
	if got := nodes[0].hits.Load() + nodes[1].hits.Load(); got != before {
		t.Fatalf("open breakers let %d requests through", got-before)
	}

	// Heal the nodes, elapse the cooldown: half-open probes succeed and
	// the breakers close again.
	inj.Clear(nodes[0].host())
	inj.Clear(nodes[1].host())
	fc.Advance(time.Hour)
	w = postAnswer(t, r.Handler(), "flights", "after cooldown")
	if w.Code != http.StatusOK {
		t.Fatalf("post-cooldown request: status %d: %s", w.Code, w.Body.String())
	}
	st = r.Stats()
	probed := st.Nodes[w.Header().Get("X-Cicero-Node")]
	if probed.Breaker != "closed" {
		t.Fatalf("probed node's breaker %q, want closed", probed.Breaker)
	}
}

func TestRouterLoadShedsWithRetryAfter(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a")}
	r, _, _ := newTestRouter(t, nodes, []string{"flights"}, Options{
		MaxInFlight:  1,
		QueueTimeout: 10 * time.Millisecond,
	})
	nodes[0].gated.Store(true)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postAnswer(t, r.Handler(), "flights", "holds the slot") }()
	waitFor(t, func() bool { return r.Stats().InFlight == 1 })

	w := postAnswer(t, r.Handler(), "flights", "gets shed")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed request: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
	if got := r.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	close(nodes[0].gate)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("gated request finished with %d", w.Code)
	}
}

func TestRouterBalancesAcrossHealthyReplicas(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	r, _, _ := newTestRouter(t, nodes, []string{"flights"}, Options{})
	for i := 0; i < 20; i++ {
		if w := postAnswer(t, r.Handler(), "flights", fmt.Sprintf("query %d", i)); w.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, w.Code)
		}
	}
	a, b := nodes[0].hits.Load(), nodes[1].hits.Load()
	if a == 0 || b == 0 {
		t.Fatalf("round-robin left a node idle: a=%d b=%d", a, b)
	}
}

func TestRouterRejectsUnknownDatasetAndMethod(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a")}
	r, _, _ := newTestRouter(t, nodes, []string{"flights"}, Options{})
	if w := postAnswer(t, r.Handler(), "nope", "hi"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d, want 404", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/flights/answer", nil)
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET answer: %d, want 405", w.Code)
	}
}

func TestRouterRejectsOversizedBody(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a")}
	r, _, _ := newTestRouter(t, nodes, []string{"flights"}, Options{MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"text":%q}`, strings.Repeat("x", 256))
	req := httptest.NewRequest(http.MethodPost, "/v1/flights/answer", strings.NewReader(big))
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", w.Code)
	}
}

func TestRouterHealthEndpointsReflectFailures(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")}
	r, inj, _ := newTestRouter(t, nodes, []string{"flights", "acs"}, Options{Replication: 2})

	snap := r.HealthSnapshot()
	if snap.Status != "ok" {
		t.Fatalf("all-up status %q, want ok", snap.Status)
	}
	for _, ds := range []string{"flights", "acs"} {
		if got := snap.Datasets[ds].Available; got != 2 {
			t.Fatalf("%s available %d, want 2", ds, got)
		}
	}

	// One replica of flights down → degraded.
	victim := snap.Datasets["flights"].Nodes[0]
	for _, n := range nodes {
		if n.id == victim {
			inj.Set(n.host(), FaultRule{DropProb: 1})
		}
	}
	r.CheckHealth(context.Background())
	snap = r.HealthSnapshot()
	if snap.Status != "degraded" {
		t.Fatalf("one-down status %q, want degraded", snap.Status)
	}
	var victimRow *NodeHealth
	for i := range snap.Nodes {
		if snap.Nodes[i].ID == victim {
			victimRow = &snap.Nodes[i]
		}
	}
	if victimRow == nil || victimRow.Healthy {
		t.Fatalf("victim %s still reported healthy: %+v", victim, victimRow)
	}

	// Every node down → down, and the wire healthz agrees.
	for _, n := range nodes {
		inj.Set(n.host(), FaultRule{DropProb: 1})
	}
	r.CheckHealth(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	var wire HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Status != "down" {
		t.Fatalf("all-down status %q, want down", wire.Status)
	}
}

func TestRouterDatasetsEndpoint(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")}
	r, _, _ := newTestRouter(t, nodes, []string{"flights", "acs"}, Options{Replication: 2})
	req := httptest.NewRequest(http.MethodGet, "/v1/datasets", nil)
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	var out struct {
		Datasets []RoutedDataset `json:"datasets"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Datasets) != 2 {
		t.Fatalf("%d datasets, want 2", len(out.Datasets))
	}
	for _, ds := range out.Datasets {
		if len(ds.Replicas) != 2 {
			t.Fatalf("dataset %s has %d replicas, want 2", ds.Name, len(ds.Replicas))
		}
		if ds.Name == "flights" && !ds.Default {
			t.Fatal("first dataset not marked default")
		}
	}
}

// waitFor polls cond briefly; these waits are for real goroutine
// scheduling (an in-flight HTTP request), not simulated time.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
