package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

func faultTarget(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(srv.Close)
	u, _ := url.Parse(srv.URL)
	return srv, u.Host
}

func TestFaultInjectorPassthroughWithoutRule(t *testing.T) {
	srv, _ := faultTarget(t)
	inj := NewFaultInjector(nil, 1)
	client := &http.Client{Transport: inj}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"ok":true}` {
		t.Fatalf("body %q", body)
	}
}

func TestFaultInjectorDropAndFail(t *testing.T) {
	srv, host := faultTarget(t)
	inj := NewFaultInjector(nil, 1)
	client := &http.Client{Transport: inj}

	inj.Set(host, FaultRule{DropProb: 1})
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("drop rule did not error")
	}

	inj.Set(host, FaultRule{FailProb: 1, FailStatus: 502})
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Fatalf("status %d, want injected 502", resp.StatusCode)
	}

	// Clear restores normal traffic.
	inj.Clear(host)
	resp2, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("post-clear status %d", resp2.StatusCode)
	}
}

func TestFaultInjectorCorruptBreaksJSON(t *testing.T) {
	srv, host := faultTarget(t)
	inj := NewFaultInjector(nil, 1)
	inj.Set(host, FaultRule{CorruptProb: 1})
	client := &http.Client{Transport: inj}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) == 0 || body[0] == '{' {
		t.Fatalf("corrupt rule returned plausible JSON: %q", body)
	}
}

func TestFaultInjectorDelayUsesClock(t *testing.T) {
	srv, host := faultTarget(t)
	fc := NewFakeClock(time.Unix(0, 0))
	fc.SetAutoAdvance(true)
	inj := NewFaultInjector(nil, 1)
	inj.SetClock(fc)
	inj.Set(host, FaultRule{DelayProb: 1, Delay: time.Hour})
	client := &http.Client{Transport: inj}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := fc.Now(); got != time.Unix(0, 0).Add(time.Hour) {
		t.Fatalf("delay did not consume fake time: clock at %v", got)
	}
}

func TestFaultInjectorBlackholeHonorsContext(t *testing.T) {
	srv, host := faultTarget(t)
	inj := NewFaultInjector(nil, 1)
	inj.Set(host, FaultRule{Blackhole: true})
	client := &http.Client{Transport: inj}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("blackhole returned a response")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("blackhole ignored the context deadline")
	}
}

func TestFaultInjectorDeterministicUnderSeed(t *testing.T) {
	// Same seed, same request sequence → same injected outcomes.
	outcomes := func(seed int64) []bool {
		srv, host := faultTarget(t)
		inj := NewFaultInjector(nil, seed)
		inj.Set(host, FaultRule{DropProb: 0.5})
		client := &http.Client{Transport: inj}
		var out []bool
		for i := 0; i < 30; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b := outcomes(99), outcomes(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged under the same seed", i)
		}
	}
}

func TestStaleCacheLRUEviction(t *testing.T) {
	c := newStaleCache(2)
	now := time.Unix(0, 0)
	c.put(staleEntry{key: "a", body: []byte("1"), storedAt: now})
	c.put(staleEntry{key: "b", body: []byte("2"), storedAt: now})
	if _, ok := c.get("a"); !ok { // touch a → b becomes LRU
		t.Fatal("a missing")
	}
	c.put(staleEntry{key: "c", body: []byte("3"), storedAt: now})
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("new entry c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	// Re-put updates in place rather than duplicating.
	c.put(staleEntry{key: "c", body: []byte("3b"), storedAt: now})
	if e, _ := c.get("c"); string(e.body) != "3b" {
		t.Fatalf("re-put did not update: %q", e.body)
	}
	if c.len() != 2 {
		t.Fatalf("len %d after re-put, want 2", c.len())
	}
}
