package cluster

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// FaultRule describes the failures injected into one node's traffic.
// Probabilities are in [0, 1] and evaluated in the order blackhole →
// drop → fail → delay → corrupt; at most one of blackhole/drop/fail
// fires per request.
type FaultRule struct {
	// Blackhole hangs every request until its context is done — the
	// "node accepts connections but never answers" failure the
	// per-request timeout must catch.
	Blackhole bool
	// DropProb returns a transport error (connection reset) without
	// reaching the node.
	DropProb float64
	// FailProb returns a synthetic FailStatus (default 500) response
	// without reaching the node.
	FailProb   float64
	FailStatus int
	// DelayProb delays the request by Delay before forwarding.
	DelayProb float64
	Delay     time.Duration
	// CorruptProb forwards the request but replaces the response body
	// with garbage bytes — the "node returns nonsense" failure the
	// router's response validation must catch.
	CorruptProb float64
}

// errInjected is the transport error injected by DropProb rules.
type errInjected struct{ host string }

func (e errInjected) Error() string { return fmt.Sprintf("cluster: injected connection error to %s", e.host) }

// FaultInjector is an http.RoundTripper that wraps a real transport
// and injects per-host failures: drops, delays, corruption, synthetic
// 5xx, and blackholes. Rules are keyed by the request's host:port, so
// one injector in front of a router's shared transport can fail
// exactly one node of a live cluster. The random stream is seeded, so
// a failure scenario replays deterministically. Safe for concurrent
// use.
type FaultInjector struct {
	base  http.RoundTripper
	clock Clock

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]FaultRule
}

// NewFaultInjector wraps base (nil means http.DefaultTransport) with
// an empty rule set drawing randomness from seed.
func NewFaultInjector(base http.RoundTripper, seed int64) *FaultInjector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultInjector{
		base:  base,
		clock: RealClock{},
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]FaultRule),
	}
}

// SetClock replaces the clock used for injected delays (tests).
func (f *FaultInjector) SetClock(c Clock) { f.clock = c }

// Set installs (or replaces) the rule for a host:port.
func (f *FaultInjector) Set(host string, rule FaultRule) {
	f.mu.Lock()
	f.rules[host] = rule
	f.mu.Unlock()
}

// Clear removes a host's rule; its traffic flows untouched again.
func (f *FaultInjector) Clear(host string) {
	f.mu.Lock()
	delete(f.rules, host)
	f.mu.Unlock()
}

// roll draws one uniform sample from the seeded stream.
func (f *FaultInjector) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// RoundTrip implements http.RoundTripper.
func (f *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	rule, ok := f.rules[req.URL.Host]
	f.mu.Unlock()
	if !ok {
		return f.base.RoundTrip(req)
	}
	if rule.Blackhole {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	if rule.DropProb > 0 && f.roll() < rule.DropProb {
		return nil, errInjected{host: req.URL.Host}
	}
	if rule.FailProb > 0 && f.roll() < rule.FailProb {
		status := rule.FailStatus
		if status == 0 {
			status = http.StatusInternalServerError
		}
		body := fmt.Sprintf(`{"error":"injected %d from %s"}`, status, req.URL.Host)
		return &http.Response{
			StatusCode: status,
			Status:     http.StatusText(status),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if rule.DelayProb > 0 && rule.Delay > 0 && f.roll() < rule.DelayProb {
		if err := f.clock.Sleep(req.Context(), rule.Delay); err != nil {
			return nil, err
		}
	}
	resp, err := f.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if rule.CorruptProb > 0 && f.roll() < rule.CorruptProb {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		garbage := []byte("\x7f\x45\x4c\x46 not json at all \x00\x01\x02")
		resp.Body = io.NopCloser(bytes.NewReader(garbage))
		resp.ContentLength = int64(len(garbage))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}
