package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring consistent-hashes dataset names over node IDs with virtual
// nodes for balance. Both the router and cmd/serve build the ring from
// the same (node IDs, virtual-node count) inputs, so they agree on
// which nodes replicate which dataset without any coordination
// service. The ring is immutable after construction and safe for
// concurrent use.
type Ring struct {
	nodes    []string
	replicas int
	vnodes   []vnode // sorted by hash
}

type vnode struct {
	hash uint64
	node int // index into nodes
}

// DefaultVirtualNodes is the per-node virtual-node count used when
// NewRing is given a non-positive one: enough for <5% load imbalance
// on small clusters without making ring walks noticeable.
const DefaultVirtualNodes = 64

// NewRing builds a ring over the node IDs with the given replication
// factor (clamped to [1, len(nodes)]; a non-positive factor means 2,
// the minimum for fault tolerance) and virtual-node count.
func NewRing(nodes []string, replicationFactor, virtualNodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n)
		}
		seen[n] = true
	}
	if replicationFactor <= 0 {
		replicationFactor = 2
	}
	if replicationFactor > len(nodes) {
		replicationFactor = len(nodes)
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &Ring{
		nodes:    append([]string(nil), nodes...),
		replicas: replicationFactor,
		vnodes:   make([]vnode, 0, len(nodes)*virtualNodes),
	}
	for i, n := range r.nodes {
		for v := 0; v < virtualNodes; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic on (vanishingly unlikely) hash ties
	})
	return r, nil
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a's high bits barely disperse for short, similar keys
	// ("node-0#1", "node-0#2", ...), which collapses the ring into a few
	// arcs. A murmur3-style finalizer fixes the avalanche.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Nodes returns the ring's node IDs in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// ReplicationFactor returns the effective replication factor.
func (r *Ring) ReplicationFactor() int { return r.replicas }

// Replicas returns the distinct nodes responsible for key, in ring
// preference order: the first vnode at or after the key's hash owns
// the primary copy, and the walk continues clockwise until the
// replication factor is met.
func (r *Ring) Replicas(key string) []string {
	h := ringHash(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, r.replicas)
	taken := make(map[int]bool, r.replicas)
	for i := 0; i < len(r.vnodes) && len(out) < r.replicas; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !taken[v.node] {
			taken[v.node] = true
			out = append(out, r.nodes[v.node])
		}
	}
	return out
}

// Owns reports whether node is one of key's replicas.
func (r *Ring) Owns(node, key string) bool {
	for _, n := range r.Replicas(key) {
		if n == node {
			return true
		}
	}
	return false
}

// Assignments maps every node to the sorted list of datasets it must
// host under the ring — the bootstrap plan a cluster-mode cmd/serve
// uses to mount only its share of the snapshot fleet.
func Assignments(r *Ring, datasets []string) map[string][]string {
	out := make(map[string][]string, len(r.nodes))
	for _, n := range r.nodes {
		out[n] = nil
	}
	for _, ds := range datasets {
		for _, n := range r.Replicas(ds) {
			out[n] = append(out[n], ds)
		}
	}
	for _, list := range out {
		sort.Strings(list)
	}
	return out
}
