package cluster

import (
	"context"
	"fmt"

	"cicero/internal/engine"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/snapshot"
	"cicero/internal/voice"
)

// This file is the replica-bootstrap seam: it connects the ring's
// placement plan to the snapshot artifacts of internal/snapshot and
// the lazy loading of serve.Registry, so a node joins the cluster by
// mmapping its assigned datasets' snapshots in microseconds instead of
// re-running pre-processing.

// SnapshotLoader returns a serve.Registry loader that bootstraps one
// replica from its snapshot artifact: zero-copy mmap when useMmap is
// set, heap decode otherwise. A non-empty fingerprint must match the
// artifact's build fingerprint — a replica must not serve answers
// built under different parameters than its peers. The loader is the
// lazy half of cluster bootstrap; pair it with Assignments to decide
// which datasets a node registers at all.
func SnapshotLoader(path string, rel *relation.Relation, ex *voice.Extractor, useMmap bool, fingerprint string) serve.Loader {
	return func(ctx context.Context) (*serve.Answerer, error) {
		meta, err := snapshot.InfoFile(path)
		if err != nil {
			return nil, err
		}
		if fingerprint != "" && meta.Fingerprint != fingerprint {
			return nil, fmt.Errorf("cluster: snapshot %s built with different parameters (%q, replica wants %q)",
				path, meta.Fingerprint, fingerprint)
		}
		var view engine.StoreView
		if useMmap {
			view, err = snapshot.MapFile(path, rel)
		} else {
			view, err = snapshot.ReadFile(path, rel)
		}
		if err != nil {
			return nil, err
		}
		return serve.New(rel, view, ex, serve.Options{}), nil
	}
}

// NodeDatasets filters datasets down to the ones the ring assigns to
// node — the mount list a cluster-mode cmd/serve uses instead of
// mounting everything. Order follows the input list.
func NodeDatasets(r *Ring, node string, datasets []string) []string {
	var out []string
	for _, ds := range datasets {
		if r.Owns(node, ds) {
			out = append(out, ds)
		}
	}
	return out
}
