package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// ProbeFunc checks one (node, dataset) replica — production probes GET
// the node's /v1/{dataset}/healthz — returning the dataset's store
// swap count (its generation) on success.
type ProbeFunc func(ctx context.Context, node, dataset string) (swaps uint64, err error)

// healthKey identifies one replica: a dataset hosted on a node.
type healthKey struct{ node, dataset string }

// ReplicaHealth is one replica's probe state.
type ReplicaHealth struct {
	Node    string `json:"node"`
	Dataset string `json:"dataset"`
	// Healthy is the last probe verdict; replicas start healthy so a
	// router serves traffic before its first sweep completes.
	Healthy bool `json:"healthy"`
	// Swaps is the dataset's store swap count from the last good probe
	// — the generation stale cache entries are tagged with.
	Swaps uint64 `json:"swaps"`
	// Error is the last probe failure ("" when healthy).
	Error string `json:"error,omitempty"`
	// Checked is when the replica was last probed (zero before the
	// first sweep).
	Checked time.Time `json:"checked"`
}

// HealthChecker actively probes every (node, dataset) replica of the
// cluster and holds the latest verdicts. The router consults Healthy
// to demote dead replicas out of the forwarding order and Swaps to
// generation-tag stale cache entries. Run sweeps on an interval;
// Check runs one synchronous sweep (tests and boot use it directly).
type HealthChecker struct {
	probe    ProbeFunc
	interval time.Duration
	timeout  time.Duration

	mu      sync.RWMutex
	entries map[healthKey]*ReplicaHealth
}

// NewHealthChecker tracks the given replica pairs. interval is the
// sweep period for Run (default 1s); timeout bounds each probe
// (default half the interval).
func NewHealthChecker(probe ProbeFunc, ring *Ring, datasets []string, interval, timeout time.Duration) *HealthChecker {
	if interval <= 0 {
		interval = time.Second
	}
	if timeout <= 0 {
		timeout = interval / 2
	}
	h := &HealthChecker{
		probe:    probe,
		interval: interval,
		timeout:  timeout,
		entries:  make(map[healthKey]*ReplicaHealth),
	}
	for _, ds := range datasets {
		for _, node := range ring.Replicas(ds) {
			k := healthKey{node: node, dataset: ds}
			h.entries[k] = &ReplicaHealth{Node: node, Dataset: ds, Healthy: true}
		}
	}
	return h
}

// Check runs one synchronous sweep: every replica is probed in
// parallel under the probe timeout and its verdict updated.
func (h *HealthChecker) Check(ctx context.Context) {
	h.mu.RLock()
	keys := make([]healthKey, 0, len(h.entries))
	for k := range h.entries {
		keys = append(keys, k)
	}
	h.mu.RUnlock()

	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k healthKey) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, h.timeout)
			defer cancel()
			swaps, err := h.probe(pctx, k.node, k.dataset)
			now := time.Now()
			h.mu.Lock()
			e := h.entries[k]
			e.Checked = now
			if err != nil {
				e.Healthy = false
				e.Error = err.Error()
			} else {
				e.Healthy = true
				e.Error = ""
				e.Swaps = swaps
			}
			h.mu.Unlock()
		}(k)
	}
	wg.Wait()
}

// Run sweeps on the checker's interval until ctx is done. The first
// sweep runs immediately.
func (h *HealthChecker) Run(ctx context.Context) {
	h.Check(ctx)
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			h.Check(ctx)
		}
	}
}

// Healthy reports the replica's last probe verdict; unknown replicas
// (not in the ring's plan) report false.
func (h *HealthChecker) Healthy(node, dataset string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	e := h.entries[healthKey{node: node, dataset: dataset}]
	return e != nil && e.Healthy
}

// Swaps returns the replica's last observed store generation.
func (h *HealthChecker) Swaps(node, dataset string) uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	e := h.entries[healthKey{node: node, dataset: dataset}]
	if e == nil {
		return 0
	}
	return e.Swaps
}

// RemoveDataset drops every replica entry of a dataset, so sweeps stop
// probing it and its replicas report unhealthy with zero generation.
func (h *HealthChecker) RemoveDataset(dataset string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for k := range h.entries {
		if k.dataset == dataset {
			delete(h.entries, k)
		}
	}
}

// MarkUnhealthy force-flags a replica down (the router does this on
// forwarding failures so routing reacts faster than the next sweep).
func (h *HealthChecker) MarkUnhealthy(node, dataset string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e := h.entries[healthKey{node: node, dataset: dataset}]; e != nil {
		e.Healthy = false
		if err != nil {
			e.Error = err.Error()
		}
	}
}

// Snapshot copies every replica verdict, sorted by (dataset, node).
func (h *HealthChecker) Snapshot() []ReplicaHealth {
	h.mu.RLock()
	out := make([]ReplicaHealth, 0, len(h.entries))
	for _, e := range h.entries {
		out = append(out, *e)
	}
	h.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Node < out[j].Node
	})
	return out
}
