package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(nil, 2, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 2, 0); err == nil {
		t.Fatal("duplicate node IDs accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 2, 0); err == nil {
		t.Fatal("empty node ID accepted")
	}
}

func TestRingReplicasDistinctAndClamped(t *testing.T) {
	r, err := NewRing(ringNodes(3), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"flights", "acs", "taxi", "liquor"} {
		reps := r.Replicas(ds)
		if len(reps) != 3 {
			t.Fatalf("dataset %s: %d replicas, want RF clamped to 3 nodes", ds, len(reps))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("dataset %s: duplicate replica %s", ds, n)
			}
			seen[n] = true
		}
	}
	// RF <= 0 defaults to 2.
	r2, err := NewRing(ringNodes(4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r2.Replicas("flights")); got != 2 {
		t.Fatalf("default RF gave %d replicas, want 2", got)
	}
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	// The router and every cmd/serve node build their own ring from the
	// same flag values; placement must agree with no coordination.
	a, err := NewRing(ringNodes(5), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(ringNodes(5), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		if ra, rb := a.Replicas(key), b.Replicas(key); !reflect.DeepEqual(ra, rb) {
			t.Fatalf("key %s: %v vs %v", key, ra, rb)
		}
	}
}

func TestRingNodeOrderIndependent(t *testing.T) {
	a, _ := NewRing([]string{"a", "b", "c"}, 2, 0)
	b, _ := NewRing([]string{"c", "a", "b"}, 2, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		if ra, rb := a.Replicas(key), b.Replicas(key); !reflect.DeepEqual(ra, rb) {
			t.Fatalf("key %s: placement depends on input order: %v vs %v", key, ra, rb)
		}
	}
}

func TestRingOwnsMatchesReplicas(t *testing.T) {
	r, _ := NewRing(ringNodes(5), 3, 0)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		reps := map[string]bool{}
		for _, n := range r.Replicas(key) {
			reps[n] = true
		}
		for _, n := range ringNodes(5) {
			if r.Owns(n, key) != reps[n] {
				t.Fatalf("Owns(%s, %s) = %v disagrees with Replicas", n, key, !reps[n])
			}
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	// With virtual nodes, 200 keys across 5 nodes should not all pile
	// onto one node. Loose bound: every node owns at least one key.
	r, _ := NewRing(ringNodes(5), 1, 0)
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		counts[r.Replicas(fmt.Sprintf("dataset-%d", i))[0]]++
	}
	for _, n := range ringNodes(5) {
		if counts[n] == 0 {
			t.Fatalf("node %s owns no keys out of 200: %v", n, counts)
		}
	}
}

func TestAssignmentsCoverAllDatasetsRFTimes(t *testing.T) {
	nodes := ringNodes(4)
	datasets := []string{"flights", "acs", "taxi", "liquor", "weather"}
	r, _ := NewRing(nodes, 2, 0)
	asg := Assignments(r, datasets)
	total := 0
	for n, dss := range asg {
		total += len(dss)
		for _, ds := range dss {
			if !r.Owns(n, ds) {
				t.Fatalf("assignment gave %s to %s but Owns disagrees", ds, n)
			}
		}
	}
	if total != len(datasets)*2 {
		t.Fatalf("total placements %d, want %d (each dataset on RF=2 nodes)", total, len(datasets)*2)
	}
}

func TestNodeDatasetsFiltersByOwnership(t *testing.T) {
	nodes := ringNodes(3)
	datasets := []string{"flights", "acs", "taxi", "liquor"}
	r, _ := NewRing(nodes, 2, 0)
	covered := map[string]int{}
	for _, n := range nodes {
		for _, ds := range NodeDatasets(r, n, datasets) {
			if !r.Owns(n, ds) {
				t.Fatalf("NodeDatasets gave %s to %s without ownership", ds, n)
			}
			covered[ds]++
		}
	}
	for _, ds := range datasets {
		if covered[ds] != 2 {
			t.Fatalf("dataset %s mounted on %d nodes, want 2", ds, covered[ds])
		}
	}
}
