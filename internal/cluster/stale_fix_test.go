package cluster

// Regression tests for stale-cache lifecycle bugs: a last-good answer
// must die with its dataset (RemoveDataset purge) and must not be
// served once the replica's store generation moved past the one it was
// captured at (delta publishes, node reboots).

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

// TestRouterRejectsSupersededStaleAnswer pins the generation check on
// the stale read path: an answer captured at store generation G must
// not be served as "last known good" after the replicas published
// generation G+1 — the cluster already replaced that answer, and a
// reboot onto a fresh base (swap counter reset) is the same situation
// with a smaller number.
func TestRouterRejectsSupersededStaleAnswer(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	nodes[0].swaps.Store(3)
	nodes[1].swaps.Store(3)
	r, inj, _ := newTestRouter(t, nodes, []string{"flights"}, Options{})

	const text = "cancellation probability please"
	if w := postAnswer(t, r.Handler(), "flights", text); w.Code != http.StatusOK {
		t.Fatalf("warm-up failed: %d", w.Code)
	}
	if r.Stats().StaleSize != 1 {
		t.Fatalf("stale entries = %d, want 1", r.Stats().StaleSize)
	}

	// A delta publish bumps both replicas' store generation; the health
	// sweep observes it. The cached answer is now superseded.
	nodes[0].swaps.Store(4)
	nodes[1].swaps.Store(4)
	r.CheckHealth(context.Background())

	inj.Set(nodes[0].host(), FaultRule{DropProb: 1})
	inj.Set(nodes[1].host(), FaultRule{DropProb: 1})

	w := postAnswer(t, r.Handler(), "flights", text)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("superseded stale answer served: status %d body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "superseded") {
		t.Fatalf("503 body does not explain the superseded cache entry: %s", w.Body.String())
	}
	if got := r.Stats().StaleServed; got != 0 {
		t.Fatalf("stale_served = %d, want 0", got)
	}
	// The dead entry was evicted, not left at the front of the LRU.
	if got := r.Stats().StaleSize; got != 0 {
		t.Fatalf("stale entries after rejection = %d, want 0", got)
	}
}

// TestRouterStaleServedWhileGenerationCurrent is the positive control:
// with no publish between capture and outage, the generation matches
// and the stale answer is served as before.
func TestRouterStaleServedWhileGenerationCurrent(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	nodes[0].swaps.Store(7)
	nodes[1].swaps.Store(7)
	r, inj, _ := newTestRouter(t, nodes, []string{"flights"}, Options{})

	const text = "cancellations in winter"
	if w := postAnswer(t, r.Handler(), "flights", text); w.Code != http.StatusOK {
		t.Fatalf("warm-up failed: %d", w.Code)
	}
	inj.Set(nodes[0].host(), FaultRule{DropProb: 1})
	inj.Set(nodes[1].host(), FaultRule{DropProb: 1})

	w := postAnswer(t, r.Handler(), "flights", text)
	if w.Code != http.StatusOK || w.Header().Get("X-Cicero-Stale") != "true" {
		t.Fatalf("current-generation stale answer not served: %d stale=%q",
			w.Code, w.Header().Get("X-Cicero-Stale"))
	}
}

// TestRouterRemoveDatasetPurgesState pins dataset teardown: requests
// 404, probes stop, and — the bug this sweep fixes — the dataset's
// stale answers are purged so a later dataset under the same name can
// never resurrect them.
func TestRouterRemoveDatasetPurgesState(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, "a"), newFakeNode(t, "b")}
	r, inj, _ := newTestRouter(t, nodes, []string{"flights", "acs"}, Options{})

	if w := postAnswer(t, r.Handler(), "flights", "cancellations"); w.Code != http.StatusOK {
		t.Fatalf("flights warm-up failed: %d", w.Code)
	}
	if w := postAnswer(t, r.Handler(), "acs", "hearing impairment"); w.Code != http.StatusOK {
		t.Fatalf("acs warm-up failed: %d", w.Code)
	}
	if r.Stats().StaleSize != 2 {
		t.Fatalf("stale entries = %d, want 2", r.Stats().StaleSize)
	}

	if !r.RemoveDataset("acs") {
		t.Fatal("RemoveDataset(acs) = false, want true")
	}
	if r.RemoveDataset("acs") {
		t.Fatal("second RemoveDataset(acs) = true, want false")
	}

	if w := postAnswer(t, r.Handler(), "acs", "hearing impairment"); w.Code != http.StatusNotFound {
		t.Fatalf("removed dataset answered: %d", w.Code)
	}
	if got := r.Stats().StaleSize; got != 1 {
		t.Fatalf("stale entries after removal = %d, want 1 (flights only)", got)
	}
	for _, n := range nodes {
		if r.Health().Healthy(n.id, "acs") {
			t.Fatalf("removed dataset still probed healthy on %s", n.id)
		}
	}
	if h := r.HealthSnapshot(); h.Datasets["acs"].Replication != 0 {
		t.Fatalf("healthz still reports the removed dataset: %+v", h.Datasets)
	}

	// The surviving dataset still serves, including its stale fallback.
	inj.Set(nodes[0].host(), FaultRule{DropProb: 1})
	inj.Set(nodes[1].host(), FaultRule{DropProb: 1})
	if w := postAnswer(t, r.Handler(), "flights", "cancellations"); w.Code != http.StatusOK ||
		w.Header().Get("X-Cicero-Stale") != "true" {
		t.Fatalf("surviving dataset's stale fallback broken: %d", w.Code)
	}
}
