// Package cluster is the fault-tolerance tier over the HTTP serving
// layer: it turns N independent cmd/serve daemons into one
// continuously available cluster. A Router consistent-hashes datasets
// (Ring) across the nodes with a configurable replication factor,
// actively health-checks every replica through the nodes' existing
// per-dataset /v1/{dataset}/healthz endpoints (HealthChecker), and
// forwards answer traffic with per-attempt timeouts, capped
// exponential backoff with jitter (BackoffPolicy), failover retries to
// the next replica on connection error / timeout / 5xx / corrupt
// response, and a per-node circuit breaker (Breaker). When every
// replica of a dataset is down the router degrades gracefully: it
// serves the last known good answer from a generation-tagged stale
// cache with an explicit staleness marker instead of failing, and it
// load-sheds with 503 + Retry-After under overload. The FaultInjector
// transport hook reproduces each of those failure modes
// deterministically in tests.
//
// Replicas bootstrap from the snapshot artifacts of internal/snapshot:
// Assignments tells a cluster-mode cmd/serve which datasets its node
// must mount, and SnapshotLoader turns a snapshot path into the lazy
// serve.Registry loader that cold-starts the replica in microseconds.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cicero/internal/httpserve"
	"cicero/internal/stats"
)

// Node is one cmd/serve backend of the cluster.
type Node struct {
	// ID is the node's stable identity on the hash ring; it must match
	// the -node flag the backend was started with when ring-scoped
	// mounting is used.
	ID string `json:"id"`
	// URL is the node's base URL (e.g. http://10.0.0.3:8080).
	URL string `json:"url"`
}

// Options tunes the router tier. The zero value gives production
// defaults.
type Options struct {
	// Replication is the number of nodes hosting each dataset
	// (default 2, clamped to the node count).
	Replication int
	// VirtualNodes is the ring's per-node virtual-node count
	// (default DefaultVirtualNodes). Router and nodes must agree.
	VirtualNodes int
	// RequestTimeout bounds each forwarding attempt (default 2s): a
	// hung node costs at most this before failover.
	RequestTimeout time.Duration
	// MaxAttempts bounds the total tries per request across replicas
	// (default 2 × replication).
	MaxAttempts int
	// Backoff shapes the delay between retries.
	Backoff BackoffPolicy
	// Breaker tunes the per-node circuit breakers.
	Breaker BreakerPolicy
	// HealthInterval is the active health-check sweep period
	// (default 1s).
	HealthInterval time.Duration
	// ProbeTimeout bounds each health probe (default HealthInterval/2).
	ProbeTimeout time.Duration
	// MaxInFlight bounds concurrently forwarded requests (default 512);
	// beyond it requests queue up to QueueTimeout (default 100ms) and
	// are then shed with 503 + Retry-After.
	MaxInFlight  int
	QueueTimeout time.Duration
	// MaxBodyBytes bounds the accepted request body (default 1 MiB).
	MaxBodyBytes int64
	// StaleEntries bounds the last-good-answer cache (default 4096);
	// negative disables stale serving.
	StaleEntries int
	// LatencyWindow is the forwarding latency sample window.
	LatencyWindow int
	// Transport overrides the forwarding transport — the FaultInjector
	// hook. Nil uses a connection-pooled clone of the default.
	Transport http.RoundTripper
	// Clock overrides wall time (tests). Nil uses the real clock.
	Clock Clock
	// Seed makes backoff jitter deterministic.
	Seed int64
}

func (o Options) withDefaults(nodes int) Options {
	if o.Replication <= 0 {
		o.Replication = 2
	}
	if o.Replication > nodes {
		o.Replication = nodes
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2 * o.Replication
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.HealthInterval / 2
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 512
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 100 * time.Millisecond
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.StaleEntries == 0 {
		o.StaleEntries = 4096
	}
	if o.Clock == nil {
		o.Clock = RealClock{}
	}
	return o
}

// maxReplyBytes bounds a relayed node response; a response this large
// is treated like a corrupt one (failover, then 503).
const maxReplyBytes = 64 << 20

// nodeState is one node's runtime state on the router.
type nodeState struct {
	node    Node
	breaker *Breaker
	success atomic.Uint64
	failure atomic.Uint64
}

// Router is the health-checked, failover-retrying HTTP front of a
// snapshot-replicated cluster. Create with New, start the health loop
// with Run (or call CheckHealth yourself), and serve Handler.
type Router struct {
	nodes []Node
	byID  map[string]*nodeState
	// dsMu guards datasets and hosted: handleAnswer reads them on every
	// request, and RemoveDataset shrinks them at runtime.
	dsMu     sync.RWMutex
	datasets []string
	hosted   map[string]bool
	defName  string
	ring     *Ring
	health   *HealthChecker
	stale    *staleCache // nil when disabled
	opts     Options
	clock    Clock
	client   *http.Client
	sem      chan struct{}
	mux      *http.ServeMux
	started  time.Time

	rr          atomic.Uint64 // round-robin cursor over healthy replicas
	forwards    atomic.Uint64
	retries     atomic.Uint64
	failovers   atomic.Uint64
	staleServed atomic.Uint64
	shed        atomic.Uint64
	failed      atomic.Uint64
	lat         *stats.LatencyRecorder

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds a router over the nodes for the given datasets; the first
// dataset is the default the legacy /v1/answer route resolves to.
func New(nodes []Node, datasets []string, opts Options) (*Router, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: router needs at least one node")
	}
	if len(datasets) == 0 {
		return nil, errors.New("cluster: router needs at least one dataset")
	}
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		if n.ID == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: node %d needs both an ID and a URL", i)
		}
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: node %s: invalid URL %q", n.ID, n.URL)
		}
		nodes[i].URL = strings.TrimRight(n.URL, "/")
		ids[i] = n.ID
	}
	opts = opts.withDefaults(len(nodes))
	ring, err := NewRing(ids, opts.Replication, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}

	transport := opts.Transport
	if transport == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = opts.MaxInFlight
		transport = tr
	}
	r := &Router{
		nodes:    append([]Node(nil), nodes...),
		byID:     make(map[string]*nodeState, len(nodes)),
		datasets: append([]string(nil), datasets...),
		hosted:   make(map[string]bool, len(datasets)),
		defName:  datasets[0],
		ring:     ring,
		opts:     opts,
		clock:    opts.Clock,
		client:   &http.Client{Transport: transport},
		sem:      make(chan struct{}, opts.MaxInFlight),
		started:  time.Now(),
		lat:      stats.NewLatencyRecorder(opts.LatencyWindow),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	if opts.StaleEntries > 0 {
		r.stale = newStaleCache(opts.StaleEntries)
	}
	for _, n := range r.nodes {
		r.byID[n.ID] = &nodeState{node: n, breaker: NewBreaker(opts.Breaker, r.clock)}
	}
	for _, ds := range r.datasets {
		r.hosted[ds] = true
	}
	r.health = NewHealthChecker(r.probeReplica, ring, datasets, opts.HealthInterval, opts.ProbeTimeout)

	r.mux = http.NewServeMux()
	r.mux.HandleFunc("/v1/answer", r.handleAnswer)
	r.mux.HandleFunc("/v1/{dataset}/answer", r.handleAnswer)
	r.mux.HandleFunc("/v1/healthz", r.handleHealthz)
	r.mux.HandleFunc("/v1/stats", r.handleStats)
	r.mux.HandleFunc("/v1/datasets", r.handleDatasets)
	return r, nil
}

// Handler returns the router's route multiplexer.
func (r *Router) Handler() http.Handler { return r.mux }

// isHosted reports whether the router currently routes the dataset.
func (r *Router) isHosted(dataset string) bool {
	r.dsMu.RLock()
	defer r.dsMu.RUnlock()
	return r.hosted[dataset]
}

// datasetList copies the currently routed dataset names.
func (r *Router) datasetList() []string {
	r.dsMu.RLock()
	defer r.dsMu.RUnlock()
	return append([]string(nil), r.datasets...)
}

// RemoveDataset stops routing a dataset: requests for it 404, health
// probing of its replicas stops, and every stale-cache answer captured
// for it is purged — a removed dataset's last-good answers must not
// outlive the dataset and resurface if the name is ever routed again.
// It reports whether the dataset was routed.
func (r *Router) RemoveDataset(name string) bool {
	r.dsMu.Lock()
	if !r.hosted[name] {
		r.dsMu.Unlock()
		return false
	}
	delete(r.hosted, name)
	kept := r.datasets[:0]
	for _, ds := range r.datasets {
		if ds != name {
			kept = append(kept, ds)
		}
	}
	r.datasets = kept
	r.dsMu.Unlock()

	r.health.RemoveDataset(name)
	if r.stale != nil {
		r.stale.purgeDataset(name)
	}
	return true
}

// Ring exposes the router's placement ring (cmd/router prints it).
func (r *Router) Ring() *Ring { return r.ring }

// Health exposes the router's health checker.
func (r *Router) Health() *HealthChecker { return r.health }

// Run sweeps health checks on the configured interval until ctx is
// done; the first sweep completes before traffic-worthy verdicts are
// needed. Call it from a goroutine next to the HTTP server.
func (r *Router) Run(ctx context.Context) { r.health.Run(ctx) }

// CheckHealth runs one synchronous health sweep (boot and tests).
func (r *Router) CheckHealth(ctx context.Context) { r.health.Check(ctx) }

// probeReplica is the health checker's ProbeFunc: one GET of the
// node's per-dataset healthz, returning the dataset's swap count.
func (r *Router) probeReplica(ctx context.Context, node, dataset string) (uint64, error) {
	ns := r.byID[node]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ns.node.URL+"/v1/"+url.PathEscape(dataset)+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h httpserve.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		return 0, fmt.Errorf("healthz body: %w", err)
	}
	return h.Swaps, nil
}

// candidates orders a dataset's replicas for forwarding: healthy
// replicas first — rotated by a round-robin cursor so load spreads
// across them — then unhealthy ones as a last resort (health can lag
// a recovery; the breaker still gates the actual attempt).
func (r *Router) candidates(dataset string) []string {
	replicas := r.ring.Replicas(dataset)
	healthy := make([]string, 0, len(replicas))
	var down []string
	for _, n := range replicas {
		if r.health.Healthy(n, dataset) {
			healthy = append(healthy, n)
		} else {
			down = append(down, n)
		}
	}
	if len(healthy) > 1 {
		rot := int(r.rr.Add(1)) % len(healthy)
		healthy = append(healthy[rot:], healthy[:rot]...)
	}
	return append(healthy, down...)
}

// backoffDelay draws a jittered delay for the given retry index.
func (r *Router) backoffDelay(retry int) time.Duration {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.opts.Backoff.Delay(retry, r.rng)
}

// nodeReply is one successfully relayed node response.
type nodeReply struct {
	node     string
	status   int
	body     []byte
	attempts int
}

// errAllBreakersOpen reports a forward that could not attempt any
// replica because every breaker rejected it.
var errAllBreakersOpen = errors.New("cluster: every replica's circuit breaker is open")

// forward sends body to the dataset's replicas until one yields a
// coherent response: per-attempt timeout, backoff between attempts,
// failover to the next candidate on connection error, timeout, 5xx, or
// a corrupt (non-JSON) body. Client errors (4xx) are coherent answers
// and are relayed, not retried.
func (r *Router) forward(ctx context.Context, dataset string, body []byte) (*nodeReply, error) {
	cands := r.candidates(dataset)
	attempts := 0
	var lastErr error
	for attempts < r.opts.MaxAttempts {
		tried := false
		for _, id := range cands {
			if attempts >= r.opts.MaxAttempts || ctx.Err() != nil {
				break
			}
			ns := r.byID[id]
			if !ns.breaker.Allow() {
				continue
			}
			if attempts > 0 {
				r.retries.Add(1)
				if err := r.clock.Sleep(ctx, r.backoffDelay(attempts-1)); err != nil {
					return nil, err
				}
			}
			tried = true
			attempts++
			reply, err := r.tryNode(ctx, ns, dataset, body)
			if err != nil {
				ns.breaker.Failure()
				ns.failure.Add(1)
				r.health.MarkUnhealthy(id, dataset, err)
				lastErr = err
				continue
			}
			ns.breaker.Success()
			ns.success.Add(1)
			reply.attempts = attempts
			if attempts > 1 {
				r.failovers.Add(1)
			}
			return reply, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !tried {
			// Every breaker rejected the pass: the dataset is effectively
			// down right now; don't spin until MaxAttempts.
			if lastErr == nil {
				lastErr = errAllBreakersOpen
			}
			break
		}
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no replica available")
	}
	return nil, lastErr
}

// tryNode runs one forwarding attempt under the per-attempt timeout.
// A reply is an error — triggering failover — on transport failure,
// timeout, 5xx, or a body that is not valid JSON (a corrupt node must
// not have its garbage relayed as an answer).
func (r *Router) tryNode(ctx context.Context, ns *nodeState, dataset string, body []byte) (*nodeReply, error) {
	actx, cancel := context.WithTimeout(ctx, r.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		ns.node.URL+"/v1/"+url.PathEscape(dataset)+"/answer", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(io.LimitReader(resp.Body, maxReplyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 500 {
		return nil, fmt.Errorf("node %s: status %d", ns.node.ID, resp.StatusCode)
	}
	if !json.Valid(reply) {
		return nil, fmt.Errorf("node %s: corrupt response body", ns.node.ID)
	}
	return &nodeReply{node: ns.node.ID, status: resp.StatusCode, body: reply}, nil
}

// acquire takes a forwarding slot, waiting at most the queue timeout.
func (r *Router) acquire(ctx context.Context) error {
	select {
	case r.sem <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(r.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case r.sem <- struct{}{}:
		return nil
	case <-timer.C:
		r.shed.Add(1)
		return httpserve.ErrOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Router) handleAnswer(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	r.forwards.Add(1)
	defer func() { r.lat.Record(time.Since(start)) }()

	dataset := req.PathValue("dataset")
	if dataset == "" {
		dataset = r.defName
	}
	if !r.isHosted(dataset) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown dataset %q", dataset)})
		return
	}
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.opts.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	// Best-effort single-text extraction: the stale cache only covers
	// single-answer requests (a batch is not one answer to remember).
	var parsed httpserve.AnswerRequest
	staleKey := ""
	if json.Unmarshal(body, &parsed) == nil && parsed.Text != "" && len(parsed.Texts) == 0 {
		staleKey = dataset + "\x00" + httpserve.CacheKey(parsed.Text)
	}

	if err := r.acquire(req.Context()); err != nil {
		r.failed.Add(1)
		if errors.Is(err, httpserve.ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, 499, errorBody{Error: err.Error()})
		return
	}
	defer func() { <-r.sem }()

	reply, err := r.forward(req.Context(), dataset, body)
	if err == nil {
		if r.stale != nil && staleKey != "" && reply.status == http.StatusOK {
			r.stale.put(staleEntry{
				key:        staleKey,
				dataset:    dataset,
				body:       reply.body,
				node:       reply.node,
				generation: r.health.Swaps(reply.node, dataset),
				storedAt:   r.clock.Now(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cicero-Node", reply.node)
		w.Header().Set("X-Cicero-Attempts", strconv.Itoa(reply.attempts))
		w.WriteHeader(reply.status)
		w.Write(reply.body)
		return
	}
	if req.Context().Err() != nil {
		r.failed.Add(1)
		writeJSON(w, 499, errorBody{Error: req.Context().Err().Error()})
		return
	}
	// Every replica failed: graceful degradation — a stale answer with
	// an explicit marker beats an error while the cluster heals.
	if r.stale != nil && staleKey != "" {
		if e, ok := r.stale.get(staleKey); ok {
			// The entry is only servable if its generation still matches
			// the answering replica's last observed store generation. A
			// mismatch means the store moved on after capture — a delta
			// published a newer generation, or the node rebooted onto a
			// fresh base and its swap counter reset — and "last known
			// good" would actually be "superseded": drop it and fail
			// honestly rather than serve an answer the cluster already
			// replaced.
			if e.generation != r.health.Swaps(e.node, dataset) {
				r.stale.remove(staleKey)
				ok = false
			}
			if !ok {
				r.failed.Add(1)
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusServiceUnavailable,
					errorBody{Error: fmt.Sprintf("every replica of %q is unavailable and the cached answer is superseded: %v", dataset, err)})
				return
			}
			r.staleServed.Add(1)
			age := r.clock.Now().Sub(e.storedAt)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cicero-Node", e.node)
			w.Header().Set("X-Cicero-Stale", "true")
			w.WriteHeader(http.StatusOK)
			w.Write(markStale(e.body, age, e.generation))
			return
		}
	}
	r.failed.Add(1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable,
		errorBody{Error: fmt.Sprintf("every replica of %q is unavailable: %v", dataset, err)})
}

// markStale stamps the staleness marker into a cached answer body:
// stale, stale_age_ns, and the generation (the answering node's store
// swap count at capture) so clients can tell how old and which store
// generation the answer reflects.
func markStale(body []byte, age time.Duration, generation uint64) []byte {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil || m == nil {
		// Cached bodies were JSON-validated at capture; this path is a
		// non-object answer — wrap it rather than lose the marker.
		m = map[string]any{"answer": json.RawMessage(body)}
	}
	m["stale"] = true
	m["stale_age_ns"] = age.Nanoseconds()
	m["generation"] = generation
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// NodeHealth is one node's row in the router healthz payload.
type NodeHealth struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Healthy reports every replica hosted on the node healthy.
	Healthy bool `json:"healthy"`
	// Breaker is the node's circuit-breaker state.
	Breaker string `json:"breaker"`
	// Replicas are the node's per-dataset probe verdicts.
	Replicas []ReplicaHealth `json:"replicas"`
}

// DatasetHealth summarizes one dataset's replica availability.
type DatasetHealth struct {
	Replication int      `json:"replication"`
	Available   int      `json:"available"`
	Nodes       []string `json:"nodes"`
}

// HealthResponse is the router's GET /v1/healthz payload: the cluster
// as the router sees it.
type HealthResponse struct {
	// Status is "ok" (full replication everywhere), "degraded" (some
	// dataset below its replication factor), or "down" (some dataset
	// has zero available replicas — only stale answers remain for it).
	Status   string                   `json:"status"`
	Nodes    []NodeHealth             `json:"nodes"`
	Datasets map[string]DatasetHealth `json:"datasets"`
	UptimeNS time.Duration            `json:"uptime_ns"`
}

// HealthSnapshot assembles the router healthz payload.
func (r *Router) HealthSnapshot() HealthResponse {
	byNode := make(map[string][]ReplicaHealth)
	for _, rep := range r.health.Snapshot() {
		byNode[rep.Node] = append(byNode[rep.Node], rep)
	}
	datasets := r.datasetList()
	resp := HealthResponse{
		Status:   "ok",
		Datasets: make(map[string]DatasetHealth, len(datasets)),
		UptimeNS: time.Since(r.started),
	}
	for _, n := range r.nodes {
		nh := NodeHealth{
			ID:       n.ID,
			URL:      n.URL,
			Healthy:  true,
			Breaker:  r.byID[n.ID].breaker.State().String(),
			Replicas: byNode[n.ID],
		}
		for _, rep := range nh.Replicas {
			if !rep.Healthy {
				nh.Healthy = false
			}
		}
		resp.Nodes = append(resp.Nodes, nh)
	}
	for _, ds := range datasets {
		dh := DatasetHealth{Replication: r.ring.ReplicationFactor(), Nodes: r.ring.Replicas(ds)}
		for _, n := range dh.Nodes {
			if r.health.Healthy(n, ds) {
				dh.Available++
			}
		}
		resp.Datasets[ds] = dh
		if dh.Available == 0 {
			resp.Status = "down"
		} else if dh.Available < dh.Replication && resp.Status == "ok" {
			resp.Status = "degraded"
		}
	}
	return resp
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, r.HealthSnapshot())
}

// NodeStats is one node's forwarding counters.
type NodeStats struct {
	Success uint64 `json:"success"`
	Failure uint64 `json:"failure"`
	Breaker string `json:"breaker"`
}

// StatsSnapshot is the router's GET /v1/stats payload.
type StatsSnapshot struct {
	UptimeNS    time.Duration         `json:"uptime_ns"`
	Forwards    uint64                `json:"forwards"`
	Retries     uint64                `json:"retries"`
	Failovers   uint64                `json:"failovers"`
	StaleServed uint64                `json:"stale_served"`
	Shed        uint64                `json:"shed"`
	Failed      uint64                `json:"failed"`
	Latency     stats.LatencySnapshot `json:"latency"`
	Nodes       map[string]NodeStats  `json:"nodes"`
	StaleSize   int                   `json:"stale_entries"`
	MaxInFlight int                   `json:"max_in_flight"`
	InFlight    int                   `json:"in_flight"`
}

// Stats snapshots the router's forwarding metrics.
func (r *Router) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		UptimeNS:    time.Since(r.started),
		Forwards:    r.forwards.Load(),
		Retries:     r.retries.Load(),
		Failovers:   r.failovers.Load(),
		StaleServed: r.staleServed.Load(),
		Shed:        r.shed.Load(),
		Failed:      r.failed.Load(),
		Latency:     r.lat.Snapshot(),
		Nodes:       make(map[string]NodeStats, len(r.nodes)),
		MaxInFlight: r.opts.MaxInFlight,
		InFlight:    len(r.sem),
	}
	if r.stale != nil {
		snap.StaleSize = r.stale.len()
	}
	for id, ns := range r.byID {
		snap.Nodes[id] = NodeStats{
			Success: ns.success.Load(),
			Failure: ns.failure.Load(),
			Breaker: ns.breaker.State().String(),
		}
	}
	return snap
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, r.Stats())
}

// RoutedDataset is one row of the router's GET /v1/datasets payload.
type RoutedDataset struct {
	Name     string   `json:"name"`
	Default  bool     `json:"default,omitempty"`
	Replicas []string `json:"replicas"`
}

func (r *Router) handleDatasets(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	out := struct {
		Datasets []RoutedDataset `json:"datasets"`
	}{}
	for _, ds := range r.datasetList() {
		out.Datasets = append(out.Datasets, RoutedDataset{
			Name:     ds,
			Default:  ds == r.defName,
			Replicas: r.ring.Replicas(ds),
		})
	}
	writeJSON(w, http.StatusOK, out)
}
