package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests without trying the node.
	BreakerOpen
	// BreakerHalfOpen lets a bounded number of probe requests through
	// to test whether the node recovered.
	BreakerHalfOpen
)

// String names the state for logs and the /v1/healthz payload.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerPolicy tunes a per-node circuit breaker. The zero value gets
// production defaults via withDefaults.
type BreakerPolicy struct {
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before letting
	// half-open probes through (default 2s).
	Cooldown time.Duration
	// HalfOpenProbes bounds the concurrent probe requests in the
	// half-open state (default 1).
	HalfOpenProbes int
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	if p.HalfOpenProbes <= 0 {
		p.HalfOpenProbes = 1
	}
	return p
}

// Breaker is one node's circuit breaker: closed until
// FailureThreshold consecutive failures, then open (requests rejected
// without touching the node) for Cooldown, then half-open — a bounded
// number of probes go through, and the first probe outcome decides:
// success closes the breaker, failure re-opens it for another
// cooldown. Safe for concurrent use; time comes from the injected
// Clock so tests drive transitions without sleeping.
type Breaker struct {
	policy BreakerPolicy
	clock  Clock

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probes      int // in-flight half-open probes
}

// NewBreaker builds a closed breaker under the policy.
func NewBreaker(policy BreakerPolicy, clock Clock) *Breaker {
	if clock == nil {
		clock = RealClock{}
	}
	return &Breaker{policy: policy.withDefaults(), clock: clock}
}

// Allow reports whether a request may be sent to the node now; an open
// breaker whose cooldown has elapsed transitions to half-open and
// admits up to HalfOpenProbes callers. Every admitted caller must
// report the outcome via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.policy.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 1
		return true
	default: // half-open
		if b.probes >= b.policy.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Success records a successful request, closing a half-open breaker
// and resetting the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probes--
	}
	b.state = BreakerClosed
	b.consecFails = 0
}

// Failure records a failed request: the threshold'th consecutive
// failure opens a closed breaker, and any half-open probe failure
// re-opens immediately for a fresh cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probes = 0
		b.state = BreakerOpen
		b.openedAt = b.clock.Now()
		b.consecFails = b.policy.FailureThreshold
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.policy.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.clock.Now()
		}
	default: // already open: late failures don't extend the cooldown
	}
}

// State returns the breaker's current position, applying the
// open → half-open transition if the cooldown has elapsed (so a
// metrics read and Allow agree).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock.Now().Sub(b.openedAt) >= b.policy.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}
