package cluster

import (
	"math/rand"
	"time"
)

// BackoffPolicy shapes the delay between failover retries: capped
// exponential growth with multiplicative jitter. The zero value gets
// production defaults via withDefaults.
type BackoffPolicy struct {
	// Base is the pre-jitter delay of the first retry (default 25ms).
	Base time.Duration
	// Max caps the pre-jitter delay (default 1s).
	Max time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of the delay randomized around its nominal
	// value, in [0, 1): delay*(1-Jitter) .. delay*(1+Jitter)
	// (default 0.2). Jitter decorrelates the retry storms of many
	// clients hitting the same dead node.
	Jitter float64
}

func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Base <= 0 {
		p.Base = 25 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	return p
}

// Delay returns the sleep before retry attempt (attempt 0 = the first
// retry, i.e. the delay between the first and second tries). rng makes
// the jitter deterministic under a seeded source; a nil rng disables
// jitter. The result is always within
// [Base*(1-Jitter), Max*(1+Jitter)].
func (p BackoffPolicy) Delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt && d < float64(p.Max); i++ {
		d *= p.Multiplier
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if rng != nil && p.Jitter > 0 {
		// Uniform in [1-Jitter, 1+Jitter).
		d *= 1 - p.Jitter + 2*p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}
