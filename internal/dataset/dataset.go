// Package dataset provides deterministic synthetic generators for the
// four data sets of the paper's evaluation (Table I): an American
// Community Survey extract on disability statistics, the 2019 Stack
// Overflow developer survey, flight statistics, and polls from the 2020
// democratic primaries.
//
// The real data sets (Kaggle flight delays, ACS extracts, ...) are not
// redistributable inside this repository, so each generator synthesizes a
// relation with the same dimension/target structure, comparable column
// cardinalities (scaled where needed to keep experiments laptop-sized)
// and planted domain effects — winter delay spikes, age-dependent
// impairment prevalence, seniority-dependent job satisfaction — so that
// summarization finds the same kinds of facts the paper reports. All
// generators are deterministic in (rows, seed).
//
// These relations are the inputs the generate → evaluate → solve →
// serve flow starts from; the serving daemon mounts any subset of them
// as named datasets (cmd/serve -datasets).
package dataset

import (
	"math"
	"math/rand"

	"cicero/internal/relation"
)

// Named couples a generated relation with its Table I metadata.
type Named struct {
	Rel *relation.Relation
	// ShortCode is the scenario prefix used in the paper's plots
	// (F for flights, A for ACS, S for Stack Overflow, P for primaries).
	ShortCode string
}

// DefaultRows holds the default row counts per data set, scaled down from
// the paper's multi-hundred-MB originals to keep a full experimental
// sweep in the minutes range while preserving relative sizes.
var DefaultRows = map[string]int{
	"acs":           3000,
	"stackoverflow": 9000,
	"flights":       12000,
	"primaries":     2500,
	"housing":       6000,
}

// boroughs and ageGroups mirror the ACS study of Figure 6 / Table II.
var (
	boroughs  = []string{"Brooklyn", "Manhattan", "Queens", "Staten Island", "Bronx"}
	ageGroups = []string{"Teenagers", "Adults", "Elders"}
	genders   = []string{"Female", "Male"}
)

// acsTargets lists the six disability-prevalence target columns
// (per-1000 rates), matching ACS NY's "#Targets 6" in Table I.
var acsTargets = []string{
	"hearing", "visual", "cognitive", "ambulatory", "selfcare", "independent_living",
}

// ACS generates the ACS NY disability extract: 3 dimensions and 6
// targets. Prevalence rates are planted to be strongly age-dependent
// with borough-level variation, reproducing the structure behind the
// paper's best speech ("About 80 out of 1000 elder persons identify as
// visually impaired. It is 17 for adults. It is 3 for teenagers...").
func ACS(rows int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("acs", relation.Schema{
		Dimensions: []string{"borough", "age_group", "gender"},
		Targets:    acsTargets,
	})
	// Base prevalence per age group (per 1000), per target.
	base := map[string][3]float64{ // teen, adult, elder
		"hearing":            {2, 12, 60},
		"visual":             {3, 17, 80},
		"cognitive":          {25, 30, 45},
		"ambulatory":         {4, 35, 150},
		"selfcare":           {3, 10, 50},
		"independent_living": {5, 25, 110},
	}
	// Borough multipliers add geographic variation.
	boroughMult := map[string]float64{
		"Brooklyn": 1.1, "Manhattan": 0.85, "Queens": 1.0,
		"Staten Island": 0.95, "Bronx": 1.25,
	}
	targets := make([]float64, len(acsTargets))
	for i := 0; i < rows; i++ {
		bo := boroughs[rng.Intn(len(boroughs))]
		ag := rng.Intn(len(ageGroups))
		ge := genders[rng.Intn(len(genders))]
		for t, name := range acsTargets {
			mean := base[name][ag] * boroughMult[bo]
			if ge == "Female" && name == "ambulatory" {
				mean *= 1.12 // mild planted gender effect
			}
			v := mean + rng.NormFloat64()*mean*0.15
			if v < 0 {
				v = 0
			}
			targets[t] = v
		}
		b.MustAddRow([]string{bo, ageGroups[ag], ge}, targets)
	}
	return b.Freeze()
}

// soCountries etc. define Stack Overflow dimension domains; the original
// has 7 dimensions and 6 targets over a 197 MB CSV.
var (
	soCountries = []string{
		"United States", "India", "Germany", "United Kingdom", "Canada",
		"France", "Brazil", "Poland", "Australia", "Netherlands",
		"Spain", "Italy", "Russia", "Sweden", "Ukraine", "Switzerland",
		"Israel", "Mexico", "China", "Japan",
	}
	soDevTypes = []string{
		"Back-end", "Front-end", "Full-stack", "Mobile", "DevOps",
		"Data science", "Embedded", "QA", "Engineering manager", "Student",
	}
	soEducation = []string{
		"Less than bachelor", "Bachelor", "Master", "Doctoral", "Bootcamp", "Self-taught",
	}
	soEmployment = []string{"Full-time", "Part-time", "Freelance", "Unemployed", "Retired"}
	soAgeRanges  = []string{"<20", "20-24", "25-29", "30-34", "35-44", "45-54", "55+"}
	soOrgSizes   = []string{"1", "2-9", "10-19", "20-99", "100-499", "500-999", "1000-4999", "5000+"}
)

// soTargets lists the Stack Overflow target columns; the Figure 3
// scenarios use competence (S-C), optimism (S-O) and job satisfaction
// (S-S), all on 0-10 style scales.
var soTargets = []string{
	"competence", "optimism", "job_satisfaction", "career_satisfaction", "salary_k", "weekly_hours",
}

// StackOverflow generates the developer-survey relation: 7 dimensions
// and 6 targets. Effects are planted so that seniority raises perceived
// competence, students are most optimistic, and mid-size organizations
// have a satisfaction dip, giving the optimizer meaningful facts to find.
func StackOverflow(rows int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("stackoverflow", relation.Schema{
		Dimensions: []string{"country", "dev_type", "education", "employment", "gender", "age_range", "org_size"},
		Targets:    soTargets,
	})
	targets := make([]float64, len(soTargets))
	clamp := func(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }
	for i := 0; i < rows; i++ {
		co := rng.Intn(len(soCountries))
		dt := rng.Intn(len(soDevTypes))
		ed := rng.Intn(len(soEducation))
		em := rng.Intn(len(soEmployment))
		ge := genders[rng.Intn(len(genders))]
		ag := rng.Intn(len(soAgeRanges))
		os := rng.Intn(len(soOrgSizes))

		seniority := float64(ag) / float64(len(soAgeRanges)-1)
		competence := clamp(5.2+3*seniority+rng.NormFloat64()*1.2, 0, 10)
		optimism := clamp(7.5-2.5*seniority+rng.NormFloat64()*1.5, 0, 10)
		if soDevTypes[dt] == "Student" {
			optimism = clamp(optimism+1.2, 0, 10)
		}
		jobSat := clamp(6+1.5*seniority+rng.NormFloat64()*1.8, 0, 10)
		if os >= 3 && os <= 5 {
			jobSat = clamp(jobSat-1.0, 0, 10) // mid-size dip
		}
		careerSat := clamp(jobSat+rng.NormFloat64()*0.8, 0, 10)
		salary := 30 + 90*seniority + float64(9-dt)*4 + rng.NormFloat64()*15
		if co < 5 {
			salary *= 1.4 // high-income countries
		}
		hours := clamp(40+rng.NormFloat64()*6-3*float64(em), 5, 80)

		targets[0], targets[1], targets[2] = competence, optimism, jobSat
		targets[3], targets[4], targets[5] = careerSat, math.Max(5, salary), hours
		b.MustAddRow([]string{
			soCountries[co], soDevTypes[dt], soEducation[ed],
			soEmployment[em], ge, soAgeRanges[ag], soOrgSizes[os],
		}, targets)
	}
	return b.Freeze()
}

// flight dimension domains; the Kaggle original has 6 dimensions.
var (
	flAirlines = []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9"}
	flRegions  = []string{
		"Northeast", "Southeast", "Midwest", "South", "West",
		"Northwest", "Mountain", "Pacific", "Alaska",
	}
	flSeasons = []string{"Winter", "Spring", "Summer", "Fall"}
	flMonths  = []string{
		"January", "February", "March", "April", "May", "June",
		"July", "August", "September", "October", "November", "December",
	}
	flDaysOfWeek = []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	flTimesOfDay = []string{"Morning", "Afternoon", "Evening", "Night"}
)

// monthSeason maps month index to season index (meteorological).
func monthSeason(m int) int {
	switch {
	case m == 11 || m <= 1: // Dec, Jan, Feb
		return 0
	case m <= 4:
		return 1
	case m <= 7:
		return 2
	default:
		return 3
	}
}

// Flights generates the flight-statistics relation with 6 dimensions and
// two targets: delay minutes and cancellation probability (0/1 outcomes
// whose subset averages are probabilities). The paper's public deployment
// exposed cancellation probability; Figure 3 additionally evaluates delay
// (F-D), so we carry both targets in one relation. Planted effects match
// the speeches the paper cites: a significant cancellation increase in
// February, reduced probability in the West, and winter delay spikes.
func Flights(rows int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("flights", relation.Schema{
		Dimensions: []string{"airline", "origin_region", "season", "month", "day_of_week", "time_of_day"},
		Targets:    []string{"cancelled", "delay"},
	})
	for i := 0; i < rows; i++ {
		al := rng.Intn(len(flAirlines))
		re := rng.Intn(len(flRegions))
		mo := rng.Intn(len(flMonths))
		se := monthSeason(mo)
		dw := rng.Intn(len(flDaysOfWeek))
		td := rng.Intn(len(flTimesOfDay))

		cancelProb := 0.06
		if flMonths[mo] == "February" {
			cancelProb = 0.18
		} else if se == 0 {
			cancelProb = 0.11
		}
		if flRegions[re] == "West" || flRegions[re] == "Pacific" {
			cancelProb *= 0.45
		}
		if flAirlines[al] == "NK" {
			cancelProb *= 1.5
		}
		cancelled := 0.0
		if rng.Float64() < cancelProb {
			cancelled = 1
		}

		delay := 8 + rng.ExpFloat64()*6
		if se == 0 {
			delay += 12
		}
		if flTimesOfDay[td] == "Evening" {
			delay += 6 // rolling delays accumulate during the day
		}
		if flRegions[re] == "Northeast" && se == 0 {
			delay += 8
		}
		if cancelled == 1 {
			delay = 0
		}

		b.MustAddRow([]string{
			flAirlines[al], flRegions[re], flSeasons[se],
			flMonths[mo], flDaysOfWeek[dw], flTimesOfDay[td],
		}, []float64{cancelled, delay})
	}
	return b.Freeze()
}

// primaries dimension domains: 5 dimensions, 1 target (Table I).
var (
	prCandidates = []string{
		"Biden", "Sanders", "Warren", "Buttigieg", "Harris",
		"Klobuchar", "Bloomberg", "Yang",
	}
	prStates = []string{
		"Iowa", "New Hampshire", "Nevada", "South Carolina",
		"California", "Texas", "Virginia", "Massachusetts",
		"Minnesota", "Colorado", "Michigan", "Florida",
	}
	prMonths    = []string{"October", "November", "December", "January", "February", "March"}
	prPollTypes = []string{"Live phone", "Online", "IVR", "Mixed"}
	prPopations = []string{"Likely voters", "Registered voters", "Adults"}
)

// Primaries generates the democratic-primaries polling relation: one
// poll-result row per (candidate, state, month, methodology, population)
// draw with the target being the poll percentage. Candidate strengths
// shift over months to simulate the race dynamics.
func Primaries(rows int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("primaries", relation.Schema{
		Dimensions: []string{"candidate", "state", "month", "poll_type", "population"},
		Targets:    []string{"pct"},
	})
	baseSupport := []float64{27, 22, 14, 9, 7, 4, 8, 3}
	trend := []float64{1.5, 0.5, -1.2, 0.4, -1.0, 0.2, 1.0, -0.3} // per month
	for i := 0; i < rows; i++ {
		ca := rng.Intn(len(prCandidates))
		st := rng.Intn(len(prStates))
		mo := rng.Intn(len(prMonths))
		pt := rng.Intn(len(prPollTypes))
		po := rng.Intn(len(prPopations))

		pct := baseSupport[ca] + trend[ca]*float64(mo) + rng.NormFloat64()*3.5
		if prCandidates[ca] == "Sanders" && prStates[st] == "New Hampshire" {
			pct += 6
		}
		if prCandidates[ca] == "Biden" && prStates[st] == "South Carolina" {
			pct += 10
		}
		if pct < 0 {
			pct = 0
		}
		b.MustAddRow([]string{
			prCandidates[ca], prStates[st], prMonths[mo],
			prPollTypes[pt], prPopations[po],
		}, []float64{pct})
	}
	return b.Freeze()
}

// housing dimension domains. The generator mirrors the shape of public
// observed-rent-index extracts (Zillow ZORI style): one rent observation
// per (city, bedrooms, month) draw over an 18-month window. Like the
// other generators it is synthesized rather than redistributed, with
// planted effects: coastal metros rent highest, rents rise month over
// month with a summer bump, and city populations are stable — which is
// what makes the dataset useful for trend / time-window questions and
// "population over 500 thousand" entity constraints.
var (
	hoCities = []string{
		"New York", "Los Angeles", "Chicago", "Houston", "Phoenix",
		"San Antonio", "Dallas", "Austin", "San Francisco", "Seattle",
		"Denver", "Boston", "Portland", "Atlanta", "Miami",
		"Madison", "Boise", "Asheville",
	}
	hoStates = []string{
		"New York", "California", "Illinois", "Texas", "Arizona",
		"Texas", "Texas", "Texas", "California", "Washington",
		"Colorado", "Massachusetts", "Oregon", "Georgia", "Florida",
		"Wisconsin", "Idaho", "North Carolina",
	}
	hoPops = []float64{
		8_400_000, 3_900_000, 2_700_000, 2_300_000, 1_600_000,
		1_500_000, 1_300_000, 960_000, 870_000, 740_000,
		715_000, 675_000, 650_000, 490_000, 440_000,
		270_000, 235_000, 95_000,
	}
	hoBaseRent = []float64{
		3400, 2700, 1700, 1400, 1500,
		1250, 1600, 1800, 3300, 2300,
		1900, 2900, 1750, 1550, 2200,
		1300, 1200, 1150,
	}
	hoBedrooms = []string{"Studio", "One bedroom", "Two bedroom", "Three bedroom"}
	hoBedMult  = []float64{0.65, 0.8, 1.0, 1.3}
	hoMonths   = []string{
		"January 2023", "February 2023", "March 2023", "April 2023",
		"May 2023", "June 2023", "July 2023", "August 2023",
		"September 2023", "October 2023", "November 2023", "December 2023",
		"January 2024", "February 2024", "March 2024", "April 2024",
		"May 2024", "June 2024",
	}
)

// Housing generates the rent-index relation: 4 dimensions (city, state,
// bedrooms, month) and two targets (monthly rent in dollars, city
// population). It is the time-series tenant: the month dimension spans
// 18 consecutive "Month Year" periods and rents carry a planted upward
// trend (~0.8% per month plus a summer premium), so trend questions
// have real signal. Population is constant per city up to 1% noise, so
// entity constraints like "over 500 thousand" select a stable city set.
func Housing(rows int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	b := relation.NewBuilder("housing", relation.Schema{
		Dimensions: []string{"city", "state", "bedrooms", "month"},
		Targets:    []string{"rent", "population"},
	})
	for i := 0; i < rows; i++ {
		ci := rng.Intn(len(hoCities))
		be := rng.Intn(len(hoBedrooms))
		mo := rng.Intn(len(hoMonths))

		rent := hoBaseRent[ci] * hoBedMult[be] * (1 + 0.008*float64(mo))
		if m := hoMonths[mo]; len(m) > 4 && (m[:4] == "June" || m[:4] == "July" || m[:6] == "August") {
			rent *= 1.03
		}
		rent *= 1 + rng.NormFloat64()*0.06
		if rent < 300 {
			rent = 300
		}
		pop := hoPops[ci] * (1 + rng.NormFloat64()*0.01)

		b.MustAddRow([]string{
			hoCities[ci], hoStates[ci], hoBedrooms[be], hoMonths[mo],
		}, []float64{rent, pop})
	}
	return b.Freeze()
}

// ByName generates a data set by its canonical name using DefaultRows and
// the given seed. It returns nil for unknown names.
func ByName(name string, seed int64) *relation.Relation {
	rows := DefaultRows[name]
	switch name {
	case "acs":
		return ACS(rows, seed)
	case "stackoverflow":
		return StackOverflow(rows, seed)
	case "flights":
		return Flights(rows, seed)
	case "primaries":
		return Primaries(rows, seed)
	case "housing":
		return Housing(rows, seed)
	default:
		return nil
	}
}

// All generates the four paper data sets in Table I order.
func All(seed int64) []Named {
	return []Named{
		{Rel: ACS(DefaultRows["acs"], seed), ShortCode: "A"},
		{Rel: StackOverflow(DefaultRows["stackoverflow"], seed), ShortCode: "S"},
		{Rel: Flights(DefaultRows["flights"], seed), ShortCode: "F"},
		{Rel: Primaries(DefaultRows["primaries"], seed), ShortCode: "P"},
	}
}
