package dataset

import (
	"testing"

	"cicero/internal/relation"
)

func TestTable1Structure(t *testing.T) {
	// Dimension and target counts must match Table I of the paper.
	cases := []struct {
		name     string
		rel      *relation.Relation
		dims     int
		targets  int
		minCards int // every dimension has at least this many values
	}{
		{"acs", ACS(500, 1), 3, 6, 2},
		{"stackoverflow", StackOverflow(2000, 1), 7, 6, 2},
		{"flights", Flights(2000, 1), 6, 2, 4},
		{"primaries", Primaries(800, 1), 5, 1, 3},
	}
	for _, c := range cases {
		if got := c.rel.NumDims(); got != c.dims {
			t.Errorf("%s dims = %d, want %d", c.name, got, c.dims)
		}
		if got := c.rel.NumTargets(); got != c.targets {
			t.Errorf("%s targets = %d, want %d", c.name, got, c.targets)
		}
		for d := 0; d < c.rel.NumDims(); d++ {
			if card := c.rel.Dim(d).Cardinality(); card < c.minCards {
				t.Errorf("%s dim %s cardinality %d < %d",
					c.name, c.rel.Schema().Dimensions[d], card, c.minCards)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Flights(1000, 42)
	b := Flights(1000, 42)
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < a.NumRows(); i++ {
		if a.Target(1).At(i) != b.Target(1).At(i) {
			t.Fatalf("row %d differs between identical seeds", i)
		}
	}
	c := Flights(1000, 43)
	same := true
	for i := 0; i < a.NumRows() && same; i++ {
		same = a.Target(1).At(i) == c.Target(1).At(i)
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// TestPlantedEffectsFlights verifies the domain structure the paper's
// example speeches rely on: February cancellations spike, the West is
// calmer, winter delays are elevated.
func TestPlantedEffectsFlights(t *testing.T) {
	rel := Flights(20000, 7)
	view := rel.FullView()
	cancelled := rel.Schema().TargetIndex("cancelled")
	delay := rel.Schema().TargetIndex("delay")

	overallCancel := view.Stats(cancelled).Mean()
	feb, err := rel.PredicateByName("month", "February")
	if err != nil {
		t.Fatal(err)
	}
	febCancel := view.Select([]relation.Predicate{feb}).Stats(cancelled).Mean()
	if febCancel < overallCancel*1.5 {
		t.Errorf("February cancel rate %.3f not elevated vs overall %.3f", febCancel, overallCancel)
	}

	west, _ := rel.PredicateByName("origin_region", "West")
	westCancel := view.Select([]relation.Predicate{west}).Stats(cancelled).Mean()
	if westCancel > overallCancel {
		t.Errorf("West cancel rate %.3f not reduced vs overall %.3f", westCancel, overallCancel)
	}

	winter, _ := rel.PredicateByName("season", "Winter")
	summer, _ := rel.PredicateByName("season", "Summer")
	wd := view.Select([]relation.Predicate{winter}).Stats(delay).Mean()
	sd := view.Select([]relation.Predicate{summer}).Stats(delay).Mean()
	if wd <= sd {
		t.Errorf("winter delay %.2f not above summer %.2f", wd, sd)
	}
}

// TestPlantedEffectsACS verifies the age gradient behind the paper's
// best speech for visual impairment (elders ≫ adults ≫ teenagers).
func TestPlantedEffectsACS(t *testing.T) {
	rel := ACS(6000, 7)
	view := rel.FullView()
	visual := rel.Schema().TargetIndex("visual")
	means := map[string]float64{}
	for _, ag := range []string{"Teenagers", "Adults", "Elders"} {
		p, err := rel.PredicateByName("age_group", ag)
		if err != nil {
			t.Fatal(err)
		}
		means[ag] = view.Select([]relation.Predicate{p}).Stats(visual).Mean()
	}
	if !(means["Elders"] > means["Adults"] && means["Adults"] > means["Teenagers"]) {
		t.Errorf("age gradient broken: %+v", means)
	}
	// Rough magnitudes from Table II: elders ≈ 80, adults ≈ 17, teens ≈ 3.
	if means["Elders"] < 50 || means["Elders"] > 120 {
		t.Errorf("elder visual prevalence %.1f outside plausible range", means["Elders"])
	}
}

// TestPlantedEffectsStackOverflow verifies seniority raises competence
// and lowers optimism, the effects behind the S-C and S-O scenarios.
func TestPlantedEffectsStackOverflow(t *testing.T) {
	rel := StackOverflow(15000, 7)
	view := rel.FullView()
	comp := rel.Schema().TargetIndex("competence")
	opt := rel.Schema().TargetIndex("optimism")
	young, _ := rel.PredicateByName("age_range", "<20")
	old, _ := rel.PredicateByName("age_range", "55+")
	vy := view.Select([]relation.Predicate{young})
	vo := view.Select([]relation.Predicate{old})
	if vy.Stats(comp).Mean() >= vo.Stats(comp).Mean() {
		t.Error("competence should rise with age")
	}
	if vy.Stats(opt).Mean() <= vo.Stats(opt).Mean() {
		t.Error("optimism should fall with age")
	}
}

// TestPlantedEffectsPrimaries verifies candidate-state interactions.
func TestPlantedEffectsPrimaries(t *testing.T) {
	rel := Primaries(12000, 7)
	view := rel.FullView()
	biden, _ := rel.PredicateByName("candidate", "Biden")
	sc, _ := rel.PredicateByName("state", "South Carolina")
	ia, _ := rel.PredicateByName("state", "Iowa")
	bidenSC := view.Select([]relation.Predicate{biden, sc}).Stats(0).Mean()
	bidenIA := view.Select([]relation.Predicate{biden, ia}).Stats(0).Mean()
	if bidenSC <= bidenIA {
		t.Errorf("Biden SC %.1f should exceed IA %.1f", bidenSC, bidenIA)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"acs", "stackoverflow", "flights", "primaries"} {
		rel := ByName(name, 1)
		if rel == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if rel.NumRows() != DefaultRows[name] {
			t.Errorf("%s rows = %d, want %d", name, rel.NumRows(), DefaultRows[name])
		}
	}
	if ByName("nope", 1) != nil {
		t.Error("unknown name should return nil")
	}
}

func TestAll(t *testing.T) {
	all := All(1)
	if len(all) != 4 {
		t.Fatalf("All returned %d data sets", len(all))
	}
	codes := map[string]bool{}
	for _, n := range all {
		codes[n.ShortCode] = true
		if n.Rel.NumRows() == 0 {
			t.Errorf("%s is empty", n.Rel.Name())
		}
	}
	for _, c := range []string{"A", "S", "F", "P"} {
		if !codes[c] {
			t.Errorf("missing scenario code %s", c)
		}
	}
}

func TestSeasonConsistency(t *testing.T) {
	// month and season dimensions must agree for every flights row.
	rel := Flights(5000, 3)
	seasonOf := map[string]string{
		"December": "Winter", "January": "Winter", "February": "Winter",
		"March": "Spring", "April": "Spring", "May": "Spring",
		"June": "Summer", "July": "Summer", "August": "Summer",
		"September": "Fall", "October": "Fall", "November": "Fall",
	}
	mi := rel.Schema().DimIndex("month")
	si := rel.Schema().DimIndex("season")
	for row := 0; row < rel.NumRows(); row++ {
		m := rel.Dim(mi).Value(rel.Dim(mi).CodeAt(row))
		s := rel.Dim(si).Value(rel.Dim(si).CodeAt(row))
		if seasonOf[m] != s {
			t.Fatalf("row %d: month %s has season %s, want %s", row, m, s, seasonOf[m])
		}
	}
}

// TestHousingPlantedEffects verifies the time-series tenant's structure:
// 18 chronological month periods, a rising rent trend, stable per-city
// populations, coastal metros renting highest, and the Texas subset the
// follow-up examples lean on.
func TestHousingPlantedEffects(t *testing.T) {
	rel := Housing(12000, 5)
	if rel.Name() != "housing" {
		t.Fatalf("name = %q", rel.Name())
	}
	if got := rel.NumDims(); got != 4 {
		t.Fatalf("dims = %d, want 4", got)
	}
	if got := rel.NumTargets(); got != 2 {
		t.Fatalf("targets = %d, want 2", got)
	}
	mi := rel.Schema().DimIndex("month")
	if card := rel.Dim(mi).Cardinality(); card != 18 {
		t.Fatalf("month cardinality = %d, want 18", card)
	}

	view := rel.FullView()
	rent := rel.Schema().TargetIndex("rent")
	pop := rel.Schema().TargetIndex("population")

	first, _ := rel.PredicateByName("month", "January 2023")
	last, _ := rel.PredicateByName("month", "June 2024")
	firstMean := view.Select([]relation.Predicate{first}).Stats(rent).Mean()
	lastMean := view.Select([]relation.Predicate{last}).Stats(rent).Mean()
	if lastMean <= firstMean {
		t.Errorf("rent trend not rising: %.0f -> %.0f", firstMean, lastMean)
	}

	ny, _ := rel.PredicateByName("city", "New York")
	bo, _ := rel.PredicateByName("city", "Boise")
	nyRent := view.Select([]relation.Predicate{ny}).Stats(rent).Mean()
	boRent := view.Select([]relation.Predicate{bo}).Stats(rent).Mean()
	if nyRent <= boRent {
		t.Errorf("New York rent %.0f not above Boise %.0f", nyRent, boRent)
	}
	nyPop := view.Select([]relation.Predicate{ny}).Stats(pop).Mean()
	if nyPop < 8_000_000 || nyPop > 8_800_000 {
		t.Errorf("New York population %.0f out of range", nyPop)
	}

	tx, err := rel.PredicateByName("state", "Texas")
	if err != nil {
		t.Fatal(err)
	}
	txRows := view.Select([]relation.Predicate{tx}).NumRows()
	if txRows < 1000 {
		t.Errorf("Texas subset has only %d rows", txRows)
	}

	if ByName("housing", 5) == nil {
		t.Error("ByName does not know housing")
	}
	if DefaultRows["housing"] == 0 {
		t.Error("DefaultRows missing housing")
	}
}
