package load

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/httpserve"
	"cicero/internal/pipeline"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// TestRunFreshness drives the full incremental-ingestion loop — delta
// synthesis, dirty re-solve, zero-downtime publish, post-publish
// verification under reader traffic — against a live in-process
// server. Any stale post-publish answer fails the run.
func TestRunFreshness(t *testing.T) {
	rel := dataset.Flights(1500, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"cancelled"}
	cfg.Dimensions = []string{"season", "airline"}
	cfg.MaxQueryLen = 1
	cfg.Prior = engine.PriorZero
	popts := pipeline.Options{
		Solver:   "G-O",
		Template: engine.Template{TargetPhrase: "cancellation probability", Percent: true},
	}
	ctx := context.Background()
	base, _, err := pipeline.Run(ctx, rel, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}

	ex := voice.NewExtractor(rel, voice.DefaultSamples("flights"), 2)
	a := serve.New(rel, base, ex, serve.Options{})
	reg := serve.NewRegistry()
	if err := reg.Add("flights", a); err != nil {
		t.Fatal(err)
	}
	srv := httpserve.NewMulti(reg, "flights", httpserve.Options{CacheEntries: 128})

	texts := Generate(rel, Options{
		Requests: 60, Distinct: 12, Seed: 3,
		Mix:           Mix{Summary: 1},
		TargetPhrases: voice.SpokenTargetPhrases(voice.DefaultSamples("flights")),
	})
	res, err := RunFreshness(ctx, srv, "flights", a, rel, cfg, popts, base, FreshnessOptions{
		Rounds: 4, Ops: 8, Seed: 11, Texts: texts, Readers: 2, ChecksPerRound: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.StaleAnswers != 0 {
		t.Fatalf("%d stale post-publish answers of %d checks:\n%s", res.StaleAnswers, res.Checks, res.Summary())
	}
	if res.Checks != 4*5 {
		t.Fatalf("checks = %d, want 20", res.Checks)
	}
	if got := srv.Stats().Store.Swaps; got != 4 {
		t.Fatalf("published %d generations, want 4", got)
	}
	if res.Retained == 0 {
		t.Fatal("no speeches retained: the incremental path degraded to full rebuilds")
	}
	if res.Solved >= res.TotalProblems*res.Rounds {
		t.Fatalf("solved %d problems over %d rounds of a %d-problem space: no incrementality",
			res.Solved, res.Rounds, res.TotalProblems)
	}
	if res.ReaderAnswers == 0 {
		t.Fatal("reader traffic never overlapped the publish loop")
	}
	if res.ReaderErrors != 0 {
		t.Fatalf("%d reader errors", res.ReaderErrors)
	}

	path := filepath.Join(t.TempDir(), "BENCH_freshness.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back FreshnessResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if back.Benchmark != "freshness" || back.Rounds != 4 {
		t.Fatalf("artifact round trip lost fields: %+v", back)
	}
}

// TestRunFreshnessNeedsTexts: a freshness run without a workload would
// verify nothing, so it must be refused, not silently pass.
func TestRunFreshnessNeedsTexts(t *testing.T) {
	rel := dataset.Flights(200, 1)
	if _, err := RunFreshness(context.Background(), nil, "flights", nil, rel,
		engine.DefaultConfig(rel), pipeline.Options{}, nil, FreshnessOptions{}); err == nil {
		t.Fatal("RunFreshness without texts did not error")
	}
}
