package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cicero/internal/stats"
)

// This file extends the harness to drive a cluster through its router:
// the same zipf workload, plus the observations single-node runs don't
// need — which node served each answer (per-node balance), whether it
// was a stale degradation answer, and an error timeline from which the
// failover gap after a node loss is computed. Results marshal to the
// BENCH_cluster.json artifact CI archives.

// ClusterOptions shapes a cluster replay.
type ClusterOptions struct {
	// Workers is the concurrent client count (default 8).
	Workers int
	// RatePerSec paces the aggregate request rate so a run spans real
	// time — long enough to kill a node in the middle of it (0 replays
	// as fast as possible).
	RatePerSec float64
	// Bucket is the error-timeline bucket width (default 250ms).
	Bucket time.Duration
}

// ErrorBucket is one slice of the run's error timeline.
type ErrorBucket struct {
	// StartNS is the bucket's start offset from the run start.
	StartNS  time.Duration `json:"start_ns"`
	Requests int           `json:"requests"`
	Errors   int           `json:"errors"`
	Stale    int           `json:"stale"`
}

// ClusterResult is the outcome of one cluster load run, JSON-shaped
// for BENCH_cluster.json. It embeds the single-target Result (aggregate
// latency percentiles, throughput, error count) and adds the
// cluster-level split.
type ClusterResult struct {
	Result
	// RatePerSec echoes the pacing (0 = unpaced).
	RatePerSec float64 `json:"rate_per_sec"`
	// PerNode counts answers by the node that served them (the
	// router's X-Cicero-Node attribution).
	PerNode map[string]int `json:"per_node"`
	// Balance is min/max over the per-node counts — 1.0 is a perfectly
	// balanced cluster, 0 means some node served nothing (e.g. it was
	// killed mid-run).
	Balance float64 `json:"node_balance"`
	// Stale counts answers served from the router's stale cache (all
	// replicas of the dataset were down at that moment).
	Stale int `json:"stale_served"`
	// ErrorBudget is Errors over Requests.
	ErrorBudget float64 `json:"error_budget"`
	// FailoverGapNS spans the first to the last client-visible error —
	// the window a node loss was observable before retries, breakers,
	// and health checks routed around it. 0 when no request failed.
	FailoverGapNS time.Duration `json:"failover_gap_ns"`
	// TailErrors counts errors in the final quarter of the run; after
	// failover settles it must be 0.
	TailErrors int `json:"tail_errors"`
	// Timeline is the bucketed request/error/stale history.
	Timeline []ErrorBucket `json:"timeline"`
}

// RunCluster replays texts against one dataset through a cluster
// router at baseURL. Per-request errors are counted, never fatal; see
// ClusterOptions for pacing. The context cancels the run early (un-sent
// requests count as errors, like Run).
func RunCluster(ctx context.Context, client *http.Client, baseURL, dataset string, texts []string, opts ClusterOptions) ClusterResult {
	workers := opts.Workers
	if workers < 1 {
		workers = 8
	}
	if workers > len(texts) && len(texts) > 0 {
		workers = len(texts)
	}
	bucket := opts.Bucket
	if bucket <= 0 {
		bucket = 250 * time.Millisecond
	}
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = workers
		client = &http.Client{Transport: tr}
	}
	url := strings.TrimRight(baseURL, "/") + "/v1/answer"
	if dataset != "" {
		url = strings.TrimRight(baseURL, "/") + "/v1/" + dataset + "/answer"
	}

	outcomes := make([]outcome, len(texts))
	for i := range outcomes {
		outcomes[i].err = true
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				begin := time.Since(start)
				outcomes[i] = answerOnce(ctx, client, url, texts[i])
				outcomes[i].begin = begin
			}
		}()
	}
feed:
	for i := range texts {
		if opts.RatePerSec > 0 {
			// Pace against the ideal schedule, not the previous send, so
			// a slow stretch doesn't permanently lower the rate.
			due := start.Add(time.Duration(float64(i) / opts.RatePerSec * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break feed
				}
			}
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	res := ClusterResult{
		Result: Result{
			Benchmark:  "cluster",
			Target:     baseURL,
			Dataset:    dataset,
			Requests:   len(texts),
			Workers:    workers,
			DurationNS: elapsed,
			ByKind:     map[string]int{},
		},
		RatePerSec: opts.RatePerSec,
		PerNode:    map[string]int{},
	}
	lats := make([]time.Duration, 0, len(texts))
	var sum time.Duration
	var firstErr, lastErr time.Duration = -1, -1
	tailStart := elapsed * 3 / 4
	buckets := int(elapsed/bucket) + 1
	res.Timeline = make([]ErrorBucket, buckets)
	for b := range res.Timeline {
		res.Timeline[b].StartNS = time.Duration(b) * bucket
	}
	for _, o := range outcomes {
		b := int(o.begin / bucket)
		if b >= buckets {
			b = buckets - 1
		}
		res.Timeline[b].Requests++
		if o.err {
			res.Errors++
			res.Timeline[b].Errors++
			if firstErr < 0 {
				firstErr = o.begin
			}
			if o.begin > lastErr {
				lastErr = o.begin
			}
			if o.begin >= tailStart {
				res.TailErrors++
			}
			continue
		}
		lats = append(lats, o.lat)
		sum += o.lat
		if o.lat > res.Latency.Max {
			res.Latency.Max = o.lat
		}
		if o.cached {
			res.Cached++
		}
		if o.shared {
			res.Shared++
		}
		if o.stale {
			res.Stale++
			res.Timeline[b].Stale++
		}
		if o.node != "" {
			res.PerNode[o.node]++
		}
		res.ByKind[o.kind]++
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.Latency.P50 = stats.PercentileDuration(lats, 0.50)
		res.Latency.P95 = stats.PercentileDuration(lats, 0.95)
		res.Latency.P99 = stats.PercentileDuration(lats, 0.99)
		res.Latency.Mean = sum / time.Duration(len(lats))
		res.HitRate = float64(res.Cached) / float64(len(lats))
	}
	if elapsed > 0 {
		res.Throughput = float64(len(texts)-res.Errors) / elapsed.Seconds()
	}
	if res.Requests > 0 {
		res.ErrorBudget = float64(res.Errors) / float64(res.Requests)
	}
	if firstErr >= 0 {
		res.FailoverGapNS = lastErr - firstErr
	}
	if min, max := perNodeSpread(res.PerNode); max > 0 {
		res.Balance = float64(min) / float64(max)
	}
	return res
}

// perNodeSpread returns the smallest and largest per-node counts.
func perNodeSpread(perNode map[string]int) (min, max int) {
	first := true
	for _, c := range perNode {
		if first || c < min {
			min = c
		}
		if c > max {
			max = c
		}
		first = false
	}
	return min, max
}

// ClusterSummary renders a one-screen human report of a cluster run.
func (r ClusterResult) ClusterSummary() string {
	var b strings.Builder
	b.WriteString(r.Summary())
	nodes := make([]string, 0, len(r.PerNode))
	for n := range r.PerNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Fprintf(&b, "  node %-8s %d answers\n", n, r.PerNode[n])
	}
	fmt.Fprintf(&b, "balance %.2f  stale %d  error budget %.4f  failover gap %v  tail errors %d\n",
		r.Balance, r.Stale, r.ErrorBudget, r.FailoverGapNS.Round(time.Millisecond), r.TailErrors)
	return b.String()
}

// WriteFile writes the cluster result to path (BENCH_cluster.json).
func (r ClusterResult) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
