// Package load is the load-generation harness that measures the serve
// end of the generate → evaluate → solve → serve flow under realistic
// pressure: it synthesizes a mixed voice-query workload over a
// relation — summaries, extrema, comparisons, and repeat requests,
// with configurable zipf popularity skew — replays it against a
// server with N concurrent client workers (against one named dataset
// of a multi-dataset daemon via RunDataset), and reports client-side
// latency percentiles, throughput, and the answer-cache hit rate.
// Results marshal to the BENCH_serve.json artifact CI archives.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cicero/internal/httpserve"
	"cicero/internal/relation"
	"cicero/internal/stats"
)

// Mix weighs the request kinds of a synthesized workload. Zero-valued
// kinds are omitted; the zero Mix gets production-log-shaped defaults.
type Mix struct {
	Summary    int `json:"summary"`
	Extremum   int `json:"extremum"`
	Comparison int `json:"comparison"`
	Repeat     int `json:"repeat"`
}

func (m Mix) total() int { return m.Summary + m.Extremum + m.Comparison + m.Repeat }

// DefaultMix mirrors the deployment logs: summaries dominate, extrema
// and comparisons are the common unsupported kinds, repeats trail.
var DefaultMix = Mix{Summary: 70, Extremum: 12, Comparison: 10, Repeat: 8}

// Options shapes workload generation.
type Options struct {
	// Requests is the total number of requests (default 1000).
	Requests int
	// Distinct bounds the pool of distinct utterances per kind
	// (default 64): the knob that, with Zipf, controls how cacheable
	// the workload is.
	Distinct int
	// Zipf is the popularity skew exponent s > 1 of the rank
	// distribution over each pool (default 1.3); larger means a few
	// hot queries dominate.
	Zipf float64
	// Seed makes generation deterministic.
	Seed int64
	// Mix weighs the request kinds (default DefaultMix).
	Mix Mix
	// TargetPhrases lists spoken names per target column (e.g.
	// "cancellations" for "cancelled"); column names are used when
	// empty.
	TargetPhrases map[string][]string
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	if o.Distinct <= 0 {
		o.Distinct = 64
	}
	if o.Zipf <= 1 {
		o.Zipf = 1.3
	}
	if o.Mix.total() == 0 {
		o.Mix = DefaultMix
	}
	return o
}

// Generate synthesizes the request texts of a mixed workload over rel.
// Each kind draws from a bounded pool of distinct utterances with
// zipf-distributed popularity, so replays exercise both the cache-hit
// and the cache-miss path in controlled proportion.
func Generate(rel *relation.Relation, opts Options) []string {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	pools := [][]string{
		summaryPool(rel, rng, opts),
		extremumPool(rel, rng, opts),
		comparisonPool(rel, rng, opts),
		{"repeat that", "say that again please", "come again", "once more please"},
	}
	weights := []int{opts.Mix.Summary, opts.Mix.Extremum, opts.Mix.Comparison, opts.Mix.Repeat}
	// An empty pool contributes nothing; zero its weight so the sampler
	// never spins on it (a relation can be too small for some kind).
	total := 0
	zipfs := make([]*rand.Zipf, len(pools))
	for i, pool := range pools {
		if len(pool) == 0 {
			weights[i] = 0
		}
		if weights[i] > 0 {
			zipfs[i] = rand.NewZipf(rng, opts.Zipf, 1, uint64(len(pool)-1))
		}
		total += weights[i]
	}
	if total == 0 {
		return nil
	}

	texts := make([]string, 0, opts.Requests)
	for len(texts) < opts.Requests {
		k, pick := 0, rng.Intn(total)
		for pick >= weights[k] {
			pick -= weights[k]
			k++
		}
		texts = append(texts, pools[k][zipfs[k].Uint64()])
	}
	return texts
}

// spokenTarget names a target column the way a user would say it.
func spokenTarget(rng *rand.Rand, opts Options, target string) string {
	if phrases := opts.TargetPhrases[target]; len(phrases) > 0 {
		return phrases[rng.Intn(len(phrases))]
	}
	return strings.ReplaceAll(target, "_", " ")
}

// randomDimValue picks a random (dimension index, value).
func randomDimValue(rel *relation.Relation, rng *rand.Rand) (int, string) {
	for tries := 0; tries < 32; tries++ {
		d := rng.Intn(rel.NumDims())
		if vals := rel.Dim(d).Values(); len(vals) > 0 {
			return d, vals[rng.Intn(len(vals))]
		}
	}
	return -1, ""
}

func summaryPool(rel *relation.Relation, rng *rand.Rand, opts Options) []string {
	forms := []string{"%s in %s", "what is the %s for %s", "tell me the %s for %s"}
	pool := make([]string, 0, opts.Distinct)
	seen := map[string]bool{}
	targets := rel.Schema().Targets
	// The attempt cap ends generation early when the relation's distinct
	// utterance space is smaller than the requested pool.
	for i := 0; len(pool) < opts.Distinct && i < opts.Distinct*8; i++ {
		target := spokenTarget(rng, opts, targets[rng.Intn(len(targets))])
		var text string
		if rng.Intn(8) == 0 {
			text = fmt.Sprintf("what is the average %s", target)
		} else {
			_, v := randomDimValue(rel, rng)
			if v == "" {
				break
			}
			text = fmt.Sprintf(forms[rng.Intn(len(forms))], target, v)
		}
		if !seen[text] {
			seen[text] = true
			pool = append(pool, text)
		}
	}
	return pool
}

func extremumPool(rel *relation.Relation, rng *rand.Rand, opts Options) []string {
	words := []string{"highest", "lowest", "most", "fewest", "largest", "smallest"}
	pool := make([]string, 0, opts.Distinct)
	seen := map[string]bool{}
	targets := rel.Schema().Targets
	dims := rel.Schema().Dimensions
	for i := 0; len(pool) < opts.Distinct && i < opts.Distinct*8; i++ {
		target := spokenTarget(rng, opts, targets[rng.Intn(len(targets))])
		dim := strings.ReplaceAll(dims[rng.Intn(len(dims))], "_", " ")
		text := fmt.Sprintf("which %s has the %s %s", dim, words[rng.Intn(len(words))], target)
		if !seen[text] {
			seen[text] = true
			pool = append(pool, text)
		}
	}
	return pool
}

func comparisonPool(rel *relation.Relation, rng *rand.Rand, opts Options) []string {
	pool := make([]string, 0, opts.Distinct)
	seen := map[string]bool{}
	targets := rel.Schema().Targets
	for i := 0; len(pool) < opts.Distinct && i < opts.Distinct*8; i++ {
		target := spokenTarget(rng, opts, targets[rng.Intn(len(targets))])
		d, v1 := randomDimValue(rel, rng)
		if d < 0 {
			break
		}
		vals := rel.Dim(d).Values()
		if len(vals) < 2 {
			continue
		}
		v2 := vals[rng.Intn(len(vals))]
		if v2 == v1 {
			continue
		}
		text := fmt.Sprintf("compare %s between %s and %s", target, v1, v2)
		if !seen[text] {
			seen[text] = true
			pool = append(pool, text)
		}
	}
	return pool
}

// LatencyReport is the client-observed latency split of one run.
type LatencyReport struct {
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	Mean time.Duration `json:"mean_ns"`
	Max  time.Duration `json:"max_ns"`
}

// Result is the outcome of one load run, JSON-shaped for
// BENCH_serve.json.
type Result struct {
	Benchmark  string        `json:"benchmark"`
	Target     string        `json:"target"`
	Dataset    string        `json:"dataset,omitempty"`
	Requests   int           `json:"requests"`
	Workers    int           `json:"workers"`
	Errors     int           `json:"errors"`
	DurationNS time.Duration `json:"duration_ns"`
	Throughput float64       `json:"throughput_rps"`
	Latency    LatencyReport `json:"latency"`
	// Cached counts answers the server served from its answer cache;
	// HitRate is Cached over successful requests.
	Cached  int     `json:"cached"`
	HitRate float64 `json:"hit_rate"`
	// Shared counts answers obtained by joining another request's
	// in-flight computation (singleflight).
	Shared int `json:"singleflight_shared"`
	// ByKind tallies answers per serving kind.
	ByKind map[string]int `json:"by_kind"`
	// Zipf and Distinct echo the workload shape for reproducibility.
	Zipf     float64 `json:"zipf"`
	Distinct int     `json:"distinct"`
}

// Run replays texts against the server at baseURL with the given
// number of concurrent workers, via POST /v1/answer single requests
// (the server's default dataset). Per-request errors are counted, not
// fatal; transport-level failure of every request surfaces as
// Errors == Requests.
func Run(ctx context.Context, client *http.Client, baseURL string, texts []string, workers int) Result {
	return RunDataset(ctx, client, baseURL, "", texts, workers)
}

// RunDataset replays texts against one named dataset of a
// multi-dataset server (POST /v1/{dataset}/answer); an empty dataset
// targets the default route. See Run for the error contract.
func RunDataset(ctx context.Context, client *http.Client, baseURL, dataset string, texts []string, workers int) Result {
	if workers < 1 {
		workers = 1
	}
	if client == nil {
		// http.DefaultClient keeps only two idle connections per host, so
		// most workers would pay a TCP handshake per request and the
		// report would measure connection churn instead of serving
		// latency. Pool one connection per worker.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = workers
		client = &http.Client{Transport: tr}
	}
	url := strings.TrimRight(baseURL, "/") + "/v1/answer"
	if dataset != "" {
		url = strings.TrimRight(baseURL, "/") + "/v1/" + dataset + "/answer"
	}

	// Pre-mark every request failed: a request the feed loop never
	// dispatches (ctx cancelled mid-run) must count as an error, not as
	// a zero-latency success corrupting the percentiles.
	outcomes := make([]outcome, len(texts))
	for i := range outcomes {
		outcomes[i].err = true
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outcomes[i] = answerOnce(ctx, client, url, texts[i])
			}
		}()
	}
feed:
	for i := range texts {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Benchmark:  "serve",
		Target:     baseURL,
		Dataset:    dataset,
		Requests:   len(texts),
		Workers:    workers,
		DurationNS: elapsed,
		ByKind:     map[string]int{},
	}
	lats := make([]time.Duration, 0, len(texts))
	var sum time.Duration
	for _, o := range outcomes {
		if o.err {
			res.Errors++
			continue
		}
		lats = append(lats, o.lat)
		sum += o.lat
		if o.lat > res.Latency.Max {
			res.Latency.Max = o.lat
		}
		if o.cached {
			res.Cached++
		}
		if o.shared {
			res.Shared++
		}
		res.ByKind[o.kind]++
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.Latency.P50 = stats.PercentileDuration(lats, 0.50)
		res.Latency.P95 = stats.PercentileDuration(lats, 0.95)
		res.Latency.P99 = stats.PercentileDuration(lats, 0.99)
		res.Latency.Mean = sum / time.Duration(len(lats))
		res.HitRate = float64(res.Cached) / float64(len(lats))
	}
	if elapsed > 0 {
		res.Throughput = float64(len(texts)-res.Errors) / elapsed.Seconds()
	}
	return res
}

// outcome is one request's client-side observation. node and stale are
// populated only behind a cluster router (from the X-Cicero-Node
// header and the stale marker); begin is the request's start offset
// from the run start, for the cluster error timeline.
type outcome struct {
	lat      time.Duration
	begin    time.Duration
	kind     string
	node     string
	answered bool
	cached   bool
	shared   bool
	stale    bool
	err      bool
}

// answerOnce sends one request and parses the serving metadata.
func answerOnce(ctx context.Context, client *http.Client, url, text string) (o outcome) {
	body, _ := json.Marshal(httpserve.AnswerRequest{Text: text})
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		o.err = true
		return o
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		o.err = true
		return o
	}
	defer resp.Body.Close()
	var ans struct {
		httpserve.AnswerResponse
		Stale bool `json:"stale"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&ans) != nil {
		io.Copy(io.Discard, resp.Body)
		o.err = true
		return o
	}
	o.lat = time.Since(start)
	o.kind = ans.Kind
	o.cached = ans.Cached
	o.shared = ans.Shared
	o.stale = ans.Stale
	o.node = resp.Header.Get("X-Cicero-Node")
	return o
}

// WriteJSON writes the result as indented JSON.
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the result to path (the BENCH_serve.json artifact).
func (r Result) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary renders a one-screen human report.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d requests with %d workers in %v (%.0f req/s, %d errors)\n",
		r.Requests, r.Workers, r.DurationNS.Round(time.Millisecond), r.Throughput, r.Errors)
	fmt.Fprintf(&b, "latency p50 %v  p95 %v  p99 %v  max %v\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
	fmt.Fprintf(&b, "cache hit rate %.1f%% (%d cached, %d singleflight-shared)\n",
		100*r.HitRate, r.Cached, r.Shared)
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12s %d\n", k, r.ByKind[k])
	}
	return b.String()
}
