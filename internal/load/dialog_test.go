package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/httpserve"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// newDialogTarget stands up the housing tenant — the session-capable
// time-series dataset the dialogue smoke run uses — behind the full
// HTTP stack.
func newDialogTarget(t testing.TB) (*httptest.Server, *httpserve.Server, *relation.Relation) {
	t.Helper()
	rel := dataset.Housing(6000, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"rent"}
	cfg.MaxQueryLen = 1
	sum := &engine.Summarizer{
		Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: "monthly rent", Unit: "dollars"},
	}
	store, _, err := sum.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	ex := voice.NewExtractor(rel, voice.DefaultSamples("housing"), cfg.MaxQueryLen)
	a := serve.New(rel, store, ex, serve.Options{})
	srv := httpserve.New(a, httpserve.Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, rel
}

func TestGenerateDialoguesDeterministic(t *testing.T) {
	rel := dataset.Housing(2000, 1)
	opts := DialogOptions{Dialogues: 50, Turns: 4, Distinct: 16, Seed: 9}
	ds := GenerateDialogues(rel, opts)
	if len(ds) != 50 {
		t.Fatalf("generated %d dialogues, want 50", len(ds))
	}
	again := GenerateDialogues(rel, opts)
	sessions := map[string]bool{}
	followups := 0
	for i, d := range ds {
		if len(again[i].Turns) != len(d.Turns) {
			t.Fatalf("generation not deterministic at dialogue %d", i)
		}
		for j, turn := range d.Turns {
			if again[i].Turns[j] != turn {
				t.Fatalf("generation not deterministic at %d/%d: %q vs %q",
					i, j, turn.Text, again[i].Turns[j].Text)
			}
			if turn.FollowUp {
				followups++
			}
		}
		if sessions[d.Session] {
			t.Fatalf("duplicate session id %q", d.Session)
		}
		sessions[d.Session] = true
		if len(d.Turns) < 2 || len(d.Turns) > opts.Turns {
			t.Errorf("dialogue %d has %d turns, want 2..%d", i, len(d.Turns), opts.Turns)
		}
		if d.Turns[0].FollowUp {
			t.Errorf("dialogue %d opens with a follow-up: %q", i, d.Turns[0].Text)
		}
		if !d.Turns[1].FollowUp {
			t.Errorf("dialogue %d second turn is not a follow-up: %q", i, d.Turns[1].Text)
		}
	}
	if followups == 0 {
		t.Fatal("workload has no follow-up turns")
	}
}

// TestRunDialogResolution is the harness's own acceptance bar: against
// a live housing server, a generated dialogue workload must run
// error-free and resolve (nearly) every follow-up through the session
// context.
func TestRunDialogResolution(t *testing.T) {
	ts, srv, rel := newDialogTarget(t)
	ds := GenerateDialogues(rel, DialogOptions{
		Dialogues: 40, Turns: 4, Distinct: 16, Seed: 7,
		TargetPhrases: voice.SpokenTargetPhrases(voice.DefaultSamples("housing")),
	})
	res := RunDialog(context.Background(), ts.Client(), ts.URL, "", ds, 8)

	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	if res.Dialogues != 40 || res.Requests < 80 {
		t.Errorf("dialogues %d requests %d, want 40 dialogues of >= 2 turns", res.Dialogues, res.Requests)
	}
	if res.FollowUps == 0 {
		t.Fatal("run measured no follow-ups")
	}
	if res.Resolution < 0.95 {
		t.Errorf("resolution %.3f (%d of %d follow-ups), want >= 0.95; by kind %v",
			res.Resolution, res.Resolved, res.FollowUps, res.ByKind)
	}
	// Follow-ups must have resolved into real extremum/ranking answers,
	// not just echoed summaries.
	if res.ByKind["extremum"] == 0 || res.ByKind["topk"] == 0 {
		t.Errorf("dialogue answers missing ranked kinds: %v", res.ByKind)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 {
		t.Errorf("implausible latency report %+v", res.Latency)
	}
	// Dialogues ran under one live session per dialogue on the server.
	if n := srv.Sessions(); n != 40 {
		t.Errorf("server tracked %d sessions, want 40", n)
	}
}

func TestDialogResultJSONArtifact(t *testing.T) {
	ts, _, rel := newDialogTarget(t)
	ds := GenerateDialogues(rel, DialogOptions{Dialogues: 8, Turns: 3, Distinct: 8, Seed: 3})
	res := RunDialog(context.Background(), ts.Client(), ts.URL, "", ds, 4)
	res.Turns, res.Zipf, res.Distinct = 3, 1.3, 8

	path := filepath.Join(t.TempDir(), "BENCH_dialog.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back DialogResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if back.Benchmark != "dialog" || back.Dialogues != 8 || back.Resolved != res.Resolved {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, res)
	}
	if res.Summary() == "" {
		t.Error("empty human summary")
	}
}

func TestRunDialogCancelledCountsErrors(t *testing.T) {
	ts, _, rel := newDialogTarget(t)
	ds := GenerateDialogues(rel, DialogOptions{Dialogues: 10, Turns: 3, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunDialog(ctx, ts.Client(), ts.URL, "", ds, 4)
	if res.Errors != res.Requests || res.Requests == 0 {
		t.Fatalf("errors = %d of %d requests, want all (unsent turns must not count as successes)",
			res.Errors, res.Requests)
	}
	if res.Resolution != 0 || len(res.ByKind) != 0 {
		t.Errorf("aborted run fabricated results: %+v", res)
	}
}
