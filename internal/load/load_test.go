package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/httpserve"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// newLoadTarget stands up the full HTTP stack over a small flights
// store for the harness to shoot at.
func newLoadTarget(t testing.TB) (*httptest.Server, *httpserve.Server, *relation.Relation) {
	t.Helper()
	rel := dataset.Flights(2000, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"cancelled"}
	cfg.Dimensions = []string{"season", "airline"}
	cfg.MaxQueryLen = 1
	sum := &engine.Summarizer{
		Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: "cancellation probability", Percent: true},
	}
	store, _, err := sum.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	ex := voice.NewExtractor(rel, voice.DefaultSamples("flights"), 2)
	a := serve.New(rel, store, ex, serve.Options{})
	srv := httpserve.New(a, httpserve.Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, rel
}

func TestGenerateDeterministicMix(t *testing.T) {
	rel := dataset.Flights(1000, 1)
	opts := Options{
		Requests: 400, Distinct: 16, Seed: 7,
		TargetPhrases: voice.SpokenTargetPhrases(voice.DefaultSamples("flights")),
	}
	texts := Generate(rel, opts)
	if len(texts) != 400 {
		t.Fatalf("generated %d texts, want 400", len(texts))
	}
	again := Generate(rel, opts)
	for i := range texts {
		if texts[i] != again[i] {
			t.Fatalf("generation not deterministic at %d: %q vs %q", i, texts[i], again[i])
		}
	}
	// Zipf skew: the pools are bounded, so the workload must repeat
	// itself (that is what makes it cacheable).
	distinct := map[string]bool{}
	for _, text := range texts {
		distinct[text] = true
	}
	if len(distinct) >= len(texts)/2 {
		t.Errorf("workload barely repeats: %d distinct of %d", len(distinct), len(texts))
	}
	if len(distinct) < 4 {
		t.Errorf("workload too uniform: %d distinct", len(distinct))
	}
}

func TestRunAgainstServer(t *testing.T) {
	ts, srv, rel := newLoadTarget(t)
	texts := Generate(rel, Options{
		Requests: 300, Distinct: 24, Seed: 42,
		TargetPhrases: voice.SpokenTargetPhrases(voice.DefaultSamples("flights")),
	})
	res := Run(context.Background(), ts.Client(), ts.URL, texts, 8)

	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
	if res.Requests != 300 {
		t.Errorf("requests = %d, want 300", res.Requests)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 {
		t.Errorf("implausible latency report %+v", res.Latency)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	// The zipf workload repeats itself, so the answer cache must see
	// substantial hits — and the server's own counters must agree.
	if res.HitRate <= 0.2 {
		t.Errorf("hit rate = %v, want > 0.2 for a zipf workload", res.HitRate)
	}
	snap := srv.Stats()
	if snap.Cache.Hits == 0 || int(snap.Cache.Hits) != res.Cached {
		t.Errorf("server cache hits %d vs client-observed %d", snap.Cache.Hits, res.Cached)
	}
	// Every generated kind reaches the server: summaries dominate,
	// extrema/comparisons/repeats all present.
	for _, kind := range []string{"summary", "extremum", "comparison", "repeat"} {
		if res.ByKind[kind] == 0 {
			t.Errorf("workload produced no %s answers: %v", kind, res.ByKind)
		}
	}
	if res.ByKind["summary"] <= res.ByKind["extremum"] {
		t.Errorf("mix not summary-dominated: %v", res.ByKind)
	}
}

func TestResultJSONArtifact(t *testing.T) {
	ts, _, rel := newLoadTarget(t)
	texts := Generate(rel, Options{
		Requests: 60, Distinct: 8, Seed: 1,
		TargetPhrases: voice.SpokenTargetPhrases(voice.DefaultSamples("flights")),
	})
	res := Run(context.Background(), ts.Client(), ts.URL, texts, 4)
	res.Zipf, res.Distinct = 1.3, 8

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if back.Benchmark != "serve" || back.Requests != 60 || back.Latency.P50 != res.Latency.P50 {
		t.Errorf("artifact round-trip mismatch: %+v vs %+v", back, res)
	}
	if back.Latency.P50 <= 0 || back.Zipf != 1.3 {
		t.Errorf("artifact missing fields: %+v", back)
	}
	if res.Summary() == "" {
		t.Error("empty human summary")
	}
}

func TestRunCancelledCountsErrors(t *testing.T) {
	ts, _, rel := newLoadTarget(t)
	texts := Generate(rel, Options{Requests: 50, Distinct: 8, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // nothing may be dispatched
	res := Run(ctx, ts.Client(), ts.URL, texts, 4)
	if res.Errors != 50 {
		t.Fatalf("errors = %d, want all 50 (unsent requests must not count as successes)", res.Errors)
	}
	if res.Latency.P50 != 0 || res.HitRate != 0 || len(res.ByKind) != 0 {
		t.Errorf("aborted run fabricated results: %+v", res)
	}
}

func TestGenerateTinyRelationTerminates(t *testing.T) {
	b := relation.NewBuilder("tiny", relation.Schema{
		Dimensions: []string{"d"},
		Targets:    []string{"t"},
	})
	b.MustAddRow([]string{"only"}, []float64{1})
	rel := b.Freeze()
	texts := Generate(rel, Options{Requests: 100, Distinct: 64, Seed: 1})
	if len(texts) != 100 {
		t.Fatalf("generated %d texts, want 100", len(texts))
	}
}
