package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"cicero/internal/httpserve"
	"cicero/internal/relation"
	"cicero/internal/stats"
)

// Dialogue workload: instead of independent one-shot requests, the
// harness synthesizes multi-turn sessions — an opening question plus
// elliptical follow-ups ("what about Texas", "and the lowest", "how
// about the top three") — and replays each under its own session id.
// Turns within a dialogue are strictly sequential (a follow-up only
// makes sense after its predecessor's answer); dialogues run
// concurrently against each other. The headline metric is the
// resolution rate: the fraction of follow-up turns the server answered
// against the session context rather than apologizing.

// Turn is one utterance of a dialogue.
type Turn struct {
	Text string `json:"text"`
	// FollowUp marks a turn that only resolves against the dialogue's
	// context; these are the turns the resolution rate is measured over.
	FollowUp bool `json:"followup"`
}

// Dialogue is one session: an opening question and its follow-ups,
// replayed in order under Session.
type Dialogue struct {
	Session string `json:"session"`
	Turns   []Turn `json:"turns"`
}

// DialogOptions shapes dialogue workload generation.
type DialogOptions struct {
	// Dialogues is the number of sessions (default 100).
	Dialogues int
	// Turns bounds the turns per dialogue including the opening
	// (default 4); each dialogue gets 2..Turns turns.
	Turns int
	// Distinct bounds the pool of distinct opening questions
	// (default 32).
	Distinct int
	// Zipf is the popularity skew over the opening pool (default 1.3):
	// dialogues open with hot questions, like real traffic, but the
	// follow-ups keep the session path uncacheable anyway.
	Zipf float64
	// Seed makes generation deterministic.
	Seed int64
	// TargetPhrases lists spoken names per target column; column names
	// are used when empty.
	TargetPhrases map[string][]string
}

func (o DialogOptions) withDefaults() DialogOptions {
	if o.Dialogues <= 0 {
		o.Dialogues = 100
	}
	if o.Turns < 2 {
		o.Turns = 4
	}
	if o.Distinct <= 0 {
		o.Distinct = 32
	}
	if o.Zipf <= 1 {
		o.Zipf = 1.3
	}
	return o
}

// dialogOpening is one opening-pool entry; the raw dimension name rides
// along so follow-up value turns can draw from a different dimension.
type dialogOpening struct {
	text string
	dim  int
}

// GenerateDialogues synthesizes a deterministic dialogue workload over
// rel. Every dialogue opens with an extremum question (the followable
// kind: it leaves a grouping dimension in the session context for the
// follow-ups to lean on) and continues with value, direction, and
// ranking follow-ups. Value follow-ups within one dialogue draw from a
// single dimension, so successive predicates replace each other rather
// than stacking the subset empty.
func GenerateDialogues(rel *relation.Relation, opts DialogOptions) []Dialogue {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	words := []string{"highest", "lowest", "most", "fewest", "largest", "smallest"}
	targets := rel.Schema().Targets
	dims := rel.Schema().Dimensions
	pool := make([]dialogOpening, 0, opts.Distinct)
	seen := map[string]bool{}
	for i := 0; len(pool) < opts.Distinct && i < opts.Distinct*8; i++ {
		target := spokenTarget(rng, Options{TargetPhrases: opts.TargetPhrases}, targets[rng.Intn(len(targets))])
		d := rng.Intn(len(dims))
		text := fmt.Sprintf("which %s has the %s %s",
			strings.ReplaceAll(dims[d], "_", " "), words[rng.Intn(len(words))], target)
		if !seen[text] {
			seen[text] = true
			pool = append(pool, dialogOpening{text: text, dim: d})
		}
	}
	if len(pool) == 0 {
		return nil
	}
	zipf := rand.NewZipf(rng, opts.Zipf, 1, uint64(len(pool)-1))

	directionForms := []string{"and the lowest", "and the highest", "what about the lowest"}
	rankForms := []string{"what about the top three", "and the bottom two", "how about the top five"}
	valueForms := []string{"what about %s", "how about %s"}

	dialogues := make([]Dialogue, 0, opts.Dialogues)
	for i := 0; i < opts.Dialogues; i++ {
		opening := pool[zipf.Uint64()]
		d := Dialogue{
			Session: fmt.Sprintf("d%04d", i),
			Turns:   []Turn{{Text: opening.text}},
		}
		// The dialogue's value follow-ups draw from one dimension other
		// than the opening's grouping dimension when the schema has one.
		followDim := opening.dim
		if len(dims) > 1 {
			for followDim == opening.dim {
				followDim = rng.Intn(len(dims))
			}
		}
		followValues := rel.Dim(followDim).Values()

		for n := 1 + rng.Intn(opts.Turns-1); n > 0; n-- {
			var text string
			switch pick := rng.Intn(4); {
			case pick < 2 && len(followValues) > 0:
				text = fmt.Sprintf(valueForms[rng.Intn(len(valueForms))],
					followValues[rng.Intn(len(followValues))])
			case pick == 2:
				text = directionForms[rng.Intn(len(directionForms))]
			default:
				text = rankForms[rng.Intn(len(rankForms))]
			}
			d.Turns = append(d.Turns, Turn{Text: text, FollowUp: true})
			// An occasional "repeat that" rides along, replayed from the
			// session rather than resolved against it.
			if rng.Intn(8) == 0 && len(d.Turns) < opts.Turns {
				d.Turns = append(d.Turns, Turn{Text: "repeat that"})
				n--
			}
		}
		dialogues = append(dialogues, d)
	}
	return dialogues
}

// DialogResult is the outcome of one dialogue run, JSON-shaped for
// BENCH_dialog.json.
type DialogResult struct {
	Benchmark  string        `json:"benchmark"`
	Target     string        `json:"target"`
	Dataset    string        `json:"dataset,omitempty"`
	Dialogues  int           `json:"dialogues"`
	Requests   int           `json:"requests"`
	Workers    int           `json:"workers"`
	Errors     int           `json:"errors"`
	DurationNS time.Duration `json:"duration_ns"`
	Throughput float64       `json:"throughput_rps"`
	Latency    LatencyReport `json:"latency"`
	// FollowUps counts the turns that needed session context; Resolved
	// counts those the server answered (with any kind but the follow-up
	// apology); Resolution is their ratio.
	FollowUps  int     `json:"followups"`
	Resolved   int     `json:"resolved"`
	Resolution float64 `json:"resolution_rate"`
	// ByKind tallies answers per serving kind.
	ByKind map[string]int `json:"by_kind"`
	// Turns, Zipf, and Distinct echo the workload shape.
	Turns    int     `json:"max_turns"`
	Zipf     float64 `json:"zipf"`
	Distinct int     `json:"distinct"`
}

// RunDialog replays dialogues against one named dataset of the server
// at baseURL (the default dataset when empty). Each dialogue's turns
// are sent sequentially under its session id; up to workers dialogues
// are in flight concurrently. Per-request errors are counted, not
// fatal.
func RunDialog(ctx context.Context, client *http.Client, baseURL, dataset string, dialogues []Dialogue, workers int) DialogResult {
	if workers < 1 {
		workers = 1
	}
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = workers
		client = &http.Client{Transport: tr}
	}
	url := strings.TrimRight(baseURL, "/") + "/v1/answer"
	if dataset != "" {
		url = strings.TrimRight(baseURL, "/") + "/v1/" + dataset + "/answer"
	}

	// Pre-mark every turn failed, as in RunDataset: a turn the feed loop
	// never dispatches must count as an error.
	outcomes := make([][]outcome, len(dialogues))
	for i, d := range dialogues {
		outcomes[i] = make([]outcome, len(d.Turns))
		for j := range outcomes[i] {
			outcomes[i][j].err = true
		}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				d := dialogues[i]
				for j, turn := range d.Turns {
					outcomes[i][j] = answerInSession(ctx, client, url, turn.Text, d.Session)
				}
			}
		}()
	}
feed:
	for i := range dialogues {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	res := DialogResult{
		Benchmark:  "dialog",
		Target:     baseURL,
		Dataset:    dataset,
		Dialogues:  len(dialogues),
		Workers:    workers,
		DurationNS: elapsed,
		ByKind:     map[string]int{},
	}
	var lats []time.Duration
	var sum time.Duration
	for i, d := range dialogues {
		for j, turn := range d.Turns {
			res.Requests++
			o := outcomes[i][j]
			if turn.FollowUp {
				res.FollowUps++
			}
			if o.err {
				res.Errors++
				continue
			}
			lats = append(lats, o.lat)
			sum += o.lat
			if o.lat > res.Latency.Max {
				res.Latency.Max = o.lat
			}
			res.ByKind[o.kind]++
			if turn.FollowUp && o.answered && o.kind != "followup" {
				res.Resolved++
			}
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.Latency.P50 = stats.PercentileDuration(lats, 0.50)
		res.Latency.P95 = stats.PercentileDuration(lats, 0.95)
		res.Latency.P99 = stats.PercentileDuration(lats, 0.99)
		res.Latency.Mean = sum / time.Duration(len(lats))
	}
	if res.FollowUps > 0 {
		res.Resolution = float64(res.Resolved) / float64(res.FollowUps)
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Requests-res.Errors) / elapsed.Seconds()
	}
	return res
}

// answerInSession sends one dialogue turn under its session id.
func answerInSession(ctx context.Context, client *http.Client, url, text, session string) (o outcome) {
	body, _ := json.Marshal(httpserve.AnswerRequest{Text: text, Session: session})
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		o.err = true
		return o
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		o.err = true
		return o
	}
	defer resp.Body.Close()
	var ans httpserve.AnswerResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&ans) != nil {
		io.Copy(io.Discard, resp.Body)
		o.err = true
		return o
	}
	o.lat = time.Since(start)
	o.kind = ans.Kind
	o.answered = ans.Answered
	o.cached = ans.Cached
	return o
}

// WriteJSON writes the result as indented JSON.
func (r DialogResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the result to path (the BENCH_dialog.json artifact).
func (r DialogResult) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary renders a one-screen human report.
func (r DialogResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d dialogues (%d turns) with %d workers in %v (%.0f req/s, %d errors)\n",
		r.Dialogues, r.Requests, r.Workers, r.DurationNS.Round(time.Millisecond), r.Throughput, r.Errors)
	fmt.Fprintf(&b, "follow-up resolution %.1f%% (%d of %d)\n",
		100*r.Resolution, r.Resolved, r.FollowUps)
	fmt.Fprintf(&b, "latency p50 %v  p95 %v  p99 %v  max %v\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12s %d\n", k, r.ByKind[k])
	}
	return b.String()
}
