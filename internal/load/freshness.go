package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cicero/internal/delta"
	"cicero/internal/engine"
	"cicero/internal/httpserve"
	"cicero/internal/pipeline"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/stats"
)

// FreshnessOptions configures a freshness workload: repeated delta
// publishes against a live server under concurrent reader traffic.
type FreshnessOptions struct {
	// Rounds is the number of delta publish rounds (default 8).
	Rounds int
	// Ops is the number of synthetic row ops per round (default 1% of
	// the rows, at least 1).
	Ops int
	// Seed makes the synthetic deltas deterministic.
	Seed int64
	// Texts are the voice queries readers replay and the publisher
	// verifies with; required (use Generate).
	Texts []string
	// Readers is the number of concurrent reader goroutines hammering
	// the server throughout the run (default 2).
	Readers int
	// ChecksPerRound is the number of post-publish verification
	// queries per round (default 4).
	ChecksPerRound int
}

func (o FreshnessOptions) withDefaults(rows int) FreshnessOptions {
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	if o.Ops <= 0 {
		o.Ops = rows / 100
		if o.Ops < 1 {
			o.Ops = 1
		}
	}
	if o.Readers <= 0 {
		o.Readers = 2
	}
	if o.ChecksPerRound <= 0 {
		o.ChecksPerRound = 4
	}
	return o
}

// FreshnessResult is the outcome of a freshness run, JSON-shaped for a
// BENCH artifact.
type FreshnessResult struct {
	Benchmark   string `json:"benchmark"` // "freshness"
	Dataset     string `json:"dataset"`
	Rounds      int    `json:"rounds"`
	OpsPerRound int    `json:"ops_per_round"`

	// TotalProblems is the problem-space size; Dirty/Solved/Retained
	// accumulate over all rounds.
	TotalProblems int `json:"total_problems"`
	Dirty         int `json:"dirty_problems"`
	Solved        int `json:"solved"`
	Retained      int `json:"retained"`

	// Checks counts post-publish verification queries; StaleAnswers
	// counts those whose served answer did not match the live store —
	// any non-zero value is a staleness bug.
	Checks       int `json:"checks"`
	StaleAnswers int `json:"stale_answers"`

	// ReaderAnswers/ReaderErrors count the concurrent reader traffic.
	ReaderAnswers int64 `json:"reader_answers"`
	ReaderErrors  int64 `json:"reader_errors"`

	// Publish is the latency of one full publish: incremental re-solve
	// plus the store swap.
	Publish    LatencyReport `json:"publish_latency"`
	DurationNS time.Duration `json:"duration_ns"`
}

// RunFreshness drives the incremental-ingestion loop end to end
// against a live multi-dataset server: each round synthesizes a row
// delta, re-solves only the dirty problems (delta.Apply), publishes
// the patched generation through the zero-downtime swap, and then
// verifies — under concurrent reader traffic — that the served answers
// reflect the generation just published. a must be the dataset's
// registered answerer (the publisher's oracle: its post-swap Answer is
// by construction computed on the live store, so any divergence in the
// server's reply is a stale cache or swap bug, which this workload
// exists to catch).
func RunFreshness(ctx context.Context, srv *httpserve.Server, dataset string, a *serve.Answerer, rel *relation.Relation, cfg engine.Config, popts pipeline.Options, base engine.StoreView, opts FreshnessOptions) (FreshnessResult, error) {
	opts = opts.withDefaults(rel.NumRows())
	if len(opts.Texts) == 0 {
		return FreshnessResult{}, fmt.Errorf("load: freshness run needs texts")
	}
	res := FreshnessResult{
		Benchmark:   "freshness",
		Dataset:     dataset,
		Rounds:      opts.Rounds,
		OpsPerRound: opts.Ops,
	}

	rctx, stopReaders := context.WithCancel(ctx)
	defer stopReaders()
	var wg sync.WaitGroup
	var answers, errors atomic.Int64
	for r := 0; r < opts.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; rctx.Err() == nil; i++ {
				if _, err := srv.AnswerDataset(rctx, dataset, opts.Texts[(r+i)%len(opts.Texts)]); err != nil {
					if rctx.Err() == nil {
						errors.Add(1)
					}
				} else {
					answers.Add(1)
				}
			}
		}(r)
	}

	cur, curStore := rel, base
	var publishLats []time.Duration
	start := time.Now()
	for round := 0; round < opts.Rounds; round++ {
		b := delta.Synthesize(cur, opts.Ops, opts.Seed+int64(round)*101)
		tab := delta.FromRelation(cur)
		images, err := tab.Apply(b)
		if err != nil {
			stopReaders()
			wg.Wait()
			return res, fmt.Errorf("load: round %d: %w", round, err)
		}
		next := tab.Rel()

		pubStart := time.Now()
		applied, err := delta.Apply(ctx, curStore, cur, next, cfg, popts, images)
		if err != nil {
			stopReaders()
			wg.Wait()
			return res, fmt.Errorf("load: round %d: %w", round, err)
		}
		if _, err := srv.SwapDataFor(ctx, dataset, next, applied.Store); err != nil {
			stopReaders()
			wg.Wait()
			return res, fmt.Errorf("load: round %d publish: %w", round, err)
		}
		publishLats = append(publishLats, time.Since(pubStart))

		res.TotalProblems = applied.TotalProblems
		res.Dirty += applied.DirtyProblems
		res.Solved += applied.Solved
		res.Retained += applied.Retained

		// Post-publish verification: the publisher is the only swapper,
		// so the oracle's direct answer is computed on the store just
		// installed; the server must agree.
		for c := 0; c < opts.ChecksPerRound; c++ {
			text := opts.Texts[(round*opts.ChecksPerRound+c)%len(opts.Texts)]
			got, err := srv.AnswerDataset(ctx, dataset, text)
			if err != nil {
				stopReaders()
				wg.Wait()
				return res, fmt.Errorf("load: round %d check: %w", round, err)
			}
			res.Checks++
			if want := a.Answer(text); got.Text != want.Text {
				res.StaleAnswers++
			}
		}
		cur, curStore = next, applied.Store
	}
	res.DurationNS = time.Since(start)
	stopReaders()
	wg.Wait()
	res.ReaderAnswers = answers.Load()
	res.ReaderErrors = errors.Load()

	if len(publishLats) > 0 {
		sort.Slice(publishLats, func(i, j int) bool { return publishLats[i] < publishLats[j] })
		var sum time.Duration
		for _, l := range publishLats {
			sum += l
		}
		res.Publish = LatencyReport{
			P50:  stats.PercentileDuration(publishLats, 0.50),
			P95:  stats.PercentileDuration(publishLats, 0.95),
			P99:  stats.PercentileDuration(publishLats, 0.99),
			Mean: sum / time.Duration(len(publishLats)),
			Max:  publishLats[len(publishLats)-1],
		}
	}
	return res, nil
}

// Summary renders a one-line human report.
func (r FreshnessResult) Summary() string {
	return fmt.Sprintf("freshness %s: %d rounds × %d ops, %d/%d problems re-solved, %d retained, %d checks (%d stale), %d reader answers (%d errors), publish p50 %v max %v",
		r.Dataset, r.Rounds, r.OpsPerRound, r.Solved, r.TotalProblems*r.Rounds, r.Retained,
		r.Checks, r.StaleAnswers, r.ReaderAnswers, r.ReaderErrors, r.Publish.P50, r.Publish.Max)
}

// WriteJSON writes the result as indented JSON.
func (r FreshnessResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the result to path (a BENCH-style artifact).
func (r FreshnessResult) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
