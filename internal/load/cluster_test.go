package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cicero/internal/cluster"
	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/httpserve"
	"cicero/internal/relation"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// newClusterAnswerer builds the flights answerer all replicas share —
// the in-process equivalent of three nodes bootstrapped from the same
// snapshot artifact.
func newClusterAnswerer(t testing.TB) (*serve.Answerer, *relation.Relation) {
	t.Helper()
	rel := dataset.Flights(2000, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"cancelled"}
	cfg.Dimensions = []string{"season", "airline"}
	cfg.MaxQueryLen = 1
	sum := &engine.Summarizer{
		Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: "cancellation probability", Percent: true},
	}
	store, _, err := sum.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	ex := voice.NewExtractor(rel, voice.DefaultSamples("flights"), 2)
	return serve.New(rel, store, ex, serve.Options{}), rel
}

func TestRunClusterSurvivesNodeKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second paced cluster run")
	}
	answerer, rel := newClusterAnswerer(t)

	backends := map[string]*httptest.Server{}
	var nodes []cluster.Node
	for _, id := range []string{"n1", "n2", "n3"} {
		reg := serve.NewRegistry()
		if err := reg.Add("flights", answerer); err != nil {
			t.Fatal(err)
		}
		s := httpserve.NewMulti(reg, "flights", httpserve.Options{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		backends[id] = ts
		nodes = append(nodes, cluster.Node{ID: id, URL: ts.URL})
	}

	r, err := cluster.New(nodes, []string{"flights"}, cluster.Options{
		Replication:    2,
		RequestTimeout: time.Second,
		HealthInterval: 100 * time.Millisecond,
		Backoff:        cluster.BackoffPolicy{Base: 5 * time.Millisecond, Max: 25 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.CheckHealth(ctx)
	go r.Run(ctx)
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	texts := Generate(rel, Options{
		Requests: 600, Distinct: 24, Seed: 42,
		TargetPhrases: voice.SpokenTargetPhrases(voice.DefaultSamples("flights")),
	})

	// Kill a replica of flights mid-run: the listener drops and every
	// in-flight connection resets, like a SIGKILL'd process.
	victim := r.Ring().Replicas("flights")[0]
	killed := make(chan struct{})
	go func() {
		time.Sleep(500 * time.Millisecond)
		backends[victim].CloseClientConnections()
		backends[victim].Close()
		close(killed)
	}()

	res := RunCluster(ctx, nil, front.URL, "flights", texts, ClusterOptions{
		Workers: 8, RatePerSec: 400,
	})
	<-killed

	t.Logf("\n%s", res.ClusterSummary())
	if res.Errors > 0 {
		// Failover retries should absorb the kill; any client-visible
		// errors must at least have stopped by the tail of the run.
		t.Logf("errors during kill window: %d (gap %v)", res.Errors, res.FailoverGapNS)
	}
	if res.TailErrors != 0 {
		t.Fatalf("%d errors in the final quarter — failover never settled", res.TailErrors)
	}
	if res.Requests != 600 {
		t.Fatalf("requests %d, want 600", res.Requests)
	}
	surviving := 0
	for node, count := range res.PerNode {
		if node != victim && count > 0 {
			surviving++
		}
	}
	if surviving == 0 {
		t.Fatalf("no surviving node served traffic: %v", res.PerNode)
	}

	// The router's health view must reflect the dead node once the
	// sweep catches up.
	deadlineAt := time.Now().Add(3 * time.Second)
	for {
		snap := r.HealthSnapshot()
		dead := false
		for _, n := range snap.Nodes {
			if n.ID == victim && !n.Healthy {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatalf("router healthz never marked %s unhealthy", victim)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The artifact round-trips.
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ClusterResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != res.Requests || back.TailErrors != res.TailErrors {
		t.Fatalf("artifact round-trip mismatch: %+v vs %+v", back.Result, res.Result)
	}
}

func TestPerNodeSpread(t *testing.T) {
	min, max := perNodeSpread(map[string]int{"a": 3, "b": 9, "c": 6})
	if min != 3 || max != 9 {
		t.Fatalf("spread (%d, %d), want (3, 9)", min, max)
	}
	min, max = perNodeSpread(nil)
	if min != 0 || max != 0 {
		t.Fatalf("empty spread (%d, %d)", min, max)
	}
}
