package userstudy

import (
	"math"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/fact"
)

func TestPanelDeterministic(t *testing.T) {
	a := Panel(20, 5)
	b := Panel(20, 5)
	for i := range a {
		if a[i].model != b[i].model || a[i].noise != b[i].noise {
			t.Fatal("panels differ for identical seeds")
		}
	}
	c := Panel(20, 6)
	same := true
	for i := range a {
		same = same && a[i].noise == c[i].noise
	}
	if same {
		t.Error("different seeds produced identical panels")
	}
}

func TestPanelModelMix(t *testing.T) {
	workers := Panel(500, 11)
	counts := map[fact.ExpectationModel]int{}
	for _, w := range workers {
		counts[w.model]++
	}
	if counts[fact.Closest] < 300 {
		t.Errorf("closest workers = %d, want majority", counts[fact.Closest])
	}
	if counts[fact.Farthest] == 0 || counts[fact.AvgScope] == 0 {
		t.Error("minority models missing from panel")
	}
}

func TestRateBounds(t *testing.T) {
	workers := Panel(50, 3)
	for _, w := range workers {
		for _, q := range []float64{0, 0.5, 1} {
			r := w.Rate(q)
			if r < 1 || r > 10 {
				t.Fatalf("rating %v out of bounds", r)
			}
		}
	}
}

func TestRateMonotoneInQuality(t *testing.T) {
	workers := Panel(200, 9)
	var low, high float64
	for i := range workers {
		low += workers[i].Rate(0.1)
	}
	workers = Panel(200, 9) // fresh RNG state
	for i := range workers {
		high += workers[i].Rate(0.9)
	}
	if high <= low {
		t.Errorf("avg rating for high quality (%v) not above low (%v)", high/200, low/200)
	}
}

func TestPreferenceStudyOrdering(t *testing.T) {
	// Reproduces Figure 5's shape: best-ranked speech out-rates and
	// out-wins worst-ranked on every adjective.
	profiles := []SpeechProfile{
		{Name: "Worst", Accuracy: 0.15, Precision: 1, Diversity: 0.4, Brevity: 0.8},
		{Name: "Medium", Accuracy: 0.5, Precision: 1, Diversity: 0.6, Brevity: 0.8},
		{Name: "Best", Accuracy: 0.95, Precision: 1, Diversity: 0.8, Brevity: 0.8},
	}
	results := PreferenceStudy(profiles, Adjectives4, Panel(50, 21))
	for _, adj := range Adjectives4 {
		if !(results[2].AvgRating[adj] > results[0].AvgRating[adj]) {
			t.Errorf("%s: best rating %.2f not above worst %.2f",
				adj, results[2].AvgRating[adj], results[0].AvgRating[adj])
		}
		if !(results[2].Wins[adj] > results[0].Wins[adj]) {
			t.Errorf("%s: best wins %d not above worst %d",
				adj, results[2].Wins[adj], results[0].Wins[adj])
		}
	}
	// Ratings live in the plausible AMT band of the paper (5-9).
	for _, r := range results {
		for _, adj := range Adjectives4 {
			if r.AvgRating[adj] < 4 || r.AvgRating[adj] > 9.5 {
				t.Errorf("%s %s rating %.2f outside plausible band", r.Name, adj, r.AvgRating[adj])
			}
		}
	}
}

func TestEstimationStudyTracksSpeechQuality(t *testing.T) {
	// Reproduces Figure 6's shape: estimates after the best speech are
	// closer to correct values than after the worst speech.
	rel := dataset.ACS(4000, 5)
	target := rel.Schema().TargetIndex("visual")
	prior := rel.FullView().Stats(target).Mean()

	ageDim := rel.Schema().DimIndex("age_group")
	boroughDim := rel.Schema().DimIndex("borough")

	// Worst speech: three near-identical borough-level facts.
	var worst []fact.Fact
	for _, b := range []string{"Manhattan", "Brooklyn", "Queens"} {
		code, _ := rel.Dim(boroughDim).Code(b)
		scope := fact.NewScope([]int{boroughDim}, []int32{code})
		v := rel.FullView().Select(scope.Predicates()).Stats(target).Mean()
		worst = append(worst, fact.Fact{Scope: scope, Value: v})
	}
	// Best speech: age-group facts spanning the real variation.
	var best []fact.Fact
	for _, a := range []string{"Teenagers", "Adults", "Elders"} {
		code, _ := rel.Dim(ageDim).Code(a)
		scope := fact.NewScope([]int{ageDim}, []int32{code})
		v := rel.FullView().Select(scope.Predicates()).Stats(target).Mean()
		best = append(best, fact.Fact{Scope: scope, Value: v})
	}

	// The 15 points: borough × age group.
	var points []fact.Scope
	for _, b := range rel.Dim(boroughDim).Values() {
		bc, _ := rel.Dim(boroughDim).Code(b)
		for _, a := range rel.Dim(ageDim).Values() {
			ac, _ := rel.Dim(ageDim).Code(a)
			points = append(points, fact.NewScope([]int{boroughDim, ageDim}, []int32{bc, ac}))
		}
	}
	workers := Panel(20, 33)
	worstEst := EstimationStudy(rel, worst, points, target, prior, workers, 20)
	bestEst := EstimationStudy(rel, best, points, target, prior, workers, 20)
	if len(worstEst) != 15 || len(bestEst) != 15 {
		t.Fatalf("points = %d/%d, want 15", len(worstEst), len(bestEst))
	}
	errOf := func(pts []EstimatePoint) float64 {
		sum := 0.0
		for _, p := range pts {
			sum += math.Abs(p.Median - p.Correct)
		}
		return sum
	}
	if errOf(bestEst) >= errOf(worstEst) {
		t.Errorf("best speech error %.1f not below worst %.1f", errOf(bestEst), errOf(worstEst))
	}
}

func TestConflictStudyClosestWins(t *testing.T) {
	// Reproduces Figure 7: the Closest model explains simulated worker
	// behaviour best (lowest median error).
	cases := []ConflictCase{
		{InScope: []float64{30, 80}, AllValues: []float64{30, 80, 10, 50}, Truth: 72, Prior: 35},
		{InScope: []float64{10, 50}, AllValues: []float64{30, 80, 10, 50}, Truth: 18, Prior: 35},
		{InScope: []float64{30, 50}, AllValues: []float64{30, 80, 10, 50}, Truth: 45, Prior: 35},
		{InScope: []float64{10, 80}, AllValues: []float64{30, 80, 10, 50}, Truth: 25, Prior: 35},
	}
	workers := Panel(20, 44)
	results := ConflictStudy(cases, workers, 20)
	if len(results) != 4 {
		t.Fatalf("models = %d", len(results))
	}
	var closest, farthest float64
	for _, r := range results {
		switch r.Model {
		case fact.Closest:
			closest = r.MedianError
		case fact.Farthest:
			farthest = r.MedianError
		}
		if r.MedianError < 0 {
			t.Errorf("negative error for %v", r.Model)
		}
	}
	if closest >= farthest {
		t.Errorf("closest error %.2f should be below farthest %.2f", closest, farthest)
	}
	for _, r := range results {
		if r.Model != fact.Closest && r.MedianError < closest {
			t.Errorf("%v error %.2f below closest %.2f", r.Model, r.MedianError, closest)
		}
	}
}

func TestInterfaceStudyShape(t *testing.T) {
	// Reproduces Figure 8: most participants are slightly faster by
	// voice; everything stays within the plotted axes.
	results := InterfaceStudy(10, 17)
	if len(results) != 10 {
		t.Fatalf("participants = %d", len(results))
	}
	faster := 0
	for _, p := range results {
		if p.VocalTime < p.VisualTime {
			faster++
		}
		if p.VocalTime < 5 || p.VocalTime > 60 || p.VisualTime < 5 || p.VisualTime > 60 {
			t.Errorf("times out of plot range: %+v", p)
		}
		if p.VocalEval < 1 || p.VocalEval > 10 || p.VisualEval < 1 || p.VisualEval > 10 {
			t.Errorf("evals out of range: %+v", p)
		}
	}
	if faster < 6 {
		t.Errorf("only %d/10 participants faster by voice, want majority", faster)
	}
}

func TestRankSpeeches(t *testing.T) {
	acc := []float64{0.5, 0.1, 0.9, 0.3, 0.7}
	w, m, b := RankSpeeches(acc)
	if acc[w] != 0.1 || acc[b] != 0.9 {
		t.Errorf("worst/best = %v/%v", acc[w], acc[b])
	}
	if acc[m] != 0.5 {
		t.Errorf("median = %v, want 0.5", acc[m])
	}
}

func TestAdjectiveQualityWeights(t *testing.T) {
	precise := SpeechProfile{Accuracy: 0.5, Precision: 1, Diversity: 0.5, Brevity: 0.5}
	vague := SpeechProfile{Accuracy: 0.5, Precision: 0.2, Diversity: 0.5, Brevity: 0.5}
	if adjectiveQuality(precise, "Precise") <= adjectiveQuality(vague, "Precise") {
		t.Error("precision must raise the Precise quality")
	}
	if adjectiveQuality(precise, "Good") != adjectiveQuality(vague, "Good") {
		t.Error("Good loads on accuracy only")
	}
	diverse := SpeechProfile{Accuracy: 0.5, Diversity: 1, Brevity: 0.5}
	narrow := SpeechProfile{Accuracy: 0.5, Diversity: 0, Brevity: 0.5}
	if adjectiveQuality(diverse, "Diverse") <= adjectiveQuality(narrow, "Diverse") {
		t.Error("diversity must raise the Diverse quality")
	}
}

func TestEstimateValueModels(t *testing.T) {
	workers := Panel(1, 2)
	w := &workers[0]
	w.model = fact.Closest
	w.noise = 0 // deterministic
	got := w.EstimateValue([]float64{10, 100}, 0, 12)
	if got != 10 {
		t.Errorf("closest estimate = %v, want 10", got)
	}
	w.model = fact.Farthest
	if got := w.EstimateValue([]float64{10, 100}, 0, 12); got != 100 {
		t.Errorf("farthest estimate = %v, want 100", got)
	}
	w.model = fact.AvgScope
	if got := w.EstimateValue([]float64{10, 100}, 0, 12); got != 55 {
		t.Errorf("avg estimate = %v, want 55", got)
	}
	w.model = fact.AvgScope
	if got := w.EstimateValue(nil, 7, 12); got != 7 {
		t.Errorf("no in-scope estimate = %v, want prior 7", got)
	}
}
