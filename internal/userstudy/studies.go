package userstudy

import (
	"math"
	"sort"

	"cicero/internal/fact"
	"cicero/internal/relation"
	"cicero/internal/stats"
)

// Adjectives4 are the rating criteria of Figure 5.
var Adjectives4 = []string{"Precise", "Good", "Complete", "Informative"}

// Adjectives6 are the extended criteria of Figure 11.
var Adjectives6 = []string{"Precise", "Good", "Complete", "Informative", "Diverse", "Concise"}

// SpeechProfile describes one speech variant entering a rating study.
type SpeechProfile struct {
	// Name labels the variant ("Worst", "Best", "Baseline", "This", ...).
	Name string
	// Accuracy in [0,1]: how well listeners can reproduce the data with
	// the speech (scaled utility for point-fact speeches; midpoint
	// utility for range speeches).
	Accuracy float64
	// Precision in [0,1]: 1 for exact values, lower for ranges.
	Precision float64
	// Diversity in [0,1]: fraction of facts covering distinct dimensions.
	Diversity float64
	// Brevity in [0,1]: 1 for short speeches, lower for verbose output.
	Brevity float64
}

// adjectiveQuality mixes profile features into the perceived quality for
// one adjective. All adjectives load primarily on accuracy (a useless
// speech rates poorly on everything); Precise and Informative add a
// precision component, Diverse loads on diversity, Concise on brevity.
func adjectiveQuality(p SpeechProfile, adjective string) float64 {
	switch adjective {
	case "Precise":
		return 0.5*p.Accuracy + 0.5*p.Precision
	case "Informative":
		return 0.65*p.Accuracy + 0.35*p.Precision
	case "Complete":
		return 0.8*p.Accuracy + 0.2*p.Diversity
	case "Diverse":
		return 0.4*p.Accuracy + 0.6*p.Diversity
	case "Concise":
		return 0.4*p.Accuracy + 0.6*p.Brevity
	default: // "Good"
		return p.Accuracy
	}
}

// RatingResult holds the outcome of a rating study for one speech.
type RatingResult struct {
	Name string
	// AvgRating maps adjective → mean 1-10 rating.
	AvgRating map[string]float64
	// Wins maps adjective → number of pairwise comparisons won.
	Wins map[string]int
}

// PreferenceStudy simulates the AMT comparison studies (Figures 5 and
// 11): each worker rates every speech on every adjective and, for each
// unordered speech pair, votes for the speech they perceive as better.
func PreferenceStudy(profiles []SpeechProfile, adjectives []string, workers []Worker) []RatingResult {
	results := make([]RatingResult, len(profiles))
	for i, p := range profiles {
		results[i] = RatingResult{
			Name:      p.Name,
			AvgRating: map[string]float64{},
			Wins:      map[string]int{},
		}
		_ = p
	}
	for _, adj := range adjectives {
		sums := make([]float64, len(profiles))
		for wi := range workers {
			w := &workers[wi]
			for pi, p := range profiles {
				sums[pi] += w.Rate(adjectiveQuality(p, adj))
			}
			for a := 0; a < len(profiles); a++ {
				for b := a + 1; b < len(profiles); b++ {
					qa := adjectiveQuality(profiles[a], adj)
					qb := adjectiveQuality(profiles[b], adj)
					if w.Prefer(qa, qb) {
						results[a].Wins[adj]++
					} else {
						results[b].Wins[adj]++
					}
				}
			}
		}
		for pi := range profiles {
			results[pi].AvgRating[adj] = sums[pi] / float64(len(workers))
		}
	}
	return results
}

// EstimatePoint is one data point of the Figure 6 estimation study.
type EstimatePoint struct {
	// Labels identify the point (borough, age group).
	Labels []string
	// Correct is the true average value.
	Correct float64
	// Median is the median worker estimate.
	Median float64
}

// EstimationStudy simulates Figure 6: workers listen to a speech and
// estimate the target value of each data point (a scope within the
// relation). hitsPerPoint workers answer every point; the median estimate
// is reported next to the correct value.
func EstimationStudy(rel *relation.Relation, speech []fact.Fact, points []fact.Scope, target int, prior float64, workers []Worker, hitsPerPoint int) []EstimatePoint {
	out := make([]EstimatePoint, 0, len(points))
	for _, scope := range points {
		view := rel.FullView().Select(scope.Predicates())
		if view.NumRows() == 0 {
			continue
		}
		correct := view.Stats(target).Mean()
		// The in-scope fact values for a representative row of the point.
		row := view.Row(0)
		var estimates []float64
		for h := 0; h < hitsPerPoint; h++ {
			w := &workers[h%len(workers)]
			estimates = append(estimates, w.Estimate(rel, speech, row, prior, correct))
		}
		labels := make([]string, scope.Len())
		for i, d := range scope.Dims {
			labels[i] = rel.Dim(d).Value(scope.Codes[i])
		}
		out = append(out, EstimatePoint{
			Labels:  labels,
			Correct: correct,
			Median:  stats.Median(estimates),
		})
	}
	return out
}

// ConflictCase is one question of the Figure 7 study: a point where two
// facts (one per dimension) are in scope and propose conflicting values.
type ConflictCase struct {
	// InScope are the typical values proposed by the relevant facts.
	InScope []float64
	// AllValues are every value mentioned in the speech.
	AllValues []float64
	// Truth is the accurate value for the point.
	Truth float64
	// Prior is the listener's default expectation.
	Prior float64
}

// ModelError holds the Figure 7 outcome for one expectation model.
type ModelError struct {
	Model fact.ExpectationModel
	// MedianError is the median |prediction − worker estimate| across
	// cases and workers.
	MedianError float64
}

// ConflictStudy simulates Figure 7: workers resolve conflicting facts;
// each candidate model predicts their estimates; the model with minimal
// median error best explains user behaviour. Because simulated workers
// follow the Closest model by majority, Closest wins — reproducing the
// paper's finding that validated this choice.
func ConflictStudy(cases []ConflictCase, workers []Worker, hitsPerCase int) []ModelError {
	predict := func(m fact.ExpectationModel, c ConflictCase) float64 {
		switch m {
		case fact.Closest:
			best, bestD := c.Prior, math.Abs(c.Prior-c.Truth)
			for _, v := range c.InScope {
				if d := math.Abs(v - c.Truth); d < bestD {
					best, bestD = v, d
				}
			}
			return best
		case fact.Farthest:
			best, bestD := c.Prior, -1.0
			for _, v := range c.InScope {
				if d := math.Abs(v - c.Truth); d > bestD {
					best, bestD = v, d
				}
			}
			return best
		case fact.AvgScope:
			return stats.Mean(c.InScope)
		default: // AvgAll
			return stats.Mean(c.AllValues)
		}
	}
	var out []ModelError
	for _, m := range fact.Models() {
		var errs []float64
		for _, c := range cases {
			for h := 0; h < hitsPerCase; h++ {
				w := &workers[h%len(workers)]
				est := w.EstimateValue(c.InScope, c.Prior, c.Truth)
				errs = append(errs, math.Abs(predict(m, c)-est))
			}
		}
		out = append(out, ModelError{Model: m, MedianError: stats.Median(errs)})
	}
	return out
}

// ParticipantResult is one participant of the Figure 8 interface study.
type ParticipantResult struct {
	// VocalTime and VisualTime are median seconds to answer three
	// questions per interface.
	VocalTime, VisualTime float64
	// VocalEval and VisualEval are 1–10 usability ratings.
	VocalEval, VisualEval float64
}

// InterfaceStudy simulates the Zoom study of Figure 8 with n
// participants: per-participant skill shifts both interfaces, voice is
// slightly faster for the majority (the paper: "the majority of users
// were slightly faster using the voice interface") and usability ratings
// mildly favour voice.
func InterfaceStudy(n int, seed int64) []ParticipantResult {
	workers := Panel(n, seed)
	out := make([]ParticipantResult, n)
	for i := range out {
		w := &workers[i]
		skill := 1 + w.rng.NormFloat64()*0.2
		base := 28 * skill
		vocal := base*0.85 + w.rng.NormFloat64()*5
		visual := base*1.05 + w.rng.NormFloat64()*6
		out[i] = ParticipantResult{
			VocalTime:  clamp(vocal, 5, 60),
			VisualTime: clamp(visual, 5, 60),
			VocalEval:  clamp(6.5+w.rng.NormFloat64()*1.6, 1, 10),
			VisualEval: clamp(6.0+w.rng.NormFloat64()*1.8, 1, 10),
		}
	}
	return out
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }

// RankSpeeches sorts speech variants by accuracy ascending and returns
// the indices of (worst, median, best), the selection protocol of the
// Figure 5 study over 100 random speeches.
func RankSpeeches(accuracies []float64) (worst, median, best int) {
	idx := make([]int, len(accuracies))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return accuracies[idx[a]] < accuracies[idx[b]] })
	return idx[0], idx[len(idx)/2], idx[len(idx)-1]
}
