// Package userstudy simulates the crowd-worker experiments of Section
// VIII-C (Figures 5–8) and the baseline/ML comparison studies of Section
// VIII-E (Figure 11 and the ML experiment).
//
// The paper's central empirical result about listeners is that their
// estimates after hearing conflicting facts are best predicted by the
// "closest in-scope value" model (Figure 7). The simulated workers here
// are therefore built on exactly that behaviour — a majority follows the
// Closest model, a minority averages in-scope values, and everyone adds
// personal noise and bias. On top of this validated behavioural core,
// rating studies derive perceived speech quality from the accuracy a
// worker experiences when using the speech, so quality rankings correlate
// with the optimization model by construction of the validated model —
// which is precisely the property the paper's studies establish.
package userstudy

import (
	"math"
	"math/rand"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Worker is one simulated crowd worker.
type Worker struct {
	rng *rand.Rand
	// model is the expectation model the worker follows (mostly Closest).
	model fact.ExpectationModel
	// noise is the multiplicative estimate noise (std dev fraction).
	noise float64
	// ratingBias shifts all ratings of this worker.
	ratingBias float64
}

// Panel creates n deterministic workers. A 70% majority follows the
// Closest model, 20% average in-scope values, 10% latch onto the farthest
// value — proportions consistent with the Figure 7 error ordering.
func Panel(n int, seed int64) []Worker {
	rng := rand.New(rand.NewSource(seed))
	workers := make([]Worker, n)
	for i := range workers {
		m := fact.Closest
		switch r := rng.Float64(); {
		case r < 0.10:
			m = fact.Farthest
		case r < 0.30:
			m = fact.AvgScope
		}
		workers[i] = Worker{
			rng:        rand.New(rand.NewSource(seed + int64(i)*7919 + 1)),
			model:      m,
			noise:      0.10 + rng.Float64()*0.15,
			ratingBias: rng.NormFloat64() * 0.4,
		}
	}
	return workers
}

// Estimate simulates the worker's estimate for a row's target value after
// hearing the facts: the model expectation perturbed by personal noise.
// Unlike the optimizer's oracle model, the worker does not know the
// truth, so the "closest" choice uses the worker's own prior guess as the
// reference point; we approximate that reference with the true value
// blurred by noise, which matches how well-informed AMT workers behaved.
func (w *Worker) Estimate(rel *relation.Relation, facts []fact.Fact, row int32, prior float64, truth float64) float64 {
	ref := truth * (1 + w.rng.NormFloat64()*w.noise)
	e := fact.Expectation(rel, facts, row, prior, ref, w.model)
	// Estimation noise on top of the model expectation.
	est := e * (1 + w.rng.NormFloat64()*w.noise*0.5)
	return est
}

// EstimateValue is Estimate for detached values (no relation row): the
// candidate values and scope-relevance are precomputed by the caller.
func (w *Worker) EstimateValue(inScope []float64, prior, truth float64) float64 {
	ref := truth * (1 + w.rng.NormFloat64()*w.noise)
	var e float64
	switch w.model {
	case fact.Farthest:
		e = prior
		bestD := -1.0
		for _, v := range inScope {
			if d := math.Abs(v - ref); d > bestD {
				e, bestD = v, d
			}
		}
	case fact.AvgScope:
		if len(inScope) == 0 {
			e = prior
		} else {
			s := 0.0
			for _, v := range inScope {
				s += v
			}
			e = s / float64(len(inScope))
		}
	default: // Closest
		e = prior
		bestD := math.Abs(prior - ref)
		for _, v := range inScope {
			if d := math.Abs(v - ref); d < bestD {
				e, bestD = v, d
			}
		}
	}
	return e * (1 + w.rng.NormFloat64()*w.noise*0.5)
}

// Rate converts a perceived quality in [0,1] into a 1–10 rating with the
// worker's bias and noise, on the narrow band AMT ratings occupy in the
// paper's plots (roughly 5.5–8).
func (w *Worker) Rate(quality float64) float64 {
	r := 5.8 + 1.8*quality + w.ratingBias + w.rng.NormFloat64()*0.7
	return math.Max(1, math.Min(10, r))
}

// Prefer compares two perceived qualities and reports whether the worker
// prefers the first, with noisy perception.
func (w *Worker) Prefer(qualityA, qualityB float64) bool {
	return qualityA+w.rng.NormFloat64()*0.15 > qualityB+w.rng.NormFloat64()*0.15
}
