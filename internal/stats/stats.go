// Package stats provides the small statistical toolbox shared across
// the generate → evaluate → solve → serve flow: the normal
// distribution CDF the solve stage's cost-based pruning optimizer
// (Section VI-C of the paper) estimates pruning probabilities with,
// percentile helpers for the experiment harness, and the concurrent
// bounded-window LatencyRecorder the serve stage's HTTP tier reports
// p50/p95/p99 latencies from at constant memory.
package stats

import (
	"math"
	"sort"
)

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma^2).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		// Degenerate distribution: a point mass at mu.
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// ProbGreater returns P(A > B) for independent A ~ N(muA, sigma^2) and
// B ~ N(muB, sigma^2). The difference A−B is N(muA−muB, 2 sigma^2), so
// P(A > B) = Φ((muA−muB)/(sigma·√2)). This is exactly the Pr(P_{s→t})
// estimate of the paper's cost model.
func ProbGreater(muA, muB, sigma float64) float64 {
	return NormalCDF(muA-muB, 0, sigma*math.Sqrt2)
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (average of the two middle values for
// even length), or 0 for empty input. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of paired samples,
// or 0 when either side has zero variance or lengths mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
