package stats

import (
	"math"
	"sort"
	"sync"
	"time"
)

// This file is the serving-side half of the package: a concurrent
// latency recorder for long-running servers. Handlers record one
// duration per request; Snapshot computes percentiles over a bounded
// window of recent samples, so memory stays constant regardless of how
// many requests a server has answered.

// LatencySnapshot summarizes recorded latencies at one point in time.
type LatencySnapshot struct {
	// Count is the total number of recorded samples, including ones
	// that have rotated out of the percentile window.
	Count uint64 `json:"count"`
	// Window is the number of samples the percentiles are computed on.
	Window int           `json:"window"`
	P50    time.Duration `json:"p50_ns"`
	P95    time.Duration `json:"p95_ns"`
	P99    time.Duration `json:"p99_ns"`
	Mean   time.Duration `json:"mean_ns"`
	Max    time.Duration `json:"max_ns"`
}

// LatencyRecorder accumulates request latencies in a fixed-size ring
// buffer. It is safe for concurrent use; Record is a mutex-guarded
// store into the ring, Snapshot copies the window out and sorts the
// copy, so recording never blocks on a snapshot's sort.
type LatencyRecorder struct {
	mu    sync.Mutex
	ring  []time.Duration
	next  int
	count uint64
	max   time.Duration
}

// DefaultLatencyWindow is the ring size used when NewLatencyRecorder is
// given a non-positive window.
const DefaultLatencyWindow = 4096

// NewLatencyRecorder creates a recorder keeping the last window samples
// for percentile estimation.
func NewLatencyRecorder(window int) *LatencyRecorder {
	if window <= 0 {
		window = DefaultLatencyWindow
	}
	return &LatencyRecorder{ring: make([]time.Duration, 0, window)}
}

// Record adds one latency sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, d)
	} else {
		r.ring[r.next] = d
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
		}
	}
	r.count++
	if d > r.max {
		r.max = d
	}
	r.mu.Unlock()
}

// Count returns the total number of recorded samples.
func (r *LatencyRecorder) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Snapshot computes percentiles over the current window. The zero
// snapshot is returned when nothing has been recorded.
func (r *LatencyRecorder) Snapshot() LatencySnapshot {
	r.mu.Lock()
	window := append([]time.Duration(nil), r.ring...)
	snap := LatencySnapshot{Count: r.count, Window: len(window), Max: r.max}
	r.mu.Unlock()
	if len(window) == 0 {
		return snap
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	var sum time.Duration
	for _, d := range window {
		sum += d
	}
	snap.P50 = PercentileDuration(window, 0.50)
	snap.P95 = PercentileDuration(window, 0.95)
	snap.P99 = PercentileDuration(window, 0.99)
	snap.Mean = sum / time.Duration(len(window))
	return snap
}

// PercentileDuration returns the nearest-rank percentile of an
// ascending-sorted duration slice, or 0 for empty input.
func PercentileDuration(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[percentileRank(len(sorted), q)]
}

// Percentile returns the nearest-rank percentile of an ascending-sorted
// float slice, or 0 for empty input.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[percentileRank(len(sorted), q)]
}

// percentileRank maps quantile q to a nearest-rank index in [0, n).
func percentileRank(n int, q float64) int {
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}
