package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDF(t *testing.T) {
	cases := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.959963985, 0, 1, 0.975},
		{-1.959963985, 0, 1, 0.025},
		{10, 10, 3, 0.5},
		{13, 10, 3, 0.8413447},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, c.mu, c.sigma); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalCDF(%v,%v,%v) = %v, want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFDegenerate(t *testing.T) {
	if got := NormalCDF(1, 2, 0); got != 0 {
		t.Errorf("point mass below: %v", got)
	}
	if got := NormalCDF(3, 2, 0); got != 1 {
		t.Errorf("point mass above: %v", got)
	}
	if got := NormalCDF(2, 2, -1); got != 1 {
		t.Errorf("negative sigma treated as point mass: %v", got)
	}
}

func TestProbGreater(t *testing.T) {
	if got := ProbGreater(1, 1, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("equal means: %v, want 0.5", got)
	}
	if got := ProbGreater(5, 0, 1); got < 0.99 {
		t.Errorf("well-separated means: %v, want ~1", got)
	}
	if got := ProbGreater(0, 5, 1); got > 0.01 {
		t.Errorf("reversed means: %v, want ~0", got)
	}
}

// TestPropertyProbGreaterSymmetry: P(A>B) + P(B>A) = 1 for continuous
// distributions.
func TestPropertyProbGreaterSymmetry(t *testing.T) {
	f := func(a, b int8, s uint8) bool {
		sigma := float64(s)/16 + 0.1
		p := ProbGreater(float64(a), float64(b), sigma)
		q := ProbGreater(float64(b), float64(a), sigma)
		return math.Abs(p+q-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v", got)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant StdDev = %v", got)
	}
	if got := StdDev([]float64{0, 2}); got != 1 {
		t.Errorf("StdDev = %v, want 1", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
	// Median must not mutate its input.
	orig := []float64{3, 1, 2}
	Median(orig)
	if orig[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero-variance correlation = %v", got)
	}
	if got := Pearson(xs, []float64{1}); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
}
