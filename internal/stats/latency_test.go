package stats

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyRecorderEmpty(t *testing.T) {
	r := NewLatencyRecorder(8)
	snap := r.Snapshot()
	if snap.Count != 0 || snap.Window != 0 || snap.P99 != 0 || snap.Mean != 0 {
		t.Errorf("empty snapshot not zero: %+v", snap)
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	r := NewLatencyRecorder(1000)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	snap := r.Snapshot()
	if snap.Count != 100 || snap.Window != 100 {
		t.Fatalf("count/window = %d/%d, want 100/100", snap.Count, snap.Window)
	}
	if snap.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", snap.P50)
	}
	if snap.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", snap.P95)
	}
	if snap.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", snap.P99)
	}
	if snap.Max != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", snap.Max)
	}
	if want := 50500 * time.Microsecond; snap.Mean != want {
		t.Errorf("mean = %v, want %v", snap.Mean, want)
	}
}

func TestLatencyRecorderWindowRotation(t *testing.T) {
	r := NewLatencyRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(time.Duration(i) * time.Second)
	}
	snap := r.Snapshot()
	if snap.Count != 10 {
		t.Errorf("count = %d, want 10", snap.Count)
	}
	if snap.Window != 4 {
		t.Errorf("window = %d, want 4", snap.Window)
	}
	// Only the last four samples (7..10s) remain in the window.
	if snap.P50 < 7*time.Second {
		t.Errorf("p50 = %v includes rotated-out samples", snap.P50)
	}
	if snap.Max != 10*time.Second {
		t.Errorf("max = %v, want 10s", snap.Max)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.21, 2}, {0.5, 3}, {0.99, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := PercentileDuration(nil, 0.5); got != 0 {
		t.Errorf("empty duration percentile = %v, want 0", got)
	}
}
