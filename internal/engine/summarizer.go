package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cicero/internal/relation"
	"cicero/internal/summarize"
)

// Algorithm identifies a summarization method for the batch pre-processor,
// matching the variants of Figure 3.
type Algorithm string

const (
	// AlgExact is E: Algorithm 1, seeded with the greedy lower bound.
	AlgExact Algorithm = "E"
	// AlgExactParallel is E-P: Algorithm 1's enumeration distributed over
	// a worker pool with a shared incumbent bound
	// (summarize.ExactParallelCtx). Output is bit-identical to E; with
	// opts.WarmStart the greedy utility (and, in the pipeline's E-P
	// solver, the better of greedy and the ML prediction) seeds the
	// incumbent so pruning opens near-optimal.
	AlgExactParallel Algorithm = "E-P"
	// AlgGreedyBase is G-B: Algorithm 2 without fact pruning.
	AlgGreedyBase Algorithm = "G-B"
	// AlgGreedyPrune is G-P: greedy with naive fact pruning.
	AlgGreedyPrune Algorithm = "G-P"
	// AlgGreedyOpt is G-O: greedy with cost-optimized fact pruning.
	AlgGreedyOpt Algorithm = "G-O"
)

// Algorithms lists all supported methods in Figure 3 order, plus the
// parallel exact variant.
func Algorithms() []Algorithm {
	return []Algorithm{AlgExact, AlgExactParallel, AlgGreedyBase, AlgGreedyPrune, AlgGreedyOpt}
}

// Solve runs the selected algorithm on a prepared evaluator. The context
// bounds the run: its deadline acts like opts.Timeout and cancellation
// aborts the inner enumeration loops, returning the best speech found so
// far with Stats.Cancelled set. This is the single solving core shared by
// the legacy Summarizer and the pipeline's solver registry.
func Solve(ctx context.Context, alg Algorithm, e *summarize.Evaluator, opts summarize.Options) summarize.Summary {
	switch alg {
	case AlgExact:
		greedy := summarize.GreedyCtx(ctx, e, opts)
		exactOpts := opts
		exactOpts.LowerBound = greedy.Utility
		exact := summarize.ExactCtx(ctx, e, exactOpts)
		// A timed-out or cancelled exact run may fall below the greedy
		// seed; the greedy speech is then the best known answer (the
		// paper's runs with a 48h timeout behave the same way).
		if exact.Utility < greedy.Utility {
			greedy.Stats.TimedOut = exact.Stats.TimedOut
			greedy.Stats.Cancelled = exact.Stats.Cancelled
			return greedy
		}
		return exact
	case AlgExactParallel:
		greedy := summarize.GreedyCtx(ctx, e, opts)
		exactOpts := opts
		if opts.WarmStart && greedy.Utility > exactOpts.LowerBound {
			// Warm start: the greedy speech is a true lower bound on the
			// optimum, so seeding the incumbent from it only shrinks the
			// search (callers may have pre-seeded an even better bound,
			// e.g. from an ML prediction — keep the tighter one).
			exactOpts.LowerBound = greedy.Utility
		}
		exact := summarize.ExactParallelCtx(ctx, e, exactOpts)
		// Same fallback as E: a timed-out or cancelled run may fall below
		// the greedy seed, and the greedy speech is then the best answer.
		if exact.Utility < greedy.Utility {
			greedy.Stats.TimedOut = exact.Stats.TimedOut
			greedy.Stats.Cancelled = exact.Stats.Cancelled
			return greedy
		}
		return exact
	case AlgGreedyPrune:
		opts.Pruning = summarize.PruneNaive
		return summarize.GreedyCtx(ctx, e, opts)
	case AlgGreedyOpt:
		opts.Pruning = summarize.PruneOptimized
		return summarize.GreedyCtx(ctx, e, opts)
	default:
		opts.Pruning = summarize.PruneNone
		return summarize.GreedyCtx(ctx, e, opts)
	}
}

// SolveProblem generates candidate facts for one problem and runs the
// selected algorithm on a pooled evaluator: the kernel's buffers (CSR
// postings, group slots, scratch) are recycled across calls, so a loop
// of SolveProblem calls allocates almost nothing per problem beyond the
// facts and the returned summary. This is the per-problem solving core
// behind both the deprecated Summarizer and the pipeline's solver
// registry.
func SolveProblem(ctx context.Context, alg Algorithm, p *Problem, maxFactDims int, opts summarize.Options) (summarize.Summary, error) {
	facts := p.GenerateFacts(maxFactDims)
	if len(facts) == 0 {
		return summarize.Summary{}, fmt.Errorf("problem %s: no candidate facts", p.Query.Key())
	}
	e := summarize.AcquireEvaluator(p.View, p.Target, facts, p.Prior)
	defer summarize.ReleaseEvaluator(e)
	return Solve(ctx, alg, e, opts), nil
}

// BatchStats summarizes a pre-processing run.
type BatchStats struct {
	// Problems is the number of summarization problems solved.
	Problems int
	// Speeches is the number of speeches stored (= problems with at
	// least the minimum subset size).
	Speeches int
	// Failed counts problems that returned an error instead of a speech.
	Failed int
	// TotalFacts accumulates candidate fact counts across problems.
	TotalFacts int
	// Elapsed is the wall-clock pre-processing time.
	Elapsed time.Duration
	// PerQuery is the average pre-processing time per speech.
	PerQuery time.Duration
	// SumScaledUtility accumulates scaled utilities for averaging.
	SumScaledUtility float64
	// TimedOut counts problems where the exact algorithm hit its timeout.
	TimedOut int
}

// AvgScaledUtility returns the mean scaled utility across problems.
func (b BatchStats) AvgScaledUtility() float64 {
	if b.Problems == 0 {
		return 0
	}
	return b.SumScaledUtility / float64(b.Problems)
}

// Summarizer executes pre-processing: it generates all problems for a
// configuration and solves each with the selected algorithm, storing
// rendered speeches for run-time lookup.
//
// Deprecated: Summarizer is retained as a compatibility wrapper around
// the shared solving core (Solve). New code should drive the pipeline
// package, which adds streaming sinks with bounded memory, context
// cancellation, checkpoint/resume, per-stage metrics, and pluggable
// solvers behind one registry.
type Summarizer struct {
	Rel      *relation.Relation
	Config   Config
	Alg      Algorithm
	Template Template
	// Opts carries algorithm parameters; MaxFacts is overridden by the
	// configuration.
	Opts summarize.Options
	// Workers bounds concurrent problem solving. Values below 2 solve
	// sequentially. Problems are independent (each builds its own
	// evaluator), so the batch parallelizes embarrassingly.
	Workers int
	// Progress, if non-nil, receives (done, total) after every problem,
	// where done counts solved and failed problems alike. Calls are
	// serialized and done is strictly increasing, also under parallelism.
	Progress func(done, total int)
}

// Preprocess runs the batch and returns the populated speech store.
func (s *Summarizer) Preprocess() (*Store, BatchStats, error) {
	problems, err := Problems(s.Rel, s.Config)
	if err != nil {
		return nil, BatchStats{}, err
	}
	return s.PreprocessProblems(problems)
}

// PreprocessProblems solves an explicit problem list (used by the
// experiment harness to subsample large workloads). A failing problem
// aborts the batch: the first error is returned (further errors are
// dropped after counting) and no store is built, so a partial batch can
// never serve zero-valued speeches.
func (s *Summarizer) PreprocessProblems(problems []Problem) (*Store, BatchStats, error) {
	if s.Alg == "" {
		s.Alg = AlgGreedyOpt
	}
	start := time.Now()
	opts := s.Opts
	opts.MaxFacts = s.Config.MaxFacts

	summaries := make([]summarize.Summary, len(problems))
	solved := make([]bool, len(problems))
	var stats BatchStats
	var firstErr error
	if s.Workers > 1 {
		firstErr = s.solveParallel(problems, summaries, solved, opts, &stats)
	} else {
		for i := range problems {
			sum, err := s.solveProblem(&problems[i], opts)
			if err != nil {
				stats.Failed++
				if firstErr == nil {
					firstErr = err
				}
			} else {
				summaries[i] = sum
				solved[i] = true
			}
			if s.Progress != nil {
				s.Progress(i+1, len(problems))
			}
			if firstErr != nil {
				break
			}
		}
	}
	if firstErr != nil {
		stats.Elapsed = time.Since(start)
		return nil, stats, firstErr
	}

	store := NewStore()
	for i := range problems {
		if !solved[i] {
			// Defensive: never store a zero-valued summary for a problem
			// that produced none.
			continue
		}
		p := &problems[i]
		sum := summaries[i]
		stats.Problems++
		stats.TotalFacts += len(sum.Facts)
		stats.SumScaledUtility += sum.ScaledUtility()
		if sum.Stats.TimedOut {
			stats.TimedOut++
		}
		store.Add(&StoredSpeech{
			Query:      p.Query,
			Facts:      sum.Facts,
			Utility:    sum.Utility,
			PriorError: sum.PriorError,
			Text:       s.Template.Render(s.Rel, p.Query, sum.Facts),
		})
		stats.Speeches++
	}
	stats.Elapsed = time.Since(start)
	if stats.Speeches > 0 {
		stats.PerQuery = stats.Elapsed / time.Duration(stats.Speeches)
	}
	// The batch is complete: seal the store so run-time lookups may run
	// lock-free from any number of goroutines.
	return store.Freeze(), stats, nil
}

// solveParallel fans problems out over s.Workers goroutines. Every
// problem is drained regardless of failures, the first error is kept and
// later ones are merely counted — an unbounded number of failing problems
// can never block a worker (the old error channel was buffered at
// s.Workers and deadlocked beyond that).
func (s *Summarizer) solveParallel(problems []Problem, summaries []summarize.Summary, solved []bool, opts summarize.Options, stats *BatchStats) error {
	jobs := make(chan int)
	var wg sync.WaitGroup
	// mu serializes result accounting and the Progress callback, which
	// keeps the reported done count strictly increasing.
	var mu sync.Mutex
	var failed atomic.Bool
	var firstErr error
	done := 0
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				sum, err := s.solveProblem(&problems[idx], opts)
				mu.Lock()
				if err != nil {
					stats.Failed++
					if firstErr == nil {
						firstErr = err
					}
					failed.Store(true)
				} else {
					summaries[idx] = sum
					solved[idx] = true
				}
				done++
				if s.Progress != nil {
					s.Progress(done, len(problems))
				}
				mu.Unlock()
			}
		}()
	}
	for i := range problems {
		// The batch aborts on the first error: stop feeding queued
		// problems (in-flight solves finish and are discarded with the
		// rest of the wave).
		if failed.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// solveProblem generates facts for one problem and runs the algorithm on
// a pooled evaluator (SolveProblem), so batch loops reuse kernel buffers.
func (s *Summarizer) solveProblem(p *Problem, opts summarize.Options) (summarize.Summary, error) {
	return SolveProblem(context.Background(), s.Alg, p, s.Config.MaxFactDims, opts)
}

// Answer performs a run-time lookup and reports the latency, the metric
// of Figure 10: our system merely retrieves the best pre-generated
// speech, so latency is microseconds instead of the baseline's sampling
// seconds.
//
// Deprecated: use the serve package's Answerer, which routes every
// request type (summary, extremum, comparison, help, repeat) through one
// entry point and returns uniform answer metadata.
func Answer(store *Store, q Query) (*StoredSpeech, time.Duration, bool) {
	start := time.Now()
	sp, ok := store.Lookup(q)
	return sp, time.Since(start), ok
}
