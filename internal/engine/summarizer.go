package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cicero/internal/relation"
	"cicero/internal/summarize"
)

// Algorithm identifies a summarization method for the batch pre-processor,
// matching the variants of Figure 3.
type Algorithm string

const (
	// AlgExact is E: Algorithm 1, seeded with the greedy lower bound.
	AlgExact Algorithm = "E"
	// AlgGreedyBase is G-B: Algorithm 2 without fact pruning.
	AlgGreedyBase Algorithm = "G-B"
	// AlgGreedyPrune is G-P: greedy with naive fact pruning.
	AlgGreedyPrune Algorithm = "G-P"
	// AlgGreedyOpt is G-O: greedy with cost-optimized fact pruning.
	AlgGreedyOpt Algorithm = "G-O"
)

// Algorithms lists all supported methods in Figure 3 order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgExact, AlgGreedyBase, AlgGreedyPrune, AlgGreedyOpt}
}

// solve runs the selected algorithm on a prepared evaluator.
func solve(alg Algorithm, e *summarize.Evaluator, opts summarize.Options) summarize.Summary {
	switch alg {
	case AlgExact:
		greedy := summarize.Greedy(e, opts)
		exactOpts := opts
		exactOpts.LowerBound = greedy.Utility
		exact := summarize.Exact(e, exactOpts)
		// A timed-out exact run may fall below the greedy seed; the
		// greedy speech is then the best known answer (the paper's runs
		// with a 48h timeout behave the same way).
		if exact.Utility < greedy.Utility {
			greedy.Stats.TimedOut = exact.Stats.TimedOut
			return greedy
		}
		return exact
	case AlgGreedyPrune:
		opts.Pruning = summarize.PruneNaive
		return summarize.Greedy(e, opts)
	case AlgGreedyOpt:
		opts.Pruning = summarize.PruneOptimized
		return summarize.Greedy(e, opts)
	default:
		opts.Pruning = summarize.PruneNone
		return summarize.Greedy(e, opts)
	}
}

// BatchStats summarizes a pre-processing run.
type BatchStats struct {
	// Problems is the number of summarization problems solved.
	Problems int
	// Speeches is the number of speeches stored (= problems with at
	// least the minimum subset size).
	Speeches int
	// TotalFacts accumulates candidate fact counts across problems.
	TotalFacts int
	// Elapsed is the wall-clock pre-processing time.
	Elapsed time.Duration
	// PerQuery is the average pre-processing time per speech.
	PerQuery time.Duration
	// SumScaledUtility accumulates scaled utilities for averaging.
	SumScaledUtility float64
	// TimedOut counts problems where the exact algorithm hit its timeout.
	TimedOut int
}

// AvgScaledUtility returns the mean scaled utility across problems.
func (b BatchStats) AvgScaledUtility() float64 {
	if b.Problems == 0 {
		return 0
	}
	return b.SumScaledUtility / float64(b.Problems)
}

// Summarizer executes pre-processing: it generates all problems for a
// configuration and solves each with the selected algorithm, storing
// rendered speeches for run-time lookup.
type Summarizer struct {
	Rel      *relation.Relation
	Config   Config
	Alg      Algorithm
	Template Template
	// Opts carries algorithm parameters; MaxFacts is overridden by the
	// configuration.
	Opts summarize.Options
	// Workers bounds concurrent problem solving. Values below 2 solve
	// sequentially. Problems are independent (each builds its own
	// evaluator), so the batch parallelizes embarrassingly.
	Workers int
	// Progress, if non-nil, receives (solved, total) after every problem.
	Progress func(done, total int)
}

// Preprocess runs the batch and returns the populated speech store.
func (s *Summarizer) Preprocess() (*Store, BatchStats, error) {
	problems, err := Problems(s.Rel, s.Config)
	if err != nil {
		return nil, BatchStats{}, err
	}
	return s.PreprocessProblems(problems)
}

// PreprocessProblems solves an explicit problem list (used by the
// experiment harness to subsample large workloads).
func (s *Summarizer) PreprocessProblems(problems []Problem) (*Store, BatchStats, error) {
	if s.Alg == "" {
		s.Alg = AlgGreedyOpt
	}
	start := time.Now()
	opts := s.Opts
	opts.MaxFacts = s.Config.MaxFacts

	summaries := make([]summarize.Summary, len(problems))
	if s.Workers > 1 {
		if err := s.solveParallel(problems, summaries, opts); err != nil {
			return nil, BatchStats{}, err
		}
	} else {
		for i := range problems {
			sum, err := s.solveProblem(&problems[i], opts)
			if err != nil {
				return nil, BatchStats{}, err
			}
			summaries[i] = sum
			if s.Progress != nil {
				s.Progress(i+1, len(problems))
			}
		}
	}

	store := NewStore()
	var stats BatchStats
	for i := range problems {
		p := &problems[i]
		sum := summaries[i]
		stats.Problems++
		stats.TotalFacts += len(sum.Facts)
		stats.SumScaledUtility += sum.ScaledUtility()
		if sum.Stats.TimedOut {
			stats.TimedOut++
		}
		store.Add(&StoredSpeech{
			Query:      p.Query,
			Facts:      sum.Facts,
			Utility:    sum.Utility,
			PriorError: sum.PriorError,
			Text:       s.Template.Render(s.Rel, p.Query, sum.Facts),
		})
		stats.Speeches++
	}
	stats.Elapsed = time.Since(start)
	if stats.Speeches > 0 {
		stats.PerQuery = stats.Elapsed / time.Duration(stats.Speeches)
	}
	// The batch is complete: seal the store so run-time lookups may run
	// lock-free from any number of goroutines.
	return store.Freeze(), stats, nil
}

// solveParallel fans problems out over s.Workers goroutines. The first
// error cancels nothing in flight but is reported after the wave drains
// (problems are cheap relative to coordination).
func (s *Summarizer) solveParallel(problems []Problem, summaries []summarize.Summary, opts summarize.Options) error {
	type job struct{ idx int }
	jobs := make(chan job)
	errs := make(chan error, s.Workers)
	var wg sync.WaitGroup
	var done int64
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				sum, err := s.solveProblem(&problems[j.idx], opts)
				if err != nil {
					errs <- err
					continue
				}
				summaries[j.idx] = sum
				if s.Progress != nil {
					s.Progress(int(atomic.AddInt64(&done, 1)), len(problems))
				}
			}
		}()
	}
	for i := range problems {
		jobs <- job{idx: i}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// solveProblem generates facts for one problem and runs the algorithm.
func (s *Summarizer) solveProblem(p *Problem, opts summarize.Options) (summarize.Summary, error) {
	facts := p.GenerateFacts(s.Config.MaxFactDims)
	if len(facts) == 0 {
		return summarize.Summary{}, fmt.Errorf("problem %s: no candidate facts", p.Query.Key())
	}
	e := summarize.NewEvaluator(p.View, p.Target, facts, p.Prior)
	return solve(s.Alg, e, opts), nil
}

// Answer performs a run-time lookup and reports the latency, the metric
// of Figure 10: our system merely retrieves the best pre-generated
// speech, so latency is microseconds instead of the baseline's sampling
// seconds.
//
// Deprecated: use the serve package's Answerer, which routes every
// request type (summary, extremum, comparison, help, repeat) through one
// entry point and returns uniform answer metadata.
func Answer(store *Store, q Query) (*StoredSpeech, time.Duration, bool) {
	start := time.Now()
	sp, ok := store.Lookup(q)
	return sp, time.Since(start), ok
}
