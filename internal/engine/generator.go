package engine

import (
	"errors"
	"fmt"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Problem is one speech summarization instance ⟨R, F, m⟩ produced by the
// problem generator: the query it answers, the data subset it summarizes,
// and the dimensions facts may restrict.
type Problem struct {
	Query Query
	// View is the data subset selected by the query predicates.
	View *relation.View
	// Target is the target column index.
	Target int
	// FreeDims lists dimension column indices facts may restrict (the
	// configured dimensions minus those fixed by query predicates).
	FreeDims []int
	// Prior is the prior expectation used for this problem.
	Prior fact.Prior
}

// GenerateFacts enumerates the candidate facts for the problem using the
// configured fact width.
func (p *Problem) GenerateFacts(maxFactDims int) []fact.Fact {
	return fact.Generate(p.View, p.Target, fact.GenerateOptions{
		MaxDims:  maxFactDims,
		FreeDims: p.FreeDims,
	})
}

// ErrStopEnumeration tells EachProblem to stop early without error.
var ErrStopEnumeration = fmt.Errorf("engine: stop problem enumeration")

// Problems enumerates every speech summarization problem for the
// configuration and collects them into a slice; see EachProblem for the
// enumeration semantics. Prefer EachProblem when the problems are
// consumed one at a time (the pipeline's generate stage does), which
// bounds memory by one materialized view instead of all of them.
func Problems(rel *relation.Relation, cfg Config) ([]Problem, error) {
	var problems []Problem
	err := EachProblem(rel, cfg, func(p Problem) error {
		problems = append(problems, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return problems, nil
}

// EachProblem streams every speech summarization problem for the
// configuration to fn: one per combination of a target column and a set
// of up to MaxQueryLen equality predicates, considering all value
// combinations that appear in the data (Section III). Queries whose
// subsets have fewer than MinSubsetRows rows are skipped. The enumeration
// order is deterministic. A non-nil error from fn stops the enumeration
// and is returned, except for ErrStopEnumeration which stops it and
// returns nil.
func EachProblem(rel *relation.Relation, cfg Config, fn func(Problem) error) error {
	return EachProblemLazy(rel, cfg, func(lp LazyProblem) error {
		return fn(lp.Materialize())
	})
}

// LazyProblem is one enumerated problem before its data subset is
// materialized: the query, the subset's row count, and a Materialize
// hook that runs the deferred selection scan. Enumeration itself costs
// one grouped counting pass per query shape; each Materialize costs the
// O(rows) selection EachProblem pays per problem. The incremental path
// (internal/delta) walks the whole problem space this way and
// materializes only the dirty sliver it re-solves.
type LazyProblem struct {
	Query Query
	// Rows is the subset row count, equal to Materialize().View.NumRows().
	Rows int

	full       *relation.View
	preds      []relation.Predicate
	target     int
	freeDims   []int
	prior      fact.Prior
	subsetMean bool
}

// Materialize selects the problem's data subset and completes the
// Problem exactly as EachProblem would have built it.
func (lp *LazyProblem) Materialize() Problem {
	view := lp.full.Select(lp.preds)
	prior := lp.prior
	if lp.subsetMean {
		prior = fact.MeanPrior(view, lp.target)
	}
	return Problem{
		Query:    lp.Query,
		View:     view,
		Target:   lp.target,
		FreeDims: lp.freeDims,
		Prior:    prior,
	}
}

// EachProblemLazy streams the same problems as EachProblem, in the same
// order, without materializing their views: subset row counts come from
// one group-by pass per query shape, so consumers that skip most
// problems (internal/delta retains clean speeches by key alone) avoid
// the per-problem selection scans entirely. The error contract matches
// EachProblem.
func EachProblemLazy(rel *relation.Relation, cfg Config, fn func(LazyProblem) error) error {
	if err := cfg.Validate(rel); err != nil {
		return err
	}
	dimIdx := make([]int, len(cfg.Dimensions))
	for i, d := range cfg.Dimensions {
		dimIdx[i] = rel.Schema().DimIndex(d)
	}
	factDimIdx := make([]int, len(cfg.FactDimensions))
	for i, d := range cfg.FactDimensions {
		factDimIdx[i] = rel.Schema().DimIndex(d)
	}
	full := rel.FullView()

	for _, target := range cfg.Targets {
		ti := rel.Schema().TargetIndex(target)
		var prior fact.Prior
		switch cfg.Prior {
		case PriorZero:
			prior = fact.ConstantPrior(0)
		case PriorGlobalMean:
			prior = fact.MeanPrior(full, ti)
		}
		for _, querySet := range fact.DimSubsets(dimIdx, cfg.MaxQueryLen) {
			inQuery := make(map[int]bool, len(querySet))
			for _, d := range querySet {
				inQuery[d] = true
			}
			free := make([]int, 0, len(factDimIdx))
			for _, d := range factDimIdx {
				if !inQuery[d] {
					free = append(free, d)
				}
			}
			// One counting pass covers every combination of this query
			// shape; GroupBy's order is DistinctCombinations's order.
			for _, g := range full.GroupBy(querySet, -1) {
				if g.Count < cfg.MinSubsetRows {
					continue
				}
				combo := g.Key.Codes
				preds := make([]relation.Predicate, len(querySet))
				named := make([]NamedPredicate, len(querySet))
				for i, d := range querySet {
					preds[i] = relation.Predicate{Dim: d, Code: combo[i]}
					named[i] = NamedPredicate{
						Column: rel.Schema().Dimensions[d],
						Value:  rel.Dim(d).Value(combo[i]),
					}
				}
				err := fn(LazyProblem{
					Query:      Query{Target: target, Predicates: named},
					Rows:       g.Count,
					full:       full,
					preds:      preds,
					target:     ti,
					freeDims:   free,
					prior:      prior,
					subsetMean: cfg.Prior == PriorSubsetMean,
				})
				if errors.Is(err, ErrStopEnumeration) {
					return nil
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// CountProblems returns the number of problems Problems would generate,
// without materializing views, for capacity planning (Theorem 10 bounds
// this by O(t · (d choose l) · n^l)).
func CountProblems(rel *relation.Relation, cfg Config) (int, error) {
	if err := cfg.Validate(rel); err != nil {
		return 0, err
	}
	dimIdx := make([]int, len(cfg.Dimensions))
	for i, d := range cfg.Dimensions {
		dimIdx[i] = rel.Schema().DimIndex(d)
	}
	full := rel.FullView()
	perTarget := 0
	for _, querySet := range fact.DimSubsets(dimIdx, cfg.MaxQueryLen) {
		perTarget += len(full.DistinctCombinations(querySet))
	}
	return perTarget * len(cfg.Targets), nil
}
