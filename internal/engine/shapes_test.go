package engine

import (
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/relation"
)

// cityRel builds a tiny rent relation with a planted ordering: rents
// rise Austin < Dallas < Houston, populations 100k / 600k / 2m, and a
// rising month-over-month trend.
func cityRel(t *testing.T) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("rents", relation.Schema{
		Dimensions: []string{"city", "month"},
		Targets:    []string{"rent", "population"},
	})
	months := []string{"January 2024", "February 2024", "March 2024"}
	base := map[string]float64{"Austin": 1000, "Dallas": 1500, "Houston": 2000}
	pop := map[string]float64{"Austin": 100_000, "Dallas": 600_000, "Houston": 2_000_000}
	for city, r := range base {
		for mi, m := range months {
			for rep := 0; rep < 3; rep++ {
				b.MustAddRow([]string{city, m}, []float64{r + float64(mi)*100, pop[city]})
			}
		}
	}
	return b.Freeze()
}

func TestAnswerTopK(t *testing.T) {
	rel := cityRel(t)
	a, err := AnswerTopK(rel, "rent", "city", nil, Max, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != 2 || a.Entries[0].Value != "Houston" || a.Entries[1].Value != "Dallas" {
		t.Fatalf("top-2 = %+v, want Houston then Dallas", a.Entries)
	}
	if a.Total != 3 {
		t.Errorf("total = %d, want 3", a.Total)
	}
	text := a.Text(Max, "rent")
	if !strings.Contains(text, "Houston") || !strings.Contains(text, "highest") {
		t.Errorf("text = %q", text)
	}

	low, err := AnswerTopK(rel, "rent", "city", nil, Min, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if low.Entries[0].Value != "Austin" {
		t.Errorf("bottom-1 = %q, want Austin", low.Entries[0].Value)
	}
	if !strings.Contains(low.Text(Min, "rent"), "lowest") {
		t.Errorf("text = %q", low.Text(Min, "rent"))
	}
}

func TestAnswerTopKWithConstraint(t *testing.T) {
	rel := cityRel(t)
	cons := &Constraint{Target: "population", Op: Over, Value: 500_000}
	a, err := AnswerTopK(rel, "rent", "city", nil, Min, 1, 1, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Austin has the lowest rent but only 100k people; Dallas wins.
	if a.Entries[0].Value != "Dallas" {
		t.Errorf("constrained bottom-1 = %q, want Dallas", a.Entries[0].Value)
	}
	if a.Total != 2 {
		t.Errorf("qualifying total = %d, want 2", a.Total)
	}
}

func TestAnswerTopKFlights(t *testing.T) {
	rel := dataset.Flights(12000, 1)
	a, err := AnswerTopK(rel, "cancelled", "month", nil, Max, 3, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(a.Entries))
	}
	// Planted effect: February leads cancellations.
	if a.Entries[0].Value != "February" {
		t.Errorf("top month = %q, want February", a.Entries[0].Value)
	}
	for i := 1; i < len(a.Entries); i++ {
		if a.Entries[i].Mean > a.Entries[i-1].Mean {
			t.Errorf("entries not ranked: %+v", a.Entries)
		}
	}
}

func TestAnswerTopKErrors(t *testing.T) {
	rel := cityRel(t)
	if _, err := AnswerTopK(rel, "rent", "city", nil, Max, 0, 1, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := AnswerTopK(rel, "nope", "city", nil, Max, 1, 1, nil); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := AnswerTopK(rel, "rent", "nope", nil, Max, 1, 1, nil); err == nil {
		t.Error("unknown dimension should fail")
	}
	if _, err := AnswerTopK(rel, "rent", "city", nil, Max, 1, 10_000, nil); err == nil {
		t.Error("impossible minRows should fail")
	}
	bad := &Constraint{Target: "population", Op: Over, Value: 1e12}
	if _, err := AnswerTopK(rel, "rent", "city", nil, Max, 1, 1, bad); err == nil {
		t.Error("unsatisfiable constraint should fail")
	}
}

func TestAnswerTrend(t *testing.T) {
	rel := cityRel(t)
	periods := []string{"January 2024", "February 2024", "March 2024"}
	a, err := AnswerTrend(rel, "rent", "month", periods, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(a.Points))
	}
	if a.Direction != "rose" {
		t.Errorf("direction = %q, want rose (first %.0f last %.0f)", a.Direction, a.First, a.Last)
	}
	if a.ChangePct <= 0 {
		t.Errorf("change = %.2f%%, want positive", a.ChangePct)
	}
	if a.PeakPeriod != "March 2024" {
		t.Errorf("peak = %q, want March 2024", a.PeakPeriod)
	}
	text := a.Text()
	if !strings.Contains(text, "rose") || !strings.Contains(text, "January 2024") {
		t.Errorf("text = %q", text)
	}
}

func TestAnswerTrendSubsetAndWindow(t *testing.T) {
	rel := cityRel(t)
	austin, err := rel.PredicateByName("city", "Austin")
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnswerTrend(rel, "rent", "month",
		[]string{"February 2024", "March 2024"}, []relation.Predicate{austin}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.First != 1100 || a.Last != 1200 {
		t.Errorf("window means = %.0f..%.0f, want 1100..1200", a.First, a.Last)
	}
}

func TestAnswerTrendFlat(t *testing.T) {
	rel := cityRel(t)
	// Population is constant per city, so overall it holds steady.
	a, err := AnswerTrend(rel, "population", "month",
		[]string{"January 2024", "February 2024", "March 2024"}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Direction != "held steady" {
		t.Errorf("direction = %q, want held steady", a.Direction)
	}
	if !strings.Contains(a.Text(), "held steady") {
		t.Errorf("text = %q", a.Text())
	}
}

func TestAnswerTrendErrors(t *testing.T) {
	rel := cityRel(t)
	periods := []string{"January 2024", "February 2024"}
	if _, err := AnswerTrend(rel, "nope", "month", periods, nil, 1); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := AnswerTrend(rel, "rent", "nope", periods, nil, 1); err == nil {
		t.Error("unknown dimension should fail")
	}
	if _, err := AnswerTrend(rel, "rent", "month", periods[:1], nil, 1); err == nil {
		t.Error("single period should fail")
	}
	if _, err := AnswerTrend(rel, "rent", "month", periods, nil, 10_000); err == nil {
		t.Error("impossible minRows should fail")
	}
}

func TestAnswerConstrained(t *testing.T) {
	rel := cityRel(t)
	cons := Constraint{Target: "population", Op: Over, Value: 500_000}
	a, err := AnswerConstrained(rel, "rent", "city", nil, cons, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Qualifying) != 2 || a.Qualifying[0] != "Dallas" || a.Qualifying[1] != "Houston" {
		t.Fatalf("qualifying = %v, want [Dallas Houston]", a.Qualifying)
	}
	// Dallas mean 1600, Houston mean 2100 -> combined 1850.
	if a.Mean < 1849 || a.Mean > 1851 {
		t.Errorf("mean = %.1f, want 1850", a.Mean)
	}
	text := a.Text(cons)
	if !strings.Contains(text, "population over 500 thousand") {
		t.Errorf("text = %q", text)
	}
}

func TestAnswerConstrainedWithPredicate(t *testing.T) {
	rel := cityRel(t)
	jan, _ := rel.PredicateByName("month", "January 2024")
	cons := Constraint{Target: "population", Op: AtLeast, Value: 600_000}
	a, err := AnswerConstrained(rel, "rent", "city", []relation.Predicate{jan}, cons, 1)
	if err != nil {
		t.Fatal(err)
	}
	// January only: Dallas 1500, Houston 2000 -> 1750.
	if a.Mean < 1749 || a.Mean > 1751 {
		t.Errorf("mean = %.1f, want 1750", a.Mean)
	}
}

func TestAnswerConstrainedErrors(t *testing.T) {
	rel := cityRel(t)
	good := Constraint{Target: "population", Op: Over, Value: 500_000}
	if _, err := AnswerConstrained(rel, "nope", "city", nil, good, 1); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := AnswerConstrained(rel, "rent", "nope", nil, good, 1); err == nil {
		t.Error("unknown dimension should fail")
	}
	bad := Constraint{Target: "nope", Op: Over, Value: 1}
	if _, err := AnswerConstrained(rel, "rent", "city", nil, bad, 1); err == nil {
		t.Error("unknown constraint target should fail")
	}
	never := Constraint{Target: "population", Op: Over, Value: 1e12}
	if _, err := AnswerConstrained(rel, "rent", "city", nil, never, 1); err == nil {
		t.Error("unsatisfiable constraint should fail")
	}
	// Query predicate disjoint from qualifying entities.
	austin, _ := rel.PredicateByName("city", "Austin")
	if _, err := AnswerConstrained(rel, "rent", "city", []relation.Predicate{austin}, good, 1); err == nil {
		t.Error("disjoint subset should fail")
	}
}

func TestConstraintOpsAndSpokenNumbers(t *testing.T) {
	cases := []struct {
		c    Constraint
		v    float64
		want bool
	}{
		{Constraint{"p", Over, 10}, 11, true},
		{Constraint{"p", Over, 10}, 10, false},
		{Constraint{"p", Under, 10}, 9, true},
		{Constraint{"p", Under, 10}, 10, false},
		{Constraint{"p", AtLeast, 10}, 10, true},
		{Constraint{"p", AtLeast, 10}, 9, false},
		{Constraint{"p", AtMost, 10}, 10, true},
		{Constraint{"p", AtMost, 10}, 11, false},
	}
	for _, c := range cases {
		if got := c.c.Satisfied(c.v); got != c.want {
			t.Errorf("%s satisfied by %g = %v, want %v", c.c.Describe(), c.v, got, c.want)
		}
	}
	if got := SpokenNumber(2_500_000); got != "2.5 million" {
		t.Errorf("SpokenNumber(2.5e6) = %q", got)
	}
	if got := SpokenNumber(500_000); got != "500 thousand" {
		t.Errorf("SpokenNumber(5e5) = %q", got)
	}
	if got := SpokenNumber(42); got != "42" {
		t.Errorf("SpokenNumber(42) = %q", got)
	}
	if got := (Constraint{"job_satisfaction", AtMost, 3}).Describe(); got != "job satisfaction at most 3" {
		t.Errorf("Describe = %q", got)
	}
}
