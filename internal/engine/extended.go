package engine

import (
	"fmt"
	"sort"
	"strings"

	"cicero/internal/relation"
)

// This file implements the extension the deployment logs motivate
// (Section VIII-D): about a third of unsupported data-access queries ask
// for extrema ("which airline has the most cancellations") or relative
// comparisons ("compare job satisfaction between men and women"). The
// paper lists these as future work; both reduce to cheap aggregations
// over the relation and can be answered at run time without
// pre-processing.

// ExtremumKind selects maxima or minima.
type ExtremumKind int

const (
	// Max asks for the dimension value with the highest target average.
	Max ExtremumKind = iota
	// Min asks for the lowest.
	Min
)

// ExtremumAnswer is the result of an extremum query.
type ExtremumAnswer struct {
	// Dimension is the column the extremum ranges over.
	Dimension string
	// Value is the extremal dimension value, Mean its target average.
	Value string
	Mean  float64
	// RunnerUpValue and RunnerUpMean give voice answers useful contrast.
	RunnerUpValue string
	RunnerUpMean  float64
	// Count is the number of rows supporting the extremal group.
	Count int
}

// Text renders the answer as speech.
func (a ExtremumAnswer) Text(kind ExtremumKind, target string) string {
	word := "highest"
	if kind == Min {
		word = "lowest"
	}
	s := fmt.Sprintf("The %s with the %s average %s is %s, at about %s.",
		strings.ReplaceAll(a.Dimension, "_", " "), word,
		strings.ReplaceAll(target, "_", " "), a.Value, spokenFloat(a.Mean))
	if a.RunnerUpValue != "" {
		s += fmt.Sprintf(" Next is %s with %s.", a.RunnerUpValue, spokenFloat(a.RunnerUpMean))
	}
	return s
}

// AnswerExtremum finds the dimension value with the extremal target
// average within the data subset selected by preds. Groups smaller than
// minRows are ignored so tiny subsets cannot win by noise.
func AnswerExtremum(rel *relation.Relation, target string, dim string, preds []relation.Predicate, kind ExtremumKind, minRows int) (ExtremumAnswer, error) {
	ti := rel.Schema().TargetIndex(target)
	if ti < 0 {
		return ExtremumAnswer{}, fmt.Errorf("extremum: no target column %q", target)
	}
	di := rel.Schema().DimIndex(dim)
	if di < 0 {
		return ExtremumAnswer{}, fmt.Errorf("extremum: no dimension column %q", dim)
	}
	view := rel.FullView().Select(preds)
	groups := view.GroupBy([]int{di}, ti)
	type entry struct {
		value string
		mean  float64
		count int
	}
	var entries []entry
	for _, g := range groups {
		if g.Count < minRows {
			continue
		}
		entries = append(entries, entry{
			value: rel.Dim(di).Value(g.Key.Codes[0]),
			mean:  g.Mean(),
			count: g.Count,
		})
	}
	if len(entries) == 0 {
		return ExtremumAnswer{}, fmt.Errorf("extremum: no group of %q has at least %d rows", dim, minRows)
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if kind == Max {
			return entries[i].mean > entries[j].mean
		}
		return entries[i].mean < entries[j].mean
	})
	a := ExtremumAnswer{
		Dimension: dim,
		Value:     entries[0].value,
		Mean:      entries[0].mean,
		Count:     entries[0].count,
	}
	if len(entries) > 1 {
		a.RunnerUpValue = entries[1].value
		a.RunnerUpMean = entries[1].mean
	}
	return a, nil
}

// ComparisonAnswer is the result of a relative comparison between two
// data subsets.
type ComparisonAnswer struct {
	MeanA, MeanB   float64
	CountA, CountB int
	// Ratio is MeanA/MeanB (0 when MeanB is 0).
	Ratio float64
}

// Text renders the comparison as speech.
func (c ComparisonAnswer) Text(target, labelA, labelB string) string {
	t := strings.ReplaceAll(target, "_", " ")
	switch {
	case c.MeanA > c.MeanB:
		return fmt.Sprintf("The average %s is higher for %s (%s) than for %s (%s).",
			t, labelA, spokenFloat(c.MeanA), labelB, spokenFloat(c.MeanB))
	case c.MeanA < c.MeanB:
		return fmt.Sprintf("The average %s is lower for %s (%s) than for %s (%s).",
			t, labelA, spokenFloat(c.MeanA), labelB, spokenFloat(c.MeanB))
	default:
		return fmt.Sprintf("The average %s is the same for %s and %s (%s).",
			t, labelA, labelB, spokenFloat(c.MeanA))
	}
}

// AnswerComparison compares the target averages of two data subsets.
func AnswerComparison(rel *relation.Relation, target string, predsA, predsB []relation.Predicate) (ComparisonAnswer, error) {
	ti := rel.Schema().TargetIndex(target)
	if ti < 0 {
		return ComparisonAnswer{}, fmt.Errorf("comparison: no target column %q", target)
	}
	full := rel.FullView()
	a := full.Select(predsA).Stats(ti)
	b := full.Select(predsB).Stats(ti)
	if a.Count == 0 || b.Count == 0 {
		return ComparisonAnswer{}, fmt.Errorf("comparison: a subset is empty (%d vs %d rows)", a.Count, b.Count)
	}
	out := ComparisonAnswer{
		MeanA: a.Mean(), MeanB: b.Mean(),
		CountA: a.Count, CountB: b.Count,
	}
	if out.MeanB != 0 {
		out.Ratio = out.MeanA / out.MeanB
	}
	return out, nil
}
