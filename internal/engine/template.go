package engine

import (
	"fmt"
	"strings"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Template renders fact sets into speech text, the "Query to Speech"
// stage of Figure 2. The paper uses a simple text template with
// placeholders for the typical value and a variable number of dimension
// columns; speeches are prefixed with a description of the summarized
// data subset so users know the semantics of the answer.
type Template struct {
	// Unit is appended after values, e.g. "minutes" or "out of 1000".
	Unit string
	// TargetPhrase overrides the spoken name of the target column, e.g.
	// "cancellation probability" instead of "cancelled".
	TargetPhrase string
	// Percent renders values multiplied by 100 with a percent sign,
	// matching the deployment's probability outputs.
	Percent bool
}

// formatValue renders a typical value.
func (t Template) formatValue(v float64) string {
	if t.Percent {
		return fmt.Sprintf("%.0f%%", v*100)
	}
	s := spokenFloat(v)
	if t.Unit != "" {
		s += " " + t.Unit
	}
	return s
}

// scopePhrase renders a fact scope as natural-ish language ("for region
// Northeast and season Winter"), or "overall" for the empty scope.
func scopePhrase(rel *relation.Relation, s fact.Scope) string {
	if s.Len() == 0 {
		return "overall"
	}
	parts := make([]string, s.Len())
	for i, d := range s.Dims {
		parts[i] = fmt.Sprintf("%s %s",
			strings.ReplaceAll(rel.Schema().Dimensions[d], "_", " "),
			rel.Dim(d).Value(s.Codes[i]))
	}
	return "for " + strings.Join(parts, " and ")
}

// queryPhrase renders the summarized data subset description that
// prefixes each speech.
func queryPhrase(q Query) string {
	if len(q.Predicates) == 0 {
		return fmt.Sprintf("Considering all data on %s.", strings.ReplaceAll(q.Target, "_", " "))
	}
	parts := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		parts[i] = fmt.Sprintf("%s %s", strings.ReplaceAll(p.Column, "_", " "), p.Value)
	}
	return fmt.Sprintf("Considering %s for %s.",
		strings.ReplaceAll(q.Target, "_", " "), strings.Join(parts, " and "))
}

// Render produces the full speech text for a query and its selected
// facts: a data subset prefix, a leading sentence for the first fact, and
// "It is X for Y" follow-ups mirroring the style of Table II.
func (t Template) Render(rel *relation.Relation, q Query, facts []fact.Fact) string {
	target := t.TargetPhrase
	if target == "" {
		target = strings.ReplaceAll(q.Target, "_", " ")
	}
	var b strings.Builder
	b.WriteString(queryPhrase(q))
	if len(facts) == 0 {
		fmt.Fprintf(&b, " No further data is available on %s.", target)
		return b.String()
	}
	for i, f := range facts {
		if i == 0 {
			fmt.Fprintf(&b, " The average %s is about %s %s.",
				target, t.formatValue(f.Value), scopePhrase(rel, f.Scope))
			continue
		}
		fmt.Fprintf(&b, " It is %s %s.", t.formatValue(f.Value), scopePhrase(rel, f.Scope))
	}
	return b.String()
}
