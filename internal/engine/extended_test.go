package engine

import (
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/relation"
)

func TestAnswerExtremumMax(t *testing.T) {
	rel := dataset.Flights(12000, 1)
	a, err := AnswerExtremum(rel, "cancelled", "month", nil, Max, 30)
	if err != nil {
		t.Fatal(err)
	}
	// The planted effect: February has the highest cancellation rate.
	if a.Value != "February" {
		t.Errorf("max-cancellation month = %q, want February (mean %.3f)", a.Value, a.Mean)
	}
	if a.RunnerUpValue == "" || a.RunnerUpMean > a.Mean {
		t.Errorf("runner-up %q/%.3f inconsistent", a.RunnerUpValue, a.RunnerUpMean)
	}
	text := a.Text(Max, "cancelled")
	if !strings.Contains(text, "February") || !strings.Contains(text, "highest") {
		t.Errorf("text = %q", text)
	}
}

func TestAnswerExtremumMinWithinSubset(t *testing.T) {
	rel := dataset.Flights(12000, 1)
	winter, err := rel.PredicateByName("season", "Winter")
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnswerExtremum(rel, "delay", "time_of_day", []relation.Predicate{winter}, Min, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Evening has the planted +6 delay, so it must not be the minimum.
	if a.Value == "Evening" {
		t.Error("Evening should not have minimal winter delay")
	}
	if !strings.Contains(a.Text(Min, "delay"), "lowest") {
		t.Errorf("text = %q", a.Text(Min, "delay"))
	}
}

func TestAnswerExtremumErrors(t *testing.T) {
	rel := dataset.Flights(500, 1)
	if _, err := AnswerExtremum(rel, "nope", "month", nil, Max, 1); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := AnswerExtremum(rel, "delay", "nope", nil, Max, 1); err == nil {
		t.Error("unknown dimension should fail")
	}
	if _, err := AnswerExtremum(rel, "delay", "month", nil, Max, 10_000); err == nil {
		t.Error("impossible minRows should fail")
	}
}

func TestAnswerComparison(t *testing.T) {
	rel := dataset.Flights(12000, 1)
	feb, _ := rel.PredicateByName("month", "February")
	jul, _ := rel.PredicateByName("month", "July")
	c, err := AnswerComparison(rel, "cancelled", []relation.Predicate{feb}, []relation.Predicate{jul})
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanA <= c.MeanB {
		t.Errorf("February cancel rate %.3f should exceed July %.3f", c.MeanA, c.MeanB)
	}
	if c.Ratio <= 1 {
		t.Errorf("ratio = %.2f, want > 1", c.Ratio)
	}
	text := c.Text("cancelled", "February", "July")
	if !strings.Contains(text, "higher for February") {
		t.Errorf("text = %q", text)
	}
	// Reversed order renders "lower".
	c2, err := AnswerComparison(rel, "cancelled", []relation.Predicate{jul}, []relation.Predicate{feb})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c2.Text("cancelled", "July", "February"), "lower for July") {
		t.Errorf("reverse text = %q", c2.Text("cancelled", "July", "February"))
	}
}

func TestAnswerComparisonErrors(t *testing.T) {
	rel := dataset.Flights(500, 1)
	feb, _ := rel.PredicateByName("month", "February")
	if _, err := AnswerComparison(rel, "nope", []relation.Predicate{feb}, nil); err == nil {
		t.Error("unknown target should fail")
	}
	empty := []relation.Predicate{{Dim: 0, Code: 9999}}
	if _, err := AnswerComparison(rel, "delay", empty, []relation.Predicate{feb}); err == nil {
		t.Error("empty subset should fail")
	}
}

func TestComparisonEqualMeans(t *testing.T) {
	b := relation.NewBuilder("flat", relation.Schema{
		Dimensions: []string{"g"}, Targets: []string{"v"},
	})
	b.MustAddRow([]string{"a"}, []float64{5})
	b.MustAddRow([]string{"b"}, []float64{5})
	rel := b.Freeze()
	pa, _ := rel.PredicateByName("g", "a")
	pb, _ := rel.PredicateByName("g", "b")
	c, err := AnswerComparison(rel, "v", []relation.Predicate{pa}, []relation.Predicate{pb})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Text("v", "a", "b"), "same") {
		t.Errorf("equal-mean text = %q", c.Text("v", "a", "b"))
	}
}

func TestStorePersistenceRoundTrip(t *testing.T) {
	rel := dataset.Flights(1500, 1)
	cfg := Config{
		Dataset: rel.Name(), Targets: []string{"delay"},
		Dimensions: []string{"season"}, MaxQueryLen: 1,
		MaxFactDims: 2, MaxFacts: 3,
	}
	s := &Summarizer{Rel: rel, Config: cfg, Alg: AlgGreedyOpt, Template: Template{Unit: "minutes"}}
	store, _, err := s.Preprocess()
	if err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := store.Save(&buf, rel); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(strings.NewReader(buf.String()), rel)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("loaded %d speeches, want %d", loaded.Len(), store.Len())
	}
	for _, sp := range store.Speeches() {
		got, ok := loaded.Exact(sp.Query)
		if !ok {
			t.Fatalf("speech for %v missing after round trip", sp.Query)
		}
		if got.Text != sp.Text || got.Utility != sp.Utility {
			t.Fatalf("speech for %v corrupted: %+v vs %+v", sp.Query, got, sp)
		}
		if len(got.Facts) != len(sp.Facts) {
			t.Fatalf("speech for %v lost facts: %d vs %d", sp.Query, len(got.Facts), len(sp.Facts))
		}
		for i := range got.Facts {
			if !got.Facts[i].Scope.Equal(sp.Facts[i].Scope) || got.Facts[i].Value != sp.Facts[i].Value {
				t.Fatalf("fact %d differs after round trip", i)
			}
		}
	}
}

func TestLoadStoreRejectsBadInput(t *testing.T) {
	rel := dataset.Flights(200, 1)
	if _, err := LoadStore(strings.NewReader("not json"), rel); err == nil {
		t.Error("garbage input should fail")
	}
	if _, err := LoadStore(strings.NewReader(`{"version": 99}`), rel); err == nil {
		t.Error("wrong version should fail")
	}
}

func TestLoadStoreDropsUnresolvableFacts(t *testing.T) {
	rel := dataset.Flights(200, 1)
	in := `{"version":1,"dataset":"flights","speeches":[
		{"query":{"target":"delay"},
		 "facts":[{"columns":["season"],"values":["Winter"],"value":12},
		          {"columns":["season"],"values":["Monsoon"],"value":99},
		          {"columns":["bogus"],"values":["x"],"value":1}],
		 "utility":5,"prior_error":10,"text":"t"}]}`
	store, err := LoadStore(strings.NewReader(in), rel)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := store.Exact(Query{Target: "delay"})
	if !ok {
		t.Fatal("speech missing")
	}
	if len(sp.Facts) != 1 {
		t.Errorf("facts = %d, want 1 (unresolvable dropped)", len(sp.Facts))
	}
}

func TestParallelPreprocessMatchesSequential(t *testing.T) {
	rel := dataset.Flights(2000, 1)
	cfg := Config{
		Dataset: rel.Name(), Targets: []string{"delay"},
		Dimensions: []string{"season", "airline"}, MaxQueryLen: 1,
		MaxFactDims: 2, MaxFacts: 3,
	}
	seq := &Summarizer{Rel: rel, Config: cfg, Alg: AlgGreedyOpt}
	seqStore, seqStats, err := seq.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	par := &Summarizer{Rel: rel, Config: cfg, Alg: AlgGreedyOpt, Workers: 4}
	parStore, parStats, err := par.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.Speeches != parStats.Speeches {
		t.Fatalf("speech counts differ: %d vs %d", seqStats.Speeches, parStats.Speeches)
	}
	if diff := seqStats.SumScaledUtility - parStats.SumScaledUtility; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("utilities differ: %v vs %v", seqStats.SumScaledUtility, parStats.SumScaledUtility)
	}
	for _, sp := range seqStore.Speeches() {
		got, ok := parStore.Exact(sp.Query)
		if !ok || got.Text != sp.Text {
			t.Fatalf("parallel result differs for %v", sp.Query)
		}
	}
}

func TestAnswerTextNeverScientific(t *testing.T) {
	// Housing-scale means (thousands of dollars) must render as spoken
	// numbers, not the "3.34e+03" that %.3g produces above 1000.
	ext := ExtremumAnswer{
		Dimension: "city", Value: "New York", Mean: 3341.7,
		RunnerUpValue: "San Francisco", RunnerUpMean: 3289.2,
	}
	if s := ext.Text(Max, "rent"); strings.Contains(s, "e+0") {
		t.Errorf("extremum text uses scientific notation: %q", s)
	}
	cmp := ComparisonAnswer{MeanA: 1804.3, MeanB: 1253.9, CountA: 10, CountB: 10}
	if s := cmp.Text("rent", "Austin", "San Antonio"); strings.Contains(s, "e+0") {
		t.Errorf("comparison text uses scientific notation: %q", s)
	}
	tmpl := Template{Unit: "dollars"}
	if s := tmpl.formatValue(2541.8); strings.Contains(s, "e+0") {
		t.Errorf("summary value uses scientific notation: %q", s)
	}
}
