// Package engine implements the end-to-end voice querying system of
// Section III (Figure 2): a Configuration describes the queries to
// support, the Problem Generator enumerates one speech summarization
// problem per query, the Speech Summarizer solves them in a
// pre-processing batch, and the run-time store maps incoming queries to
// the most specific pre-generated speech.
//
// It bookends the generate → evaluate → solve → serve flow: EachProblem
// is the generate stage (streaming one problem per supported query),
// Template.Render turns solved fact sets into speech text, and the
// immutable index-backed Store is the serve stage's lookup structure —
// answering by exact match or most-specific generalization in
// near-constant time, persistable as JSON (Save/LoadStore) or as the
// binary snapshot artifact of internal/snapshot.
package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cicero/internal/relation"
)

// PriorMode selects the prior P(r) used during summarization.
type PriorMode string

const (
	// PriorGlobalMean uses the average of the target column over the full
	// relation — what a user with no subset knowledge expects. This is
	// the default and matches the paper's deployment behaviour, where
	// answers lead with the general value before subset-specific facts.
	PriorGlobalMean PriorMode = "global-mean"
	// PriorSubsetMean uses the average within the queried data subset.
	PriorSubsetMean PriorMode = "subset-mean"
	// PriorZero uses a zero prior (the running example of the paper).
	PriorZero PriorMode = "zero"
)

// Config is the pre-processing configuration file of Figure 2: it
// references a table and specifies the queries to generate speeches for.
type Config struct {
	// Dataset names the relation being summarized (informational).
	Dataset string `json:"dataset"`
	// Targets lists the target columns; one query family is generated
	// per target. Empty means all target columns of the relation.
	Targets []string `json:"targets,omitempty"`
	// Dimensions lists the columns on which queries may place equality
	// predicates. Empty means all dimension columns.
	Dimensions []string `json:"dimensions,omitempty"`
	// FactDimensions lists the columns facts may restrict beyond the
	// query predicates. Empty means all dimension columns (not just the
	// query dimensions), so narrowing Dimensions to a single column still
	// yields informative facts about the other columns.
	FactDimensions []string `json:"fact_dimensions,omitempty"`
	// MaxQueryLen is the maximal number of equality predicates per query
	// (the paper's deployments use 2).
	MaxQueryLen int `json:"max_query_len"`
	// MaxFactDims is the maximal number of additional dimensions a fact
	// may restrict beyond the query predicates (the paper's default: 2).
	MaxFactDims int `json:"max_fact_dims"`
	// MaxFacts is the speech length m (the paper uses 3: "user retention
	// decreases sharply after three facts").
	MaxFacts int `json:"max_facts"`
	// Prior selects the prior expectation model.
	Prior PriorMode `json:"prior,omitempty"`
	// MinSubsetRows skips queries whose data subset is smaller; tiny
	// subsets need no summary (the full result fits in one sentence).
	MinSubsetRows int `json:"min_subset_rows,omitempty"`
}

// DefaultConfig returns the paper's default configuration for a relation:
// all targets, all dimensions, queries up to two predicates, facts with
// up to two extra dimensions, three facts per speech.
func DefaultConfig(rel *relation.Relation) Config {
	return Config{
		Dataset:     rel.Name(),
		MaxQueryLen: 2,
		MaxFactDims: 2,
		MaxFacts:    3,
		Prior:       PriorGlobalMean,
	}
}

// Validate resolves the configuration against a relation and applies
// defaults, returning an error for unknown columns or nonsensical
// bounds.
func (c *Config) Validate(rel *relation.Relation) error {
	if c.MaxQueryLen < 0 {
		return fmt.Errorf("config: max_query_len must be non-negative, got %d", c.MaxQueryLen)
	}
	if c.MaxFacts <= 0 {
		c.MaxFacts = 3
	}
	if c.MaxFactDims < 0 {
		return fmt.Errorf("config: max_fact_dims must be non-negative, got %d", c.MaxFactDims)
	}
	if c.Prior == "" {
		c.Prior = PriorGlobalMean
	}
	switch c.Prior {
	case PriorGlobalMean, PriorSubsetMean, PriorZero:
	default:
		return fmt.Errorf("config: unknown prior mode %q", c.Prior)
	}
	if len(c.Targets) == 0 {
		c.Targets = append([]string(nil), rel.Schema().Targets...)
	}
	for _, t := range c.Targets {
		if rel.Schema().TargetIndex(t) < 0 {
			return fmt.Errorf("config: relation %s has no target column %q", rel.Name(), t)
		}
	}
	if len(c.Dimensions) == 0 {
		c.Dimensions = append([]string(nil), rel.Schema().Dimensions...)
	}
	for _, d := range c.Dimensions {
		if rel.Schema().DimIndex(d) < 0 {
			return fmt.Errorf("config: relation %s has no dimension column %q", rel.Name(), d)
		}
	}
	if len(c.FactDimensions) == 0 {
		c.FactDimensions = append([]string(nil), rel.Schema().Dimensions...)
	}
	for _, d := range c.FactDimensions {
		if rel.Schema().DimIndex(d) < 0 {
			return fmt.Errorf("config: relation %s has no fact dimension column %q", rel.Name(), d)
		}
	}
	return nil
}

// LoadConfig reads a JSON configuration.
func LoadConfig(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("decode config: %w", err)
	}
	return c, nil
}

// LoadConfigFile reads a JSON configuration from disk.
func LoadConfigFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return LoadConfig(f)
}

// Save writes the configuration as indented JSON.
func (c Config) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
