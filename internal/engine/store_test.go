package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// mkSpeech builds a stored speech for target t with the given predicates.
func mkSpeech(t string, text string, preds ...NamedPredicate) *StoredSpeech {
	return &StoredSpeech{Query: Query{Target: t, Predicates: preds}, Text: text}
}

func TestStoreIndexExactHit(t *testing.T) {
	st := NewStore()
	st.Add(mkSpeech("t", "winter-aa",
		NamedPredicate{"season", "Winter"}, NamedPredicate{"airline", "AA"}))
	st.Add(mkSpeech("t", "winter", NamedPredicate{"season", "Winter"}))

	// Exact hits win regardless of predicate order in the incoming query.
	q := Query{Target: "t", Predicates: []NamedPredicate{
		{"season", "Winter"}, {"airline", "AA"},
	}}
	sp, ok := st.Lookup(q)
	if !ok || sp.Text != "winter-aa" {
		t.Fatalf("Lookup = %+v, %v; want exact winter-aa", sp, ok)
	}
	// Predicate conjunctions are sets: a duplicated predicate does not
	// change the query's identity, so this is still an exact match.
	dup := Query{Target: "t", Predicates: []NamedPredicate{
		{"airline", "AA"}, {"season", "Winter"}, {"airline", "AA"},
	}}
	if sp, exact, ok := st.Match(dup); !ok || !exact || sp.Text != "winter-aa" {
		t.Fatalf("Match(dup) = %+v exact=%v ok=%v; want exact winter-aa", sp, exact, ok)
	}
}

func TestStoreIndexNearestGeneralizationTieBreak(t *testing.T) {
	st := NewStore()
	st.Add(mkSpeech("t", "overall"))
	st.Add(mkSpeech("t", "by-season", NamedPredicate{"season", "Winter"}))
	st.Add(mkSpeech("t", "by-airline", NamedPredicate{"airline", "AA"}))

	// Both one-predicate speeches generalize the query; the tie breaks to
	// the smaller canonical key ("t|airline=AA" < "t|season=Winter").
	q := Query{Target: "t", Predicates: []NamedPredicate{
		{"season", "Winter"}, {"airline", "AA"}, {"time_of_day", "morning"},
	}}
	sp, ok := st.Lookup(q)
	if !ok || sp.Text != "by-airline" {
		t.Fatalf("tie-break Lookup = %+v, %v; want by-airline", sp, ok)
	}
	// The scan oracle applies the same tie-break.
	if sc, ok := st.lookupScan(q); !ok || sc.Text != sp.Text {
		t.Fatalf("scan disagrees: %+v", sc)
	}
}

func TestStoreIndexMiss(t *testing.T) {
	st := NewStore()
	st.Add(mkSpeech("t", "winter", NamedPredicate{"season", "Winter"}))

	// No zero-predicate speech and no containing generalization: the
	// boolean is false even though the target has speeches.
	q := Query{Target: "t", Predicates: []NamedPredicate{{"airline", "AA"}}}
	if sp, ok := st.Lookup(q); ok {
		t.Fatalf("Lookup = %+v; want miss", sp)
	}
	if !st.HasTarget("t") {
		t.Error("HasTarget(t) must remain true on a lookup miss")
	}
	if st.HasTarget("nope") {
		t.Error("HasTarget(nope) = true")
	}
	if _, ok := st.Lookup(Query{Target: "nope"}); ok {
		t.Error("unknown target must miss")
	}
}

func TestStoreAddReplaceKeepsIndex(t *testing.T) {
	st := NewStore()
	st.Add(mkSpeech("t", "first", NamedPredicate{"season", "Winter"}))
	st.Add(mkSpeech("t", "second", NamedPredicate{"season", "Winter"}))
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	// The generalization index must serve the replacement, not the
	// original, for non-exact queries.
	q := Query{Target: "t", Predicates: []NamedPredicate{
		{"season", "Winter"}, {"airline", "AA"},
	}}
	sp, ok := st.Lookup(q)
	if !ok || sp.Text != "second" {
		t.Fatalf("Lookup after replace = %+v, %v; want second", sp, ok)
	}
}

// TestStoreLookupMatchesScan cross-checks both indexed paths against the
// linear-scan oracle on randomized stores and queries, including queries
// wide enough to force the posting-list path.
func TestStoreLookupMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cols := []string{"a", "b", "c", "d", "e", "f"}
	randPreds := func(n int) []NamedPredicate {
		perm := rng.Perm(len(cols))[:n]
		preds := make([]NamedPredicate, n)
		for i, ci := range perm {
			preds[i] = NamedPredicate{cols[ci], fmt.Sprintf("v%d", rng.Intn(3))}
		}
		return preds
	}
	st := NewStore()
	for i := 0; i < 300; i++ {
		st.Add(mkSpeech("t", fmt.Sprintf("s%d", i), randPreds(rng.Intn(4))...))
	}
	st.Freeze()
	for i := 0; i < 2000; i++ {
		q := Query{Target: "t", Predicates: randPreds(1 + rng.Intn(5))}
		got, gok := st.Lookup(q)
		want, wok := st.lookupScan(q)
		if gok != wok || (gok && got != want) {
			t.Fatalf("query %v: indexed (%v,%v) != scan (%v,%v)", q, got, gok, want, wok)
		}
	}

	// A very wide query exceeds the enumeration budget and exercises the
	// posting-list path; both paths must agree with the scan.
	wide := Query{Target: "t"}
	for i := 0; i < 60; i++ {
		wide.Predicates = append(wide.Predicates,
			NamedPredicate{fmt.Sprintf("w%02d", i), "x"})
	}
	wide.Predicates = append(wide.Predicates, NamedPredicate{"a", "v1"})
	if enumFits(len(canonicalPreds(wide.Predicates)), 3) {
		t.Fatal("wide query unexpectedly within enumeration budget")
	}
	got, gok := st.Lookup(wide)
	want, wok := st.lookupScan(wide)
	if gok != wok || (gok && got != want) {
		t.Fatalf("wide query: indexed (%v,%v) != scan (%v,%v)", got, gok, want, wok)
	}
}

func TestStoreFrozenAddPanics(t *testing.T) {
	st := NewStore()
	st.Add(mkSpeech("t", "x"))
	st.Freeze()
	if !st.Frozen() {
		t.Fatal("store should report frozen")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add on a frozen store must panic")
		}
	}()
	st.Add(mkSpeech("t", "y"))
}

// TestStoreConcurrentLookup exercises concurrent lookups against a frozen
// store; run with -race to verify immutability end to end.
func TestStoreConcurrentLookup(t *testing.T) {
	st := NewStore()
	for i := 0; i < 64; i++ {
		st.Add(mkSpeech("t", fmt.Sprintf("s%d", i),
			NamedPredicate{"a", fmt.Sprintf("v%d", i%8)},
			NamedPredicate{"b", fmt.Sprintf("v%d", i/8)}))
	}
	st.Add(mkSpeech("t", "overall"))
	st.Freeze()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				q := Query{Target: "t", Predicates: []NamedPredicate{
					{"a", fmt.Sprintf("v%d", rng.Intn(10))},
					{"b", fmt.Sprintf("v%d", rng.Intn(10))},
					{"c", "noise"},
				}}
				if _, ok := st.Lookup(q); !ok {
					panic("overall speech must always match")
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
