package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildBenchStore fills a store with n speeches for one target — the
// worst case for the pre-index matcher, which scanned every speech of the
// queried target. Predicate sets have 0–3 predicates drawn from a
// vocabulary wide enough that queries rarely hit exactly.
func buildBenchStore(n int) (*Store, []Query) {
	rng := rand.New(rand.NewSource(42))
	st := NewStore()
	st.Add(&StoredSpeech{Query: Query{Target: "t"}, Text: "overall"})
	for st.Len() < n {
		preds := benchPreds(rng, 1+rng.Intn(3))
		st.Add(&StoredSpeech{
			Query: Query{Target: "t", Predicates: preds},
			Text:  "speech",
		})
	}
	st.Freeze()
	// Query mix: three predicates each, so most lookups resolve through
	// the generalization match rather than the exact map.
	queries := make([]Query, 256)
	for i := range queries {
		queries[i] = Query{Target: "t", Predicates: benchPreds(rng, 3)}
	}
	return st, queries
}

func benchPreds(rng *rand.Rand, k int) []NamedPredicate {
	// 16 columns × 12 values support ~10^6 distinct predicate sets, so
	// the builder reaches 10^5 distinct speeches without stalling.
	cols := rng.Perm(16)[:k]
	preds := make([]NamedPredicate, k)
	for i, c := range cols {
		preds[i] = NamedPredicate{
			Column: fmt.Sprintf("c%02d", c),
			Value:  fmt.Sprintf("v%02d", rng.Intn(12)),
		}
	}
	return preds
}

// BenchmarkStoreLookup compares the indexed generalization match against
// the pre-refactor linear scan as the store grows from 10^3 to 10^5
// speeches. The indexed path is size-independent (a handful of map
// probes); the scan degrades linearly with speeches per target.
// BenchmarkStoreLookupWide measures the posting-intersection fallback
// on queries too wide for subset enumeration. With the pooled dense
// scratch the steady state allocates only the canonical key of the
// exact-match probe.
func BenchmarkStoreLookupWide(b *testing.B) {
	st, _ := buildBenchStore(10_000)
	rng := rand.New(rand.NewSource(7))
	queries := make([]Query, 64)
	for i := range queries {
		q := Query{Target: "t"}
		for j := 0; j < 48; j++ {
			q.Predicates = append(q.Predicates,
				NamedPredicate{fmt.Sprintf("w%02d", j), "x"})
		}
		q.Predicates = append(q.Predicates, benchPreds(rng, 2)...)
		q.Predicates = canonicalPreds(q.Predicates)
		queries[i] = q
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Lookup(queries[i%len(queries)]); !ok {
			b.Fatal("wide lookup missed despite overall speech")
		}
	}
}

func BenchmarkStoreLookup(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		st, queries := buildBenchStore(n)
		b.Run(fmt.Sprintf("n=%d/indexed", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := st.Lookup(queries[i%len(queries)]); !ok {
					b.Fatal("lookup missed despite overall speech")
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/linear-scan", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := st.lookupScan(queries[i%len(queries)]); !ok {
					b.Fatal("scan missed despite overall speech")
				}
			}
		})
	}
}
