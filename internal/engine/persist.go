package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// Speech stores are written to disk after pre-processing so the run-time
// component (a voice endpoint) can serve them without redoing the batch.
// Fact scopes are serialized with column and value names, not dictionary
// codes, so a store survives re-ingestion of the data with different
// code assignment. The same name-resolved form backs the pipeline's
// checkpoint files, which append one PersistedSpeech per completed
// problem.

// PersistedFact is the serialized form of one fact.
type PersistedFact struct {
	Columns []string `json:"columns,omitempty"`
	Values  []string `json:"values,omitempty"`
	Value   float64  `json:"value"`
}

// PersistedSpeech is the serialized form of one stored speech.
type PersistedSpeech struct {
	Query      Query           `json:"query"`
	Facts      []PersistedFact `json:"facts"`
	Utility    float64         `json:"utility"`
	PriorError float64         `json:"prior_error"`
	Text       string          `json:"text"`
}

// persistedStore is the on-disk store format.
type persistedStore struct {
	Version  int               `json:"version"`
	Dataset  string            `json:"dataset"`
	Speeches []PersistedSpeech `json:"speeches"`
}

// storeVersion is bumped on incompatible format changes.
const storeVersion = 1

// Persist converts the speech into its serialized form, resolving scope
// codes to column and value names through the relation's dictionaries.
func (sp *StoredSpeech) Persist(rel *relation.Relation) PersistedSpeech {
	ps := PersistedSpeech{
		Query:      sp.Query.Canonical(),
		Utility:    sp.Utility,
		PriorError: sp.PriorError,
		Text:       sp.Text,
	}
	for _, f := range sp.Facts {
		pf := PersistedFact{Value: f.Value}
		for i, d := range f.Scope.Dims {
			pf.Columns = append(pf.Columns, rel.Schema().Dimensions[d])
			pf.Values = append(pf.Values, rel.Dim(d).Value(f.Scope.Codes[i]))
		}
		ps.Facts = append(ps.Facts, pf)
	}
	return ps
}

// Restore converts the serialized speech back, re-resolving scope names
// against the relation's current dictionaries. Facts whose columns or
// values no longer appear in the data are dropped from the speech (the
// speech text is kept verbatim).
func (ps PersistedSpeech) Restore(rel *relation.Relation) *StoredSpeech {
	sp := &StoredSpeech{
		Query:      ps.Query,
		Utility:    ps.Utility,
		PriorError: ps.PriorError,
		Text:       ps.Text,
	}
	for _, pf := range ps.Facts {
		var dims []int
		var codes []int32
		ok := true
		for i, col := range pf.Columns {
			d := rel.Schema().DimIndex(col)
			if d < 0 {
				ok = false
				break
			}
			code, found := rel.Dim(d).Code(pf.Values[i])
			if !found {
				ok = false
				break
			}
			dims = append(dims, d)
			codes = append(codes, code)
		}
		if !ok {
			continue
		}
		sp.Facts = append(sp.Facts, fact.Fact{
			Scope: fact.NewScope(dims, codes),
			Value: pf.Value,
		})
	}
	return sp
}

// Save writes the store as JSON. rel resolves scope codes to names.
func (s *Store) Save(w io.Writer, rel *relation.Relation) error {
	out := persistedStore{Version: storeVersion, Dataset: rel.Name()}
	for _, sp := range s.Speeches() {
		out.Speeches = append(out.Speeches, sp.Persist(rel))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SaveFile writes the store to a file path.
func (s *Store) SaveFile(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Save(f, rel)
}

// LoadStore reads a store written by Save, re-resolving scope names
// against the relation's current dictionaries. Facts whose values no
// longer appear in the data are dropped from their speech (the speech
// text is kept verbatim). The returned store is frozen, ready for
// concurrent serving; Add panics on it. To extend a persisted store,
// rebuild it with NewStore and Add from Speeches().
func LoadStore(r io.Reader, rel *relation.Relation) (*Store, error) {
	var in persistedStore
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("decode speech store: %w", err)
	}
	if in.Version != storeVersion {
		return nil, fmt.Errorf("speech store version %d, want %d", in.Version, storeVersion)
	}
	store := NewStore()
	for _, ps := range in.Speeches {
		store.Add(ps.Restore(rel))
	}
	return store.Freeze(), nil
}

// LoadStoreFile reads a store from a file path.
func LoadStoreFile(path string, rel *relation.Relation) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadStore(f, rel)
}
