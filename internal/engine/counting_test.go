package engine

import (
	"math/rand"
	"testing"

	"cicero/internal/fact"
	"cicero/internal/relation"
)

// These tests turn the counting theorems of Section VII into executable
// checks: Theorem 9 bounds the number of facts by O((d choose l) · n^l)
// and Theorem 10 the number of queries by O(t · (d choose l) · n^l),
// where d is the dimension count, t the target count, l the number of
// predicates, and n the row count.

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	out := 1
	for i := 0; i < k; i++ {
		out = out * (n - i) / (i + 1)
	}
	return out
}

func randomCountingRelation(rng *rand.Rand, rows, dims, targets, card int) *relation.Relation {
	schema := relation.Schema{}
	for i := 0; i < dims; i++ {
		schema.Dimensions = append(schema.Dimensions, string(rune('a'+i)))
	}
	for i := 0; i < targets; i++ {
		schema.Targets = append(schema.Targets, string(rune('t'))+string(rune('0'+i)))
	}
	b := relation.NewBuilder("count", schema)
	dimVals := make([]string, dims)
	tgtVals := make([]float64, targets)
	for r := 0; r < rows; r++ {
		for i := range dimVals {
			dimVals[i] = string(rune('A' + rng.Intn(card)))
		}
		for i := range tgtVals {
			tgtVals[i] = rng.Float64()
		}
		b.MustAddRow(dimVals, tgtVals)
	}
	return b.Freeze()
}

// TestTheorem9FactCountBound: the number of generated facts never
// exceeds Σ_{j≤l} (d choose j) · n^j; with distinct-value counts capped
// by both n and the dictionary cardinality, the per-group count is
// bounded by the product of cardinalities.
func TestTheorem9FactCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		rows := 20 + rng.Intn(100)
		dims := 2 + rng.Intn(3)
		card := 2 + rng.Intn(4)
		rel := randomCountingRelation(rng, rows, dims, 1, card)
		for l := 0; l <= 2; l++ {
			got := fact.CountFacts(rel.FullView(), fact.GenerateOptions{MaxDims: l})
			facts := fact.Generate(rel.FullView(), 0, fact.GenerateOptions{MaxDims: l})
			if got != len(facts) {
				t.Fatalf("CountFacts %d != len(Generate) %d", got, len(facts))
			}
			bound := 0
			for j := 0; j <= l; j++ {
				nj := 1
				for i := 0; i < j; i++ {
					nj *= rows
				}
				bound += binomial(dims, j) * nj
			}
			if got > bound {
				t.Fatalf("facts %d exceed Theorem 9 bound %d (d=%d l=%d n=%d)",
					got, bound, dims, l, rows)
			}
		}
	}
}

// TestTheorem10QueryCountBound: problems per configuration stay within
// t · Σ_{j≤l} (d choose j) · n^j and scale linearly in targets.
func TestTheorem10QueryCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := randomCountingRelation(rng, 80, 4, 3, 3)
	for l := 0; l <= 2; l++ {
		cfg := Config{Dataset: "count", MaxQueryLen: l, MaxFactDims: 1, MaxFacts: 2}
		count, err := CountProblems(rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		problems, err := Problems(rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if count != len(problems) {
			t.Fatalf("CountProblems %d != len(Problems) %d", count, len(problems))
		}
		perTarget := count / rel.NumTargets()
		if count != perTarget*rel.NumTargets() {
			t.Fatalf("query count %d not divisible by targets %d", count, rel.NumTargets())
		}
		bound := 0
		for j := 0; j <= l; j++ {
			nj := 1
			for i := 0; i < j; i++ {
				nj *= rel.NumRows()
			}
			bound += binomial(rel.NumDims(), j) * nj
		}
		if perTarget > bound {
			t.Fatalf("queries/target %d exceed Theorem 10 bound %d (l=%d)", perTarget, bound, l)
		}
	}
}

// TestQueryCountLinearInTargets verifies the t factor of Theorem 10.
func TestQueryCountLinearInTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rel := randomCountingRelation(rng, 60, 3, 4, 3)
	cfg1 := Config{Dataset: "count", Targets: rel.Schema().Targets[:1], MaxQueryLen: 1, MaxFactDims: 1, MaxFacts: 2}
	cfg4 := Config{Dataset: "count", Targets: rel.Schema().Targets, MaxQueryLen: 1, MaxFactDims: 1, MaxFacts: 2}
	c1, err := CountProblems(rel, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := CountProblems(rel, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if c4 != 4*c1 {
		t.Errorf("4-target count %d != 4 × 1-target count %d", c4, c1)
	}
}
