package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cicero/internal/dataset"
	"cicero/internal/relation"
)

// failingProblems builds n problems whose views are empty, so fact
// generation yields no candidates and every solve attempt errors.
func failingProblems(t *testing.T, rel *relation.Relation, n int) []Problem {
	t.Helper()
	full := rel.FullView()
	// Two contradicting predicates on the same dimension match no row.
	c0, ok0 := rel.Dim(0).Code(rel.Dim(0).Value(0))
	c1, ok1 := rel.Dim(0).Code(rel.Dim(0).Value(1))
	if !ok0 || !ok1 {
		t.Fatal("test relation needs two values on dimension 0")
	}
	empty := full.Select([]relation.Predicate{{Dim: 0, Code: c0}, {Dim: 0, Code: c1}})
	if empty.NumRows() != 0 {
		t.Fatalf("expected empty view, got %d rows", empty.NumRows())
	}
	problems := make([]Problem, n)
	for i := range problems {
		problems[i] = Problem{
			Query:    Query{Target: rel.Schema().Targets[0]},
			View:     empty,
			Target:   0,
			FreeDims: []int{0, 1},
		}
	}
	return problems
}

// TestParallelFailuresExceedWorkers is the regression test for the
// error-channel deadlock: the old solveParallel buffered errors at
// s.Workers, so a batch with more failing problems than workers blocked
// forever. The fixed version must drain every problem, return the first
// error, and never build a store of zero-valued speeches.
func TestParallelFailuresExceedWorkers(t *testing.T) {
	rel := dataset.Flights(500, 1)
	cfg := Config{Dataset: rel.Name(), Targets: []string{"delay"},
		MaxQueryLen: 1, MaxFactDims: 1, MaxFacts: 3}
	problems := failingProblems(t, rel, 16)

	s := &Summarizer{Rel: rel, Config: cfg, Alg: AlgGreedyOpt, Workers: 2}
	type result struct {
		store *Store
		stats BatchStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		store, stats, err := s.PreprocessProblems(problems)
		done <- result{store, stats, err}
	}()
	select {
	case res := <-done:
		if res.err == nil {
			t.Fatal("expected an error from an all-failing batch")
		}
		if !strings.Contains(res.err.Error(), "no candidate facts") {
			t.Errorf("unexpected error: %v", res.err)
		}
		if res.store != nil {
			t.Error("failing batch must not return a store")
		}
		// The batch aborts early, so not every problem runs — but every
		// failure that did run must be counted, without deadlock, no
		// matter how failures compare to the worker count.
		if res.stats.Failed < 1 {
			t.Errorf("Failed = %d, want >= 1", res.stats.Failed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("PreprocessProblems deadlocked with failures > workers")
	}
}

// TestParallelProgressMonotonic checks the Progress contract under
// parallelism: calls are serialized, done is strictly increasing, failed
// problems are included, and the final call reports the full total.
func TestParallelProgressMonotonic(t *testing.T) {
	rel := dataset.Flights(2000, 1)
	cfg := Config{Dataset: rel.Name(), Targets: []string{"delay"},
		Dimensions: []string{"season", "airline"}, MaxQueryLen: 1,
		MaxFactDims: 2, MaxFacts: 3}
	problems, err := Problems(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []int
	s := &Summarizer{Rel: rel, Config: cfg, Alg: AlgGreedyOpt, Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			seen = append(seen, done)
			mu.Unlock()
			if total != len(problems) {
				t.Errorf("total = %d, want %d", total, len(problems))
			}
		}}
	if _, _, err := s.PreprocessProblems(problems); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(problems) {
		t.Fatalf("progress calls = %d, want %d", len(seen), len(problems))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress not strictly increasing: call %d reported %d", i, d)
		}
	}
}

// TestParallelProgressIncludesFailures runs a mixed batch where failures
// cannot starve the progress stream: every problem, failed or solved,
// bumps the done count exactly once.
func TestParallelProgressIncludesFailures(t *testing.T) {
	rel := dataset.Flights(500, 1)
	cfg := Config{Dataset: rel.Name(), Targets: []string{"delay"},
		MaxQueryLen: 1, MaxFactDims: 1, MaxFacts: 3}
	problems := failingProblems(t, rel, 8)
	var mu sync.Mutex
	calls := 0
	s := &Summarizer{Rel: rel, Config: cfg, Alg: AlgGreedyOpt, Workers: 3,
		Progress: func(done, total int) {
			mu.Lock()
			calls++
			mu.Unlock()
		}}
	_, stats, err := s.PreprocessProblems(problems)
	if err == nil {
		t.Fatal("expected error")
	}
	// The all-failing batch aborts early; every problem that ran was a
	// failure and each must have produced exactly one progress call.
	if stats.Failed < 1 {
		t.Errorf("Failed = %d, want >= 1", stats.Failed)
	}
	if calls != stats.Failed {
		t.Errorf("progress calls = %d, want %d (failures must be reported)", calls, stats.Failed)
	}
}
