package engine

import (
	"fmt"
	"testing"
)

// wideStore builds a store whose target holds one- and two-predicate
// speeches plus an overall, and a canonical query wide enough that
// Match must take the posting-intersection path.
func wideStore(t *testing.T) (*Store, Query) {
	t.Helper()
	st := NewStore()
	st.Add(mkSpeech("t", "overall"))
	for i := 0; i < 24; i++ {
		st.Add(mkSpeech("t", fmt.Sprintf("s%d", i),
			NamedPredicate{fmt.Sprintf("c%02d", i%8), fmt.Sprintf("v%d", i/8)}))
	}
	// Three-predicate speeches raise the target's maxPreds so that a wide
	// query overflows the C(n, 3) enumeration budget.
	for i := 0; i < 8; i++ {
		st.Add(mkSpeech("t", fmt.Sprintf("t%d", i),
			NamedPredicate{"c00", fmt.Sprintf("u%d", i)},
			NamedPredicate{"c01", fmt.Sprintf("u%d", i)},
			NamedPredicate{"c02", fmt.Sprintf("u%d", i)}))
	}
	st.Freeze()

	q := Query{Target: "t"}
	for i := 0; i < 64; i++ {
		q.Predicates = append(q.Predicates,
			NamedPredicate{fmt.Sprintf("w%02d", i), "x"})
	}
	q.Predicates = append(q.Predicates, NamedPredicate{"c00", "v0"})
	q.Predicates = canonicalPreds(q.Predicates)
	ti := st.byTarget["t"]
	top := len(q.Predicates)
	if ti.maxPreds < top {
		top = ti.maxPreds
	}
	if enumFits(len(q.Predicates), top) {
		t.Fatal("wide query unexpectedly within the enumeration budget")
	}
	return st, q
}

// TestLookupPostingAllocFree pins the steady-state allocation profile of
// the wide-query fallback: after the pooled scratch warms up, a posting
// intersection allocates nothing per call.
func TestLookupPostingAllocFree(t *testing.T) {
	st, q := wideStore(t)
	ti := st.byTarget[q.Target]
	// Warm the pool outside the measured region.
	if _, ok := st.lookupPosting(ti, q.Predicates); !ok {
		t.Fatal("posting lookup missed despite matching speech")
	}
	avg := testing.AllocsPerRun(200, func() {
		st.lookupPosting(ti, q.Predicates)
	})
	if avg > 0 {
		t.Errorf("lookupPosting allocates %.2f objects/op in steady state, want 0", avg)
	}
}

// TestPostScratchEpochWrap drives the epoch counter over its wrap point:
// the scratch must clear its stamps instead of treating stale epoch-0
// entries as touched.
func TestPostScratchEpochWrap(t *testing.T) {
	sc := &postScratch{}
	sc.reset(3)
	sc.stamp[1] = sc.epoch // touch a slot in the pre-wrap epoch
	sc.epoch = ^uint32(0)  // next reset increments and wraps to 0
	sc.reset(3)
	if sc.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", sc.epoch)
	}
	for i, s := range sc.stamp {
		if s == sc.epoch {
			t.Fatalf("stamp[%d] = %d collides with the post-wrap epoch", i, s)
		}
	}
}

// TestCanonicalPredsViewAliasing pins the zero-copy fast path: canonical
// input is returned as the same backing slice; non-canonical input is
// copied and the original left untouched.
func TestCanonicalPredsViewAliasing(t *testing.T) {
	sorted := []NamedPredicate{{"a", "1"}, {"a", "2"}, {"b", "1"}}
	if got := canonicalPredsView(sorted); &got[0] != &sorted[0] {
		t.Error("already-canonical input must be returned without copying")
	}
	unsorted := []NamedPredicate{{"b", "1"}, {"a", "2"}, {"a", "2"}}
	orig := append([]NamedPredicate(nil), unsorted...)
	got := canonicalPredsView(unsorted)
	if len(got) != 2 || got[0] != (NamedPredicate{"a", "2"}) || got[1] != (NamedPredicate{"b", "1"}) {
		t.Errorf("canonicalPredsView(unsorted) = %v", got)
	}
	for i := range unsorted {
		if unsorted[i] != orig[i] {
			t.Error("canonicalPredsView mutated its input")
		}
	}
	if &got[0] == &unsorted[0] {
		t.Error("non-canonical input must be copied, not sorted in place")
	}
}
