package engine

import (
	"fmt"
	"strings"

	"cicero/internal/relation"
)

// NamedPredicate is an equality predicate expressed with column and value
// names, the form in which queries arrive from the voice front-end.
type NamedPredicate struct {
	Column string `json:"column"`
	Value  string `json:"value"`
}

// Query is a supported voice query: a target column and a conjunction of
// equality predicates defining the data subset of interest.
type Query struct {
	Target     string           `json:"target"`
	Predicates []NamedPredicate `json:"predicates,omitempty"`
}

// Canonical returns a copy with predicates sorted by column then value
// and deduplicated — predicate conjunctions are sets, so a repeated
// predicate does not change the query's identity.
func (q Query) Canonical() Query {
	return Query{Target: q.Target, Predicates: canonicalPreds(q.Predicates)}
}

// Key returns a canonical string identity for store lookups.
func (q Query) Key() string {
	return predsKey(q.Target, canonicalPredsView(q.Predicates))
}

// String renders the query for logs and demos.
func (q Query) String() string {
	if len(q.Predicates) == 0 {
		return fmt.Sprintf("%s overall", q.Target)
	}
	parts := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		parts[i] = fmt.Sprintf("%s=%s", p.Column, p.Value)
	}
	return fmt.Sprintf("%s where %s", q.Target, strings.Join(parts, " and "))
}

// Resolve translates the query's named predicates into relation
// predicates and returns the target column index.
func (q Query) Resolve(rel *relation.Relation) (int, []relation.Predicate, error) {
	ti := rel.Schema().TargetIndex(q.Target)
	if ti < 0 {
		return 0, nil, fmt.Errorf("query: relation %s has no target %q", rel.Name(), q.Target)
	}
	preds := make([]relation.Predicate, 0, len(q.Predicates))
	for _, p := range q.Predicates {
		rp, err := rel.PredicateByName(p.Column, p.Value)
		if err != nil {
			return 0, nil, err
		}
		preds = append(preds, rp)
	}
	return ti, preds, nil
}

// SubsetOf reports whether q's predicates are a subset of other's (same
// target required). The run-time matcher uses this to find the most
// specific pre-generated speech covering an incoming query.
func (q Query) SubsetOf(other Query) bool {
	if q.Target != other.Target {
		return false
	}
	have := make(map[NamedPredicate]bool, len(other.Predicates))
	for _, p := range other.Predicates {
		have[p] = true
	}
	for _, p := range q.Predicates {
		if !have[p] {
			return false
		}
	}
	return true
}
