package engine

import (
	"sort"
	"strings"
	"sync"

	"cicero/internal/fact"
)

// StoredSpeech is one pre-generated speech answer.
type StoredSpeech struct {
	Query      Query
	Facts      []fact.Fact
	Utility    float64
	PriorError float64
	Text       string
}

// Store holds the pre-generated speeches and implements the run-time
// matcher of Section III: an incoming query is answered by the speech for
// exactly its data subset if one exists, otherwise by the speech
// describing the most specific subset that contains the queried one
// (predicates S ⊆ Q with |S| maximal; ties break to the lexicographically
// smallest canonical key, so lookups are deterministic).
//
// The store is a build-then-serve structure: Add interns each query into
// its canonical key and maintains a per-target generalization index, and
// Freeze seals the store for serving. A frozen store is immutable, so any
// number of goroutines may call Exact/Lookup/Speeches concurrently — the
// property the serving layer relies on for lock-free answering.
//
// Lookup does not scan the speeches of a target. Because stored queries
// have at most maxPreds predicates per target (bounded by the
// configuration's MaxQueryLen), the most specific generalization is found
// by probing the canonical keys of the incoming query's predicate subsets
// of size ≤ maxPreds, largest first — O(C(|Q|, maxPreds)) map probes,
// effectively constant for voice-sized queries. For adversarially wide
// queries, where subset enumeration would exceed enumBudget probes,
// Lookup switches to intersecting per-predicate posting lists instead;
// both paths return the identical speech.
type Store struct {
	byKey    map[string]*StoredSpeech
	byTarget map[string]*targetIndex
	frozen   bool

	// scratch pools the dense posting-intersection counters so the
	// wide-query fallback allocates nothing per lookup.
	scratch sync.Pool
}

// targetIndex is the per-target half of the generalization index.
type targetIndex struct {
	// speeches lists the target's speeches in insertion order; Add
	// replaces entries in place so posting-list indices stay valid.
	speeches []*StoredSpeech
	// keys caches each speech's canonical key (computed once in Add) for
	// tie-breaking without re-canonicalizing queries per candidate.
	keys []string
	// posting maps each predicate to the indices of the speeches whose
	// query contains it.
	posting map[NamedPredicate][]int32
	// overall is the index of the zero-predicate speech, -1 if absent.
	overall int32
	// maxPreds is the widest stored predicate set for the target; lookup
	// never probes subsets larger than this.
	maxPreds int
}

// enumBudget bounds the candidate keys probed per lookup before Lookup
// falls back from subset enumeration to posting-list intersection.
const enumBudget = 4096

// NewStore returns an empty speech store.
func NewStore() *Store {
	return &Store{
		byKey:    make(map[string]*StoredSpeech),
		byTarget: make(map[string]*targetIndex),
	}
}

// Add inserts a speech, replacing any previous speech for the same query.
// The speech's query is interned into canonical predicate order. Add
// panics on a frozen store.
func (s *Store) Add(sp *StoredSpeech) {
	if s.frozen {
		panic("engine: Add on a frozen speech store")
	}
	sp.Query = sp.Query.Canonical()
	key := sp.Query.Key()
	ti := s.byTarget[sp.Query.Target]
	if ti == nil {
		ti = &targetIndex{posting: make(map[NamedPredicate][]int32), overall: -1}
		s.byTarget[sp.Query.Target] = ti
	}
	if old, ok := s.byKey[key]; ok {
		// Same canonical key means the same predicate set: swap the
		// speech in place, posting lists keep pointing at its slot.
		for i, e := range ti.speeches {
			if e == old {
				ti.speeches[i] = sp
				break
			}
		}
		s.byKey[key] = sp
		return
	}
	idx := int32(len(ti.speeches))
	ti.speeches = append(ti.speeches, sp)
	ti.keys = append(ti.keys, key)
	for _, p := range sp.Query.Predicates {
		ti.posting[p] = append(ti.posting[p], idx)
	}
	if len(sp.Query.Predicates) == 0 {
		ti.overall = idx
	}
	if len(sp.Query.Predicates) > ti.maxPreds {
		ti.maxPreds = len(sp.Query.Predicates)
	}
	s.byKey[key] = sp
}

// Freeze seals the store: further Add calls panic, and concurrent lookups
// are safe. Freeze returns the store for chaining.
func (s *Store) Freeze() *Store {
	s.frozen = true
	return s
}

// Frozen reports whether the store has been sealed.
func (s *Store) Frozen() bool { return s.frozen }

// Len returns the number of stored speeches.
func (s *Store) Len() int { return len(s.byKey) }

// HasTarget reports whether any speech exists for the target column.
func (s *Store) HasTarget(target string) bool {
	ti := s.byTarget[target]
	return ti != nil && len(ti.speeches) > 0
}

// Exact returns the speech pre-generated for precisely this query.
func (s *Store) Exact(q Query) (*StoredSpeech, bool) {
	sp, ok := s.byKey[q.Key()]
	return sp, ok
}

// Lookup returns the best speech for the query: the exact match when
// available, otherwise the most specific generalization (maximal number
// of shared predicates, ties broken by smallest canonical key). The
// boolean reports whether an exact match or a containing generalization
// was found — NOT merely whether any speech for the target exists; a
// query whose predicates contradict everything stored for its target
// returns false even though the target has speeches (use HasTarget for
// that question).
func (s *Store) Lookup(q Query) (*StoredSpeech, bool) {
	sp, _, ok := s.Match(q)
	return sp, ok
}

// Match is Lookup plus match metadata: exact reports whether the served
// speech describes the query's own data subset rather than a containing
// generalization. The serving layer uses this to answer and annotate in
// a single store probe.
func (s *Store) Match(q Query) (sp *StoredSpeech, exact, ok bool) {
	// One canonicalization serves the exact probe and both index paths;
	// already-canonical input (the common serve re-probe) is not copied.
	preds := canonicalPredsView(q.Predicates)
	if sp, ok := s.byKey[predsKey(q.Target, preds)]; ok {
		return sp, true, true
	}
	ti := s.byTarget[q.Target]
	if ti == nil {
		return nil, false, false
	}
	top := len(preds)
	if ti.maxPreds < top {
		top = ti.maxPreds
	}
	// Probe subsets largest-first; the first size with any hit holds the
	// most specific generalization.
	if enumFits(len(preds), top) {
		sp, ok = s.lookupEnum(q.Target, preds, top)
	} else {
		sp, ok = s.lookupPosting(ti, preds)
	}
	return sp, false, ok
}

// lookupEnum probes the canonical keys of all predicate subsets of size
// k = top..0; the smallest key among the hits of the first non-empty size
// is the deterministic winner.
func (s *Store) lookupEnum(target string, preds []NamedPredicate, top int) (*StoredSpeech, bool) {
	idx := make([]int, 0, top)
	for k := top; k >= 0; k-- {
		var best *StoredSpeech
		bestKey := ""
		var walk func(start int)
		walk = func(start int) {
			if len(idx) == k {
				key := subsetKey(target, preds, idx)
				if sp, ok := s.byKey[key]; ok {
					if best == nil || key < bestKey {
						best, bestKey = sp, key
					}
				}
				return
			}
			for i := start; i <= len(preds)-(k-len(idx)); i++ {
				idx = append(idx, i)
				walk(i + 1)
				idx = idx[:len(idx)-1]
			}
		}
		walk(0)
		if best != nil {
			return best, true
		}
	}
	return nil, false
}

// postScratch is the reusable state of one posting-intersection pass:
// an epoch-stamped dense counter (bumping the epoch invalidates every
// slot without clearing, the same trick as the summarization kernel's
// scratch) plus the list of slots touched this pass, so the scan over
// candidates visits only referenced speeches.
type postScratch struct {
	epoch   uint32
	stamp   []uint32
	count   []int32
	touched []int32
}

// reset sizes the scratch for n speeches and opens a fresh epoch.
func (sc *postScratch) reset(n int) {
	if cap(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
		sc.count = make([]int32, n)
	}
	sc.stamp = sc.stamp[:n]
	sc.count = sc.count[:n]
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide, clear once
		clear(sc.stamp)
		sc.epoch = 1
	}
	sc.touched = sc.touched[:0]
}

// lookupPosting finds the most specific generalization by counting, for
// every speech referenced from the query predicates' posting lists, how
// many of its predicates the query shares. A speech is a generalization
// iff the count equals its own predicate count. The counters live in a
// per-store pooled dense scratch, so the wide-query fallback is
// allocation-free in steady state.
func (s *Store) lookupPosting(ti *targetIndex, preds []NamedPredicate) (*StoredSpeech, bool) {
	sc, _ := s.scratch.Get().(*postScratch)
	if sc == nil {
		sc = &postScratch{}
	}
	defer s.scratch.Put(sc)
	sc.reset(len(ti.speeches))
	for _, p := range preds {
		for _, idx := range ti.posting[p] {
			if sc.stamp[idx] != sc.epoch {
				sc.stamp[idx] = sc.epoch
				sc.count[idx] = 0
				sc.touched = append(sc.touched, idx)
			}
			sc.count[idx]++
		}
	}
	var best *StoredSpeech
	bestShared, bestKey := -1, ""
	for _, idx := range sc.touched {
		sp := ti.speeches[idx]
		n := int(sc.count[idx])
		if n != len(sp.Query.Predicates) {
			continue
		}
		if n > bestShared || (n == bestShared && ti.keys[idx] < bestKey) {
			best, bestShared, bestKey = sp, n, ti.keys[idx]
		}
	}
	if best == nil && ti.overall >= 0 {
		best = ti.speeches[ti.overall]
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// lookupScan is the pre-index linear matcher, kept as the benchmark
// baseline (BenchmarkStoreLookup) and as a cross-check oracle in tests.
// It applies the same tie-break as the indexed paths.
func (s *Store) lookupScan(q Query) (*StoredSpeech, bool) {
	if sp, ok := s.Exact(q); ok {
		return sp, true
	}
	ti := s.byTarget[q.Target]
	if ti == nil {
		return nil, false
	}
	var best *StoredSpeech
	bestShared, bestKey := -1, ""
	for i, sp := range ti.speeches {
		if !sp.Query.SubsetOf(q) {
			continue
		}
		shared := len(sp.Query.Predicates)
		if shared > bestShared || (shared == bestShared && ti.keys[i] < bestKey) {
			best, bestShared, bestKey = sp, shared, ti.keys[i]
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// Speeches returns all stored speeches in deterministic (key) order.
func (s *Store) Speeches() []*StoredSpeech {
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*StoredSpeech, len(keys))
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}

// canonicalPredsView returns the canonical form of preds, reusing the
// input slice when it is already sorted and deduplicated — the common
// case on the serve path, where queries arrive pre-canonicalized from
// the extractor or a stored speech. Callers must not mutate the result.
func canonicalPredsView(preds []NamedPredicate) []NamedPredicate {
	for i := 1; i < len(preds); i++ {
		a, b := preds[i-1], preds[i]
		if a.Column > b.Column || (a.Column == b.Column && a.Value >= b.Value) {
			return canonicalPreds(preds)
		}
	}
	return preds
}

// canonicalPreds returns the predicates sorted by column then value and
// deduplicated (generalization matching is over predicate sets), without
// mutating the input.
func canonicalPreds(preds []NamedPredicate) []NamedPredicate {
	out := append([]NamedPredicate(nil), preds...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Column != out[j].Column {
			return out[i].Column < out[j].Column
		}
		return out[i].Value < out[j].Value
	})
	w := 0
	for i, p := range out {
		if i == 0 || p != out[w-1] {
			out[w] = p
			w++
		}
	}
	return out[:w]
}

// subsetKey builds the canonical key of the predicate subset selected by
// idx (ascending positions into the canonically sorted preds).
func subsetKey(target string, preds []NamedPredicate, idx []int) string {
	var b strings.Builder
	b.WriteString(target)
	for _, i := range idx {
		b.WriteByte('|')
		b.WriteString(preds[i].Column)
		b.WriteByte('=')
		b.WriteString(preds[i].Value)
	}
	return b.String()
}

// predsKey builds the canonical key of canonically sorted predicates.
func predsKey(target string, preds []NamedPredicate) string {
	var b strings.Builder
	b.WriteString(target)
	for _, p := range preds {
		b.WriteByte('|')
		b.WriteString(p.Column)
		b.WriteByte('=')
		b.WriteString(p.Value)
	}
	return b.String()
}

// enumFits reports whether probing all predicate subsets of sizes top..0
// over n predicates stays within enumBudget keys.
func enumFits(n, top int) bool {
	total := 0
	for k := top; k >= 0; k-- {
		c := 1
		for i := 0; i < k; i++ {
			c = c * (n - i) / (i + 1)
			if c > enumBudget {
				return false
			}
		}
		total += c
		if total > enumBudget {
			return false
		}
	}
	return true
}
