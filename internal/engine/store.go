package engine

import (
	"sort"

	"cicero/internal/fact"
)

// StoredSpeech is one pre-generated speech answer.
type StoredSpeech struct {
	Query      Query
	Facts      []fact.Fact
	Utility    float64
	PriorError float64
	Text       string
}

// Store holds the pre-generated speeches and implements the run-time
// matcher of Section III: an incoming query is answered by the speech for
// exactly its data subset if one exists, otherwise by the speech
// describing the most specific subset that contains the queried one
// (predicates S ⊆ Q with |S ∩ Q| maximal).
type Store struct {
	byKey    map[string]*StoredSpeech
	byTarget map[string][]*StoredSpeech
}

// NewStore returns an empty speech store.
func NewStore() *Store {
	return &Store{
		byKey:    make(map[string]*StoredSpeech),
		byTarget: make(map[string][]*StoredSpeech),
	}
}

// Add inserts a speech, replacing any previous speech for the same query.
func (s *Store) Add(sp *StoredSpeech) {
	key := sp.Query.Key()
	if old, ok := s.byKey[key]; ok {
		// Replace in the target list.
		list := s.byTarget[sp.Query.Target]
		for i, e := range list {
			if e == old {
				list[i] = sp
				break
			}
		}
		s.byKey[key] = sp
		return
	}
	s.byKey[key] = sp
	s.byTarget[sp.Query.Target] = append(s.byTarget[sp.Query.Target], sp)
}

// Len returns the number of stored speeches.
func (s *Store) Len() int { return len(s.byKey) }

// Exact returns the speech pre-generated for precisely this query.
func (s *Store) Exact(q Query) (*StoredSpeech, bool) {
	sp, ok := s.byKey[q.Key()]
	return sp, ok
}

// Lookup returns the best speech for the query: the exact match when
// available, otherwise the most specific generalization (maximal number
// of shared predicates). The boolean reports whether any speech for the
// target exists.
func (s *Store) Lookup(q Query) (*StoredSpeech, bool) {
	if sp, ok := s.Exact(q); ok {
		return sp, true
	}
	var best *StoredSpeech
	bestShared := -1
	for _, sp := range s.byTarget[q.Target] {
		if !sp.Query.SubsetOf(q) {
			continue
		}
		if shared := len(sp.Query.Predicates); shared > bestShared {
			best, bestShared = sp, shared
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// Speeches returns all stored speeches in deterministic (key) order.
func (s *Store) Speeches() []*StoredSpeech {
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*StoredSpeech, len(keys))
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}
