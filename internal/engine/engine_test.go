package engine

import (
	"math"
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/fact"
	"cicero/internal/relation"
	"cicero/internal/summarize"
)

func smallFlights(t testing.TB) *relation.Relation {
	t.Helper()
	return dataset.Flights(1500, 1)
}

func smallConfig(rel *relation.Relation) Config {
	return Config{
		Dataset:     rel.Name(),
		Targets:     []string{"delay"},
		Dimensions:  []string{"airline", "season", "time_of_day"},
		MaxQueryLen: 1,
		MaxFactDims: 2,
		MaxFacts:    3,
		Prior:       PriorGlobalMean,
	}
}

func TestConfigValidate(t *testing.T) {
	rel := smallFlights(t)
	cfg := DefaultConfig(rel)
	if err := cfg.Validate(rel); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Targets) != 2 || len(cfg.Dimensions) != 6 {
		t.Errorf("defaults not expanded: %+v", cfg)
	}

	bad := Config{Targets: []string{"nope"}, MaxQueryLen: 1}
	if err := bad.Validate(rel); err == nil {
		t.Error("unknown target should fail validation")
	}
	bad2 := Config{Dimensions: []string{"nope"}, MaxQueryLen: 1}
	if err := bad2.Validate(rel); err == nil {
		t.Error("unknown dimension should fail validation")
	}
	bad3 := Config{MaxQueryLen: -1}
	if err := bad3.Validate(rel); err == nil {
		t.Error("negative query length should fail validation")
	}
	bad4 := Config{Prior: "martian"}
	if err := bad4.Validate(rel); err == nil {
		t.Error("unknown prior mode should fail validation")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	rel := smallFlights(t)
	cfg := smallConfig(rel)
	var buf strings.Builder
	if err := cfg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxQueryLen != cfg.MaxQueryLen || got.Targets[0] != "delay" {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := LoadConfig(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Error("unknown fields should be rejected")
	}
}

func TestQueryKeyCanonical(t *testing.T) {
	a := Query{Target: "delay", Predicates: []NamedPredicate{
		{"season", "Winter"}, {"airline", "AA"},
	}}
	b := Query{Target: "delay", Predicates: []NamedPredicate{
		{"airline", "AA"}, {"season", "Winter"},
	}}
	if a.Key() != b.Key() {
		t.Error("predicate order must not change the key")
	}
	if a.Key() == (Query{Target: "delay"}).Key() {
		t.Error("different queries must differ in key")
	}
}

func TestQuerySubsetOf(t *testing.T) {
	broad := Query{Target: "delay", Predicates: []NamedPredicate{{"season", "Winter"}}}
	narrow := Query{Target: "delay", Predicates: []NamedPredicate{
		{"season", "Winter"}, {"airline", "AA"},
	}}
	if !broad.SubsetOf(narrow) {
		t.Error("broad ⊆ narrow should hold")
	}
	if narrow.SubsetOf(broad) {
		t.Error("narrow ⊄ broad")
	}
	otherTarget := Query{Target: "cancelled", Predicates: broad.Predicates}
	if otherTarget.SubsetOf(narrow) {
		t.Error("different targets are never subsets")
	}
	empty := Query{Target: "delay"}
	if !empty.SubsetOf(narrow) {
		t.Error("empty predicates are a subset of everything (same target)")
	}
}

func TestQueryResolve(t *testing.T) {
	rel := smallFlights(t)
	q := Query{Target: "delay", Predicates: []NamedPredicate{{"season", "Winter"}}}
	ti, preds, err := q.Resolve(rel)
	if err != nil {
		t.Fatal(err)
	}
	if ti != rel.Schema().TargetIndex("delay") || len(preds) != 1 {
		t.Errorf("resolve wrong: ti=%d preds=%v", ti, preds)
	}
	if _, _, err := (Query{Target: "nope"}).Resolve(rel); err == nil {
		t.Error("unknown target should fail")
	}
	if _, _, err := (Query{Target: "delay", Predicates: []NamedPredicate{{"nope", "x"}}}).Resolve(rel); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestProblemsEnumeration(t *testing.T) {
	rel := smallFlights(t)
	cfg := smallConfig(rel)
	problems, err := Problems(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 empty query + one per airline (8) + season (4) + time_of_day (4) = 17.
	want := 1 + rel.Dim(rel.Schema().DimIndex("airline")).Cardinality() +
		rel.Dim(rel.Schema().DimIndex("season")).Cardinality() +
		rel.Dim(rel.Schema().DimIndex("time_of_day")).Cardinality()
	if len(problems) != want {
		t.Errorf("problems = %d, want %d", len(problems), want)
	}
	count, err := CountProblems(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if count != want {
		t.Errorf("CountProblems = %d, want %d", count, want)
	}
	// Free dims exclude query dims.
	for _, p := range problems {
		for _, np := range p.Query.Predicates {
			qd := rel.Schema().DimIndex(np.Column)
			for _, fd := range p.FreeDims {
				if fd == qd {
					t.Fatalf("query dim %s appears in free dims", np.Column)
				}
			}
		}
		if p.View.NumRows() == 0 {
			t.Fatal("empty view generated")
		}
	}
}

func TestProblemsMinSubsetRows(t *testing.T) {
	rel := smallFlights(t)
	cfg := smallConfig(rel)
	cfg.MinSubsetRows = 10_000 // larger than the relation
	problems, err := Problems(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("problems = %d, want 0 with huge MinSubsetRows", len(problems))
	}
}

func TestPreprocessAndLookup(t *testing.T) {
	rel := smallFlights(t)
	cfg := smallConfig(rel)
	s := &Summarizer{Rel: rel, Config: cfg, Alg: AlgGreedyOpt, Template: Template{Unit: "minutes"}}
	store, stats, err := s.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != stats.Speeches || stats.Speeches == 0 {
		t.Fatalf("stats/store mismatch: %d vs %d", store.Len(), stats.Speeches)
	}
	if stats.AvgScaledUtility() <= 0 || stats.AvgScaledUtility() > 1+1e-9 {
		t.Errorf("avg scaled utility = %v", stats.AvgScaledUtility())
	}

	// Exact lookup.
	q := Query{Target: "delay", Predicates: []NamedPredicate{{"season", "Winter"}}}
	sp, ok := store.Exact(q)
	if !ok {
		t.Fatal("exact speech for winter missing")
	}
	if !strings.Contains(sp.Text, "Considering") || !strings.Contains(sp.Text, "minutes") {
		t.Errorf("speech text = %q", sp.Text)
	}

	// Unsupported two-predicate query falls back to the most specific
	// covering speech (the winter one, one shared predicate).
	q2 := Query{Target: "delay", Predicates: []NamedPredicate{
		{"season", "Winter"}, {"airline", "AA"},
	}}
	sp2, latency, ok := Answer(store, q2)
	if !ok {
		t.Fatal("fallback lookup failed")
	}
	if len(sp2.Query.Predicates) != 1 {
		t.Errorf("fallback should use a 1-predicate speech, got %v", sp2.Query)
	}
	if latency <= 0 {
		t.Error("latency must be measured")
	}

	// Query for an unknown target has no answer.
	if _, _, ok := Answer(store, Query{Target: "nope"}); ok {
		t.Error("unknown target should not match")
	}
}

func TestStoreReplace(t *testing.T) {
	st := NewStore()
	q := Query{Target: "t"}
	st.Add(&StoredSpeech{Query: q, Text: "first"})
	st.Add(&StoredSpeech{Query: q, Text: "second"})
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	sp, _ := st.Exact(q)
	if sp.Text != "second" {
		t.Errorf("replacement failed: %q", sp.Text)
	}
	if got := len(st.Speeches()); got != 1 {
		t.Errorf("Speeches len = %d", got)
	}
}

func TestStoreMostSpecific(t *testing.T) {
	st := NewStore()
	overall := Query{Target: "t"}
	winter := Query{Target: "t", Predicates: []NamedPredicate{{"season", "Winter"}}}
	st.Add(&StoredSpeech{Query: overall, Text: "overall"})
	st.Add(&StoredSpeech{Query: winter, Text: "winter"})

	// Query with two predicates: winter speech (1 shared) beats overall (0).
	q := Query{Target: "t", Predicates: []NamedPredicate{
		{"season", "Winter"}, {"airline", "AA"},
	}}
	sp, ok := st.Lookup(q)
	if !ok || sp.Text != "winter" {
		t.Errorf("most specific = %+v, ok=%v", sp, ok)
	}
	// A query with an unrelated predicate matches only the overall speech.
	q2 := Query{Target: "t", Predicates: []NamedPredicate{{"airline", "AA"}}}
	sp2, ok := st.Lookup(q2)
	if !ok || sp2.Text != "overall" {
		t.Errorf("generalization lookup = %+v, ok=%v", sp2, ok)
	}
}

func TestAlgorithmsAgreeOnUtilityOrdering(t *testing.T) {
	// All greedy variants must produce identical utility; exact must be
	// at least as good.
	rel := dataset.Flights(800, 2)
	cfg := Config{
		Dataset:     rel.Name(),
		Targets:     []string{"delay"},
		Dimensions:  []string{"season", "time_of_day"},
		MaxQueryLen: 1,
		MaxFactDims: 2,
		MaxFacts:    2,
	}
	problems, err := Problems(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	problems = problems[:3]
	utilities := map[Algorithm]float64{}
	for _, alg := range Algorithms() {
		s := &Summarizer{Rel: rel, Config: cfg, Alg: alg}
		_, stats, err := s.PreprocessProblems(problems)
		if err != nil {
			t.Fatal(err)
		}
		utilities[alg] = stats.SumScaledUtility
	}
	if math.Abs(utilities[AlgGreedyBase]-utilities[AlgGreedyPrune]) > 1e-9 ||
		math.Abs(utilities[AlgGreedyBase]-utilities[AlgGreedyOpt]) > 1e-9 {
		t.Errorf("greedy variants disagree: %+v", utilities)
	}
	if utilities[AlgExact] < utilities[AlgGreedyBase]-1e-9 {
		t.Errorf("exact below greedy: %+v", utilities)
	}
}

func TestTemplateRender(t *testing.T) {
	rel := smallFlights(t)
	q := Query{Target: "cancelled", Predicates: []NamedPredicate{{"season", "Winter"}}}
	seasonDim := rel.Schema().DimIndex("month")
	feb, _ := rel.Dim(seasonDim).Code("February")
	facts := []fact.Fact{
		{Scope: fact.NewScope(nil, nil), Value: 0.06},
		{Scope: fact.NewScope([]int{seasonDim}, []int32{feb}), Value: 0.18},
	}
	tpl := Template{TargetPhrase: "cancellation probability", Percent: true}
	got := tpl.Render(rel, q, facts)
	for _, want := range []string{"Considering", "cancellation probability", "6%", "18%", "month February", "overall"} {
		if !strings.Contains(got, want) {
			t.Errorf("rendered speech missing %q: %q", want, got)
		}
	}
	// Empty fact list renders a fallback sentence.
	empty := tpl.Render(rel, q, nil)
	if !strings.Contains(empty, "No further data") {
		t.Errorf("empty render = %q", empty)
	}
}

func TestSolveExactFallsBackToGreedyOnTimeout(t *testing.T) {
	rel := dataset.StackOverflow(2500, 3)
	cfg := Config{
		Dataset:     rel.Name(),
		Targets:     []string{"optimism"},
		MaxQueryLen: 0,
		MaxFactDims: 2,
		MaxFacts:    3,
	}
	problems, err := Problems(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &Summarizer{Rel: rel, Config: cfg, Alg: AlgExact,
		Opts: summarize.Options{Timeout: 1}} // 1ns: immediate timeout
	_, stats, err := s.PreprocessProblems(problems)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Problems != 1 {
		t.Fatalf("problems = %d", stats.Problems)
	}
	// Even with the timeout, the answer has the greedy quality.
	if stats.AvgScaledUtility() <= 0 {
		t.Error("timed-out exact should fall back to greedy result")
	}
}
