package engine

// StoreView is the read-only accessor surface of a frozen speech store —
// the contract the serving stack (serve.Answerer, the HTTP tier, the
// facade) depends on, decoupling it from how the speeches are laid out
// in memory. Two implementations exist: *Store, the mutable-then-frozen
// heap structure built by pre-processing, and snapshot.Map, which
// serves the same answers directly out of an mmapped snapshot artifact
// without materializing a heap store.
//
// Every implementation must be safe for concurrent use once serving
// begins, and all of them must agree bit-for-bit: same speeches, same
// most-specific-generalization semantics, same lexicographic-key
// tie-breaks. The cross-check oracle in internal/snapshot pins that
// parity.
type StoreView interface {
	// Exact returns the speech pre-generated for precisely this query.
	Exact(q Query) (*StoredSpeech, bool)
	// Lookup returns the best speech for the query: the exact match, or
	// the most specific containing generalization.
	Lookup(q Query) (*StoredSpeech, bool)
	// Match is Lookup plus match metadata: exact reports whether the
	// served speech describes the query's own data subset.
	Match(q Query) (sp *StoredSpeech, exact, ok bool)
	// Speeches returns all stored speeches in canonical-key order.
	Speeches() []*StoredSpeech
	// HasTarget reports whether any speech exists for the target column.
	HasTarget(target string) bool
	// Len returns the number of stored speeches.
	Len() int
}

// Sealable is implemented by store views that distinguish a mutable
// build phase from frozen serving (the heap *Store). The serving layer
// seals any store it is handed; views that are frozen by construction
// (snapshot.Map) simply do not implement it.
type Sealable interface {
	Freeze() *Store
}

// Seal freezes the view when it distinguishes build from serve phases;
// immutable-by-construction views pass through untouched.
func Seal(v StoreView) StoreView {
	if s, ok := v.(Sealable); ok {
		s.Freeze()
	}
	return v
}

// The helpers below define the canonical key space every StoreView
// implementation must match on. They are exported so an alternate
// implementation (the mmap-backed snapshot reader) reproduces the heap
// store's probing and tie-break semantics exactly instead of
// re-deriving them.

// CanonicalPreds returns the predicates sorted by column then value and
// deduplicated. When the input is already canonical — the common case
// on the serve path, which re-probes canonical queries — the input
// slice is returned as is, without copying; callers must treat the
// result as read-only.
func CanonicalPreds(preds []NamedPredicate) []NamedPredicate {
	return canonicalPredsView(preds)
}

// PredsKey builds the canonical store key of a target and canonically
// sorted predicates.
func PredsKey(target string, preds []NamedPredicate) string {
	return predsKey(target, preds)
}

// SubsetPredsKey builds the canonical key of the predicate subset
// selected by idx (ascending positions into canonically sorted preds).
func SubsetPredsKey(target string, preds []NamedPredicate, idx []int) string {
	return subsetKey(target, preds, idx)
}

// EnumFits reports whether probing all predicate subsets of sizes
// top..0 over n predicates stays within the lookup enumeration budget;
// beyond it, Match implementations switch to posting-list intersection.
func EnumFits(n, top int) bool {
	return enumFits(n, top)
}
