package engine

import (
	"fmt"
	"sort"
	"strings"

	"cicero/internal/relation"
)

// This file grows the run-time answer surface beyond the extremum and
// comparison shapes in extended.go (ROADMAP item 5): numeric entity
// constraints ("cities with population over 500 thousand"), top-k
// extrema ("the three cities with the highest rent"), and trends over
// an ordered time dimension ("how did rent change since January 2023").
// Like the extended shapes these are cheap aggregations over the
// relation and need no pre-processing.

// ConstraintOp compares an entity's aggregate against a threshold.
type ConstraintOp int

const (
	// Over requires the aggregate to be strictly greater than the value.
	Over ConstraintOp = iota
	// Under requires it to be strictly less.
	Under
	// AtLeast and AtMost are the inclusive variants.
	AtLeast
	AtMost
)

// String returns the spoken form of the operator.
func (op ConstraintOp) String() string {
	switch op {
	case Over:
		return "over"
	case Under:
		return "under"
	case AtLeast:
		return "at least"
	default:
		return "at most"
	}
}

// Constraint is a numeric filter on a target aggregate, qualifying the
// entities of some dimension ("population over 500000" keeps the cities
// whose average population exceeds the threshold).
type Constraint struct {
	// Target is the constraining target column.
	Target string
	Op     ConstraintOp
	Value  float64
}

// Satisfied reports whether an aggregate passes the constraint.
func (c Constraint) Satisfied(mean float64) bool {
	switch c.Op {
	case Over:
		return mean > c.Value
	case Under:
		return mean < c.Value
	case AtLeast:
		return mean >= c.Value
	default:
		return mean <= c.Value
	}
}

// Describe renders the constraint as speech.
func (c Constraint) Describe() string {
	return fmt.Sprintf("%s %s %s",
		strings.ReplaceAll(c.Target, "_", " "), c.Op, SpokenNumber(c.Value))
}

// SpokenNumber formats a threshold the way it would be said aloud.
func SpokenNumber(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%g million", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%g thousand", v/1e3)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// spokenFloat renders a computed mean for speech: roughly three
// significant digits and never scientific notation, which %.3g falls
// into above 1000 (a voice channel cannot say "3.34e+03").
func spokenFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3g million", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3g thousand", v/1e3)
	case av >= 1e3:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// qualifyingCodes returns the dimension codes whose whole-relation
// average of the constraint target satisfies the constraint. The full
// view is used on purpose: a city's population does not depend on which
// subset of rows the main query selects.
func qualifyingCodes(rel *relation.Relation, di int, cons Constraint, minRows int) (map[int32]bool, error) {
	ci := rel.Schema().TargetIndex(cons.Target)
	if ci < 0 {
		return nil, fmt.Errorf("constraint: no target column %q", cons.Target)
	}
	groups := rel.FullView().GroupBy([]int{di}, ci)
	ok := make(map[int32]bool)
	for _, g := range groups {
		if g.Count < minRows {
			continue
		}
		if cons.Satisfied(g.Mean()) {
			ok[g.Key.Codes[0]] = true
		}
	}
	if len(ok) == 0 {
		return nil, fmt.Errorf("constraint: no group satisfies %s", cons.Describe())
	}
	return ok, nil
}

// TopKEntry is one ranked group in a top-k answer.
type TopKEntry struct {
	Value string
	Mean  float64
	Count int
}

// TopKAnswer ranks the k dimension values with the extremal target
// average, the multi-winner generalization of ExtremumAnswer.
type TopKAnswer struct {
	// Dimension is the column the ranking ranges over.
	Dimension string
	// K is the requested count; Entries may be shorter when fewer
	// groups qualify.
	K       int
	Entries []TopKEntry
	// Total counts all qualifying groups, so answers can say
	// "of 18 cities".
	Total int
}

// Text renders the ranking as speech.
func (a TopKAnswer) Text(kind ExtremumKind, target string) string {
	word := "highest"
	if kind == Min {
		word = "lowest"
	}
	dim := strings.ReplaceAll(a.Dimension, "_", " ")
	t := strings.ReplaceAll(target, "_", " ")
	parts := make([]string, len(a.Entries))
	for i, e := range a.Entries {
		parts[i] = fmt.Sprintf("%s at %s", e.Value, spokenFloat(e.Mean))
	}
	var list string
	switch len(parts) {
	case 1:
		return fmt.Sprintf("The %s value with the %s average %s is %s.",
			dim, word, t, parts[0])
	case 2:
		list = parts[0] + " and " + parts[1]
	default:
		list = strings.Join(parts[:len(parts)-1], ", ") + ", and " + parts[len(parts)-1]
	}
	return fmt.Sprintf("The %d %s values with the %s average %s are %s.",
		len(a.Entries), dim, word, t, list)
}

// AnswerTopK ranks dimension values by target average within the subset
// selected by preds and returns the top (or bottom) k. Groups smaller
// than minRows are ignored. A non-nil constraint first restricts the
// ranking to qualifying entities ("cities with population over 500k").
func AnswerTopK(rel *relation.Relation, target, dim string, preds []relation.Predicate, kind ExtremumKind, k, minRows int, cons *Constraint) (TopKAnswer, error) {
	if k <= 0 {
		return TopKAnswer{}, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	ti := rel.Schema().TargetIndex(target)
	if ti < 0 {
		return TopKAnswer{}, fmt.Errorf("topk: no target column %q", target)
	}
	di := rel.Schema().DimIndex(dim)
	if di < 0 {
		return TopKAnswer{}, fmt.Errorf("topk: no dimension column %q", dim)
	}
	var allowed map[int32]bool
	if cons != nil {
		var err error
		allowed, err = qualifyingCodes(rel, di, *cons, minRows)
		if err != nil {
			return TopKAnswer{}, err
		}
	}
	groups := rel.FullView().Select(preds).GroupBy([]int{di}, ti)
	var entries []TopKEntry
	for _, g := range groups {
		if g.Count < minRows {
			continue
		}
		code := g.Key.Codes[0]
		if allowed != nil && !allowed[code] {
			continue
		}
		entries = append(entries, TopKEntry{
			Value: rel.Dim(di).Value(code),
			Mean:  g.Mean(),
			Count: g.Count,
		})
	}
	if len(entries) == 0 {
		return TopKAnswer{}, fmt.Errorf("topk: no group of %q has at least %d rows", dim, minRows)
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Mean != entries[j].Mean {
			if kind == Max {
				return entries[i].Mean > entries[j].Mean
			}
			return entries[i].Mean < entries[j].Mean
		}
		return entries[i].Value < entries[j].Value
	})
	total := len(entries)
	if len(entries) > k {
		entries = entries[:k]
	}
	return TopKAnswer{Dimension: dim, K: k, Entries: entries, Total: total}, nil
}

// TrendPoint is one period of a trend answer.
type TrendPoint struct {
	Period string
	Mean   float64
	Count  int
}

// TrendAnswer describes how a target average moved across an ordered
// time dimension.
type TrendAnswer struct {
	Target        string
	TimeDimension string
	// Points are chronological; periods with too few rows are skipped.
	Points []TrendPoint
	// First and Last are the endpoint means, ChangePct the relative
	// move between them in percent (0 when First is 0).
	First, Last float64
	ChangePct   float64
	// Direction is "rose", "fell", or "held steady".
	Direction string
	// PeakPeriod and PeakMean locate the extreme point of the window.
	PeakPeriod string
	PeakMean   float64
}

// Text renders the trend as speech.
func (a TrendAnswer) Text() string {
	t := strings.ReplaceAll(a.Target, "_", " ")
	first := a.Points[0]
	last := a.Points[len(a.Points)-1]
	s := fmt.Sprintf("The average %s %s", t, a.Direction)
	if a.Direction != "held steady" && a.ChangePct != 0 {
		s += fmt.Sprintf(" about %.3g percent", absFloat(a.ChangePct))
	}
	s += fmt.Sprintf(" between %s and %s, from %s to %s.",
		first.Period, last.Period, spokenFloat(a.First), spokenFloat(a.Last))
	if a.PeakPeriod != "" && a.PeakPeriod != first.Period && a.PeakPeriod != last.Period {
		s += fmt.Sprintf(" It peaked at %s in %s.", spokenFloat(a.PeakMean), a.PeakPeriod)
	}
	return s
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// AnswerTrend computes the target average per period of an ordered time
// dimension, restricted to the subset selected by preds. The caller
// supplies the periods in chronological order (the voice layer owns the
// calendar); periods with fewer than minRows rows are skipped and at
// least two must survive to make a trend.
func AnswerTrend(rel *relation.Relation, target, timeDim string, periods []string, preds []relation.Predicate, minRows int) (TrendAnswer, error) {
	ti := rel.Schema().TargetIndex(target)
	if ti < 0 {
		return TrendAnswer{}, fmt.Errorf("trend: no target column %q", target)
	}
	di := rel.Schema().DimIndex(timeDim)
	if di < 0 {
		return TrendAnswer{}, fmt.Errorf("trend: no dimension column %q", timeDim)
	}
	if len(periods) < 2 {
		return TrendAnswer{}, fmt.Errorf("trend: need at least 2 periods, got %d", len(periods))
	}
	groups := rel.FullView().Select(preds).GroupBy([]int{di}, ti)
	byPeriod := make(map[string]TrendPoint, len(groups))
	col := rel.Dim(di)
	for _, g := range groups {
		if g.Count < minRows {
			continue
		}
		v := col.Value(g.Key.Codes[0])
		byPeriod[v] = TrendPoint{Period: v, Mean: g.Mean(), Count: g.Count}
	}
	a := TrendAnswer{Target: target, TimeDimension: timeDim}
	for _, p := range periods {
		if pt, ok := byPeriod[p]; ok {
			a.Points = append(a.Points, pt)
		}
	}
	if len(a.Points) < 2 {
		return TrendAnswer{}, fmt.Errorf("trend: only %d of %d periods have at least %d rows", len(a.Points), len(periods), minRows)
	}
	a.First = a.Points[0].Mean
	a.Last = a.Points[len(a.Points)-1].Mean
	if a.First != 0 {
		a.ChangePct = (a.Last - a.First) / absFloat(a.First) * 100
	}
	switch {
	case absFloat(a.ChangePct) < 1:
		a.Direction = "held steady"
	case a.Last > a.First:
		a.Direction = "rose"
	default:
		a.Direction = "fell"
	}
	peak := a.Points[0]
	for _, pt := range a.Points[1:] {
		if pt.Mean > peak.Mean {
			peak = pt
		}
	}
	a.PeakPeriod, a.PeakMean = peak.Period, peak.Mean
	return a, nil
}

// ConstrainedAnswer is the result of a retrieval restricted to entities
// that satisfy a numeric constraint.
type ConstrainedAnswer struct {
	Target string
	// Dimension is the entity column the constraint qualifies.
	Dimension string
	// Qualifying lists the entity values that passed, sorted.
	Qualifying []string
	// Mean and Count aggregate the target over preds AND the
	// qualifying entities.
	Mean  float64
	Count int
}

// Text renders the constrained answer as speech.
func (a ConstrainedAnswer) Text(cons Constraint) string {
	t := strings.ReplaceAll(a.Target, "_", " ")
	dim := strings.ReplaceAll(a.Dimension, "_", " ")
	s := fmt.Sprintf("Across the %d %s values with %s, the average %s is about %s.",
		len(a.Qualifying), dim, cons.Describe(), t, spokenFloat(a.Mean))
	if len(a.Qualifying) <= 4 {
		s += " They are " + strings.Join(a.Qualifying, ", ") + "."
	}
	return s
}

// AnswerConstrained averages the target over the subset selected by
// preds, restricted to entities of entityDim whose constraint aggregate
// qualifies ("rent for two-bedroom apartments in cities with population
// over 500 thousand").
func AnswerConstrained(rel *relation.Relation, target, entityDim string, preds []relation.Predicate, cons Constraint, minRows int) (ConstrainedAnswer, error) {
	ti := rel.Schema().TargetIndex(target)
	if ti < 0 {
		return ConstrainedAnswer{}, fmt.Errorf("constrained: no target column %q", target)
	}
	di := rel.Schema().DimIndex(entityDim)
	if di < 0 {
		return ConstrainedAnswer{}, fmt.Errorf("constrained: no dimension column %q", entityDim)
	}
	allowed, err := qualifyingCodes(rel, di, cons, minRows)
	if err != nil {
		return ConstrainedAnswer{}, err
	}
	groups := rel.FullView().Select(preds).GroupBy([]int{di}, ti)
	a := ConstrainedAnswer{Target: target, Dimension: entityDim}
	var sum float64
	col := rel.Dim(di)
	for _, g := range groups {
		if !allowed[g.Key.Codes[0]] {
			continue
		}
		sum += g.Sum
		a.Count += g.Count
	}
	for code := range allowed {
		a.Qualifying = append(a.Qualifying, col.Value(code))
	}
	sort.Strings(a.Qualifying)
	if a.Count == 0 {
		return ConstrainedAnswer{}, fmt.Errorf("constrained: no rows match both the query and %s", cons.Describe())
	}
	a.Mean = sum / float64(a.Count)
	return a, nil
}
