//go:build !unix

package snapshot

import (
	"errors"
	"os"
)

// mmapSupported gates the zero-copy load path; without a platform mmap
// the loader falls back to reading the file into memory — identical
// semantics, no page sharing.
const mmapSupported = false

func mmapFile(_ *os.File, _ int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("snapshot: no mmap on this platform")
}
