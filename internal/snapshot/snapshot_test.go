package snapshot

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/relation"
)

// buildStore pre-processes a small store for rel. It uses the
// engine-level summarizer rather than the pipeline to keep this
// package's test dependencies acyclic (the pipeline itself writes
// snapshots via Options.SnapshotPath).
func buildStore(t *testing.T, rel *relation.Relation, maxLen int) *engine.Store {
	t.Helper()
	cfg := engine.DefaultConfig(rel)
	cfg.MaxQueryLen = maxLen
	s := &engine.Summarizer{Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt}
	store, _, err := s.Preprocess()
	if err != nil {
		t.Fatalf("Preprocess(%s): %v", rel.Name(), err)
	}
	if store.Len() == 0 {
		t.Fatalf("Preprocess(%s): empty store", rel.Name())
	}
	return store
}

// exampleStores returns the two example datasets with small row counts
// and their pre-processed stores.
func exampleStores(t *testing.T) []struct {
	rel   *relation.Relation
	store *engine.Store
} {
	t.Helper()
	acs := dataset.ACS(400, 1)
	fl := dataset.Flights(600, 1)
	return []struct {
		rel   *relation.Relation
		store *engine.Store
	}{
		{acs, buildStore(t, acs, 2)},
		{fl, buildStore(t, fl, 1)},
	}
}

func encode(t *testing.T, store *engine.Store, rel *relation.Relation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, store, rel); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// randomQuery synthesizes a query over rel's real dimension values,
// with 0-3 predicates so both exact hits and generalizations occur.
func randomQuery(rel *relation.Relation, rng *rand.Rand) engine.Query {
	targets := rel.Schema().Targets
	q := engine.Query{Target: targets[rng.Intn(len(targets))]}
	for n := rng.Intn(4); n > 0; n-- {
		d := rng.Intn(rel.NumDims())
		vals := rel.Dim(d).Values()
		if len(vals) == 0 {
			continue
		}
		q.Predicates = append(q.Predicates, engine.NamedPredicate{
			Column: rel.Schema().Dimensions[d],
			Value:  vals[rng.Intn(len(vals))],
		})
	}
	return q
}

// TestRoundTripBitIdentical is the round-trip property test: on stores
// built from both example datasets, save → load must reproduce every
// stored speech and answer every random query bit-identically.
func TestRoundTripBitIdentical(t *testing.T) {
	for _, tc := range exampleStores(t) {
		t.Run(tc.rel.Name(), func(t *testing.T) {
			data := encode(t, tc.store, tc.rel)
			loaded, err := Decode(data, tc.rel)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !loaded.Frozen() {
				t.Fatal("loaded store is not frozen")
			}
			if loaded.Len() != tc.store.Len() {
				t.Fatalf("loaded %d speeches, want %d", loaded.Len(), tc.store.Len())
			}

			// Every stored speech survives exactly: query, text, facts,
			// and float fields compared at the bit level.
			want, got := tc.store.Speeches(), loaded.Speeches()
			for i := range want {
				w, g := want[i], got[i]
				if w.Query.Key() != g.Query.Key() {
					t.Fatalf("speech %d: query %q, want %q", i, g.Query.Key(), w.Query.Key())
				}
				if w.Text != g.Text {
					t.Fatalf("speech %d: text %q, want %q", i, g.Text, w.Text)
				}
				if math.Float64bits(w.Utility) != math.Float64bits(g.Utility) {
					t.Fatalf("speech %d: utility bits %x, want %x (%v vs %v)",
						i, math.Float64bits(g.Utility), math.Float64bits(w.Utility), g.Utility, w.Utility)
				}
				if math.Float64bits(w.PriorError) != math.Float64bits(g.PriorError) {
					t.Fatalf("speech %d: prior error %v, want %v", i, g.PriorError, w.PriorError)
				}
				if len(w.Facts) != len(g.Facts) {
					t.Fatalf("speech %d: %d facts, want %d", i, len(g.Facts), len(w.Facts))
				}
				for j := range w.Facts {
					if !w.Facts[j].Scope.Equal(g.Facts[j].Scope) {
						t.Fatalf("speech %d fact %d: scope %v, want %v", i, j, g.Facts[j].Scope, w.Facts[j].Scope)
					}
					if math.Float64bits(w.Facts[j].Value) != math.Float64bits(g.Facts[j].Value) {
						t.Fatalf("speech %d fact %d: value bits differ", i, j)
					}
				}
			}

			// Property: random queries answer identically through the
			// full Match path (exact hits, generalizations, and misses).
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 500; i++ {
				q := randomQuery(tc.rel, rng)
				wsp, wexact, wok := tc.store.Match(q)
				gsp, gexact, gok := loaded.Match(q)
				if wok != gok || wexact != gexact {
					t.Fatalf("query %v: (exact=%v ok=%v), want (exact=%v ok=%v)", q, gexact, gok, wexact, wok)
				}
				if !wok {
					continue
				}
				if wsp.Text != gsp.Text || wsp.Query.Key() != gsp.Query.Key() ||
					math.Float64bits(wsp.Utility) != math.Float64bits(gsp.Utility) {
					t.Fatalf("query %v: served %q (%q), want %q (%q)",
						q, gsp.Text, gsp.Query.Key(), wsp.Text, wsp.Query.Key())
				}
			}
		})
	}
}

// TestRoundTripSecondGeneration proves a loaded store can itself be
// snapshotted again without drift.
func TestRoundTripSecondGeneration(t *testing.T) {
	rel := dataset.ACS(300, 2)
	store := buildStore(t, rel, 1)
	first := encode(t, store, rel)
	loaded, err := Decode(first, rel)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	second := encode(t, loaded, rel)
	// The created timestamp differs; everything else must match, which
	// Info + a second decode verify structurally.
	reloaded, err := Decode(second, rel)
	if err != nil {
		t.Fatalf("Decode second generation: %v", err)
	}
	if reloaded.Len() != store.Len() {
		t.Fatalf("second generation lost speeches: %d, want %d", reloaded.Len(), store.Len())
	}
}

func TestInfo(t *testing.T) {
	rel := dataset.ACS(300, 1)
	store := buildStore(t, rel, 1)
	data := encode(t, store, rel)
	meta, err := Info(data)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if meta.Dataset != "acs" {
		t.Errorf("Dataset = %q, want acs", meta.Dataset)
	}
	if meta.Speeches != store.Len() {
		t.Errorf("Speeches = %d, want %d", meta.Speeches, store.Len())
	}
	if meta.FormatVersion != Version {
		t.Errorf("FormatVersion = %d, want %d", meta.FormatVersion, Version)
	}
	if meta.Size != int64(len(data)) {
		t.Errorf("Size = %d, want %d", meta.Size, len(data))
	}
	if len(meta.Dimensions) != rel.NumDims() || len(meta.Targets) != rel.NumTargets() {
		t.Errorf("schema fingerprint %v/%v does not match relation", meta.Dimensions, meta.Targets)
	}
	if meta.Created.IsZero() {
		t.Error("Created is zero")
	}
}

// TestTruncation loads every prefix of a valid snapshot (sampled, plus
// all short prefixes) and requires a clean ErrCorrupt — never a panic,
// never success.
func TestTruncation(t *testing.T) {
	rel := dataset.ACS(200, 1)
	store := buildStore(t, rel, 1)
	data := encode(t, store, rel)

	lengths := []int{0, 1, 7, 8, headerSize - 1, headerSize, headerSize + 1}
	for n := headerSize; n < len(data); n += 101 {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, len(data)-1)
	for _, n := range lengths {
		if _, err := Decode(data[:n], rel); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode of %d/%d-byte prefix: err = %v, want ErrCorrupt", n, len(data), err)
		}
	}
}

// TestCorruption flips bytes across the file and requires every flip to
// be rejected (ErrCorrupt everywhere; the version field also carries a
// header-CRC guard, so even it reports corruption rather than skew).
func TestCorruption(t *testing.T) {
	rel := dataset.ACS(200, 1)
	store := buildStore(t, rel, 1)
	data := encode(t, store, rel)

	offsets := []int{0, offVersion, offSectionCount, offPayloadSize, offPayloadCRC, offHeaderCRC}
	for off := headerSize; off < len(data); off += 53 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		mut := bytes.Clone(data)
		mut[off] ^= 0x40
		_, err := Decode(mut, rel)
		if err == nil {
			t.Fatalf("Decode accepted a byte flip at offset %d", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte flip at offset %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}

// TestVersionSkew crafts a structurally valid file of a future format
// version (header CRC recomputed, so the skew is the only defect) and
// requires ErrVersion with both versions named.
func TestVersionSkew(t *testing.T) {
	rel := dataset.ACS(200, 1)
	store := buildStore(t, rel, 1)
	data := encode(t, store, rel)

	mut := bytes.Clone(data)
	le.PutUint32(mut[offVersion:], Version+3)
	le.PutUint32(mut[offHeaderCRC:], crc32.Checksum(mut[:offHeaderCRC], castagnoli))
	_, err := Decode(mut, rel)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	if !strings.Contains(err.Error(), "version 4") || !strings.Contains(err.Error(), "version 1") {
		t.Errorf("error %q does not name both versions", err)
	}
}

// TestDatasetMismatch loads a snapshot against the wrong relation and
// against a same-name relation with a different schema.
func TestDatasetMismatch(t *testing.T) {
	rel := dataset.ACS(200, 1)
	store := buildStore(t, rel, 1)
	data := encode(t, store, rel)

	other := dataset.Flights(200, 1)
	if _, err := Decode(data, other); !errors.Is(err, ErrDataset) {
		t.Fatalf("wrong dataset: err = %v, want ErrDataset", err)
	}

	// Same name, different schema.
	b := relation.NewBuilder("acs", relation.Schema{
		Dimensions: []string{"borough"},
		Targets:    []string{"hearing"},
	})
	b.MustAddRow([]string{"Brooklyn"}, []float64{1})
	skewed := b.Freeze()
	if _, err := Decode(data, skewed); !errors.Is(err, ErrDataset) {
		t.Fatalf("schema skew: err = %v, want ErrDataset", err)
	}
}

// TestDroppedFacts loads a snapshot against a same-schema relation
// whose dictionaries miss some values: unresolvable facts are dropped,
// the speech text survives.
func TestDroppedFacts(t *testing.T) {
	rel := dataset.ACS(400, 1)
	store := buildStore(t, rel, 1)
	data := encode(t, store, rel)

	// A much smaller regeneration can miss dictionary values; build one
	// with a single row so most scope values cannot resolve.
	b := relation.NewBuilder("acs", rel.Schema().Clone())
	b.MustAddRow([]string{"Brooklyn", "Adults", "Female"}, make([]float64, rel.NumTargets()))
	tiny := b.Freeze()

	loaded, err := Decode(data, tiny)
	if err != nil {
		t.Fatalf("Decode against shrunken relation: %v", err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("speech count changed: %d, want %d", loaded.Len(), store.Len())
	}
	droppedSome := false
	for i, sp := range loaded.Speeches() {
		orig := store.Speeches()[i]
		if sp.Text != orig.Text {
			t.Fatalf("speech %d text changed", i)
		}
		if len(sp.Facts) < len(orig.Facts) {
			droppedSome = true
		}
	}
	if !droppedSome {
		t.Error("expected at least one fact to be dropped against the tiny relation")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	rel := dataset.ACS(200, 1)
	store := buildStore(t, rel, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "acs.snap")

	if err := WriteFile(path, store, rel); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Overwrite in place (the rebuild loop's path) and verify no
	// temporary litter remains.
	if err := WriteFile(path, store, rel); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "acs.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want exactly [acs.snap]", names)
	}
	loaded, err := ReadFile(path, rel)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("loaded %d speeches, want %d", loaded.Len(), store.Len())
	}
	if _, err := InfoFile(path); err != nil {
		t.Fatalf("InfoFile: %v", err)
	}
}

func TestReadFileMissing(t *testing.T) {
	rel := dataset.ACS(200, 1)
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.snap"), rel); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

// TestEmptyStore round-trips a store with zero speeches.
func TestEmptyStore(t *testing.T) {
	rel := dataset.ACS(100, 1)
	store := engine.NewStore()
	var buf bytes.Buffer
	if err := Write(&buf, store, rel); err != nil {
		t.Fatalf("Write empty: %v", err)
	}
	loaded, err := Decode(buf.Bytes(), rel)
	if err != nil {
		t.Fatalf("Decode empty: %v", err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("empty store loaded %d speeches", loaded.Len())
	}
}

// TestFingerprintRoundTrip proves the build-provenance tag survives
// the write/read cycle and that untagged writes read back empty.
func TestFingerprintRoundTrip(t *testing.T) {
	rel := dataset.ACS(200, 1)
	store := buildStore(t, rel, 1)
	dir := t.TempDir()

	tagged := filepath.Join(dir, "tagged.snap")
	const tag = "seed=1 maxlen=2 facts=3 solver=G-O"
	if err := WriteFileTagged(tagged, store, rel, tag); err != nil {
		t.Fatal(err)
	}
	meta, err := InfoFile(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Fingerprint != tag {
		t.Fatalf("Fingerprint = %q, want %q", meta.Fingerprint, tag)
	}
	// The fingerprint is policy, not structure: loading still succeeds.
	if _, err := ReadFile(tagged, rel); err != nil {
		t.Fatalf("ReadFile of tagged snapshot: %v", err)
	}

	untagged := filepath.Join(dir, "untagged.snap")
	if err := WriteFile(untagged, store, rel); err != nil {
		t.Fatal(err)
	}
	if meta, err := InfoFile(untagged); err != nil || meta.Fingerprint != "" {
		t.Fatalf("untagged fingerprint = %q, %v; want empty", meta.Fingerprint, err)
	}
}
