package snapshot

// Fault-injection tests for the durable write path: a write that fails
// partway through must never publish a snapshot at the target path,
// and the atomic commit must tolerate a failure at every individual
// Write call.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/dataset"
)

// faultingWriter fails the Nth Write call (1-based) and every call
// after it, counting calls so tests can enumerate the failure points.
type faultingWriter struct {
	w      io.Writer
	calls  int
	failAt int
}

var errWriteFault = errors.New("injected write fault")

func (f *faultingWriter) Write(p []byte) (int, error) {
	f.calls++
	if f.failAt > 0 && f.calls >= f.failAt {
		return 0, errWriteFault
	}
	return f.w.Write(p)
}

func TestWriteTaggedSurfacesEveryWriteFault(t *testing.T) {
	rel := dataset.Flights(300, 1)
	store := buildStore(t, rel, 1)

	// Count the writes of a clean run, then fail each one in turn.
	probe := &faultingWriter{w: io.Discard}
	if err := WriteTagged(probe, store, rel, "fp"); err != nil {
		t.Fatal(err)
	}
	if probe.calls < 2 {
		t.Fatalf("expected at least header+payload writes, got %d", probe.calls)
	}
	for failAt := 1; failAt <= probe.calls; failAt++ {
		fw := &faultingWriter{w: io.Discard, failAt: failAt}
		if err := WriteTagged(fw, store, rel, "fp"); !errors.Is(err, errWriteFault) {
			t.Fatalf("fault at write %d/%d: error %v, want the injected fault", failAt, probe.calls, err)
		}
	}
}

func TestAtomicWriteFileNeverPublishesPartialFile(t *testing.T) {
	rel := dataset.Flights(300, 1)
	store := buildStore(t, rel, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "flights.snap")

	// Fail the payload at every write position: the target path must not
	// exist afterwards, and no temp file may leak.
	probe := &faultingWriter{w: io.Discard}
	_ = WriteTagged(probe, store, rel, "fp")
	for failAt := 1; failAt <= probe.calls; failAt++ {
		err := atomicWriteFile(path, func(w io.Writer) error {
			return WriteTagged(&faultingWriter{w: w, failAt: failAt}, store, rel, "fp")
		})
		if !errors.Is(err, errWriteFault) {
			t.Fatalf("fault at write %d: error %v", failAt, err)
		}
		if _, statErr := os.Stat(path); !errors.Is(statErr, os.ErrNotExist) {
			t.Fatalf("fault at write %d published %s", failAt, path)
		}
		leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
		if len(leftovers) != 0 {
			t.Fatalf("fault at write %d leaked temp files: %v", failAt, leftovers)
		}
	}

	// The clean run publishes a loadable snapshot.
	if err := WriteFileTagged(path, store, rel, "fp"); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path, rel)
	if err != nil {
		t.Fatalf("snapshot written through the durable path does not load: %v", err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("loaded %d speeches, wrote %d", loaded.Len(), store.Len())
	}

	// A failed overwrite leaves the previous good snapshot in place.
	err = atomicWriteFile(path, func(w io.Writer) error {
		return fmt.Errorf("builder exploded before writing")
	})
	if err == nil {
		t.Fatal("failing builder reported success")
	}
	if again, err := ReadFile(path, rel); err != nil || again.Len() != store.Len() {
		t.Fatalf("failed overwrite damaged the published snapshot: %v", err)
	}
}
