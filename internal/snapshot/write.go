package snapshot

import (
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"cicero/internal/engine"
	"cicero/internal/relation"
)

// stringTable interns every string of the snapshot once; sections refer
// to strings by their uint32 id in first-appearance order.
type stringTable struct {
	ids  map[string]uint32
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{ids: make(map[string]uint32)}
}

func (t *stringTable) intern(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint32(len(t.list))
	t.ids[s] = id
	t.list = append(t.list, s)
	return id
}

// encode renders the table as its section bytes: count, CSR offsets
// (count+1 entries, relative to the blob start), then the blob.
func (t *stringTable) encode() []byte {
	blobLen := 0
	for _, s := range t.list {
		blobLen += len(s)
	}
	out := make([]byte, 4+4*(len(t.list)+1)+blobLen)
	le.PutUint32(out, uint32(len(t.list)))
	offs := out[4:]
	blob := out[4+4*(len(t.list)+1):]
	pos := uint32(0)
	for i, s := range t.list {
		le.PutUint32(offs[4*i:], pos)
		copy(blob[pos:], s)
		pos += uint32(len(s))
	}
	le.PutUint32(offs[4*len(t.list):], pos)
	return out
}

// u32s renders a []uint32 as little-endian bytes.
func u32s(v []uint32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		le.PutUint32(out[4*i:], x)
	}
	return out
}

// Write serializes the store as one snapshot with an empty build
// fingerprint; see WriteTagged.
func Write(w io.Writer, store *engine.Store, rel *relation.Relation) error {
	return WriteTagged(w, store, rel, "")
}

// WriteTagged serializes the store as one snapshot. The relation
// resolves fact-scope dictionary codes to names and stamps the
// snapshot with its dataset name and schema; fingerprint records the
// build parameters (seed, query length, solver, ...) so a later boot
// can reject a structurally valid but stale artifact. The store need
// not be frozen; speeches are written in deterministic canonical-key
// order.
func WriteTagged(w io.Writer, store *engine.Store, rel *relation.Relation, fingerprint string) error {
	strs := newStringTable()
	speeches := store.Speeches()
	dims := rel.Schema().Dimensions

	// Meta references: intern the identity strings first so small
	// snapshots keep them at the front of the table.
	dsID := strs.intern(rel.Name())
	dimIDs := make([]uint32, len(dims))
	for i, d := range dims {
		dimIDs[i] = strs.intern(d)
	}
	targetIDs := make([]uint32, len(rel.Schema().Targets))
	for i, t := range rel.Schema().Targets {
		targetIDs[i] = strs.intern(t)
	}

	// Flatten speeches into the CSR arrays.
	speechRecs := make([]byte, 0, speechRecordSize*len(speeches))
	predStart := make([]uint32, 1, len(speeches)+1)
	var preds []uint32 // (column, value) id pairs
	factStart := make([]uint32, 1, len(speeches)+1)
	var factValues []byte   // float64 bits
	var scopeStart []uint32 // one entry per fact, plus terminator
	var scopePairs []uint32 // (dimension, value) id pairs
	scopeStart = append(scopeStart, 0)

	for _, sp := range speeches {
		var rec [speechRecordSize]byte
		le.PutUint32(rec[0:], strs.intern(sp.Query.Target))
		le.PutUint32(rec[4:], strs.intern(sp.Text))
		le.PutUint64(rec[8:], math.Float64bits(sp.Utility))
		le.PutUint64(rec[16:], math.Float64bits(sp.PriorError))
		speechRecs = append(speechRecs, rec[:]...)

		for _, p := range sp.Query.Predicates {
			preds = append(preds, strs.intern(p.Column), strs.intern(p.Value))
		}
		predStart = append(predStart, uint32(len(preds)/2))

		for _, f := range sp.Facts {
			var vb [8]byte
			le.PutUint64(vb[:], math.Float64bits(f.Value))
			factValues = append(factValues, vb[:]...)
			for i, d := range f.Scope.Dims {
				scopePairs = append(scopePairs,
					strs.intern(dims[d]),
					strs.intern(rel.Dim(d).Value(f.Scope.Codes[i])))
			}
			scopeStart = append(scopeStart, uint32(len(scopePairs)/2))
		}
		factStart = append(factStart, uint32(len(factValues)/8))
	}

	// Meta section: fixed prefix plus dimension and target id arrays.
	meta := make([]byte, metaFixedSize, metaFixedSize+4*(len(dimIDs)+len(targetIDs)))
	le.PutUint32(meta[0:], dsID)
	le.PutUint32(meta[4:], uint32(len(speeches)))
	le.PutUint64(meta[8:], uint64(time.Now().UnixNano()))
	le.PutUint32(meta[16:], uint32(len(dimIDs)))
	le.PutUint32(meta[20:], uint32(len(targetIDs)))
	le.PutUint32(meta[24:], strs.intern(fingerprint))
	meta = append(meta, u32s(dimIDs)...)
	meta = append(meta, u32s(targetIDs)...)

	sections := []struct {
		id   uint32
		data []byte
	}{
		{secMeta, meta},
		{secStrings, strs.encode()},
		{secSpeeches, speechRecs},
		{secPredStart, u32s(predStart)},
		{secPreds, u32s(preds)},
		{secFactStart, u32s(factStart)},
		{secFactValues, factValues},
		{secScopeStart, u32s(scopeStart)},
		{secScopePairs, u32s(scopePairs)},
	}

	// Assemble the payload: section table first, then the 8-byte-aligned
	// section bodies.
	tableLen := sectionEntrySize * len(sections)
	payloadLen := align8(tableLen)
	offsets := make([]int, len(sections))
	for i, s := range sections {
		offsets[i] = payloadLen
		payloadLen = align8(payloadLen + len(s.data))
	}
	payload := make([]byte, payloadLen)
	for i, s := range sections {
		e := payload[sectionEntrySize*i:]
		le.PutUint32(e[0:], s.id)
		le.PutUint64(e[8:], uint64(offsets[i]))
		le.PutUint64(e[16:], uint64(len(s.data)))
		copy(payload[offsets[i]:], s.data)
	}

	var hdr [headerSize]byte
	copy(hdr[offMagic:], Magic)
	le.PutUint32(hdr[offVersion:], Version)
	le.PutUint32(hdr[offSectionCount:], uint32(len(sections)))
	le.PutUint64(hdr[offPayloadSize:], uint64(payloadLen))
	le.PutUint32(hdr[offPayloadCRC:], crc32.Checksum(payload, castagnoli))
	le.PutUint32(hdr[offHeaderCRC:], crc32.Checksum(hdr[:offHeaderCRC], castagnoli))

	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteFile writes the snapshot atomically with an empty build
// fingerprint; see WriteFileTagged.
func WriteFile(path string, store *engine.Store, rel *relation.Relation) error {
	return WriteFileTagged(path, store, rel, "")
}

// WriteFileTagged writes the snapshot atomically and durably: the
// bytes go to a temporary file next to path, which is fsynced and then
// renamed into place — with the parent directory fsynced after the
// rename — so readers never observe a torn snapshot and a crash right
// after return cannot lose it. See WriteTagged for the fingerprint
// semantics.
func WriteFileTagged(path string, store *engine.Store, rel *relation.Relation, fingerprint string) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		return WriteTagged(w, store, rel, fingerprint)
	})
}

// atomicWriteFile renders write's output into path with the
// temp-file → fsync → rename → fsync-dir discipline. Split out so
// tests can drive the commit path with a faulting writer.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// The data must be on stable storage before the rename publishes
	// it: rename-then-crash must never leave a named empty file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// And the rename itself must survive: fsync the parent directory so
	// the new directory entry is durable too.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
