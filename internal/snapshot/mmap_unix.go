//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load path; on unix it is real mmap.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and returns the mapping plus
// its unmap function. MAP_SHARED keeps the pages file-backed, so the
// kernel evicts them under pressure instead of swapping, and multiple
// processes serving the same snapshot share one physical copy.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if int64(int(size)) != size {
		return nil, nil, corruptf("snapshot of %d bytes exceeds the addressable mapping size", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
