package snapshot

// Fault-injection tests for the patch-journal publish path: a delta
// publish crashing at any write position must leave the previous
// generation — base snapshot plus, if present, the previously published
// patch — fully servable. The patch write reuses the snapshot's atomic
// temp-fsync-rename harness, and these tests pin that the reuse
// actually delivers the crash-safety the delta runbook promises.

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
)

func testPatch(tag string) *Patch {
	return &Patch{
		Dataset:         "flights",
		BaseFingerprint: "base-fp",
		Fingerprint:     "base-fp delta=" + tag,
		DeltaTag:        tag,
		Ops: []PatchOp{
			{Kind: "update", Row: 3, Targets: []float64{0.5}},
			{Kind: "insert", Dims: []string{"Winter", "UA", "JFK", "January"}, Targets: []float64{1}},
		},
		RemovedKeys: []string{"cancelled"},
		Upserts: []engine.PersistedSpeech{{
			Query: engine.Query{Target: "cancelled"},
			Text:  "patched speech " + tag,
		}},
	}
}

func TestPatchRoundTripAndCorruption(t *testing.T) {
	p := testPatch("ops=2,hash=1")
	var buf bytes.Buffer
	if err := WritePatch(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPatch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != p.Fingerprint || len(got.Ops) != 2 || len(got.Upserts) != 1 ||
		got.RemovedKeys[0] != "cancelled" || got.Ops[1].Dims[0] != "Winter" {
		t.Fatalf("round trip lost fields: %+v", got)
	}

	// Truncation at every byte and a flip of every byte must be caught.
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadPatch(bytes.NewReader(data[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v, want ErrCorrupt", cut, err)
		}
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := ReadPatch(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
	}
}

// TestPatchPublishCrashKeepsOldGenerationServable walks the full delta
// publish sequence — snapshot present, patch v1 published, patch v2
// write crashing at every position — asserting after each simulated
// crash that a cold-starting reader still assembles the exact previous
// generation: the base snapshot loads, and the patch on disk (if any)
// is the complete old one, never a torn or half-new artifact.
func TestPatchPublishCrashKeepsOldGenerationServable(t *testing.T) {
	rel := dataset.Flights(300, 1)
	store := buildStore(t, rel, 1)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "flights.snap")
	patchPath := filepath.Join(dir, "flights.patch")

	if err := WriteFileTagged(snapPath, store, rel, "base-fp"); err != nil {
		t.Fatal(err)
	}

	// Count the writes of a clean patch publish, then crash each one.
	probe := &faultingWriter{w: bytes.NewBuffer(nil)}
	if err := WritePatch(probe, testPatch("v2")); err != nil {
		t.Fatal(err)
	}

	checkGeneration := func(t *testing.T, wantPatch string) {
		t.Helper()
		if loaded, err := ReadFile(snapPath, rel); err != nil || loaded.Len() != store.Len() {
			t.Fatalf("base snapshot no longer servable: %v", err)
		}
		switch _, statErr := os.Stat(patchPath); {
		case wantPatch == "":
			if !errors.Is(statErr, os.ErrNotExist) {
				t.Fatalf("patch exists before any successful publish")
			}
		default:
			p, err := ReadPatchFile(patchPath)
			if err != nil {
				t.Fatalf("published patch not readable: %v", err)
			}
			if p.DeltaTag != wantPatch {
				t.Fatalf("patch on disk has tag %q, want the previous generation %q", p.DeltaTag, wantPatch)
			}
		}
		if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftovers) != 0 {
			t.Fatalf("crash leaked temp files: %v", leftovers)
		}
	}

	// Phase 1: no patch yet; v1's write crashes at every position and
	// must leave the snapshot-only generation intact.
	for failAt := 1; failAt <= probe.calls; failAt++ {
		err := atomicWriteFile(patchPath, func(w io.Writer) error {
			return WritePatch(&faultingWriter{w: w, failAt: failAt}, testPatch("v1"))
		})
		if !errors.Is(err, errWriteFault) {
			t.Fatalf("fault at write %d: error %v", failAt, err)
		}
		checkGeneration(t, "")
	}

	// v1 publishes cleanly.
	if err := WritePatchFile(patchPath, testPatch("v1")); err != nil {
		t.Fatal(err)
	}
	checkGeneration(t, "v1")

	// Phase 2: v2's write crashes at every position and must leave the
	// complete v1 generation in place.
	for failAt := 1; failAt <= probe.calls; failAt++ {
		err := atomicWriteFile(patchPath, func(w io.Writer) error {
			return WritePatch(&faultingWriter{w: w, failAt: failAt}, testPatch("v2"))
		})
		if !errors.Is(err, errWriteFault) {
			t.Fatalf("fault at write %d: error %v", failAt, err)
		}
		checkGeneration(t, "v1")
	}

	// And the clean v2 publish supersedes v1 atomically.
	if err := WritePatchFile(patchPath, testPatch("v2")); err != nil {
		t.Fatal(err)
	}
	checkGeneration(t, "v2")
}
