package snapshot

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"
	"time"

	"cicero/internal/engine"
	"cicero/internal/fact"
	"cicero/internal/relation"
)

// reader decodes one validated snapshot held fully in memory. Every
// access is bounds-checked, so a corrupt or adversarial file surfaces
// as ErrCorrupt, never as a panic.
type reader struct {
	sections map[uint32][]byte

	// Decoded string table.
	strOffs []uint32
	strBlob []byte
}

// Read loads a snapshot and rebuilds the frozen speech store against
// rel. It fails with ErrCorrupt on truncation or checksum mismatch,
// ErrVersion on format-version skew, and ErrDataset when the snapshot
// was written for a different dataset or schema. Facts whose scope
// names no longer resolve against rel's dictionaries are dropped from
// their speech (the speech text is kept verbatim), matching the JSON
// store loader's semantics.
func Read(r io.Reader, rel *relation.Relation) (*engine.Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data, rel)
}

// ReadFile loads a snapshot from path; see Read.
func ReadFile(path string, rel *relation.Relation) (*engine.Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data, rel)
}

// Decode rebuilds the frozen store from in-memory snapshot bytes; see
// Read for the error contract.
func Decode(data []byte, rel *relation.Relation) (*engine.Store, error) {
	rd, meta, err := open(data)
	if err != nil {
		return nil, err
	}
	if err := meta.check(rel); err != nil {
		return nil, err
	}
	return rd.buildStore(meta, rel)
}

// Info returns the snapshot's metadata without rebuilding the store.
// The header checksum, format version, and every structural bound are
// verified; the payload checksum is not — metadata reads are a boot
// fast path, and the payload is checksummed once by whichever full
// load (Decode or Map.Verify) follows. A corrupt meta or string
// section still surfaces as ErrCorrupt through the bounds checks.
func Info(data []byte) (Meta, error) {
	_, meta, err := openStructural(data)
	if err != nil {
		return Meta{}, err
	}
	return meta, nil
}

// InfoFile returns the metadata of the snapshot at path; see Info. On
// platforms with mmap support the file is mapped rather than read, so
// only the header, section table, meta, and string-table pages are
// faulted in — O(pages needed), not O(file) — which is what lets a
// daemon hosting hundreds of snapshots scan their provenance cheaply
// at boot.
func InfoFile(path string) (Meta, error) {
	data, closer, err := mapWhole(path)
	if err != nil {
		return Meta{}, err
	}
	meta, infoErr := Info(data)
	if closer != nil {
		// Meta strings are copies, never views, so unmapping here is safe.
		if err := closer(); err != nil && infoErr == nil {
			return Meta{}, err
		}
	}
	return meta, infoErr
}

// check validates the snapshot's provenance against the relation it is
// being mounted onto.
func (m Meta) check(rel *relation.Relation) error {
	if m.Dataset != rel.Name() {
		return fmt.Errorf("%w: snapshot of dataset %q cannot serve relation %q",
			ErrDataset, m.Dataset, rel.Name())
	}
	if !slices.Equal(m.Dimensions, rel.Schema().Dimensions) {
		return fmt.Errorf("%w: snapshot dimensions %v, relation has %v",
			ErrDataset, m.Dimensions, rel.Schema().Dimensions)
	}
	if !slices.Equal(m.Targets, rel.Schema().Targets) {
		return fmt.Errorf("%w: snapshot targets %v, relation has %v",
			ErrDataset, m.Targets, rel.Schema().Targets)
	}
	return nil
}

// open verifies header, checksums (payload included), section table,
// string table, and meta section, returning a reader positioned over
// the sections — the full pre-decode verification.
func open(data []byte) (*reader, Meta, error) {
	rd, meta, err := openStructural(data)
	if err != nil {
		return nil, Meta{}, err
	}
	if err := verifyPayload(data); err != nil {
		return nil, Meta{}, err
	}
	return rd, meta, nil
}

// verifyPayload checks the payload checksum recorded in an
// already-header-verified snapshot.
func verifyPayload(data []byte) error {
	hdr, payload := data[:headerSize], data[headerSize:]
	if got := crc32.Checksum(payload, castagnoli); got != le.Uint32(hdr[offPayloadCRC:]) {
		return corruptf("payload checksum mismatch (computed %08x, stored %08x)",
			got, le.Uint32(hdr[offPayloadCRC:]))
	}
	return nil
}

// openStructural verifies the header (magic, header checksum, version,
// payload size), section table, string table, and meta section — every
// structural bound, but not the payload checksum. The mmap reader
// builds on this so mapping a snapshot faults in only the pages the
// index needs, deferring the full-file checksum scan to Verify.
func openStructural(data []byte) (*reader, Meta, error) {
	if len(data) < headerSize {
		return nil, Meta{}, corruptf("file of %d bytes is smaller than the %d-byte header", len(data), headerSize)
	}
	hdr := data[:headerSize]
	if string(hdr[offMagic:offMagic+8]) != Magic {
		return nil, Meta{}, corruptf("bad magic %q — not a cicero snapshot", hdr[offMagic:offMagic+8])
	}
	if got := crc32.Checksum(hdr[:offHeaderCRC], castagnoli); got != le.Uint32(hdr[offHeaderCRC:]) {
		return nil, Meta{}, corruptf("header checksum mismatch (computed %08x, stored %08x)",
			got, le.Uint32(hdr[offHeaderCRC:]))
	}
	if v := le.Uint32(hdr[offVersion:]); v != Version {
		return nil, Meta{}, fmt.Errorf("%w: file has format version %d, this build reads version %d",
			ErrVersion, v, Version)
	}
	payload := data[headerSize:]
	if size := le.Uint64(hdr[offPayloadSize:]); size != uint64(len(payload)) {
		return nil, Meta{}, corruptf("truncated: header declares %d payload bytes, file carries %d",
			size, len(payload))
	}

	nSections := int(le.Uint32(hdr[offSectionCount:]))
	if nSections > maxSections || sectionEntrySize*nSections > len(payload) {
		return nil, Meta{}, corruptf("section table with %d entries does not fit the payload", nSections)
	}
	rd := &reader{sections: make(map[uint32][]byte, nSections)}
	for i := 0; i < nSections; i++ {
		e := payload[sectionEntrySize*i:]
		id := le.Uint32(e[0:])
		off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
		if off > uint64(len(payload)) || length > uint64(len(payload))-off {
			return nil, Meta{}, corruptf("section %d spans [%d, %d+%d) beyond the %d-byte payload",
				id, off, off, length, len(payload))
		}
		if _, dup := rd.sections[id]; dup {
			return nil, Meta{}, corruptf("duplicate section id %d", id)
		}
		rd.sections[id] = payload[off : off+length]
	}
	for _, id := range []uint32{secMeta, secStrings, secSpeeches, secPredStart,
		secPreds, secFactStart, secFactValues, secScopeStart, secScopePairs} {
		if _, ok := rd.sections[id]; !ok {
			return nil, Meta{}, corruptf("required section %d missing", id)
		}
	}
	if err := rd.decodeStrings(); err != nil {
		return nil, Meta{}, err
	}
	meta, err := rd.decodeMeta(int64(len(data)))
	if err != nil {
		return nil, Meta{}, err
	}
	return rd, meta, nil
}

// decodeStrings validates the interned-string section: a count, count+1
// monotone CSR offsets, and the blob they index.
func (rd *reader) decodeStrings() error {
	sec := rd.sections[secStrings]
	if len(sec) < 8 {
		return corruptf("string table of %d bytes has no room for its counts", len(sec))
	}
	count := int(le.Uint32(sec))
	offsEnd := 4 + 4*(count+1)
	if count < 0 || offsEnd > len(sec) {
		return corruptf("string table declares %d strings but holds %d bytes", count, len(sec))
	}
	offs := make([]uint32, count+1)
	for i := range offs {
		offs[i] = le.Uint32(sec[4+4*i:])
	}
	blob := sec[offsEnd:]
	for i := 0; i < count; i++ {
		if offs[i] > offs[i+1] {
			return corruptf("string table offsets decrease at entry %d", i)
		}
	}
	if int(offs[count]) != len(blob) {
		return corruptf("string blob is %d bytes, offsets claim %d", len(blob), offs[count])
	}
	rd.strOffs, rd.strBlob = offs, blob
	return nil
}

// str resolves one interned string id.
func (rd *reader) str(id uint32) (string, error) {
	if int(id) >= len(rd.strOffs)-1 {
		return "", corruptf("string id %d out of range (%d interned)", id, len(rd.strOffs)-1)
	}
	return string(rd.strBlob[rd.strOffs[id]:rd.strOffs[id+1]]), nil
}

// decodeMeta parses the meta section.
func (rd *reader) decodeMeta(fileSize int64) (Meta, error) {
	sec := rd.sections[secMeta]
	if len(sec) < metaFixedSize {
		return Meta{}, corruptf("meta section of %d bytes is smaller than its %d-byte fixed prefix", len(sec), metaFixedSize)
	}
	nDims := int(le.Uint32(sec[16:]))
	nTargets := int(le.Uint32(sec[20:]))
	if nDims < 0 || nTargets < 0 || metaFixedSize+4*(nDims+nTargets) > len(sec) {
		return Meta{}, corruptf("meta section declares %d dimensions and %d targets but holds %d bytes",
			nDims, nTargets, len(sec))
	}
	meta := Meta{
		Speeches:      int(le.Uint32(sec[4:])),
		Created:       time.Unix(0, int64(le.Uint64(sec[8:]))),
		FormatVersion: Version,
		Size:          fileSize,
	}
	var err error
	if meta.Dataset, err = rd.str(le.Uint32(sec[0:])); err != nil {
		return Meta{}, err
	}
	if meta.Fingerprint, err = rd.str(le.Uint32(sec[24:])); err != nil {
		return Meta{}, err
	}
	ids := sec[metaFixedSize:]
	meta.Dimensions = make([]string, nDims)
	for i := range meta.Dimensions {
		if meta.Dimensions[i], err = rd.str(le.Uint32(ids[4*i:])); err != nil {
			return Meta{}, err
		}
	}
	meta.Targets = make([]string, nTargets)
	for i := range meta.Targets {
		if meta.Targets[i], err = rd.str(le.Uint32(ids[4*(nDims+i):])); err != nil {
			return Meta{}, err
		}
	}
	return meta, nil
}

// csr validates a CSR offset section: wantLen entries, monotone,
// terminated exactly at flatLen.
func (rd *reader) csr(id uint32, wantLen, flatLen int, what string) ([]uint32, error) {
	sec := rd.sections[id]
	if len(sec) != 4*wantLen {
		return nil, corruptf("%s offsets hold %d bytes, want %d", what, len(sec), 4*wantLen)
	}
	offs := make([]uint32, wantLen)
	for i := range offs {
		offs[i] = le.Uint32(sec[4*i:])
		if i > 0 && offs[i] < offs[i-1] {
			return nil, corruptf("%s offsets decrease at entry %d", what, i)
		}
	}
	if wantLen > 0 && int(offs[wantLen-1]) != flatLen {
		return nil, corruptf("%s offsets end at %d, flat section holds %d entries", what, offs[wantLen-1], flatLen)
	}
	return offs, nil
}

// checkFactSections validates the fact-side CSR sections without
// materializing any fact — the structural half of the mmap view's
// deferred Verify (the view itself never dereferences these sections).
func (rd *reader) checkFactSections(n int) error {
	factVals := rd.sections[secFactValues]
	if len(factVals)%8 != 0 {
		return corruptf("fact-value section of %d bytes is not 8-byte aligned", len(factVals))
	}
	scopePairs := rd.sections[secScopePairs]
	if len(scopePairs)%8 != 0 {
		return corruptf("scope-pair section of %d bytes is not pair-aligned", len(scopePairs))
	}
	nFacts := len(factVals) / 8
	if _, err := rd.csr(secFactStart, n+1, nFacts, "fact"); err != nil {
		return err
	}
	_, err := rd.csr(secScopeStart, nFacts+1, len(scopePairs)/8, "scope")
	return err
}

// buildStore reconstructs the frozen store from the validated sections.
func (rd *reader) buildStore(meta Meta, rel *relation.Relation) (*engine.Store, error) {
	n := meta.Speeches
	recs := rd.sections[secSpeeches]
	if len(recs) != speechRecordSize*n {
		return nil, corruptf("speech section holds %d bytes for %d declared speeches", len(recs), n)
	}
	predPairs := rd.sections[secPreds]
	if len(predPairs)%8 != 0 {
		return nil, corruptf("predicate section of %d bytes is not pair-aligned", len(predPairs))
	}
	factVals := rd.sections[secFactValues]
	if len(factVals)%8 != 0 {
		return nil, corruptf("fact-value section of %d bytes is not 8-byte aligned", len(factVals))
	}
	scopePairs := rd.sections[secScopePairs]
	if len(scopePairs)%8 != 0 {
		return nil, corruptf("scope-pair section of %d bytes is not pair-aligned", len(scopePairs))
	}
	nFacts := len(factVals) / 8
	predStart, err := rd.csr(secPredStart, n+1, len(predPairs)/8, "predicate")
	if err != nil {
		return nil, err
	}
	factStart, err := rd.csr(secFactStart, n+1, nFacts, "fact")
	if err != nil {
		return nil, err
	}
	scopeStart, err := rd.csr(secScopeStart, nFacts+1, len(scopePairs)/8, "scope")
	if err != nil {
		return nil, err
	}

	store := engine.NewStore()
	for i := 0; i < n; i++ {
		rec := recs[speechRecordSize*i:]
		sp := &engine.StoredSpeech{
			Utility:    math.Float64frombits(le.Uint64(rec[8:])),
			PriorError: math.Float64frombits(le.Uint64(rec[16:])),
		}
		if sp.Query.Target, err = rd.str(le.Uint32(rec[0:])); err != nil {
			return nil, err
		}
		if sp.Text, err = rd.str(le.Uint32(rec[4:])); err != nil {
			return nil, err
		}
		for p := predStart[i]; p < predStart[i+1]; p++ {
			col, err := rd.str(le.Uint32(predPairs[8*p:]))
			if err != nil {
				return nil, err
			}
			val, err := rd.str(le.Uint32(predPairs[8*p+4:]))
			if err != nil {
				return nil, err
			}
			sp.Query.Predicates = append(sp.Query.Predicates,
				engine.NamedPredicate{Column: col, Value: val})
		}
		for f := factStart[i]; f < factStart[i+1]; f++ {
			fc, ok, err := rd.restoreFact(rel, scopeStart, scopePairs, f, factVals)
			if err != nil {
				return nil, err
			}
			if ok {
				sp.Facts = append(sp.Facts, fc)
			}
		}
		store.Add(sp)
	}
	return store.Freeze(), nil
}

// restoreFact resolves one fact's scope names back to dictionary codes.
// A fact whose column or value no longer exists in the relation is
// dropped (ok=false) rather than failing the load.
func (rd *reader) restoreFact(rel *relation.Relation, scopeStart []uint32, scopePairs []byte, f uint32, factVals []byte) (fact.Fact, bool, error) {
	var dims []int
	var codes []int32
	for s := scopeStart[f]; s < scopeStart[f+1]; s++ {
		col, err := rd.str(le.Uint32(scopePairs[8*s:]))
		if err != nil {
			return fact.Fact{}, false, err
		}
		val, err := rd.str(le.Uint32(scopePairs[8*s+4:]))
		if err != nil {
			return fact.Fact{}, false, err
		}
		d := rel.Schema().DimIndex(col)
		if d < 0 {
			return fact.Fact{}, false, nil
		}
		code, found := rel.Dim(d).Code(val)
		if !found {
			return fact.Fact{}, false, nil
		}
		// A checksum-valid file could still be hand-crafted; a repeated
		// dimension would panic fact.NewScope, so reject it as corrupt.
		for _, prev := range dims {
			if prev == d {
				return fact.Fact{}, false, corruptf("fact %d restricts dimension %q twice", f, col)
			}
		}
		dims = append(dims, d)
		codes = append(codes, code)
	}
	return fact.Fact{
		Scope: fact.NewScope(dims, codes),
		Value: math.Float64frombits(le.Uint64(factVals[8*f:])),
	}, true, nil
}
