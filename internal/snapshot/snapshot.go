// Package snapshot persists the frozen speech store as a versioned,
// checksummed binary artifact, turning the serve step of the paper's
// generate → evaluate → solve → serve flow into a deployable unit: the
// offline half (pipeline) spends minutes summarizing a data set, and a
// snapshot makes that investment durable, so a restarted daemon — or a
// second machine — cold-starts in milliseconds by loading the artifact
// instead of recomputing it.
//
// The format (documented byte-by-byte in FORMAT.md) is a fixed header
// plus flat, 8-byte-aligned sections in the spirit of the summarization
// kernel's CSR layouts: one interned-string table shared by every
// query, predicate, fact scope, and speech text; fixed-width speech
// records; and CSR offset arrays (predStart/factStart/scopeStart) into
// flat predicate, fact-value, and scope-pair arrays. Strings and scope
// values are stored by name, not dictionary code, so a snapshot
// survives re-ingestion of the data with different code assignment —
// the same property the JSON store format (engine.Store.Save) has,
// at a fraction of the size and parse cost, and in a layout a reader
// could mmap directly.
//
// Integrity is enforced on load: a CRC-32C over the header and another
// over the payload reject truncated or bit-flipped files (ErrCorrupt),
// a version field rejects snapshots written by an incompatible build
// (ErrVersion), and the embedded dataset name and schema must match the
// relation the store is being mounted onto (ErrDataset). Write is
// atomic on the file level: WriteFile writes a temporary file and
// renames it into place, so a crashed writer can never leave a torn
// snapshot behind under the target name.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Magic identifies a cicero snapshot file (first 8 bytes).
const Magic = "CICERSNP"

// Version is the snapshot format version this build reads and writes.
// It is bumped on any incompatible layout change; Read rejects other
// versions with ErrVersion.
const Version uint32 = 1

// Sentinel errors; Read wraps them with positional detail, so test with
// errors.Is.
var (
	// ErrCorrupt reports a file that is not a snapshot, is truncated,
	// or fails a checksum.
	ErrCorrupt = errors.New("snapshot: corrupt file")
	// ErrVersion reports a snapshot written in an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: incompatible format version")
	// ErrDataset reports a snapshot whose dataset name or schema does
	// not match the relation it is being loaded against.
	ErrDataset = errors.New("snapshot: dataset mismatch")
)

// Header layout (headerSize bytes, little-endian):
//
//	[0:8)   magic "CICERSNP"
//	[8:12)  format version (uint32)
//	[12:16) section count (uint32)
//	[16:24) payload size in bytes (uint64)
//	[24:28) CRC-32C of the payload (uint32)
//	[28:32) CRC-32C of header bytes [0:28) (uint32)
//	[32:48) reserved, zero
const (
	headerSize = 48

	offMagic        = 0
	offVersion      = 8
	offSectionCount = 12
	offPayloadSize  = 16
	offPayloadCRC   = 24
	offHeaderCRC    = 28
)

// Section ids. Every section is 8-byte aligned inside the payload; the
// section table (one 24-byte entry per section, sorted by id) is the
// first thing in the payload.
const (
	secMeta       uint32 = 1 // dataset, creation time, schema, counts
	secStrings    uint32 = 2 // interned string table (CSR offsets + blob)
	secSpeeches   uint32 = 3 // fixed 24-byte speech records
	secPredStart  uint32 = 4 // CSR: speech -> predicate range
	secPreds      uint32 = 5 // flat (column, value) string-id pairs
	secFactStart  uint32 = 6 // CSR: speech -> fact range
	secFactValues uint32 = 7 // flat fact values (float64 bits)
	secScopeStart uint32 = 8 // CSR: fact -> scope range
	secScopePairs uint32 = 9 // flat (dimension, value) string-id pairs
)

// sectionEntry is one section-table row: {id, pad, offset, length},
// offset relative to the payload start.
const sectionEntrySize = 24

const speechRecordSize = 24 // target u32, text u32, utility f64, prior f64

// metaFixedSize is the fixed prefix of the meta section: dataset string
// id (u32), speech count (u32), created unix-nano (i64), dimension
// count (u32), target count (u32), build-fingerprint string id (u32);
// dimension and target string ids follow.
const metaFixedSize = 28

// maxSections bounds the section table a reader accepts, so a corrupt
// count cannot drive a huge allocation.
const maxSections = 64

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta describes a snapshot without loading its speeches; Info returns
// it, and Read validates it against the target relation.
type Meta struct {
	// Dataset is the relation name the store was summarized from.
	Dataset string
	// Created is when the snapshot was written.
	Created time.Time
	// Dimensions and Targets fingerprint the schema the store's facts
	// and queries are resolved against.
	Dimensions []string
	Targets    []string
	// Fingerprint is the writer-supplied build provenance tag (e.g.
	// "seed=1 maxlen=2 facts=3 solver=G-O"). Read does not enforce it —
	// name and schema checks are structural, build parameters are
	// policy — but a daemon should refuse to cold-start from a
	// snapshot whose fingerprint differs from its own flags, since
	// such a store is valid yet stale.
	Fingerprint string
	// Speeches is the number of stored speeches.
	Speeches int
	// FormatVersion is the snapshot format version of the file.
	FormatVersion uint32
	// Size is the total file size in bytes.
	Size int64
}

// corruptf wraps ErrCorrupt with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

var le = binary.LittleEndian
