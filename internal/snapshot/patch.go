package snapshot

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"cicero/internal/engine"
)

// Patch is the snapshot patch artifact: the durable form of one
// incremental re-summarization (internal/delta). Where a snapshot
// captures a whole store, a patch captures only what a delta changed —
// the row-op journal plus the re-solved speeches — keyed to the exact
// base snapshot it applies to by fingerprint. A cold-starting node
// holding the base artifact replays base + patch in milliseconds; a
// node holding anything else refuses, because applying a journal to the
// wrong base would silently serve a chimera store.
//
// The payload is JSON (patches are small — proportional to the delta,
// not the dataset — so the snapshot format's flat-section machinery
// would be overkill), wrapped in the same magic/version/CRC armor and
// written through the same atomic temp-fsync-rename path as snapshots,
// so a crashed writer can never tear a patch under the target name.
type Patch struct {
	// Dataset names the relation the patch applies to.
	Dataset string `json:"dataset"`
	// BaseFingerprint is the build fingerprint of the base snapshot the
	// patch was computed against; Replay must refuse any other base.
	BaseFingerprint string `json:"base_fingerprint"`
	// Fingerprint is the build fingerprint of the patched store
	// (pipeline.FingerprintDelta of the base parameters and DeltaTag).
	Fingerprint string `json:"fingerprint"`
	// DeltaTag is the provenance tag of the row-delta batch.
	DeltaTag string `json:"delta_tag"`
	// Ops is the row-op journal, replayed against the base rows to
	// reconstruct the post-delta relation. The field mirrors
	// delta.Op without importing it (delta already imports snapshot's
	// siblings transitively via the pipeline).
	Ops []PatchOp `json:"ops"`
	// RemovedKeys lists canonical keys of base speeches absent from the
	// patched store.
	RemovedKeys []string `json:"removed_keys,omitempty"`
	// Upserts are the re-solved speeches in name-resolved persistence
	// form, so they survive dictionary re-assignment like snapshots do.
	Upserts []engine.PersistedSpeech `json:"upserts,omitempty"`
}

// PatchOp is one row-level change of the journal; the fields and JSON
// encoding match delta.Op exactly.
type PatchOp struct {
	Kind    string    `json:"op"`
	Row     int       `json:"row,omitempty"`
	Dims    []string  `json:"dims,omitempty"`
	Targets []float64 `json:"targets,omitempty"`
}

// PatchMagic identifies a cicero snapshot patch file (first 8 bytes).
const PatchMagic = "CICERPTC"

// PatchVersion is the patch format version this build reads and writes.
const PatchVersion uint32 = 1

// patchHeaderSize: magic (8) + version (4) + payload size (8) + payload
// CRC-32C (4) + CRC-32C of the preceding 24 header bytes (4).
const patchHeaderSize = 28

// maxPatchPayload bounds the payload size a reader accepts, so a
// corrupt length cannot drive a huge allocation.
const maxPatchPayload = 1 << 31

// WritePatch encodes the patch to w.
func WritePatch(w io.Writer, p *Patch) error {
	payload, err := json.Marshal(p)
	if err != nil {
		return err
	}
	hdr := make([]byte, patchHeaderSize)
	copy(hdr[0:8], PatchMagic)
	le.PutUint32(hdr[8:12], PatchVersion)
	le.PutUint64(hdr[12:20], uint64(len(payload)))
	le.PutUint32(hdr[20:24], crc32.Checksum(payload, castagnoli))
	le.PutUint32(hdr[24:28], crc32.Checksum(hdr[:24], castagnoli))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// WritePatchFile writes the patch to path atomically (temp file, fsync,
// rename, directory fsync) — the same publish discipline as snapshots,
// so at every crash position the old artifact (or no artifact) is what
// a reader observes, never a torn one.
func WritePatchFile(path string, p *Patch) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		return WritePatch(w, p)
	})
}

// ReadPatch decodes a patch from r, enforcing magic, version and both
// checksums.
func ReadPatch(r io.Reader) (*Patch, error) {
	hdr := make([]byte, patchHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[0:8]) != PatchMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[0:8])
	}
	if crc := crc32.Checksum(hdr[:24], castagnoli); crc != le.Uint32(hdr[24:28]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if v := le.Uint32(hdr[8:12]); v != PatchVersion {
		return nil, fmt.Errorf("%w: file version %d, supported %d", ErrVersion, v, PatchVersion)
	}
	size := le.Uint64(hdr[12:20])
	if size > maxPatchPayload {
		return nil, fmt.Errorf("%w: payload size %d exceeds limit", ErrCorrupt, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
	}
	if crc := crc32.Checksum(payload, castagnoli); crc != le.Uint32(hdr[20:24]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	var p Patch
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("%w: payload decode: %v", ErrCorrupt, err)
	}
	return &p, nil
}

// ReadPatchFile reads a patch artifact from path.
func ReadPatchFile(path string) (*Patch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadPatch(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
