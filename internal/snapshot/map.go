package snapshot

import (
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"unsafe"

	"cicero/internal/engine"
	"cicero/internal/relation"
)

// Map is the zero-copy snapshot reader: an engine.StoreView served
// directly out of the snapshot bytes, mapped from disk where the
// platform supports mmap. Where Decode copies every string and builds
// heap maps — O(dataset) work and resident heap before the first
// answer — Map materializes only a thin index: speech structs whose
// Target, Text, and predicate strings are unsafe views into the mapped
// interned-string table, one canonical-key table (the snapshot writer
// emits speeches in key order, so Exact is a binary search instead of
// a hash map), and per-target posting lists for the wide-query
// fallback. Cold start touches the pages the index needs; speech text
// pages fault in lazily as queries hit them, and the kernel may share
// them across processes serving the same artifact.
//
// Semantics are bit-identical to the heap store by construction: Match
// mirrors Store.Match probe for probe (exact key, then largest-first
// subset enumeration under the same budget, then posting-list
// intersection, with the same smallest-key tie-breaks), using the key
// helpers the engine package exports for exactly this purpose. The
// cross-check oracle in map_test.go pins that parity.
//
// Lifetime: speeches returned by a Map point into the mapped region.
// The region is unmapped by a GC finalizer only once the speech
// backing array is unreachable, so holding any *StoredSpeech (or any
// string field of one) keeps the mapping alive — no caller-side
// refcounting. The one sharp edge is retention-by-view: a string view
// into the mapping does NOT keep it alive on its own (the GC does not
// trace pointers into non-heap memory), so code that stores a speech's
// text beyond the speech pointer itself must strings.Clone it.
//
// Facts are not materialized — the serving read path never touches
// them. Tools that need facts (re-snapshotting, persistence) must load
// via Decode.
//
// A Map is immutable after construction; all methods are safe for
// concurrent use.
type Map struct {
	data   []byte
	region *mapRegion
	meta   Meta

	// speeches is the file-order backing array every escaped
	// *StoredSpeech points into; the unmap finalizer hangs off it.
	speeches []engine.StoredSpeech
	// keys holds each speech's canonical key (file order), views into
	// one shared heap buffer.
	keys []string
	// order maps sorted position -> file index; nil when the file is
	// already in key order (what the writer emits).
	order []int32
	// sorted is the Speeches() result — pointers in key order — built
	// lazily: the serve path answers queries without ever enumerating.
	sortedOnce sync.Once
	sorted     []*engine.StoredSpeech
	targets    map[string]*mapTarget
	// postingOnce builds the per-target posting lists on the first
	// wide-query fallback; keeping them off the construction path is
	// part of what makes the cold start O(index), not O(dataset).
	postingOnce sync.Once

	// scratch pools the dense posting-intersection counters, mirroring
	// the heap store's allocation-free wide-query fallback.
	scratch sync.Pool

	verifyOnce sync.Once
	verifyErr  error
}

// mapTarget is the per-target half of the generalization index, the
// mmap analogue of the heap store's targetIndex (posting lists hold
// global speech indices rather than per-target ones, and are built
// lazily on the first wide query via Map.postings).
type mapTarget struct {
	posting  map[engine.NamedPredicate][]int32
	overall  int32
	maxPreds int
}

// mapRegion owns one munmap, guarded so the explicit Close and the GC
// finalizer cannot double-unmap.
type mapRegion struct {
	once    sync.Once
	unmapFn func() error
	err     error
}

func (r *mapRegion) unmap() error {
	if r == nil {
		return nil
	}
	r.once.Do(func() { r.err = r.unmapFn() })
	return r.err
}

// MapFile maps the snapshot at path and returns the zero-copy view
// over it. On platforms without mmap (or filesystems that refuse it)
// the file is read into memory instead — same semantics, no page
// sharing. Structural integrity (header checksum, version, every
// section bound, canonical ordering) is verified here; the payload
// checksum is deferred to Verify so that mapping does not fault in the
// whole file. Error contract matches Read: ErrCorrupt, ErrVersion,
// ErrDataset.
func MapFile(path string, rel *relation.Relation) (*Map, error) {
	data, closer, err := mapWhole(path)
	if err != nil {
		return nil, err
	}
	m, err := newMap(data, closer, rel)
	if err != nil && closer != nil {
		closer()
	}
	return m, err
}

// MapBytes builds the zero-copy view over snapshot bytes already in
// memory — the portable construction and the test seam. The caller
// must not mutate data while the Map (or any speech obtained from it)
// is in use.
func MapBytes(data []byte, rel *relation.Relation) (*Map, error) {
	return newMap(data, nil, rel)
}

// mapWhole maps the entire file at path read-only, falling back to an
// ordinary read where mmap is unavailable; closer is nil on the
// fallback path.
func mapWhole(path string) ([]byte, func() error, error) {
	if !mmapSupported {
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		// mmap rejects empty files; an empty snapshot is structurally
		// invalid anyway, so let the header check report it.
		return nil, nil, nil
	}
	data, closer, err := mmapFile(f, st.Size())
	if err != nil {
		// e.g. a filesystem that refuses mmap: degrade to a heap read.
		data, err := os.ReadFile(path)
		return data, nil, err
	}
	return data, closer, nil
}

// newMap validates the snapshot structurally and builds the on-load
// index. closer, when non-nil, unmaps the region and is wired to a GC
// finalizer on the speech backing array.
func newMap(data []byte, closer func() error, rel *relation.Relation) (*Map, error) {
	rd, meta, err := openStructural(data)
	if err != nil {
		return nil, err
	}
	if err := meta.check(rel); err != nil {
		return nil, err
	}

	n := meta.Speeches
	recs := rd.sections[secSpeeches]
	if len(recs) != speechRecordSize*n {
		return nil, corruptf("speech section holds %d bytes for %d declared speeches", len(recs), n)
	}
	predPairs := rd.sections[secPreds]
	if len(predPairs)%8 != 0 {
		return nil, corruptf("predicate section of %d bytes is not pair-aligned", len(predPairs))
	}
	predStart, err := rd.csr(secPredStart, n+1, len(predPairs)/8, "predicate")
	if err != nil {
		return nil, err
	}
	// The fact sections stay unmaterialized AND unvalidated here: the
	// view never dereferences them, so walking their CSR offsets at map
	// time would tax every cold start for sections the serving path
	// cannot touch. Verify covers them along with the payload checksum.

	speeches := make([]engine.StoredSpeech, n)
	preds := make([]engine.NamedPredicate, predStart[n])
	targets := make(map[string]*mapTarget)
	// Speeches are grouped by target (the writer emits key order, and
	// keys start with the target), so caching the last-seen index entry
	// turns the per-speech map probe into a string-header compare.
	var lastTarget string
	var lastT *mapTarget
	keyLen := 0
	for i := 0; i < n; i++ {
		rec := recs[speechRecordSize*i:]
		sp := &speeches[i]
		sp.Utility = math.Float64frombits(le.Uint64(rec[8:]))
		sp.PriorError = math.Float64frombits(le.Uint64(rec[16:]))
		if sp.Query.Target, err = rd.strView(le.Uint32(rec[0:])); err != nil {
			return nil, err
		}
		if sp.Text, err = rd.strView(le.Uint32(rec[4:])); err != nil {
			return nil, err
		}
		if lastT == nil || sp.Query.Target != lastTarget {
			if lastT = targets[sp.Query.Target]; lastT == nil {
				lastT = &mapTarget{overall: -1}
				targets[sp.Query.Target] = lastT
			}
			lastTarget = sp.Query.Target
		}
		lo, hi := predStart[i], predStart[i+1]
		var prev engine.NamedPredicate
		for p := lo; p < hi; p++ {
			col, err := rd.strView(le.Uint32(predPairs[8*p:]))
			if err != nil {
				return nil, err
			}
			val, err := rd.strView(le.Uint32(predPairs[8*p+4:]))
			if err != nil {
				return nil, err
			}
			np := engine.NamedPredicate{Column: col, Value: val}
			// The writer emits canonical predicate order; the heap loader
			// re-canonicalizes on Add, but Map's keys are built straight
			// from file order, so enforce it instead of silently diverging.
			if p > lo && (np.Column < prev.Column || (np.Column == prev.Column && np.Value <= prev.Value)) {
				return nil, corruptf("speech %d predicates are not in canonical order", i)
			}
			prev = np
			preds[p] = np
			keyLen += 2 + len(col) + len(val)
		}
		if lo < hi {
			sp.Query.Predicates = preds[lo:hi:hi]
		} else {
			lastT.overall = int32(i)
		}
		if int(hi-lo) > lastT.maxPreds {
			lastT.maxPreds = int(hi - lo)
		}
		keyLen += len(sp.Query.Target)
	}

	// Canonical keys, materialized into one shared buffer. Offsets are
	// recorded first and views created after the buffer is complete, so
	// no view can dangle across an append-time reallocation.
	keyBuf := make([]byte, 0, keyLen)
	keyOff := make([]int, n+1)
	for i := range speeches {
		keyOff[i] = len(keyBuf)
		sp := &speeches[i]
		keyBuf = append(keyBuf, sp.Query.Target...)
		for _, p := range sp.Query.Predicates {
			keyBuf = append(keyBuf, '|')
			keyBuf = append(keyBuf, p.Column...)
			keyBuf = append(keyBuf, '=')
			keyBuf = append(keyBuf, p.Value...)
		}
	}
	keyOff[n] = len(keyBuf)
	keys := make([]string, n)
	for i := range keys {
		if b := keyBuf[keyOff[i]:keyOff[i+1]]; len(b) > 0 {
			keys[i] = unsafe.String(&b[0], len(b))
		}
	}

	// The writer emits key order, making binary search index-free; a
	// reordered (hand-written) file costs one permutation, and duplicate
	// keys — which the heap loader would last-writer-wins — are rejected
	// so both loaders see the same speech set.
	var order []int32
	for i := 1; i < n; i++ {
		if keys[i-1] >= keys[i] {
			order = make([]int32, n)
			for j := range order {
				order[j] = int32(j)
			}
			sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
			for j := 1; j < n; j++ {
				if keys[order[j-1]] == keys[order[j]] {
					return nil, corruptf("duplicate speech key %q", keys[order[j]])
				}
			}
			break
		}
	}

	m := &Map{
		data:     data,
		meta:     meta,
		speeches: speeches,
		keys:     keys,
		order:    order,
		targets:  targets,
	}
	if closer != nil {
		region := &mapRegion{unmapFn: closer}
		m.region = region
		if n > 0 {
			// Every escaped *StoredSpeech points into this backing array,
			// so its finalizer firing proves no speech (and hence no string
			// view reached through one) is still reachable — only then is
			// unmapping safe. The finalizer is NOT on m: the Map being
			// dropped (e.g. after SwapStore) must not unmap under in-flight
			// answers still holding speeches.
			runtime.SetFinalizer(&speeches[0], func(*engine.StoredSpeech) { region.unmap() })
		} else {
			runtime.SetFinalizer(m, func(mm *Map) { mm.region.unmap() })
		}
	}
	return m, nil
}

// strView resolves one interned string id as a zero-copy view into the
// string blob.
func (rd *reader) strView(id uint32) (string, error) {
	if int(id) >= len(rd.strOffs)-1 {
		return "", corruptf("string id %d out of range (%d interned)", id, len(rd.strOffs)-1)
	}
	lo, hi := rd.strOffs[id], rd.strOffs[id+1]
	if lo == hi {
		return "", nil
	}
	return unsafe.String(&rd.strBlob[lo], int(hi-lo)), nil
}

// Meta returns the snapshot's metadata.
func (m *Map) Meta() Meta { return m.meta }

// Mapped reports whether the view is backed by an actual memory
// mapping (false on the portable read-into-heap fallback and for
// MapBytes).
func (m *Map) Mapped() bool { return m.region != nil }

// Verify checks the payload checksum and the structure of the fact
// sections the view never dereferences, once; subsequent calls return
// the cached verdict. It is deliberately not part of construction:
// checksumming faults in every page, which would turn the O(pages
// needed) cold start back into O(dataset). Run it from a background
// goroutine after boot, or offline, when bit-rot detection is wanted.
func (m *Map) Verify() error {
	m.verifyOnce.Do(func() {
		if err := verifyPayload(m.data); err != nil {
			m.verifyErr = err
			return
		}
		rd, meta, err := openStructural(m.data)
		if err != nil {
			m.verifyErr = err
			return
		}
		m.verifyErr = rd.checkFactSections(meta.Speeches)
	})
	runtime.KeepAlive(m)
	return m.verifyErr
}

// Close unmaps the region immediately. It is safe to call only when no
// speech obtained from this Map is still in use — the serving path
// never calls it (SwapStore relies on the finalizer instead); it
// exists for tools and tests with bounded lifetimes. Close is
// idempotent, and a no-op for non-mapped views.
func (m *Map) Close() error {
	err := m.region.unmap()
	runtime.KeepAlive(m)
	return err
}

// Len returns the number of stored speeches.
func (m *Map) Len() int { return len(m.speeches) }

// HasTarget reports whether any speech exists for the target column.
func (m *Map) HasTarget(target string) bool {
	return m.targets[target] != nil
}

// Speeches returns all stored speeches in canonical-key order. The
// slice is shared and must be treated as read-only (the heap store
// returns a fresh slice; a zero-copy view does not). It is built on
// first use — the answering path never enumerates, so cold start does
// not pay for it.
func (m *Map) Speeches() []*engine.StoredSpeech {
	m.sortedOnce.Do(func() {
		sorted := make([]*engine.StoredSpeech, len(m.speeches))
		for i := range sorted {
			sorted[i] = m.at(i)
		}
		m.sorted = sorted
	})
	return m.sorted
}

// postings builds every target's posting lists, once, on the first
// query wide enough to need the intersection fallback. One pass over
// the speeches serves all targets; voice-sized queries never trigger
// it.
func (m *Map) postings() {
	m.postingOnce.Do(func() {
		for i := range m.speeches {
			sp := &m.speeches[i]
			t := m.targets[sp.Query.Target]
			if t.posting == nil {
				t.posting = make(map[engine.NamedPredicate][]int32)
			}
			for _, p := range sp.Query.Predicates {
				t.posting[p] = append(t.posting[p], int32(i))
			}
		}
	})
}

// key returns the canonical key at sorted position i.
func (m *Map) key(i int) string {
	if m.order != nil {
		i = int(m.order[i])
	}
	return m.keys[i]
}

// at returns the speech at sorted position i.
func (m *Map) at(i int) *engine.StoredSpeech {
	if m.order != nil {
		i = int(m.order[i])
	}
	return &m.speeches[i]
}

// findKey is the binary-search analogue of the heap store's byKey map.
func (m *Map) findKey(key string) (*engine.StoredSpeech, bool) {
	i, ok := sort.Find(len(m.keys), func(i int) int { return strings.Compare(key, m.key(i)) })
	if !ok {
		return nil, false
	}
	return m.at(i), true
}

// Exact returns the speech pre-generated for precisely this query.
func (m *Map) Exact(q engine.Query) (*engine.StoredSpeech, bool) {
	defer runtime.KeepAlive(m)
	return m.findKey(q.Key())
}

// Lookup returns the best speech for the query: the exact match, or
// the most specific containing generalization; see Store.Lookup for
// the full contract, which this implementation matches bit for bit.
func (m *Map) Lookup(q engine.Query) (*engine.StoredSpeech, bool) {
	sp, _, ok := m.Match(q)
	return sp, ok
}

// Match mirrors Store.Match: one canonicalization serves the exact
// probe and both index paths, subset enumeration runs largest-first
// under the shared budget, and ties break to the smallest canonical
// key.
func (m *Map) Match(q engine.Query) (sp *engine.StoredSpeech, exact, ok bool) {
	defer runtime.KeepAlive(m)
	preds := engine.CanonicalPreds(q.Predicates)
	if sp, ok := m.findKey(engine.PredsKey(q.Target, preds)); ok {
		return sp, true, true
	}
	t := m.targets[q.Target]
	if t == nil {
		return nil, false, false
	}
	top := len(preds)
	if t.maxPreds < top {
		top = t.maxPreds
	}
	if engine.EnumFits(len(preds), top) {
		sp, ok = m.lookupEnum(q.Target, preds, top)
	} else {
		sp, ok = m.lookupPosting(t, preds)
	}
	return sp, false, ok
}

// lookupEnum probes the canonical keys of all predicate subsets of
// size k = top..0; the smallest key among the hits of the first
// non-empty size wins, exactly as in the heap store — only the probe
// is a binary search instead of a map access.
func (m *Map) lookupEnum(target string, preds []engine.NamedPredicate, top int) (*engine.StoredSpeech, bool) {
	idx := make([]int, 0, top)
	for k := top; k >= 0; k-- {
		var best *engine.StoredSpeech
		bestKey := ""
		var walk func(start int)
		walk = func(start int) {
			if len(idx) == k {
				key := engine.SubsetPredsKey(target, preds, idx)
				if sp, ok := m.findKey(key); ok {
					if best == nil || key < bestKey {
						best, bestKey = sp, key
					}
				}
				return
			}
			for i := start; i <= len(preds)-(k-len(idx)); i++ {
				idx = append(idx, i)
				walk(i + 1)
				idx = idx[:len(idx)-1]
			}
		}
		walk(0)
		if best != nil {
			return best, true
		}
	}
	return nil, false
}

// mapScratch is the dense posting-intersection counter state, pooled
// per Map; same epoch-stamping trick as the heap store's postScratch,
// sized by total speeches because Map posting lists hold global
// indices.
type mapScratch struct {
	epoch   uint32
	stamp   []uint32
	count   []int32
	touched []int32
}

func (sc *mapScratch) reset(n int) {
	if cap(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
		sc.count = make([]int32, n)
	}
	sc.stamp = sc.stamp[:n]
	sc.count = sc.count[:n]
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could collide, clear once
		clear(sc.stamp)
		sc.epoch = 1
	}
	sc.touched = sc.touched[:0]
}

// lookupPosting is the wide-query fallback, mirroring the heap store's:
// count shared predicates per referenced speech, keep the candidates
// whose count equals their own predicate count, break ties to the
// smallest key, fall back to the overall speech.
func (m *Map) lookupPosting(t *mapTarget, preds []engine.NamedPredicate) (*engine.StoredSpeech, bool) {
	m.postings()
	sc, _ := m.scratch.Get().(*mapScratch)
	if sc == nil {
		sc = &mapScratch{}
	}
	defer m.scratch.Put(sc)
	sc.reset(len(m.speeches))
	for _, p := range preds {
		for _, idx := range t.posting[p] {
			if sc.stamp[idx] != sc.epoch {
				sc.stamp[idx] = sc.epoch
				sc.count[idx] = 0
				sc.touched = append(sc.touched, idx)
			}
			sc.count[idx]++
		}
	}
	var best *engine.StoredSpeech
	bestShared, bestKey := -1, ""
	for _, idx := range sc.touched {
		sp := &m.speeches[idx]
		c := int(sc.count[idx])
		if c != len(sp.Query.Predicates) {
			continue
		}
		if c > bestShared || (c == bestShared && m.keys[idx] < bestKey) {
			best, bestShared, bestKey = sp, c, m.keys[idx]
		}
	}
	if best == nil && t.overall >= 0 {
		best = &m.speeches[t.overall]
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// Map must satisfy the serving contract.
var _ engine.StoreView = (*Map)(nil)
