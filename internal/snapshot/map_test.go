package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"cicero/internal/dataset"
	"cicero/internal/engine"
	"cicero/internal/serve"
	"cicero/internal/voice"
)

// sameSpeech fails the test unless two speeches answer identically:
// same canonical key, same text, and bit-identical floats. Facts are
// excluded — the mmap view deliberately does not materialize them.
func sameSpeech(t *testing.T, ctx string, h, m *engine.StoredSpeech) {
	t.Helper()
	if h.Query.Key() != m.Query.Key() {
		t.Fatalf("%s: key %q, want %q", ctx, m.Query.Key(), h.Query.Key())
	}
	if h.Text != m.Text {
		t.Fatalf("%s: text %q, want %q", ctx, m.Text, h.Text)
	}
	if math.Float64bits(h.Utility) != math.Float64bits(m.Utility) {
		t.Fatalf("%s: utility %v, want %v", ctx, m.Utility, h.Utility)
	}
	if math.Float64bits(h.PriorError) != math.Float64bits(m.PriorError) {
		t.Fatalf("%s: prior error %v, want %v", ctx, m.PriorError, h.PriorError)
	}
}

// checkQueryParity runs one query through both implementations and
// compares Exact, Match, and Lookup verbatim.
func checkQueryParity(t *testing.T, heap *engine.Store, m *Map, q engine.Query) {
	t.Helper()
	ctx := q.Key()
	he, hok := heap.Exact(q)
	me, mok := m.Exact(q)
	if hok != mok {
		t.Fatalf("Exact(%s): mmap ok=%v, heap ok=%v", ctx, mok, hok)
	}
	if hok {
		sameSpeech(t, "Exact("+ctx+")", he, me)
	}
	hs, hexact, hok := heap.Match(q)
	ms, mexact, mok := m.Match(q)
	if hok != mok || hexact != mexact {
		t.Fatalf("Match(%s): mmap (exact=%v ok=%v), heap (exact=%v ok=%v)", ctx, mexact, mok, hexact, hok)
	}
	if hok {
		sameSpeech(t, "Match("+ctx+")", hs, ms)
	}
	hl, hok := heap.Lookup(q)
	ml, mok := m.Lookup(q)
	if hok != mok {
		t.Fatalf("Lookup(%s): mmap ok=%v, heap ok=%v", ctx, mok, hok)
	}
	if hok {
		sameSpeech(t, "Lookup("+ctx+")", hl, ml)
	}
}

// TestMapParityOracle is the cross-check oracle for the zero-copy
// reader: over both example datasets, the mmap-backed view must be
// bit-identical to the heap store on every accessor — the full speech
// enumeration, a directed exact probe per stored speech, 500 random
// queries (most of which resolve through generalization with
// tie-breaks), and adversarially wide queries that force the
// posting-intersection path.
func TestMapParityOracle(t *testing.T) {
	for _, tc := range exampleStores(t) {
		t.Run(tc.rel.Name(), func(t *testing.T) {
			data := encode(t, tc.store, tc.rel)
			heap, err := Decode(data, tc.rel)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			m, err := MapBytes(data, tc.rel)
			if err != nil {
				t.Fatalf("MapBytes: %v", err)
			}
			if m.Mapped() {
				t.Error("MapBytes must not report a region mapping")
			}
			if m.Len() != heap.Len() {
				t.Fatalf("Len = %d, want %d", m.Len(), heap.Len())
			}
			for _, target := range tc.rel.Schema().Targets {
				if m.HasTarget(target) != heap.HasTarget(target) {
					t.Fatalf("HasTarget(%q) diverges", target)
				}
			}
			if m.HasTarget("no-such-target") {
				t.Error("HasTarget(no-such-target) = true")
			}

			// Full enumeration, in the same deterministic order.
			hsp, msp := heap.Speeches(), m.Speeches()
			if len(hsp) != len(msp) {
				t.Fatalf("Speeches: %d, want %d", len(msp), len(hsp))
			}
			for i := range hsp {
				sameSpeech(t, fmt.Sprintf("speech %d", i), hsp[i], msp[i])
			}

			// Directed exact probes over every stored key exercise the
			// whole binary-search key table.
			for _, sp := range hsp {
				checkQueryParity(t, heap, m, sp.Query)
			}

			// Random queries: 0-3 predicates over real dimension values, so
			// exact hits, generalizations, ties, and misses all occur.
			rng := rand.New(rand.NewSource(77))
			for i := 0; i < 500; i++ {
				checkQueryParity(t, heap, m, randomQuery(tc.rel, rng))
			}

			// Wide queries overflow the enumeration budget where the store's
			// maxPreds allows, forcing the posting-intersection fallback.
			for i := 0; i < 25; i++ {
				q := randomQuery(tc.rel, rng)
				for j := 0; j < 120; j++ {
					q.Predicates = append(q.Predicates,
						engine.NamedPredicate{Column: fmt.Sprintf("zz%03d", j), Value: "x"})
				}
				checkQueryParity(t, heap, m, q)
			}
		})
	}
}

// TestMapFileLifecycle exercises the file-backed path end to end:
// mapping, answering, deferred payload verification, and idempotent
// close.
func TestMapFileLifecycle(t *testing.T) {
	tc := exampleStores(t)[0]
	path := filepath.Join(t.TempDir(), "acs.snap")
	if err := WriteFile(path, tc.store, tc.rel); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m, err := MapFile(path, tc.rel)
	if err != nil {
		t.Fatalf("MapFile: %v", err)
	}
	if mmapSupported && !m.Mapped() {
		t.Error("MapFile on a unix build must be region-backed")
	}
	if m.Meta().Dataset != tc.rel.Name() {
		t.Errorf("Meta().Dataset = %q", m.Meta().Dataset)
	}
	sp, ok := m.Lookup(tc.store.Speeches()[0].Query)
	if !ok || sp.Text == "" {
		t.Fatal("mapped view failed to answer a stored query")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMapStructuralErrors: the structural checks run eagerly at map
// time, exactly as for Decode.
func TestMapStructuralErrors(t *testing.T) {
	tc := exampleStores(t)[0]
	data := encode(t, tc.store, tc.rel)

	bad := bytes.Clone(data)
	bad[0] ^= 0xff // magic
	if _, err := MapBytes(bad, tc.rel); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
	if _, err := MapBytes(data[:len(data)/2], tc.rel); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation: err = %v, want ErrCorrupt", err)
	}
	other := dataset.Flights(100, 1)
	if _, err := MapBytes(data, other); !errors.Is(err, ErrDataset) {
		t.Errorf("dataset mismatch: err = %v, want ErrDataset", err)
	}
}

// TestMapDeferredPayloadVerify pins the checksum contract: a payload
// bit-flip that eager Decode rejects outright still maps (only
// structure is checked at map time, keeping cold start O(pages
// needed)), and Verify reports it — with the verdict cached.
func TestMapDeferredPayloadVerify(t *testing.T) {
	tc := exampleStores(t)[0]
	data := encode(t, tc.store, tc.rel)
	text := tc.store.Speeches()[0].Text
	at := bytes.Index(data, []byte(text))
	if at < 0 {
		t.Fatal("speech text not found in snapshot bytes")
	}
	data[at] ^= 0x01

	if _, err := Decode(data, tc.rel); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode of bit-flipped payload: err = %v, want ErrCorrupt", err)
	}
	m, err := MapBytes(data, tc.rel)
	if err != nil {
		t.Fatalf("MapBytes must defer payload verification, got %v", err)
	}
	err = m.Verify()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify: err = %v, want ErrCorrupt", err)
	}
	if again := m.Verify(); !errors.Is(again, ErrCorrupt) {
		t.Fatalf("cached Verify: err = %v, want ErrCorrupt", again)
	}
}

// sectionSpan returns the absolute [start, end) range of a section's
// bytes within the snapshot file image.
func sectionSpan(t *testing.T, data []byte, id uint32) (int, int) {
	t.Helper()
	payload := data[headerSize:]
	for i := 0; i < int(le.Uint32(data[offSectionCount:])); i++ {
		e := payload[sectionEntrySize*i:]
		if le.Uint32(e[0:]) == id {
			off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
			return headerSize + int(off), headerSize + int(off+length)
		}
	}
	t.Fatalf("section %d not found", id)
	return 0, 0
}

// reseal recomputes the payload and header checksums after a test
// mutated snapshot bytes in place, so the mutation survives the
// checksum layer and reaches the semantic validation under test.
func reseal(data []byte) {
	le.PutUint32(data[offPayloadCRC:], crc32.Checksum(data[headerSize:], castagnoli))
	le.PutUint32(data[offHeaderCRC:], crc32.Checksum(data[:offHeaderCRC], castagnoli))
}

// predStarts parses the predicate CSR offsets from the file image.
func predStarts(t *testing.T, data []byte) []uint32 {
	t.Helper()
	lo, hi := sectionSpan(t, data, secPredStart)
	starts := make([]uint32, (hi-lo)/4)
	for i := range starts {
		starts[i] = le.Uint32(data[lo+4*i:])
	}
	return starts
}

// TestMapRejectsNonCanonicalPredOrder: Map builds its canonical keys
// straight from file order, so a checksum-valid file whose predicates
// are reordered must fail loudly instead of silently diverging from
// the heap loader (which re-canonicalizes on Add).
func TestMapRejectsNonCanonicalPredOrder(t *testing.T) {
	tc := exampleStores(t)[0] // ACS: two-predicate speeches exist
	data := encode(t, tc.store, tc.rel)
	starts := predStarts(t, data)
	predsLo, _ := sectionSpan(t, data, secPreds)
	swapped := false
	for i := 0; i+1 < len(starts); i++ {
		if starts[i+1]-starts[i] >= 2 {
			a := predsLo + 8*int(starts[i])
			var tmp [8]byte
			copy(tmp[:], data[a:a+8])
			copy(data[a:a+8], data[a+8:a+16])
			copy(data[a+8:a+16], tmp[:])
			swapped = true
			break
		}
	}
	if !swapped {
		t.Fatal("no two-predicate speech to reorder")
	}
	reseal(data)
	if _, err := Decode(data, tc.rel); err != nil {
		t.Fatalf("heap loader re-canonicalizes, so Decode must accept: %v", err)
	}
	if _, err := MapBytes(data, tc.rel); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("MapBytes: err = %v, want ErrCorrupt", err)
	}
}

// TestMapRejectsDuplicateKey: the heap loader would silently
// last-writer-win a duplicated canonical key; the mmap reader rejects
// it so both loaders always serve the same speech set.
func TestMapRejectsDuplicateKey(t *testing.T) {
	tc := exampleStores(t)[0]
	data := encode(t, tc.store, tc.rel)
	starts := predStarts(t, data)
	recsLo, _ := sectionSpan(t, data, secSpeeches)
	predsLo, _ := sectionSpan(t, data, secPreds)
	forged := false
	for i := 0; i+2 < len(starts) && !forged; i++ {
		for j := i + 1; j+1 < len(starts); j++ {
			if starts[i+1]-starts[i] == starts[j+1]-starts[j] {
				// Clone speech i's identity (target id + predicate pairs)
				// onto speech j.
				copy(data[recsLo+speechRecordSize*j:][:4], data[recsLo+speechRecordSize*i:][:4])
				n := int(starts[i+1] - starts[i])
				copy(data[predsLo+8*int(starts[j]):][:8*n], data[predsLo+8*int(starts[i]):][:8*n])
				forged = true
				break
			}
		}
	}
	if !forged {
		t.Fatal("no two speeches with equal predicate counts to forge")
	}
	reseal(data)
	if _, err := MapBytes(data, tc.rel); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("MapBytes: err = %v, want ErrCorrupt", err)
	}
}

// BenchmarkColdStart compares the two cold-start paths on the same
// snapshot bytes: full heap decode vs zero-copy map, each measured to
// its first answered query — the latency a restarted daemon pays
// before serving.
func BenchmarkColdStart(b *testing.B) {
	rel := dataset.ACS(400, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.MaxQueryLen = 2
	s := &engine.Summarizer{Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt}
	store, _, err := s.Preprocess()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, store, rel); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	probe := store.Speeches()[0].Query

	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st, err := Decode(data, rel)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := st.Lookup(probe); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := MapBytes(data, rel)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := m.Lookup(probe); !ok {
				b.Fatal("miss")
			}
		}
	})
}

// TestSwapStoreAcrossImplementationsRace hammers the answer path while
// the live store swaps heap→mmap and mmap→mmap. Run under -race (CI
// does) this proves the generations are safely published and that an
// mmap-backed generation serves concurrent voice answers mid-swap as
// safely as the heap store it replaces.
func TestSwapStoreAcrossImplementationsRace(t *testing.T) {
	rel := dataset.Flights(2000, 1)
	cfg := engine.DefaultConfig(rel)
	cfg.Targets = []string{"cancelled"}
	cfg.Dimensions = []string{"season", "airline"}
	cfg.MaxQueryLen = 1
	s := &engine.Summarizer{
		Rel: rel, Config: cfg, Alg: engine.AlgGreedyOpt,
		Template: engine.Template{TargetPhrase: "cancellation probability", Percent: true},
	}
	heap, _, err := s.Preprocess()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flights.snap")
	if err := WriteFile(path, heap, rel); err != nil {
		t.Fatal(err)
	}
	// Two independent mmap generations of the same artifact, so the
	// swap cycle covers heap→mmap, mmap→mmap, and mmap→heap.
	m1, err := MapFile(path, rel)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MapFile(path, rel)
	if err != nil {
		t.Fatal(err)
	}
	ex := voice.NewExtractor(rel, []voice.Sample{
		{Phrase: "cancellations", Target: "cancelled"},
	}, 2)
	a := serve.New(rel, heap, ex, serve.Options{})
	gens := []engine.StoreView{m1, m2, heap}

	const readers = 8
	const answersPerReader = 150
	var failures atomic.Int64
	var readersWG, swapperWG sync.WaitGroup
	stop := make(chan struct{})
	swapperWG.Add(1)
	go func() {
		defer swapperWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a.SwapStore(gens[i%len(gens)])
		}
	}()
	probe := heap.Speeches()[0].Query
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for i := 0; i < answersPerReader; i++ {
				if ans := a.Answer("cancellations in Winter"); ans.Kind != serve.Summary || !ans.Answered {
					failures.Add(1)
				}
				if ans := a.AnswerQuery(probe); !ans.Answered || !ans.Exact {
					failures.Add(1)
				}
			}
		}()
	}
	readersWG.Wait()
	close(stop)
	swapperWG.Wait()
	if n := failures.Load(); n > 0 {
		t.Errorf("%d answers failed during heap/mmap store swaps", n)
	}
	live := a.Store()
	if live != engine.StoreView(heap) && live != engine.StoreView(m1) && live != engine.StoreView(m2) {
		t.Error("live store is not one of the swapped generations")
	}
}
